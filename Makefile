GO ?= go

.PHONY: build test race torture check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Seeded crash/torn-write torture matrix (fixed seeds, 100 crash points by
# default) under the race detector. Scale with FASTER_TORTURE_POINTS=N.
torture:
	FASTER_TORTURE_POINTS=$${FASTER_TORTURE_POINTS:-100} \
		$(GO) test -race -run TestCrashRecoveryTorture -count=1 ./internal/faster/

check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

fmt:
	gofmt -l -w .
