GO ?= go

.PHONY: build test race torture soak linearize mutation-gate fuzz check verify bench bench-paper bench-openloop bench-shard bench-cache fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Seeded crash/torn-write torture matrix (fixed seeds, 100 crash points by
# default) under the race detector. Scale with FASTER_TORTURE_POINTS=N.
torture:
	FASTER_TORTURE_POINTS=$${FASTER_TORTURE_POINTS:-100} \
		$(GO) test -race -run TestCrashRecoveryTorture -count=1 ./internal/faster/

# Seeded server chaos soak: overload shedding, read-only degradation, and
# graceful drain against the RESP front-end under the race detector, with
# goroutine-leak assertions.
soak:
	$(GO) test -race -run TestServerChaosSoak -count=1 -v ./internal/server/

# Linearizability scenario matrix: seeded concurrent schedules across the
# store's hot paths (in-memory, read-only copy, fuzzy-region RMW, pending
# I/O, index resize, checkpoint/recover), history-checked under the race
# detector inside the wall-clock budget below.
linearize:
	$(GO) test -race -run 'TestLinearizable' -count=1 -v -timeout 300s ./internal/linearize/

# Mutation gate: compile the seeded bugs in (-tags mutate) and prove the
# linearizability harness flags each one with a minimized counterexample.
# Runs WITHOUT -race: the seeded bugs are value-level concurrency faults
# expressed through atomics, invisible to the race detector by design.
mutation-gate:
	$(GO) test -tags mutate -run 'TestMutationGate' -count=1 -v -timeout 600s ./internal/faster/

# Short coverage-guided fuzz of the wire codecs past the committed seed
# corpora. Crashers land in testdata/fuzz/ and replay as regressions.
fuzz:
	$(GO) test -fuzz FuzzReadCommand -fuzztime 30s -run '^$$' ./internal/resp/
	$(GO) test -fuzz FuzzReadReply -fuzztime 30s -run '^$$' ./internal/resp/
	$(GO) test -fuzz FuzzVarLenFraming -fuzztime 30s -run '^$$' ./internal/faster/

check:
	./scripts/check.sh

verify:
	./scripts/verify.sh

# Hot-path micro-benchmarks (single-op vs batched, -cpu 1,4,16) with a
# machine-readable report: BENCH_05.json gets ns/op, ops/sec, allocs/op
# per scenario and the batched-vs-single speedup ratios.
bench:
	$(GO) test -run '^$$' -bench 'U64$$' -benchmem -cpu 1,4,16 -count=1 \
		./internal/faster/ | $(GO) run ./cmd/benchreport -out BENCH_05.json

# Compaction economics: bytes reclaimed and write amplification of a
# copy-forward pass, plus read throughput while compactions run in the
# background. BENCH_06.json carries the custom units in "extra".
bench-compact:
	$(GO) test -run '^$$' -bench 'Compaction$$' -benchmem -count=1 \
		./internal/faster/ | $(GO) run ./cmd/benchreport -out BENCH_06.json

# Open-loop SLO curves under device chaos: constant-arrival-rate RESP
# load over a larger-than-memory store, one no-chaos phase and one under
# 100ms periodic latency spikes. BENCH_07.json carries exact hot/cold
# p50/p99/p999 (coordinated-omission-safe: measured from scheduled
# arrival) plus the full shed accounting in "extra". -benchtime 1x: each
# phase is one fixed-length schedule, not an iteration loop.
bench-openloop:
	$(GO) test -run '^$$' -bench 'OpenLoopSLO' -benchtime 1x -count=1 \
		./internal/bench/ | $(GO) run ./cmd/benchreport -out BENCH_07.json

# Shard-scaling benchmarks: 64-op read and upsert windows at shards in
# {1,4,16} with a fixed TOTAL buffer budget (so shards win by overlapping
# per-shard io-pools/flushers, never by caching more). BENCH_08.json must
# show 16-shard cold-read throughput >= 2x single-shard at 16 procs.
bench-shard:
	$(GO) test -run '^$$' -bench 'ShardedBatch.*U64' -benchmem -cpu 16 -count=1 \
		./internal/bench/ | $(GO) run ./cmd/benchreport -out BENCH_08.json

# Read-cache zipfian sweep: 64-op zipf(0.99) read windows over a
# larger-than-memory keyspace on simulated flash (150us reads), with
# the record read cache sized to 1/8 and 1/16 of the keyspace, cache on
# vs off, at 1 and 16 shards. BENCH_09.json must show cache-on read
# throughput >= 2x cache-off at the 1/8 resident fraction.
bench-cache:
	$(GO) test -run '^$$' -bench 'CacheZipfReadU64' -benchmem -cpu 16 -count=1 \
		./internal/bench/ | $(GO) run ./cmd/benchreport -out BENCH_09.json

# The paper-figure experiment micro-benchmarks (see cmd/faster-bench for
# the full tables).
bench-paper:
	$(GO) test -bench=. -benchmem ./internal/bench/

fmt:
	gofmt -l -w .
