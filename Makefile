GO ?= go

.PHONY: build test race check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

fmt:
	gofmt -l -w .
