GO ?= go

.PHONY: build test race torture soak check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Seeded crash/torn-write torture matrix (fixed seeds, 100 crash points by
# default) under the race detector. Scale with FASTER_TORTURE_POINTS=N.
torture:
	FASTER_TORTURE_POINTS=$${FASTER_TORTURE_POINTS:-100} \
		$(GO) test -race -run TestCrashRecoveryTorture -count=1 ./internal/faster/

# Seeded server chaos soak: overload shedding, read-only degradation, and
# graceful drain against the RESP front-end under the race detector, with
# goroutine-leak assertions.
soak:
	$(GO) test -race -run TestServerChaosSoak -count=1 -v ./internal/server/

check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/

fmt:
	gofmt -l -w .
