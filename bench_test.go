// Package repro's top-level benchmarks regenerate every table and figure
// of the FASTER paper's evaluation (Section 7) as Go benchmarks — one
// benchmark function per figure, with sub-benchmarks for the figure's
// series. Shapes (who wins, scaling trends, crossovers) are the target;
// see EXPERIMENTS.md for a paper-vs-measured comparison and
// cmd/faster-bench for the same experiments as printed tables at larger
// scales.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cachesim"
	"repro/internal/device"
	"repro/internal/hlog"
	"repro/internal/ycsb"
)

const (
	benchKeys = 50_000
	benchSeed = 42
)

// runFixedOps drives a system with b.N total operations.
func runFixedOps(b *testing.B, sys bench.System, mix ycsb.Mix, label string, gen ycsb.Generator, threads, valueSize int) {
	b.Helper()
	wl := ycsb.NewWorkload(gen, mix, benchSeed)
	bench.Preload(sys, wl.KeySpace(), valueSize, threads)
	b.ResetTimer()
	res := bench.Run(sys, bench.RunConfig{
		Threads:   threads,
		TotalOps:  b.N,
		Workload:  wl,
		ValueSize: valueSize,
		RMWInputs: ycsb.InputArray(),
		Seed:      benchSeed,
	}, label)
	b.StopTimer()
	b.ReportMetric(res.Mops(), "Mops/s")
}

func systemsUnderTest(b *testing.B, valueSize int) map[string]func() bench.System {
	return map[string]func() bench.System{
		"faster": func() bench.System {
			s, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys, ValueSize: valueSize})
			if err != nil {
				b.Fatal(err)
			}
			return s
		},
		"shardmap": func() bench.System { return bench.NewShardmapSystem(benchKeys) },
		"btree":    func() bench.System { return bench.NewBTreeSystem() },
		"lsm": func() bench.System {
			s, err := bench.NewLSMSystem(64<<20, "")
			if err != nil {
				b.Fatal(err)
			}
			return s
		},
	}
}

// BenchmarkFig8SingleThread is Fig 8a/8b: single-thread throughput across
// the four YCSB-A variants, uniform and Zipfian, FASTER vs baselines.
func BenchmarkFig8SingleThread(b *testing.B) {
	benchFig8(b, 1)
}

// BenchmarkFig8AllThreads is Fig 8c/8d: the same at full parallelism.
func BenchmarkFig8AllThreads(b *testing.B) {
	benchFig8(b, 4)
}

func benchFig8(b *testing.B, threads int) {
	mixes := []struct {
		name string
		mix  ycsb.Mix
	}{
		{"rmw100", ycsb.MixRMW100},
		{"bu100", ycsb.Mix0R100BU},
		{"r50bu50", ycsb.Mix50R50BU},
		{"r100", ycsb.Mix100R},
	}
	for _, distr := range []string{"uniform", "zipf"} {
		for _, m := range mixes {
			for name, mk := range systemsUnderTest(b, 8) {
				b.Run(fmt.Sprintf("%s/%s/%s", distr, m.name, name), func(b *testing.B) {
					sys := mk()
					defer sys.Close()
					var gen ycsb.Generator
					if distr == "zipf" {
						gen = ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
					} else {
						gen = ycsb.NewUniform(benchKeys, benchSeed)
					}
					runFixedOps(b, sys, m.mix, m.name, gen, threads, 8)
				})
			}
		}
	}
}

// BenchmarkFig9aScalabilityRMW is Fig 9a: 100% RMW, 8-byte payloads,
// Zipfian, thread sweep.
func BenchmarkFig9aScalabilityRMW(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		for name, mk := range systemsUnderTest(b, 8) {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, name), func(b *testing.B) {
				sys := mk()
				defer sys.Close()
				gen := ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
				runFixedOps(b, sys, ycsb.MixRMW100, "rmw100", gen, threads, 8)
			})
		}
	}
}

// BenchmarkFig9bScalabilityUpsert is Fig 9b: 100% blind updates, 100-byte
// payloads, Zipfian, thread sweep.
func BenchmarkFig9bScalabilityUpsert(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		for name, mk := range systemsUnderTest(b, 100) {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, name), func(b *testing.B) {
				sys := mk()
				defer sys.Close()
				gen := ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
				runFixedOps(b, sys, ycsb.Mix0R100BU, "bu100", gen, threads, 100)
			})
		}
	}
}

// BenchmarkFig10MemoryBudget is Fig 10: fixed dataset, shrinking memory
// budget, 50:50 Zipfian, FASTER vs the LSM baseline.
func BenchmarkFig10MemoryBudget(b *testing.B) {
	const valueSize = 100
	recBytes := uint64(16 + 8 + ((valueSize + 7) &^ 7))
	dataset := benchKeys * recBytes
	for _, frac := range []float64{2.0, 1.0, 0.5, 0.25} {
		budget := uint64(float64(dataset) * frac)
		b.Run(fmt.Sprintf("budget=%.2fx/faster", frac), func(b *testing.B) {
			const pageBits = 16
			pages := 2
			for uint64(pages)<<pageBits < budget {
				pages *= 2
			}
			dev := device.NewMem(device.MemConfig{ReadLatency: 20 * time.Microsecond})
			sys, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys,
				ValueSize: valueSize, PageBits: pageBits, BufferPages: pages, Device: dev})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			gen := ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
			runFixedOps(b, sys, ycsb.Mix50R50BU, "r50bu50", gen, 2, valueSize)
		})
		b.Run(fmt.Sprintf("budget=%.2fx/lsm", frac), func(b *testing.B) {
			sys, err := bench.NewLSMSystem(int(budget), "")
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			gen := ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
			runFixedOps(b, sys, ycsb.Mix50R50BU, "r50bu50", gen, 2, valueSize)
		})
	}
}

// BenchmarkFig11AppendOnlyVsHybrid is Fig 11: the append-only log
// allocator (§5) against HybridLog (§6) on YCSB 50:50.
func BenchmarkFig11AppendOnlyVsHybrid(b *testing.B) {
	for _, distr := range []string{"uniform", "zipf"} {
		for _, mode := range []struct {
			name string
			m    hlog.Mode
		}{{"hybrid", hlog.ModeHybrid}, {"append-only", hlog.ModeAppendOnly}} {
			for _, threads := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", distr, mode.name, threads), func(b *testing.B) {
					pages := 64
					if mode.m == hlog.ModeAppendOnly {
						pages = 1024 // hold all appends, as in §7.4.1
					}
					sys, err := bench.NewFasterSystem(bench.FasterOptions{
						Keys: benchKeys, ValueSize: 8, Mode: mode.m, BufferPages: pages})
					if err != nil {
						b.Fatal(err)
					}
					defer sys.Close()
					var gen ycsb.Generator
					if distr == "zipf" {
						gen = ycsb.NewZipfian(benchKeys, ycsb.DefaultTheta, benchSeed)
					} else {
						gen = ycsb.NewUniform(benchKeys, benchSeed)
					}
					runFixedOps(b, sys, ycsb.Mix50R50BU, "r50bu50", gen, threads, 8)
				})
			}
		}
	}
}

// BenchmarkFig12aIPURegion is Fig 12a: throughput (and, via the reported
// metric, log growth) as the in-place-updatable region grows.
func BenchmarkFig12aIPURegion(b *testing.B) {
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("ipu=%.1f", f), func(b *testing.B) {
			const pageBits = 14
			pages := 2
			need := benchKeys * 32 * 3 / 2
			for pages<<pageBits < need {
				pages *= 2
			}
			sys, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys,
				ValueSize: 8, PageBits: pageBits, BufferPages: pages, MutableFraction: f})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			tail0 := sys.Store().Log().TailAddress()
			gen := ycsb.NewUniform(benchKeys, benchSeed)
			runFixedOps(b, sys, ycsb.MixRMW100, "rmw100", gen, 2, 8)
			growth := float64(sys.Store().Log().TailAddress()-tail0) / float64(b.N)
			b.ReportMetric(growth, "logB/op")
		})
	}
}

// BenchmarkFig12bFuzzyOps is Fig 12b: the fraction of RMWs that land in
// the fuzzy region, as the IPU region grows.
func BenchmarkFig12bFuzzyOps(b *testing.B) {
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		b.Run(fmt.Sprintf("ipu=%.2f", f), func(b *testing.B) {
			const pageBits = 14
			pages := 2
			need := benchKeys * 32 * 3 / 2
			for pages<<pageBits < need {
				pages *= 2
			}
			sys, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys,
				ValueSize: 8, PageBits: pageBits, BufferPages: pages, MutableFraction: f})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			gen := ycsb.NewUniform(benchKeys, benchSeed)
			runFixedOps(b, sys, ycsb.MixRMW100, "rmw100", gen, 4, 8)
			fz, total := sys.FuzzyStats()
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(fz) / float64(total)
			}
			b.ReportMetric(pct, "fuzzy%")
		})
	}
}

// BenchmarkFig13FuzzyVsThreads is Fig 13: fuzzy-op percentage as the
// thread count grows, at IPU factor 0.8.
func BenchmarkFig13FuzzyVsThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			const pageBits = 14
			pages := 2
			need := benchKeys * 32 * 3 / 2
			for pages<<pageBits < need {
				pages *= 2
			}
			sys, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys,
				ValueSize: 8, PageBits: pageBits, BufferPages: pages, MutableFraction: 0.8})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			gen := ycsb.NewUniform(benchKeys, benchSeed)
			runFixedOps(b, sys, ycsb.MixRMW100, "rmw100", gen, threads, 8)
			fz, total := sys.FuzzyStats()
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(fz) / float64(total)
			}
			b.ReportMetric(pct, "fuzzy%")
		})
	}
}

// BenchmarkFig14to16CacheSim is Figs 14/15/16: the caching-protocol
// simulation; the reported metric is the cache miss ratio.
func BenchmarkFig14to16CacheSim(b *testing.B) {
	const keys = 1 << 15
	traces := []struct {
		name string
		mk   func() func() uint64
	}{
		{"fig14-uniform", func() func() uint64 { return ycsb.NewUniform(keys, benchSeed).Next }},
		{"fig15-zipf", func() func() uint64 {
			return ycsb.NewZipfian(keys, ycsb.DefaultTheta, benchSeed).Unscrambled().Next
		}},
		{"fig16-hotset", func() func() uint64 {
			return ycsb.NewHotSet(ycsb.HotSetConfig{Keys: keys, ShiftEvery: keys / 4}, benchSeed).Next
		}},
	}
	protos := []struct {
		name string
		mk   cachesim.NewFunc
	}{
		{"fifo", func(c int) cachesim.Cache { return cachesim.NewFIFO(c) }},
		{"lru1", func(c int) cachesim.Cache { return cachesim.NewLRU(c) }},
		{"lru2", func(c int) cachesim.Cache { return cachesim.NewLRUK(c, 2) }},
		{"clock", func(c int) cachesim.Cache { return cachesim.NewCLOCK(c) }},
		{"hlog", func(c int) cachesim.Cache { return cachesim.NewHLOG(c, 0.9) }},
	}
	for _, tr := range traces {
		for _, frac := range []int{4, 8} {
			for _, p := range protos {
				b.Run(fmt.Sprintf("%s/cache=1_%d/%s", tr.name, frac, p.name), func(b *testing.B) {
					res := cachesim.Run(p.mk, keys/frac, tr.mk(), uint64(b.N))
					b.ReportMetric(res.MissRatio(), "missRatio")
				})
			}
		}
	}
}

// BenchmarkTagSizeAblation is the §7.2.2 experiment: index tag width vs
// throughput on YCSB 50:50 uniform.
func BenchmarkTagSizeAblation(b *testing.B) {
	for _, tagBits := range []uint{1, 4, 14} {
		b.Run(fmt.Sprintf("tagBits=%d", tagBits), func(b *testing.B) {
			sys, err := bench.NewFasterSystem(bench.FasterOptions{Keys: benchKeys,
				ValueSize: 8, TagBits: tagBits})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			gen := ycsb.NewUniform(benchKeys, benchSeed)
			runFixedOps(b, sys, ycsb.Mix50R50BU, "r50bu50", gen, 4, 8)
		})
	}
}

// BenchmarkRedcachePipeline is the §7.2.4 experiment: the Redis stand-in
// over loopback TCP at increasing pipeline depths.
func BenchmarkRedcachePipeline(b *testing.B) {
	var buf nullWriter
	for _, depth := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			o := bench.Options{Keys: benchKeys, Duration: time.Duration(b.N) * 20 * time.Microsecond, Out: buf, Seed: benchSeed}
			if o.Duration < 50*time.Millisecond {
				o.Duration = 50 * time.Millisecond
			}
			rows, err := bench.RedisPipeline(o, 4, []int{depth})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].GetsPerS, "gets/s")
			b.ReportMetric(rows[0].SetsPerS, "sets/s")
		})
	}
}

// BenchmarkFasterServerPipeline is the FASTER half of §7.2.4: the same
// pipelined loopback workload as BenchmarkRedcachePipeline, driven
// against the faster-server RESP front-end instead of the Redis
// stand-in. Compare the two side by side to see how much of the gap the
// network stack erases at depth 1 and how batching reopens it.
func BenchmarkFasterServerPipeline(b *testing.B) {
	var buf nullWriter
	for _, depth := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			o := bench.Options{Keys: benchKeys, Duration: time.Duration(b.N) * 20 * time.Microsecond, Out: buf, Seed: benchSeed}
			if o.Duration < 50*time.Millisecond {
				o.Duration = 50 * time.Millisecond
			}
			rows, err := bench.NetPipeline(o, 4, []int{depth})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].GetsPerS, "gets/s")
			b.ReportMetric(rows[0].SetsPerS, "sets/s")
		})
	}
}

// BenchmarkLogWriteBandwidth is the §7.3 closing measurement: sequential
// log write bandwidth under a blind-update workload with a mostly
// read-only region.
func BenchmarkLogWriteBandwidth(b *testing.B) {
	o := bench.Options{Keys: benchKeys, Duration: 500 * time.Millisecond, MaxThreads: 4, Out: nullWriter{}, Seed: benchSeed}
	b.ResetTimer()
	mbs, err := bench.LogBandwidth(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(mbs, "MB/s")
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
