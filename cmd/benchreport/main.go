// Command benchreport turns `go test -bench` output into a JSON report.
// It echoes its stdin through unchanged (so `make bench` stays watchable)
// while parsing every benchmark result line, then writes one JSON file
// with ns/op, ops/sec, and allocs/op per scenario plus the batched-vs-
// single-op speedups the hot-path work is gated on.
//
// Usage:
//
//	go test -run '^$' -bench U64 -benchmem -cpu 1,4,16 ./internal/faster/ |
//	    go run ./cmd/benchreport -out BENCH_05.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type scenario struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Batch       int     `json:"batch"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extra carries custom b.ReportMetric units (e.g. "reclaimed-B/op",
	// "write-amp") keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Note      string             `json:"note"`
	Scenarios []scenario         `json:"scenarios"`
	Speedups  map[string]float64 `json:"speedups"`
}

func main() {
	out := flag.String("out", "BENCH_05.json", "JSON report path")
	flag.Parse()

	var scenarios []scenario
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") {
			failed = true
		}
		if s, ok := parseBenchLine(line); ok {
			scenarios = append(scenarios, s)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if failed {
		fatal("benchmark run failed; no report written")
	}
	if len(scenarios) == 0 {
		fatal("no benchmark result lines found on stdin")
	}

	rep := report{
		Note:      "ns_per_op and allocs_per_op are per operation (batched scenarios already divide by the ops in each window)",
		Scenarios: scenarios,
		Speedups:  speedups(scenarios),
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("benchreport: wrote %s (%d scenarios)\n", *out, len(scenarios))
}

// parseBenchLine parses one `go test -bench -benchmem` result line:
//
//	BenchmarkReadU64-16   5226902   221.4 ns/op   0 B/op   0 allocs/op
//
// (the "-16" proc suffix is absent when the benchmark ran at -cpu 1).
// Everything after the iteration count is (value, unit) pairs; ns/op,
// B/op and allocs/op land in the named fields, and any custom
// b.ReportMetric units (write-amp, reclaimed-B/op, ...) land in Extra.
func parseBenchLine(line string) (scenario, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
		return scenario{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs, name = p, name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return scenario{}, false
	}
	s := scenario{Name: name, Procs: procs, Batch: 1, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return scenario{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			s.NsPerOp = v
		case "B/op":
			s.BytesPerOp = int64(v)
		case "allocs/op":
			s.AllocsPerOp = int64(v)
		default:
			if s.Extra == nil {
				s.Extra = make(map[string]float64)
			}
			s.Extra[unit] = v
		}
	}
	if s.NsPerOp <= 0 {
		return scenario{}, false
	}
	s.OpsPerSec = 1e9 / s.NsPerOp
	if strings.Contains(name, "Batch") {
		s.Batch = 64 // window size of the Batch* hot-path benchmarks
	}
	return s, true
}

// speedups pairs each Batch<X> scenario with its single-op <X> twin at
// the same proc count: speedup = single ns/op ÷ batched ns/op.
func speedups(scenarios []scenario) map[string]float64 {
	byKey := make(map[string]scenario)
	for _, s := range scenarios {
		byKey[fmt.Sprintf("%s-%d", s.Name, s.Procs)] = s
	}
	out := make(map[string]float64)
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := byKey[k]
		if !strings.HasPrefix(s.Name, "Batch") {
			continue
		}
		single, ok := byKey[fmt.Sprintf("%s-%d", strings.TrimPrefix(s.Name, "Batch"), s.Procs)]
		if !ok {
			continue
		}
		out[fmt.Sprintf("%s_cpu%d", strings.ToLower(s.Name), s.Procs)] = single.NsPerOp / s.NsPerOp
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
