// Command cachesim regenerates Figures 14, 15 and 16 of the FASTER paper:
// cache miss ratios of FIFO, LRU_1, LRU_2, CLOCK and the HybridLog's
// implicit second-chance protocol, over uniform, Zipfian (theta=0.99) and
// shifting hot-set traces, at cache sizes of 1/2, 1/4, 1/8 and 1/16 of
// the key space.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/cachesim"
	"repro/internal/ycsb"
)

func main() {
	var (
		keys     = flag.Uint64("keys", 1<<16, "key space size")
		accesses = flag.Uint64("accesses", 1<<20, "measured accesses per run (after warmup)")
		seed     = flag.Int64("seed", 42, "trace seed")
	)
	flag.Parse()

	fractions := []int{2, 4, 8, 16}
	type traceDef struct {
		fig  string
		name string
		mk   func() func() uint64
	}
	traces := []traceDef{
		{"Fig 14", "uniform", func() func() uint64 {
			return ycsb.NewUniform(*keys, *seed).Next
		}},
		{"Fig 15", "zipf(0.99)", func() func() uint64 {
			return ycsb.NewZipfian(*keys, ycsb.DefaultTheta, *seed).Unscrambled().Next
		}},
		{"Fig 16", "hot-set", func() func() uint64 {
			return ycsb.NewHotSet(ycsb.HotSetConfig{
				Keys: *keys, HotFrac: 0.2, HotProb: 0.9,
				ShiftEvery: *keys / 4,
			}, *seed).Next
		}},
	}

	for _, tr := range traces {
		fmt.Printf("\n--- %s: cache miss ratio, %s trace (keys=%d) ---\n", tr.fig, tr.name, *keys)
		w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', 0)
		fmt.Fprintf(w, "cache/total\tFIFO\tLRU_1\tLRU_2\tCLOCK\tHLOG\n")
		for _, frac := range fractions {
			capacity := int(*keys) / frac
			fmt.Fprintf(w, "1/%d", frac)
			for _, mk := range cachesim.Protocols() {
				res := cachesim.Run(mk, capacity, tr.mk(), *accesses)
				fmt.Fprintf(w, "\t%.3f", res.MissRatio())
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
}
