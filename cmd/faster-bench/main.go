// Command faster-bench regenerates the throughput experiments of the
// FASTER paper's evaluation (Figs 8-13, the §7.2.2 tag ablation, the
// §7.2.4 Redis-style pipelining comparison, and the §7.3 log-bandwidth
// probe) as printed tables. Scales are configurable; defaults are laptop
// sized. See EXPERIMENTS.md for the mapping to the paper's figures.
//
// Usage:
//
//	faster-bench -fig all
//	faster-bench -fig 9a -keys 200000 -duration 5s -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment: 8, 9a, 9b, 10, 11, 12, 13, tag, redis, net, netvs, bw, all")
		keys     = flag.Uint64("keys", 100_000, "dataset size in keys (paper: 250M)")
		duration = flag.Duration("duration", 2*time.Second, "measurement window per cell (paper: 30s)")
		threads  = flag.Int("threads", 0, "max threads (default 2*GOMAXPROCS; paper: 56)")
		seed     = flag.Int64("seed", 42, "workload seed")
		metrics  = flag.Bool("metrics", false, "dump the store metrics report after each FASTER cell")
	)
	flag.Parse()

	o := bench.Options{
		Keys:        *keys,
		Duration:    *duration,
		MaxThreads:  *threads,
		Out:         os.Stdout,
		Seed:        *seed,
		DumpMetrics: *metrics,
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "faster-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("8", func() error { _, err := bench.Fig8(o); return err })
	run("9a", func() error { _, err := bench.Fig9a(o); return err })
	run("9b", func() error { _, err := bench.Fig9b(o); return err })
	run("10", func() error { _, err := bench.Fig10(o); return err })
	run("11", func() error { _, err := bench.Fig11(o); return err })
	run("12", func() error { _, err := bench.Fig12(o); return err })
	run("13", func() error { _, err := bench.Fig13(o); return err })
	run("tag", func() error { _, err := bench.TagAblation(o); return err })
	run("redis", func() error { _, err := bench.RedisPipeline(o, 10, nil); return err })
	run("net", func() error { _, err := bench.NetPipeline(o, 10, nil); return err })
	// netvs reruns both halves to print the ratio table, so it is
	// explicit-only: "all" already covers redis and net separately.
	if *fig == "netvs" {
		run("netvs", func() error { return bench.NetVsRedis(o, 10, nil) })
	}
	run("bw", func() error { _, err := bench.LogBandwidth(o); return err })
}
