// Command faster-cli is an interactive shell over a FASTER store — a
// demonstration and debugging tool for the library.
//
//	faster-cli [-dir /path/for/log]
//
// Commands:
//
//	set <key> <value>     blind upsert (string value)
//	get <key>             read
//	add <key> <n>         RMW: add n to an 8-byte counter
//	del <key>             delete
//	scan                  walk the log in order
//	stats                 store counters, log markers and health state
//	metrics               full metrics report (all layers, named series)
//	checkpoint <dir>      write a checkpoint
//	sessions              dump the live exactly-once session table
//	quit
//
// One non-interactive subcommand exists for post-crash triage:
//
//	faster-cli sessions <checkpoint-dir>
//
// reads the committed session table straight out of a checkpoint
// directory — no log device needed — and prints each GUID with its
// committed serial frontier and the age of its newest commit: exactly
// what a recovered store will answer to `SESSION <guid>`, so operators
// can see what every client is entitled to resume before restarting
// anything.
//
// Counter keys (add/get on keys used with add) are 8-byte sums; set/get
// on other keys store opaque strings. A single store holds only one value
// discipline, so the CLI opens the store with BlobOps and implements add
// as read-modify-write at the client.
//
// Fault-injection knobs (the torture harness, interactively): when any of
// -fault-seed, -fault-read-prob, -fault-write-prob, -fault-latency,
// -torn-writes or -crash-after-bytes is set, the device is wrapped in
// device.Faulty with those settings, and `stats` reports the health
// ladder (healthy/degraded/read-only/failed) plus the injected-fault
// counts — a live demonstration of graceful degradation: break the
// write path and watch `set` fail with ErrReadOnly while `get` keeps
// serving.
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
)

func main() {
	dir := flag.String("dir", "", "directory for the log file (default: in-memory simulated SSD)")
	faultSeed := flag.Uint64("fault-seed", 0, "seed for probabilistic fault injection")
	readProb := flag.Float64("fault-read-prob", 0, "probability each device read fails (0 disables)")
	writeProb := flag.Float64("fault-write-prob", 0, "probability each device write fails (0 disables)")
	faultLatency := flag.Duration("fault-latency", 0, "added device latency per read/write (0 disables)")
	tornWrites := flag.Bool("torn-writes", false, "injected write faults leave a torn prefix on the media")
	crashAfter := flag.Int64("crash-after-bytes", 0, "break the device permanently after N bytes written (0 disables)")
	flag.Parse()

	if flag.Arg(0) == "sessions" {
		dumpSessions(flag.Arg(1))
		return
	}

	var dev device.Device
	if *dir == "" {
		dev = device.NewMem(device.MemConfig{})
	} else {
		f, err := device.OpenFile(filepath.Join(*dir, "faster.log"), 4)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faster-cli: %v\n", err)
			os.Exit(1)
		}
		dev = f
	}
	var faulty *device.Faulty
	if *faultSeed != 0 || *readProb > 0 || *writeProb > 0 ||
		*faultLatency > 0 || *tornWrites || *crashAfter > 0 {
		faulty = device.NewFaulty(dev)
		faulty.SeedFaults(*faultSeed, *readProb, *writeProb)
		faulty.TornWrites(*tornWrites)
		faulty.InjectLatency(*faultLatency, *faultLatency)
		if *crashAfter > 0 {
			faulty.CrashAfterBytes(*crashAfter)
		}
		dev = faulty
	}
	store, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 16,
		PageBits:     16,
		BufferPages:  64,
		Device:       dev,
		Ops:          faster.BlobOps{},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faster-cli: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()
	sess := store.StartSession()
	defer func() { sess.Close() }() // sess is swapped around checkpoints

	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("faster-cli ready (set/get/add/del/scan/stats/metrics/checkpoint/sessions/quit)")
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "set":
			if len(fields) < 3 {
				fmt.Println("usage: set <key> <value>")
				continue
			}
			st, err := sess.Upsert([]byte(fields[1]), []byte(strings.Join(fields[2:], " ")))
			report(st, err, "")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			out := make([]byte, 256)
			st, err := sess.Read([]byte(fields[1]), nil, out, nil)
			if st == faster.Pending {
				for _, r := range sess.CompletePending(true) {
					st = r.Status
				}
			}
			report(st, err, strings.TrimRight(string(out), "\x00"))
		case "add":
			if len(fields) != 3 {
				fmt.Println("usage: add <key> <n>")
				continue
			}
			n, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad number:", err)
				continue
			}
			// Client-side RMW over BlobOps: read, add, upsert.
			key := []byte(fields[1])
			out := make([]byte, 8)
			st, _ := sess.Read(key, nil, out, nil)
			if st == faster.Pending {
				for _, r := range sess.CompletePending(true) {
					st = r.Status
				}
			}
			cur := uint64(0)
			if st == faster.OK {
				cur = binary.LittleEndian.Uint64(out)
			}
			binary.LittleEndian.PutUint64(out, cur+n)
			st, err = sess.Upsert(key, out)
			report(st, err, fmt.Sprintf("%d", cur+n))
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			st, err := sess.Delete([]byte(fields[1]))
			report(st, err, "")
		case "scan":
			n := 0
			err := store.Scan(faster.ScanOptions{}, func(r faster.ScanRecord) bool {
				kind := "set"
				if r.Tombstone {
					kind = "del"
				}
				fmt.Printf("  %#010x %s %q (%d bytes)\n", r.Address, kind, r.Key, len(r.Value))
				n++
				return n < 100
			})
			if err != nil {
				fmt.Println("scan:", err)
			}
		case "stats":
			s := store.Stats()
			l := store.Log()
			fmt.Printf("  ops=%d inPlace=%d appends=%d pendingIO=%d fuzzy=%d failedCAS=%d\n",
				s.Operations, s.InPlace, s.Appends, s.PendingIOs, s.FuzzyRMWs, s.FailedCAS)
			fmt.Printf("  log: begin=%#x head=%#x safeRO=%#x ro=%#x tail=%#x\n",
				l.BeginAddress(), l.HeadAddress(), l.SafeReadOnlyAddress(),
				l.ReadOnlyAddress(), l.TailAddress())
			fmt.Printf("  health: %s", store.Health())
			if cause := store.HealthCause(); cause != nil {
				fmt.Printf(" (cause: %v)", cause)
			}
			fmt.Println()
			if faulty != nil {
				ir, iw := faulty.InjectedFaults()
				fmt.Printf("  faults: reads=%d writes=%d torn=%d broken=%v\n",
					ir, iw, faulty.TornWriteCount(), faulty.Broken())
			}
		case "sessions":
			printSessions(store.SessionStates(), true)
		case "metrics":
			if err := store.WriteReport(os.Stdout); err != nil {
				fmt.Println("metrics:", err)
			}
		case "checkpoint":
			if len(fields) != 2 {
				fmt.Println("usage: checkpoint <dir>")
				continue
			}
			// The shell's own idle session would pin the epoch and wedge
			// the checkpoint's safe-RO shift, so drop it around the call.
			sess.Close()
			info, err := store.Checkpoint(fields[1])
			sess = store.StartSession()
			if err != nil {
				fmt.Println("checkpoint:", err)
				continue
			}
			fmt.Printf("  checkpoint ok: t1=%#x t2=%#x\n", info.T1, info.T2)
		default:
			fmt.Println("unknown command:", fields[0])
		}
	}
}

// dumpSessions implements `faster-cli sessions <checkpoint-dir>`: the
// committed session table as a recovered store would answer it. Sharded
// checkpoint directories (manifest over per-shard generations) merge
// each GUID's per-shard frontiers to the max acked serial.
func dumpSessions(dir string) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "usage: faster-cli sessions <checkpoint-dir>")
		os.Exit(2)
	}
	states, err := faster.ReadShardedCheckpointSessions(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faster-cli: %v\n", err)
		os.Exit(1)
	}
	printSessions(states, false)
}

// printSessions renders session states one per line. live adds the
// durable column (meaningless for an offline checkpoint dump, where
// durable == committed by construction).
func printSessions(states []faster.SessionState, live bool) {
	if len(states) == 0 {
		fmt.Println("  no sessions")
		return
	}
	if live {
		fmt.Printf("  %-40s %10s %10s %10s\n", "GUID", "SERIAL", "DURABLE", "AGE")
	} else {
		fmt.Printf("  %-40s %10s %10s\n", "GUID", "SERIAL", "AGE")
	}
	now := time.Now().Unix()
	for _, st := range states {
		age := time.Duration(now-st.UpdatedUnix) * time.Second
		if st.UpdatedUnix == 0 {
			age = 0
		}
		if live {
			fmt.Printf("  %-40s %10d %10d %10s\n", st.GUID, st.Acked, st.Durable, age)
		} else {
			fmt.Printf("  %-40s %10d %10s\n", st.GUID, st.Acked, age)
		}
	}
}

func report(st faster.Status, err error, extra string) {
	switch {
	case err != nil:
		fmt.Println("error:", err)
	case st == faster.OK && extra != "":
		fmt.Println(" ", extra)
	default:
		fmt.Println(" ", st)
	}
}
