// Command faster-server serves a FASTER store over RESP2 TCP — the
// network front-end with overload robustness (connection caps, bounded
// admission, deadlines, health-aware shedding, graceful drain).
//
// Speak to it with any Redis client or redis-cli:
//
//	faster-server -addr :6379 -admin :8080
//	redis-cli -p 6379 SET greeting hello
//	redis-cli -p 6379 GET greeting
//	curl localhost:8080/healthz
//
// With -shards N the key space is partitioned over N independent
// shards (each with its own log device, index, epoch domain, and
// checkpoint generation) behind the same single-node RESP surface;
// pipelined windows and MGET/MSET fan out per shard and rejoin in
// order, and one degraded shard sheds only its own keys.
//
// Supported commands: GET, SET, DEL, INCRBY, MGET, MSET, PING, ECHO,
// QUIT, plus SESSION/SERIAL exactly-once stamping. Under
// overload the server replies -OVERLOADED instead of queueing; with the
// store degraded to read-only, writes get -READONLY while reads keep
// serving. SIGINT/SIGTERM trigger a graceful drain: accepting stops,
// in-flight commands finish under -drain-timeout, and (with -checkpoint)
// a final checkpoint is taken.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6379", "RESP listen address")
		admin   = flag.String("admin", "", "admin HTTP address for /healthz and /metrics (empty: disabled)")
		doPprof = flag.Bool("pprof", false, "expose /debug/pprof/ on the admin address (requires -admin)")

		shards  = flag.Int("shards", 1, "independent store shards behind the front-end")
		dataDir = flag.String("data", "", "data directory for the log device (empty: in-memory device)")
		doRecov = flag.Bool("recover", false, "recover from the newest checkpoint in -data/checkpoints before serving")
		doCkpt  = flag.Bool("checkpoint", false, "take a final checkpoint into -data/checkpoints during graceful drain")

		indexBuckets = flag.Uint64("index-buckets", 1<<16, "initial hash-index buckets")
		pageBits     = flag.Uint("page-bits", 22, "log page size as a power of two")
		bufferPages  = flag.Int("buffer-pages", 32, "in-memory log buffer pages")

		sessions     = flag.Int("sessions", 16, "FASTER session-pool size")
		maxConns     = flag.Int("max-conns", 256, "connection cap (excess shed with -OVERLOADED)")
		maxInFl      = flag.Int("max-inflight", 0, "in-flight command cap (default 4*sessions)")
		idleTO       = flag.Duration("idle-timeout", 5*time.Minute, "per-connection idle timeout")
		opTO         = flag.Duration("op-timeout", 5*time.Second, "per-command deadline; expiry sheds with -TIMEOUT")
		drainTO      = flag.Duration("drain-timeout", 10*time.Second, "graceful drain deadline on SIGTERM")
		maxValue     = flag.Int("max-value-bytes", 512<<10, "largest accepted SET value")
		ioWorkers    = flag.Int("io-workers", 4, "device I/O workers for the file device")
		ioPool       = flag.Int("io-pool", 4, "io-worker pool size completing cold misses out of band")
		ioQueueDepth = flag.Int("io-queue-depth", 0, "bounded cold-miss admission queue (0: 16x io-pool); overflow sheds -OVERLOADED")

		compactAt = flag.Uint64("compact-threshold", 0, "compact when the stable log region exceeds this many bytes (0: manual COMPACT only)")

		readCache = flag.Uint64("read-cache-bytes", 0, "total in-memory read-cache budget across all shards for cold reads (0: disabled; ignored for in-memory devices)")
	)
	flag.Parse()

	if (*doRecov || *doCkpt) && *dataDir == "" {
		fatal("-recover/-checkpoint require -data")
	}
	if *doPprof && *admin == "" {
		fatal("-pprof requires -admin")
	}

	if *shards < 1 {
		fatal("-shards must be at least 1")
	}

	// Devices: file-backed under -data (hlog for a single shard, hlog-<i>
	// per shard otherwise, so single-shard data dirs stay recoverable),
	// else process-lifetime Mem devices (useful for benchmarking the
	// network path without a disk). Shards never share a device.
	devs := make([]device.Device, *shards)
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fatal("create data dir: %v", err)
		}
		for i := range devs {
			name := "hlog"
			if *shards > 1 {
				name = fmt.Sprintf("hlog-%d", i)
			}
			f, err := device.OpenFile(filepath.Join(*dataDir, name), *ioWorkers)
			if err != nil {
				fatal("open log device %s: %v", name, err)
			}
			devs[i] = f
		}
	} else {
		for i := range devs {
			devs[i] = device.NewMem(device.MemConfig{})
		}
	}
	defer func() {
		for _, d := range devs {
			d.Close()
		}
	}()

	cfg := faster.ShardedConfig{
		Shards: *shards,
		Base: faster.Config{
			Ops:          faster.VarLenOps{},
			IndexBuckets: *indexBuckets,
			PageBits:     *pageBits,
			BufferPages:  *bufferPages,
			MaxSessions:  *sessions + 8, // pool + admin/recovery headroom
			IOWorkers:    *ioPool,
			IOQueueDepth: *ioQueueDepth,

			CompactionThreshold: *compactAt,
			ReadCacheBytes:      *readCache,
		},
		NewDevice: func(i int) device.Device { return devs[i] },
	}

	var ckptDir string
	if *dataDir != "" {
		ckptDir = filepath.Join(*dataDir, "checkpoints")
	}

	var store *faster.ShardedStore
	var err error
	if *doRecov {
		store, err = faster.RecoverSharded(cfg, ckptDir)
		if err != nil {
			fatal("recover: %v", err)
		}
		fmt.Printf("faster-server: recovered %d shard(s) from %s\n", store.NumShards(), ckptDir)
	} else {
		store, err = faster.OpenSharded(cfg)
		if err != nil {
			fatal("open store: %v", err)
		}
	}
	defer store.Close()

	scfg := server.Config{
		MaxConns:     *maxConns,
		MaxInFlight:  *maxInFl,
		Sessions:     *sessions,
		IdleTimeout:  *idleTO,
		OpTimeout:    *opTO,
		DrainTimeout: *drainTO,
		MaxValueBytes: func() int {
			if *maxValue > 0 {
				return *maxValue
			}
			return 512 << 10
		}(),
	}
	if *doCkpt {
		scfg.CheckpointDir = ckptDir
	}
	scfg.EnablePprof = *doPprof

	srv, err := server.ListenAndServeSharded(store, *addr, scfg)
	if err != nil {
		fatal("listen: %v", err)
	}
	inflight := scfg.MaxInFlight
	if inflight <= 0 {
		inflight = 4 * *sessions
	}
	fmt.Printf("faster-server: serving RESP on %s (shards=%d sessions=%d conns<=%d inflight<=%d)\n",
		srv.Addr(), store.NumShards(), *sessions, *maxConns, inflight)

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = &http.Server{Addr: *admin, Handler: srv.AdminHandler()}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "faster-server: admin: %v\n", err)
			}
		}()
		surfaces := "/healthz, /metrics"
		if *doPprof {
			surfaces += ", /debug/pprof"
		}
		fmt.Printf("faster-server: admin on %s (%s)\n", *admin, surfaces)
	}

	// Graceful drain on SIGINT/SIGTERM: stop accepting, finish in-flight
	// work under the deadline, optionally checkpoint, then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("faster-server: %v: draining (deadline %v)\n", got, *drainTO)

	start := time.Now()
	drainErr := srv.Close()
	if adminSrv != nil {
		adminSrv.Close()
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "faster-server: drain: %v\n", drainErr)
		store.Close()
		os.Exit(1)
	}
	if err := store.Close(); err != nil {
		fatal("close store: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("faster-server: drained in %v (%d commands served, %d sheds, %d evictions)\n",
		time.Since(start).Round(time.Millisecond), m.Commands, m.OverloadSheds, m.DeadlineEvictions)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faster-server: "+format+"\n", args...)
	os.Exit(1)
}
