// Countstore: the paper's running example (§2.5) — many concurrent
// sessions increment per-key counters with RMW. The SumOps value
// functions use fetch-and-add for in-place updates, and the store is
// opened in CRDT mode so that even RMWs landing in the fuzzy region
// proceed latch-free as delta records (§6.3).
//
//	go run ./examples/countstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"repro/internal/device"
	"repro/internal/faster"
)

const (
	workers    = 8
	increments = 50_000
	keys       = 512
)

func main() {
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	store, err := faster.Open(faster.Config{
		IndexBuckets: keys / 2,
		PageBits:     14,
		BufferPages:  16,
		Device:       dev,
		Ops:          faster.SumOps{},
		CRDT:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := store.StartSession() // Acquire (§2.5)
			defer sess.Close()           // Release
			key := make([]byte, 8)
			for i := 0; i < increments; i++ {
				binary.LittleEndian.PutUint64(key, uint64((w*increments+i)%keys))
				st, err := sess.RMW(key, one, nil)
				if err != nil {
					log.Fatal(err)
				}
				if st == faster.Pending {
					sess.CompletePending(true)
				}
				// Refresh happens automatically every 256 ops;
				// CompletePending is called when work goes async.
			}
		}(w)
	}
	wg.Wait()

	// Verify: the counters must sum to exactly workers*increments.
	sess := store.StartSession()
	defer sess.Close()
	var total uint64
	key := make([]byte, 8)
	out := make([]byte, 8)
	for k := uint64(0); k < keys; k++ {
		binary.LittleEndian.PutUint64(key, k)
		st, err := sess.Read(key, nil, out, nil)
		if err != nil {
			log.Fatal(err)
		}
		if st == faster.Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
			}
		}
		if st == faster.OK {
			total += binary.LittleEndian.Uint64(out)
		}
	}
	fmt.Printf("total count = %d (want %d)\n", total, workers*increments)
	s := store.Stats()
	fmt.Printf("in-place updates: %d, appends: %d, delta records: %d, fuzzy deferrals: %d\n",
		s.InPlace, s.Appends, s.DeltaRecords, s.FuzzyRMWs)
	if total != workers*increments {
		log.Fatal("LOST UPDATES — this should never happen")
	}
}
