// Eventlog: variable-length values, sealed-record growth, and roll-to-
// tail compaction (Appendix C). Each user accumulates an activity string
// via AppendOps RMWs; values grow, so in-place updates decline and the
// store seals records and copies them forward. Periodic compaction rolls
// the live tail of each user's history past the truncation point,
// bounding the log.
//
//	go run ./examples/eventlog
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/device"
	"repro/internal/faster"
)

const users = 200

func main() {
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	store, err := faster.Open(faster.Config{
		IndexBuckets: users,
		PageBits:     12,
		BufferPages:  16,
		Device:       dev,
		Ops:          faster.AppendOps{MaxValueLen: 512},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	sess := store.StartSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(7))
	events := []string{"login;", "view;", "buy;", "logout;"}
	for i := 0; i < 20_000; i++ {
		user := []byte(fmt.Sprintf("user-%03d", rng.Intn(users)))
		ev := []byte(events[rng.Intn(len(events))])
		st, err := sess.RMW(user, ev, nil)
		if err != nil {
			log.Fatal(err)
		}
		if st == faster.Pending {
			sess.CompletePending(true)
		}
	}

	l := store.Log()
	fmt.Printf("before compaction: log spans [%#x, %#x), %d KB on device\n",
		l.BeginAddress(), l.TailAddress(), l.HeadAddress()>>10)

	// Roll the stable prefix forward and truncate it. Compact drives its
	// own session and waits for an epoch drain, so our session parks while
	// it runs.
	cut := l.SafeReadOnlyAddress()
	sess.Park()
	stats, err := store.Compact(cut)
	sess.Unpark()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compaction: %d live users rolled to the tail, %d KB reclaimed\n",
		stats.Copied, stats.ReclaimedBytes>>10)
	fmt.Printf("after compaction: log spans [%#x, %#x)\n",
		l.BeginAddress(), l.TailAddress())

	// Every user's history is still intact.
	out := make([]byte, 512)
	intact := 0
	for u := 0; u < users; u++ {
		user := []byte(fmt.Sprintf("user-%03d", u))
		st, err := sess.Read(user, nil, out, nil)
		if err != nil {
			log.Fatal(err)
		}
		if st == faster.Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
			}
		}
		if st == faster.OK {
			intact++
		}
	}
	fmt.Printf("%d/%d user histories readable after compaction\n", intact, users)
	s := store.Stats()
	fmt.Printf("stats: appends=%d inPlace=%d pendingIO=%d\n", s.Appends, s.InPlace, s.PendingIOs)
}
