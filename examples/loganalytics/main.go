// Loganalytics: Appendix F — the HybridLog is record-oriented and
// approximately time-ordered, so it can be fed to analytics directly.
// This example ingests purchase events as per-customer RMW sums, then
// scans the log as a change feed to compute (a) the hottest customers by
// update count and (b) a point-in-time reconstruction at a log address.
//
//	go run ./examples/loganalytics
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/ycsb"
)

func main() {
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	store, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 12,
		PageBits:     12,  // 4 KB pages, 64 KB buffer: the log spills,
		BufferPages:  16,  // so records accrue versions instead of being
		Device:       dev, // updated in place forever
		Ops:          faster.SumOps{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Ingest: zipf-distributed customers buying things.
	const events = 200_000
	const customers = 10_000
	gen := ycsb.NewZipfian(customers, ycsb.DefaultTheta, 3)
	rng := rand.New(rand.NewSource(4))
	sess := store.StartSession()
	key := make([]byte, 8)
	amount := make([]byte, 8)
	for i := 0; i < events; i++ {
		binary.LittleEndian.PutUint64(key, gen.Next())
		binary.LittleEndian.PutUint64(amount, uint64(rng.Intn(50)+1))
		if st, _ := sess.RMW(key, amount, nil); st == faster.Pending {
			sess.CompletePending(true)
		}
	}
	sess.CompletePending(true)
	midpoint := store.Log().TailAddress()

	// More traffic after the analytics cut-off.
	for i := 0; i < events/4; i++ {
		binary.LittleEndian.PutUint64(key, gen.Next())
		binary.LittleEndian.PutUint64(amount, 1)
		if st, _ := sess.RMW(key, amount, nil); st == faster.Pending {
			sess.CompletePending(true)
		}
	}
	sess.CompletePending(true)
	sess.Close()

	// Analytics pass 1: update frequency per customer across the whole
	// log — every record is one version, so counting records per key
	// measures update heat (the "hottest keys dashboard" of Appendix F).
	heat := map[uint64]int{}
	if err := store.Scan(faster.ScanOptions{}, func(r faster.ScanRecord) bool {
		heat[binary.LittleEndian.Uint64(r.Key)]++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	type kc struct {
		Cust  uint64
		Count int
	}
	var hot []kc
	for c, n := range heat {
		hot = append(hot, kc{c, n})
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Count > hot[j].Count })
	fmt.Println("hottest customers by version count:")
	for _, h := range hot[:5] {
		fmt.Printf("  customer %5d: %d versions in the log\n", h.Cust, h.Count)
	}

	// Analytics pass 2: point-in-time state at the midpoint address —
	// replay records below the cut-off, newest-wins per key.
	state := map[uint64]uint64{}
	if err := store.Scan(faster.ScanOptions{To: midpoint}, func(r faster.ScanRecord) bool {
		k := binary.LittleEndian.Uint64(r.Key)
		if r.Tombstone {
			delete(state, k)
		} else {
			state[k] = binary.LittleEndian.Uint64(r.Value)
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point-in-time at log address %#x: %d customers had activity\n",
		midpoint, len(state))
	fmt.Printf("customer %d's running total at that point: %d\n",
		hot[0].Cust, state[hot[0].Cust])
}
