// Quickstart: open a FASTER store, write, read, update and delete.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/device"
	"repro/internal/faster"
)

func main() {
	// A store needs a device for its log; the in-memory simulated SSD is
	// the quickest way to get started (use device.OpenFile for a real
	// file).
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()

	store, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 12,
		PageBits:     14, // 16 KB pages
		BufferPages:  16,
		Device:       dev,
		Ops:          faster.BlobOps{}, // opaque byte values
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// All operations go through a session (one per goroutine).
	sess := store.StartSession()
	defer sess.Close()

	// Upsert: blind write.
	if st, err := sess.Upsert([]byte("greeting"), []byte("hello, faster!")); err != nil || st != faster.OK {
		log.Fatalf("upsert: %v %v", st, err)
	}

	// Read into a caller-provided buffer.
	out := make([]byte, 14)
	st, err := sess.Read([]byte("greeting"), nil, out, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %v %q\n", st, out)

	// Overwrite happens in place while the record is in the mutable
	// region of the HybridLog.
	sess.Upsert([]byte("greeting"), []byte("hello, again!!"))
	sess.Read([]byte("greeting"), nil, out, nil)
	fmt.Printf("read: %q\n", out)

	// Delete, then observe NotFound.
	sess.Delete([]byte("greeting"))
	st, _ = sess.Read([]byte("greeting"), nil, out, nil)
	fmt.Printf("after delete: %v\n", st)

	fmt.Printf("stats: %+v\n", store.Stats())
}
