// Telemetry: the paper's motivating scenario (§1.1) — a monitoring
// application ingesting CPU readings from a fleet of devices far larger
// than memory, maintaining a per-device running sum with RMW. The log
// buffer is deliberately tiny, so cold devices spill to the simulated SSD
// and hot devices stay in the mutable region; a checkpoint is taken and
// the store is recovered from it at the end.
//
//	go run ./examples/telemetry
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/ycsb"
)

const (
	devices  = 50_000
	readings = 400_000
)

func main() {
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	cfg := faster.Config{
		IndexBuckets: devices / 2,
		PageBits:     14, // 16 KB pages
		BufferPages:  16, // only ~256 KB of buffer for ~1.6 MB of records
		Device:       dev,
		Ops:          faster.SumOps{},
	}
	store, err := faster.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Devices report with a shifting hot set: most traffic comes from a
	// fifth of the fleet at any moment, and the hot set drifts.
	gen := ycsb.NewHotSet(ycsb.HotSetConfig{
		Keys: devices, HotFrac: 0.2, HotProb: 0.9, ShiftEvery: readings / 10,
	}, 1)

	sess := store.StartSession()
	rng := rand.New(rand.NewSource(2))
	key := make([]byte, 8)
	reading := make([]byte, 8)
	pendings := 0
	for i := 0; i < readings; i++ {
		binary.LittleEndian.PutUint64(key, gen.Next())
		binary.LittleEndian.PutUint64(reading, uint64(rng.Intn(100)))
		st, err := sess.RMW(key, reading, nil)
		if err != nil {
			log.Fatal(err)
		}
		if st == faster.Pending {
			pendings++
			if pendings%64 == 0 {
				sess.CompletePending(false)
			}
		}
	}
	sess.CompletePending(true)
	sess.Close()

	l := store.Log()
	fmt.Printf("ingested %d readings over %d devices\n", readings, devices)
	fmt.Printf("log: tail=%d KB, in-memory window=[%d..%d] KB, on disk=%d KB\n",
		l.TailAddress()>>10, l.HeadAddress()>>10, l.TailAddress()>>10, l.HeadAddress()>>10)
	s := store.Stats()
	fmt.Printf("in-place=%d appends=%d storage-misses=%d\n", s.InPlace, s.Appends, s.PendingIOs)

	// Checkpoint (§6.5) and recover into a fresh store over the same
	// device, then spot-check a few devices survive.
	dir, err := os.MkdirTemp("", "telemetry-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	info, err := store.Checkpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: index captured over log window [%#x, %#x)\n", info.T1, info.T2)
	store.Close()

	recovered, err := faster.Recover(cfg, dir)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()
	rs := recovered.StartSession()
	defer rs.Close()
	found := 0
	out := make([]byte, 8)
	for d := uint64(0); d < 1000; d++ {
		binary.LittleEndian.PutUint64(key, d)
		st, err := rs.Read(key, nil, out, nil)
		if err != nil {
			log.Fatal(err)
		}
		if st == faster.Pending {
			for _, r := range rs.CompletePending(true) {
				st = r.Status
			}
		}
		if st == faster.OK {
			found++
		}
	}
	fmt.Printf("recovery: %d of the first 1000 devices have state after recovery\n", found)
}
