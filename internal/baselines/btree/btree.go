// Package btree is the evaluation's stand-in for Masstree (§7.1): a
// concurrent, purely in-memory ordered index used for point operations.
// Like Masstree it supports in-place value updates and scales across
// threads; unlike FASTER it keeps keys in the index and cannot spill to
// storage.
//
// The tree is a B+tree over uint64 keys with reader/writer latch
// crabbing: readers hold at most two read latches while descending;
// writers split full nodes preemptively on the way down (top-down
// insertion), so a parent latch can always be released once the child is
// latched. Deletion removes keys from leaves without rebalancing — the
// YCSB-style workloads the baseline serves never shrink the key space, so
// lazy deletion keeps the latch protocol simple.
package btree

import (
	"sort"
	"sync"
)

// fanout is the maximum number of keys per node.
const fanout = 64

type node struct {
	mu   sync.RWMutex
	leaf bool
	n    int
	keys [fanout]uint64
	// children is used by inner nodes (n+1 entries), values by leaves.
	children [fanout + 1]*node
	values   [fanout][]byte
	next     *node // leaf-level chain for scans
}

// Tree is a concurrent B+tree.
type Tree struct {
	mu   sync.RWMutex // guards the root pointer
	root *node
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// search returns the index of the first key >= k.
func (nd *node) search(k uint64) int {
	return sort.Search(nd.n, func(i int) bool { return nd.keys[i] >= k })
}

// childIndex returns which child to descend into for key k.
func (nd *node) childIndex(k uint64) int {
	// Inner node separator convention: child i holds keys < keys[i];
	// the last child holds the rest.
	i := sort.Search(nd.n, func(i int) bool { return k < nd.keys[i] })
	return i
}

// Get copies the value for key into out, reporting whether it exists.
func (t *Tree) Get(key uint64, out []byte) bool {
	t.mu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.mu.RUnlock()
	for !cur.leaf {
		child := cur.children[cur.childIndex(key)]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	defer cur.mu.RUnlock()
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		copy(out, cur.values[i])
		return true
	}
	return false
}

// Put blindly sets the value for key, updating in place when possible.
func (t *Tree) Put(key uint64, value []byte) {
	t.modify(key, func(dst *[]byte, exists bool) {
		if exists && len(*dst) >= len(value) {
			copy(*dst, value)
			*dst = (*dst)[:len(value)]
			return
		}
		*dst = append([]byte(nil), value...)
	})
}

// RMW applies fn to the value for key under the leaf latch: fn receives
// the current value (nil if absent) and returns the new value, which may
// be the same slice mutated in place.
func (t *Tree) RMW(key uint64, fn func(cur []byte) []byte) {
	t.modify(key, func(dst *[]byte, exists bool) {
		if exists {
			*dst = fn(*dst)
		} else {
			*dst = fn(nil)
		}
	})
}

// Delete removes key (lazily: no rebalancing), reporting presence.
func (t *Tree) Delete(key uint64) bool {
	leaf := t.descendWrite(key)
	defer leaf.mu.Unlock()
	i := leaf.search(key)
	if i >= leaf.n || leaf.keys[i] != key {
		return false
	}
	copy(leaf.keys[i:], leaf.keys[i+1:leaf.n])
	copy(leaf.values[i:], leaf.values[i+1:leaf.n])
	leaf.values[leaf.n-1] = nil
	leaf.n--
	return true
}

// modify applies apply to the (possibly new) value slot for key.
func (t *Tree) modify(key uint64, apply func(dst *[]byte, exists bool)) {
	leaf := t.descendWrite(key)
	defer leaf.mu.Unlock()
	i := leaf.search(key)
	if i < leaf.n && leaf.keys[i] == key {
		apply(&leaf.values[i], true)
		return
	}
	// Insert at i (leaf is guaranteed non-full by preemptive splits).
	copy(leaf.keys[i+1:leaf.n+1], leaf.keys[i:leaf.n])
	copy(leaf.values[i+1:leaf.n+1], leaf.values[i:leaf.n])
	leaf.keys[i] = key
	leaf.values[i] = nil
	leaf.n++
	apply(&leaf.values[i], false)
}

// descendWrite returns the write-latched leaf for key, splitting full
// nodes on the way down so the two-latch crabbing invariant holds.
func (t *Tree) descendWrite(key uint64) *node {
	for {
		t.mu.RLock()
		root := t.root
		root.mu.Lock()
		if root.n == fanout {
			// Full root: grow the tree under the tree-level latch.
			root.mu.Unlock()
			t.mu.RUnlock()
			t.growRoot()
			continue
		}
		t.mu.RUnlock()

		cur := root
		for !cur.leaf {
			idx := cur.childIndex(key)
			child := cur.children[idx]
			child.mu.Lock()
			if child.n == fanout {
				// Split the full child while holding the (non-full)
				// parent; then re-pick the branch.
				t.splitChild(cur, idx)
				child.mu.Unlock()
				continue
			}
			cur.mu.Unlock()
			cur = child
		}
		return cur
	}
}

// growRoot splits a full root, adding a level.
func (t *Tree) growRoot() {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := t.root
	root.mu.Lock()
	defer root.mu.Unlock()
	if root.n != fanout {
		return // lost the race; someone else grew it
	}
	newRoot := &node{leaf: false}
	newRoot.children[0] = root
	// splitChild expects the child latched; it is.
	t.splitChildLocked(newRoot, 0)
	t.root = newRoot
}

// splitChild splits the full child at parent.children[idx]. The caller
// holds the parent (non-full) and the child write latches.
func (t *Tree) splitChild(parent *node, idx int) {
	t.splitChildLocked(parent, idx)
}

// splitChildLocked performs the split; parent and child must be latched.
func (t *Tree) splitChildLocked(parent *node, idx int) {
	child := parent.children[idx]
	mid := child.n / 2
	right := &node{leaf: child.leaf}

	var sep uint64
	if child.leaf {
		// Leaf split: right gets keys[mid:], separator is right's first
		// key (keys < sep stay left).
		copy(right.keys[:], child.keys[mid:child.n])
		copy(right.values[:], child.values[mid:child.n])
		right.n = child.n - mid
		for i := mid; i < child.n; i++ {
			child.values[i] = nil
		}
		child.n = mid
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		// Inner split: median key moves up.
		sep = child.keys[mid]
		copy(right.keys[:], child.keys[mid+1:child.n])
		copy(right.children[:], child.children[mid+1:child.n+1])
		right.n = child.n - mid - 1
		for i := mid + 1; i <= child.n; i++ {
			child.children[i] = nil
		}
		child.n = mid
	}

	// Insert sep and right into the parent at idx.
	copy(parent.keys[idx+1:parent.n+1], parent.keys[idx:parent.n])
	copy(parent.children[idx+2:parent.n+2], parent.children[idx+1:parent.n+1])
	parent.keys[idx] = sep
	parent.children[idx+1] = right
	parent.n++
}

// Len counts keys (O(n); tests and stats).
func (t *Tree) Len() int {
	t.mu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.mu.RUnlock()
	for !cur.leaf {
		child := cur.children[0]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	n := 0
	for {
		n += cur.n
		next := cur.next
		if next == nil {
			cur.mu.RUnlock()
			return n
		}
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
	}
}

// Scan visits keys in [from, to) in order, calling fn under the leaf read
// latch; fn returning false stops the scan.
func (t *Tree) Scan(from, to uint64, fn func(key uint64, value []byte) bool) {
	t.mu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.mu.RUnlock()
	for !cur.leaf {
		child := cur.children[cur.childIndex(from)]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	for {
		for i := cur.search(from); i < cur.n; i++ {
			if cur.keys[i] >= to {
				cur.mu.RUnlock()
				return
			}
			if !fn(cur.keys[i], cur.values[i]) {
				cur.mu.RUnlock()
				return
			}
		}
		next := cur.next
		if next == nil {
			cur.mu.RUnlock()
			return
		}
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
	}
}
