package btree

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func addFn(delta uint64) func([]byte) []byte {
	return func(cur []byte) []byte {
		if cur == nil {
			return u64(delta)
		}
		binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+delta)
		return cur
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := New()
	tr.Put(5, u64(55))
	out := make([]byte, 8)
	if !tr.Get(5, out) || binary.LittleEndian.Uint64(out) != 55 {
		t.Fatalf("Get = %v", out)
	}
	if tr.Get(6, out) {
		t.Fatal("found missing key")
	}
}

func TestManyKeysAndSplits(t *testing.T) {
	tr := New()
	const n = 20_000 // forces multiple levels at fanout 64
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Put(uint64(k), u64(uint64(k)*3))
	}
	out := make([]byte, 8)
	for k := uint64(0); k < n; k++ {
		if !tr.Get(k, out) {
			t.Fatalf("key %d missing", k)
		}
		if got := binary.LittleEndian.Uint64(out); got != k*3 {
			t.Fatalf("key %d = %d, want %d", k, got, k*3)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
}

func TestScanOrdered(t *testing.T) {
	tr := New()
	for _, k := range rand.New(rand.NewSource(2)).Perm(5000) {
		tr.Put(uint64(k), u64(uint64(k)))
	}
	var prev int64 = -1
	count := 0
	tr.Scan(0, 1<<62, func(k uint64, v []byte) bool {
		if int64(k) <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = int64(k)
		count++
		return true
	})
	if count != 5000 {
		t.Fatalf("scan visited %d keys, want 5000", count)
	}
}

func TestScanRange(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 1000; k++ {
		tr.Put(k, u64(k))
	}
	var keys []uint64
	tr.Scan(100, 110, func(k uint64, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 10 || keys[0] != 100 || keys[9] != 109 {
		t.Fatalf("range scan = %v", keys)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 500; k++ {
		tr.Put(k, u64(k))
	}
	for k := uint64(0); k < 500; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	out := make([]byte, 8)
	for k := uint64(0); k < 500; k++ {
		got := tr.Get(k, out)
		if want := k%2 == 1; got != want {
			t.Fatalf("key %d present=%v, want %v", k, got, want)
		}
	}
	if tr.Delete(9999) {
		t.Fatal("delete of missing key returned true")
	}
}

func TestRMWSum(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.RMW(3, addFn(2))
	}
	out := make([]byte, 8)
	tr.Get(3, out)
	if got := binary.LittleEndian.Uint64(out); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestConcurrentInsertsAllPresent(t *testing.T) {
	tr := New()
	const workers = 8
	const perW = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := uint64(w*perW + i)
				tr.Put(k, u64(k+1))
			}
		}(w)
	}
	wg.Wait()
	out := make([]byte, 8)
	for k := uint64(0); k < workers*perW; k++ {
		if !tr.Get(k, out) || binary.LittleEndian.Uint64(out) != k+1 {
			t.Fatalf("key %d wrong after concurrent insert", k)
		}
	}
	if tr.Len() != workers*perW {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perW)
	}
}

func TestConcurrentRMWNoLostUpdates(t *testing.T) {
	tr := New()
	const workers = 8
	const perW = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tr.RMW(uint64(i%10), addFn(1))
			}
		}()
	}
	wg.Wait()
	var total uint64
	out := make([]byte, 8)
	for k := uint64(0); k < 10; k++ {
		tr.Get(k, out)
		total += binary.LittleEndian.Uint64(out)
	}
	if total != workers*perW {
		t.Fatalf("total = %d, want %d (lost updates)", total, workers*perW)
	}
}

func TestConcurrentMixedReadsWrites(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 1000; k++ {
		tr.Put(k, u64(k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]byte, 8)
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(2000))
				if rng.Intn(2) == 0 {
					tr.Get(k, out)
				} else {
					tr.Put(k, u64(k))
				}
			}
		}(int64(w))
	}
	wg.Wait()
	out := make([]byte, 8)
	for k := uint64(0); k < 1000; k++ {
		if !tr.Get(k, out) || binary.LittleEndian.Uint64(out) != k {
			t.Fatalf("key %d corrupted", k)
		}
	}
}

func TestQuickMatchesModel(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint16
		Val uint32
	}
	f := func(steps []step) bool {
		tr := New()
		model := map[uint64]uint64{}
		for _, s := range steps {
			k := uint64(s.Key % 512)
			switch s.Op % 3 {
			case 0:
				tr.Put(k, u64(uint64(s.Val)))
				model[k] = uint64(s.Val)
			case 1:
				tr.RMW(k, addFn(uint64(s.Val)))
				model[k] += uint64(s.Val)
			case 2:
				tr.Delete(k)
				delete(model, k)
			}
		}
		out := make([]byte, 8)
		for k, want := range model {
			if !tr.Get(k, out) || binary.LittleEndian.Uint64(out) != want {
				return false
			}
		}
		return tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
