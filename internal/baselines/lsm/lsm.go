// Package lsm is the evaluation's stand-in for RocksDB (§7.1): a
// log-structured merge-tree key-value store with a skiplist memtable,
// immutable SSTables with bloom filters and sparse indexes, background
// flush and compaction, and a RocksDB-style merge operator for RMW
// workloads. Mirroring the paper's RocksDB configuration, the write-ahead
// log and checksums are disabled; durability is not the baseline's role
// in the benchmarks — read-copy-update cost and merge overhead are.
package lsm

import (
	"errors"
	"sync"
	"sync/atomic"
)

// MergeOperator combines RMW operands, RocksDB style.
type MergeOperator interface {
	// FullMerge applies operands (oldest first) to the existing value
	// (nil if the key had none) and returns the final value.
	FullMerge(key uint64, existing []byte, operands [][]byte) []byte
	// PartialMerge combines two adjacent operands when possible.
	PartialMerge(key uint64, older, newer []byte) ([]byte, bool)
}

// Config configures a DB.
type Config struct {
	// MemtableBytes triggers a flush when the active memtable exceeds
	// it (default 1 MB).
	MemtableBytes int
	// MaxL0Tables triggers an L0->L1 compaction (default 4).
	MaxL0Tables int
	// BloomBitsPerKey sizes bloom filters (default 10).
	BloomBitsPerKey int
	// Dir stores SSTables as files; empty keeps them in memory.
	Dir string
	// Merge is required for Merge() calls.
	Merge MergeOperator
}

// DB is the LSM store.
type DB struct {
	cfg Config

	mu     sync.RWMutex // guards the structure pointers below
	mem    *memtable
	imm    []*memtable // newest first, being flushed
	l0     []*sstable  // newest first, may overlap
	l1     []*sstable  // sorted, non-overlapping
	nextID atomic.Uint64
	seed   int64

	flushCond *sync.Cond
	closing   bool
	bgDone    chan struct{}
	bgErr     atomic.Pointer[error]

	stats struct {
		flushes     atomic.Uint64
		compactions atomic.Uint64
		gets        atomic.Uint64
		bloomSkips  atomic.Uint64
	}
}

// Stats reports background activity counters.
type Stats struct {
	Flushes, Compactions, Gets, BloomSkips uint64
}

// Open creates an LSM DB.
func Open(cfg Config) (*DB, error) {
	if cfg.MemtableBytes == 0 {
		cfg.MemtableBytes = 1 << 20
	}
	if cfg.MaxL0Tables == 0 {
		cfg.MaxL0Tables = 4
	}
	if cfg.BloomBitsPerKey == 0 {
		cfg.BloomBitsPerKey = 10
	}
	db := &DB{cfg: cfg, bgDone: make(chan struct{})}
	db.mem = newMemtable(1)
	db.flushCond = sync.NewCond(&db.mu)
	go db.background()
	return db, nil
}

// Close stops background work and releases tables.
func (db *DB) Close() error {
	db.mu.Lock()
	db.closing = true
	db.flushCond.Broadcast()
	db.mu.Unlock()
	<-db.bgDone
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.l0 {
		t.close()
	}
	for _, t := range db.l1 {
		t.close()
	}
	if p := db.bgErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns counters.
func (db *DB) Stats() Stats {
	return Stats{
		Flushes:     db.stats.flushes.Load(),
		Compactions: db.stats.compactions.Load(),
		Gets:        db.stats.gets.Load(),
		BloomSkips:  db.stats.bloomSkips.Load(),
	}
}

// write installs e for key, rotating the memtable when full.
func (db *DB) write(key uint64, e *entry) {
	db.mu.Lock()
	if db.cfg.Merge != nil && e.kind == kindMerge {
		// Collapse against the current memtable entry when possible,
		// the standard partial-merge optimisation.
		if cur := db.mem.get(key); cur != nil {
			switch cur.kind {
			case kindSet:
				v := db.cfg.Merge.FullMerge(key, cur.value, [][]byte{e.value})
				e = &entry{kind: kindSet, value: v}
			case kindMerge:
				if v, ok := db.cfg.Merge.PartialMerge(key, cur.value, e.value); ok {
					e = &entry{kind: kindMerge, value: v}
				}
			case kindDelete:
				v := db.cfg.Merge.FullMerge(key, nil, [][]byte{e.value})
				e = &entry{kind: kindSet, value: v}
			}
		}
	}
	db.mem.set(key, e)
	if db.mem.bytes >= db.cfg.MemtableBytes {
		// Rotate; backpressure when the flush pipeline is deep, like
		// RocksDB's write stalls.
		for len(db.imm) >= 4 && !db.closing {
			db.flushCond.Wait()
		}
		db.imm = append([]*memtable{db.mem}, db.imm...)
		db.seed++
		db.mem = newMemtable(db.seed)
		db.flushCond.Broadcast()
	}
	db.mu.Unlock()
}

// Put blindly sets key = value.
func (db *DB) Put(key uint64, value []byte) {
	db.write(key, &entry{kind: kindSet, value: append([]byte(nil), value...)})
}

// Delete removes key.
func (db *DB) Delete(key uint64) {
	db.write(key, &entry{kind: kindDelete})
}

// Merge applies an RMW operand (requires Config.Merge).
func (db *DB) Merge(key uint64, operand []byte) {
	db.write(key, &entry{kind: kindMerge, value: append([]byte(nil), operand...)})
}

// errNoMerge reports Merge entries found without an operator.
var errNoMerge = errors.New("lsm: merge entries present but no MergeOperator configured")

// Get copies the value for key into out, reporting presence.
func (db *DB) Get(key uint64, out []byte) (bool, error) {
	db.stats.gets.Add(1)
	db.mu.RLock()
	mem := db.mem
	imm := db.imm
	l0 := db.l0
	l1 := db.l1
	db.mu.RUnlock()

	// Newest to oldest, accumulating merge operands (newest first).
	var operands [][]byte
	resolve := func(e *entry) (bool, bool, error) { // (present, done, err)
		switch e.kind {
		case kindSet:
			v := e.value
			if len(operands) > 0 {
				if db.cfg.Merge == nil {
					return false, true, errNoMerge
				}
				v = db.cfg.Merge.FullMerge(key, v, reverse(operands))
			}
			copy(out, v)
			return true, true, nil
		case kindDelete:
			if len(operands) > 0 {
				if db.cfg.Merge == nil {
					return false, true, errNoMerge
				}
				copy(out, db.cfg.Merge.FullMerge(key, nil, reverse(operands)))
				return true, true, nil
			}
			return false, true, nil
		case kindMerge:
			operands = append(operands, e.value)
			return false, false, nil
		}
		return false, true, nil
	}

	if e := mem.get(key); e != nil {
		if p, done, err := resolve(e); done {
			return p, err
		}
	}
	for _, m := range imm {
		if e := m.get(key); e != nil {
			if p, done, err := resolve(e); done {
				return p, err
			}
		}
	}
	for _, t := range l0 {
		if !t.bloomMayContain(key) {
			db.stats.bloomSkips.Add(1)
			continue
		}
		e, err := t.get(key)
		if err != nil {
			return false, err
		}
		if e == nil {
			continue
		}
		if p, done, err := resolve(e); done {
			return p, err
		}
	}
	for _, t := range l1 {
		if key < t.minKey || key > t.maxKey {
			continue
		}
		if !t.bloomMayContain(key) {
			db.stats.bloomSkips.Add(1)
			continue
		}
		e, err := t.get(key)
		if err != nil {
			return false, err
		}
		if e == nil {
			continue
		}
		if p, done, err := resolve(e); done {
			return p, err
		}
		break // L1 is non-overlapping: one table can hold the key
	}
	// Bottom reached with only operands.
	if len(operands) > 0 {
		if db.cfg.Merge == nil {
			return false, errNoMerge
		}
		copy(out, db.cfg.Merge.FullMerge(key, nil, reverse(operands)))
		return true, nil
	}
	return false, nil
}

func reverse(ops [][]byte) [][]byte {
	out := make([][]byte, len(ops))
	for i, o := range ops {
		out[len(ops)-1-i] = o
	}
	return out
}

// WaitForQuiescence blocks until all immutable memtables are flushed and
// no compaction is pending (tests and fair benchmark accounting).
func (db *DB) WaitForQuiescence() {
	db.mu.Lock()
	for (len(db.imm) > 0 || len(db.l0) > db.cfg.MaxL0Tables) && !db.closing {
		db.flushCond.Wait()
	}
	db.mu.Unlock()
}

// background runs the flush / compaction loop.
func (db *DB) background() {
	defer close(db.bgDone)
	for {
		db.mu.Lock()
		for len(db.imm) == 0 && len(db.l0) <= db.cfg.MaxL0Tables && !db.closing {
			db.flushCond.Wait()
		}
		if db.closing && len(db.imm) == 0 {
			db.mu.Unlock()
			return
		}
		var work func() error
		switch {
		case len(db.imm) > 0:
			m := db.imm[len(db.imm)-1] // oldest first
			work = func() error { return db.flushMemtable(m) }
		default:
			work = db.compact
		}
		db.mu.Unlock()
		if err := work(); err != nil {
			db.bgErr.Store(&err)
			db.mu.Lock()
			db.closing = true
			db.flushCond.Broadcast()
			db.mu.Unlock()
			return
		}
	}
}

// flushMemtable writes the oldest immutable memtable as an L0 table.
func (db *DB) flushMemtable(m *memtable) error {
	var pairs []kvPair
	m.iterate(func(k uint64, e *entry) bool {
		pairs = append(pairs, kvPair{key: k, ent: e})
		return true
	})
	t, err := buildSSTable(db.nextID.Add(1), pairs, db.cfg.BloomBitsPerKey, db.cfg.Dir)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.l0 = append([]*sstable{t}, db.l0...)
	db.imm = db.imm[:len(db.imm)-1]
	db.stats.flushes.Add(1)
	db.flushCond.Broadcast()
	db.mu.Unlock()
	return nil
}

// compact merges all L0 tables and L1 into a fresh L1 run.
func (db *DB) compact() error {
	db.mu.RLock()
	l0 := append([]*sstable(nil), db.l0...)
	l1 := append([]*sstable(nil), db.l1...)
	db.mu.RUnlock()
	if len(l0) == 0 {
		return nil
	}

	// Gather: newest-first sources; keep the newest version per key,
	// folding merge chains.
	merged := map[uint64]*entry{}
	sources := append(append([]*sstable(nil), l0...), l1...)
	for _, t := range sources {
		err := t.iterate(func(k uint64, e *entry) bool {
			cur, seen := merged[k]
			if !seen {
				merged[k] = e
				return true
			}
			// cur is newer than e (sources scanned newest first).
			if cur.kind == kindMerge {
				switch e.kind {
				case kindSet:
					v := db.cfg.Merge.FullMerge(k, e.value, [][]byte{cur.value})
					merged[k] = &entry{kind: kindSet, value: v}
				case kindDelete:
					v := db.cfg.Merge.FullMerge(k, nil, [][]byte{cur.value})
					merged[k] = &entry{kind: kindSet, value: v}
				case kindMerge:
					if v, ok := db.cfg.Merge.PartialMerge(k, e.value, cur.value); ok {
						merged[k] = &entry{kind: kindMerge, value: v}
					}
					// Without partial merge support the older operand
					// is dropped; SumMerge always partial-merges.
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	pairs := make([]kvPair, 0, len(merged))
	for k, e := range merged {
		if e.kind == kindDelete {
			continue // bottom level: tombstones drop out
		}
		pairs = append(pairs, kvPair{key: k, ent: e})
	}
	sortPairs(pairs)
	t, err := buildSSTable(db.nextID.Add(1), pairs, db.cfg.BloomBitsPerKey, db.cfg.Dir)
	if err != nil {
		return err
	}

	db.mu.Lock()
	// Only the tables we compacted are replaced; new L0 flushes that
	// landed meanwhile stay.
	fresh := db.l0[:len(db.l0)-len(l0)]
	db.l0 = append([]*sstable(nil), fresh...)
	db.l1 = []*sstable{t}
	db.stats.compactions.Add(1)
	db.flushCond.Broadcast()
	db.mu.Unlock()
	for _, old := range sources {
		old.close()
	}
	return nil
}

func sortPairs(pairs []kvPair) {
	// Simple insertion-friendly sort; table sizes are bounded by the
	// compaction inputs.
	quickSortPairs(pairs, 0, len(pairs)-1)
}

func quickSortPairs(p []kvPair, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && p[j].key < p[j-1].key; j-- {
					p[j], p[j-1] = p[j-1], p[j]
				}
			}
			return
		}
		pivot := p[(lo+hi)/2].key
		i, j := lo, hi
		for i <= j {
			for p[i].key < pivot {
				i++
			}
			for p[j].key > pivot {
				j--
			}
			if i <= j {
				p[i], p[j] = p[j], p[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortPairs(p, lo, j)
			lo = i
		} else {
			quickSortPairs(p, i, hi)
			hi = j
		}
	}
}

// SumMerge is a MergeOperator for 8-byte little-endian counters — the
// analogue of the paper's RMW "sum" workload on RocksDB's merge API.
type SumMerge struct{}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(b); i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLeU64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// FullMerge implements MergeOperator.
func (SumMerge) FullMerge(_ uint64, existing []byte, operands [][]byte) []byte {
	sum := leU64(existing)
	for _, op := range operands {
		sum += leU64(op)
	}
	return putLeU64(sum)
}

// PartialMerge implements MergeOperator.
func (SumMerge) PartialMerge(_ uint64, older, newer []byte) ([]byte, bool) {
	return putLeU64(leU64(older) + leU64(newer)), true
}
