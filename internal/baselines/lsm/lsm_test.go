package lsm

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func openSmall(t testing.TB, dir string) *DB {
	t.Helper()
	db, err := Open(Config{MemtableBytes: 4 << 10, MaxL0Tables: 2, Merge: SumMerge{}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGet(t *testing.T) {
	db := openSmall(t, "")
	db.Put(1, u64(11))
	out := make([]byte, 8)
	ok, err := db.Get(1, out)
	if err != nil || !ok || binary.LittleEndian.Uint64(out) != 11 {
		t.Fatalf("Get = (%v, %v, %v)", ok, err, out)
	}
	if ok, _ := db.Get(2, out); ok {
		t.Fatal("found missing key")
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	db := openSmall(t, "")
	db.Put(1, u64(1))
	db.Put(1, u64(2))
	out := make([]byte, 8)
	db.Get(1, out)
	if binary.LittleEndian.Uint64(out) != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestDeleteHidesOlderVersions(t *testing.T) {
	db := openSmall(t, "")
	db.Put(1, u64(1))
	db.Delete(1)
	out := make([]byte, 8)
	if ok, _ := db.Get(1, out); ok {
		t.Fatal("deleted key visible")
	}
	db.Put(1, u64(3))
	if ok, _ := db.Get(1, out); !ok || binary.LittleEndian.Uint64(out) != 3 {
		t.Fatal("re-insert after delete failed")
	}
}

func TestMergeSums(t *testing.T) {
	db := openSmall(t, "")
	for i := 0; i < 100; i++ {
		db.Merge(9, u64(2))
	}
	out := make([]byte, 8)
	ok, err := db.Get(9, out)
	if err != nil || !ok || binary.LittleEndian.Uint64(out) != 200 {
		t.Fatalf("merged counter = (%v, %v, %d)", ok, err, binary.LittleEndian.Uint64(out))
	}
}

func TestFlushAndReadBack(t *testing.T) {
	db := openSmall(t, "")
	const n = 3000 // several memtables worth at 4 KB threshold
	for i := uint64(0); i < n; i++ {
		db.Put(i, u64(i+1))
	}
	db.WaitForQuiescence()
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush happened; threshold not exercised")
	}
	out := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		ok, err := db.Get(i, out)
		if err != nil || !ok || binary.LittleEndian.Uint64(out) != i+1 {
			t.Fatalf("key %d = (%v, %v, %d)", i, ok, err, binary.LittleEndian.Uint64(out))
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	db := openSmall(t, "")
	const n = 2000
	// Two write passes so compaction must merge versions.
	for pass := uint64(1); pass <= 2; pass++ {
		for i := uint64(0); i < n; i++ {
			db.Put(i, u64(i*pass))
		}
	}
	db.WaitForQuiescence()
	if db.Stats().Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	out := make([]byte, 8)
	for i := uint64(0); i < n; i++ {
		ok, err := db.Get(i, out)
		if err != nil || !ok || binary.LittleEndian.Uint64(out) != i*2 {
			t.Fatalf("key %d after compaction = (%v, %v, %d), want %d",
				i, ok, err, binary.LittleEndian.Uint64(out), i*2)
		}
	}
}

func TestMergeAcrossFlushes(t *testing.T) {
	db := openSmall(t, "")
	const keys = 50
	const rounds = 60
	for r := 0; r < rounds; r++ {
		for k := uint64(0); k < keys; k++ {
			db.Merge(k, u64(1))
		}
		// Interleave filler to force rotations.
		for f := uint64(0); f < 20; f++ {
			db.Put(1_000_000+f, make([]byte, 64))
		}
	}
	db.WaitForQuiescence()
	out := make([]byte, 8)
	for k := uint64(0); k < keys; k++ {
		ok, err := db.Get(k, out)
		if err != nil || !ok || binary.LittleEndian.Uint64(out) != rounds {
			t.Fatalf("merge counter %d = (%v, %v, %d), want %d",
				k, ok, err, binary.LittleEndian.Uint64(out), rounds)
		}
	}
}

func TestFileBackedTables(t *testing.T) {
	db := openSmall(t, t.TempDir())
	const n = 3000
	for i := uint64(0); i < n; i++ {
		db.Put(i, u64(i^0xabc))
	}
	db.WaitForQuiescence()
	out := make([]byte, 8)
	for i := uint64(0); i < n; i += 37 {
		ok, err := db.Get(i, out)
		if err != nil || !ok || binary.LittleEndian.Uint64(out) != i^0xabc {
			t.Fatalf("file-backed key %d = (%v, %v)", i, ok, err)
		}
	}
}

func TestBloomFilterSkipsTables(t *testing.T) {
	db := openSmall(t, "")
	for i := uint64(0); i < 2000; i++ {
		db.Put(i*2, u64(i)) // even keys only
	}
	db.WaitForQuiescence()
	out := make([]byte, 8)
	for i := uint64(0); i < 500; i++ {
		db.Get(i*2+1, out) // odd keys: all misses
	}
	if db.Stats().BloomSkips == 0 {
		t.Fatal("bloom filters never skipped a table probe")
	}
}

func TestConcurrentWritersAndReaders(t *testing.T) {
	db := openSmall(t, "")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				db.Merge(uint64(i%64), u64(1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := make([]byte, 8)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 3000; i++ {
			db.Get(uint64(rng.Intn(64)), out)
		}
	}()
	wg.Wait()
	db.WaitForQuiescence()
	var total uint64
	out := make([]byte, 8)
	for k := uint64(0); k < 64; k++ {
		if ok, err := db.Get(k, out); err != nil {
			t.Fatal(err)
		} else if ok {
			total += binary.LittleEndian.Uint64(out)
		}
	}
	if total != 4*3000 {
		t.Fatalf("merged total = %d, want %d", total, 4*3000)
	}
}

func TestQuickMatchesModel(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
		Val uint16
	}
	f := func(steps []step) bool {
		db, err := Open(Config{MemtableBytes: 512, MaxL0Tables: 2, Merge: SumMerge{}})
		if err != nil {
			return false
		}
		defer db.Close()
		model := map[uint64]uint64{}
		for _, s := range steps {
			k := uint64(s.Key % 32)
			switch s.Op % 4 {
			case 0:
				db.Put(k, u64(uint64(s.Val)))
				model[k] = uint64(s.Val)
			case 1:
				db.Merge(k, u64(uint64(s.Val)))
				model[k] += uint64(s.Val)
			case 2:
				db.Delete(k)
				delete(model, k)
			case 3:
				out := make([]byte, 8)
				ok, err := db.Get(k, out)
				if err != nil {
					return false
				}
				want, exists := model[k]
				if ok != exists {
					return false
				}
				if exists && binary.LittleEndian.Uint64(out) != want {
					return false
				}
			}
		}
		db.WaitForQuiescence()
		out := make([]byte, 8)
		for k, want := range model {
			ok, err := db.Get(k, out)
			if err != nil || !ok || binary.LittleEndian.Uint64(out) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
