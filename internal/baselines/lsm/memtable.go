package lsm

import (
	"math/rand"
	"sync/atomic"
)

// entryKind distinguishes memtable/SSTable entry types.
type entryKind uint8

const (
	kindSet entryKind = iota
	kindDelete
	kindMerge // collapsed merge operand (RocksDB-style)
)

// entry is an immutable value version; nodes swap entry pointers.
type entry struct {
	kind  entryKind
	value []byte
}

const maxHeight = 12

// memNode is a skiplist node. The tower pointers and the entry pointer
// are atomic so readers traverse without locks; writers are serialized by
// the DB write latch.
type memNode struct {
	key   uint64
	ent   atomic.Pointer[entry]
	tower []atomic.Pointer[memNode]
}

// memtable is a skiplist keyed by uint64 with lock-free reads and
// externally synchronized writes, mirroring RocksDB's memtable role.
type memtable struct {
	head   *memNode
	height atomic.Int32 // read by lock-free readers
	rng    *rand.Rand
	bytes  int // approximate memory footprint
	count  int
}

func newMemtable(seed int64) *memtable {
	m := &memtable{
		head: &memNode{tower: make([]atomic.Pointer[memNode], maxHeight)},
		rng:  rand.New(rand.NewSource(seed)),
	}
	m.height.Store(1)
	return m
}

// findGreaterOrEqual returns the first node with key >= k and the
// predecessors at each level (for insertion).
func (m *memtable) findGreaterOrEqual(k uint64, prev []*memNode) *memNode {
	x := m.head
	for level := int(m.height.Load()) - 1; level >= 0; level-- {
		for {
			next := x.tower[level].Load()
			if next == nil || next.key >= k {
				break
			}
			x = next
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.tower[0].Load()
}

// get returns the entry for k, or nil.
func (m *memtable) get(k uint64) *entry {
	n := m.findGreaterOrEqual(k, nil)
	if n != nil && n.key == k {
		return n.ent.Load()
	}
	return nil
}

// set inserts or replaces the entry for k. Caller holds the write latch.
func (m *memtable) set(k uint64, e *entry) {
	prev := make([]*memNode, maxHeight)
	for i := int(m.height.Load()); i < maxHeight; i++ {
		prev[i] = m.head
	}
	n := m.findGreaterOrEqual(k, prev)
	if n != nil && n.key == k {
		old := n.ent.Swap(e)
		m.bytes += len(e.value) - len(old.value)
		return
	}
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	if int32(h) > m.height.Load() {
		m.height.Store(int32(h))
	}
	node := &memNode{key: k, tower: make([]atomic.Pointer[memNode], h)}
	node.ent.Store(e)
	for level := 0; level < h; level++ {
		node.tower[level].Store(prev[level].tower[level].Load())
		// Publish bottom-up so readers always find a consistent chain.
		prev[level].tower[level].Store(node)
	}
	m.bytes += 24 + len(e.value)
	m.count++
}

// iterate visits entries in key order.
func (m *memtable) iterate(fn func(k uint64, e *entry) bool) {
	for n := m.head.tower[0].Load(); n != nil; n = n.tower[0].Load() {
		if !fn(n.key, n.ent.Load()) {
			return
		}
	}
}
