package lsm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"repro/internal/xhash"
)

// SSTable format (little endian), mirroring the essentials of a RocksDB
// table: sorted entries, a sparse index for binary search, and a bloom
// filter consulted before any entry probe.
//
//	entries:  count x { key u64 | kind u8 | vlen u32 | value }
//	sparse:   every sparseEvery-th key and its byte offset
//	bloom:    bit array, k probes by double hashing
//	footer:   offsets and counts
//
// Tables are immutable once built. They live either fully in memory or in
// a file accessed with ReadAt (when the DB has a directory), so the
// larger-than-memory experiments touch real storage.

const sparseEvery = 16

type kvPair struct {
	key  uint64
	ent  *entry
	used bool
}

// sstable is one immutable sorted table.
type sstable struct {
	id      uint64
	minKey  uint64
	maxKey  uint64
	count   int
	data    []byte   // entry region (in-memory tables)
	file    *os.File // file-backed tables (data==nil)
	dataLen int

	sparseKeys []uint64
	sparseOffs []uint32

	bloom     []uint64
	bloomK    int
	bloomBits uint64
}

// buildSSTable serializes sorted pairs into a table. dir == "" keeps the
// table in memory; otherwise it is written to a file.
func buildSSTable(id uint64, pairs []kvPair, bloomBitsPerKey int, dir string) (*sstable, error) {
	t := &sstable{id: id, count: len(pairs)}
	if len(pairs) == 0 {
		return t, nil
	}
	t.minKey = pairs[0].key
	t.maxKey = pairs[len(pairs)-1].key

	// Bloom filter.
	bits := uint64(len(pairs)*bloomBitsPerKey + 63)
	t.bloomBits = bits
	t.bloom = make([]uint64, (bits+63)/64)
	t.bloomK = 7
	if bloomBitsPerKey < 10 {
		t.bloomK = bloomBitsPerKey*7/10 + 1
	}

	var buf []byte
	for i, p := range pairs {
		if i%sparseEvery == 0 {
			t.sparseKeys = append(t.sparseKeys, p.key)
			t.sparseOffs = append(t.sparseOffs, uint32(len(buf)))
		}
		var hdr [13]byte
		binary.LittleEndian.PutUint64(hdr[:], p.key)
		hdr[8] = byte(p.ent.kind)
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(p.ent.value)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p.ent.value...)
		t.bloomAdd(p.key)
	}
	t.dataLen = len(buf)

	if dir == "" {
		t.data = buf
		return t, nil
	}
	f, err := os.CreateTemp(dir, fmt.Sprintf("sst-%06d-*.lsm", id))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, err
	}
	t.file = f
	return t, nil
}

func (t *sstable) bloomAdd(key uint64) {
	h1 := xhash.Mix64(key)
	h2 := xhash.Mix64(h1 ^ 0x9e3779b97f4a7c15)
	for i := 0; i < t.bloomK; i++ {
		bit := (h1 + uint64(i)*h2) % t.bloomBits
		t.bloom[bit/64] |= 1 << (bit % 64)
	}
}

func (t *sstable) bloomMayContain(key uint64) bool {
	if t.count == 0 {
		return false
	}
	h1 := xhash.Mix64(key)
	h2 := xhash.Mix64(h1 ^ 0x9e3779b97f4a7c15)
	for i := 0; i < t.bloomK; i++ {
		bit := (h1 + uint64(i)*h2) % t.bloomBits
		if t.bloom[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// readAt fills buf from the table's entry region.
func (t *sstable) readAt(buf []byte, off int) error {
	if t.data != nil {
		copy(buf, t.data[off:])
		return nil
	}
	_, err := t.file.ReadAt(buf, int64(off))
	return err
}

// get returns the entry for key, or nil.
func (t *sstable) get(key uint64) (*entry, error) {
	if t.count == 0 || key < t.minKey || key > t.maxKey || !t.bloomMayContain(key) {
		return nil, nil
	}
	// Sparse index: find the block whose first key is <= key.
	i := sort.Search(len(t.sparseKeys), func(i int) bool { return t.sparseKeys[i] > key })
	if i == 0 {
		return nil, nil
	}
	off := int(t.sparseOffs[i-1])
	end := t.dataLen
	if i < len(t.sparseOffs) {
		end = int(t.sparseOffs[i])
	}
	block := make([]byte, end-off)
	if err := t.readAt(block, off); err != nil {
		return nil, err
	}
	for pos := 0; pos+13 <= len(block); {
		k := binary.LittleEndian.Uint64(block[pos:])
		kind := entryKind(block[pos+8])
		vlen := int(binary.LittleEndian.Uint32(block[pos+9:]))
		if k == key {
			val := make([]byte, vlen)
			copy(val, block[pos+13:pos+13+vlen])
			return &entry{kind: kind, value: val}, nil
		}
		if k > key {
			return nil, nil
		}
		pos += 13 + vlen
	}
	return nil, nil
}

// iterate visits all entries in key order.
func (t *sstable) iterate(fn func(k uint64, e *entry) bool) error {
	if t.count == 0 {
		return nil
	}
	buf := make([]byte, t.dataLen)
	if err := t.readAt(buf, 0); err != nil {
		return err
	}
	for pos := 0; pos+13 <= len(buf); {
		k := binary.LittleEndian.Uint64(buf[pos:])
		kind := entryKind(buf[pos+8])
		vlen := int(binary.LittleEndian.Uint32(buf[pos+9:]))
		val := make([]byte, vlen)
		copy(val, buf[pos+13:pos+13+vlen])
		if !fn(k, &entry{kind: kind, value: val}) {
			return nil
		}
		pos += 13 + vlen
	}
	return nil
}

// sizeBytes returns the table's entry-region size.
func (t *sstable) sizeBytes() int { return t.dataLen }

// close releases file resources.
func (t *sstable) close() {
	if t.file != nil {
		name := t.file.Name()
		t.file.Close()
		os.Remove(name)
		t.file = nil
	}
}
