// Package redcache is the evaluation's stand-in for Redis (§7.2.4): an
// in-memory key-value cache behind a TCP server whose commands are
// executed by a single goroutine (Redis's single-threaded event loop),
// accessed by clients that may pipeline requests. Like Redis, it is not
// concurrent, expects data to fit in memory, and pays a network hop per
// batch — the three differences from FASTER the paper calls out.
//
// The wire protocol is RESP2 via the shared internal/resp codec — the
// same protocol the FASTER network front-end (internal/server) speaks —
// so the §7.2.4 comparison measures the stores, not the framing. Keys
// are 8-byte little-endian binary bulk strings; INCRBY deltas and
// replies are 8-byte little-endian counters (a documented deviation from
// Redis's decimal INCRBY, keeping the baseline's fixed-width hot path).
//
// The accept loop and connection handlers are hardened the same way the
// front-end is: transient accept errors back off under a bounded
// internal/retry policy instead of spinning or exiting, and every
// connection carries read/write deadlines so a wedged peer cannot park a
// handler goroutine forever — a flaky loopback degrades a bench run, it
// does not hang it.
package redcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/resp"
	"repro/internal/retry"
)

// Command opcodes (client-side request tags; the wire carries RESP
// command names).
const (
	cmdGet byte = iota + 1
	cmdSet
	cmdDel
	cmdIncr
)

// Connection deadlines. Generous: they exist to unwedge pathological
// peers, not to pace healthy ones.
const (
	readIdleTimeout = 2 * time.Minute
	writeTimeout    = 30 * time.Second
)

// Server is a single-threaded cache server.
type Server struct {
	ln    net.Listener
	data  map[uint64][]byte
	cmds  chan serverCmd
	wg    sync.WaitGroup
	close sync.Once
	done  chan struct{}

	acceptRetry retry.Policy

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

type serverCmd struct {
	op    byte
	key   uint64
	value []byte
	reply chan<- serverReply
}

type serverReply struct {
	status byte
	value  []byte
}

// Reply status codes (event loop -> connection handler).
const (
	respOK byte = iota
	respNotFound
	respErr
)

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:0") and returns
// it; the actual address is available via Addr.
func ListenAndServe(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:    ln,
		data:  make(map[uint64][]byte),
		cmds:  make(chan serverCmd, 1024),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
		// Patient: ~a second of cumulative backoff before concluding the
		// listener is gone for good.
		acceptRetry: retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond,
			MaxDelay: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25},
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.eventLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	var err error
	s.close.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

// classifyAcceptErr maps accept-loop errors onto the retry taxonomy: a
// closed listener is permanent (shutdown), everything else — timeouts,
// EMFILE bursts, transient loopback hiccups — is worth backing off and
// retrying.
func classifyAcceptErr(err error) retry.Class {
	if errors.Is(err, net.ErrClosed) {
		return retry.Permanent
	}
	return retry.Transient
}

// acceptLoop accepts connections, backing off on transient errors under
// the bounded retry policy. Consecutive-failure counting resets on every
// successful accept; a permanent error or an exhausted budget ends the
// loop (the listener is gone — established connections keep serving).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	failures := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			failures++
			if !s.acceptRetry.Budget(classifyAcceptErr, err, failures) {
				return
			}
			select {
			case <-time.After(s.acceptRetry.Delay(failures)):
			case <-s.done:
				return
			}
			continue
		}
		failures = 0
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// eventLoop is the single command executor: all state mutations happen
// here, serialised, exactly like the Redis event loop.
func (s *Server) eventLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case c := <-s.cmds:
			var r serverReply
			switch c.op {
			case cmdGet:
				if v, ok := s.data[c.key]; ok {
					// Copy: the connection goroutine writes the reply
					// while this loop may keep mutating the stored value.
					r = serverReply{status: respOK, value: append([]byte(nil), v...)}
				} else {
					r = serverReply{status: respNotFound}
				}
			case cmdSet:
				s.data[c.key] = c.value
				r = serverReply{status: respOK}
			case cmdDel:
				if _, ok := s.data[c.key]; ok {
					delete(s.data, c.key)
					r = serverReply{status: respOK}
				} else {
					r = serverReply{status: respNotFound}
				}
			case cmdIncr:
				delta := binary.LittleEndian.Uint64(c.value)
				v, ok := s.data[c.key]
				if !ok {
					v = make([]byte, 8)
					s.data[c.key] = v
				}
				binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+delta)
				r = serverReply{status: respOK, value: append([]byte(nil), v...)}
			default:
				r = serverReply{status: respErr}
			}
			c.reply <- r
		}
	}
}

// parseCommand maps a RESP command onto the internal opcode form.
func parseCommand(args [][]byte) (serverCmd, string) {
	if len(args) == 0 {
		return serverCmd{}, "ERR empty command"
	}
	name := string(args[0])
	key := func(i int) (uint64, bool) {
		if len(args[i]) != 8 {
			return 0, false
		}
		return binary.LittleEndian.Uint64(args[i]), true
	}
	switch {
	case equalFold(name, "GET") && len(args) == 2:
		if k, ok := key(1); ok {
			return serverCmd{op: cmdGet, key: k}, ""
		}
	case equalFold(name, "SET") && len(args) == 3:
		if k, ok := key(1); ok {
			return serverCmd{op: cmdSet, key: k, value: args[2]}, ""
		}
	case equalFold(name, "DEL") && len(args) == 2:
		if k, ok := key(1); ok {
			return serverCmd{op: cmdDel, key: k}, ""
		}
	case equalFold(name, "INCRBY") && len(args) == 3 && len(args[2]) == 8:
		if k, ok := key(1); ok {
			return serverCmd{op: cmdIncr, key: k, value: args[2]}, ""
		}
	default:
		return serverCmd{}, fmt.Sprintf("ERR unknown command '%s'", name)
	}
	return serverCmd{}, "ERR redcache keys are 8-byte binary"
}

// equalFold is an ASCII-only case-insensitive compare (command names).
func equalFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		a, b := s[i], t[i]
		if 'a' <= a && a <= 'z' {
			a -= 'a' - 'A'
		}
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// serveConn parses requests and writes responses; execution is delegated
// to the event loop. Responses preserve request order (one in-flight
// reply channel consumed synchronously per request keeps ordering while
// still letting the client pipeline at the TCP level).
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	br := resp.NewReader(conn)
	bw := resp.NewWriter(conn)
	reply := make(chan serverReply, 1)
	for {
		// Idle deadline: a peer that stops talking gets evicted instead of
		// parking this goroutine forever.
		conn.SetReadDeadline(time.Now().Add(readIdleTimeout))
		args, err := br.ReadCommand()
		if err != nil {
			return
		}
		cmd, errMsg := parseCommand(args)
		var r serverReply
		if errMsg == "" {
			cmd.reply = reply
			select {
			case s.cmds <- cmd:
			case <-s.done:
				return
			}
			select {
			case r = <-reply:
			case <-s.done:
				return
			}
		}
		switch {
		case errMsg != "":
			err = bw.WriteError(errMsg)
		case r.status == respErr:
			err = bw.WriteError("ERR internal")
		case cmd.op == cmdGet:
			if r.status == respOK {
				err = bw.WriteBulk(r.value)
			} else {
				err = bw.WriteNil()
			}
		case cmd.op == cmdSet:
			err = bw.WriteSimple("OK")
		case cmd.op == cmdDel:
			if r.status == respOK {
				err = bw.WriteInt(1)
			} else {
				err = bw.WriteInt(0)
			}
		case cmd.op == cmdIncr:
			err = bw.WriteBulk(r.value)
		}
		if err != nil {
			return
		}
		// Flush when no more pipelined requests are buffered.
		if br.Buffered() == 0 {
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is a pipelining client connection.
type Client struct {
	rc *resp.Client
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	rc, err := resp.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Client{rc: rc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Req is one pipelined request.
type Req struct {
	Op    byte // use Get/Set/Del/Incr constructors
	Key   uint64
	Value []byte
}

// Request constructors.
func GetReq(key uint64) Req             { return Req{Op: cmdGet, Key: key} }
func SetReq(key uint64, val []byte) Req { return Req{Op: cmdSet, Key: key, Value: val} }
func DelReq(key uint64) Req             { return Req{Op: cmdDel, Key: key} }
func IncrReq(key uint64, d uint64) Req {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, d)
	return Req{Op: cmdIncr, Key: key, Value: v}
}

// Resp is one response.
type Resp struct {
	OK       bool
	NotFound bool
	Value    []byte
}

// errProtocol reports a malformed or error response.
var errProtocol = errors.New("redcache: protocol error")

var cmdNames = map[byte][]byte{
	cmdGet:  []byte("GET"),
	cmdSet:  []byte("SET"),
	cmdDel:  []byte("DEL"),
	cmdIncr: []byte("INCRBY"),
}

// Pipeline sends all requests, then reads all responses — the batching
// whose depth §7.2.4 sweeps from 1 to 200.
func (c *Client) Pipeline(reqs []Req) ([]Resp, error) {
	cmds := make([][][]byte, len(reqs))
	for i, r := range reqs {
		key := make([]byte, 8)
		binary.LittleEndian.PutUint64(key, r.Key)
		name, ok := cmdNames[r.Op]
		if !ok {
			return nil, fmt.Errorf("%w: bad opcode %d", errProtocol, r.Op)
		}
		if r.Op == cmdGet || r.Op == cmdDel {
			cmds[i] = [][]byte{name, key}
		} else {
			cmds[i] = [][]byte{name, key, r.Value}
		}
	}
	vals, err := c.rc.Pipeline(cmds)
	if err != nil {
		return nil, err
	}
	out := make([]Resp, len(vals))
	for i, v := range vals {
		switch v.Kind {
		case resp.BulkString:
			out[i] = Resp{OK: true, Value: v.Str}
		case resp.SimpleString:
			out[i] = Resp{OK: true}
		case resp.Nil:
			out[i] = Resp{NotFound: true}
		case resp.Integer:
			if v.Int == 0 {
				out[i] = Resp{NotFound: true}
			} else {
				out[i] = Resp{OK: true}
			}
		default:
			return nil, fmt.Errorf("%w: %s", errProtocol, v.Str)
		}
	}
	return out, nil
}

// Get is a convenience single-request call.
func (c *Client) Get(key uint64) (Resp, error) {
	rs, err := c.Pipeline([]Req{GetReq(key)})
	if err != nil {
		return Resp{}, err
	}
	return rs[0], nil
}

// Set is a convenience single-request call.
func (c *Client) Set(key uint64, val []byte) error {
	_, err := c.Pipeline([]Req{SetReq(key, val)})
	return err
}
