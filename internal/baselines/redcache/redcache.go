// Package redcache is the evaluation's stand-in for Redis (§7.2.4): an
// in-memory key-value cache behind a TCP server whose commands are
// executed by a single goroutine (Redis's single-threaded event loop),
// accessed by clients that may pipeline requests. Like Redis, it is not
// concurrent, expects data to fit in memory, and pays a network hop per
// batch — the three differences from FASTER the paper calls out.
//
// The wire protocol is a compact binary framing rather than RESP; the
// performance-relevant structure (per-connection reader, single command
// executor, pipelined batches) is what the experiment measures.
package redcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Command opcodes.
const (
	cmdGet byte = iota + 1
	cmdSet
	cmdDel
	cmdIncr
)

// Response status codes.
const (
	respOK byte = iota
	respNotFound
	respErr
)

// Server is a single-threaded cache server.
type Server struct {
	ln    net.Listener
	data  map[uint64][]byte
	cmds  chan serverCmd
	wg    sync.WaitGroup
	close sync.Once
	done  chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

type serverCmd struct {
	op    byte
	key   uint64
	value []byte
	reply chan<- serverReply
}

type serverReply struct {
	status byte
	value  []byte
}

// ListenAndServe starts a server on addr (e.g. "127.0.0.1:0") and returns
// it; the actual address is available via Addr.
func ListenAndServe(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:    ln,
		data:  make(map[uint64][]byte),
		cmds:  make(chan serverCmd, 1024),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.eventLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	var err error
	s.close.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// eventLoop is the single command executor: all state mutations happen
// here, serialised, exactly like the Redis event loop.
func (s *Server) eventLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case c := <-s.cmds:
			var r serverReply
			switch c.op {
			case cmdGet:
				if v, ok := s.data[c.key]; ok {
					// Copy: the connection goroutine writes the reply
					// while this loop may keep mutating the stored value.
					r = serverReply{status: respOK, value: append([]byte(nil), v...)}
				} else {
					r = serverReply{status: respNotFound}
				}
			case cmdSet:
				s.data[c.key] = c.value
				r = serverReply{status: respOK}
			case cmdDel:
				if _, ok := s.data[c.key]; ok {
					delete(s.data, c.key)
					r = serverReply{status: respOK}
				} else {
					r = serverReply{status: respNotFound}
				}
			case cmdIncr:
				delta := binary.LittleEndian.Uint64(c.value)
				v, ok := s.data[c.key]
				if !ok {
					v = make([]byte, 8)
					s.data[c.key] = v
				}
				binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+delta)
				r = serverReply{status: respOK, value: append([]byte(nil), v...)}
			default:
				r = serverReply{status: respErr}
			}
			c.reply <- r
		}
	}
}

// serveConn parses requests and writes responses; execution is delegated
// to the event loop. Responses preserve request order (one in-flight
// reply channel consumed synchronously per request keeps ordering while
// still letting the client pipeline at the TCP level).
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	reply := make(chan serverReply, 1)
	for {
		var hdr [13]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		key := binary.LittleEndian.Uint64(hdr[1:])
		vlen := binary.LittleEndian.Uint32(hdr[9:])
		var value []byte
		if vlen > 0 {
			value = make([]byte, vlen)
			if _, err := io.ReadFull(br, value); err != nil {
				return
			}
		}
		select {
		case s.cmds <- serverCmd{op: op, key: key, value: value, reply: reply}:
		case <-s.done:
			return
		}
		var r serverReply
		select {
		case r = <-reply:
		case <-s.done:
			return
		}
		var rh [5]byte
		rh[0] = r.status
		binary.LittleEndian.PutUint32(rh[1:], uint32(len(r.value)))
		bw.Write(rh[:])
		bw.Write(r.value)
		// Flush when no more pipelined requests are buffered.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

// Client is a pipelining client connection.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Req is one pipelined request.
type Req struct {
	Op    byte // use Get/Set/Del/Incr constructors
	Key   uint64
	Value []byte
}

// Request constructors.
func GetReq(key uint64) Req             { return Req{Op: cmdGet, Key: key} }
func SetReq(key uint64, val []byte) Req { return Req{Op: cmdSet, Key: key, Value: val} }
func DelReq(key uint64) Req             { return Req{Op: cmdDel, Key: key} }
func IncrReq(key uint64, d uint64) Req {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, d)
	return Req{Op: cmdIncr, Key: key, Value: v}
}

// Resp is one response.
type Resp struct {
	OK       bool
	NotFound bool
	Value    []byte
}

// errProtocol reports a malformed response.
var errProtocol = errors.New("redcache: protocol error")

// Pipeline sends all requests, then reads all responses — the batching
// whose depth §7.2.4 sweeps from 1 to 200.
func (c *Client) Pipeline(reqs []Req) ([]Resp, error) {
	for _, r := range reqs {
		var hdr [13]byte
		hdr[0] = r.Op
		binary.LittleEndian.PutUint64(hdr[1:], r.Key)
		binary.LittleEndian.PutUint32(hdr[9:], uint32(len(r.Value)))
		if _, err := c.bw.Write(hdr[:]); err != nil {
			return nil, err
		}
		if _, err := c.bw.Write(r.Value); err != nil {
			return nil, err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make([]Resp, len(reqs))
	for i := range out {
		var rh [5]byte
		if _, err := io.ReadFull(c.br, rh[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", errProtocol, err)
		}
		vlen := binary.LittleEndian.Uint32(rh[1:])
		var val []byte
		if vlen > 0 {
			val = make([]byte, vlen)
			if _, err := io.ReadFull(c.br, val); err != nil {
				return nil, err
			}
		}
		switch rh[0] {
		case respOK:
			out[i] = Resp{OK: true, Value: val}
		case respNotFound:
			out[i] = Resp{NotFound: true}
		default:
			return nil, errProtocol
		}
	}
	return out, nil
}

// Get is a convenience single-request call.
func (c *Client) Get(key uint64) (Resp, error) {
	rs, err := c.Pipeline([]Req{GetReq(key)})
	if err != nil {
		return Resp{}, err
	}
	return rs[0], nil
}

// Set is a convenience single-request call.
func (c *Client) Set(key uint64, val []byte) error {
	_, err := c.Pipeline([]Req{SetReq(key, val)})
	return err
}
