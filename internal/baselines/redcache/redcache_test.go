package redcache

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/resp"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSetGet(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	if err := c.Set(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	r, err := c.Get(1)
	if err != nil || !r.OK || string(r.Value) != "hello" {
		t.Fatalf("Get = (%+v, %v)", r, err)
	}
}

func TestGetMissing(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	r, err := c.Get(99)
	if err != nil || !r.NotFound {
		t.Fatalf("Get missing = (%+v, %v)", r, err)
	}
}

func TestDelete(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	c.Set(1, []byte("x"))
	rs, err := c.Pipeline([]Req{DelReq(1), GetReq(1), DelReq(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].OK || !rs[1].NotFound || !rs[2].NotFound {
		t.Fatalf("delete pipeline = %+v", rs)
	}
}

func TestIncr(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	var reqs []Req
	for i := 0; i < 10; i++ {
		reqs = append(reqs, IncrReq(7, 3))
	}
	rs, err := c.Pipeline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	last := rs[len(rs)-1]
	if !last.OK || binary.LittleEndian.Uint64(last.Value) != 30 {
		t.Fatalf("incr result = %+v", last)
	}
}

func TestPipelineOrdering(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	const n = 500
	reqs := make([]Req, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		v := make([]byte, 8)
		binary.LittleEndian.PutUint64(v, i*2)
		reqs = append(reqs, SetReq(i, v), GetReq(i))
	}
	rs, err := c.Pipeline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		get := rs[2*i+1]
		if !get.OK || binary.LittleEndian.Uint64(get.Value) != i*2 {
			t.Fatalf("pipelined get %d = %+v", i, get)
		}
	}
}

func TestMultipleClientsSingleThreadedConsistency(t *testing.T) {
	s := startServer(t)
	const clients = 8
	const perC = 500
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			reqs := make([]Req, perC)
			for i := range reqs {
				reqs[i] = IncrReq(42, 1)
			}
			if _, err := c.Pipeline(reqs); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	c := dial(t, s)
	r, err := c.Get(42)
	if err != nil || !r.OK {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(r.Value); got != clients*perC {
		t.Fatalf("counter = %d, want %d (event loop not serialising?)", got, clients*perC)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	c.Set(1, []byte("x"))
	s.Close()
	if _, err := c.Get(1); err == nil {
		t.Fatal("expected error after server close")
	}
}

func BenchmarkPipelineDepth(b *testing.B) {
	s, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for _, depth := range []int{1, 10, 100} {
		b.Run(benchName(depth), func(b *testing.B) {
			c, err := Dial(s.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			reqs := make([]Req, depth)
			for i := range reqs {
				reqs[i] = SetReq(uint64(i), []byte("12345678"))
			}
			b.ResetTimer()
			for n := 0; n < b.N; n += depth {
				if _, err := c.Pipeline(reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(depth int) string { return "depth=" + itoa(depth) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestRESPInterop drives the server with a raw RESP client: the baseline
// and the FASTER front-end share one wire protocol, so generic RESP
// tooling must work against both.
func TestRESPInterop(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := resp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	key := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, 99)
	if v, err := rc.Do([]byte("SET"), key, []byte("val")); err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("SET = %+v, %v", v, err)
	}
	if v, err := rc.Do([]byte("GET"), key); err != nil || string(v.Str) != "val" {
		t.Fatalf("GET = %+v, %v", v, err)
	}
	if v, err := rc.Do([]byte("FLUSHALL")); err != nil || !v.IsError() {
		t.Fatalf("unknown command = %+v, %v", v, err)
	}
	if v, err := rc.Do([]byte("GET"), []byte("short")); err != nil || !v.IsError() {
		t.Fatalf("bad key width = %+v, %v", v, err)
	}
}
