package shardmap

import "unsafe"

// atomicWord views the first 8 bytes of v as an atomically addressable
// word. Values allocated by this package are heap slices, which Go
// aligns to at least 8 bytes.
func atomicWord(v []byte) unsafe.Pointer { return unsafe.Pointer(&v[0]) }
