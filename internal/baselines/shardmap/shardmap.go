// Package shardmap is the evaluation's stand-in for the Intel TBB
// concurrent hash map (§7.1): a purely in-memory concurrent hash map with
// in-place updates, sharded to reduce lock contention. Like TBB's map it
// offers no persistence and no larger-than-memory support; its role in
// the benchmarks is the "best-effort locked in-memory hash map" baseline.
package shardmap

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/xhash"
)

// Map is a sharded concurrent hash map from uint64 keys to byte values.
type Map struct {
	shards []shard
	mask   uint64
}

type shard struct {
	mu sync.RWMutex
	m  map[uint64][]byte
	_  [40]byte // pad to reduce false sharing between shard locks
}

// New creates a map with the given shard count (rounded up to a power of
// two; default 64) and per-shard capacity hint.
func New(shardCount int, capacityHint int) *Map {
	if shardCount <= 0 {
		shardCount = 64
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	m := &Map{shards: make([]shard, n), mask: uint64(n - 1)}
	per := capacityHint / n
	for i := range m.shards {
		m.shards[i].m = make(map[uint64][]byte, per)
	}
	return m
}

func (m *Map) shardFor(key uint64) *shard {
	return &m.shards[xhash.Uint64(key)&m.mask]
}

// Get copies the value for key into out, reporting whether it exists.
func (m *Map) Get(key uint64, out []byte) bool {
	s := m.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	if ok {
		copy(out, v)
	}
	s.mu.RUnlock()
	return ok
}

// Put blindly sets the value for key, updating in place when the existing
// buffer is large enough (the in-place-update property the paper credits
// TBB with).
func (m *Map) Put(key uint64, value []byte) {
	s := m.shardFor(key)
	s.mu.Lock()
	if v, ok := s.m[key]; ok && len(v) >= len(value) {
		copy(v, value)
	} else {
		s.m[key] = append([]byte(nil), value...)
	}
	s.mu.Unlock()
}

// RMW adds delta to the 8-byte counter at key, initialising to delta when
// absent. The addition is in place under the shard lock.
func (m *Map) RMW(key uint64, delta uint64) {
	s := m.shardFor(key)
	s.mu.Lock()
	if v, ok := s.m[key]; ok && len(v) >= 8 {
		binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+delta)
	} else {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, delta)
		s.m[key] = buf
	}
	s.mu.Unlock()
}

// AtomicRMW adds delta with only a read lock, using an atomic
// fetch-and-add on the value word; the fast path when the key exists.
func (m *Map) AtomicRMW(key uint64, delta uint64) {
	s := m.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[key]
	if ok && len(v) >= 8 {
		atomic.AddUint64((*uint64)(atomicWord(v)), delta)
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	m.RMW(key, delta)
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key uint64) bool {
	s := m.shardFor(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	return ok
}

// Len returns the total number of keys.
func (m *Map) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
