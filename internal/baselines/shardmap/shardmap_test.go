package shardmap

import (
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestPutGet(t *testing.T) {
	m := New(4, 0)
	m.Put(1, u64(42))
	out := make([]byte, 8)
	if !m.Get(1, out) || binary.LittleEndian.Uint64(out) != 42 {
		t.Fatalf("Get = %v", out)
	}
	if m.Get(2, out) {
		t.Fatal("found missing key")
	}
}

func TestPutInPlace(t *testing.T) {
	m := New(4, 0)
	m.Put(1, u64(1))
	m.Put(1, u64(2))
	out := make([]byte, 8)
	m.Get(1, out)
	if binary.LittleEndian.Uint64(out) != 2 {
		t.Fatal("overwrite failed")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestRMWSum(t *testing.T) {
	m := New(4, 0)
	for i := 0; i < 10; i++ {
		m.RMW(7, 3)
	}
	out := make([]byte, 8)
	m.Get(7, out)
	if got := binary.LittleEndian.Uint64(out); got != 30 {
		t.Fatalf("counter = %d, want 30", got)
	}
}

func TestDelete(t *testing.T) {
	m := New(4, 0)
	m.Put(1, u64(1))
	if !m.Delete(1) {
		t.Fatal("delete existing returned false")
	}
	if m.Delete(1) {
		t.Fatal("delete missing returned true")
	}
	if m.Get(1, make([]byte, 8)) {
		t.Fatal("key survived delete")
	}
}

func TestConcurrentAtomicRMWSumsExactly(t *testing.T) {
	m := New(16, 1024)
	const workers = 8
	const perW = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				m.AtomicRMW(uint64(i%8), 1)
			}
		}()
	}
	wg.Wait()
	var total uint64
	out := make([]byte, 8)
	for k := uint64(0); k < 8; k++ {
		if !m.Get(k, out) {
			t.Fatalf("key %d missing", k)
		}
		total += binary.LittleEndian.Uint64(out)
	}
	if total != workers*perW {
		t.Fatalf("total = %d, want %d", total, workers*perW)
	}
}

func TestQuickMatchesModel(t *testing.T) {
	type step struct {
		Op  uint8
		Key uint8
		Val uint32
	}
	f := func(steps []step) bool {
		m := New(4, 0)
		model := map[uint64]uint64{}
		for _, s := range steps {
			k := uint64(s.Key % 16)
			switch s.Op % 3 {
			case 0:
				m.Put(k, u64(uint64(s.Val)))
				model[k] = uint64(s.Val)
			case 1:
				m.RMW(k, uint64(s.Val))
				model[k] += uint64(s.Val)
			case 2:
				m.Delete(k)
				delete(model, k)
			}
		}
		out := make([]byte, 8)
		for k, want := range model {
			if !m.Get(k, out) || binary.LittleEndian.Uint64(out) != want {
				return false
			}
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
