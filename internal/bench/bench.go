// Package bench is the shared benchmark harness behind cmd/faster-bench
// and the repository-level bench_test.go: it drives YCSB workloads
// (§7.1) against FASTER and the baseline systems with a uniform adapter
// interface, measuring throughput the way the paper does — N workers
// issuing operations for a fixed duration, counting completions.
package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ycsb"
)

// Worker is one benchmark thread's handle onto a system under test.
type Worker interface {
	// Read looks up key into out (len = value size), reporting presence.
	Read(key uint64, out []byte) bool
	// Upsert blindly sets key = value.
	Upsert(key uint64, value []byte)
	// RMW adds delta to the 8-byte counter at key.
	RMW(key uint64, delta uint64)
	// Finish drains any outstanding asynchronous work.
	Finish()
	// Close releases the worker.
	Close()
}

// System is a key-value system under test.
type System interface {
	Name() string
	NewWorker(id int) Worker
	Close() error
}

// RunConfig parameterises one measurement.
type RunConfig struct {
	// Threads is the worker count.
	Threads int
	// Duration is the measurement window (time-based runs).
	Duration time.Duration
	// TotalOps, when nonzero, runs a fixed operation count instead of a
	// fixed duration (deterministic; used by testing.B benches).
	TotalOps int
	// Workload supplies keys and op kinds; cloned per worker.
	Workload *ycsb.Workload
	// ValueSize is the payload size (8 or 100 in the paper).
	ValueSize int
	// Preload inserts every key before measuring (the paper preloads
	// the dataset).
	Preload bool
	// RMWInputs is the paper's 8-entry increment array.
	RMWInputs [8]uint64
	// Seed bases per-worker seeds.
	Seed int64
}

// Result is one measurement.
type Result struct {
	System   string
	Threads  int
	Ops      uint64
	Elapsed  time.Duration
	ValueSz  int
	Workload string
}

// Mops returns throughput in million operations per second.
func (r Result) Mops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s threads=%-3d %-10s %3dB  %8.3f Mops/s",
		r.System, r.Threads, r.Workload, r.ValueSz, r.Mops())
}

// Preload inserts every key in the workload's key space with a zero
// value of the configured size.
func Preload(sys System, keys uint64, valueSize int, threads int) {
	if threads < 1 {
		threads = 1
	}
	var wg sync.WaitGroup
	per := keys / uint64(threads)
	for t := 0; t < threads; t++ {
		lo := uint64(t) * per
		hi := lo + per
		if t == threads-1 {
			hi = keys
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			w := sys.NewWorker(1000 + int(lo))
			defer w.Close()
			val := make([]byte, valueSize)
			for k := lo; k < hi; k++ {
				binary.LittleEndian.PutUint64(val, k)
				w.Upsert(k, val)
			}
			w.Finish()
		}(lo, hi)
	}
	wg.Wait()
}

// Run measures sys under cfg.
func Run(sys System, cfg RunConfig, label string) Result {
	if cfg.Preload {
		Preload(sys, cfg.Workload.KeySpace(), cfg.ValueSize, cfg.Threads)
	}
	var (
		stop    atomic.Bool
		totalOp atomic.Uint64
		wg      sync.WaitGroup
	)
	opsPerWorker := 0
	if cfg.TotalOps > 0 {
		opsPerWorker = cfg.TotalOps / cfg.Threads
		if opsPerWorker == 0 {
			opsPerWorker = 1
		}
	}
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := sys.NewWorker(id)
			defer w.Close()
			wl := cfg.Workload.Clone(cfg.Seed + int64(id)*7919)
			out := make([]byte, cfg.ValueSize)
			val := make([]byte, cfg.ValueSize)
			for i := range val {
				val[i] = byte(id)
			}
			var done uint64
			for {
				if opsPerWorker > 0 {
					if done >= uint64(opsPerWorker) {
						break
					}
				} else if done&255 == 0 && stop.Load() {
					break
				}
				op := wl.Next()
				switch op.Kind {
				case ycsb.OpRead:
					w.Read(op.Key, out)
				case ycsb.OpUpsert:
					w.Upsert(op.Key, val)
				case ycsb.OpRMW:
					w.RMW(op.Key, cfg.RMWInputs[done&7])
				}
				done++
			}
			w.Finish()
			totalOp.Add(done)
		}(t)
	}
	if opsPerWorker == 0 {
		time.AfterFunc(cfg.Duration, func() { stop.Store(true) })
	}
	wg.Wait()
	elapsed := time.Since(start)
	return Result{
		System:   sys.Name(),
		Threads:  cfg.Threads,
		Ops:      totalOp.Load(),
		Elapsed:  elapsed,
		ValueSz:  cfg.ValueSize,
		Workload: label,
	}
}
