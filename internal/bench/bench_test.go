package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/hlog"
	"repro/internal/ycsb"
)

// tinyOptions keeps the experiment drivers fast enough for unit tests;
// the cmd/faster-bench binary runs them at full scale.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{
		Keys:       2000,
		Duration:   50 * time.Millisecond,
		MaxThreads: 2,
		Out:        buf,
		Seed:       7,
	}
}

func TestRunCountsOps(t *testing.T) {
	sys := NewShardmapSystem(1000)
	defer sys.Close()
	wl := ycsb.NewWorkload(ycsb.NewUniform(1000, 1), ycsb.Mix50R50BU, 1)
	res := Run(sys, RunConfig{Threads: 2, TotalOps: 10_000, Workload: wl,
		ValueSize: 8, Preload: true, RMWInputs: ycsb.InputArray()}, "50:50")
	if res.Ops != 10_000 {
		t.Fatalf("Ops = %d, want 10000", res.Ops)
	}
	if res.Mops() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestAllSystemsRunAllMixes(t *testing.T) {
	o := Options{Keys: 500, Duration: 10 * time.Millisecond, MaxThreads: 2, Seed: 1}
	o.defaults()
	for _, sysName := range []string{"faster", "faster-aol", "shardmap", "btree", "lsm"} {
		for _, m := range figure8Mixes {
			gen := ycsb.NewUniform(o.Keys, 1)
			res, err := runMix(sysName, o, m.Mix, m.Label, gen, 2, 8)
			if err != nil {
				t.Fatalf("%s %s: %v", sysName, m.Label, err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s %s: no operations completed", sysName, m.Label)
			}
		}
	}
}

func TestFasterSystemModes(t *testing.T) {
	for _, mode := range []hlog.Mode{hlog.ModeHybrid, hlog.ModeAppendOnly, hlog.ModeInMemory} {
		sys, err := NewFasterSystem(FasterOptions{Keys: 1000, ValueSize: 8, Mode: mode,
			PageBits: 14, BufferPages: 32})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		w := sys.NewWorker(0)
		w.RMW(1, 5)
		w.RMW(1, 5)
		out := make([]byte, 8)
		if !w.Read(1, out) {
			t.Fatalf("mode %v: key missing", mode)
		}
		w.Finish()
		w.Close()
		sys.Close()
	}
}

func TestFig8Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	results, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 panels x 4 mixes x 4 systems.
	if len(results) != 4*4*4 {
		t.Fatalf("Fig8 produced %d results, want 64", len(results))
	}
	if !strings.Contains(buf.String(), "Fig 8a") {
		t.Fatal("Fig8 table header missing")
	}
}

func TestFig11Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	results, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no Fig11 results")
	}
	var sawHL, sawAOL bool
	for _, r := range results {
		switch r.System {
		case "faster":
			sawHL = true
		case "faster-aol":
			sawAOL = true
		}
	}
	if !sawHL || !sawAOL {
		t.Fatal("Fig11 missing a log mode")
	}
}

func TestFig12Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	rows, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 2 distributions x 10 factors
		t.Fatalf("Fig12 rows = %d, want 20", len(rows))
	}
	for _, r := range rows {
		if r.FuzzyPct < 0 || r.FuzzyPct > 100 {
			t.Fatalf("fuzzy%% out of range: %v", r.FuzzyPct)
		}
	}
}

func TestFig13Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	rows, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Fig13 rows")
	}
}

func TestTagAblationSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	results, err := TagAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("tag ablation rows = %d, want 3", len(results))
	}
}

func TestFig10Smoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 10 * time.Millisecond
	rows, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*5*2 {
		t.Fatalf("Fig10 rows = %d, want 20", len(rows))
	}
}

func TestLogBandwidthSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 20 * time.Millisecond
	mbs, err := LogBandwidth(o)
	if err != nil {
		t.Fatal(err)
	}
	if mbs <= 0 {
		t.Fatal("no bytes written to the device")
	}
}

func TestRedisPipelineSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 20 * time.Millisecond
	rows, err := RedisPipeline(o, 2, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].GetsPerS <= rows[0].GetsPerS {
		t.Logf("warning: pipelining did not increase throughput in smoke run (%v vs %v)",
			rows[1].GetsPerS, rows[0].GetsPerS)
	}
}

func TestNetPipelineSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Duration = 20 * time.Millisecond
	rows, err := NetPipeline(o, 2, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SetsPerS <= 0 || r.GetsPerS <= 0 {
			t.Fatalf("zero throughput at depth %d: %+v", r.Pipeline, r)
		}
	}
}
