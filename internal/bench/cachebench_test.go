package bench

// Read-cache benchmarks behind `make bench-cache` (BENCH_09.json).
//
// The tentpole claim is that a skewed read workload over a larger-than-
// memory store stops paying a device round-trip per cold read once the
// hot set fits in the record read cache. The sweep replays zipf(0.99)
// 64-op read windows against simulated flash (150us read latency) with
// the cache sized to hold 1/8 or 1/16 of the keyspace, cache on vs off,
// at 1 and 16 shards. The hlog buffer is held small and constant so the
// comparison isolates the cache: with it off, nearly every read misses
// the buffer and queues on the io-pool; with it on, the zipf head is
// served synchronously from the cache log.
//
// Acceptance (ISSUE 10): cache-on read throughput >= 2x cache-off on
// the zipf(0.99) workload at 1/8 resident fraction.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/ycsb"
)

const (
	cacheBenchKeys  = 1 << 17
	cacheBenchBatch = 64
	cacheBenchRec   = 32 // recordSize(8, 8)
	// Total hlog buffer across ALL shards: 64 pages of 4 KiB = 1/16 of
	// the 4 MiB keyspace. Small and fixed so residency comes from the
	// read cache, not from shard-count-dependent buffer growth.
	cacheBenchTotalPages = 64
)

// openCacheBenchStore builds a sharded store over flash-like devices
// with a total read-cache budget of cacheBytes (0 disables the cache)
// and preloads the full keyspace (key k+1 holds value 1).
func openCacheBenchStore(b *testing.B, shards int, cacheBytes uint64) *faster.ShardedStore {
	b.Helper()
	devs := make([]*device.Mem, shards)
	for i := range devs {
		devs[i] = device.NewMem(device.MemConfig{
			ReadLatency: 150 * time.Microsecond,
			Workers:     8,
		})
	}
	pages := cacheBenchTotalPages / shards
	if pages < 4 {
		pages = 4
	}
	ss, err := faster.OpenSharded(faster.ShardedConfig{
		Shards: shards,
		Base: faster.Config{
			Ops:            faster.SumOps{},
			IndexBuckets:   1 << 15,
			PageBits:       12,
			BufferPages:    pages,
			IOWorkers:      4,
			IOQueueDepth:   4096,
			ReadCacheBytes: cacheBytes,
		},
		NewDevice: func(i int) device.Device { return devs[i] },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ss.Close()
		for _, d := range devs {
			d.Close()
		}
	})
	sess := ss.StartSession()
	defer sess.Close()
	const chunk = 256
	backing := make([]byte, 8*chunk)
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	ops := make([]faster.BatchOp, chunk)
	for k := uint64(0); k < cacheBenchKeys; k += chunk {
		for j := 0; j < chunk; j++ {
			kb := backing[j*8 : j*8+8]
			binary.LittleEndian.PutUint64(kb, k+uint64(j)+1)
			ops[j] = faster.BatchOp{Kind: faster.BatchUpsert, Key: kb, Value: one}
		}
		if err := sess.ExecBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
	return ss
}

// BenchmarkCacheZipfReadU64 issues 64-op zipf(0.99) read windows; the
// cache=off rows are the device-bound baseline (identical at both
// fractions — the fraction only sizes the cache), and the cache=on rows
// measure the same workload with the hot set resident.
func BenchmarkCacheZipfReadU64(b *testing.B) {
	for _, frac := range []uint64{8, 16} {
		for _, cache := range []string{"off", "on"} {
			for _, shards := range []int{1, 16} {
				cacheBytes := uint64(0)
				if cache == "on" {
					cacheBytes = cacheBenchKeys / frac * cacheBenchRec
				}
				name := fmt.Sprintf("resident=1_%d/cache=%s/shards=%d", frac, cache, shards)
				b.Run(name, func(b *testing.B) {
					ss := openCacheBenchStore(b, shards, cacheBytes)
					var seq atomic.Uint64
					b.ReportAllocs()
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						sess := ss.StartSession()
						defer sess.Close()
						g := ycsb.NewZipfian(cacheBenchKeys, ycsb.DefaultTheta, int64(seq.Add(1)))
						keys := make([]byte, 8*cacheBenchBatch)
						outs := make([]byte, 8*cacheBenchBatch)
						ops := make([]faster.BatchOp, cacheBenchBatch)
						slot := 0
						for pb.Next() {
							binary.LittleEndian.PutUint64(keys[slot*8:slot*8+8], g.Next()+1)
							ops[slot] = faster.BatchOp{Kind: faster.BatchRead,
								Key:    keys[slot*8 : slot*8+8],
								Output: outs[slot*8 : slot*8+8]}
							slot++
							if slot != cacheBenchBatch {
								continue
							}
							slot = 0
							if err := sess.ExecBatch(ops); err != nil {
								b.Fatal(err)
							}
							pending := false
							for j := range ops {
								switch ops[j].Status {
								case faster.OK:
								case faster.Pending:
									pending = true
								default:
									b.Fatalf("read %x: %v %v", ops[j].Key, ops[j].Status, ops[j].Err)
								}
							}
							if pending {
								if _, err := sess.CompletePendingTimeout(30 * time.Second); err != nil {
									b.Fatal(err)
								}
							}
						}
					})
				})
			}
		}
	}
}
