package bench

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faster"
)

func TestDebugFig12Cmd(t *testing.T) {
	if os.Getenv("DEBUG_FIG12") == "" {
		t.Skip("manual")
	}
	var spins, lastInFlight, lastRetries, lastCompleted, lastIOs atomic.Int64
	var lastDesc atomic.Pointer[string]
	faster.SetDebugSpinHook(func(inFlight, retries, completed int, ios uint64, desc string) {
		spins.Add(1)
		lastInFlight.Store(int64(inFlight))
		lastRetries.Store(int64(retries))
		lastCompleted.Store(int64(completed))
		lastIOs.Store(int64(ios))
		lastDesc.Store(&desc)
	})
	defer faster.SetDebugSpinHook(nil)
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				d := ""
				if p := lastDesc.Load(); p != nil {
					d = *p
				}
				t.Logf("spins=%d inFlight=%d retries=%d completed=%d ios=%d last=%s",
					spins.Load(), lastInFlight.Load(), lastRetries.Load(), lastCompleted.Load(), lastIOs.Load(), d)
			}
		}
	}()
	o := Options{Keys: 50000, Duration: time.Second, MaxThreads: 4, Out: os.Stderr, Seed: 42}
	_, err := Fig12(o)
	close(done)
	if err != nil {
		t.Fatal(err)
	}
}
