package bench

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faster"
)

// TestFig12Regression is the promoted form of the old DEBUG_FIG12 manual
// harness: it runs the full Fig 12 IPU-region sweep at unit-test scale
// with a fixed seed and asserts the sweep's structural invariants instead
// of printing state for a human. The original harness existed to chase a
// CompletePending livelock, so the debug spin hook stays installed as a
// watchdog: the hook firing is normal (it marks no-progress waits), but
// the sweep completing at all is the regression criterion.
func TestFig12Regression(t *testing.T) {
	var spinReports atomic.Int64
	faster.SetDebugSpinHook(func(inFlight, retries, completed int, ios uint64, desc string) {
		// Only called from no-progress wait paths; an unbounded spin here
		// (the bug this harness was built to chase) now shows up as a
		// test timeout rather than silence.
		spinReports.Add(1)
	})
	defer faster.SetDebugSpinHook(nil)

	var buf bytes.Buffer
	o := Options{Keys: 2000, Duration: 60 * time.Millisecond, MaxThreads: 2, Out: &buf, Seed: 7}
	rows, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}

	// 2 distributions x 10 IPU factors.
	wantFactors := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if len(rows) != 2*len(wantFactors) {
		t.Fatalf("Fig12 produced %d rows, want %d", len(rows), 2*len(wantFactors))
	}
	for i, row := range rows {
		want := wantFactors[i%len(wantFactors)]
		if row.IPUFactor != want {
			t.Errorf("row %d: IPUFactor = %v, want %v", i, row.IPUFactor, want)
		}
		if row.Ops == 0 {
			t.Errorf("row %d (ipu=%.1f): no operations completed", i, row.IPUFactor)
		}
		if row.LogGrowthMBs < 0 {
			t.Errorf("row %d: negative log growth %v", i, row.LogGrowthMBs)
		}
		if row.FuzzyPct < 0 || row.FuzzyPct > 100 {
			t.Errorf("row %d: fuzzy%% = %v out of [0,100]", i, row.FuzzyPct)
		}
	}

	// The sweep's defining shape (Fig 12a): shrinking the in-place-
	// updatable region converts in-place updates into RCU appends, so the
	// log must grow strictly faster at IPU 0.1 than at IPU 1.0.
	for d := 0; d < 2; d++ {
		lo := rows[d*len(wantFactors)]                    // ipu = 0.1
		hi := rows[d*len(wantFactors)+len(wantFactors)-1] // ipu = 1.0
		if lo.LogGrowthMBs <= 0 {
			t.Errorf("distribution %d: no log growth at ipu=0.1 (got %v MB/s)", d, lo.LogGrowthMBs)
		}
		if lo.LogGrowthMBs <= hi.LogGrowthMBs {
			t.Errorf("distribution %d: log growth %.2f MB/s at ipu=0.1 not above %.2f MB/s at ipu=1.0",
				d, lo.LogGrowthMBs, hi.LogGrowthMBs)
		}
	}

	if buf.Len() == 0 {
		t.Error("Fig12 wrote no table output")
	}
}
