package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/device"
	"repro/internal/hlog"
	"repro/internal/ycsb"
)

// This file regenerates the tables behind every throughput figure of the
// paper's evaluation (Figs 8-13 plus the §7.2.2 tag ablation, the §7.2.4
// Redis comparison lives in redis.go, and Figs 14-16 in cmd/cachesim).
// Scales are laptop-sized; EXPERIMENTS.md records how the shapes compare
// with the paper's testbed numbers.

// Options scales the experiments.
type Options struct {
	// Keys is the dataset size (the paper uses 250M; default here 100k).
	Keys uint64
	// Duration is the per-measurement window (paper: 30s; default 2s).
	Duration time.Duration
	// MaxThreads caps thread sweeps (paper: 56; default 2*GOMAXPROCS).
	MaxThreads int
	// Out receives the printed tables.
	Out io.Writer
	// Seed makes runs reproducible.
	Seed int64
	// DumpMetrics prints the store's full metrics report (Store.Metrics
	// flattened to named series) after each FASTER measurement cell.
	DumpMetrics bool
}

func (o *Options) defaults() {
	if o.Keys == 0 {
		o.Keys = 100_000
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.MaxThreads == 0 {
		o.MaxThreads = 2 * runtime.GOMAXPROCS(0)
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// threadSweep returns 1,2,4,... up to max.
func threadSweep(max int) []int {
	var ts []int
	for t := 1; t <= max; t *= 2 {
		ts = append(ts, t)
	}
	if ts[len(ts)-1] != max {
		ts = append(ts, max)
	}
	return ts
}

// mixes in paper presentation order.
var figure8Mixes = []struct {
	Label string
	Mix   ycsb.Mix
}{
	{"0:100 RMW", ycsb.MixRMW100},
	{"0:100", ycsb.Mix0R100BU},
	{"50:50", ycsb.Mix50R50BU},
	{"100:0", ycsb.Mix100R},
}

// buildSystem constructs a named system sized for o.
func buildSystem(name string, o Options, valueSize int) (System, error) {
	switch name {
	case "faster":
		return NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: valueSize,
			Mode: hlog.ModeHybrid, BufferPages: bufferPagesFor(o.Keys, valueSize, 16, 2.0)})
	case "faster-aol":
		// The paper's append-only experiment (§7.4.1) uses a 2^15-page,
		// 4 MB/page buffer — nothing evicts. Size the buffer to hold the
		// whole run's appends so the comparison measures tail contention
		// and RCU cost, not random reads.
		return NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: valueSize,
			Mode: hlog.ModeAppendOnly, BufferPages: bufferPagesFor(o.Keys, valueSize, 16, 48.0)})
	case "shardmap":
		return NewShardmapSystem(o.Keys), nil
	case "btree":
		return NewBTreeSystem(), nil
	case "lsm":
		return NewLSMSystem(64<<20, "")
	default:
		return nil, fmt.Errorf("bench: unknown system %q", name)
	}
}

// bufferPagesFor sizes the log buffer to headroom x the dataset (so the
// in-memory figures really run in memory), with 1<<pageBits pages.
func bufferPagesFor(keys uint64, valueSize int, pageBits uint, headroom float64) int {
	recBytes := uint64(16 + 8 + ((valueSize + 7) &^ 7))
	need := float64(keys*recBytes) * headroom
	pages := int(need/float64(uint64(1)<<pageBits)) + 1
	n := 2
	for n < pages {
		n *= 2
	}
	return n
}

// runMix measures one (system, mix, distribution) cell.
func runMix(sysName string, o Options, mix ycsb.Mix, label string, gen ycsb.Generator, threads, valueSize int) (Result, error) {
	sys, err := buildSystem(sysName, o, valueSize)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	wl := ycsb.NewWorkload(gen, mix, o.Seed)
	res := Run(sys, RunConfig{
		Threads:   threads,
		Duration:  o.Duration,
		Workload:  wl,
		ValueSize: valueSize,
		Preload:   true,
		RMWInputs: ycsb.InputArray(),
		Seed:      o.Seed,
	}, label)
	maybeDumpMetrics(o, sys, label)
	return res, nil
}

// maybeDumpMetrics prints the store's metrics report when the system under
// test is a FASTER store and o.DumpMetrics is set. Must run before the
// system is closed.
func maybeDumpMetrics(o Options, sys System, label string) {
	if !o.DumpMetrics {
		return
	}
	fsys, ok := sys.(*FasterSystem)
	if !ok {
		return
	}
	fmt.Fprintf(o.Out, "--- metrics: %s %s ---\n", sys.Name(), label)
	_ = fsys.Store().WriteReport(o.Out)
}

// Fig8 regenerates Fig 8a-8d: throughput of FASTER vs the in-memory and
// larger-than-memory baselines across the four YCSB-A variants, for
// uniform and Zipfian distributions, at 1 thread and at MaxThreads.
func Fig8(o Options) ([]Result, error) {
	o.defaults()
	systems := []string{"faster", "shardmap", "btree", "lsm"}
	var results []Result
	for _, tc := range []struct {
		panel   string
		threads int
		zipf    bool
	}{
		{"8a single-thread uniform", 1, false},
		{"8b single-thread zipf", 1, true},
		{"8c all-threads uniform", o.MaxThreads, false},
		{"8d all-threads zipf", o.MaxThreads, true},
	} {
		fmt.Fprintf(o.Out, "\n--- Fig %s (keys=%d, %v/run) ---\n", tc.panel, o.Keys, o.Duration)
		for _, m := range figure8Mixes {
			for _, sysName := range systems {
				var gen ycsb.Generator
				if tc.zipf {
					gen = ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed)
				} else {
					gen = ycsb.NewUniform(o.Keys, o.Seed)
				}
				res, err := runMix(sysName, o, m.Mix, m.Label, gen, tc.threads, 8)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				fmt.Fprintf(o.Out, "%s\n", res)
			}
		}
	}
	return results, nil
}

// Fig9a regenerates the RMW scalability sweep (8-byte payloads, Zipfian).
func Fig9a(o Options) ([]Result, error) {
	o.defaults()
	return scalability(o, ycsb.MixRMW100, "0:100 RMW", 8, "Fig 9a")
}

// Fig9b regenerates the blind-update scalability sweep (100-byte
// payloads, Zipfian).
func Fig9b(o Options) ([]Result, error) {
	o.defaults()
	return scalability(o, ycsb.Mix0R100BU, "0:100", 100, "Fig 9b")
}

func scalability(o Options, mix ycsb.Mix, label string, valueSize int, fig string) ([]Result, error) {
	systems := []string{"faster", "shardmap", "btree", "lsm"}
	var results []Result
	fmt.Fprintf(o.Out, "\n--- %s scalability (%s, %dB values, zipf) ---\n", fig, label, valueSize)
	for _, threads := range threadSweep(o.MaxThreads) {
		for _, sysName := range systems {
			gen := ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed)
			res, err := runMix(sysName, o, mix, label, gen, threads, valueSize)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
			fmt.Fprintf(o.Out, "%s\n", res)
		}
	}
	return results, nil
}

// Fig10Row is one memory-budget measurement.
type Fig10Row struct {
	Result
	BudgetBytes uint64
	DiskReads   uint64
}

// Fig10 regenerates the larger-than-memory experiment: fixed dataset,
// shrinking memory budget, FASTER (50:50 and 0:100 Zipf) vs the LSM
// baseline. The budget controls the log buffer (FASTER) / memtable (LSM).
func Fig10(o Options) ([]Fig10Row, error) {
	o.defaults()
	const valueSize = 100
	recBytes := uint64(16 + 8 + ((valueSize + 7) &^ 7))
	dataset := o.Keys * recBytes
	var rows []Fig10Row
	fmt.Fprintf(o.Out, "\n--- Fig 10: throughput vs memory budget (dataset=%d MB) ---\n", dataset>>20)
	for _, m := range []struct {
		label string
		mix   ycsb.Mix
	}{{"50:50", ycsb.Mix50R50BU}, {"0:100", ycsb.Mix0R100BU}} {
		for _, frac := range []float64{2.0, 1.0, 0.5, 0.25, 0.125} {
			budget := uint64(float64(dataset) * frac)
			const pageBits = 16
			pages := 2
			for uint64(pages)<<pageBits < budget {
				pages *= 2
			}
			// FASTER with a real (simulated-latency) SSD behind it.
			dev := device.NewMem(device.MemConfig{ReadLatency: 20 * time.Microsecond})
			fsys, err := NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: valueSize,
				Mode: hlog.ModeHybrid, PageBits: pageBits, BufferPages: pages, Device: dev})
			if err != nil {
				return nil, err
			}
			wl := ycsb.NewWorkload(ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed), m.mix, o.Seed)
			res := Run(fsys, RunConfig{Threads: min(4, o.MaxThreads), Duration: o.Duration,
				Workload: wl, ValueSize: valueSize, Preload: true,
				RMWInputs: ycsb.InputArray(), Seed: o.Seed}, m.label)
			reads := dev.Stats().Reads
			fsys.Close()
			row := Fig10Row{Result: res, BudgetBytes: budget, DiskReads: reads}
			rows = append(rows, row)
			fmt.Fprintf(o.Out, "%s  budget=%4dMB diskReads=%d\n", res, budget>>20, reads)

			// LSM with the same nominal budget.
			lsys, err := NewLSMSystem(int(budget), "")
			if err != nil {
				return nil, err
			}
			wl2 := ycsb.NewWorkload(ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed), m.mix, o.Seed)
			res2 := Run(lsys, RunConfig{Threads: min(4, o.MaxThreads), Duration: o.Duration,
				Workload: wl2, ValueSize: valueSize, Preload: true,
				RMWInputs: ycsb.InputArray(), Seed: o.Seed}, m.label)
			lsys.Close()
			rows = append(rows, Fig10Row{Result: res2, BudgetBytes: budget})
			fmt.Fprintf(o.Out, "%s  budget=%4dMB\n", res2, budget>>20)
		}
	}
	return rows, nil
}

// Fig11 regenerates the append-only vs hybrid log comparison (YCSB
// 50:50, uniform and Zipfian, thread sweep).
func Fig11(o Options) ([]Result, error) {
	o.defaults()
	var results []Result
	fmt.Fprintf(o.Out, "\n--- Fig 11: append-only vs hybrid log (50:50) ---\n")
	for _, distr := range []string{"uniform", "zipf"} {
		for _, threads := range threadSweep(o.MaxThreads) {
			for _, sysName := range []string{"faster", "faster-aol"} {
				var gen ycsb.Generator
				if distr == "zipf" {
					gen = ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed)
				} else {
					gen = ycsb.NewUniform(o.Keys, o.Seed)
				}
				res, err := runMix(sysName, o, ycsb.Mix50R50BU, "50:50 "+distr, gen, threads, 8)
				if err != nil {
					return nil, err
				}
				results = append(results, res)
				fmt.Fprintf(o.Out, "%s\n", res)
			}
		}
	}
	return results, nil
}

// Fig12Row carries the IPU-region sweep measurements.
type Fig12Row struct {
	Result
	IPUFactor    float64
	LogGrowthMBs float64
	FuzzyPct     float64
}

// Fig12 regenerates Fig 12a (throughput and log growth vs IPU region
// factor) and Fig 12b (fuzzy-operation percentage vs IPU region factor)
// in one sweep: 100% RMW, uniform and Zipfian.
func Fig12(o Options) ([]Fig12Row, error) {
	o.defaults()
	var rows []Fig12Row
	fmt.Fprintf(o.Out, "\n--- Fig 12: IPU region factor sweep (100%% RMW) ---\n")
	for _, distr := range []string{"uniform", "zipf"} {
		for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
			const pageBits = 14
			// Buffer sized to hold the dataset; the mutable fraction of
			// the buffer is then the fraction of the dataset that is
			// in-place updatable.
			pages := bufferPagesFor(o.Keys, 8, pageBits, 1.5)
			sys, err := NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: 8,
				Mode: hlog.ModeHybrid, PageBits: pageBits, BufferPages: pages,
				MutableFraction: f})
			if err != nil {
				return nil, err
			}
			var gen ycsb.Generator
			if distr == "zipf" {
				gen = ycsb.NewZipfian(o.Keys, ycsb.DefaultTheta, o.Seed)
			} else {
				gen = ycsb.NewUniform(o.Keys, o.Seed)
			}
			wl := ycsb.NewWorkload(gen, ycsb.MixRMW100, o.Seed)
			tail0 := sys.Store().Log().TailAddress()
			res := Run(sys, RunConfig{Threads: o.MaxThreads, Duration: o.Duration,
				Workload: wl, ValueSize: 8, Preload: true,
				RMWInputs: ycsb.InputArray(), Seed: o.Seed}, "RMW "+distr)
			tail1 := sys.Store().Log().TailAddress()
			fz, total := sys.FuzzyStats()
			maybeDumpMetrics(o, sys, fmt.Sprintf("RMW %s ipu=%.1f", distr, f))
			sys.Close()
			growth := float64(tail1-tail0) / res.Elapsed.Seconds() / (1 << 20)
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(fz) / float64(total)
			}
			row := Fig12Row{Result: res, IPUFactor: f, LogGrowthMBs: growth, FuzzyPct: pct}
			rows = append(rows, row)
			fmt.Fprintf(o.Out, "%s  ipu=%.1f logGrowth=%8.2f MB/s fuzzy=%.4f%%\n",
				res, f, growth, pct)
		}
	}
	return rows, nil
}

// Fig13 regenerates the fuzzy-percentage vs thread-count sweep (100% RMW
// uniform, IPU factor 0.8).
func Fig13(o Options) ([]Fig12Row, error) {
	o.defaults()
	var rows []Fig12Row
	fmt.Fprintf(o.Out, "\n--- Fig 13: fuzzy ops vs threads (IPU=0.8, 100%% RMW uniform) ---\n")
	for _, threads := range threadSweep(o.MaxThreads) {
		const pageBits = 14
		pages := bufferPagesFor(o.Keys, 8, pageBits, 1.5)
		sys, err := NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: 8,
			Mode: hlog.ModeHybrid, PageBits: pageBits, BufferPages: pages,
			MutableFraction: 0.8})
		if err != nil {
			return nil, err
		}
		wl := ycsb.NewWorkload(ycsb.NewUniform(o.Keys, o.Seed), ycsb.MixRMW100, o.Seed)
		res := Run(sys, RunConfig{Threads: threads, Duration: o.Duration,
			Workload: wl, ValueSize: 8, Preload: true,
			RMWInputs: ycsb.InputArray(), Seed: o.Seed}, "RMW uniform")
		fz, total := sys.FuzzyStats()
		maybeDumpMetrics(o, sys, fmt.Sprintf("RMW uniform threads=%d", threads))
		sys.Close()
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(fz) / float64(total)
		}
		row := Fig12Row{Result: res, IPUFactor: 0.8, FuzzyPct: pct}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "%s  fuzzy=%.4f%%\n", res, pct)
	}
	return rows, nil
}

// TagAblation regenerates the §7.2.2 tag-size experiment: YCSB 50:50
// uniform at full threads, with index tags of 1, 4 and 14 bits.
func TagAblation(o Options) ([]Result, error) {
	o.defaults()
	var results []Result
	fmt.Fprintf(o.Out, "\n--- Tag-size ablation (50:50 uniform, all threads) ---\n")
	for _, tagBits := range []uint{1, 4, 14} {
		sys, err := NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: 8,
			Mode: hlog.ModeHybrid, TagBits: tagBits,
			BufferPages: bufferPagesFor(o.Keys, 8, 16, 2.0)})
		if err != nil {
			return nil, err
		}
		wl := ycsb.NewWorkload(ycsb.NewUniform(o.Keys, o.Seed), ycsb.Mix50R50BU, o.Seed)
		res := Run(sys, RunConfig{Threads: o.MaxThreads, Duration: o.Duration,
			Workload: wl, ValueSize: 8, Preload: true,
			RMWInputs: ycsb.InputArray(), Seed: o.Seed}, fmt.Sprintf("tag=%d", tagBits))
		sys.Close()
		results = append(results, res)
		fmt.Fprintf(o.Out, "%s\n", res)
	}
	return results, nil
}

// LogBandwidth regenerates the §7.3 closing measurement: a 0:100 blind
// update workload with a mostly read-only region, reporting the sequential
// log write bandwidth achieved at the device.
func LogBandwidth(o Options) (float64, error) {
	o.defaults()
	dev := device.NewMem(device.MemConfig{})
	// A buffer around half the dataset with a mostly read-only region
	// forces continuous RCU appends and page flushes, which is what the
	// paper's bandwidth probe measures.
	const pageBits = 14
	pages := bufferPagesFor(o.Keys, 100, pageBits, 0.5)
	sys, err := NewFasterSystem(FasterOptions{Keys: o.Keys, ValueSize: 100,
		Mode: hlog.ModeHybrid, PageBits: pageBits,
		BufferPages: pages, MutableFraction: 0.2, Device: dev})
	if err != nil {
		return 0, err
	}
	wl := ycsb.NewWorkload(ycsb.NewUniform(o.Keys, o.Seed), ycsb.Mix0R100BU, o.Seed)
	res := Run(sys, RunConfig{Threads: min(4, o.MaxThreads), Duration: o.Duration,
		Workload: wl, ValueSize: 100, Preload: true,
		RMWInputs: ycsb.InputArray(), Seed: o.Seed}, "0:100 uniform")
	written := dev.Stats().BytesWritten
	maybeDumpMetrics(o, sys, "0:100 uniform bandwidth")
	sys.Close()
	mbs := float64(written) / res.Elapsed.Seconds() / (1 << 20)
	fmt.Fprintf(o.Out, "\n--- §7.3 log write bandwidth: %.1f MB/s (%.3f Mops/s) ---\n", mbs, res.Mops())
	return mbs, nil
}
