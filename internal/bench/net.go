package bench

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/server"
)

// NetPipeline is the FASTER half of the §7.2.4 comparison: the same
// pipelined loopback workload that RedisPipeline drives against redcache,
// here driven against the faster-server RESP front-end (internal/server)
// over a memory-device store. Reading the two tables side by side shows
// how much of redcache's throughput gap survives once FASTER is put
// behind the identical network stack — per the paper, the answer at
// depth 1 is "the network dominates both", and the gap reopens as
// batching amortises the syscalls.
func NetPipeline(o Options, clients int, depths []int) ([]RedisRow, error) {
	o.defaults()
	if clients == 0 {
		clients = 10 // redis-benchmark -c 10, as in the paper
	}
	if len(depths) == 0 {
		depths = []int{1, 10, 50, 100, 200}
	}

	dev := device.NewMem(device.MemConfig{})
	store, err := faster.Open(faster.Config{
		Ops:          faster.VarLenOps{},
		IndexBuckets: 1 << 14,
		PageBits:     22,
		BufferPages:  32,
		Device:       dev,
		MaxSessions:  clients + 8,
	})
	if err != nil {
		dev.Close()
		return nil, err
	}
	defer dev.Close()
	defer store.Close()

	srv, err := server.ListenAndServe(store, "127.0.0.1:0", server.Config{
		Sessions:    clients,
		MaxInFlight: 2 * clients,
		// The sweep is throughput-bound, not robustness-bound: a shed
		// would silently deflate a row, so size admission above the
		// offered load and let deadlines stay at their defaults.
		MaxConns: 2 * clients,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var rows []RedisRow
	fmt.Fprintf(o.Out, "\n--- §7.2.4 faster-server pipelining (clients=%d, keys=%d) ---\n", clients, o.Keys)
	for _, depth := range depths {
		sets, err := netPhase(srv.Addr(), clients, depth, o, false)
		if err != nil {
			return nil, err
		}
		gets, err := netPhase(srv.Addr(), clients, depth, o, true)
		if err != nil {
			return nil, err
		}
		row := RedisRow{Pipeline: depth, SetsPerS: sets, GetsPerS: gets}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "pipeline=%-4d  %10.0f sets/s  %10.0f gets/s\n", depth, sets, gets)
	}
	if m := srv.Metrics(); m.OverloadSheds > 0 || m.DeadlineEvictions > 0 {
		fmt.Fprintf(o.Out, "WARNING: server shed load during sweep (%d sheds, %d evictions); rows understate throughput\n",
			m.OverloadSheds, m.DeadlineEvictions)
	}
	return rows, nil
}

// NetVsRedis runs both halves of §7.2.4 back to back and prints the
// ratio table: FASTER-over-TCP throughput relative to redcache at each
// pipeline depth.
func NetVsRedis(o Options, clients int, depths []int) error {
	o.defaults()
	if len(depths) == 0 {
		depths = []int{1, 10, 50, 100, 200}
	}
	redis, err := RedisPipeline(o, clients, depths)
	if err != nil {
		return err
	}
	net, err := NetPipeline(o, clients, depths)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "\n--- §7.2.4 faster-server / redcache throughput ratio ---\n")
	for i := range depths {
		fmt.Fprintf(o.Out, "pipeline=%-4d  %6.2fx sets  %6.2fx gets\n",
			depths[i], ratio(net[i].SetsPerS, redis[i].SetsPerS), ratio(net[i].GetsPerS, redis[i].GetsPerS))
	}
	return nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// netPhase mirrors redisPhase: `clients` goroutines issuing fixed-depth
// pipelined batches against a RESP address until the measurement window
// closes, returning ops/sec. It uses the shared internal/resp client so
// both systems pay the same protocol cost.
func netPhase(addr string, clients, depth int, o Options, get bool) (float64, error) {
	var (
		wg    sync.WaitGroup
		total uint64
		mu    sync.Mutex
		errs  []error
	)
	setCmd, getCmd := []byte("SET"), []byte("GET")
	val := []byte("8bytes!!")
	start := time.Now()
	deadline := start.Add(o.Duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := resp.Dial(addr)
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			defer cl.Close()
			cl.Timeout = 30 * time.Second
			cmds := make([][][]byte, depth)
			keys := make([][]byte, depth) // reused buffers, one per slot
			var done uint64
			k := uint64(id)
			for time.Now().Before(deadline) {
				for i := range cmds {
					keys[i] = strconv.AppendUint(keys[i][:0], k%o.Keys, 10)
					if get {
						cmds[i] = [][]byte{getCmd, keys[i]}
					} else {
						cmds[i] = [][]byte{setCmd, keys[i], val}
					}
					k += 7919
				}
				replies, err := cl.Pipeline(cmds)
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				for _, r := range replies {
					if r.IsError() {
						mu.Lock()
						errs = append(errs, fmt.Errorf("server error reply: %s", r.Str))
						mu.Unlock()
						return
					}
				}
				done += uint64(depth)
			}
			mu.Lock()
			total += done
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, errs[0]
	}
	return float64(total) / time.Since(start).Seconds(), nil
}
