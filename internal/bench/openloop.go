package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/resp"
)

// Open-loop SLO harness: a constant-arrival-rate RESP workload whose
// latencies are measured from each operation's *scheduled* arrival time,
// not from when the client got around to sending it. A closed-loop
// client that stalls on a slow reply silently stops offering load — the
// coordinated-omission trap — and its percentiles describe the client,
// not the server. Here the schedule is fixed up front: if a connection
// falls behind, every queued operation's latency keeps growing against
// its original slot, so a stall shows up as the tail it really is.
//
// Connections are partitioned into hot-set and cold-set issuers (in
// HotPct proportion). A cold miss legitimately parks its *connection*
// for the device round trip (RESP replies are ordered per connection);
// dedicating connections per class keeps that client-side head-of-line
// blocking out of the hot percentiles, so the hot curve measures the
// server's isolation — exactly the stall-free claim under test — rather
// than the client's own queueing.

// OpenLoopConfig parameterizes one constant-rate run against a RESP
// address. Keys [0, HotKeys) are the hot set; [HotKeys, Keys) the cold
// set.
type OpenLoopConfig struct {
	Addr     string
	Rate     float64       // total target arrivals/sec across all connections
	Duration time.Duration // length of the arrival schedule
	Conns    int           // issuing connections (default 8)
	Keys     uint64        // key-space size
	HotKeys  uint64        // size of the hot prefix
	HotPct   int           // percent of connections (≈ arrivals) on the hot set
	RMWPct   int           // percent of arrivals issued as INCRBY (rest GET)
	Seed     int64
	Timeout  time.Duration // client socket timeout (default 30s)
}

// LatencyStats summarizes one class's samples; percentiles are exact
// (computed from the full sorted sample set, no histogram buckets).
type LatencyStats struct {
	Count               uint64
	P50, P99, P999, Max time.Duration
}

// OpenLoopResult is one run's outcome. Every scheduled arrival that was
// actually issued is accounted for exactly once:
//
//	Issued == Completed + ShedTimeout + ShedOverload + Errors
type OpenLoopResult struct {
	Issued, Completed         uint64
	ShedTimeout, ShedOverload uint64 // explicit -TIMEOUT / -OVERLOADED sheds
	Errors                    uint64 // transport failures and other error replies
	Hot, Cold                 LatencyStats
	Elapsed                   time.Duration
}

// CheckAccounting returns an error unless every issued operation landed
// in exactly one outcome bucket.
func (r OpenLoopResult) CheckAccounting() error {
	if got := r.Completed + r.ShedTimeout + r.ShedOverload + r.Errors; got != r.Issued {
		return fmt.Errorf("open-loop accounting broken: issued %d != completed %d + shed-timeout %d + shed-overload %d + errors %d",
			r.Issued, r.Completed, r.ShedTimeout, r.ShedOverload, r.Errors)
	}
	return nil
}

type openLoopConn struct {
	issued, completed         uint64
	shedTimeout, shedOverload uint64
	errs                      uint64
	samples                   []time.Duration
	err                       error // fatal transport failure (run still reports partial stats)
}

// OpenLoop drives one constant-arrival-rate run and returns exact
// percentile stats split by key class.
func OpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return OpenLoopResult{}, errors.New("bench: OpenLoop needs Rate > 0 and Duration > 0")
	}
	if cfg.Keys == 0 || cfg.HotKeys == 0 || cfg.HotKeys >= cfg.Keys {
		return OpenLoopResult{}, errors.New("bench: OpenLoop needs 0 < HotKeys < Keys")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	hotConns := cfg.Conns * cfg.HotPct / 100
	if hotConns <= 0 {
		hotConns = 1
	}
	if hotConns >= cfg.Conns {
		hotConns = cfg.Conns - 1
	}

	perConn := cfg.Rate / float64(cfg.Conns)
	interval := time.Duration(float64(time.Second) / perConn)
	ops := int(cfg.Duration.Seconds() * perConn)
	if ops == 0 {
		ops = 1
	}

	stats := make([]openLoopConn, cfg.Conns)
	start := time.Now().Add(20 * time.Millisecond) // dial headroom before slot 0
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runOpenLoopConn(cfg, &stats[c], c, c < hotConns, start, interval, ops)
		}(c)
	}
	wg.Wait()

	var res OpenLoopResult
	var hot, cold []time.Duration
	var fatal error
	for c := range stats {
		st := &stats[c]
		res.Issued += st.issued
		res.Completed += st.completed
		res.ShedTimeout += st.shedTimeout
		res.ShedOverload += st.shedOverload
		res.Errors += st.errs
		if c < hotConns {
			hot = append(hot, st.samples...)
		} else {
			cold = append(cold, st.samples...)
		}
		if st.err != nil && fatal == nil {
			fatal = st.err
		}
	}
	res.Hot = summarize(hot)
	res.Cold = summarize(cold)
	res.Elapsed = time.Since(start)
	if err := res.CheckAccounting(); err != nil {
		return res, err
	}
	return res, fatal
}

// runOpenLoopConn walks one connection's slice of the global schedule:
// op i is due at start + i*interval (staggered per connection), issued
// no earlier than its slot, with latency measured from the slot even
// when the connection is running behind.
func runOpenLoopConn(cfg OpenLoopConfig, st *openLoopConn, id int, hot bool, start time.Time, interval time.Duration, ops int) {
	cl, err := resp.Dial(cfg.Addr)
	if err != nil {
		st.err = err
		return
	}
	defer cl.Close()
	cl.Timeout = cfg.Timeout

	rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(id)))
	offset := time.Duration(float64(interval) * float64(id) / float64(cfg.Conns))
	getCmd, incrCmd, one := []byte("GET"), []byte("INCRBY"), []byte("1")
	key := make([]byte, 0, 16)

	for i := 0; i < ops; i++ {
		sched := start.Add(offset + time.Duration(i)*interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		var k uint64
		if hot {
			k = uint64(rng.Int63n(int64(cfg.HotKeys)))
		} else {
			k = cfg.HotKeys + uint64(rng.Int63n(int64(cfg.Keys-cfg.HotKeys)))
		}
		key = appendOpenLoopKey(key[:0], k)
		var v resp.Value
		if rng.Intn(100) < cfg.RMWPct {
			v, err = cl.Do(incrCmd, key, one)
		} else {
			v, err = cl.Do(getCmd, key)
		}
		st.issued++
		if err != nil {
			// Transport failure: the reply is lost, so this op and the
			// rest of the schedule are unaccountable — record and stop.
			st.errs++
			st.err = err
			return
		}
		lat := time.Since(sched)
		if v.IsError() {
			switch s := string(v.Str); {
			case strings.HasPrefix(s, "TIMEOUT"):
				st.shedTimeout++
			case strings.HasPrefix(s, "OVERLOADED"):
				st.shedOverload++
			default:
				st.errs++
			}
			continue
		}
		st.completed++
		st.samples = append(st.samples, lat)
	}
}

// appendOpenLoopKey formats the workload's key for index k. Fixed width
// keeps every record the same size, so spill depth depends only on the
// key count.
func appendOpenLoopKey(dst []byte, k uint64) []byte {
	dst = append(dst, 'k')
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, "0123456789abcdef"[(k>>shift)&0xf])
	}
	return dst
}

// summarize computes exact percentiles from raw samples.
func summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	n := len(samples)
	pick := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return samples[i]
	}
	return LatencyStats{
		Count: uint64(n),
		P50:   pick(0.50),
		P99:   pick(0.99),
		P999:  pick(0.999),
		Max:   samples[n-1],
	}
}
