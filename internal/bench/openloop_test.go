package bench

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/resp"
	"repro/internal/server"
)

// openLoopFixture stands up a larger-than-memory store behind the RESP
// front-end: a 128 KiB log buffer over a chaos-capable memory device,
// preloaded (several× the buffer) so the cold tail of the key space
// lives only on "disk" while the hot prefix sits resident at the log
// tail. Cold GET/INCRBY traffic therefore exercises the full
// out-of-band miss path (WouldBlock → io-worker pool → async reply)
// that the open-loop SLO run measures. The buffer is sized above one
// run's append volume: when the mutable region wraps mid-run, tail
// allocation blocks on (spiked) page flushes — write-path back-pressure
// that is real but orthogonal to the read-miss isolation under test.
func openLoopFixture(tb testing.TB, keys, hot uint64) (addr string, dev *device.Faulty, store *faster.Store) {
	tb.Helper()
	dev = device.NewFaulty(device.NewMem(device.MemConfig{}))
	store, err := faster.Open(faster.Config{
		Ops:          faster.VarLenOps{},
		Mode:         hlog.ModeHybrid,
		IndexBuckets: 1 << 12,
		PageBits:     12,
		BufferPages:  32,
		Device:       dev,
		MaxSessions:  24,
		IOWorkers:    4,
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := server.ListenAndServe(store, "127.0.0.1:0", server.Config{
		Sessions:    8,
		MaxInFlight: 64,
		MaxConns:    64,
		OpTimeout:   500 * time.Millisecond,
	})
	if err != nil {
		store.Close()
		dev.Close()
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		srv.Close()
		store.Close()
		dev.Close()
	})

	// Preload every key as an 8-byte counter (so GET and INCRBY both
	// work), then rewrite the hot prefix so it lands resident at the
	// tail while the cold range has long since spilled to the device.
	cl, err := resp.Dial(srv.Addr())
	if err != nil {
		tb.Fatal(err)
	}
	defer cl.Close()
	cl.Timeout = 30 * time.Second
	setCmd := []byte("SET")
	zero := make([]byte, 8)
	binary.LittleEndian.PutUint64(zero, 7)
	load := func(lo, hi uint64) {
		batch := make([][][]byte, 0, 256)
		flush := func() {
			replies, err := cl.Pipeline(batch)
			if err != nil {
				tb.Fatal(err)
			}
			for _, r := range replies {
				if r.IsError() {
					tb.Fatalf("preload SET failed: %s", r.Str)
				}
			}
			batch = batch[:0]
		}
		for k := lo; k < hi; k++ {
			batch = append(batch, [][]byte{setCmd, appendOpenLoopKey(nil, k), zero})
			if len(batch) == 256 {
				flush()
			}
		}
		if len(batch) > 0 {
			flush()
		}
	}
	load(0, keys)
	load(0, hot)
	return srv.Addr(), dev, store
}

// TestOpenLoopSmoke is the stall-free SLO gate in miniature: a no-chaos
// run and a 100 ms device latency-spike run over the same fixture. The
// hot (resident) class must ride through device chaos — its p999 stays
// within 10× the no-chaos baseline (with a scheduling-jitter floor for
// loaded CI machines) — every issued op lands in exactly one outcome
// bucket, and deadline sheds must leave the health ladder untouched.
func TestOpenLoopSmoke(t *testing.T) {
	const keys, hot = 6000, 64
	addr, dev, store := openLoopFixture(t, keys, hot)

	cfg := OpenLoopConfig{
		Addr:     addr,
		Rate:     1600,
		Duration: 500 * time.Millisecond,
		Conns:    8,
		Keys:     keys,
		HotKeys:  hot,
		HotPct:   75,
		RMWPct:   20,
		Seed:     1,
	}
	base, err := OpenLoop(cfg)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if base.Completed == 0 || base.Hot.Count == 0 || base.Cold.Count == 0 {
		t.Fatalf("baseline run did not complete traffic in both classes: %+v", base)
	}
	if m := store.Metrics(); m.IOSubmitted == 0 {
		t.Fatal("no cold miss went through the io-worker pool; the working set is not larger than memory")
	}

	dev.SpikeLatency(100*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond)
	chaos, err := OpenLoop(cfg)
	dev.SpikeLatency(0, 0, 0)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if chaos.Completed == 0 || chaos.Hot.Count == 0 {
		t.Fatalf("chaos run did not complete hot traffic: %+v", chaos)
	}

	// The stall-free claim: device chaos slows (or sheds) cold misses,
	// but resident traffic keeps its latency profile.
	limit := 10 * base.Hot.P999
	if floor := 60 * time.Millisecond; limit < floor {
		limit = floor
	}
	if chaos.Hot.P999 > limit {
		t.Fatalf("hot p999 under chaos = %v, want <= %v (baseline hot p999 %v); hot traffic is stalling behind cold misses",
			chaos.Hot.P999, limit, base.Hot.P999)
	}
	// Back-pressure sheds are explicit, accounted, and must never trip
	// the health ladder — the device is slow, not failing.
	if h := store.Health(); h != faster.Healthy {
		t.Fatalf("health = %v after latency-spike chaos, want Healthy (sheds: %d timeout, %d overload)",
			h, chaos.ShedTimeout, chaos.ShedOverload)
	}
	t.Logf("baseline: hot p50/p99/p999 = %v/%v/%v cold p999 = %v (%d completed)",
		base.Hot.P50, base.Hot.P99, base.Hot.P999, base.Cold.P999, base.Completed)
	t.Logf("chaos:    hot p50/p99/p999 = %v/%v/%v cold p999 = %v (%d completed, %d shed-timeout, %d shed-overload, %d errors)",
		chaos.Hot.P50, chaos.Hot.P99, chaos.Hot.P999, chaos.Cold.P999,
		chaos.Completed, chaos.ShedTimeout, chaos.ShedOverload, chaos.Errors)
}

// BenchmarkOpenLoopSLO emits the BENCH_07 SLO curves: one no-chaos run
// and one run under 100 ms periodic device latency spikes, reporting
// exact hot/cold percentiles and the full shed accounting as custom
// units (cmd/benchreport lands them in "extra"). Run via
// `make bench-openloop` (-benchtime 1x: each phase is one fixed-length
// constant-rate schedule, not an iteration loop).
func BenchmarkOpenLoopSLO(b *testing.B) {
	for _, tc := range []struct {
		name  string
		spike time.Duration
	}{
		{"baseline", 0},
		{"spike100ms", 100 * time.Millisecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const keys, hot = 8000, 128
			addr, dev, store := openLoopFixture(b, keys, hot)
			if tc.spike > 0 {
				dev.SpikeLatency(tc.spike, 200*time.Millisecond, 50*time.Millisecond)
			}
			cfg := OpenLoopConfig{
				Addr:     addr,
				Rate:     2000,
				Duration: 1500 * time.Millisecond,
				Conns:    12,
				Keys:     keys,
				HotKeys:  hot,
				HotPct:   75,
				RMWPct:   20,
				Seed:     42,
			}
			b.ResetTimer()
			var res OpenLoopResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = OpenLoop(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
			b.ReportMetric(ms(res.Hot.P50), "hot-p50-ms")
			b.ReportMetric(ms(res.Hot.P99), "hot-p99-ms")
			b.ReportMetric(ms(res.Hot.P999), "hot-p999-ms")
			b.ReportMetric(ms(res.Cold.P50), "cold-p50-ms")
			b.ReportMetric(ms(res.Cold.P99), "cold-p99-ms")
			b.ReportMetric(ms(res.Cold.P999), "cold-p999-ms")
			b.ReportMetric(float64(res.Issued), "issued")
			b.ReportMetric(float64(res.Completed), "completed")
			b.ReportMetric(float64(res.ShedTimeout), "shed-timeout")
			b.ReportMetric(float64(res.ShedOverload), "shed-overload")
			b.ReportMetric(float64(res.Errors), "transport-errors")
			if h := store.Health(); h != faster.Healthy {
				b.Fatalf("health = %v after run, want Healthy", h)
			}
		})
	}
}
