package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/baselines/redcache"
)

// RedisRow is one pipeline-depth measurement of the §7.2.4 experiment.
type RedisRow struct {
	Pipeline int
	SetsPerS float64
	GetsPerS float64
}

// RedisPipeline regenerates the §7.2.4 comparison: redcache (the Redis
// stand-in) driven by client goroutines over loopback TCP, sweeping the
// pipeline (batch) depth as the paper does from 1 to 200. It reports
// set/sec and get/sec per depth.
func RedisPipeline(o Options, clients int, depths []int) ([]RedisRow, error) {
	o.defaults()
	if clients == 0 {
		clients = 10 // redis-benchmark -c 10, as in the paper
	}
	if len(depths) == 0 {
		depths = []int{1, 10, 50, 100, 200}
	}
	srv, err := redcache.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var rows []RedisRow
	fmt.Fprintf(o.Out, "\n--- §7.2.4 redcache pipelining (clients=%d, keys=%d) ---\n", clients, o.Keys)
	for _, depth := range depths {
		sets, err := redisPhase(srv.Addr(), clients, depth, o, false)
		if err != nil {
			return nil, err
		}
		gets, err := redisPhase(srv.Addr(), clients, depth, o, true)
		if err != nil {
			return nil, err
		}
		row := RedisRow{Pipeline: depth, SetsPerS: sets, GetsPerS: gets}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "pipeline=%-4d  %10.0f sets/s  %10.0f gets/s\n", depth, sets, gets)
	}
	return rows, nil
}

func redisPhase(addr string, clients, depth int, o Options, get bool) (float64, error) {
	var (
		wg    sync.WaitGroup
		total uint64
		mu    sync.Mutex
		errs  []error
	)
	start := time.Now()
	deadline := start.Add(o.Duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := redcache.Dial(addr)
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				return
			}
			defer cl.Close()
			reqs := make([]redcache.Req, depth)
			var done uint64
			k := uint64(id)
			for time.Now().Before(deadline) {
				for i := range reqs {
					key := k % o.Keys
					if get {
						reqs[i] = redcache.GetReq(key)
					} else {
						reqs[i] = redcache.SetReq(key, []byte("8bytes!!"))
					}
					k += 7919
				}
				if _, err := cl.Pipeline(reqs); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				done += uint64(depth)
			}
			mu.Lock()
			total += done
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, errs[0]
	}
	return float64(total) / time.Since(start).Seconds(), nil
}
