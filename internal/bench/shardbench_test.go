package bench

// Shard-scaling benchmarks behind `make bench-shard` (BENCH_08.json).
//
// The tentpole claim is that N shards give N independent io-pools,
// flushers, and epoch domains, so device-bound work scales with the
// shard count even when a single shard's pipeline would saturate. To
// measure that rather than raw CPU (the scaling story must hold on a
// small host), both scenarios are device-bound by construction:
//
//   - ShardedBatchReadU64: a larger-than-memory keyspace over simulated
//     SSDs with flash-like read latency. One shard completes cold
//     misses through one bounded io-pool; sixteen shards overlap
//     sixteen. The total in-memory budget is held constant (the buffer
//     is split across shards), so extra shards never mean extra cache.
//   - ShardedBatchUpsertU64: the same fixed total buffer budget with
//     uncapped devices, measuring the append path's sharding overhead
//     under sustained flush churn (a bandwidth cap would make the
//     1-shard case spin on backpressure and starve its own flusher on
//     a small host, measuring the scheduler instead of the store).
//
// Acceptance (ISSUE 9): 16-shard read throughput >= 2x single-shard at
// -cpu 16, batch 64.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
)

const (
	shardBenchKeys  = 1 << 16
	shardBenchBatch = 64
	// Total in-memory log budget across ALL shards: 128 pages of 4 KiB.
	// Splitting a fixed budget is the honest comparison — a 16-shard
	// config must win by overlapping I/O, not by caching more.
	shardBenchTotalPages = 128
)

func openShardBenchStore(b *testing.B, shards int, mem device.MemConfig, preload bool) *faster.ShardedStore {
	b.Helper()
	devs := make([]*device.Mem, shards)
	for i := range devs {
		devs[i] = device.NewMem(mem)
	}
	pages := shardBenchTotalPages / shards
	if pages < 8 {
		pages = 8
	}
	ss, err := faster.OpenSharded(faster.ShardedConfig{
		Shards: shards,
		Base: faster.Config{
			Ops:          faster.SumOps{},
			IndexBuckets: 1 << 15,
			PageBits:     12,
			BufferPages:  pages,
			IOWorkers:    4,
			IOQueueDepth: 4096,
		},
		NewDevice: func(i int) device.Device { return devs[i] },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ss.Close()
		for _, d := range devs {
			d.Close()
		}
	})
	if !preload {
		return ss
	}
	sess := ss.StartSession()
	defer sess.Close()
	const chunk = 256
	backing := make([]byte, 8*chunk)
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	ops := make([]faster.BatchOp, chunk)
	for k := uint64(0); k < shardBenchKeys; k += chunk {
		for j := 0; j < chunk; j++ {
			kb := backing[j*8 : j*8+8]
			binary.LittleEndian.PutUint64(kb, k+uint64(j)+1)
			ops[j] = faster.BatchOp{Kind: faster.BatchUpsert, Key: kb, Value: one}
		}
		if err := sess.ExecBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
	return ss
}

// shardBenchKey scatters i over the keyspace (golden-ratio multiply).
func shardBenchKey(buf []byte, i uint64) {
	binary.LittleEndian.PutUint64(buf, (i*0x9E3779B97F4A7C15)&(shardBenchKeys-1)+1)
}

// BenchmarkShardedBatchReadU64 issues 64-op read windows against a
// larger-than-memory store; nearly every read is a cold miss completed
// by the owning shard's io-pool against a 150us-latency device.
func BenchmarkShardedBatchReadU64(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ss := openShardBenchStore(b, shards, device.MemConfig{
				ReadLatency: 150 * time.Microsecond,
				Workers:     8,
			}, true)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sess := ss.StartSession()
				defer sess.Close()
				keys := make([]byte, 8*shardBenchBatch)
				outs := make([]byte, 8*shardBenchBatch)
				ops := make([]faster.BatchOp, shardBenchBatch)
				i := (seq.Add(1) * 977) &^ uint64(shardBenchBatch-1)
				for pb.Next() {
					slot := int(i % shardBenchBatch)
					shardBenchKey(keys[slot*8:slot*8+8], i)
					ops[slot] = faster.BatchOp{Kind: faster.BatchRead,
						Key:    keys[slot*8 : slot*8+8],
						Output: outs[slot*8 : slot*8+8]}
					i++
					if slot != shardBenchBatch-1 {
						continue
					}
					if err := sess.ExecBatch(ops); err != nil {
						b.Fatal(err)
					}
					pending := false
					for j := range ops {
						switch ops[j].Status {
						case faster.OK:
						case faster.Pending:
							pending = true
						default:
							b.Fatalf("read %x: %v %v", ops[j].Key, ops[j].Status, ops[j].Err)
						}
					}
					if pending {
						if _, err := sess.CompletePendingTimeout(30 * time.Second); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

// BenchmarkShardedBatchUpsertU64 issues 64-op upsert windows under
// sustained flush churn: every shard continuously closes, flushes, and
// evicts pages while serving appends.
func BenchmarkShardedBatchUpsertU64(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ss := openShardBenchStore(b, shards, device.MemConfig{
				Workers: 8,
			}, false)
			var seq atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sess := ss.StartSession()
				defer sess.Close()
				keys := make([]byte, 8*shardBenchBatch)
				val := make([]byte, 8)
				binary.LittleEndian.PutUint64(val, 1)
				ops := make([]faster.BatchOp, shardBenchBatch)
				i := (seq.Add(1) * 977) &^ uint64(shardBenchBatch-1)
				for pb.Next() {
					slot := int(i % shardBenchBatch)
					shardBenchKey(keys[slot*8:slot*8+8], i)
					ops[slot] = faster.BatchOp{Kind: faster.BatchUpsert,
						Key:   keys[slot*8 : slot*8+8],
						Value: val}
					i++
					if slot != shardBenchBatch-1 {
						continue
					}
					if err := sess.ExecBatch(ops); err != nil {
						b.Fatal(err)
					}
					for j := range ops {
						if ops[j].Status != faster.OK {
							b.Fatalf("upsert %x: %v %v", ops[j].Key, ops[j].Status, ops[j].Err)
						}
					}
				}
			})
		})
	}
}
