package bench

import (
	"encoding/binary"
	"fmt"

	"repro/internal/baselines/btree"
	"repro/internal/baselines/lsm"
	"repro/internal/baselines/shardmap"
	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/hlog"
)

// ---------------------------------------------------------------------------
// FASTER adapter
// ---------------------------------------------------------------------------

// FasterOptions configures the FASTER system under test.
type FasterOptions struct {
	Keys            uint64
	ValueSize       int
	Mode            hlog.Mode
	PageBits        uint
	BufferPages     int
	MutableFraction float64
	TagBits         uint
	CRDT            bool
	Device          device.Device // default: Mem
}

// FasterSystem adapts a faster.Store.
type FasterSystem struct {
	store *faster.Store
	dev   device.Device
	name  string
}

// NewFasterSystem opens a FASTER store for benchmarking.
func NewFasterSystem(opt FasterOptions) (*FasterSystem, error) {
	dev := opt.Device
	if dev == nil {
		if opt.Mode == hlog.ModeInMemory {
			dev = device.NewNull()
		} else {
			dev = device.NewMem(device.MemConfig{})
		}
	}
	if opt.PageBits == 0 {
		opt.PageBits = 16 // 64 KB pages at laptop scale
	}
	if opt.BufferPages == 0 {
		opt.BufferPages = 64
	}
	if opt.MutableFraction == 0 {
		opt.MutableFraction = 0.9
	}
	var ops faster.ValueOps = faster.SumOps{}
	if opt.ValueSize > 8 {
		ops = faster.BlobOps{}
	}
	cfg := faster.Config{
		IndexBuckets:    opt.Keys / 2,
		TagBits:         opt.TagBits,
		PageBits:        opt.PageBits,
		BufferPages:     opt.BufferPages,
		MutableFraction: opt.MutableFraction,
		Mode:            opt.Mode,
		Device:          dev,
		Ops:             ops,
		CRDT:            opt.CRDT && opt.ValueSize == 8,
		MaxSessions:     512,
	}
	s, err := faster.Open(cfg)
	if err != nil {
		return nil, err
	}
	name := "faster"
	switch opt.Mode {
	case hlog.ModeAppendOnly:
		name = "faster-aol"
	case hlog.ModeInMemory:
		name = "faster-mem"
	}
	return &FasterSystem{store: s, dev: dev, name: name}, nil
}

// Store exposes the underlying store (experiment metrics).
func (f *FasterSystem) Store() *faster.Store { return f.store }

// Name implements System.
func (f *FasterSystem) Name() string { return f.name }

// Close implements System.
func (f *FasterSystem) Close() error {
	err := f.store.Close()
	f.dev.Close()
	return err
}

// NewWorker implements System.
func (f *FasterSystem) NewWorker(int) Worker {
	return &fasterWorker{sess: f.store.StartSession(), key: make([]byte, 8), in: make([]byte, 8)}
}

type fasterWorker struct {
	sess *faster.Session
	key  []byte
	in   []byte
}

func (w *fasterWorker) k(key uint64) []byte {
	binary.LittleEndian.PutUint64(w.key, key)
	return w.key
}

func (w *fasterWorker) Read(key uint64, out []byte) bool {
	st, _ := w.sess.Read(w.k(key), nil, out, nil)
	if st == faster.Pending {
		for _, r := range w.sess.CompletePending(true) {
			st = r.Status
		}
	}
	return st == faster.OK
}

func (w *fasterWorker) Upsert(key uint64, value []byte) {
	w.sess.Upsert(w.k(key), value)
}

func (w *fasterWorker) RMW(key uint64, delta uint64) {
	binary.LittleEndian.PutUint64(w.in, delta)
	st, _ := w.sess.RMW(w.k(key), w.in, nil)
	if st == faster.Pending {
		w.sess.CompletePending(true)
	}
}

func (w *fasterWorker) Finish() { w.sess.CompletePending(true) }
func (w *fasterWorker) Close()  { w.sess.Close() }

// FuzzyOps sums (fuzzy, total) across... fuzzy stats are store-level.
// Exposed here for the Fig 12b/13 experiments.
func (f *FasterSystem) FuzzyStats() (fuzzy, total uint64) {
	st := f.store.Stats()
	return st.FuzzyRMWs, st.Operations
}

// ---------------------------------------------------------------------------
// shardmap adapter (Intel TBB stand-in)
// ---------------------------------------------------------------------------

// ShardmapSystem adapts the sharded hash map.
type ShardmapSystem struct{ m *shardmap.Map }

// NewShardmapSystem creates the system.
func NewShardmapSystem(keys uint64) *ShardmapSystem {
	return &ShardmapSystem{m: shardmap.New(256, int(keys))}
}

// Name implements System.
func (s *ShardmapSystem) Name() string { return "shardmap" }

// Close implements System.
func (s *ShardmapSystem) Close() error { return nil }

// NewWorker implements System.
func (s *ShardmapSystem) NewWorker(int) Worker { return shardmapWorker{m: s.m} }

type shardmapWorker struct{ m *shardmap.Map }

func (w shardmapWorker) Read(key uint64, out []byte) bool { return w.m.Get(key, out) }
func (w shardmapWorker) Upsert(key uint64, value []byte)  { w.m.Put(key, value) }
func (w shardmapWorker) RMW(key uint64, delta uint64)     { w.m.AtomicRMW(key, delta) }
func (w shardmapWorker) Finish()                          {}
func (w shardmapWorker) Close()                           {}

// ---------------------------------------------------------------------------
// btree adapter (Masstree stand-in)
// ---------------------------------------------------------------------------

// BTreeSystem adapts the concurrent B+tree.
type BTreeSystem struct{ t *btree.Tree }

// NewBTreeSystem creates the system.
func NewBTreeSystem() *BTreeSystem { return &BTreeSystem{t: btree.New()} }

// Name implements System.
func (s *BTreeSystem) Name() string { return "btree" }

// Close implements System.
func (s *BTreeSystem) Close() error { return nil }

// NewWorker implements System.
func (s *BTreeSystem) NewWorker(int) Worker { return btreeWorker{t: s.t} }

type btreeWorker struct{ t *btree.Tree }

func (w btreeWorker) Read(key uint64, out []byte) bool { return w.t.Get(key, out) }
func (w btreeWorker) Upsert(key uint64, value []byte)  { w.t.Put(key, value) }
func (w btreeWorker) RMW(key uint64, delta uint64) {
	w.t.RMW(key, func(cur []byte) []byte {
		if cur == nil {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, delta)
			return b
		}
		binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+delta)
		return cur
	})
}
func (w btreeWorker) Finish() {}
func (w btreeWorker) Close()  {}

// ---------------------------------------------------------------------------
// lsm adapter (RocksDB stand-in)
// ---------------------------------------------------------------------------

// LSMSystem adapts the LSM store.
type LSMSystem struct{ db *lsm.DB }

// NewLSMSystem creates the system. memBytes is the memtable budget (its
// "memory budget" knob for Fig 10).
func NewLSMSystem(memBytes int, dir string) (*LSMSystem, error) {
	db, err := lsm.Open(lsm.Config{
		MemtableBytes: memBytes,
		Merge:         lsm.SumMerge{},
		Dir:           dir,
	})
	if err != nil {
		return nil, err
	}
	return &LSMSystem{db: db}, nil
}

// Name implements System.
func (s *LSMSystem) Name() string { return "lsm" }

// Close implements System.
func (s *LSMSystem) Close() error { return s.db.Close() }

// NewWorker implements System.
func (s *LSMSystem) NewWorker(int) Worker { return lsmWorker{db: s.db} }

type lsmWorker struct{ db *lsm.DB }

func (w lsmWorker) Read(key uint64, out []byte) bool {
	ok, err := w.db.Get(key, out)
	if err != nil {
		panic(fmt.Sprintf("lsm get: %v", err))
	}
	return ok
}

func (w lsmWorker) Upsert(key uint64, value []byte) { w.db.Put(key, value) }

func (w lsmWorker) RMW(key uint64, delta uint64) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, delta)
	w.db.Merge(key, b)
}

func (w lsmWorker) Finish() {}
func (w lsmWorker) Close()  {}
