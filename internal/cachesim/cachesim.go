// Package cachesim implements the caching-protocol simulation of Section
// 7.5 of the FASTER paper: a constant-sized key buffer managed by one of
// five protocols — FIFO, CLOCK, LRU-1, LRU-2 (the LRU-K protocol of
// O'Neil et al. with K=2) and HLOG, the HybridLog's implicit
// second-chance-FIFO behaviour — measured by cache miss ratio over
// synthetic access traces (uniform, Zipfian, shifting hot set).
package cachesim

import "fmt"

// Cache is a fixed-capacity key cache under some replacement protocol.
type Cache interface {
	// Access touches key, returning true on a hit. On a miss the key is
	// admitted (evicting per protocol).
	Access(key uint64) bool
	// Name identifies the protocol.
	Name() string
	// Len returns the number of cached slots in use (duplicates count,
	// matching the paper's effective-cache-size argument for HLOG).
	Len() int
}

// NewFunc constructs a cache of the given capacity.
type NewFunc func(capacity int) Cache

// Protocols enumerates the five protocols of Fig 14-16 in paper order.
func Protocols() []NewFunc {
	return []NewFunc{
		func(c int) Cache { return NewFIFO(c) },
		func(c int) Cache { return NewLRU(c) },
		func(c int) Cache { return NewLRUK(c, 2) },
		func(c int) Cache { return NewCLOCK(c) },
		func(c int) Cache { return NewHLOG(c, 0.9) },
	}
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

// FIFO evicts in insertion order, ignoring hits.
type FIFO struct {
	cap   int
	ring  []uint64
	head  int
	count int
	pos   map[uint64]int // key -> refcount in ring (0 = absent)
}

// NewFIFO creates a FIFO cache.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{cap: capacity, ring: make([]uint64, capacity), pos: make(map[uint64]int, capacity)}
}

// Name implements Cache.
func (c *FIFO) Name() string { return "FIFO" }

// Len implements Cache.
func (c *FIFO) Len() int { return c.count }

// Access implements Cache.
func (c *FIFO) Access(key uint64) bool {
	if c.pos[key] > 0 {
		return true
	}
	if c.count == c.cap {
		old := c.ring[c.head]
		if n := c.pos[old]; n <= 1 {
			delete(c.pos, old)
		} else {
			c.pos[old] = n - 1
		}
		c.count--
	}
	c.ring[c.head] = key
	c.head = (c.head + 1) % c.cap
	c.count++
	c.pos[key]++
	return false
}

// ---------------------------------------------------------------------------
// CLOCK (second-chance FIFO with reference bits)
// ---------------------------------------------------------------------------

// CLOCK approximates LRU with a circulating hand and per-slot ref bits.
type CLOCK struct {
	cap   int
	keys  []uint64
	ref   []bool
	used  []bool
	hand  int
	count int
	slot  map[uint64]int
}

// NewCLOCK creates a CLOCK cache.
func NewCLOCK(capacity int) *CLOCK {
	return &CLOCK{
		cap: capacity, keys: make([]uint64, capacity),
		ref: make([]bool, capacity), used: make([]bool, capacity),
		slot: make(map[uint64]int, capacity),
	}
}

// Name implements Cache.
func (c *CLOCK) Name() string { return "CLOCK" }

// Len implements Cache.
func (c *CLOCK) Len() int { return c.count }

// Access implements Cache.
func (c *CLOCK) Access(key uint64) bool {
	if i, ok := c.slot[key]; ok {
		c.ref[i] = true
		return true
	}
	// Find a victim slot.
	for {
		if !c.used[c.hand] {
			break
		}
		if !c.ref[c.hand] {
			delete(c.slot, c.keys[c.hand])
			c.count--
			break
		}
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % c.cap
	}
	c.keys[c.hand] = key
	c.used[c.hand] = true
	c.ref[c.hand] = false
	c.slot[key] = c.hand
	c.count++
	c.hand = (c.hand + 1) % c.cap
	return false
}

// ---------------------------------------------------------------------------
// LRU-1
// ---------------------------------------------------------------------------

type lruNode struct {
	key        uint64
	prev, next *lruNode
}

// LRU evicts the least recently used key (LRU-1).
type LRU struct {
	cap        int
	nodes      map[uint64]*lruNode
	head, tail *lruNode // head = most recent
}

// NewLRU creates an LRU-1 cache.
func NewLRU(capacity int) *LRU {
	return &LRU{cap: capacity, nodes: make(map[uint64]*lruNode, capacity)}
}

// Name implements Cache.
func (c *LRU) Name() string { return "LRU_1" }

// Len implements Cache.
func (c *LRU) Len() int { return len(c.nodes) }

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) pushFront(n *lruNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Access implements Cache.
func (c *LRU) Access(key uint64) bool {
	if n, ok := c.nodes[key]; ok {
		c.unlink(n)
		c.pushFront(n)
		return true
	}
	if len(c.nodes) == c.cap {
		victim := c.tail
		c.unlink(victim)
		delete(c.nodes, victim.key)
	}
	n := &lruNode{key: key}
	c.pushFront(n)
	c.nodes[key] = n
	return false
}

// ---------------------------------------------------------------------------
// LRU-K (O'Neil et al. 1993), used with K=2 as the paper's LRU_2
// ---------------------------------------------------------------------------

// LRUK evicts the resident key with the largest backward K-distance: the
// key whose K-th most recent access is oldest. Keys with fewer than K
// recorded accesses have infinite distance and are evicted first (by
// oldest last access). Following O'Neil et al., access history is
// retained for a while after eviction (the Retained Information Period),
// so a key re-admitted shortly after eviction still counts its earlier
// accesses toward its K-distance.
type LRUK struct {
	cap      int
	k        int
	now      uint64
	resident map[uint64]bool
	hist     map[uint64][]uint64 // key -> last K access times (newest first)
	heap     lazyHeap
}

// NewLRUK creates an LRU-K cache.
func NewLRUK(capacity, k int) *LRUK {
	return &LRUK{
		cap: capacity, k: k,
		resident: make(map[uint64]bool, capacity),
		hist:     make(map[uint64][]uint64, 2*capacity),
	}
}

// Name implements Cache.
func (c *LRUK) Name() string { return fmt.Sprintf("LRU_%d", c.k) }

// Len implements Cache.
func (c *LRUK) Len() int { return len(c.resident) }

// priority returns the eviction priority: the K-th most recent access
// time, or the (much smaller, hence evicted-first) last access time for
// keys with short history, offset below all full histories.
func (c *LRUK) priority(h []uint64) uint64 {
	if len(h) >= c.k {
		return h[c.k-1] + (1 << 63) // full history sorts above short ones
	}
	return h[len(h)-1]
}

// retainedPeriod is how long (in accesses) history survives eviction.
func (c *LRUK) retainedPeriod() uint64 { return uint64(2 * c.cap) }

// Access implements Cache.
func (c *LRUK) Access(key uint64) bool {
	c.now++
	h := c.hist[key]
	// Drop history older than the retained period.
	for len(h) > 0 && c.now-h[len(h)-1] > c.retainedPeriod() {
		h = h[:len(h)-1]
	}
	h = append([]uint64{c.now}, h...)
	if len(h) > c.k {
		h = h[:c.k]
	}
	c.hist[key] = h
	hit := c.resident[key]
	if !hit {
		if len(c.resident) == c.cap {
			c.evict()
		}
		c.resident[key] = true
	}
	c.heap.push(heapItem{prio: c.priority(h), key: key})
	c.pruneHistory()
	return hit
}

// evict pops stale heap entries until one matches a resident key's
// current priority, then removes that key (history is retained).
func (c *LRUK) evict() {
	for {
		it, ok := c.heap.pop()
		if !ok {
			// Heap exhausted; rebuild from resident histories.
			for k := range c.resident {
				c.heap.push(heapItem{prio: c.priority(c.hist[k]), key: k})
			}
			continue
		}
		if !c.resident[it.key] {
			continue // already evicted
		}
		if c.priority(c.hist[it.key]) != it.prio {
			continue // stale entry; a fresher one exists
		}
		delete(c.resident, it.key)
		return
	}
}

// pruneHistory bounds the retained-history map.
func (c *LRUK) pruneHistory() {
	if len(c.hist) <= 8*c.cap {
		return
	}
	for k, h := range c.hist {
		if !c.resident[k] && (len(h) == 0 || c.now-h[0] > c.retainedPeriod()) {
			delete(c.hist, k)
		}
	}
}

// heapItem is a lazily invalidated eviction candidate.
type heapItem struct {
	prio uint64
	key  uint64
}

// lazyHeap is a binary min-heap of eviction candidates.
type lazyHeap struct{ a []heapItem }

func (h *lazyHeap) push(it heapItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].prio <= h.a[i].prio {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *lazyHeap) pop() (heapItem, bool) {
	if len(h.a) == 0 {
		return heapItem{}, false
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l].prio < h.a[small].prio {
			small = l
		}
		if r < last && h.a[r].prio < h.a[small].prio {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top, true
}

// ---------------------------------------------------------------------------
// HLOG: the HybridLog's implicit caching behaviour (§6.4, §7.5)
// ---------------------------------------------------------------------------

// HLOG simulates FASTER's in-memory log window as a cache: the buffer is
// the last `capacity` log slots. An access to a key in the mutable region
// is a hit in place; an access in the read-only region is a hit that
// copies the key to the tail (the second chance); a miss appends the key.
// Hot keys therefore occupy up to two slots (one read-only, one mutable),
// which is exactly the effective-cache-size penalty the paper reports.
type HLOG struct {
	cap     int
	mutable int // slots in the mutable region (tail side)
	ring    []uint64
	tailPos uint64            // monotone log position
	last    map[uint64]uint64 // key -> most recent log position + 1
	live    int
}

// NewHLOG creates an HLOG cache; mutableFrac is the fraction of the
// buffer in the in-place-updatable region (paper default 0.9).
func NewHLOG(capacity int, mutableFrac float64) *HLOG {
	m := int(float64(capacity) * mutableFrac)
	if m < 1 {
		m = 1
	}
	if m > capacity {
		m = capacity
	}
	return &HLOG{
		cap: capacity, mutable: m,
		ring: make([]uint64, capacity),
		last: make(map[uint64]uint64, capacity),
	}
}

// Name implements Cache.
func (c *HLOG) Name() string { return "HLOG" }

// Len implements Cache.
func (c *HLOG) Len() int { return c.live }

func (c *HLOG) append(key uint64) {
	if c.live == c.cap {
		evictPos := c.tailPos - uint64(c.cap)
		old := c.ring[evictPos%uint64(c.cap)]
		if p, ok := c.last[old]; ok && p == evictPos+1 {
			delete(c.last, old)
		}
		c.live--
	}
	c.ring[c.tailPos%uint64(c.cap)] = key
	c.last[key] = c.tailPos + 1
	c.tailPos++
	c.live++
}

// Access implements Cache.
func (c *HLOG) Access(key uint64) bool {
	p, ok := c.last[key]
	if ok {
		pos := p - 1
		windowStart := uint64(0)
		if c.tailPos > uint64(c.cap) {
			windowStart = c.tailPos - uint64(c.cap)
		}
		if pos >= windowStart {
			roBoundary := uint64(0)
			if c.tailPos > uint64(c.mutable) {
				roBoundary = c.tailPos - uint64(c.mutable)
			}
			if pos < roBoundary {
				// Read-only region: second chance — copy to tail.
				c.append(key)
			}
			return true
		}
		delete(c.last, key)
	}
	c.append(key)
	return false
}

// ---------------------------------------------------------------------------
// Simulation harness
// ---------------------------------------------------------------------------

// Result is the outcome of one simulation run.
type Result struct {
	Protocol  string
	CacheSize int
	Accesses  uint64
	Misses    uint64
}

// MissRatio returns misses / accesses.
func (r Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// Run feeds trace through a fresh cache from mk and reports the miss
// ratio, after a warmup of capacity accesses that are excluded from the
// counts (the paper measures steady-state behaviour).
func Run(mk NewFunc, capacity int, trace func() uint64, accesses uint64) Result {
	c := mk(capacity)
	warm := uint64(capacity)
	for i := uint64(0); i < warm; i++ {
		c.Access(trace())
	}
	var misses uint64
	for i := uint64(0); i < accesses; i++ {
		if !c.Access(trace()) {
			misses++
		}
	}
	return Result{Protocol: c.Name(), CacheSize: capacity, Accesses: accesses, Misses: misses}
}
