package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ycsb"
)

func allCaches(capacity int) []Cache {
	return []Cache{
		NewFIFO(capacity), NewLRU(capacity), NewLRUK(capacity, 2),
		NewCLOCK(capacity), NewHLOG(capacity, 0.9),
	}
}

func TestHitAfterInsert(t *testing.T) {
	for _, c := range allCaches(8) {
		if c.Access(1) {
			t.Fatalf("%s: hit on first access", c.Name())
		}
		if !c.Access(1) {
			t.Fatalf("%s: miss on second access", c.Name())
		}
	}
}

func TestCapacityRespected(t *testing.T) {
	for _, c := range allCaches(4) {
		for k := uint64(0); k < 100; k++ {
			c.Access(k)
		}
		if c.Len() > 4 {
			t.Fatalf("%s: Len %d exceeds capacity 4", c.Name(), c.Len())
		}
	}
}

func TestFIFOEvictsInOrder(t *testing.T) {
	c := NewFIFO(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // hit; FIFO ignores recency
	c.Access(4) // evicts 1 (oldest insertion)
	if c.Access(1) {
		t.Fatal("FIFO should have evicted key 1")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // 1 becomes most recent
	c.Access(4) // evicts 2
	if !c.Access(1) {
		t.Fatal("LRU wrongly evicted recently used key 1")
	}
	if c.Access(2) {
		t.Fatal("LRU should have evicted key 2")
	}
}

func TestCLOCKGivesSecondChance(t *testing.T) {
	c := NewCLOCK(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // sets ref bit on 1
	c.Access(4) // hand passes 1 (clears ref), evicts 2
	if !c.Access(1) {
		t.Fatal("CLOCK evicted referenced key 1")
	}
	if c.Access(2) {
		t.Fatal("CLOCK should have evicted key 2")
	}
}

func TestLRUKPrefersEvictingOneTimers(t *testing.T) {
	c := NewLRUK(3, 2)
	c.Access(1)
	c.Access(1) // key 1 has full history
	c.Access(2)
	c.Access(2) // key 2 has full history
	c.Access(3) // one access only
	c.Access(4) // must evict 3 (infinite K-distance)
	if c.Access(3) {
		t.Fatal("LRU-2 should have evicted the one-time key 3")
	}
	if !c.Access(1) || !c.Access(2) {
		t.Fatal("LRU-2 evicted a key with full history over a one-timer")
	}
}

func TestHLOGSecondChance(t *testing.T) {
	// Capacity 10, mutable 5. A key accessed in the read-only region is
	// copied to the tail and survives longer than plain FIFO would allow.
	c := NewHLOG(10, 0.5)
	c.Access(1)
	for k := uint64(2); k <= 7; k++ {
		c.Access(k) // key 1 now 7 positions back: read-only region
	}
	if !c.Access(1) {
		t.Fatal("key 1 should still be cached")
	}
	// Key 1 was copied to the tail; push 8 more keys: the original copy
	// falls out but the fresh copy remains.
	for k := uint64(10); k < 18; k++ {
		c.Access(k)
	}
	if !c.Access(1) {
		t.Fatal("HLOG second chance failed: key 1 evicted despite tail copy")
	}
}

func TestHLOGDuplicatesReduceEffectiveSize(t *testing.T) {
	// With heavy reuse, HLOG stores duplicate copies, so a scan over
	// slightly more distinct keys than capacity misses more than LRU.
	const cap = 64
	trace := func(seed int64) func() uint64 {
		rng := rand.New(rand.NewSource(seed))
		return func() uint64 { return uint64(rng.Intn(cap + 16)) }
	}
	lru := Run(func(c int) Cache { return NewLRU(c) }, cap, trace(1), 50_000)
	hlog := Run(func(c int) Cache { return NewHLOG(c, 0.9) }, cap, trace(1), 50_000)
	if hlog.MissRatio() <= lru.MissRatio() {
		t.Fatalf("expected HLOG (%.4f) to miss more than LRU (%.4f) under reuse",
			hlog.MissRatio(), lru.MissRatio())
	}
}

func TestUniformAllProtocolsSimilar(t *testing.T) {
	// Fig 14: under a uniform trace every protocol's miss ratio is about
	// 1 - cacheSize/keySpace.
	const keys = 4096
	const cap = keys / 4
	for _, mk := range Protocols() {
		g := ycsb.NewUniform(keys, 7)
		res := Run(mk, cap, g.Next, 100_000)
		want := 1.0 - float64(cap)/keys
		if r := res.MissRatio(); r < want-0.08 || r > want+0.08 {
			t.Fatalf("%s: uniform miss ratio %.3f, want ~%.3f", res.Protocol, r, want)
		}
	}
}

func TestZipfLRUBeatsFIFOAndHLOGBetween(t *testing.T) {
	// Fig 15's qualitative shape: LRU_1/LRU_2/CLOCK < HLOG < FIFO.
	const keys = 1 << 15
	const cap = keys / 8
	ratio := map[string]float64{}
	for _, mk := range Protocols() {
		g := ycsb.NewZipfian(keys, ycsb.DefaultTheta, 3).Unscrambled()
		res := Run(mk, cap, g.Next, 300_000)
		ratio[res.Protocol] = res.MissRatio()
	}
	if !(ratio["LRU_1"] < ratio["HLOG"]) {
		t.Fatalf("LRU_1 (%.4f) should beat HLOG (%.4f) on zipf", ratio["LRU_1"], ratio["HLOG"])
	}
	if !(ratio["HLOG"] < ratio["FIFO"]) {
		t.Fatalf("HLOG (%.4f) should beat FIFO (%.4f) on zipf", ratio["HLOG"], ratio["FIFO"])
	}
}

func TestHotSetHLOGCompetitive(t *testing.T) {
	// Fig 16: on the shifting hot-set trace HLOG stays between FIFO and
	// the LRU family.
	const keys = 1 << 14
	const cap = keys / 4
	ratio := map[string]float64{}
	for _, mk := range Protocols() {
		g := ycsb.NewHotSet(ycsb.HotSetConfig{Keys: keys, ShiftEvery: 10_000}, 5)
		res := Run(mk, cap, g.Next, 300_000)
		ratio[res.Protocol] = res.MissRatio()
	}
	if !(ratio["HLOG"] <= ratio["FIFO"]+0.02) {
		t.Fatalf("HLOG (%.4f) should be at least as good as FIFO (%.4f) on hot-set",
			ratio["HLOG"], ratio["FIFO"])
	}
}

// Property: Len never exceeds capacity for any access sequence, for any
// protocol.
func TestQuickLenBounded(t *testing.T) {
	f := func(keys []uint16, capSeed uint8) bool {
		capacity := int(capSeed)%32 + 1
		for _, c := range allCaches(capacity) {
			for _, k := range keys {
				c.Access(uint64(k) % 64)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: accessing the same key twice in a row always hits the second
// time (no protocol evicts the key it just admitted, capacity >= 1).
func TestQuickImmediateReaccessHits(t *testing.T) {
	f := func(keys []uint16) bool {
		for _, c := range allCaches(4) {
			for _, k := range keys {
				c.Access(uint64(k))
				if !c.Access(uint64(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
