package device

import (
	"context"
	"errors"
	"io/fs"

	"repro/internal/retry"
)

// ErrPermanent marks device failures that retrying cannot fix: the device
// is gone, closed, or structurally unable to serve the request. Fault
// injectors and real devices wrap it (via fmt.Errorf("%w", ...) or
// errors.Join) so errors.Is(err, ErrPermanent) classifies them.
var ErrPermanent = errors.New("device: permanent failure")

// Classifier is implemented by devices that know how to classify their own
// errors (a cloud-storage device could map HTTP 503 to Transient and 404
// to Permanent). Wrappers like Faulty forward to the inner device.
type Classifier interface {
	ClassifyError(err error) retry.Class
}

// Classify is the default error taxonomy for the built-in devices, and the
// retry.Classifier used by the store when the device does not implement
// Classifier:
//
//   - nil is not an error (Transient, never consulted on success)
//   - ErrPermanent (and anything wrapping it), ErrClosed, ErrOutOfRange and
//     filesystem existence errors are Permanent: retrying the same request
//     cannot succeed
//   - context.Canceled is Permanent: the caller abandoned the operation,
//     so retrying it runs I/O nobody is waiting for. A deadline timeout
//     (context.DeadlineExceeded) stays Transient — the next attempt may
//     land inside the budget
//   - everything else — including ErrInjected transient faults and unknown
//     device errors — is Transient; the bounded retry budget keeps
//     misclassification cheap
func Classify(err error) retry.Class {
	switch {
	case err == nil:
		return retry.Transient
	case errors.Is(err, ErrPermanent),
		errors.Is(err, ErrClosed),
		errors.Is(err, ErrOutOfRange),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, fs.ErrClosed),
		errors.Is(err, context.Canceled):
		return retry.Permanent
	default:
		return retry.Transient
	}
}

// ClassifierFor returns the retry.Classifier for dev: the device's own
// ClassifyError when implemented, otherwise the default Classify taxonomy.
func ClassifierFor(dev Device) retry.Classifier {
	if c, ok := dev.(Classifier); ok {
		return c.ClassifyError
	}
	return Classify
}
