package device

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"testing"

	"repro/internal/retry"
)

// TestClassifyTable pins the default error taxonomy, including errors
// reaching the classifier through fmt.Errorf("%w") wrapping chains and
// errors.Join — the forms the hlog flush path and the pending-read path
// actually produce.
func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want retry.Class
	}{
		{"nil", nil, retry.Transient},
		{"unknown", errors.New("spurious"), retry.Transient},
		{"injected-transient", ErrInjected, retry.Transient},
		{"short-read", io.ErrUnexpectedEOF, retry.Transient},
		{"deadline-exceeded", context.DeadlineExceeded, retry.Transient},
		{"wrapped-deadline", fmt.Errorf("flush page 3: %w", context.DeadlineExceeded), retry.Transient},

		{"permanent", ErrPermanent, retry.Permanent},
		{"closed", ErrClosed, retry.Permanent},
		{"out-of-range", ErrOutOfRange, retry.Permanent},
		{"not-exist", fs.ErrNotExist, retry.Permanent},
		{"fs-closed", fs.ErrClosed, retry.Permanent},
		{"canceled", context.Canceled, retry.Permanent},

		{"wrapped-permanent", fmt.Errorf("write at %#x: %w", 0x1000, ErrPermanent), retry.Permanent},
		{"double-wrapped", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrClosed)), retry.Permanent},
		{"joined-permanent", errors.Join(errors.New("context"), ErrPermanent), retry.Permanent},
		{"joined-injected-permanent", errors.Join(ErrInjected, ErrPermanent), retry.Permanent},
		{"wrapped-canceled", fmt.Errorf("pending read: %w", context.Canceled), retry.Permanent},
		{"joined-transients", errors.Join(ErrInjected, io.ErrUnexpectedEOF), retry.Transient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// selfClassifying is a Device stub that implements Classifier with an
// inverted taxonomy, to prove ClassifierFor dispatches to it.
type selfClassifying struct{ Device }

func (selfClassifying) ClassifyError(error) retry.Class { return retry.Permanent }

func TestClassifierForDispatch(t *testing.T) {
	mem := NewMem(MemConfig{})
	defer mem.Close()

	// A plain device gets the default taxonomy.
	c := ClassifierFor(mem)
	if got := c(errors.New("anything")); got != retry.Transient {
		t.Fatalf("default classifier: %v, want Transient", got)
	}

	// A device that classifies its own errors wins.
	c = ClassifierFor(selfClassifying{mem})
	if got := c(errors.New("anything")); got != retry.Permanent {
		t.Fatalf("device classifier not consulted: %v, want Permanent", got)
	}

	// Faulty forwards to the inner device's classifier when present…
	f := NewFaulty(selfClassifying{mem})
	if got := ClassifierFor(f)(errors.New("x")); got != retry.Permanent {
		t.Fatalf("Faulty did not forward to inner classifier: %v", got)
	}
	// …and falls back to the default taxonomy otherwise.
	f = NewFaulty(mem)
	if got := ClassifierFor(f)(ErrPermanent); got != retry.Permanent {
		t.Fatalf("Faulty default classification: %v, want Permanent", got)
	}
	if got := ClassifierFor(f)(ErrInjected); got != retry.Transient {
		t.Fatalf("Faulty default classification: %v, want Transient", got)
	}
}
