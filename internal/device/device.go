// Package device abstracts the secondary-storage layer under the FASTER
// log-structured allocators (Section 5 of the paper).
//
// The HybridLog issues asynchronous, sector-aligned page flushes and
// record-granular random reads. The Device interface captures exactly that
// contract. Three implementations are provided:
//
//   - File:  a real file on disk, mirroring the paper's "file on SSD",
//     serviced by a small pool of I/O worker goroutines.
//   - Mem:   an in-memory simulated SSD with configurable read latency and
//     sequential-write bandwidth, used where the paper's FusionIO drive is
//     unavailable (see DESIGN.md substitutions).
//   - Null:  discards writes and fails reads; backs the pure in-memory
//     allocator mode, which never touches storage.
package device

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ErrClosed is returned by operations on a closed device.
var ErrClosed = errors.New("device: closed")

// ErrOutOfRange is returned when a read addresses bytes never written.
var ErrOutOfRange = errors.New("device: read beyond written extent")

// Callback receives the result of an asynchronous I/O operation.
type Callback func(err error)

// Device is an asynchronous block store addressed by byte offset. Offsets
// correspond one-to-one with HybridLog logical addresses, so a record at
// logical address L lives at device offset L once its page is flushed.
//
// Implementations must allow concurrent calls. Callbacks may run on
// arbitrary goroutines and must not block for long.
type Device interface {
	// WriteAsync writes buf at the given offset and invokes cb when the
	// write is durable (or has failed). The caller must not modify buf
	// until cb runs.
	WriteAsync(buf []byte, offset uint64, cb Callback)

	// ReadAsync fills buf from the given offset and invokes cb. Reads of
	// regions never written fail with ErrOutOfRange (File devices may
	// instead return io.EOF-derived errors).
	ReadAsync(buf []byte, offset uint64, cb Callback)

	// Sync blocks until all writes issued before the call have completed.
	Sync() error

	// Truncate discards all data below the given offset (log GC,
	// Appendix C). Reads below it subsequently fail.
	Truncate(until uint64) error

	// Close releases resources. Outstanding I/O completes first.
	Close() error
}

// Stats aggregates device-level counters exposed by the built-in devices.
type Stats struct {
	Writes       uint64 // number of WriteAsync calls completed
	Reads        uint64 // number of ReadAsync calls completed
	BytesWritten uint64
	BytesRead    uint64
}

// Metrics extends Stats with per-operation latency histograms (measured
// from submission to completion callback, so queueing behind a busy
// worker pool shows up) and the injected-fault counters of Faulty.
type Metrics struct {
	Stats
	ReadLatency         metrics.HistogramSnapshot
	WriteLatency        metrics.HistogramSnapshot
	InjectedReadFaults  uint64
	InjectedWriteFaults uint64
}

// MetricsSource is implemented by devices that expose instrumentation;
// all built-in devices do.
type MetricsSource interface {
	Metrics() Metrics
}

// statCounters is embedded by implementations to share counter plumbing.
type statCounters struct {
	writes       atomic.Uint64
	reads        atomic.Uint64
	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64
	readLatency  metrics.Histogram
	writeLatency metrics.Histogram
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		Writes:       s.writes.Load(),
		Reads:        s.reads.Load(),
		BytesWritten: s.bytesWritten.Load(),
		BytesRead:    s.bytesRead.Load(),
	}
}

func (s *statCounters) metricsSnapshot() Metrics {
	return Metrics{
		Stats:        s.snapshot(),
		ReadLatency:  s.readLatency.Snapshot(),
		WriteLatency: s.writeLatency.Snapshot(),
	}
}

// observe records an operation's submit-to-completion latency.
func (s *statCounters) observe(write bool, submitNs int64) {
	d := time.Now().UnixNano() - submitNs
	if d < 0 {
		d = 0
	}
	if write {
		s.writeLatency.ObserveNs(uint64(d))
	} else {
		s.readLatency.ObserveNs(uint64(d))
	}
}

// ---------------------------------------------------------------------------
// ioPool: a fixed pool of worker goroutines servicing async requests.
// ---------------------------------------------------------------------------

type ioRequest struct {
	write    bool
	buf      []byte
	offset   uint64
	cb       Callback
	submitNs int64 // set by submit; feeds the latency histograms
}

// ioPool services asynchronous requests with a fixed set of worker
// goroutines over an unbounded queue. The queue must be unbounded:
// completion callbacks may submit follow-up I/O (two-phase record reads),
// so a bounded queue could deadlock with every worker blocked inside a
// callback that is trying to enqueue.
type ioPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []ioRequest
	pending sync.WaitGroup // tracks in-flight requests for Sync
	wg      sync.WaitGroup
	closed  atomic.Bool
}

func newIOPool(workers int, serve func(ioRequest)) *ioPool {
	if workers < 1 {
		workers = 1
	}
	p := &ioPool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				p.mu.Lock()
				for len(p.queue) == 0 && !p.closed.Load() {
					p.cond.Wait()
				}
				if len(p.queue) == 0 {
					p.mu.Unlock()
					return
				}
				r := p.queue[0]
				p.queue = p.queue[1:]
				p.mu.Unlock()
				serve(r)
				p.pending.Done()
			}
		}()
	}
	return p
}

func (p *ioPool) submit(r ioRequest) bool {
	if p.closed.Load() {
		return false
	}
	r.submitNs = time.Now().UnixNano()
	p.pending.Add(1)
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		p.pending.Done()
		return false
	}
	p.queue = append(p.queue, r)
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

func (p *ioPool) syncWait() { p.pending.Wait() }

func (p *ioPool) close() {
	p.mu.Lock()
	already := p.closed.Swap(true)
	p.mu.Unlock()
	if already {
		return
	}
	p.cond.Broadcast()
	p.wg.Wait()
	// Fail any requests that were queued but never served.
	for _, r := range p.queue {
		r.cb(ErrClosed)
		p.pending.Done()
	}
	p.queue = nil
}

// ---------------------------------------------------------------------------
// File device
// ---------------------------------------------------------------------------

// File is a Device backed by a file, the direct analogue of the paper's
// "file on SSD". I/O is serviced by a pool of goroutines using positional
// reads and writes, so requests proceed concurrently.
type File struct {
	statCounters
	f         *os.File
	pool      *ioPool
	truncated atomic.Uint64 // offsets below this are invalid
	maxExtent atomic.Uint64 // high-water mark of written bytes
}

// OpenFile creates or opens path as a device. workers sets the I/O pool
// size; 4 is a reasonable default for an SSD.
func OpenFile(path string, workers int) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	d := &File{f: f}
	d.pool = newIOPool(workers, d.serve)
	return d, nil
}

func (d *File) serve(r ioRequest) {
	var err error
	defer func() { d.observe(r.write, r.submitNs) }()
	if r.write {
		_, err = d.f.WriteAt(r.buf, int64(r.offset))
		if err == nil {
			d.writes.Add(1)
			d.bytesWritten.Add(uint64(len(r.buf)))
			for {
				hi := d.maxExtent.Load()
				end := r.offset + uint64(len(r.buf))
				if end <= hi || d.maxExtent.CompareAndSwap(hi, end) {
					break
				}
			}
		}
	} else {
		switch {
		case r.offset < d.truncated.Load():
			err = ErrOutOfRange
		default:
			var n int
			n, err = d.f.ReadAt(r.buf, int64(r.offset))
			if err == io.EOF && n == len(r.buf) {
				err = nil
			}
			if err == nil {
				d.reads.Add(1)
				d.bytesRead.Add(uint64(len(r.buf)))
			}
		}
	}
	r.cb(err)
}

// WriteAsync implements Device.
func (d *File) WriteAsync(buf []byte, offset uint64, cb Callback) {
	if !d.pool.submit(ioRequest{write: true, buf: buf, offset: offset, cb: cb}) {
		cb(ErrClosed)
	}
}

// ReadAsync implements Device.
func (d *File) ReadAsync(buf []byte, offset uint64, cb Callback) {
	if !d.pool.submit(ioRequest{buf: buf, offset: offset, cb: cb}) {
		cb(ErrClosed)
	}
}

// Sync implements Device.
func (d *File) Sync() error {
	d.pool.syncWait()
	return d.f.Sync()
}

// Truncate implements Device. Data below until becomes unreadable; the
// underlying file is hole-punched only logically (offsets are preserved).
func (d *File) Truncate(until uint64) error {
	for {
		old := d.truncated.Load()
		if until <= old || d.truncated.CompareAndSwap(old, until) {
			return nil
		}
	}
}

// Stats returns I/O counters.
func (d *File) Stats() Stats { return d.snapshot() }

// Metrics implements MetricsSource.
func (d *File) Metrics() Metrics { return d.metricsSnapshot() }

// Close implements Device.
func (d *File) Close() error {
	d.pool.close()
	return d.f.Close()
}

// ---------------------------------------------------------------------------
// Mem device: simulated SSD
// ---------------------------------------------------------------------------

// MemConfig tunes the simulated SSD.
type MemConfig struct {
	// ReadLatency is added to every read, modelling flash random-read
	// latency. Zero disables the delay.
	ReadLatency time.Duration
	// WriteBandwidth caps sequential write throughput in bytes/sec,
	// modelling the drive's 2 GB/s ceiling from §7.3. Zero = unlimited.
	WriteBandwidth uint64
	// Workers sets the I/O pool size (default 4).
	Workers int
}

// Mem is an in-memory Device that simulates an SSD: it stores flushed pages
// in a sparse map of extents and can impose read latency and a write
// bandwidth cap. It substitutes for the paper's FusionIO drive in
// larger-than-memory experiments (DESIGN.md §1).
type Mem struct {
	statCounters
	cfg  MemConfig
	pool *ioPool

	mu         sync.RWMutex
	extents    map[uint64][]byte // offset -> copy of written buffer
	truncated  uint64
	maxExtent  uint64
	extentSize uint64 // size of first extent; fast path for aligned lookups

	writeTokens atomic.Int64 // crude token bucket for bandwidth capping
	lastRefill  atomic.Int64 // unix nanos
}

// NewMem creates a simulated SSD.
func NewMem(cfg MemConfig) *Mem {
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	d := &Mem{cfg: cfg, extents: make(map[uint64][]byte)}
	d.lastRefill.Store(time.Now().UnixNano())
	d.pool = newIOPool(workers, d.serve)
	return d
}

func (d *Mem) throttleWrite(n int) {
	if d.cfg.WriteBandwidth == 0 {
		return
	}
	for {
		now := time.Now().UnixNano()
		last := d.lastRefill.Load()
		if now > last && d.lastRefill.CompareAndSwap(last, now) {
			refill := int64(uint64(now-last) * d.cfg.WriteBandwidth / 1e9)
			// Cap the bucket at one second of bandwidth.
			if cur := d.writeTokens.Add(refill); cur > int64(d.cfg.WriteBandwidth) {
				d.writeTokens.Store(int64(d.cfg.WriteBandwidth))
			}
		}
		if d.writeTokens.Add(-int64(n)) >= 0 {
			return
		}
		d.writeTokens.Add(int64(n)) // undo; wait for refill
		time.Sleep(100 * time.Microsecond)
	}
}

func (d *Mem) serve(r ioRequest) {
	defer func() { d.observe(r.write, r.submitNs) }()
	if r.write {
		d.throttleWrite(len(r.buf))
		cp := make([]byte, len(r.buf))
		copy(cp, r.buf)
		d.mu.Lock()
		d.extents[r.offset] = cp
		if d.extentSize == 0 {
			d.extentSize = uint64(len(cp))
		}
		if end := r.offset + uint64(len(cp)); end > d.maxExtent {
			d.maxExtent = end
		}
		d.mu.Unlock()
		d.writes.Add(1)
		d.bytesWritten.Add(uint64(len(r.buf)))
		r.cb(nil)
		return
	}
	if d.cfg.ReadLatency > 0 {
		time.Sleep(d.cfg.ReadLatency)
	}
	err := d.readAt(r.buf, r.offset)
	if err == nil {
		d.reads.Add(1)
		d.bytesRead.Add(uint64(len(r.buf)))
	}
	r.cb(err)
}

// readAt assembles buf from stored extents. Extents are written at page
// granularity by the log, so a record read touches one or two extents.
func (d *Mem) readAt(buf []byte, offset uint64) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if offset < d.truncated {
		return ErrOutOfRange
	}
	if offset+uint64(len(buf)) > d.maxExtent {
		return ErrOutOfRange
	}
	need := len(buf)
	filled := 0
	for filled < need {
		pos := offset + uint64(filled)
		ext, extOff, ok := d.findExtent(pos)
		if !ok {
			return ErrOutOfRange
		}
		n := copy(buf[filled:], ext[extOff:])
		filled += n
	}
	return nil
}

// findExtent locates the extent containing pos. Called with mu held.
func (d *Mem) findExtent(pos uint64) (ext []byte, off uint64, ok bool) {
	// Extents are page-sized and page-aligned in normal operation, so an
	// aligned probe hits first; fall back to a scan for irregular writes.
	if sz := d.extentSize; sz != 0 {
		start := pos - pos%sz
		if e, found := d.extents[start]; found && pos < start+uint64(len(e)) {
			return e, pos - start, true
		}
	}
	for start, e := range d.extents {
		if pos >= start && pos < start+uint64(len(e)) {
			return e, pos - start, true
		}
	}
	return nil, 0, false
}

// WriteAsync implements Device.
func (d *Mem) WriteAsync(buf []byte, offset uint64, cb Callback) {
	if !d.pool.submit(ioRequest{write: true, buf: buf, offset: offset, cb: cb}) {
		cb(ErrClosed)
	}
}

// ReadAsync implements Device.
func (d *Mem) ReadAsync(buf []byte, offset uint64, cb Callback) {
	if !d.pool.submit(ioRequest{buf: buf, offset: offset, cb: cb}) {
		cb(ErrClosed)
	}
}

// Sync implements Device.
func (d *Mem) Sync() error {
	d.pool.syncWait()
	return nil
}

// Truncate implements Device and frees truncated extents.
func (d *Mem) Truncate(until uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if until > d.truncated {
		d.truncated = until
	}
	for start, e := range d.extents {
		if start+uint64(len(e)) <= d.truncated {
			delete(d.extents, start)
		}
	}
	return nil
}

// Stats returns I/O counters.
func (d *Mem) Stats() Stats { return d.snapshot() }

// Metrics implements MetricsSource.
func (d *Mem) Metrics() Metrics { return d.metricsSnapshot() }

// StoredBytes reports how many bytes the device currently retains.
func (d *Mem) StoredBytes() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n uint64
	for _, e := range d.extents {
		n += uint64(len(e))
	}
	return n
}

// Close implements Device.
func (d *Mem) Close() error {
	d.pool.close()
	return nil
}

// ---------------------------------------------------------------------------
// Null device
// ---------------------------------------------------------------------------

// Null discards all writes and fails all reads. It backs the pure
// in-memory allocator configuration (Section 4), which by construction
// never reads from storage.
type Null struct{ statCounters }

// NewNull returns a Null device.
func NewNull() *Null { return &Null{} }

// WriteAsync implements Device; the write is acknowledged immediately.
func (d *Null) WriteAsync(buf []byte, offset uint64, cb Callback) {
	d.writes.Add(1)
	d.bytesWritten.Add(uint64(len(buf)))
	cb(nil)
}

// ReadAsync implements Device; reads always fail.
func (d *Null) ReadAsync(buf []byte, offset uint64, cb Callback) {
	cb(ErrOutOfRange)
}

// Sync implements Device.
func (d *Null) Sync() error { return nil }

// Truncate implements Device.
func (d *Null) Truncate(uint64) error { return nil }

// Stats returns I/O counters.
func (d *Null) Stats() Stats { return d.snapshot() }

// Metrics implements MetricsSource.
func (d *Null) Metrics() Metrics { return d.metricsSnapshot() }

// Close implements Device.
func (d *Null) Close() error { return nil }
