package device

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// writeSync is a test helper performing a blocking write.
func writeSync(t *testing.T, d Device, buf []byte, off uint64) {
	t.Helper()
	done := make(chan error, 1)
	d.WriteAsync(buf, off, func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("write at %d: %v", off, err)
	}
}

// readSync is a test helper performing a blocking read.
func readSync(d Device, buf []byte, off uint64) error {
	done := make(chan error, 1)
	d.ReadAsync(buf, off, func(err error) { done <- err })
	return <-done
}

// devices returns fresh instances of every Device implementation that
// supports round-trip reads.
func devices(t *testing.T) map[string]Device {
	t.Helper()
	f, err := OpenFile(filepath.Join(t.TempDir(), "log.dat"), 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Device{
		"file": f,
		"mem":  NewMem(MemConfig{}),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, d := range devices(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			data := []byte("hello hybridlog page data payload")
			writeSync(t, d, data, 4096)
			got := make([]byte, len(data))
			if err := readSync(d, got, 4096); err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("round trip mismatch: %q != %q", got, data)
			}
		})
	}
}

func TestReadBeyondExtentFails(t *testing.T) {
	for name, d := range devices(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			writeSync(t, d, []byte("abc"), 0)
			buf := make([]byte, 10)
			if err := readSync(d, buf, 1<<20); err == nil {
				t.Fatal("expected error reading unwritten region")
			}
		})
	}
}

func TestReadSpanningExtents(t *testing.T) {
	// The log reads records that may straddle two flushed pages.
	for name, d := range devices(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			pageA := bytes.Repeat([]byte{0xAA}, 128)
			pageB := bytes.Repeat([]byte{0xBB}, 128)
			writeSync(t, d, pageA, 0)
			writeSync(t, d, pageB, 128)
			got := make([]byte, 64)
			if err := readSync(d, got, 96); err != nil {
				t.Fatalf("spanning read: %v", err)
			}
			want := append(bytes.Repeat([]byte{0xAA}, 32), bytes.Repeat([]byte{0xBB}, 32)...)
			if !bytes.Equal(got, want) {
				t.Fatalf("spanning read mismatch")
			}
		})
	}
}

func TestTruncateInvalidatesReads(t *testing.T) {
	for name, d := range devices(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			writeSync(t, d, bytes.Repeat([]byte{1}, 256), 0)
			writeSync(t, d, bytes.Repeat([]byte{2}, 256), 256)
			if err := d.Truncate(256); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 16)
			if err := readSync(d, buf, 0); err == nil {
				t.Fatal("read below truncation point should fail")
			}
			if err := readSync(d, buf, 256); err != nil {
				t.Fatalf("read above truncation point: %v", err)
			}
		})
	}
}

func TestStatsCount(t *testing.T) {
	d := NewMem(MemConfig{})
	defer d.Close()
	writeSync(t, d, make([]byte, 100), 0)
	_ = readSync(d, make([]byte, 50), 0)
	s := d.Stats()
	if s.Writes != 1 || s.BytesWritten != 100 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.Reads != 1 || s.BytesRead != 50 {
		t.Fatalf("read stats = %+v", s)
	}
}

func TestMemTruncateFreesExtents(t *testing.T) {
	d := NewMem(MemConfig{})
	defer d.Close()
	writeSync(t, d, make([]byte, 1024), 0)
	writeSync(t, d, make([]byte, 1024), 1024)
	if got := d.StoredBytes(); got != 2048 {
		t.Fatalf("StoredBytes = %d, want 2048", got)
	}
	if err := d.Truncate(1024); err != nil {
		t.Fatal(err)
	}
	if got := d.StoredBytes(); got != 1024 {
		t.Fatalf("StoredBytes after truncate = %d, want 1024", got)
	}
}

func TestMemReadLatency(t *testing.T) {
	const lat = 5 * time.Millisecond
	d := NewMem(MemConfig{ReadLatency: lat})
	defer d.Close()
	writeSync(t, d, make([]byte, 64), 0)
	start := time.Now()
	if err := readSync(d, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("read completed in %v, want >= %v", elapsed, lat)
	}
}

func TestMemWriteBandwidthCap(t *testing.T) {
	// 1 MB/s cap; writing 256 KB must take roughly >= 150 ms (allowing
	// for the initial token bucket fill).
	d := NewMem(MemConfig{WriteBandwidth: 1 << 20, Workers: 1})
	defer d.Close()
	start := time.Now()
	const chunk = 64 << 10
	for i := 0; i < 4; i++ {
		writeSync(t, d, make([]byte, chunk), uint64(i*chunk))
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("4x64KB at 1MB/s finished in %v, throttle ineffective", elapsed)
	}
}

func TestClosedDeviceRejectsIO(t *testing.T) {
	d := NewMem(MemConfig{})
	d.Close()
	errs := make(chan error, 2)
	d.WriteAsync(make([]byte, 8), 0, func(err error) { errs <- err })
	d.ReadAsync(make([]byte, 8), 0, func(err error) { errs <- err })
	for i := 0; i < 2; i++ {
		if err := <-errs; err != ErrClosed {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	}
}

func TestSyncWaitsForOutstandingWrites(t *testing.T) {
	d := NewMem(MemConfig{Workers: 2})
	defer d.Close()
	var mu sync.Mutex
	completed := 0
	const n = 64
	for i := 0; i < n; i++ {
		d.WriteAsync(make([]byte, 512), uint64(i*512), func(error) {
			mu.Lock()
			completed++
			mu.Unlock()
		})
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if completed != n {
		t.Fatalf("Sync returned with %d/%d writes complete", completed, n)
	}
}

func TestConcurrentMixedIO(t *testing.T) {
	for name, d := range devices(t) {
		t.Run(name, func(t *testing.T) {
			defer d.Close()
			const pages = 32
			const pageSize = 1024
			// Pre-write all pages with a recognizable pattern.
			for p := 0; p < pages; p++ {
				buf := bytes.Repeat([]byte{byte(p)}, pageSize)
				writeSync(t, d, buf, uint64(p*pageSize))
			}
			var wg sync.WaitGroup
			errCh := make(chan error, 256)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 50; i++ {
						p := rng.Intn(pages)
						buf := make([]byte, 64)
						if err := readSync(d, buf, uint64(p*pageSize)); err != nil {
							errCh <- err
							return
						}
						for _, b := range buf {
							if b != byte(p) {
								errCh <- fmt.Errorf("page %d corrupt: byte %d", p, b)
								return
							}
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}

func TestNullDevice(t *testing.T) {
	d := NewNull()
	done := make(chan error, 1)
	d.WriteAsync(make([]byte, 99), 0, func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("null write: %v", err)
	}
	if err := readSync(d, make([]byte, 8), 0); err != ErrOutOfRange {
		t.Fatalf("null read err = %v, want ErrOutOfRange", err)
	}
	if s := d.Stats(); s.BytesWritten != 99 {
		t.Fatalf("stats = %+v", s)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// Property: any sequence of page-aligned writes followed by byte-granular
// reads inside the written extent returns exactly what was written.
func TestQuickMemWriteReadConsistency(t *testing.T) {
	f := func(pageData [][8]byte, readOff, readLen uint8) bool {
		if len(pageData) == 0 {
			return true
		}
		d := NewMem(MemConfig{})
		defer d.Close()
		const page = 8
		img := make([]byte, 0, len(pageData)*page)
		for i, pd := range pageData {
			buf := pd[:]
			img = append(img, buf...)
			done := make(chan error, 1)
			d.WriteAsync(buf, uint64(i*page), func(err error) { done <- err })
			if <-done != nil {
				return false
			}
		}
		off := int(readOff) % len(img)
		n := int(readLen)%(len(img)-off) + 1
		got := make([]byte, n)
		if err := readSync(d, got, uint64(off)); err != nil {
			return false
		}
		return bytes.Equal(got, img[off:off+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
