package device

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is returned by Faulty for injected failures.
var ErrInjected = errors.New("device: injected fault")

// Faulty wraps a Device and injects errors, for failure testing: the
// store must surface injected read errors as failed operations without
// corrupting state, and injected write (flush) errors must never let
// eviction pass unflushed pages.
type Faulty struct {
	inner Device

	// FailEveryNthRead fails every Nth read (0 disables).
	failEveryNthRead atomic.Int64
	// FailEveryNthWrite fails every Nth write (0 disables).
	failEveryNthWrite atomic.Int64

	reads, writes   atomic.Int64
	injectedReads   atomic.Int64
	injectedWrites  atomic.Int64
	permanentBroken atomic.Bool
}

// NewFaulty wraps inner.
func NewFaulty(inner Device) *Faulty { return &Faulty{inner: inner} }

// FailEveryNthRead arranges every n-th read to fail (0 disables).
func (d *Faulty) FailEveryNthRead(n int64) { d.failEveryNthRead.Store(n) }

// FailEveryNthWrite arranges every n-th write to fail (0 disables).
func (d *Faulty) FailEveryNthWrite(n int64) { d.failEveryNthWrite.Store(n) }

// BreakPermanently makes every subsequent operation fail.
func (d *Faulty) BreakPermanently() { d.permanentBroken.Store(true) }

// InjectedFaults returns (readFaults, writeFaults) counts.
func (d *Faulty) InjectedFaults() (int64, int64) {
	return d.injectedReads.Load(), d.injectedWrites.Load()
}

// Metrics implements MetricsSource: the inner device's metrics (when it
// exposes any) annotated with this wrapper's injected-fault counters.
func (d *Faulty) Metrics() Metrics {
	var m Metrics
	if src, ok := d.inner.(MetricsSource); ok {
		m = src.Metrics()
	}
	m.InjectedReadFaults = uint64(d.injectedReads.Load())
	m.InjectedWriteFaults = uint64(d.injectedWrites.Load())
	return m
}

// ReadAsync implements Device.
func (d *Faulty) ReadAsync(buf []byte, offset uint64, cb Callback) {
	n := d.reads.Add(1)
	if d.permanentBroken.Load() || (d.failEveryNthRead.Load() > 0 && n%d.failEveryNthRead.Load() == 0) {
		d.injectedReads.Add(1)
		cb(ErrInjected)
		return
	}
	d.inner.ReadAsync(buf, offset, cb)
}

// WriteAsync implements Device.
func (d *Faulty) WriteAsync(buf []byte, offset uint64, cb Callback) {
	n := d.writes.Add(1)
	if d.permanentBroken.Load() || (d.failEveryNthWrite.Load() > 0 && n%d.failEveryNthWrite.Load() == 0) {
		d.injectedWrites.Add(1)
		cb(ErrInjected)
		return
	}
	d.inner.WriteAsync(buf, offset, cb)
}

// Sync implements Device.
func (d *Faulty) Sync() error { return d.inner.Sync() }

// Truncate implements Device.
func (d *Faulty) Truncate(until uint64) error { return d.inner.Truncate(until) }

// Close implements Device.
func (d *Faulty) Close() error { return d.inner.Close() }
