package device

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/retry"
)

// Fault sentinels. All injected errors wrap ErrInjected so tests can
// detect injection with errors.Is; permanent flavors additionally wrap
// ErrPermanent so the default Classify taxonomy stops retrying them.
var (
	// ErrInjected is returned by Faulty for injected transient failures.
	ErrInjected = errors.New("device: injected fault")
	// ErrInjectedPermanent is returned once the device is permanently
	// broken (BreakPermanently or a crash point).
	ErrInjectedPermanent = fmt.Errorf("%w (%w)", ErrInjected, ErrPermanent)
	// ErrTornWrite is returned for a write that only partially reached the
	// media. It is transient: the flush retry rewrites the full extent.
	ErrTornWrite = fmt.Errorf("device: torn write: %w", ErrInjected)
	// ErrCrashPoint is returned by the write that hits a CrashAfterBytes
	// boundary and by every operation after it.
	ErrCrashPoint = fmt.Errorf("device: crash point reached: %w (%w)", ErrInjected, ErrPermanent)
)

// Op identifies a device operation for per-call fault hooks.
type Op int

const (
	OpRead Op = iota
	OpWrite
	OpSync
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Hook decides per call whether to inject a fault: a non-nil return is
// delivered as the operation's error (counted as injected). offset and
// length are zero for Sync; length is zero for Truncate (offset carries
// the truncation point).
type Hook func(op Op, offset uint64, length int) error

// Faulty wraps a Device and injects errors, for failure testing: the
// store must surface injected read errors as failed operations without
// corrupting state, and injected write (flush) errors must never let
// eviction pass unflushed pages.
//
// Beyond the deterministic every-Nth knobs it supports seeded
// probabilistic faults, torn (short) writes, latency injection, and
// fail-at-byte-N crash points — the substrate of the crash/recovery
// torture harness (internal/faster/torture_test.go).
type Faulty struct {
	inner Device

	// FailEveryNthRead fails every Nth read (0 disables).
	failEveryNthRead atomic.Int64
	// FailEveryNthWrite fails every Nth write (0 disables).
	failEveryNthWrite atomic.Int64

	// Seeded probabilistic faults: per-op probabilities in [0,1], decided
	// by a seeded xorshift so runs are reproducible for a fixed seed and
	// op order.
	readProbBits  atomic.Uint64 // math.Float64bits
	writeProbBits atomic.Uint64
	rngState      atomic.Uint64

	// Torn writes: injected write faults first deliver a prefix of the
	// buffer to the inner device, modelling a power cut mid-sector-train.
	tornWrites atomic.Bool

	// Crash point: after crashBudget total bytes have been written the
	// device breaks permanently; the boundary-crossing write is torn at
	// the boundary.
	crashArmed  atomic.Bool
	crashBudget atomic.Int64

	// Latency injection, nanoseconds added before forwarding.
	readLatencyNs  atomic.Int64
	writeLatencyNs atomic.Int64

	// Latency-spike schedule (SpikeLatency): every spikePeriodNs, reads
	// and writes issued during the first spikeLenNs of the period are
	// delayed an extra spikeNs — a square-wave chaos schedule modelling a
	// device that periodically stalls (GC pause, firmware hiccup).
	spikeNs       atomic.Int64
	spikePeriodNs atomic.Int64
	spikeLenNs    atomic.Int64
	spikeEpochNs  atomic.Int64

	hook atomic.Value // Hook

	reads, writes     atomic.Int64
	injectedReads     atomic.Int64
	injectedWrites    atomic.Int64
	injectedSyncs     atomic.Int64
	injectedTruncates atomic.Int64
	tornWritesCount   atomic.Int64
	permanentBroken   atomic.Bool
}

// NewFaulty wraps inner.
func NewFaulty(inner Device) *Faulty {
	f := &Faulty{inner: inner}
	f.rngState.Store(1)
	return f
}

// FailEveryNthRead arranges every n-th read to fail (0 disables).
func (d *Faulty) FailEveryNthRead(n int64) { d.failEveryNthRead.Store(n) }

// FailEveryNthWrite arranges every n-th write to fail (0 disables).
func (d *Faulty) FailEveryNthWrite(n int64) { d.failEveryNthWrite.Store(n) }

// SeedFaults seeds the fault PRNG and sets per-operation failure
// probabilities (clamped to [0,1]; 0 disables). For a fixed seed and
// operation order the injected fault sequence is reproducible.
func (d *Faulty) SeedFaults(seed uint64, readProb, writeProb float64) {
	d.rngState.Store(seed | 1)
	d.readProbBits.Store(math.Float64bits(clamp01(readProb)))
	d.writeProbBits.Store(math.Float64bits(clamp01(writeProb)))
}

// TornWrites makes injected write faults deliver a short prefix of the
// buffer to the inner device before failing (modelling torn sector
// trains). The prefix length is drawn from the fault PRNG.
func (d *Faulty) TornWrites(enabled bool) { d.tornWrites.Store(enabled) }

// CrashAfterBytes arms a crash point: once n total bytes have been
// written through this wrapper, the write crossing the boundary is torn
// at exactly the boundary and the device breaks permanently (every
// subsequent operation fails with ErrCrashPoint).
func (d *Faulty) CrashAfterBytes(n int64) {
	d.crashBudget.Store(n)
	d.crashArmed.Store(true)
}

// InjectLatency adds fixed delays before reads and writes are forwarded
// to the inner device (zero disables). The delay is asynchronous: the
// caller's goroutine is not blocked.
func (d *Faulty) InjectLatency(read, write time.Duration) {
	d.readLatencyNs.Store(int64(read))
	d.writeLatencyNs.Store(int64(write))
}

// SpikeLatency schedules periodic latency spikes: starting now, every
// period, operations issued during the first spikeLen of the period incur
// an extra spike delay on top of any InjectLatency base. A zero spike or
// period disables the schedule. Like InjectLatency the delay is
// asynchronous — callers are never blocked, completions just arrive late —
// which makes it the chaos input for SLO tests: hot in-memory traffic
// must ride through a spike untouched while cold misses slow or shed.
func (d *Faulty) SpikeLatency(spike, period, spikeLen time.Duration) {
	if spike <= 0 || period <= 0 || spikeLen <= 0 {
		d.spikeNs.Store(0)
		d.spikePeriodNs.Store(0)
		d.spikeLenNs.Store(0)
		return
	}
	if spikeLen > period {
		spikeLen = period
	}
	d.spikeEpochNs.Store(time.Now().UnixNano())
	d.spikeLenNs.Store(int64(spikeLen))
	d.spikePeriodNs.Store(int64(period))
	d.spikeNs.Store(int64(spike))
}

// spikeExtra returns the extra delay the spike schedule imposes on an
// operation issued now.
func (d *Faulty) spikeExtra() int64 {
	period := d.spikePeriodNs.Load()
	if period <= 0 {
		return 0
	}
	phase := (time.Now().UnixNano() - d.spikeEpochNs.Load()) % period
	if phase < 0 || phase >= d.spikeLenNs.Load() {
		return 0
	}
	return d.spikeNs.Load()
}

// SetHook installs a per-call fault hook consulted before every
// operation (nil removes it). A non-nil return is injected as that
// operation's error.
func (d *Faulty) SetHook(h Hook) { d.hook.Store(h) }

// BreakPermanently makes every subsequent operation fail.
func (d *Faulty) BreakPermanently() { d.permanentBroken.Store(true) }

// Broken reports whether the device is permanently broken (explicitly or
// via a crash point).
func (d *Faulty) Broken() bool { return d.permanentBroken.Load() }

// InjectedFaults returns (readFaults, writeFaults) counts. Sync and
// truncate injections count as write faults.
func (d *Faulty) InjectedFaults() (int64, int64) {
	w := d.injectedWrites.Load() + d.injectedSyncs.Load() + d.injectedTruncates.Load()
	return d.injectedReads.Load(), w
}

// TornWriteCount returns how many injected faults delivered a torn
// prefix to the media.
func (d *Faulty) TornWriteCount() int64 { return d.tornWritesCount.Load() }

// Metrics implements MetricsSource: the inner device's metrics (when it
// exposes any) annotated with this wrapper's injected-fault counters.
func (d *Faulty) Metrics() Metrics {
	var m Metrics
	if src, ok := d.inner.(MetricsSource); ok {
		m = src.Metrics()
	}
	r, w := d.InjectedFaults()
	m.InjectedReadFaults = uint64(r)
	m.InjectedWriteFaults = uint64(w)
	return m
}

// ClassifyError implements Classifier, forwarding to the inner device's
// taxonomy when it has one. Injected sentinels are already shaped for the
// default taxonomy (permanent flavors wrap ErrPermanent).
func (d *Faulty) ClassifyError(err error) retry.Class {
	if c, ok := d.inner.(Classifier); ok {
		return c.ClassifyError(err)
	}
	return Classify(err)
}

func clamp01(p float64) float64 {
	if p < 0 || math.IsNaN(p) {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// nextRand advances the seeded xorshift64* state.
func (d *Faulty) nextRand() uint64 {
	for {
		old := d.rngState.Load()
		x := old
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		if d.rngState.CompareAndSwap(old, x) {
			return x * 0x2545F4914F6CDD1D
		}
	}
}

// roll returns true with the probability stored in bits.
func (d *Faulty) roll(bits *atomic.Uint64) bool {
	p := math.Float64frombits(bits.Load())
	if p <= 0 {
		return false
	}
	return float64(d.nextRand()>>11)/float64(1<<53) < p
}

// hookErr consults the per-call hook.
func (d *Faulty) hookErr(op Op, offset uint64, length int) error {
	if h, _ := d.hook.Load().(Hook); h != nil {
		return h(op, offset, length)
	}
	return nil
}

// ReadAsync implements Device.
func (d *Faulty) ReadAsync(buf []byte, offset uint64, cb Callback) {
	n := d.reads.Add(1)
	if err := d.hookErr(OpRead, offset, len(buf)); err != nil {
		d.injectedReads.Add(1)
		cb(err)
		return
	}
	if d.permanentBroken.Load() {
		d.injectedReads.Add(1)
		cb(d.permanentErr())
		return
	}
	if nth := d.failEveryNthRead.Load(); (nth > 0 && n%nth == 0) || d.roll(&d.readProbBits) {
		d.injectedReads.Add(1)
		cb(ErrInjected)
		return
	}
	d.forward(d.readLatencyNs.Load()+d.spikeExtra(), func() { d.inner.ReadAsync(buf, offset, cb) })
}

// WriteAsync implements Device.
func (d *Faulty) WriteAsync(buf []byte, offset uint64, cb Callback) {
	n := d.writes.Add(1)
	if err := d.hookErr(OpWrite, offset, len(buf)); err != nil {
		d.injectedWrites.Add(1)
		d.failWrite(buf, offset, err, cb)
		return
	}
	if d.permanentBroken.Load() {
		d.injectedWrites.Add(1)
		cb(d.permanentErr())
		return
	}
	if d.crashArmed.Load() {
		remaining := d.crashBudget.Add(-int64(len(buf)))
		if remaining < 0 {
			// This write crosses the crash boundary: deliver exactly the
			// bytes that fit, then the device is dead.
			d.permanentBroken.Store(true)
			d.injectedWrites.Add(1)
			keep := int64(len(buf)) + remaining
			if keep > 0 {
				d.tornWritesCount.Add(1)
				d.inner.WriteAsync(buf[:keep], offset, func(error) { cb(ErrCrashPoint) })
			} else {
				cb(ErrCrashPoint)
			}
			return
		}
	}
	if nth := d.failEveryNthWrite.Load(); (nth > 0 && n%nth == 0) || d.roll(&d.writeProbBits) {
		d.injectedWrites.Add(1)
		d.failWrite(buf, offset, ErrInjected, cb)
		return
	}
	d.forward(d.writeLatencyNs.Load()+d.spikeExtra(), func() { d.inner.WriteAsync(buf, offset, cb) })
}

// failWrite delivers an injected write failure, optionally leaving a torn
// prefix on the media first.
func (d *Faulty) failWrite(buf []byte, offset uint64, err error, cb Callback) {
	if d.tornWrites.Load() && len(buf) > 1 {
		keep := 1 + int(d.nextRand()%uint64(len(buf)-1)) // [1, len-1]
		d.tornWritesCount.Add(1)
		torn := ErrTornWrite
		if Classify(err) == retry.Permanent {
			torn = err // keep the permanent class; the prefix still lands
		}
		d.inner.WriteAsync(buf[:keep], offset, func(error) { cb(torn) })
		return
	}
	cb(err)
}

// forward runs op after an optional injected latency without blocking the
// caller.
func (d *Faulty) forward(latencyNs int64, op func()) {
	if latencyNs <= 0 {
		op()
		return
	}
	time.AfterFunc(time.Duration(latencyNs), op)
}

// permanentErr distinguishes an explicit break from a crash point.
func (d *Faulty) permanentErr() error {
	if d.crashArmed.Load() && d.crashBudget.Load() < 0 {
		return ErrCrashPoint
	}
	return ErrInjectedPermanent
}

// Sync implements Device. Unlike the pre-hardening version it honors
// permanent breakage and per-call hooks: a dead device must not report a
// successful barrier.
func (d *Faulty) Sync() error {
	if err := d.hookErr(OpSync, 0, 0); err != nil {
		d.injectedSyncs.Add(1)
		return err
	}
	if d.permanentBroken.Load() {
		d.injectedSyncs.Add(1)
		return d.permanentErr()
	}
	return d.inner.Sync()
}

// Truncate implements Device, honoring permanent breakage and hooks.
func (d *Faulty) Truncate(until uint64) error {
	if err := d.hookErr(OpTruncate, until, 0); err != nil {
		d.injectedTruncates.Add(1)
		return err
	}
	if d.permanentBroken.Load() {
		d.injectedTruncates.Add(1)
		return d.permanentErr()
	}
	return d.inner.Truncate(until)
}

// Close implements Device.
func (d *Faulty) Close() error { return d.inner.Close() }
