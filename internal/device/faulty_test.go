package device

import (
	"errors"
	"testing"
	"time"

	"repro/internal/retry"
)

func newFaultyMem() (*Faulty, *Mem) {
	mem := NewMem(MemConfig{})
	return NewFaulty(mem), mem
}

func TestFaultyClassification(t *testing.T) {
	cases := []struct {
		err  error
		want retry.Class
	}{
		{ErrInjected, retry.Transient},
		{ErrTornWrite, retry.Transient},
		{ErrInjectedPermanent, retry.Permanent},
		{ErrCrashPoint, retry.Permanent},
		{ErrClosed, retry.Permanent},
		{ErrOutOfRange, retry.Permanent},
		{errors.New("mystery"), retry.Transient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// All injected errors remain detectable as injected.
	for _, err := range []error{ErrInjected, ErrTornWrite, ErrInjectedPermanent, ErrCrashPoint} {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("%v does not wrap ErrInjected", err)
		}
	}
}

func TestFaultyBreakPermanentlyCoversAllOps(t *testing.T) {
	d, mem := newFaultyMem()
	defer mem.Close()
	writeSync(t, d, make([]byte, 64), 0)

	d.BreakPermanently()
	if err := readSync(d, make([]byte, 8), 0); Classify(err) != retry.Permanent {
		t.Fatalf("read after break: %v, want permanent", err)
	}
	done := make(chan error, 1)
	d.WriteAsync(make([]byte, 8), 64, func(err error) { done <- err })
	if err := <-done; Classify(err) != retry.Permanent {
		t.Fatalf("write after break: %v, want permanent", err)
	}
	// Pre-hardening blind spots: Sync and Truncate ignored permanentBroken.
	if err := d.Sync(); err == nil || Classify(err) != retry.Permanent {
		t.Fatalf("Sync after break = %v, want permanent error", err)
	}
	if err := d.Truncate(32); err == nil || Classify(err) != retry.Permanent {
		t.Fatalf("Truncate after break = %v, want permanent error", err)
	}
}

func TestFaultySeededProbabilisticFaultsAreReproducible(t *testing.T) {
	run := func(seed uint64) []bool {
		d, mem := newFaultyMem()
		defer mem.Close()
		d.SeedFaults(seed, 0, 0.5)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			done := make(chan error, 1)
			d.WriteAsync(make([]byte, 8), uint64(i*8), func(err error) { done <- err })
			outcomes = append(outcomes, <-done == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	fails := 0
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails < 50 || fails > 150 {
		t.Fatalf("p=0.5 injected %d/200 faults; probability wiring broken", fails)
	}
}

func TestFaultyTornWriteLeavesPrefix(t *testing.T) {
	d, mem := newFaultyMem()
	defer mem.Close()
	d.TornWrites(true)
	d.FailEveryNthWrite(1) // every write fails, torn

	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = 0xAB
	}
	done := make(chan error, 1)
	d.WriteAsync(buf, 0, func(err error) { done <- err })
	if err := <-done; !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write error = %v", err)
	}
	if Classify(ErrTornWrite) != retry.Transient {
		t.Fatal("torn writes must classify transient (retry rewrites the extent)")
	}
	if d.TornWriteCount() == 0 {
		t.Fatal("torn write not counted")
	}
	if got := mem.StoredBytes(); got == 0 || got >= 256 {
		t.Fatalf("torn prefix stored %d bytes, want in (0, 256)", got)
	}
}

func TestFaultyCrashAfterBytes(t *testing.T) {
	d, mem := newFaultyMem()
	defer mem.Close()
	d.CrashAfterBytes(100)

	write := func(n int, off uint64) error {
		done := make(chan error, 1)
		d.WriteAsync(make([]byte, n), off, func(err error) { done <- err })
		return <-done
	}
	if err := write(64, 0); err != nil {
		t.Fatalf("write within budget failed: %v", err)
	}
	// This write crosses byte 100: torn at the boundary, then dead.
	if err := write(64, 64); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("boundary write = %v, want ErrCrashPoint", err)
	}
	if got := mem.StoredBytes(); got != 100 {
		t.Fatalf("media holds %d bytes after crash, want exactly 100 (torn at boundary)", got)
	}
	if !d.Broken() {
		t.Fatal("device not broken after crash point")
	}
	if err := write(8, 200); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("post-crash write = %v, want ErrCrashPoint", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashPoint) {
		t.Fatalf("post-crash Sync = %v, want ErrCrashPoint", err)
	}
}

func TestFaultyPerCallHook(t *testing.T) {
	d, mem := newFaultyMem()
	defer mem.Close()
	hookErr := errors.New("hook says no")
	var sawSync, sawTruncate bool
	d.SetHook(func(op Op, offset uint64, length int) error {
		switch op {
		case OpWrite:
			if offset == 64 {
				return hookErr
			}
		case OpSync:
			sawSync = true
		case OpTruncate:
			sawTruncate = true
			if offset != 32 {
				t.Errorf("truncate hook offset = %d, want 32", offset)
			}
		}
		return nil
	})
	done := make(chan error, 2)
	d.WriteAsync(make([]byte, 8), 0, func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("unhooked write failed: %v", err)
	}
	d.WriteAsync(make([]byte, 8), 64, func(err error) { done <- err })
	if err := <-done; !errors.Is(err, hookErr) {
		t.Fatalf("hooked write = %v, want hook error", err)
	}
	if err := d.Sync(); err != nil || !sawSync {
		t.Fatalf("Sync: err=%v sawSync=%v", err, sawSync)
	}
	if err := d.Truncate(32); err != nil || !sawTruncate {
		t.Fatalf("Truncate: err=%v sawTruncate=%v", err, sawTruncate)
	}
	_, w := d.InjectedFaults()
	if w != 1 {
		t.Fatalf("injected write faults = %d, want 1 (the hooked write)", w)
	}
}

func TestFaultyLatencyInjectionIsAsync(t *testing.T) {
	d, mem := newFaultyMem()
	defer mem.Close()
	d.InjectLatency(0, 20*time.Millisecond)

	start := time.Now()
	done := make(chan error, 1)
	d.WriteAsync(make([]byte, 8), 0, func(err error) { done <- err })
	if since := time.Since(start); since > 10*time.Millisecond {
		t.Fatalf("WriteAsync blocked caller for %v; latency must be async", since)
	}
	if err := <-done; err != nil {
		t.Fatalf("delayed write failed: %v", err)
	}
	if since := time.Since(start); since < 15*time.Millisecond {
		t.Fatalf("write completed after %v; latency not injected", since)
	}
}
