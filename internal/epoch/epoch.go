// Package epoch implements the extended epoch-protection framework from
// Section 2.3 of the FASTER paper (SIGMOD 2018).
//
// The framework maintains a shared atomic counter E (the current epoch) and a
// table of thread-local epoch values, one cache line per slot. An epoch c is
// safe once every registered thread has advanced strictly past c. On top of
// the basic protection scheme the framework supports trigger actions: a
// thread can bump the current epoch from c to c+1 and attach a callback that
// the system runs exactly once, at some point after epoch c has become safe.
//
// Threads (in Go: goroutines that own a session) interact with the framework
// through four operations, mirroring Section 2.4 of the paper:
//
//	Acquire   reserve a slot and join the current epoch
//	Refresh   publish the current epoch and run any ready trigger actions
//	BumpWith  increment the current epoch, attaching a trigger action
//	Release   leave the epoch table
//
// The manager is generic: it knows nothing about logs, indexes or stores.
// FASTER uses it for page flushing, page eviction, safe-read-only offset
// advancement, index resizing and checkpointing.
package epoch

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

const (
	// Unprotected is the epoch value published by a slot that is not
	// currently protecting any epoch.
	Unprotected uint64 = 0

	// drainListSize is the capacity of the (epoch, action) drain list. The
	// paper implements the drain list as a small array scanned on refresh;
	// it only needs to hold actions whose epochs are not yet safe.
	drainListSize = 256

	// cacheLineBytes is the assumed cache line size; each epoch-table slot
	// is padded to this size so threads never false-share their entries.
	cacheLineBytes = 64
)

// entry is a single epoch-table slot, padded to a cache line.
type entry struct {
	localEpoch atomic.Uint64 // thread-local epoch, or Unprotected
	reentrant  atomic.Uint64 // nested Acquire count for this slot
	_          [cacheLineBytes - 16]byte
}

// drainItem is one pending trigger action. epoch holds the epoch that must
// become safe before action runs; a zero epoch marks a free slot.
type drainItem struct {
	epoch      atomic.Uint64
	action     func()
	enqueuedNs int64 // wall time of enqueue, for bump-to-safe latency
}

// Action is a trigger callback executed exactly once after its epoch is safe.
type Action = func()

// Manager is the shared epoch state: the current epoch counter, the table of
// per-thread epochs and the drain list of pending trigger actions.
//
// A Manager must be created with New. All methods are safe for concurrent
// use. Guard methods take a *Guard obtained from Acquire.
type Manager struct {
	// current is read by every Refresh but written only on bumps; the
	// padding keeps the write-hot words below (safe, drainCnt) off its
	// cache line, so routine refreshes across sessions never invalidate
	// each other's cached copy.
	current atomic.Uint64 // the current epoch E
	_       [cacheLineBytes - 8]byte

	safe     atomic.Uint64 // cached maximal safe epoch Es
	drainCnt atomic.Int64  // number of occupied drain-list slots
	_        [cacheLineBytes - 16]byte

	table     []entry
	drainList [drainListSize]drainItem

	mx struct {
		bumps      metrics.Counter
		actionsRun metrics.Counter
		bumpToSafe metrics.Histogram // enqueue -> action-run latency
	}
}

// New creates a Manager with capacity for maxSlots concurrently registered
// threads. maxSlots must be at least 1; typical values are a small multiple
// of GOMAXPROCS.
func New(maxSlots int) *Manager {
	if maxSlots < 1 {
		panic("epoch: maxSlots must be >= 1")
	}
	m := &Manager{table: make([]entry, maxSlots)}
	m.current.Store(1) // epoch 0 is reserved: it is trivially safe
	return m
}

// NewDefault creates a Manager sized for 2*GOMAXPROCS+8 slots.
func NewDefault() *Manager {
	return New(2*runtime.GOMAXPROCS(0) + 8)
}

// Guard represents one registered thread's membership in the epoch table.
// It is not safe for concurrent use; exactly one goroutine drives a Guard.
type Guard struct {
	m    *Manager
	slot int
}

// Current returns the current epoch E.
func (m *Manager) Current() uint64 { return m.current.Load() }

// Safe returns the most recently computed maximal safe epoch Es. It is a
// conservative (monotone) lower bound of the true safe epoch.
func (m *Manager) Safe() uint64 { return m.safe.Load() }

// Acquire reserves an epoch-table slot for the calling goroutine and
// publishes the current epoch into it. It returns a Guard used for all
// subsequent operations. Acquire panics if every slot is taken.
func (m *Manager) Acquire() *Guard {
	for i := range m.table {
		e := &m.table[i]
		if e.localEpoch.Load() == Unprotected &&
			e.localEpoch.CompareAndSwap(Unprotected, m.current.Load()) {
			e.reentrant.Store(1)
			return &Guard{m: m, slot: i}
		}
	}
	panic(fmt.Sprintf("epoch: all %d slots in use", len(m.table)))
}

// Release removes the guard's entry from the epoch table. The guard must not
// be used afterwards. Releasing lets the epochs the thread was pinning
// become safe, so Release also attempts a drain.
func (g *Guard) Release() {
	e := &g.m.table[g.slot]
	if e.reentrant.Add(^uint64(0)) != 0 { // decrement; still nested
		return
	}
	e.localEpoch.Store(Unprotected)
	if g.m.drainCnt.Load() > 0 {
		g.m.computeSafeAndDrain(g.m.current.Load())
	}
	g.m = nil
}

// Refresh publishes the current epoch into the guard's slot, recomputes the
// maximal safe epoch, and runs any drain-list actions that became safe.
// FASTER threads call Refresh periodically (e.g. every 256 operations).
func (g *Guard) Refresh() {
	cur := g.m.current.Load()
	g.m.table[g.slot].localEpoch.Store(cur)
	if g.m.drainCnt.Load() > 0 {
		g.m.computeSafeAndDrain(cur)
	}
}

// parkedEpoch is the sentinel a parked guard publishes: distinct from
// Unprotected (so Acquire cannot steal the slot) and high enough that
// computeSafeAndDrain never treats it as pinning an epoch.
const parkedEpoch = math.MaxUint64

// Park keeps the guard's slot reserved but stops pinning any epoch, and
// then attempts a drain so actions this thread was blocking can run.
// A parked thread holds no protection whatsoever: it must not touch any
// epoch-protected memory until it calls Unpark. Park is what lets a
// session pool hold idle sessions without stalling flushes, evictions
// and safe-read-only advancement for everyone else.
func (g *Guard) Park() {
	g.m.table[g.slot].localEpoch.Store(parkedEpoch)
	if g.m.drainCnt.Load() > 0 {
		g.m.computeSafeAndDrain(g.m.current.Load())
	}
}

// Unpark rejoins the current epoch after a Park.
func (g *Guard) Unpark() { g.Refresh() }

// Epoch returns the epoch currently published by this guard.
func (g *Guard) Epoch() uint64 { return g.m.table[g.slot].localEpoch.Load() }

// Bump atomically increments the current epoch and returns the previous
// value c. All threads that refresh after the bump observe at least c+1.
func (m *Manager) Bump() uint64 {
	m.mx.bumps.Inc()
	return m.current.Add(1) - 1
}

// BumpWith increments the current epoch from c to c+1 and registers action
// to run once epoch c is safe, i.e. once every registered thread has
// refreshed past c. The action runs exactly once, on whichever thread next
// drains the list after safety; it may run inline if c is already safe.
func (m *Manager) BumpWith(action Action) {
	prior := m.Bump()
	m.enqueue(prior, action)
	// Opportunistically drain: if no other thread is registered, or all
	// have refreshed, the action can run immediately.
	m.computeSafeAndDrain(m.current.Load())
}

// enqueue adds (epoch, action) to the drain list, spinning for a free slot.
// The list is sized generously; in a correctly running system actions drain
// promptly, so exhaustion indicates threads failing to refresh.
func (m *Manager) enqueue(epoch uint64, action Action) {
	for spins := 0; ; spins++ {
		for i := range m.drainList {
			it := &m.drainList[i]
			if it.epoch.Load() == 0 {
				// Claim the slot with CAS; install action before
				// publishing the epoch so a concurrent drainer never
				// sees a claimed slot without its action.
				if it.epoch.CompareAndSwap(0, math.MaxUint64) {
					it.action = action
					it.enqueuedNs = time.Now().UnixNano()
					it.epoch.Store(epoch)
					m.drainCnt.Add(1)
					return
				}
			}
		}
		// Drain list full: help drain, then retry.
		m.computeSafeAndDrain(m.current.Load())
		if spins > 1<<20 {
			panic("epoch: drain list persistently full (threads not refreshing?)")
		}
		runtime.Gosched()
	}
}

// computeSafeAndDrain recomputes the maximal safe epoch by scanning the
// epoch table and then triggers every drain-list action whose epoch is safe.
// Each action is claimed with a CAS so it runs exactly once.
func (m *Manager) computeSafeAndDrain(currentEpoch uint64) {
	safe := currentEpoch - 1
	for i := range m.table {
		le := m.table[i].localEpoch.Load()
		if le != Unprotected && le-1 < safe {
			safe = le - 1
		}
	}
	// Monotonically raise the cached safe epoch.
	for {
		old := m.safe.Load()
		if safe <= old || m.safe.CompareAndSwap(old, safe) {
			break
		}
	}
	if m.drainCnt.Load() == 0 {
		return
	}
	for i := range m.drainList {
		it := &m.drainList[i]
		ep := it.epoch.Load()
		if ep == 0 || ep == math.MaxUint64 || ep > safe {
			continue
		}
		// Claim: mark in-flight so no other thread runs it.
		if !it.epoch.CompareAndSwap(ep, math.MaxUint64) {
			continue
		}
		action := it.action
		enqueuedNs := it.enqueuedNs
		it.action = nil
		it.epoch.Store(0) // free the slot
		m.drainCnt.Add(-1)
		m.mx.actionsRun.Inc()
		m.mx.bumpToSafe.ObserveNs(uint64(max64(0, time.Now().UnixNano()-enqueuedNs)))
		action()
	}
}

// Drain runs all pending trigger actions whose epochs are safe, first
// recomputing safety. Useful at shutdown and in tests.
func (m *Manager) Drain() {
	m.computeSafeAndDrain(m.current.Load())
}

// PendingActions reports the number of trigger actions not yet executed.
func (m *Manager) PendingActions() int { return int(m.drainCnt.Load()) }

// Registered reports how many slots are currently occupied.
func (m *Manager) Registered() int {
	n := 0
	for i := range m.table {
		if m.table[i].localEpoch.Load() != Unprotected {
			n++
		}
	}
	return n
}

// Slots returns the capacity of the epoch table.
func (m *Manager) Slots() int { return len(m.table) }

// LocalEpochs snapshots every occupied slot's published epoch (parked
// slots report math.MaxUint64). Diagnostic use only.
func (m *Manager) LocalEpochs() []uint64 {
	var out []uint64
	for i := range m.table {
		if le := m.table[i].localEpoch.Load(); le != Unprotected {
			out = append(out, le)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Metrics is a snapshot of the epoch framework's instrumentation: the
// epoch counters, the drain-list depth, and the latency from a BumpWith
// enqueue to its trigger action running (the bump-to-safe latency of
// §2.4, which bounds how quickly flushes and evictions take effect).
type Metrics struct {
	CurrentEpoch   uint64
	SafeEpoch      uint64
	DrainListDepth int64
	Registered     int
	Bumps          uint64
	ActionsRun     uint64
	BumpToSafe     metrics.HistogramSnapshot
}

// Metrics returns a snapshot of the manager's instrumentation.
func (m *Manager) Metrics() Metrics {
	return Metrics{
		CurrentEpoch:   m.current.Load(),
		SafeEpoch:      m.safe.Load(),
		DrainListDepth: m.drainCnt.Load(),
		Registered:     m.Registered(),
		Bumps:          m.mx.bumps.Load(),
		ActionsRun:     m.mx.actionsRun.Load(),
		BumpToSafe:     m.mx.bumpToSafe.Snapshot(),
	}
}
