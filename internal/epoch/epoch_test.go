package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/testutil"
)

func TestAcquireReleaseBasics(t *testing.T) {
	m := New(4)
	if got := m.Registered(); got != 0 {
		t.Fatalf("Registered() = %d, want 0", got)
	}
	g := m.Acquire()
	if got := m.Registered(); got != 1 {
		t.Fatalf("Registered() = %d, want 1", got)
	}
	if g.Epoch() != m.Current() {
		t.Fatalf("guard epoch %d != current %d", g.Epoch(), m.Current())
	}
	g.Release()
	if got := m.Registered(); got != 0 {
		t.Fatalf("Registered() after release = %d, want 0", got)
	}
}

func TestAcquireExhaustionPanics(t *testing.T) {
	m := New(1)
	_ = m.Acquire()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when all slots are in use")
		}
	}()
	m.Acquire()
}

func TestBumpIncrementsCurrent(t *testing.T) {
	m := New(2)
	before := m.Current()
	prior := m.Bump()
	if prior != before {
		t.Fatalf("Bump() = %d, want prior epoch %d", prior, before)
	}
	if m.Current() != before+1 {
		t.Fatalf("Current() = %d, want %d", m.Current(), before+1)
	}
}

func TestTriggerActionRunsWhenNoThreadsRegistered(t *testing.T) {
	m := New(2)
	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("action should run immediately with no registered threads")
	}
	if m.PendingActions() != 0 {
		t.Fatalf("PendingActions() = %d, want 0", m.PendingActions())
	}
}

func TestTriggerActionWaitsForLaggingThread(t *testing.T) {
	m := New(4)
	lagging := m.Acquire()
	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	if ran.Load() {
		t.Fatal("action ran while a thread was still in the prior epoch")
	}

	// Another thread refreshing does not make the old epoch safe.
	other := m.Acquire()
	other.Refresh()
	if ran.Load() {
		t.Fatal("action ran before lagging thread refreshed")
	}

	lagging.Refresh()
	if !ran.Load() {
		t.Fatal("action did not run after all threads refreshed")
	}
	other.Release()
	lagging.Release()
}

func TestTriggerActionRunsOnRelease(t *testing.T) {
	m := New(4)
	g := m.Acquire()
	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	if ran.Load() {
		t.Fatal("action ran too early")
	}
	g.Release() // releasing the only thread must let the action drain
	if !ran.Load() {
		t.Fatal("action did not run after sole thread released")
	}
}

func TestParkStopsPinning(t *testing.T) {
	m := New(4)
	idle := m.Acquire()
	active := m.Acquire()

	// An idle (but registered) thread blocks trigger actions...
	var ran atomic.Bool
	m.BumpWith(func() { ran.Store(true) })
	active.Refresh()
	if ran.Load() {
		t.Fatal("action ran while the idle thread pinned its epoch")
	}

	// ...until it parks: parked threads pin nothing.
	idle.Park()
	active.Refresh()
	if !ran.Load() {
		t.Fatal("action did not run after the idle thread parked")
	}

	// A parked slot is still reserved: new acquires must not steal it.
	others := make([]*Guard, 0, 2)
	for i := 0; i < 2; i++ {
		others = append(others, m.Acquire())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("acquire beyond capacity did not panic: parked slot was stolen")
			}
		}()
		m.Acquire()
	}()
	for _, g := range others {
		g.Release()
	}

	// Unpark rejoins the current epoch and pins again.
	idle.Unpark()
	var ran2 atomic.Bool
	m.BumpWith(func() { ran2.Store(true) })
	active.Refresh()
	if ran2.Load() {
		t.Fatal("action ran while the unparked thread lagged")
	}
	idle.Refresh()
	if !ran2.Load() {
		t.Fatal("action did not run after the unparked thread refreshed")
	}

	idle.Release()
	active.Release()
}

func TestActionsRunExactlyOnce(t *testing.T) {
	m := New(8)
	var count atomic.Int64
	g := m.Acquire()
	for i := 0; i < 100; i++ {
		m.BumpWith(func() { count.Add(1) })
	}
	g.Refresh()
	m.Drain()
	if got := count.Load(); got != 100 {
		t.Fatalf("actions ran %d times, want 100", got)
	}
	g.Release()
}

func TestActionsOrderedBySafety(t *testing.T) {
	// An action bumped at epoch c must never run before an earlier thread
	// has seen epoch > c. Model the canonical status/active-now example.
	m := New(4)
	observer := m.Acquire()

	var status atomic.Int32
	var observedAtTrigger int32 = -1
	status.Store(1) // becomes "active"
	m.BumpWith(func() { observedAtTrigger = status.Load() })

	// The observer has not refreshed; trigger must not have fired.
	if observedAtTrigger != -1 {
		t.Fatal("trigger fired before observer refreshed")
	}
	observer.Refresh()
	if observedAtTrigger != 1 {
		t.Fatalf("trigger saw status %d, want 1", observedAtTrigger)
	}
	observer.Release()
}

func TestSafeEpochInvariant(t *testing.T) {
	// Invariant from §2.3: for all registered T, Es <= E_T <= E.
	m := New(8)
	guards := make([]*Guard, 5)
	for i := range guards {
		guards[i] = m.Acquire()
		m.Bump()
	}
	m.Drain()
	e := m.Current()
	es := m.Safe()
	for i, g := range guards {
		et := g.Epoch()
		if !(es <= et && et <= e) {
			t.Fatalf("guard %d: invariant Es(%d) <= Et(%d) <= E(%d) violated", i, es, et, e)
		}
	}
	for _, g := range guards {
		g.Release()
	}
}

func TestConcurrentRefreshAndBump(t *testing.T) {
	m := New(64)
	const (
		workers = 16
		bumps   = 200
	)
	var executed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := m.Acquire()
			defer g.Release()
			for {
				select {
				case <-stop:
					return
				default:
					g.Refresh()
				}
			}
		}()
	}
	for i := 0; i < bumps; i++ {
		m.BumpWith(func() { executed.Add(1) })
	}
	// Give refreshers a bounded window to drain everything, then stop
	// them. Eventually (not WaitUntil): on timeout the refresher
	// goroutines must still be stopped before the final assertion fails
	// the test with the real counts.
	testutil.Eventually(5*time.Second, func() bool {
		m.Drain()
		return executed.Load() == bumps
	})
	close(stop)
	wg.Wait()
	m.Drain()
	if got := executed.Load(); got != bumps {
		t.Fatalf("executed %d actions, want %d", got, bumps)
	}
}

func TestConcurrentAcquireReleaseSlotsStable(t *testing.T) {
	m := New(32)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				g := m.Acquire()
				g.Refresh()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if got := m.Registered(); got != 0 {
		t.Fatalf("Registered() = %d after all released, want 0", got)
	}
}

func TestDrainListRecyclesSlots(t *testing.T) {
	m := New(2)
	// Far more actions than drainListSize; with no registered threads each
	// drains inline, so slots must recycle without panicking.
	var n atomic.Int64
	for i := 0; i < drainListSize*4; i++ {
		m.BumpWith(func() { n.Add(1) })
	}
	if got := n.Load(); got != drainListSize*4 {
		t.Fatalf("ran %d actions, want %d", got, drainListSize*4)
	}
}

// Property: after an arbitrary sequence of bumps, the safe epoch never
// exceeds current-1, and with no registered threads every action drains.
func TestQuickSafeNeverExceedsCurrent(t *testing.T) {
	f := func(nBumps uint8) bool {
		m := New(4)
		var ran atomic.Int64
		for i := 0; i < int(nBumps); i++ {
			m.BumpWith(func() { ran.Add(1) })
		}
		m.Drain()
		return m.Safe() <= m.Current()-1 && ran.Load() == int64(nBumps) &&
			m.PendingActions() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with one registered lagging thread, no action bumped after its
// acquisition runs until it refreshes, regardless of bump count.
func TestQuickLaggingThreadBlocksActions(t *testing.T) {
	f := func(nBumps uint8) bool {
		if nBumps == 0 {
			return true
		}
		n := int(nBumps)
		if n > drainListSize {
			n = drainListSize
		}
		m := New(4)
		g := m.Acquire()
		var ran atomic.Int64
		for i := 0; i < n; i++ {
			m.BumpWith(func() { ran.Add(1) })
		}
		blockedOK := ran.Load() == 0
		g.Refresh()
		m.Drain()
		g.Release()
		return blockedOK && ran.Load() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRefresh(b *testing.B) {
	m := NewDefault()
	g := m.Acquire()
	defer g.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Refresh()
	}
}

func BenchmarkBumpWith(b *testing.B) {
	m := NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BumpWith(func() {})
	}
}

func TestChaosAcquireReleaseBumpInvariants(t *testing.T) {
	// Mixed Acquire/Refresh/Release and BumpWith from many goroutines:
	// every action must run exactly once, and the safe epoch must never
	// exceed the current epoch.
	m := New(64)
	const workers = 8
	var executed atomic.Int64
	var issued atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				g := m.Acquire()
				if i%3 == 0 {
					issued.Add(1)
					m.BumpWith(func() { executed.Add(1) })
				}
				g.Refresh()
				if m.Safe() > m.Current() {
					t.Error("safe epoch exceeds current")
				}
				g.Release()
			}
		}(int64(w))
	}
	wg.Wait()
	m.Drain()
	if executed.Load() != issued.Load() {
		t.Fatalf("executed %d of %d actions", executed.Load(), issued.Load())
	}
}
