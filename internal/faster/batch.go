package faster

import (
	"errors"
	"sync/atomic"

	"repro/internal/hlog"
	"repro/internal/index"
)

// Batched execution amortizes the per-operation costs that dominate the
// in-memory hot path: the epoch check, the operation counters, the
// writability gate, and — for runs of upserts — the tail reservation.
// A batch carries no transactional semantics: its operations behave as
// if issued back-to-back on the session, so per-key program order is
// preserved but cross-key ordering is unspecified, exactly as for
// concurrent single operations.

// BatchKind selects the operation a BatchOp performs.
type BatchKind uint8

const (
	// BatchRead reads Key into Output (Value is the optional read input).
	BatchRead BatchKind = iota
	// BatchUpsert blindly writes Value under Key.
	BatchUpsert
	// BatchRMW applies the read-modify-write with Value as the input.
	BatchRMW
	// BatchDelete removes Key.
	BatchDelete
)

// BatchOp is one slot of an ExecBatch call. Kind, Key, Value, Output and
// Ctx are inputs; Status and Err are the per-operation outcome. A slot
// whose Status is Pending completes later through CompletePending, with
// Ctx attached to the Result just like a single pending operation.
type BatchOp struct {
	Kind   BatchKind
	Key    []byte
	Value  []byte // upsert value / RMW input / read input
	Output []byte // read destination
	Ctx    any

	Status Status
	Err    error
}

// ErrBatchShape is returned by the typed batch helpers when the
// parallel slices disagree in length.
var ErrBatchShape = errors.New("faster: batch slices have mismatched lengths")

var errBadBatchKind = errors.New("faster: invalid BatchKind")

// batchAppend is one planned record of a batched upsert run: probed in
// phase A, written and published from a shared tail reservation in
// phase B.
type batchAppend struct {
	idx       int          // slot in the run
	h         uint64       // key hash
	expect    hlog.Address // raw index entry observed at probe time (CAS expectation)
	chainHead hlog.Address // underlying hlog chain head (the record's prev)
	overwrite hlog.Address // record superseded by this append (RCU), or invalid
	size      uint32
	addr      hlog.Address // assigned when the reservation is carved
}

// batchSlot is the context the typed batch helpers attach to pending
// slots; a named type keeps it from colliding with caller contexts.
type batchSlot int

// ExecBatch executes ops back-to-back with batch-amortized bookkeeping:
// the keys are all hashed up front, the epoch check and operation
// counters are paid once, and consecutive upserts share a single tail
// reservation. Per-operation outcomes land in ops[i].Status/Err;
// Pending slots complete through CompletePending (ExecBatch does not
// drain them). The returned error covers only whole-batch failures.
func (sess *Session) ExecBatch(ops []BatchOp) error {
	if sess.closed {
		return ErrSessionClosed
	}
	if len(ops) == 0 {
		return nil
	}
	sess.batchStart(ops)
	s := sess.s

	// Grouped hash pass: compute every key's hash before any probe, so
	// the probes that follow walk the index without interleaved hashing
	// (the software-prefetch shape of the paper's batched clients).
	n := len(ops)
	if cap(sess.batchHash) < n {
		sess.batchHash = make([]uint64, n)
	}
	hs := sess.batchHash[:n]
	for i := range ops {
		op := &ops[i]
		op.Status, op.Err = OK, nil
		if len(op.Key) == 0 {
			op.Status, op.Err = Err, errKeyEmpty
			hs[i] = 0
			continue
		}
		hs[i] = hashKey(op.Key)
	}

	for i := 0; i < n; {
		op := &ops[i]
		if op.Err != nil {
			i++
			continue
		}
		switch op.Kind {
		case BatchUpsert:
			j := i + 1
			for j < n && ops[j].Kind == BatchUpsert && ops[j].Err == nil {
				j++
			}
			sess.execUpsertRun(ops[i:j], hs[i:j])
			i = j
		case BatchRead:
			j := i + 1
			for j < n && ops[j].Kind == BatchRead && ops[j].Err == nil {
				j++
			}
			if j-i == 1 {
				op.Status, op.Err = sess.readInternal(op.Key, op.Value, op.Output, op.Ctx, hs[i])
			} else {
				sess.execReadRun(ops[i:j], hs[i:j])
			}
			i = j
		case BatchRMW:
			op.Status, op.Err = sess.rmwInternal(op.Key, op.Value, op.Ctx, hs[i])
			i++
		case BatchDelete:
			if err := s.checkWritable(); err != nil {
				op.Status, op.Err = Err, err
			} else {
				op.Status, op.Err = sess.deleteInternal(op.Key, hs[i])
			}
			i++
		default:
			op.Status, op.Err = Err, errBadBatchKind
			i++
		}
	}
	return nil
}

// batchStart is opStart for a whole batch: one refresh check and one
// atomic add per counter, however large the batch.
func (sess *Session) batchStart(ops []BatchOp) {
	n := len(ops)
	sess.totalOps += uint64(n)
	sess.stat.operations.Add(uint64(n))
	var reads, upserts, rmws, deletes uint64
	for i := range ops {
		switch ops[i].Kind {
		case BatchRead:
			reads++
		case BatchUpsert:
			upserts++
		case BatchRMW:
			rmws++
		case BatchDelete:
			deletes++
		}
	}
	if reads > 0 {
		sess.stat.reads.Add(reads)
	}
	if upserts > 0 {
		sess.stat.upserts.Add(upserts)
	}
	if rmws > 0 {
		sess.stat.rmws.Add(rmws)
	}
	if deletes > 0 {
		sess.stat.deletes.Add(deletes)
	}
	sess.opsSince += n
	if sess.opsSince >= sess.s.cfg.RefreshInterval {
		sess.opsSince = 0
		sess.g.Refresh()
	}
}

// execReadRun executes a run of consecutive reads in three passes. The
// probe pass walks the index for every key back-to-back: the probes are
// data-independent loads, so on a working set larger than cache their
// misses overlap in the memory system instead of serializing behind one
// another (the software-prefetch shape of the paper's batched clients).
// The touch pass pulls each chain head's record line the same way, and
// the final pass completes every read against now-warm lines.
func (sess *Session) execReadRun(run []BatchOp, hs []uint64) {
	s := sess.s
	n := len(run)
	if cap(sess.batchEntry) < n {
		sess.batchEntry = make([]index.Entry, n)
		sess.batchAddr = make([]hlog.Address, n)
	}
	ents := sess.batchEntry[:n]
	addrs := sess.batchAddr[:n]
	s.idx.Prefetch(hs)
	for k := range run {
		e, a, ok := s.idx.FindEntry(hs[k])
		if !ok {
			run[k].Status = NotFound // gates the later passes
			continue
		}
		ents[k], addrs[k] = e, a
	}
	head := s.log.HeadAddress()
	for k := range run {
		if run[k].Status != OK {
			continue
		}
		// Touch the chain head's record line (resident iff >= head; the
		// epoch held since the probe keeps it mapped). Cache-tagged
		// addresses live outside the hlog; readAt dereferences them itself.
		if a := addrs[k]; a >= head && !isCacheAddr(a) {
			_ = atomic.LoadUint64(s.headerPtr(a))
		}
	}
	for k := range run {
		op := &run[k]
		if op.Status != OK {
			continue
		}
		op.Status, op.Err = sess.readAt(op.Key, op.Value, op.Output, op.Ctx, ents[k], addrs[k])
	}
}

// execUpsertRun executes a run of consecutive upserts. Phase A probes
// every key (in-place where possible) and plans the appends; phase B
// publishes the planned records from shared tail reservations. An op
// whose key hash matches an already-planned append is deferred to after
// phase B so per-key program order survives the reordering.
func (sess *Session) execUpsertRun(run []BatchOp, hs []uint64) {
	s := sess.s
	if err := s.checkWritable(); err != nil {
		for k := range run {
			run[k].Status, run[k].Err = Err, err
		}
		return
	}
	if len(run) == 1 {
		run[0].Status, run[0].Err = sess.upsertInternal(run[0].Key, run[0].Value, hs[0])
		return
	}

	plan := sess.batchPlan[:0]
	deferred := sess.batchDefer[:0]

	// Grouped warm-up, as in execReadRun: touch every bucket line, then
	// every chain head's record line, with dependency-free loads whose
	// misses overlap. The dependent per-key probes below then run
	// against warm lines.
	n := len(run)
	if cap(sess.batchAddr) < n {
		sess.batchEntry = make([]index.Entry, n)
		sess.batchAddr = make([]hlog.Address, n)
	}
	warm := sess.batchAddr[:n]
	ents := sess.batchEntry[:n]
	s.idx.Prefetch(hs)
	for k := range run {
		e, a, ok := s.idx.FindEntry(hs[k])
		if !ok {
			a = hlog.InvalidAddress
		}
		ents[k], warm[k] = e, a
	}
	head := s.log.HeadAddress()
	for _, a := range warm {
		if a >= head && a != hlog.InvalidAddress && !isCacheAddr(a) {
			_ = atomic.LoadUint64(s.headerPtr(a))
		}
	}

probe:
	for k := range run {
		op := &run[k]
		h := hs[k]
		// Same hash as a planned append (same key implies same hash):
		// that append must publish first, so defer this op past phase B.
		for p := range plan {
			if plan[p].h == h {
				deferred = append(deferred, k)
				continue probe
			}
		}
		for first := true; ; first = false {
			var entry index.Entry
			var raw hlog.Address
			if first && warm[k] != hlog.InvalidAddress {
				// Reuse the warm-up probe: exactly as current as a probe
				// taken here would be (a racing RCU seals the record
				// first, and a stale chain head loses its publish CAS).
				entry, raw = ents[k], warm[k]
			} else {
				entry, raw = s.idx.FindOrCreateEntry(h)
			}
			// The entry may point at a read-cache copy: the CAS expects the
			// raw address, the appended record's prev is the underlying
			// hlog chain head (publishing then invalidates the cached copy
			// RCU-style, same as the single-op path).
			chainHead, _, cached, stale := s.splitProbe(raw)
			if stale {
				continue
			}
			if !cached && chainHead != 0 && chainHead < s.log.BeginAddress() {
				entry.CompareAndDelete(raw)
				continue
			}
			ro := s.log.ReadOnlyAddress()
			laddr, rec, found := s.traceBack(op.Key, chainHead, maxAddr(ro, s.log.HeadAddress()))
			if found && !rec.tombstone() && !rec.delta() && !rec.sealed() && !cached {
				if s.ops.ConcurrentWriter(op.Key, rec.value, op.Value) {
					sess.stat.inPlace.Add(1)
					op.Status = OK
					break
				}
				// Value must grow: seal against racing in-place writers
				// and fall through to the planned append (RCU).
				s.seal(laddr)
			}
			over := hlog.InvalidAddress
			if found {
				over = laddr
			}
			plan = append(plan, batchAppend{
				idx: k, h: h, expect: raw, chainHead: chainHead, overwrite: over,
				size: recordSize(len(op.Key), len(op.Value)),
			})
			break
		}
	}

	// Phase B: one tail reservation per chunk of planned records. The
	// chunk budget keeps the straddle waste bounded — an Allocate span
	// never crosses a page, so a chunk that straddles wastes the rest of
	// the current page as padding.
	pageSize := uint32(1) << s.cfg.PageBits
	chunkCap := pageSize / 4
	if chunkCap > 32<<10 {
		chunkCap = 32 << 10
	}
	for start := 0; start < len(plan); {
		end := start
		var total uint32
		for end < len(plan) && (end == start || total+plan[end].size <= chunkCap) {
			total += plan[end].size
			end++
		}
		sess.publishChunk(run, plan[start:end], total)
		start = end
	}

	// Deferred duplicates: every planned append for their hash has
	// published (or fallen back) by now, so the single-op path sees the
	// batch's latest chain state and program order holds.
	for _, k := range deferred {
		op := &run[k]
		op.Status, op.Err = sess.upsertInternal(op.Key, op.Value, hs[k])
	}

	sess.batchPlan = plan[:0]
	sess.batchDefer = deferred[:0]
}

// publishChunk reserves tail space for a chunk of planned appends with
// one Allocate, carves and writes the records, then publishes each with
// its index CAS in run order. A lost CAS invalidates the batch copy and
// retries that op through the single-op path; Allocate refreshing the
// epoch mid-batch is safe because a stale chain head loses its CAS and
// setOverwritten ignores evicted addresses.
func (sess *Session) publishChunk(run []BatchOp, chunk []batchAppend, total uint32) {
	s := sess.s
	base, err := s.log.Allocate(total, sess.g)
	if err != nil {
		// No shared reservation (span too large, tail poisoned, ...):
		// degrade to one append per record.
		for i := range chunk {
			p := &chunk[i]
			op := &run[p.idx]
			op.Status, op.Err = sess.upsertInternal(op.Key, op.Value, p.h)
		}
		return
	}
	addr := base
	for i := range chunk {
		p := &chunk[i]
		op := &run[p.idx]
		dst := writeRecord(s.log.Slice(addr)[:p.size], p.chainHead, 0, op.Key, len(op.Value))
		s.ops.SingleWriter(op.Key, dst.value, op.Value)
		p.addr = addr
		addr += hlog.Address(p.size)
	}
	for i := range chunk {
		p := &chunk[i]
		op := &run[p.idx]
		e, cur := s.idx.FindOrCreateEntry(p.h)
		if cur != p.expect || !e.CompareAndSwapAddress(p.expect, p.addr) {
			s.setInvalid(p.addr)
			sess.stat.failedCAS.Add(1)
			op.Status, op.Err = sess.upsertInternal(op.Key, op.Value, p.h)
			continue
		}
		if isCacheAddr(p.expect) {
			s.noteCacheInvalidation()
		}
		sess.stat.appends.Add(1)
		op.Status, op.Err = OK, nil
		if p.overwrite != hlog.InvalidAddress {
			sess.stat.rcuCopies.Add(1)
			s.setOverwritten(p.overwrite)
		}
	}
}

// takeBatchOps returns the session's reusable BatchOp scratch slice.
func (sess *Session) takeBatchOps(n int) []BatchOp {
	if cap(sess.batchOps) < n {
		sess.batchOps = make([]BatchOp, n)
	}
	return sess.batchOps[:n]
}

// ReadBatch reads keys[i] into outputs[i] as one batch and blocks until
// every read has a final status (draining pending I/O). statuses, if
// non-nil, receives each slot's outcome; with a nil statuses the first
// non-OK/NotFound outcome is returned as the error.
func (sess *Session) ReadBatch(keys, outputs [][]byte, statuses []Status) error {
	if len(keys) != len(outputs) || (statuses != nil && len(statuses) != len(keys)) {
		return ErrBatchShape
	}
	ops := sess.takeBatchOps(len(keys))
	for i := range keys {
		ops[i] = BatchOp{Kind: BatchRead, Key: keys[i], Output: outputs[i], Ctx: batchSlot(i)}
	}
	if err := sess.ExecBatch(ops); err != nil {
		return err
	}
	pending := 0
	for i := range ops {
		if ops[i].Status == Pending {
			pending++
		}
	}
	for pending > 0 {
		results := sess.CompletePending(true)
		matched := 0
		for _, r := range results {
			if slot, ok := r.Ctx.(batchSlot); ok && int(slot) < len(ops) {
				ops[slot].Status, ops[slot].Err = r.Status, r.Err
				matched++
			}
		}
		pending -= matched
		if matched == 0 {
			break // nothing of ours left in flight
		}
	}
	return sess.finishTyped(ops, statuses)
}

// UpsertBatch writes values[i] under keys[i] as one batch (sharing tail
// reservations for the appends). statuses, if non-nil, receives each
// slot's outcome; with a nil statuses the first failure is returned.
func (sess *Session) UpsertBatch(keys, values [][]byte, statuses []Status) error {
	if len(keys) != len(values) || (statuses != nil && len(statuses) != len(keys)) {
		return ErrBatchShape
	}
	ops := sess.takeBatchOps(len(keys))
	for i := range keys {
		ops[i] = BatchOp{Kind: BatchUpsert, Key: keys[i], Value: values[i]}
	}
	if err := sess.ExecBatch(ops); err != nil {
		return err
	}
	return sess.finishTyped(ops, statuses)
}

// finishTyped copies per-op outcomes out of the scratch ops and clears
// the retained references.
func (sess *Session) finishTyped(ops []BatchOp, statuses []Status) error {
	var firstErr error
	for i := range ops {
		if statuses != nil {
			statuses[i] = ops[i].Status
		}
		if firstErr == nil && ops[i].Err != nil {
			firstErr = ops[i].Err
		}
		ops[i] = BatchOp{}
	}
	if statuses != nil {
		return nil
	}
	return firstErr
}
