package faster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/hlog"
	"repro/internal/index"
)

// Checkpointing and recovery (§6.5). FASTER treats the HybridLog itself as
// the write-ahead log:
//
//  1. record t1 = tail address
//  2. write a fuzzy checkpoint of the hash index (no read locks; §3.3)
//  3. record t2 = tail address
//  4. shift the read-only offset to t2 and wait for the flush, making
//     every record below t2 durable
//
// All index mutations during (1)-(3) correspond to records in [t1, t2) on
// the log, because in-place updates never touch the index. Recovery loads
// the fuzzy index image and replays exactly that window, raising each
// affected entry to its newest record; the result is a consistent index
// as of t2.
//
// The checkpoint directory holds "meta.ckpt" (the bracket addresses) and
// one fuzzy index image per checkpoint generation, "index.<t1>.ckpt",
// named by the t1 the meta records — so a meta always identifies exactly
// the image captured with it.
//
// Checkpoints are crash-atomic: the index image is staged as .tmp, fsynced
// and renamed into place (dir fsync), and only then does the meta commit
// by rename — meta.ckpt rotates to meta.prev, meta.ckpt.tmp renames over
// meta.ckpt, dir fsync. The meta rename is the single commit point: a
// crash anywhere leaves either the new meta (whose index image is already
// durable), the old meta, or no current meta with the old one intact as
// meta.prev. Recover tries meta.ckpt first and falls back to meta.prev on
// any read/CRC/magic failure; stale index generations are garbage-
// collected on the next successful checkpoint.
//
// The exactly-once session table (sessiontable.go) rides the same
// protocol: its snapshot is captured under the table's cut lock
// immediately before t2, staged as "sessions.<t1>.ckpt" with an fsync
// and rename, and referenced from the meta by length and CRC — so the
// meta rename atomically commits the index image, the log bracket and
// the session frontiers as one generation. A meta whose session table is
// missing, short or corrupt is treated as torn and recovery falls back
// to meta.prev; a crash between the session-table rename and the meta
// rename leaves the old generation in force, whose (lower) frontiers
// match the recovered log prefix, so retried clients re-apply exactly
// the operations recovery discarded.

const metaMagic uint64 = 0xFA57E2C0FFEE0001

// CheckpointInfo describes a completed checkpoint.
type CheckpointInfo struct {
	// T1 and T2 bracket the fuzzy index capture on the log.
	T1, T2 hlog.Address
	// Begin is the log truncation point at checkpoint time.
	Begin hlog.Address
}

// Checkpoint writes a consistent checkpoint into dir (created if needed).
// It runs without quiescing the store: concurrent operations proceed, and
// their effects either fall below t2 (captured) or land after it. The
// calling goroutine must not hold a session.
//
// The body is split into prepare/cut/finish phases so a sharded
// coordinator (sharded.go) can hold every shard's cut lock across all
// the cuts — a single global serial barrier — while the expensive
// prepare and finish phases still run per shard in parallel.
func (s *Store) Checkpoint(dir string) (CheckpointInfo, error) {
	prep, err := s.checkpointPrepare(dir)
	if err != nil {
		return CheckpointInfo{}, err
	}
	s.sessions.cutMu.Lock()
	sessPayload, sessSnaps, t2 := s.checkpointCut()
	s.sessions.cutMu.Unlock()
	return s.checkpointFinish(prep, sessPayload, sessSnaps, t2)
}

// ckptPrep carries checkpoint state between the prepare and finish
// phases.
type ckptPrep struct {
	dir       string
	begin, t1 hlog.Address
	indexTmp  string
	indexPath string
}

// checkpointPrepare validates the store, captures the [Begin, t1)
// bracket and stages the fuzzy index image. No locks are held.
func (s *Store) checkpointPrepare(dir string) (ckptPrep, error) {
	if s.log.Mode() == hlog.ModeInMemory {
		return ckptPrep{}, errors.New("faster: in-memory stores cannot checkpoint (no device)")
	}
	// A checkpoint must advance the durability watermark; with the write
	// path gone it can only hang on the flush, so fail fast.
	if err := s.checkWritable(); err != nil {
		return ckptPrep{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ckptPrep{}, err
	}

	// Capture Begin before t1, not at meta-write time. A concurrent
	// Compact can advance the begin address mid-checkpoint, after its
	// copy-forward records were appended — and if the shift lands between
	// our t2 capture and the meta write, those copies sit above t2 (not
	// covered by this checkpoint) while a late-sampled Begin would tell
	// recovery to discard their sources below it: every key whose only
	// version lived in the compacted prefix would vanish. A begin shift
	// that completed before t1 is safe (its copies are below t1 and the
	// index already points at them), and one that completes after this
	// sample merely makes our Begin conservative: device truncation is
	// clamped to the newest committed checkpoint's Begin, so the log
	// bytes in [Begin, shifted-begin) remain readable for recovery.
	begin := s.log.BeginAddress()
	t1 := s.log.TailAddress()
	indexPath := filepath.Join(dir, indexFileName(t1))
	indexTmp := indexPath + ".tmp"
	f, err := os.Create(indexTmp)
	if err != nil {
		return ckptPrep{}, err
	}
	if err := s.writeIndexCheckpoint(f); err != nil {
		f.Close()
		return ckptPrep{}, fmt.Errorf("faster: index checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return ckptPrep{}, err
	}
	if err := f.Close(); err != nil {
		return ckptPrep{}, err
	}
	return ckptPrep{dir: dir, begin: begin, t1: t1, indexTmp: indexTmp, indexPath: indexPath}, nil
}

// writeIndexCheckpoint serializes the fuzzy index image with read-cache
// redirections resolved: the cache is volatile, so a tagged entry is
// persisted as the underlying hlog chain head its cached record
// preserves. Holding rc.mu across the scan freezes fills and evictions
// (hit-path reads stay lock-free), so every tagged live entry's record is
// guaranteed dereferenceable — no entry is ever dropped for raciness.
func (s *Store) writeIndexCheckpoint(f *os.File) error {
	if s.rc == nil {
		return s.idx.WriteCheckpoint(f)
	}
	s.rc.mu.Lock()
	defer s.rc.mu.Unlock()
	return s.idx.WriteCheckpointMapped(f, func(addr uint64) (uint64, bool) {
		if !isCacheAddr(addr) {
			return addr, true
		}
		rec, ok := s.rc.recordAt(addr)
		if !ok {
			// Unreachable while rc.mu is held (eviction restores every
			// live entry before the offset drops below head); dropping the
			// entry is the conservative recovery answer if it ever fires.
			return 0, false
		}
		return uint64(rec.prev()), true
	})
}

// checkpointCut is the serial cut: snapshot the session frontiers, then
// capture t2. The caller must hold s.sessions.cutMu exclusively — with
// the write lock held no stamped window is open, so every snapshotted
// serial's record lies below the tail here (≤ t2, durable after the
// flush); any serial admitted after the lock releases publishes at or
// above t2 and is discarded by a recovery of this checkpoint — exactly
// the frontier contract recovery promises reconnecting clients.
func (s *Store) checkpointCut() ([]byte, []sessSnap, hlog.Address) {
	sessPayload, sessSnaps := s.sessions.serialize()
	t2 := s.log.ShiftReadOnlyToTail()
	return sessPayload, sessSnaps, t2
}

// checkpointFinish waits for durability of the cut and commits the
// generation: index rename, session table, meta rotation. No locks are
// held; the flush wait is the slow part and runs fully concurrent with
// foreground operations.
func (s *Store) checkpointFinish(prep ckptPrep, sessPayload []byte, sessSnaps []sessSnap, t2 hlog.Address) (CheckpointInfo, error) {
	dir, begin, t1 := prep.dir, prep.begin, prep.t1
	indexTmp, indexPath := prep.indexTmp, prep.indexPath
	// The safe read-only shift needs every session to refresh; the log's
	// wait loop drains trigger actions for us.
	if err := s.log.WaitUntilFlushed(t2); err != nil {
		return CheckpointInfo{}, fmt.Errorf("faster: flush to t2: %w", err)
	}

	// Publish the index image under its final name before the meta can
	// reference it; the dir fsync orders the two commits on disk.
	if err := os.Rename(indexTmp, indexPath); err != nil {
		return CheckpointInfo{}, err
	}
	meta := ckptMeta{CheckpointInfo: CheckpointInfo{T1: t1, T2: t2, Begin: begin}}
	if len(sessPayload) > sessHeaderLen { // at least one entry
		meta.sessLen = uint64(len(sessPayload))
		meta.sessCRC = sessCRC(sessPayload)
		if err := writeSessionTable(filepath.Join(dir, sessionsFileName(t1)), sessPayload); err != nil {
			return CheckpointInfo{}, err
		}
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}

	info := meta.CheckpointInfo
	metaTmp := filepath.Join(dir, "meta.ckpt.tmp")
	if err := writeMeta(metaTmp, meta); err != nil {
		return CheckpointInfo{}, err
	}
	metaPath := filepath.Join(dir, "meta.ckpt")
	if _, err := os.Stat(metaPath); err == nil {
		if err := os.Rename(metaPath, filepath.Join(dir, "meta.prev")); err != nil {
			return CheckpointInfo{}, err
		}
	} else if !os.IsNotExist(err) {
		return CheckpointInfo{}, err
	}
	if err := os.Rename(metaTmp, metaPath); err != nil {
		return CheckpointInfo{}, err
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}
	// The committed meta pins recovery at info.Begin: device truncations
	// deferred because they would have outrun the previous checkpoint's
	// Begin can catch up to this one now. Best-effort — a failure here is
	// retried by the next truncation or checkpoint from the monotone
	// watermark.
	s.ckptBegin.Store(info.Begin)
	_ = s.log.ApplyDeviceTruncation(info.Begin)
	s.sessions.markDurable(sessSnaps)
	gcIndexGenerations(dir)
	return info, nil
}

// indexFileName names the fuzzy index image of the checkpoint generation
// bracketed from t1.
func indexFileName(t1 hlog.Address) string {
	return fmt.Sprintf("index.%016x.ckpt", t1)
}

// sessionsFileName names the session table of the checkpoint generation
// bracketed from t1.
func sessionsFileName(t1 hlog.Address) string {
	return fmt.Sprintf("sessions.%016x.ckpt", t1)
}

// sessHeaderLen is the size of an empty serialized session table (magic
// plus count); a payload this short carries no entries and is not
// written to disk.
const sessHeaderLen = 16

// writeSessionTable stages the serialized session table: write to .tmp,
// fsync, rename into place. The caller's dir fsync and the meta's
// length+CRC reference make the rename part of the checkpoint's single
// commit. Under the skip-serial-fsync mutation the fsync is elided and
// the staged bytes lose their tail — the seeded bug the linearize
// mutation gate proves red.
func writeSessionTable(path string, payload []byte) error {
	if mutationsEnabled && mutSkipSerialFsync() {
		payload = tornSessionPayload(payload)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if !(mutationsEnabled && mutSkipSerialFsync()) {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readSessionTable loads and verifies a checkpoint's session table
// against the length and CRC its meta recorded. Under the
// skip-serial-fsync mutation verification is elided (the naive reader),
// letting a torn table load as a shorter one.
func readSessionTable(path string, wantLen uint64, wantCRC uint32) ([]SessionState, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !(mutationsEnabled && mutSkipSerialFsync()) {
		if uint64(len(raw)) != wantLen {
			return nil, fmt.Errorf("faster: session table %d bytes, meta records %d", len(raw), wantLen)
		}
		if sessCRC(raw) != wantCRC {
			return nil, errors.New("faster: session table crc mismatch")
		}
	}
	return parseSessionTable(raw)
}

// gcIndexGenerations removes index images and session tables no meta
// references anymore — best-effort cleanup after a committed checkpoint;
// failures are ignored (an orphaned image costs space, never
// correctness).
func gcIndexGenerations(dir string) {
	keep := map[string]bool{}
	for _, m := range []string{"meta.ckpt", "meta.prev"} {
		if meta, err := readMeta(filepath.Join(dir, m)); err == nil {
			keep[indexFileName(meta.T1)] = true
			keep[sessionsFileName(meta.T1)] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		gen := (len(name) > 6 && name[:6] == "index.") ||
			(len(name) > 9 && name[:9] == "sessions.")
		stale := (gen && (filepath.Ext(name) == ".ckpt" || filepath.Ext(name) == ".tmp")) ||
			name == "meta.ckpt.tmp"
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// syncDir fsyncs a directory so the renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ckptMeta is the on-disk checkpoint meta: the public bracket plus the
// session-table reference. Legacy 40-byte metas (pre-session-table) read
// back with sessLen == 0.
type ckptMeta struct {
	CheckpointInfo
	sessLen uint64
	sessCRC uint32
}

func writeMeta(path string, meta ckptMeta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	crc := crc32.NewIEEE()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		w.Write(b[:])
		crc.Write(b[:])
	}
	put(metaMagic)
	put(meta.T1)
	put(meta.T2)
	put(meta.Begin)
	put(meta.sessLen)
	put(uint64(meta.sessCRC))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(crc.Sum32()))
	w.Write(b[:])
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func readMeta(path string) (ckptMeta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return ckptMeta{}, err
	}
	if len(raw) != 40 && len(raw) != 56 {
		return ckptMeta{}, errors.New("faster: bad checkpoint meta size")
	}
	body := raw[:len(raw)-8]
	crc := crc32.ChecksumIEEE(body)
	if binary.LittleEndian.Uint64(raw[len(raw)-8:]) != uint64(crc) {
		return ckptMeta{}, errors.New("faster: checkpoint meta crc mismatch")
	}
	if binary.LittleEndian.Uint64(raw) != metaMagic {
		return ckptMeta{}, errors.New("faster: checkpoint meta bad magic")
	}
	meta := ckptMeta{CheckpointInfo: CheckpointInfo{
		T1:    binary.LittleEndian.Uint64(raw[8:]),
		T2:    binary.LittleEndian.Uint64(raw[16:]),
		Begin: binary.LittleEndian.Uint64(raw[24:]),
	}}
	if len(raw) == 56 {
		meta.sessLen = binary.LittleEndian.Uint64(raw[32:])
		meta.sessCRC = uint32(binary.LittleEndian.Uint64(raw[40:]))
	}
	return meta, nil
}

// loadCheckpointPair reads a meta file, the index image it references,
// and the session table it references (empty when the generation
// persisted none). A missing, short or corrupt session table fails the
// whole generation — the caller falls back to the previous one.
func loadCheckpointPair(dir, metaName string) (CheckpointInfo, *index.Index, []SessionState, error) {
	meta, err := readMeta(filepath.Join(dir, metaName))
	if err != nil {
		return CheckpointInfo{}, nil, nil, err
	}
	var sess []SessionState
	if meta.sessLen > 0 {
		sess, err = readSessionTable(filepath.Join(dir, sessionsFileName(meta.T1)), meta.sessLen, meta.sessCRC)
		if err != nil {
			return CheckpointInfo{}, nil, nil, fmt.Errorf("faster: session table recovery: %w", err)
		}
	}
	f, err := os.Open(filepath.Join(dir, indexFileName(meta.T1)))
	if err != nil {
		return CheckpointInfo{}, nil, nil, err
	}
	idx, err := index.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		return CheckpointInfo{}, nil, nil, fmt.Errorf("faster: index recovery: %w", err)
	}
	return meta.CheckpointInfo, idx, sess, nil
}

// loadCheckpoint loads the newest recoverable checkpoint: the current meta
// if it and its index image are intact, else the previous generation kept
// as meta.prev (a crash can tear at most the in-flight generation).
func loadCheckpoint(dir string) (CheckpointInfo, *index.Index, []SessionState, error) {
	info, idx, sess, err := loadCheckpointPair(dir, "meta.ckpt")
	if err == nil {
		return info, idx, sess, nil
	}
	if pinfo, pidx, psess, perr := loadCheckpointPair(dir, "meta.prev"); perr == nil {
		return pinfo, pidx, psess, nil
	}
	return CheckpointInfo{}, nil, nil, err
}

// ReadCheckpointSessions reads the committed session table of the
// newest readable checkpoint generation in dir without opening the log
// — the offline view `faster-cli sessions` prints for operators
// deciding which clients may resume. A torn or corrupt current
// generation falls back to meta.prev, mirroring Recover's meta
// preference (Recover additionally requires the generation's index
// image, so in the rare case of a torn index the two can disagree by
// one generation). A nil slice with nil error means the generation
// checkpointed no sessions.
func ReadCheckpointSessions(dir string) ([]SessionState, error) {
	read := func(metaName string) ([]SessionState, error) {
		meta, err := readMeta(filepath.Join(dir, metaName))
		if err != nil {
			return nil, err
		}
		if meta.sessLen == 0 {
			return nil, nil
		}
		return readSessionTable(filepath.Join(dir, sessionsFileName(meta.T1)), meta.sessLen, meta.sessCRC)
	}
	sess, err := read("meta.ckpt")
	if err == nil {
		return sess, nil
	}
	if psess, perr := read("meta.prev"); perr == nil {
		return psess, nil
	}
	return nil, err
}

// Recover opens a store from a checkpoint directory and the device that
// holds the log contents. cfg plays the same role as in Open; its Device
// must contain the flushed log (for the built-in device types, reopen the
// same file or reuse the same Mem device). A torn or corrupt current
// checkpoint falls back to the previous generation (meta.prev).
func Recover(cfg Config, dir string) (*Store, error) {
	info, idx, sess, err := loadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	return recoverFrom(cfg, info, idx, sess)
}

// recoverFrom opens a store from an already-loaded checkpoint
// generation (shared by Recover and the sharded per-shard recovery).
func recoverFrom(cfg Config, info CheckpointInfo, idx *index.Index, sess []SessionState) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	s.idx = idx
	// The read cache is volatile: no checkpoint image may reinstate a
	// cache-tagged address (the writer maps them to the underlying chain
	// head; this scrub is defense in depth against images written before
	// that mapping existed). A tagged address's low bits are cache offsets,
	// meaningless after restart, so the entry is dropped outright.
	idx.UpdateAddresses(func(a uint64) uint64 {
		if isCacheAddr(a) {
			return 0
		}
		return a
	})
	if err := s.log.RecoverTo(info.Begin, info.T2); err != nil {
		s.Close()
		return nil, err
	}
	// Future device truncations may free everything below this
	// checkpoint's Begin without waiting for the next one.
	s.ckptBegin.Store(info.Begin)
	// Restore the exactly-once session frontiers this checkpoint
	// committed: the recovered prefix contains precisely the operations
	// at or below each session's frontier, so reconnecting clients can
	// resume their serial streams from frontier+1.
	s.sessions.load(sess)

	// Repair the fuzzy index: replay [t1, t2). Records in the window are
	// newer than anything the fuzzy capture could have seen for their
	// chain, except entries captured late in the pass — raising each
	// entry to the maximum address handles both (§6.5).
	err = s.Scan(ScanOptions{From: info.T1, To: info.T2}, func(r ScanRecord) bool {
		h := hashKey(r.Key)
		e, cur := s.idx.FindOrCreateEntry(h)
		for cur < r.Address {
			if e.CompareAndSwapAddress(cur, r.Address) {
				break
			}
			e, cur = s.idx.FindOrCreateEntry(h)
		}
		return true
	})
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("faster: log replay: %w", err)
	}
	return s, nil
}

// RebuildIndex reconstructs the entire hash index from the log (the
// "technically we can rebuild the entire hash-index from the HybridLog"
// observation of §6.5). It serves as the recovery oracle in tests and as
// a last-resort repair path. The store must be quiesced.
func (s *Store) RebuildIndex() error {
	idx, err := index.New(index.Config{InitialBuckets: s.cfg.IndexBuckets, TagBits: s.cfg.TagBits})
	if err != nil {
		return err
	}
	err = s.Scan(ScanOptions{}, func(r ScanRecord) bool {
		h := hashKey(r.Key)
		e, cur := idx.FindOrCreateEntry(h)
		for cur < r.Address {
			if e.CompareAndSwapAddress(cur, r.Address) {
				break
			}
			e, cur = idx.FindOrCreateEntry(h)
		}
		return true
	})
	if err != nil {
		return err
	}
	s.idx = idx
	return nil
}
