package faster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/hlog"
	"repro/internal/index"
)

// Checkpointing and recovery (§6.5). FASTER treats the HybridLog itself as
// the write-ahead log:
//
//  1. record t1 = tail address
//  2. write a fuzzy checkpoint of the hash index (no read locks; §3.3)
//  3. record t2 = tail address
//  4. shift the read-only offset to t2 and wait for the flush, making
//     every record below t2 durable
//
// All index mutations during (1)-(3) correspond to records in [t1, t2) on
// the log, because in-place updates never touch the index. Recovery loads
// the fuzzy index image and replays exactly that window, raising each
// affected entry to its newest record; the result is a consistent index
// as of t2.
//
// The checkpoint directory holds "meta.ckpt" (the bracket addresses) and
// one fuzzy index image per checkpoint generation, "index.<t1>.ckpt",
// named by the t1 the meta records — so a meta always identifies exactly
// the image captured with it.
//
// Checkpoints are crash-atomic: the index image is staged as .tmp, fsynced
// and renamed into place (dir fsync), and only then does the meta commit
// by rename — meta.ckpt rotates to meta.prev, meta.ckpt.tmp renames over
// meta.ckpt, dir fsync. The meta rename is the single commit point: a
// crash anywhere leaves either the new meta (whose index image is already
// durable), the old meta, or no current meta with the old one intact as
// meta.prev. Recover tries meta.ckpt first and falls back to meta.prev on
// any read/CRC/magic failure; stale index generations are garbage-
// collected on the next successful checkpoint.

const metaMagic uint64 = 0xFA57E2C0FFEE0001

// CheckpointInfo describes a completed checkpoint.
type CheckpointInfo struct {
	// T1 and T2 bracket the fuzzy index capture on the log.
	T1, T2 hlog.Address
	// Begin is the log truncation point at checkpoint time.
	Begin hlog.Address
}

// Checkpoint writes a consistent checkpoint into dir (created if needed).
// It runs without quiescing the store: concurrent operations proceed, and
// their effects either fall below t2 (captured) or land after it. The
// calling goroutine must not hold a session.
func (s *Store) Checkpoint(dir string) (CheckpointInfo, error) {
	if s.log.Mode() == hlog.ModeInMemory {
		return CheckpointInfo{}, errors.New("faster: in-memory stores cannot checkpoint (no device)")
	}
	// A checkpoint must advance the durability watermark; with the write
	// path gone it can only hang on the flush, so fail fast.
	if err := s.checkWritable(); err != nil {
		return CheckpointInfo{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return CheckpointInfo{}, err
	}

	t1 := s.log.TailAddress()
	indexPath := filepath.Join(dir, indexFileName(t1))
	indexTmp := indexPath + ".tmp"
	f, err := os.Create(indexTmp)
	if err != nil {
		return CheckpointInfo{}, err
	}
	if err := s.idx.WriteCheckpoint(f); err != nil {
		f.Close()
		return CheckpointInfo{}, fmt.Errorf("faster: index checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return CheckpointInfo{}, err
	}
	if err := f.Close(); err != nil {
		return CheckpointInfo{}, err
	}
	t2 := s.log.ShiftReadOnlyToTail()
	// The safe read-only shift needs every session to refresh; the log's
	// wait loop drains trigger actions for us.
	if err := s.log.WaitUntilFlushed(t2); err != nil {
		return CheckpointInfo{}, fmt.Errorf("faster: flush to t2: %w", err)
	}

	// Publish the index image under its final name before the meta can
	// reference it; the dir fsync orders the two commits on disk.
	if err := os.Rename(indexTmp, indexPath); err != nil {
		return CheckpointInfo{}, err
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}

	info := CheckpointInfo{T1: t1, T2: t2, Begin: s.log.BeginAddress()}
	metaTmp := filepath.Join(dir, "meta.ckpt.tmp")
	if err := writeMeta(metaTmp, info); err != nil {
		return CheckpointInfo{}, err
	}
	metaPath := filepath.Join(dir, "meta.ckpt")
	if _, err := os.Stat(metaPath); err == nil {
		if err := os.Rename(metaPath, filepath.Join(dir, "meta.prev")); err != nil {
			return CheckpointInfo{}, err
		}
	} else if !os.IsNotExist(err) {
		return CheckpointInfo{}, err
	}
	if err := os.Rename(metaTmp, metaPath); err != nil {
		return CheckpointInfo{}, err
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}
	// The committed meta pins recovery at info.Begin: device truncations
	// deferred because they would have outrun the previous checkpoint's
	// Begin can catch up to this one now. Best-effort — a failure here is
	// retried by the next truncation or checkpoint from the monotone
	// watermark.
	s.ckptBegin.Store(info.Begin)
	_ = s.log.ApplyDeviceTruncation(info.Begin)
	gcIndexGenerations(dir)
	return info, nil
}

// indexFileName names the fuzzy index image of the checkpoint generation
// bracketed from t1.
func indexFileName(t1 hlog.Address) string {
	return fmt.Sprintf("index.%016x.ckpt", t1)
}

// gcIndexGenerations removes index images no meta references anymore —
// best-effort cleanup after a committed checkpoint; failures are ignored
// (an orphaned image costs space, never correctness).
func gcIndexGenerations(dir string) {
	keep := map[string]bool{}
	for _, m := range []string{"meta.ckpt", "meta.prev"} {
		if info, err := readMeta(filepath.Join(dir, m)); err == nil {
			keep[indexFileName(info.T1)] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		stale := (len(name) > 6 && name[:6] == "index." &&
			(filepath.Ext(name) == ".ckpt" || filepath.Ext(name) == ".tmp")) ||
			name == "meta.ckpt.tmp"
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// syncDir fsyncs a directory so the renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func writeMeta(path string, info CheckpointInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	crc := crc32.NewIEEE()
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		w.Write(b[:])
		crc.Write(b[:])
	}
	put(metaMagic)
	put(info.T1)
	put(info.T2)
	put(info.Begin)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(crc.Sum32()))
	w.Write(b[:])
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func readMeta(path string) (CheckpointInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return CheckpointInfo{}, err
	}
	if len(raw) != 40 {
		return CheckpointInfo{}, errors.New("faster: bad checkpoint meta size")
	}
	crc := crc32.ChecksumIEEE(raw[:32])
	if binary.LittleEndian.Uint64(raw[32:]) != uint64(crc) {
		return CheckpointInfo{}, errors.New("faster: checkpoint meta crc mismatch")
	}
	if binary.LittleEndian.Uint64(raw) != metaMagic {
		return CheckpointInfo{}, errors.New("faster: checkpoint meta bad magic")
	}
	return CheckpointInfo{
		T1:    binary.LittleEndian.Uint64(raw[8:]),
		T2:    binary.LittleEndian.Uint64(raw[16:]),
		Begin: binary.LittleEndian.Uint64(raw[24:]),
	}, nil
}

// loadCheckpointPair reads a meta file and the index image it references.
func loadCheckpointPair(dir, metaName string) (CheckpointInfo, *index.Index, error) {
	info, err := readMeta(filepath.Join(dir, metaName))
	if err != nil {
		return CheckpointInfo{}, nil, err
	}
	f, err := os.Open(filepath.Join(dir, indexFileName(info.T1)))
	if err != nil {
		return CheckpointInfo{}, nil, err
	}
	idx, err := index.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		return CheckpointInfo{}, nil, fmt.Errorf("faster: index recovery: %w", err)
	}
	return info, idx, nil
}

// loadCheckpoint loads the newest recoverable checkpoint: the current meta
// if it and its index image are intact, else the previous generation kept
// as meta.prev (a crash can tear at most the in-flight generation).
func loadCheckpoint(dir string) (CheckpointInfo, *index.Index, error) {
	info, idx, err := loadCheckpointPair(dir, "meta.ckpt")
	if err == nil {
		return info, idx, nil
	}
	if pinfo, pidx, perr := loadCheckpointPair(dir, "meta.prev"); perr == nil {
		return pinfo, pidx, nil
	}
	return CheckpointInfo{}, nil, err
}

// Recover opens a store from a checkpoint directory and the device that
// holds the log contents. cfg plays the same role as in Open; its Device
// must contain the flushed log (for the built-in device types, reopen the
// same file or reuse the same Mem device). A torn or corrupt current
// checkpoint falls back to the previous generation (meta.prev).
func Recover(cfg Config, dir string) (*Store, error) {
	info, idx, err := loadCheckpoint(dir)
	if err != nil {
		return nil, err
	}

	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	s.idx = idx
	if err := s.log.RecoverTo(info.Begin, info.T2); err != nil {
		s.Close()
		return nil, err
	}
	// Future device truncations may free everything below this
	// checkpoint's Begin without waiting for the next one.
	s.ckptBegin.Store(info.Begin)

	// Repair the fuzzy index: replay [t1, t2). Records in the window are
	// newer than anything the fuzzy capture could have seen for their
	// chain, except entries captured late in the pass — raising each
	// entry to the maximum address handles both (§6.5).
	err = s.Scan(ScanOptions{From: info.T1, To: info.T2}, func(r ScanRecord) bool {
		h := hashKey(r.Key)
		e, cur := s.idx.FindOrCreateEntry(h)
		for cur < r.Address {
			if e.CompareAndSwapAddress(cur, r.Address) {
				break
			}
			e, cur = s.idx.FindOrCreateEntry(h)
		}
		return true
	})
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("faster: log replay: %w", err)
	}
	return s, nil
}

// RebuildIndex reconstructs the entire hash index from the log (the
// "technically we can rebuild the entire hash-index from the HybridLog"
// observation of §6.5). It serves as the recovery oracle in tests and as
// a last-resort repair path. The store must be quiesced.
func (s *Store) RebuildIndex() error {
	idx, err := index.New(index.Config{InitialBuckets: s.cfg.IndexBuckets, TagBits: s.cfg.TagBits})
	if err != nil {
		return err
	}
	err = s.Scan(ScanOptions{}, func(r ScanRecord) bool {
		h := hashKey(r.Key)
		e, cur := idx.FindOrCreateEntry(h)
		for cur < r.Address {
			if e.CompareAndSwapAddress(cur, r.Address) {
				break
			}
			e, cur = idx.FindOrCreateEntry(h)
		}
		return true
	})
	if err != nil {
		return err
	}
	s.idx = idx
	return nil
}
