package faster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
)

// TestCheckpointCompactRace regresses the checkpoint/compaction
// interleaving gap: a Checkpoint taken while Compact is mid-copy-forward
// must record a Begin that is consistent with its own [T1,T2) bracket.
//
// The broken interleaving (Begin sampled at meta-write time): compaction
// copies the live records of [begin, until) to the tail — above the
// checkpoint's T2, so outside its recovered prefix — then shifts Begin to
// `until` while the checkpoint is still waiting out its flush. The late
// sample then publishes Begin=until, so recovery discards the *sources*
// below `until` too, and every key whose only durable copy sat in the
// compacted span silently vanishes. Sampling Begin before T1 closes the
// gap; this test races the two under -race with a write-stalled device to
// keep the flush window wide, then recovers and demands every key back.
func TestCheckpointCompactRace(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			dir := t.TempDir()
			mem := device.NewMem(device.MemConfig{})
			dev := device.NewFaulty(mem)
			cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
				IndexBuckets: 1 << 10, Device: dev}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess := s.StartSession()

			// Keys 0..n-1 are written once: after the filler churn below,
			// their only copies live in the compactable prefix.
			const n = 150
			for i := uint64(0); i < n; i++ {
				if st, _ := sess.Upsert(key(i), u64(i+1)); st != OK {
					t.Fatalf("upsert %d failed", i)
				}
			}
			// Filler versions push the prefix out of the mutable region.
			for i := uint64(1000); i < 1600; i++ {
				sess.Upsert(key(i), u64(i))
			}
			sess.CompletePending(true)
			s.Log().ShiftReadOnlyToTail()
			sess.Refresh()
			cut := s.Log().SafeReadOnlyAddress()
			if cut <= s.Log().BeginAddress() {
				t.Skip("nothing became read-only")
			}
			sess.Park()

			// Stall device writes so the checkpoint's flush wait stays open
			// while the compaction runs its copy-forward and begin shift.
			var stall atomic.Bool
			stall.Store(true)
			dev.SetHook(func(op device.Op, _ uint64, _ int) error {
				if stall.Load() && op == device.OpWrite {
					time.Sleep(2 * time.Millisecond)
				}
				return nil
			})

			var (
				wg         sync.WaitGroup
				ckptErr    error
				compactErr error
			)
			wg.Add(2)
			go func() {
				defer wg.Done()
				_, ckptErr = s.Checkpoint(dir)
			}()
			go func() {
				defer wg.Done()
				time.Sleep(time.Duration(round) * time.Millisecond)
				_, compactErr = s.Compact(cut)
			}()
			wg.Wait()
			stall.Store(false)
			dev.SetHook(nil)
			if ckptErr != nil {
				t.Fatalf("checkpoint: %v", ckptErr)
			}
			if compactErr != nil {
				t.Fatalf("compact: %v", compactErr)
			}
			sess.Unpark()
			sess.Close()
			s.Close()

			r, err := Recover(cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			rs := r.StartSession()
			for i := uint64(0); i < n; i++ {
				got, st := readU64(t, rs, key(i))
				if st != OK || got != i+1 {
					t.Fatalf("round %d: key %d after recovery = (%d, %v), want (%d, OK): "+
						"checkpoint Begin swallowed the compacted prefix", round, i, got, st, i+1)
				}
			}
			rs.Close()
			r.Close()
		})
	}
}
