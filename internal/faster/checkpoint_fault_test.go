package faster

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/device"
)

// checkpointTwice builds a store with two checkpoint generations: phase A
// (keys 0..499 = i+1) under checkpoint 1, phase B (keys 1000..1199) under
// checkpoint 2.
func checkpointTwice(t *testing.T, dir string) (Config, CheckpointInfo, CheckpointInfo) {
	t.Helper()
	dev := device.NewMem(device.MemConfig{})
	t.Cleanup(func() { dev.Close() })
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	for i := uint64(0); i < 500; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()
	infoA, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	sess = s.StartSession()
	for i := uint64(1000); i < 1200; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()
	infoB, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return cfg, infoA, infoB
}

// pageUp rounds addr up to the next 4 KB page boundary (PageBits 12 in
// these tests): RecoverTo resumes allocation on a fresh page above t2.
func pageUp(addr uint64) uint64 { return (addr + (1 << 12) - 1) &^ uint64(1<<12-1) }

func TestTornMetaFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg, infoA, infoB := checkpointTwice(t, dir)

	// Intact directory: recovery picks the newest generation.
	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Log().TailAddress(); got != pageUp(infoB.T2) {
		t.Fatalf("intact recovery tail = %#x, want t2 of checkpoint B rounded up %#x", got, pageUp(infoB.T2))
	}
	r.Close()

	// Tear the current meta (CRC mismatch): recovery must fall back to
	// meta.prev instead of failing outright.
	metaPath := filepath.Join(dir, "meta.ckpt")
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[8] ^= 0xFF
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Recover(cfg, dir)
	if err != nil {
		t.Fatalf("recovery with torn meta: %v", err)
	}
	defer r2.Close()
	if got := r2.Log().TailAddress(); got != pageUp(infoA.T2) {
		t.Fatalf("fallback recovery tail = %#x, want t2 of checkpoint A rounded up %#x", got, pageUp(infoA.T2))
	}
	rs := r2.StartSession()
	defer rs.Close()
	for i := uint64(0); i < 500; i += 31 {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("fallback: key %d = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
	// Phase-B records lie above checkpoint A's t2: recovered state must
	// not resurrect them (monotonicity per §6.5).
	if _, st := readU64(t, rs, key(1000)); st != NotFound {
		t.Fatalf("phase-B key after fallback = %v, want NotFound", st)
	}
}

func TestMissingMetaFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg, infoA, _ := checkpointTwice(t, dir)

	// Simulate a crash between "meta.ckpt -> meta.prev" and
	// "meta.ckpt.tmp -> meta.ckpt": no current meta at all. (The .prev in
	// the directory is checkpoint A only after B's commit, so drop B's
	// meta AND restore A as prev — i.e. just remove meta.ckpt.)
	if err := os.Remove(filepath.Join(dir, "meta.ckpt")); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatalf("recovery with missing meta: %v", err)
	}
	defer r.Close()
	if got := r.Log().TailAddress(); got != pageUp(infoA.T2) {
		t.Fatalf("fallback recovery tail = %#x, want %#x", got, pageUp(infoA.T2))
	}
}

func TestCheckpointGCKeepsReferencedIndexImages(t *testing.T) {
	dir := t.TempDir()
	_, infoA, infoB := checkpointTwice(t, dir)

	for _, want := range []string{
		indexFileName(infoA.T1), // referenced by meta.prev
		indexFileName(infoB.T1), // referenced by meta.ckpt
		"meta.ckpt", "meta.prev",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("checkpoint file %s missing: %v", want, err)
		}
	}
	// No staging leftovers survive a committed checkpoint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("stale staging file %s survived the checkpoint", e.Name())
		}
	}
}
