package faster

import (
	"errors"
	"sync"
	"time"

	"repro/internal/hlog"
)

// Cold-read coalescing: concurrent pending reads that land on the same
// hlog block share one device call. The first op to arrive for a block
// becomes the leader and issues a single block-sized read; ops arriving
// while that read is in flight attach as followers and are resolved from
// the leader's buffer when it lands. Under a skewed workload bursts of
// misses pile onto the same few pages, so this turns N record fetches
// (2N device calls with the header-then-body protocol) into one.
//
// The coalesced path is strictly an optimization with a per-op fallback:
// any op whose record cannot be served from the block (it straddles the
// block end, or the leader's read shed on the leader's deadline while the
// follower is still live) is re-issued individually through the normal
// two-phase path (errCoalesceRetry). Correctness-sensitive races —
// truncation below the block, corrupt parses — resolve exactly as on the
// individual path, because resolution happens in continueOp either way.

// coalesceBlockMax bounds the block size: big enough to capture bursts,
// small enough that a solo leader's over-read stays cheap.
const coalesceBlockMax = 32 << 10

// errCoalesceRetry routes an op that a coalesced block read could not
// serve back to the individual two-phase read path (see continueOp).
var errCoalesceRetry = errors.New("faster: coalesced read re-issues individually")

type blockWaiter struct {
	sess *Session
	op   *PendingOp
}

type blockFetch struct {
	start   hlog.Address
	buf     []byte
	waiters []blockWaiter
}

type coalescer struct {
	s        *Store
	blockLen uint64

	mu       sync.Mutex
	inflight map[hlog.Address]*blockFetch
	bufs     [][]byte
}

func newCoalescer(s *Store) *coalescer {
	bl := s.log.PageSize()
	if bl > coalesceBlockMax {
		bl = coalesceBlockMax
	}
	return &coalescer{s: s, blockLen: bl, inflight: make(map[hlog.Address]*blockFetch)}
}

// tryJoin routes op's record fetch through a shared block read when the
// whole block is durably readable. Returns false to use the individual
// path. Called from the session goroutine inside issueIO (after the
// in-flight accounting).
func (co *coalescer) tryJoin(sess *Session, op *PendingOp) bool {
	start := op.addr &^ (co.blockLen - 1)
	// The block must sit entirely in the flushed, unreclaimed region:
	// everything below head is on the device, everything below begin may
	// be gone. (op.addr itself is below head or it would not be pending.)
	if start < co.s.log.BeginAddress() || start+co.blockLen > co.s.log.HeadAddress() {
		return false
	}
	co.mu.Lock()
	if f := co.inflight[start]; f != nil {
		f.waiters = append(f.waiters, blockWaiter{sess, op})
		co.mu.Unlock()
		co.s.mx.ioCoalesced.Inc()
		return true
	}
	var buf []byte
	if n := len(co.bufs); n > 0 {
		buf = co.bufs[n-1]
		co.bufs = co.bufs[:n-1]
	}
	f := &blockFetch{start: start, buf: buf}
	f.waiters = append(f.waiters, blockWaiter{sess, op})
	co.inflight[start] = f
	co.mu.Unlock()
	if f.buf == nil {
		f.buf = make([]byte, co.blockLen)
	}
	// The leader's deadline bounds the device call; followers with laxer
	// deadlines recover via the individual re-issue on a deadline shed.
	co.s.readRetrying(start, f.buf, op.deadlineNs, func(err error) {
		co.deliver(f, err)
	})
	return true
}

// deliver resolves every waiter from the completed block read. Runs on
// the device-callback goroutine: it may parse and copy, but must not
// touch session-owned pools (each op is pushed to its session's
// completion queue, same as the individual path).
func (co *coalescer) deliver(f *blockFetch, err error) {
	co.mu.Lock()
	delete(co.inflight, f.start)
	waiters := f.waiters
	co.mu.Unlock()

	now := time.Now().UnixNano()
	for _, w := range waiters {
		op := w.op
		switch {
		case err != nil && errors.Is(err, ErrOpDeadline):
			// The leader's deadline shed the read. Followers whose own
			// deadline also expired shed too; live ones re-issue solo.
			if op.deadlineNs > 0 && now >= op.deadlineNs {
				op.err = ErrOpDeadline
			} else {
				op.err = errCoalesceRetry
			}
		case err != nil:
			// The block read failed. A block spans more than the records it
			// was joined for — e.g. after crash recovery the device's written
			// extent can end mid-block while every record below the tail is
			// individually readable — so a block failure proves nothing about
			// any single record. Fall back to the individual path, which
			// surfaces genuine device losses with its own retry and health
			// escalation.
			op.err = errCoalesceRetry
		case op.deadlineNs > 0 && now >= op.deadlineNs:
			op.err = ErrOpDeadline
		default:
			off := op.addr - f.start
			var size uint32
			if off+recHeaderBytes <= co.blockLen {
				size = probeSize(f.buf[off:])
			}
			switch {
			case size == 0 || size > 1<<24:
				// Same resolution as the individual path: corrupt, unless
				// a truncation raced the read (continueOp re-checks begin).
				op.err = errCorruptRecord
			case uint64(off)+uint64(size) > co.blockLen:
				// Record straddles the block end (block < page): fetch it
				// individually.
				op.err = errCoalesceRetry
			default:
				buf := make([]byte, size)
				copy(buf, f.buf[off:uint64(off)+uint64(size)])
				op.buf = buf
			}
		}
		w.sess.completed.push(op)
	}
	co.putBuf(f.buf)
}

func (co *coalescer) putBuf(b []byte) {
	co.mu.Lock()
	if len(co.bufs) < 8 {
		co.bufs = append(co.bufs, b)
	}
	co.mu.Unlock()
}
