package faster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hlog"
)

// Log compaction (the "Roll To Tail" garbage collection of Appendix C,
// grown into an online operation): Compact scans the stable prefix
// [BeginAddress, until), finds each key whose newest version still lives
// below the cut, copies that version to the tail (CASing the index entry
// forward exactly like a lost-update-free RCU), and then truncates the
// prefix under the epoch-safe protocol in hlog. Unlike the paper's
// administrative sketch, this version runs concurrently with reads, RMWs
// and pending I/O:
//
//   - a copy is published only if no newer version of the key exists in
//     the chain span above the cut — verified in memory when the span is
//     resident, or via an asynchronous span descent (opCompact) when part
//     of it was already evicted, mirroring the RMW verify protocol;
//   - a lost index CAS re-verifies only the span that appeared since
//     (addresses are monotone, so the re-check converges);
//   - the prefix is truncated only after the copies are durably flushed,
//     and the device range is freed only up to the newest committed
//     checkpoint's Begin (recovery must never need truncated storage).
//
// Keys whose newest below-cut state is a tombstone are simply dropped:
// the delete dies with the prefix. CRDT delta chains are not supported —
// a delta below the cut cannot be copied without reconciling the whole
// chain — so compaction refuses delta records.

// CompactStats reports one Compact run.
type CompactStats struct {
	// Copied counts live records re-appended at the tail; CopiedBytes is
	// their total record size (the write amplification numerator).
	Copied      int
	CopiedBytes uint64
	// Skipped counts candidate keys that needed no copy (superseded above
	// the cut, or deleted since the scan).
	Skipped int
	// ReclaimedBytes is the log span logically reclaimed: until minus the
	// begin address the run started from. Device bytes actually freed can
	// lag behind it (see hlog.Metrics.TruncatedBytes) when truncation is
	// deferred behind a checkpoint.
	ReclaimedBytes uint64
}

// errCompactDelta rejects compaction over CRDT delta records.
var errCompactDelta = errors.New("faster: compaction does not support CRDT delta records")

// maxCompactValue bounds the value size compaction will copy forward.
const maxCompactValue = 1 << 16

// Compact copies every still-live record in [BeginAddress, until) to the
// tail and truncates the prefix. until must be at or below the safe
// read-only address and must be a record boundary — page-aligned
// addresses always are (SafeReadOnlyAddress and TailAddress are record
// boundaries too). It is safe to run concurrently with normal operations;
// concurrent Compact/TruncateUntil calls serialize. The calling goroutine
// must not hold an active (unparked) session (Compact drives its own).
func (s *Store) Compact(until hlog.Address) (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	var stats CompactStats
	if err := s.checkWritable(); err != nil {
		return stats, err
	}
	begin := s.log.BeginAddress()
	if until <= begin {
		return stats, nil
	}
	if safeRO := s.log.SafeReadOnlyAddress(); until > safeRO {
		return stats, fmt.Errorf("faster: compact until %#x beyond safe read-only %#x", until, safeRO)
	}

	// Phase 1: one scan of the doomed prefix, folding it into each key's
	// newest below-cut state. Log order is version order for a single
	// key, so last-seen wins and a tombstone erases the key.
	live := map[string][]byte{}
	var scanErr error
	err := s.Scan(ScanOptions{From: begin, To: until}, func(r ScanRecord) bool {
		if r.Delta {
			scanErr = errCompactDelta
			return false
		}
		if r.Tombstone {
			delete(live, string(r.Key))
			return true
		}
		if len(r.Value) > maxCompactValue {
			scanErr = fmt.Errorf("faster: compact: record at %#x value %d bytes exceeds limit %d",
				r.Address, len(r.Value), maxCompactValue)
			return false
		}
		// Scan buffers are transient: copy, reusing the key's previous
		// backing array across versions.
		live[string(r.Key)] = append(live[string(r.Key)][:0], r.Value...)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return stats, err
	}

	// Phase 2: roll each candidate forward on a private session. Copies
	// race concurrent writers through the ordinary append/CAS protocol,
	// so a candidate superseded mid-flight is simply skipped.
	sess := s.StartSession()
	defer sess.Close()
	var opErr error
	tally := func(results []Result) {
		for _, res := range results {
			if res.Kind != "compact" {
				continue
			}
			switch res.Status {
			case OK:
				stats.Copied++
				stats.CopiedBytes += uint64(recordSize(len(res.Key), res.ValueLen))
			case NotFound:
				stats.Skipped++
			default:
				if opErr == nil {
					opErr = res.Err
				}
			}
		}
	}
	for key, val := range live {
		sess.compactKey([]byte(key), val, until, &stats)
		if sess.inFlight >= 32 {
			tally(sess.CompletePending(true))
		}
		if opErr != nil {
			break
		}
	}
	tally(sess.CompletePending(true))
	if opErr != nil {
		return stats, opErr
	}

	// Phase 3: make the copies durable before destroying their sources,
	// then truncate. A poisoned tail aborts here with the prefix intact.
	t := s.log.ShiftReadOnlyToTail()
	sess.Refresh()
	if err := s.log.WaitUntilFlushed(t); err != nil {
		return stats, err
	}
	if _, err := s.log.ShiftBeginAddress(until, sess.g); err != nil {
		return stats, err
	}
	stats.ReclaimedBytes = until - begin
	s.mx.compactions.Inc()
	s.mx.compactedRecords.Add(uint64(stats.Copied))
	s.mx.compactedBytes.Add(stats.CopiedBytes)
	s.mx.reclaimedBytes.Add(stats.ReclaimedBytes)
	if err := s.log.ApplyDeviceTruncation(s.deviceTruncateLimit(until)); err != nil {
		// The prefix is logically gone (begin advanced); only the device
		// free failed. Surface it — the next truncation or checkpoint
		// retries from the monotone watermark.
		return stats, err
	}
	return stats, nil
}

// compactKey rolls one candidate forward: skip if the index chain already
// supersedes it (a version of the key at or above the cut), copy-append
// otherwise. When part of the span [until, head) was evicted before it
// could be checked in memory, the check continues asynchronously as an
// opCompact descent and the result is tallied from CompletePending.
func (sess *Session) compactKey(key, val []byte, until hlog.Address, stats *CompactStats) {
	s := sess.s
	h := hashKey(key)
	for {
		sess.opStart()
		entry, cur, ok := s.idx.FindEntry(h)
		if !ok {
			stats.Skipped++ // deleted since the scan (entry released)
			return
		}
		// The entry may point at a read-cache copy. A cached copy is
		// volatile and must not suppress the copy-forward (truncation would
		// strand the cache with no durable backing): trace the underlying
		// hlog chain, and publish with the raw address as the CAS
		// expectation (which drops the cached copy, RCU-style).
		chain, _, cached, stale := s.splitProbe(cur)
		if stale {
			continue
		}
		if !cached && chain < s.log.BeginAddress() {
			entry.CompareAndDelete(cur)
			stats.Skipped++
			return
		}
		laddr, _, found := s.traceBack(key, chain, maxAddr(s.log.HeadAddress(), until))
		if found {
			stats.Skipped++ // superseded at or above the cut
			return
		}
		if laddr == hlog.InvalidAddress {
			// The chain ended (or dropped below begin) without reaching
			// the scanned version: the entry was released and recreated,
			// which only happens once the key is dead. Copying would
			// resurrect a delete.
			stats.Skipped++
			return
		}
		if laddr < until {
			// The resident span above the cut is clean: the scanned value
			// is the key's newest version. Publish the copy against the
			// observed chain head; a lost CAS means a concurrent append
			// landed, so re-examine from the index.
			_, st, err := sess.appendRecord(h, key, cur, chain, hlog.InvalidAddress, 0, len(val), func(dst record) {
				copy(dst.value, val)
			})
			if err != nil {
				// Tally as a failed pending result so the driver aborts.
				sess.completedCompactError(key, err)
				return
			}
			if st == statusDone {
				stats.Copied++
				stats.CopiedBytes += uint64(recordSize(len(key), len(val)))
				return
			}
			continue
		}
		// laddr is inside [until, head): that part of the chain was
		// evicted, so whether a newer version of the key exists there can
		// only be answered from storage. Descend asynchronously.
		op := sess.newPendingOp(opCompact, key, nil, nil, nil)
		op.compactVal = val
		op.verifyStop = until - 1 // clean once the descent passes below the cut
		op.verifyCur = cur
		op.addr = laddr
		sess.issueIO(op)
		return
	}
}

// completedCompactError surfaces a synchronous append failure through the
// same Result channel the asynchronous path uses, so the driver's tally
// sees every failure uniformly.
func (sess *Session) completedCompactError(key []byte, err error) {
	op := sess.newPendingOp(opCompact, key, nil, nil, nil)
	op.err = err
	sess.inFlight++ // consumed by the completePending drain
	sess.s.mx.pendingDepth.Inc()
	op.issuedNs = time.Now().UnixNano()
	sess.completed.push(op)
}

// republishCompact publishes (or abandons) a compaction copy after its
// span check: the descent from op.addr found no version of the key above
// the cut, so the copy is still current — unless the index entry moved
// since, in which case only the newly appeared span needs checking
// (mirroring publishFetched's protocol, including the switch back to an
// asynchronous descent when that span was evicted too).
func (sess *Session) republishCompact(op *PendingOp) (Result, bool) {
	s := sess.s
	finish := func(st Status, err error) (Result, bool) {
		res := Result{Kind: "compact", Key: op.key, Status: st, Err: err, Ctx: op.ctx}
		if st == OK {
			res.ValueLen = len(op.compactVal)
		}
		return res, true
	}
	h := hashKey(op.key)
	chainHead := op.verifyCur
	for {
		// chainHead is the raw index-entry address; it may point at a
		// read-cache copy, in which case the appended record's prev must be
		// the underlying hlog chain head (a cached copy never supersedes
		// the scanned value — it mirrors the newest hlog version, which the
		// span check just proved is the scanned one).
		expect := chainHead
		prev, _, _, stale := s.splitProbe(chainHead)
		if stale {
			_, cur, ok := s.idx.FindEntry(h)
			if !ok {
				return finish(NotFound, nil) // entry released: key dead
			}
			chainHead = cur
			continue
		}
		_, st, err := sess.appendRecord(h, op.key, expect, prev, hlog.InvalidAddress, 0, len(op.compactVal), func(dst record) {
			copy(dst.value, op.compactVal)
		})
		if err != nil {
			return finish(Err, err)
		}
		if st == statusDone {
			return finish(OK, nil)
		}
		// Lost the CAS: check only the span that appeared above our
		// verified head.
		_, cur, ok := s.idx.FindEntry(h)
		if !ok {
			return finish(NotFound, nil) // entry released: key dead
		}
		nchain, _, ncached, nstale := s.splitProbe(cur)
		if nstale {
			chainHead = cur
			continue
		}
		if !ncached && nchain < s.log.BeginAddress() {
			return finish(NotFound, nil) // entry released: key dead
		}
		floor := maxAddr(s.log.HeadAddress(), prev+1)
		laddr, _, found := s.traceBack(op.key, nchain, floor)
		if found {
			return finish(NotFound, nil) // superseded while verifying
		}
		if laddr != hlog.InvalidAddress && laddr > prev {
			// The new span was partially evicted: verify it on storage.
			if op.buf != nil {
				sess.putIOBuf(op.buf)
				op.buf = nil
			}
			op.verifyStop = prev
			op.verifyCur = cur
			op.addr = laddr
			sess.ioDone()
			sess.issueIO(op)
			return Result{}, false
		}
		chainHead = cur
	}
}

// maintInterval is how often the background maintainer samples the log.
const maintInterval = 100 * time.Millisecond

// maintainerLoop is the size-triggered background compaction policy: when
// the reclaimable region outgrows Config.CompactionThreshold, compact the
// older half of it (page-aligned). Runs until Close.
func (s *Store) maintainerLoop() {
	defer s.maintWG.Done()
	ticker := time.NewTicker(maintInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.maintStop:
			return
		case <-ticker.C:
		}
		s.maybeCompact()
	}
}

// maybeCompact runs one background compaction round if the policy fires.
// Errors are swallowed: the health ladder and metrics already record the
// causes, and the maintainer retries on the next tick.
func (s *Store) maybeCompact() {
	if s.Health() >= ReadOnly {
		return
	}
	begin := s.log.BeginAddress()
	safeRO := s.log.SafeReadOnlyAddress()
	if safeRO <= begin || safeRO-begin < s.cfg.CompactionThreshold {
		return
	}
	until := (begin + (safeRO-begin)/2) &^ (s.log.PageSize() - 1)
	if until <= begin {
		return
	}
	_, _ = s.Compact(until)
}
