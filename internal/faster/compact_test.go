package faster

import (
	"encoding/binary"
	"fmt"
	"maps"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// TestCompactReclaimsDeadVersions is the space-reclamation acceptance
// test: fill, overwrite (so most of the stable prefix is dead versions),
// compact, and require that at least half of the reclaimed span was dead
// bytes (write amplification below 0.5) and that the device actually
// shrank. Every key must still resolve to its newest value.
func TestCompactReclaimsDeadVersions(t *testing.T) {
	s, mem := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()

	const n = 400
	// Four versions per key: ~75% of the prefix is dead.
	for round := uint64(0); round < 4; round++ {
		for i := uint64(0); i < n; i++ {
			if st, _ := sess.Upsert(key(i), u64(i+round*1000)); st != OK {
				t.Fatalf("upsert round %d key %d failed", round, i)
			}
		}
	}
	sess.CompletePending(true)

	cut := s.Log().SafeReadOnlyAddress()
	if cut <= s.Log().BeginAddress() {
		t.Skip("nothing became read-only")
	}
	storedBefore := mem.StoredBytes()

	sess.Park()
	stats, err := s.Compact(cut)
	sess.Unpark()
	if err != nil {
		t.Fatal(err)
	}
	if s.Log().BeginAddress() != cut {
		t.Fatalf("begin = %#x, want %#x", s.Log().BeginAddress(), cut)
	}
	if stats.ReclaimedBytes == 0 || stats.Copied == 0 {
		t.Fatalf("degenerate compaction: %+v", stats)
	}
	// Live bytes copied forward must be under half the reclaimed span:
	// the overwhelming majority of the prefix was dead versions.
	if 2*stats.CopiedBytes > stats.ReclaimedBytes {
		t.Fatalf("compaction write amp too high: copied %d of %d reclaimed",
			stats.CopiedBytes, stats.ReclaimedBytes)
	}

	// The metrics surface must agree with the returned stats.
	m := s.Metrics()
	if m.Compactions != 1 || m.ReclaimedBytes != stats.ReclaimedBytes ||
		m.CompactedBytes != stats.CopiedBytes || m.CompactedRecords != uint64(stats.Copied) {
		t.Fatalf("metrics disagree with stats: %+v vs %+v", m, stats)
	}
	if m.Log.TruncatedUntil != cut {
		t.Fatalf("device watermark = %#x, want %#x", m.Log.TruncatedUntil, cut)
	}

	// The in-memory device frees truncated extents, so real bytes came
	// back even accounting for the copied records at the tail.
	if storedAfter := mem.StoredBytes(); storedAfter >= storedBefore {
		t.Fatalf("device grew across compaction: %d -> %d bytes", storedBefore, storedAfter)
	}

	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != i+3000 {
			t.Fatalf("key %d after compact = (%d, %v), want (%d, OK)", i, got, st, i+3000)
		}
	}
}

// TestCompactConcurrentRMW races a compaction against a live RMW/read
// workload on the same keys: no committed increment may be lost and no
// deleted key may be resurrected by a copy-forward.
func TestCompactConcurrentRMW(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()

	const n = 200
	for i := uint64(0); i < n; i++ {
		if st, _ := sess.RMW(key(i), u64(1), nil); st == Pending {
			sess.CompletePending(true)
		}
	}
	// Push everything into the stable region so compaction has work.
	s.Log().ShiftReadOnlyToTail()
	sess.Refresh()
	cut := s.Log().SafeReadOnlyAddress()
	if cut <= s.Log().BeginAddress() {
		sess.Close()
		t.Skip("nothing became read-only")
	}

	// Background increments while the compaction runs. adds counts only
	// acknowledged increments.
	var adds [n]uint64
	stop := make(chan struct{})
	workDone := make(chan struct{})
	go func() {
		defer close(workDone)
		defer sess.Close()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				sess.CompletePending(true)
				return
			default:
			}
			k := uint64(rng.Intn(n))
			st, err := sess.RMW(key(k), u64(1), nil)
			if st == Pending {
				for _, r := range sess.CompletePending(true) {
					st, err = r.Status, r.Err
				}
			}
			if err != nil {
				t.Errorf("rmw during compaction: %v", err)
				return
			}
			if st == OK {
				atomic.AddUint64(&adds[k], 1)
			}
		}
	}()

	stats, err := s.Compact(cut)
	close(stop)
	<-workDone
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compacted %d copied / %d skipped under load", stats.Copied, stats.Skipped)

	check := s.StartSession()
	defer check.Close()
	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, check, key(i))
		want := 1 + atomic.LoadUint64(&adds[i])
		if st != OK || got != want {
			t.Fatalf("key %d = (%d, %v) after concurrent compaction, want (%d, OK)", i, got, st, want)
		}
	}
}

// TestCompactThenRecover proves recovery works from a checkpoint whose
// Begin sits above zero: compact (begin advances, device truncates),
// checkpoint, recover on a fresh handle, and verify every key.
func TestCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	const n = 600
	for round := 0; round < 2; round++ {
		for i := uint64(0); i < n; i++ {
			sess.Upsert(key(i), u64(i+uint64(round)*10000))
		}
	}
	sess.CompletePending(true)
	sess.Close()

	cut := s.Log().SafeReadOnlyAddress()
	if cut <= s.Log().BeginAddress() {
		t.Skip("nothing became read-only")
	}
	if _, err := s.Compact(cut); err != nil {
		t.Fatal(err)
	}
	info, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Begin != cut {
		t.Fatalf("checkpoint Begin = %#x, want compacted begin %#x", info.Begin, cut)
	}
	s.Close()

	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatalf("recover with Begin=%#x: %v", info.Begin, err)
	}
	defer r.Close()
	if got := r.Log().BeginAddress(); got != cut {
		t.Fatalf("recovered begin = %#x, want %#x", got, cut)
	}
	rs := r.StartSession()
	defer rs.Close()
	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i+10000 {
			t.Fatalf("recovered key %d = (%d, %v), want (%d, OK)", i, got, st, i+10000)
		}
	}
}

// TestCompactDeferredTruncationCatchesUp covers the checkpoint clamp:
// with a committed checkpoint whose Begin is low, a later compaction may
// advance begin but must hold the device truncate at the checkpoint's
// Begin (recovery still replays from there); the next checkpoint commits
// the new Begin and the deferred truncate catches up.
func TestCompactDeferredTruncationCatchesUp(t *testing.T) {
	dir := t.TempDir()
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	for i := uint64(0); i < 600; i++ {
		sess.Upsert(key(i), u64(i))
	}
	sess.CompletePending(true)
	sess.Close()

	info1, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	// More garbage, then compact past the checkpointed Begin.
	sess = s.StartSession()
	for i := uint64(0); i < 600; i++ {
		sess.Upsert(key(i), u64(i+1))
	}
	sess.CompletePending(true)
	sess.Close()
	cut := s.Log().SafeReadOnlyAddress()
	if cut <= info1.Begin {
		t.Skip("nothing became read-only past the first checkpoint")
	}
	if _, err := s.Compact(cut); err != nil {
		t.Fatal(err)
	}
	if got := s.Log().BeginAddress(); got != cut {
		t.Fatalf("begin = %#x, want %#x", got, cut)
	}
	// Device truncation must be pinned at the committed Begin: recovery
	// from the first checkpoint replays the log from there.
	if got := s.Log().TruncatedUntil(); got > info1.Begin {
		t.Fatalf("device truncated to %#x past committed checkpoint Begin %#x", got, info1.Begin)
	}

	// A new checkpoint commits Begin=cut; the deferred truncate catches up.
	info2, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Begin != cut {
		t.Fatalf("second checkpoint Begin = %#x, want %#x", info2.Begin, cut)
	}
	if got := s.Log().TruncatedUntil(); got != cut {
		t.Fatalf("deferred truncation did not catch up: watermark %#x, want %#x", got, cut)
	}
}

// TestBackgroundCompactionPolicy exercises the size-triggered maintainer:
// once the stable region outgrows CompactionThreshold the store compacts
// on its own.
func TestBackgroundCompactionPolicy(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8, CompactionThreshold: 16 << 10})
	sess := s.StartSession()
	for i := uint64(0); i < 3000; i++ {
		sess.Upsert(key(i), u64(i))
	}
	sess.CompletePending(true)
	s.Log().ShiftReadOnlyToTail()
	sess.Refresh()
	sess.Park()
	defer sess.Unpark()

	if !testutil.Eventually(10*time.Second, func() bool {
		return s.Metrics().Compactions > 0
	}) {
		m := s.Metrics()
		t.Fatalf("maintainer never compacted (begin=%#x safeRO=%#x threshold=%d)",
			m.Log.BeginAddress, m.Log.SafeReadOnlyAddress, 16<<10)
	}
	if s.Log().BeginAddress() == 0 {
		t.Fatal("compaction ran but begin never advanced")
	}
}

// TestCompactCrashTorture arms seeded crash points against a workload
// that interleaves compactions with checkpoints: whatever the crash
// tears — mid-copy, mid-truncate, mid-checkpoint — recovery from the
// surviving media must reproduce the last committed snapshot exactly.
func TestCompactCrashTorture(t *testing.T) {
	testutil.CheckGoroutines(t)
	seeds := []int64{0xC0DE0001, 0xC0DE0002, 0xC0DE0003}
	points := 12
	if testing.Short() {
		points = 6
	}
	const minBudget, maxBudget = 8 << 10, 72 << 10

	var crashed, committed atomic.Int64
	t.Run("matrix", func(t *testing.T) {
		for _, seed := range seeds {
			for p := 0; p < points/len(seeds)+1; p++ {
				budget := int64(minBudget + p*(maxBudget-minBudget)*len(seeds)/points)
				name := fmt.Sprintf("seed=%x/crash@%dK", seed, budget>>10)
				seed, budget := seed, budget
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runCompactTortureCase(t, seed, budget, &crashed, &committed)
				})
			}
		}
	})
	if crashed.Load() == 0 {
		t.Error("no compaction torture case reached its crash point")
	}
	if committed.Load() == 0 {
		t.Error("no compaction torture case committed a checkpoint")
	}
}

func runCompactTortureCase(t *testing.T, seed, crashBudget int64, crashed, committed *atomic.Int64) {
	const (
		ops       = 2500
		keys      = 120
		ckptEvery = 400
	)
	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	dir := t.TempDir()
	cfg := Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		IndexBuckets: 1 << 10, Device: faulty,
		ReadRetry:  retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
		WriteRetry: retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	faulty.CrashAfterBytes(crashBudget)

	mustDrain := func() Result {
		results, derr := sess.CompletePendingTimeout(10 * time.Second)
		if derr != nil {
			t.Fatalf("pending op hung instead of completing with an error: %v", derr)
		}
		if len(results) != 1 {
			t.Fatalf("drained %d results, want 1", len(results))
		}
		return results[0]
	}

	rng := rand.New(rand.NewSource(seed))
	model := map[uint64]uint64{}
	var snapshot map[uint64]uint64
	haveCkpt := false
	dead := false

	for i := 0; i < ops && !dead; i++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := rng.Uint64() >> 1
			if st, _ := sess.Upsert(key(k), u64(v)); st == OK {
				model[k] = v
			} else {
				dead = true
			}
		case 4, 5, 6:
			delta := uint64(rng.Intn(1000))
			st, _ := sess.RMW(key(k), u64(delta), nil)
			if st == Pending {
				st = mustDrain().Status
			}
			if st == OK {
				model[k] += delta
			} else {
				dead = true
			}
		case 7:
			switch st, _ := sess.Delete(key(k)); st {
			case OK, NotFound:
				delete(model, k)
			default:
				dead = true
			}
		default:
			out := make([]byte, 8)
			st, rerr := sess.Read(key(k), nil, out, nil)
			if rerr != nil {
				dead = true
				break
			}
			if st == Pending {
				st = mustDrain().Status
			}
			want, ok := model[k]
			switch {
			case st == Err:
				dead = true
			case ok && st == NotFound:
				t.Fatalf("op %d: acked key %d lost while the store was live", i, k)
			case !ok && st == OK:
				t.Fatalf("op %d: deleted key %d resurrected while the store was live", i, k)
			case ok && binary.LittleEndian.Uint64(out) != want:
				t.Fatalf("op %d: key %d = %d, want %d", i, k, binary.LittleEndian.Uint64(out), want)
			}
		}

		if !dead && (i+1)%ckptEvery == 0 {
			// Alternate compact and checkpoint so crash points land inside
			// both, including the deferred-truncation interplay between
			// them. Both need the session released.
			sess.Close()
			if cut := s.Log().SafeReadOnlyAddress(); cut > s.Log().BeginAddress() {
				if _, cerr := s.Compact(cut); cerr != nil {
					dead = true // crash landed inside the compaction
				}
			}
			if !dead {
				if _, cerr := s.Checkpoint(dir); cerr != nil {
					dead = true
				} else {
					snapshot = maps.Clone(model)
					haveCkpt = true
				}
			}
			sess = s.StartSession()
		}
	}

	if _, derr := sess.CompletePendingTimeout(10 * time.Second); derr != nil {
		t.Fatalf("post-workload drain hung: %v", derr)
	}
	sess.Close()
	s.Close()
	if dead {
		crashed.Add(1)
	}

	rcfg := cfg
	rcfg.Device = mem
	if !haveCkpt {
		if r, rerr := Recover(rcfg, dir); rerr == nil {
			r.Close()
			t.Fatal("Recover succeeded with no committed checkpoint")
		}
		return
	}
	committed.Add(1)

	r, err := Recover(rcfg, dir)
	if err != nil {
		t.Fatalf("recovery after crash@%d: %v", crashBudget, err)
	}
	defer r.Close()
	rs := r.StartSession()
	defer rs.Close()
	for k := uint64(0); k < keys; k++ {
		out := make([]byte, 8)
		st, rerr := rs.Read(key(k), nil, out, nil)
		if rerr != nil {
			t.Fatalf("recovered read of key %d: %v", k, rerr)
		}
		if st == Pending {
			results, derr := rs.CompletePendingTimeout(10 * time.Second)
			if derr != nil || len(results) != 1 {
				t.Fatalf("recovered read of key %d stalled: %v (%d results)", k, derr, len(results))
			}
			if results[0].Err != nil {
				t.Fatalf("recovered read of key %d: %v", k, results[0].Err)
			}
			st = results[0].Status
		}
		want, ok := snapshot[k]
		switch {
		case ok && st != OK:
			t.Errorf("committed key %d lost after recovery: status %v, want value %d", k, st, want)
		case ok && binary.LittleEndian.Uint64(out) != want:
			t.Errorf("committed key %d = %d after recovery, want %d", k, binary.LittleEndian.Uint64(out), want)
		case !ok && st != NotFound:
			t.Errorf("key %d resurrected past t2: status %v, want NotFound", k, st)
		}
	}
}
