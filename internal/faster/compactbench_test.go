package faster

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"repro/internal/device"
)

// openCompactBenchStore builds a hybrid store whose stable region holds
// mostly dead versions: gens generations of n small records, pushed out
// of the mutable region so Compact has real work.
func openCompactBenchStore(tb testing.TB, n uint64, gens int) (*Store, *device.Mem) {
	tb.Helper()
	dev := device.NewMem(device.MemConfig{})
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 14, BufferPages: 16,
		MutableFraction: 0.5, IndexBuckets: 1 << 12, Device: dev,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close(); dev.Close() })
	sess := s.StartSession()
	for g := 0; g < gens; g++ {
		for i := uint64(0); i < n; i++ {
			if st, err := sess.Upsert(key(i), u64(i+uint64(g))); st != OK {
				tb.Fatalf("preload: %v %v", st, err)
			}
		}
		// Seal each generation so the next one RCU-appends fresh
		// versions instead of updating in place: the stable prefix ends
		// up (gens-1)/gens dead.
		s.Log().ShiftReadOnlyToTail()
		sess.Refresh()
	}
	sess.CompletePending(true)
	sess.Close()
	return s, dev
}

// BenchmarkCompaction times a full copy-forward pass over a stable
// region that is ~75% dead versions and reports the space economics:
// bytes reclaimed, live bytes rewritten, and the resulting write
// amplification (copied/reclaimed — lower is better).
func BenchmarkCompaction(b *testing.B) {
	var reclaimed, copied float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, _ := openCompactBenchStore(b, 4096, 4)
		cut := s.Log().SafeReadOnlyAddress()
		if cut <= s.Log().BeginAddress() {
			b.Fatal("no stable region to compact")
		}
		b.StartTimer()
		stats, err := s.Compact(cut)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		reclaimed += float64(stats.ReclaimedBytes)
		copied += float64(stats.CopiedBytes)
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(reclaimed/float64(b.N), "reclaimed-B/op")
	b.ReportMetric(copied/float64(b.N), "copied-B/op")
	if reclaimed > 0 {
		b.ReportMetric(copied/reclaimed, "write-amp")
	}
}

// BenchmarkReadDuringCompaction measures read latency while a background
// writer continuously overwrites keys and compacts the stable region —
// the figure of merit for online space reclamation: how much does
// reclaiming cost the foreground?
func BenchmarkReadDuringCompaction(b *testing.B) {
	const n = 4096
	s, _ := openCompactBenchStore(b, n, 2)
	before := s.Metrics().Compactions

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := s.StartSession()
		defer w.Close()
		var i uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.Upsert(key(i%n), u64(i))
			if i++; i%n == 0 {
				w.Park()
				s.Log().ShiftReadOnlyToTail()
				if cut := s.Log().SafeReadOnlyAddress(); cut > s.Log().BeginAddress() {
					s.Compact(cut)
				}
				w.Unpark()
			}
		}
	}()

	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		kb := make([]byte, 8)
		out := make([]byte, 8)
		i := seq.Add(1) * 977
		for pb.Next() {
			binary.LittleEndian.PutUint64(kb, (i*0x9E3779B97F4A7C15)%n)
			i++
			st, err := sess.Read(kb, nil, out, nil)
			switch st {
			case OK, NotFound:
			case Pending:
				sess.CompletePending(true)
			default:
				b.Fatal(st, err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(s.Metrics().Compactions-before), "compactions")
}
