package faster

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// debugSpin, when non-nil, is called from CompletePending's no-progress
// path (test instrumentation only).
var debugSpin func(*Session)

// SetDebugSpinHook installs a callback invoked from CompletePending's
// no-progress wait path with a state snapshot. Test instrumentation only;
// pass nil to remove.
func SetDebugSpinHook(fn func(inFlight, retries, completed int, pendingIOs uint64, opDesc string)) {
	if fn == nil {
		debugSpin = nil
		debugIssue = nil
		return
	}
	var last atomic.Pointer[PendingOp]
	debugIssue = func(op *PendingOp) { last.Store(op) }
	var pathMu sync.Mutex
	paths := map[string]int{}
	debugPath = func(k string) {
		pathMu.Lock()
		paths[k]++
		pathMu.Unlock()
	}
	var walked atomic.Bool
	var spinCount atomic.Int64
	debugSpin = func(sess *Session) {
		if spinCount.Add(1) < 3_000_000 {
			goto report
		}
		if op := last.Load(); op != nil && !walked.Swap(true) {
			fmt.Printf("OPTRACE key=%x entryAddr=%#x:\n", op.key, op.entryAddr)
			for _, tl := range op.trace {
				fmt.Printf("  %s\n", tl)
			}
			// One-shot: walk the chain from the op's entry address.
			addr := op.entryAddr
			seen := map[uint64]bool{}
			for i := 0; i < 10000 && addr != 0 && addr >= 64; i++ {
				if seen[addr] {
					fmt.Printf("WALK CYCLE at %#x after %d hops\n", addr, i)
					break
				}
				seen[addr] = true
				buf := make([]byte, 64)
				done := make(chan error, 1)
				sess.s.log.ReadAsync(addr, buf, func(err error) { done <- err })
				if err := <-done; err != nil {
					fmt.Printf("WALK %#x read err: %v\n", addr, err)
					break
				}
				rec, ok := parseRecord(buf)
				if !ok {
					fmt.Printf("WALK %#x unparseable\n", addr)
					break
				}
				if rec.prev() >= addr {
					fmt.Printf("WALK UPWARD LINK: %#x -> prev=%#x key=%x flags inv=%v size=%d\n",
						addr, rec.prev(), rec.key, rec.invalid(), rec.size)
				}
				addr = rec.prev()
			}
			fmt.Printf("WALK done, %d records\n", len(seen))
		}
	report:
		sess.completed.mu.Lock()
		c := len(sess.completed.ops)
		sess.completed.mu.Unlock()
		desc := ""
		if op := last.Load(); op != nil {
			desc = fmt.Sprintf("%v@%#x err=%v buf=%d entryAddr=%#x vstop=%#x vcur=%#x head=%#x sro=%#x ro=%#x tail=%#x begin=%#x",
				op.kind, op.addr, op.err, len(op.buf), op.entryAddr, op.verifyStop, op.verifyCur,
				sess.s.log.HeadAddress(), sess.s.log.SafeReadOnlyAddress(), sess.s.log.ReadOnlyAddress(),
				sess.s.log.TailAddress(), sess.s.log.BeginAddress())
			buf := make([]byte, 64)
			done := make(chan error, 1)
			sess.s.log.ReadAsync(op.addr, buf, func(err error) { done <- err })
			if err := <-done; err == nil {
				if rec, ok := parseRecord(buf); ok {
					desc += fmt.Sprintf(" rec{prev=%#x key=%x inv=%v}", rec.prev(), rec.key, rec.invalid())
				}
			} else {
				desc += fmt.Sprintf(" readErr=%v", err)
			}
		}
		pathMu.Lock()
		desc += fmt.Sprintf(" paths=%v", paths)
		pathMu.Unlock()
		fn(sess.inFlight, len(sess.retries), c, sess.stat.pendingIOs.Load(), desc)
	}
}

// debugAssert reports whether internal invariant assertions are enabled
// (the process-wide FASTER_DEBUG_ASSERT switch in internal/metrics,
// shared with the hlog layer; flip it from tests with
// metrics.SetDebugAsserts).
func debugAssert() bool { return metrics.DebugAsserts() }

// debugIssue / debugPush observe pending-op lifecycle (tests only).
var (
	debugIssue func(*PendingOp)
	debugPush  func(*PendingOp)
)

// debugPath counts reissue paths (tests only).
var debugPath func(string)

// debugTraceOps records per-op hop traces (tests only).
var debugTraceOps = os.Getenv("FASTER_TRACE_OPS") != ""
