package faster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// readVar reads a variable-length value, following pendings.
func readVar(t *testing.T, sess *Session, k []byte, max int) ([]byte, Status) {
	t.Helper()
	out := make([]byte, max)
	st, err := sess.Read(k, nil, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	vlen := -1
	if st == Pending {
		for _, r := range sess.CompletePending(true) {
			st = r.Status
			vlen = r.ValueLen
		}
	}
	if vlen >= 0 {
		return out[:vlen], st
	}
	return out, st
}

func TestAppendOpsGrowsValues(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: AppendOps{MaxValueLen: 256}, BufferPages: 16})
	sess := s.StartSession()
	defer sess.Close()

	k := []byte("growing-key")
	for i := 0; i < 5; i++ {
		st, err := sess.RMW(k, []byte(fmt.Sprintf("part%d,", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				if r.Status != OK {
					t.Fatalf("pending append: %v (%v)", r.Status, r.Err)
				}
			}
		}
	}
	got, st := readVar(t, sess, k, 256)
	if st != OK {
		t.Fatalf("read = %v", st)
	}
	want := "part0,part1,part2,part3,part4,"
	if !bytes.HasPrefix(got, []byte(want)) {
		t.Fatalf("appended value = %q, want prefix %q", got, want)
	}
	// Growth forces seals + copy-updates: every RMW after the first must
	// have appended a record.
	if s.Stats().Appends < 5 {
		t.Fatalf("appends = %d, want >= 5 (grow-in-place impossible)", s.Stats().Appends)
	}
}

func TestSealedRecordUpsertFallsBackToAppend(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: BlobOps{}, BufferPages: 16})
	sess := s.StartSession()
	defer sess.Close()
	k := []byte("k")
	sess.Upsert(k, []byte("short"))
	// A longer value cannot fit: ConcurrentWriter declines, the record
	// seals, and the upsert appends.
	appendsBefore := s.Stats().Appends
	if st, err := sess.Upsert(k, []byte("much longer value than before")); err != nil || st != OK {
		t.Fatalf("upsert = (%v, %v)", st, err)
	}
	if s.Stats().Appends != appendsBefore+1 {
		t.Fatalf("expected exactly one append, got %d", s.Stats().Appends-appendsBefore)
	}
	got, st := readVar(t, sess, k, 64)
	if st != OK || !bytes.HasPrefix(got, []byte("much longer value")) {
		t.Fatalf("read after grow = (%q, %v)", got, st)
	}
	// Shrinking again goes in place.
	inPlaceBefore := s.Stats().InPlace
	sess.Upsert(k, []byte("tiny"))
	if s.Stats().InPlace != inPlaceBefore+1 {
		t.Fatal("shrinking upsert should update in place")
	}
}

func TestConcurrentAppendersLoseNothing(t *testing.T) {
	// Each worker appends its own marker bytes; the final value must
	// contain exactly workers*perW marker bytes in some order.
	s, _ := openTestStore(t, Config{Ops: AppendOps{MaxValueLen: 4096}, BufferPages: 64})
	const workers = 4
	const perW = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.Close()
			marker := []byte{byte('A' + w)}
			for i := 0; i < perW; i++ {
				st, err := sess.RMW([]byte("shared"), marker, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if st == Pending {
					sess.CompletePending(true)
				}
			}
		}(w)
	}
	wg.Wait()
	sess := s.StartSession()
	defer sess.Close()
	got, st := readVar(t, sess, []byte("shared"), 4096)
	if st != OK {
		t.Fatalf("read = %v", st)
	}
	counts := map[byte]int{}
	for _, b := range got {
		if b != 0 {
			counts[b]++
		}
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += counts[byte('A'+w)]
	}
	if total != workers*perW {
		t.Fatalf("appended %d markers, want %d (counts=%v)", total, workers*perW, counts)
	}
}

func TestCompactRollsLiveKeysForward(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	const n = 1200
	for i := uint64(0); i < n; i++ {
		if st, _ := sess.RMW(key(i), u64(i+1), nil); st == Pending {
			sess.CompletePending(true)
		}
	}
	// Delete a band of keys so compaction has garbage to drop.
	for i := uint64(0); i < n; i += 3 {
		sess.Delete(key(i))
	}
	sess.CompletePending(true)

	cut := s.Log().SafeReadOnlyAddress()
	if cut <= s.Log().BeginAddress() {
		t.Skip("nothing became read-only; buffer too large for this test")
	}
	// Compact waits for an epoch drain; our session must not pin it.
	sess.Park()
	stats, err := s.Compact(cut)
	sess.Unpark()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReclaimedBytes == 0 {
		t.Fatal("compaction reclaimed nothing")
	}
	t.Logf("compacted: %d keys copied, %d bytes reclaimed", stats.Copied, stats.ReclaimedBytes)
	if s.Log().BeginAddress() != cut {
		t.Fatalf("begin = %#x, want %#x", s.Log().BeginAddress(), cut)
	}

	// All live keys still resolve with their values; deleted keys stay
	// deleted.
	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, sess, key(i))
		if i%3 == 0 {
			if st != NotFound {
				t.Fatalf("deleted key %d resolves to (%d, %v) after compact", i, got, st)
			}
			continue
		}
		if st != OK || got != i+1 {
			t.Fatalf("key %d after compact = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
}

func TestCompactBeyondSafeROFails(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	sess.RMW(key(1), u64(1), nil)
	sess.Park()
	defer sess.Unpark()
	if _, err := s.Compact(s.Log().TailAddress() + 4096); err == nil {
		t.Fatal("compacting beyond safeRO should fail")
	}
}

func TestCompactEmptyRangeIsNoop(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	sess.Park()
	defer sess.Unpark()
	stats, err := s.Compact(s.Log().BeginAddress())
	if err != nil || stats.Copied != 0 || stats.ReclaimedBytes != 0 {
		t.Fatalf("noop compact = (%+v, %v)", stats, err)
	}
}

func TestPendingResultCarriesValueLen(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: BlobOps{}, BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	// A 24-byte value, then spill it to storage.
	sess.Upsert(key(0), []byte("twenty-four byte value!!"))
	for i := uint64(1); i < 1500; i++ {
		sess.Upsert(key(i), u64(i))
	}
	out := make([]byte, 64)
	st, err := sess.Read(key(0), nil, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != Pending {
		t.Skip("record still in memory; spill insufficient")
	}
	results := sess.CompletePending(true)
	if len(results) != 1 || results[0].Status != OK {
		t.Fatalf("results = %+v", results)
	}
	if results[0].ValueLen != 24 {
		t.Fatalf("ValueLen = %d, want 24", results[0].ValueLen)
	}
}

func TestDeepOnDiskChainDescent(t *testing.T) {
	// Regression: followChain must advance the fetch address when the
	// fetched record belongs to a tag-colliding sibling key — it used to
	// refetch the same record forever. A 1-bit tag over few buckets
	// forces many keys per (offset, tag) chain; a tiny buffer pushes the
	// chains to storage, so reads and RMWs must descend several records
	// deep on disk.
	s, _ := openTestStore(t, Config{TagBits: 1, IndexBuckets: 64, BufferPages: 8,
		MutableFraction: 0.3})
	sess := s.StartSession()
	defer sess.Close()
	const keys = 1500
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < keys; i++ {
			st, err := sess.RMW(key(i), u64(1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if st == Pending {
				for _, res := range sess.CompletePending(true) {
					if res.Status != OK {
						t.Fatalf("pending RMW: %v (%v)", res.Status, res.Err)
					}
				}
			}
		}
	}
	if s.Log().HeadAddress() == 0 {
		t.Fatal("chains never spilled; test is not exercising disk descent")
	}
	for i := uint64(0); i < keys; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != rounds {
			t.Fatalf("key %d = (%d, %v), want (%d, OK)", i, got, st, rounds)
		}
	}
	if s.Stats().PendingIOs == 0 {
		t.Fatal("no storage I/O happened; chains were never followed on disk")
	}
}
