// Package faster is a from-scratch Go implementation of the FASTER
// concurrent key-value store (Chandramouli et al., SIGMOD 2018).
//
// A Store combines the latch-free hash index of Section 3 with one of the
// three record allocators of Sections 4-6 (in-memory, append-only, or
// HybridLog) and exposes the paper's runtime interface: Read, Upsert, RMW
// (read-modify-write) and Delete, plus CompletePending for continuing
// operations that went asynchronous on a storage miss.
//
// All operations are issued through a Session, which owns an epoch-table
// slot and must be refreshed periodically — the package does this
// automatically every RefreshInterval operations, mirroring §2.5.
package faster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/retry"
	"repro/internal/xhash"
)

// Status reports the outcome of a store operation.
type Status int

const (
	// OK means the operation completed.
	OK Status = iota
	// NotFound means the key does not exist (reads and deletes).
	NotFound
	// Pending means the operation went asynchronous (storage I/O or
	// fuzzy-region deferral); it completes via CompletePending.
	Pending
	// Err means the operation failed; see the accompanying error.
	Err
	// WouldBlock means the operation needed storage I/O (or a fuzzy-region
	// deferral) but the session is resident-only (SetResidentOnly): nothing
	// was issued and no state changed. The caller routes the operation to
	// the store's io-worker pool (SubmitRead/SubmitRMW) instead of letting
	// this goroutine block on the miss.
	WouldBlock
)

func (s Status) String() string {
	switch s {
	case OK:
		return "OK"
	case NotFound:
		return "NOT_FOUND"
	case Pending:
		return "PENDING"
	case Err:
		return "ERROR"
	case WouldBlock:
		return "WOULD_BLOCK"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Config configures a Store.
type Config struct {
	// IndexBuckets is the initial number of hash buckets; the paper
	// defaults to #keys/2.
	IndexBuckets uint64
	// TagBits configures the index tag width (ablation §7.2.2); 0 means
	// the default (14).
	TagBits uint

	// PageBits, BufferPages, MutableFraction and Mode configure the
	// HybridLog (see hlog.Config). MutableFraction defaults to 0.9, the
	// paper's recommended 90:10 split.
	PageBits        uint
	BufferPages     int
	MutableFraction float64
	Mode            hlog.Mode

	// Device stores the log; required for hybrid and append-only modes.
	Device device.Device

	// Ops supplies the user read/update logic. Required.
	Ops ValueOps

	// CRDT enables delta records for RMW in the fuzzy region (§6.3).
	// Requires Ops to implement MergeOps.
	CRDT bool

	// MaxSessions bounds concurrently active sessions (epoch slots).
	// Default 64.
	MaxSessions int
	// RefreshInterval is the number of operations between automatic
	// epoch refreshes (paper: 256).
	RefreshInterval int

	// CompactionThreshold, when > 0, enables background compaction: a
	// maintenance goroutine watches the reclaimable region
	// [BeginAddress, SafeReadOnlyAddress) and, once it exceeds this many
	// bytes, compacts roughly the older half of it (see Store.Compact).
	// Ignored by in-memory stores (nothing on a device to reclaim).
	CompactionThreshold uint64

	// IOWorkers sizes the io-worker pool that completes resident-only
	// misses out of band (SubmitRead/SubmitRMW). Size it to the device's
	// useful parallelism; default 4. The pool starts lazily on the first
	// Submit, so stores that never use it pay nothing.
	IOWorkers int
	// IOQueueDepth bounds the pending-I/O admission queue shared by the
	// io-workers. A full queue sheds new submissions with ErrIOQueueFull
	// instead of queuing unboundedly. Default 16 * IOWorkers.
	IOQueueDepth int

	// ReadCacheBytes, when > 0, enables the latch-free record read cache
	// (readcache.go): cold reads completed from storage are copied into a
	// small in-memory circular log and the index entry is redirected to
	// the cached copy, so repeated reads of the same cold record skip the
	// device. The cache is volatile — checkpoints and recovery never
	// depend on it — and sized to roughly this many bytes. Ignored by
	// in-memory stores (nothing is ever cold).
	ReadCacheBytes uint64

	// ReadRetry bounds retries of pending record reads; the zero value
	// selects retry.DefaultRead(). Set MaxAttempts to 1 to disable
	// retries (every device error surfaces immediately).
	ReadRetry retry.Policy
	// WriteRetry bounds retries of page-flush writes; the zero value
	// selects retry.DefaultWrite(). When the budget is exhausted (or a
	// permanent failure is classified) the log tail is poisoned and the
	// store degrades to read-only instead of hanging.
	WriteRetry retry.Policy
}

func (c *Config) setDefaults() error {
	if c.Ops == nil {
		return errors.New("faster: Config.Ops is required")
	}
	if c.IndexBuckets == 0 {
		c.IndexBuckets = 1 << 16
	}
	if c.PageBits == 0 {
		c.PageBits = 22 // 4 MB pages, as in §7.4.1
	}
	if c.BufferPages == 0 {
		c.BufferPages = 32
	}
	if c.MutableFraction == 0 {
		c.MutableFraction = 0.9
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = 256
	}
	if c.IOWorkers <= 0 {
		c.IOWorkers = 4
	}
	if c.IOQueueDepth <= 0 {
		c.IOQueueDepth = 16 * c.IOWorkers
	}
	if c.ReadRetry == (retry.Policy{}) {
		c.ReadRetry = retry.DefaultRead()
	}
	if c.WriteRetry == (retry.Policy{}) {
		c.WriteRetry = retry.DefaultWrite()
	}
	if c.CRDT {
		if _, ok := c.Ops.(MergeOps); !ok {
			return errors.New("faster: CRDT requires Ops to implement MergeOps")
		}
	}
	return nil
}

// Stats aggregates store-level counters. Fuzzy and pending counters feed
// the Fig 12b / Fig 13 experiments.
type Stats struct {
	Operations   uint64 // completed user operations
	FuzzyRMWs    uint64 // RMWs deferred because the record was fuzzy
	PendingIOs   uint64 // operations that went to storage
	DeltaRecords uint64 // CRDT delta records appended
	InPlace      uint64 // updates applied in place
	Appends      uint64 // records appended (RCU, inserts, tombstones)
	FailedCAS    uint64 // lost index compare-and-swaps (retries)
}

// sessionStats is one session's block of hot-path counters. Every
// operation bumps at least two counters; when they were store-global
// atomics the resulting cache-line ping-pong dominated multi-core
// scaling (-cpu 16), so each live session gets a private block and is
// its only writer. The fields are still atomics because Stats() and
// the metrics scrapers read them from other goroutines.
//
// Blocks are recycled across sessions without zeroing: all counters
// are monotone, so aggregation sums every block ever handed out (the
// registry is bounded by the peak number of concurrent sessions).
type sessionStats struct {
	operations   atomic.Uint64
	reads        atomic.Uint64
	upserts      atomic.Uint64
	rmws         atomic.Uint64
	deletes      atomic.Uint64
	inPlace      atomic.Uint64
	appends      atomic.Uint64
	rcuCopies    atomic.Uint64
	failedCAS    atomic.Uint64
	fuzzyRMWs    atomic.Uint64
	deltaRecords atomic.Uint64
	pendingIOs   atomic.Uint64
	_            [128 - 12*8]byte // round up to two cache lines
}

// statTotals is the sum of every sessionStats block.
type statTotals struct {
	operations, reads, upserts, rmws, deletes uint64
	inPlace, appends, rcuCopies, failedCAS    uint64
	fuzzyRMWs, deltaRecords, pendingIOs       uint64
}

func (s *Store) acquireSessionStats() *sessionStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if n := len(s.statsFree); n > 0 {
		b := s.statsFree[n-1]
		s.statsFree = s.statsFree[:n-1]
		return b
	}
	b := new(sessionStats)
	s.statsAll = append(s.statsAll, b)
	return b
}

func (s *Store) releaseSessionStats(b *sessionStats) {
	s.statsMu.Lock()
	s.statsFree = append(s.statsFree, b)
	s.statsMu.Unlock()
}

func (s *Store) sumStats() statTotals {
	var t statTotals
	s.statsMu.Lock()
	blocks := s.statsAll
	s.statsMu.Unlock()
	for _, b := range blocks {
		t.operations += b.operations.Load()
		t.reads += b.reads.Load()
		t.upserts += b.upserts.Load()
		t.rmws += b.rmws.Load()
		t.deletes += b.deletes.Load()
		t.inPlace += b.inPlace.Load()
		t.appends += b.appends.Load()
		t.rcuCopies += b.rcuCopies.Load()
		t.failedCAS += b.failedCAS.Load()
		t.fuzzyRMWs += b.fuzzyRMWs.Load()
		t.deltaRecords += b.deltaRecords.Load()
		t.pendingIOs += b.pendingIOs.Load()
	}
	return t
}

// Store is a FASTER key-value store instance.
type Store struct {
	cfg      Config
	em       *epoch.Manager
	idx      *index.Index
	log      *hlog.Log
	ops      ValueOps
	merge    MergeOps // non-nil iff cfg.CRDT
	classify retry.Classifier

	health      atomic.Int32                // Health state machine (health.go)
	healthCause atomic.Pointer[healthCause] // first ReadOnly/Failed cause

	// Per-session counter blocks (see sessionStats): statsAll holds every
	// block ever handed out, statsFree the ones whose session closed.
	statsMu   sync.Mutex
	statsAll  []*sessionStats
	statsFree []*sessionStats

	// compactMu serializes compactions (manual and background); ckptBegin
	// is the Begin address of the newest committed checkpoint (0 until
	// one commits) — device truncation never passes it, so recovery can
	// always read every address its checkpoint needs (compact.go).
	compactMu sync.Mutex
	ckptBegin atomic.Uint64

	// sessions is the exactly-once session table (sessiontable.go):
	// per-GUID serial frontiers, persisted with every checkpoint.
	sessions *sessionTable

	// Background compaction maintainer (Config.CompactionThreshold).
	maintStop chan struct{}
	maintWG   sync.WaitGroup

	// io-worker pool (iopool.go), started lazily on the first Submit.
	ioOnce sync.Once
	iop    *ioPool

	// Read cache (readcache.go); nil unless Config.ReadCacheBytes > 0.
	rc *readCache
	// Cold-read coalescer (coalesce.go): same-page concurrent cold reads
	// share one device call. Nil when disabled.
	co *coalescer

	mx struct {
		pendingDepth      metrics.Gauge     // I/Os issued and not yet returned to the user
		pendingLatency    metrics.Histogram // issue -> completion-queue drain
		pendingRetries    metrics.Counter   // pending-read attempts retried after a transient fault
		healthTransitions metrics.Counter   // health state machine transitions
		compactions       metrics.Counter   // completed Compact runs
		compactedRecords  metrics.Counter   // live records copied forward
		compactedBytes    metrics.Counter   // bytes re-appended by compaction
		reclaimedBytes    metrics.Counter   // log bytes logically reclaimed (begin advances)
		sessionBinds      metrics.Counter   // BindSession attaches/resumes
		serialReplays     metrics.Counter   // duplicate serials answered from the saved reply
		serialFenced      metrics.Counter   // stale/gap/superseded serial submissions rejected

		// io-worker pool (iopool.go).
		ioSubmitted     metrics.Counter   // operations accepted by SubmitRead/SubmitRMW
		ioDelivered     metrics.Counter   // results delivered from a store completion
		ioShedTimeout   metrics.Counter   // sheds: per-op deadline expired
		ioShedQueueFull metrics.Counter   // sheds: admission queue full at submit
		ioQueueDepth    metrics.Gauge     // submissions waiting for a worker
		ioInflight      metrics.Gauge     // operations a worker has issued, not yet resolved
		ioQueueWait     metrics.Histogram // submit -> worker pickup
		ioService       metrics.Histogram // worker pickup -> result delivery

		// Cold-read coalescing (coalesce.go): pending reads that attached
		// to another read's in-flight device call instead of issuing their
		// own.
		ioCoalesced metrics.Counter
	}

	closed atomic.Bool
}

// Open creates a Store from cfg.
func Open(cfg Config) (*Store, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	// Epoch-table headroom: the session cap, the io-workers (each owns a
	// session), plus slack for maintenance/recovery goroutines.
	em := epoch.New(cfg.MaxSessions + cfg.IOWorkers + 8)
	idx, err := index.New(index.Config{InitialBuckets: cfg.IndexBuckets, TagBits: cfg.TagBits})
	if err != nil {
		return nil, err
	}
	s := &Store{cfg: cfg, em: em, idx: idx, ops: cfg.Ops, sessions: newSessionTable()}
	s.classify = device.ClassifierFor(cfg.Device)
	log, err := hlog.New(hlog.Config{
		PageBits:        cfg.PageBits,
		BufferPages:     cfg.BufferPages,
		MutableFraction: cfg.MutableFraction,
		Mode:            cfg.Mode,
		Device:          cfg.Device,
		Epoch:           em,
		Retry:           cfg.WriteRetry,
		Classify:        s.classify,
		// Flush retries mean the write path is limping: Degraded. A
		// poisoned tail means it is gone: ReadOnly. Reads keep serving
		// the resident region and flushed pages either way.
		OnFlushRetry:   func(_ int, err error) { s.raiseHealth(Degraded, err) },
		OnWriteFailure: func(err error) { s.raiseHealth(ReadOnly, err) },
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	if cfg.CRDT {
		s.merge = cfg.Ops.(MergeOps)
	}
	if cfg.Mode != hlog.ModeInMemory {
		if cfg.ReadCacheBytes > 0 {
			s.rc = newReadCache(s, cfg.ReadCacheBytes)
		}
		s.co = newCoalescer(s)
	}
	if cfg.CompactionThreshold > 0 && cfg.Mode != hlog.ModeInMemory {
		s.maintStop = make(chan struct{})
		s.maintWG.Add(1)
		go s.maintainerLoop()
	}
	return s, nil
}

// Log exposes the underlying HybridLog (log analytics, experiments).
func (s *Store) Log() *hlog.Log { return s.log }

// MaxSessions returns the configured session cap (epoch-table slots).
// Callers that pool sessions — the network front-end — size their pools
// against this so StartSession can never exhaust the epoch table.
func (s *Store) MaxSessions() int { return s.cfg.MaxSessions }

// Index exposes the underlying hash index (experiments, tests).
func (s *Store) Index() *index.Index { return s.idx }

// Epoch exposes the store's epoch manager.
func (s *Store) Epoch() *epoch.Manager { return s.em }

// Stats returns a snapshot of the store counters (summed across every
// session's counter block, live and closed).
func (s *Store) Stats() Stats {
	t := s.sumStats()
	return Stats{
		Operations:   t.operations,
		FuzzyRMWs:    t.fuzzyRMWs,
		PendingIOs:   t.pendingIOs,
		DeltaRecords: t.deltaRecords,
		InPlace:      t.inPlace,
		Appends:      t.appends,
		FailedCAS:    t.failedCAS,
	}
}

// GrowIndex doubles the hash index on the fly (Appendix B). The calling
// goroutine must not hold an active session.
func (s *Store) GrowIndex() error { return s.idx.Grow(s.em) }

// TruncateUntil garbage-collects the log prefix below addr
// (expiration-based GC, Appendix C). Index entries pointing below the new
// begin address are dropped lazily as operations encounter them. The
// begin advance is epoch-safe (no thread can still issue reads below it
// when the device range is freed), and device truncation is held back to
// the newest committed checkpoint's Begin so recovery stays possible; the
// deferred range is freed when the next checkpoint commits. addr should
// be a record boundary (page-aligned addresses always are) or future
// scans and compactions from the new begin will misparse. The calling
// goroutine must not hold an active (unparked) session.
func (s *Store) TruncateUntil(addr hlog.Address) error {
	if _, err := s.log.ShiftBeginAddress(addr, nil); err != nil {
		return err
	}
	return s.log.ApplyDeviceTruncation(s.deviceTruncateLimit(addr))
}

// deviceTruncateLimit clamps a device truncation target to the newest
// committed checkpoint's Begin (no checkpoint yet = unconstrained):
// recovery reads the log from its checkpoint's Begin, so storage below
// that must survive until a newer checkpoint commits.
func (s *Store) deviceTruncateLimit(addr hlog.Address) hlog.Address {
	if cb := s.ckptBegin.Load(); cb != 0 && cb < addr {
		return cb
	}
	return addr
}

// DeviceStoredBytes reports how many bytes the configured device
// currently retains, when the device can tell (the in-memory device
// frees truncated extents; file devices only track a watermark). ok is
// false when the device has no such notion.
func (s *Store) DeviceStoredBytes() (uint64, bool) {
	if src, can := s.cfg.Device.(interface{ StoredBytes() uint64 }); can {
		return src.StoredBytes(), true
	}
	return 0, false
}

// hashKey computes the index hash for key.
func hashKey(key []byte) uint64 { return xhash.Bytes(key) }

// Close shuts the store down. Outstanding sessions must be closed first.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.maintStop != nil {
		close(s.maintStop)
		s.maintWG.Wait()
	}
	if s.iop != nil {
		s.iop.shutdown()
	}
	s.em.Drain()
	return s.log.Close()
}
