package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/hlog"
)

// u64 encodes a uint64 as 8 little-endian bytes.
func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func key(i uint64) []byte { return u64(i) }

// openTestStore builds a hybrid-mode store with small pages so tests
// exercise page rolls, flushes and evictions quickly.
func openTestStore(t testing.TB, cfg Config) (*Store, *device.Mem) {
	t.Helper()
	dev := device.NewMem(device.MemConfig{})
	if cfg.Ops == nil {
		cfg.Ops = SumOps{}
	}
	if cfg.PageBits == 0 {
		cfg.PageBits = 12
	}
	if cfg.BufferPages == 0 {
		cfg.BufferPages = 8
	}
	if cfg.IndexBuckets == 0 {
		cfg.IndexBuckets = 1 << 10
	}
	if cfg.Device == nil {
		cfg.Device = dev
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		dev.Close()
	})
	return s, dev
}

// readU64 is a test helper: blocking read of an 8-byte value.
func readU64(t testing.TB, sess *Session, k []byte) (uint64, Status) {
	t.Helper()
	out := make([]byte, 8)
	st, err := sess.Read(k, nil, out, nil)
	if err != nil {
		t.Fatalf("Read(%x): %v", k, err)
	}
	if st == Pending {
		results := sess.CompletePending(true)
		if len(results) != 1 {
			t.Fatalf("CompletePending returned %d results, want 1", len(results))
		}
		st = results[0].Status
	}
	return binary.LittleEndian.Uint64(out), st
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Ops should fail")
	}
	if _, err := Open(Config{Ops: BlobOps{}, CRDT: true}); err == nil {
		t.Fatal("CRDT without MergeOps should fail")
	}
	if _, err := Open(Config{Ops: SumOps{}, Mode: hlog.ModeHybrid}); err == nil {
		t.Fatal("hybrid mode without device should fail")
	}
}

func TestUpsertReadRoundTrip(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: BlobOps{}})
	sess := s.StartSession()
	defer sess.Close()

	if st, err := sess.Upsert(key(1), u64(42)); err != nil || st != OK {
		t.Fatalf("Upsert = (%v, %v)", st, err)
	}
	got, st := readU64(t, sess, key(1))
	if st != OK || got != 42 {
		t.Fatalf("Read = (%d, %v), want (42, OK)", got, st)
	}
}

func TestReadMissingKey(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	if _, st := readU64(t, sess, key(404)); st != NotFound {
		t.Fatalf("status = %v, want NotFound", st)
	}
}

func TestUpsertOverwrites(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: BlobOps{}})
	sess := s.StartSession()
	defer sess.Close()
	sess.Upsert(key(1), u64(1))
	sess.Upsert(key(1), u64(2))
	got, st := readU64(t, sess, key(1))
	if st != OK || got != 2 {
		t.Fatalf("Read = (%d, %v), want (2, OK)", got, st)
	}
	// The second upsert should have been in place (mutable region).
	if s.Stats().InPlace == 0 {
		t.Fatal("expected at least one in-place update")
	}
}

func TestRMWInitialAndIncrement(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	for i := 0; i < 10; i++ {
		if st, err := sess.RMW(key(7), u64(5), nil); err != nil || st != OK {
			t.Fatalf("RMW %d = (%v, %v)", i, st, err)
		}
	}
	got, st := readU64(t, sess, key(7))
	if st != OK || got != 50 {
		t.Fatalf("counter = (%d, %v), want (50, OK)", got, st)
	}
}

func TestDeleteInMutableRegion(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	sess.RMW(key(1), u64(1), nil)
	if st, err := sess.Delete(key(1)); err != nil || st != OK {
		t.Fatalf("Delete = (%v, %v)", st, err)
	}
	if _, st := readU64(t, sess, key(1)); st != NotFound {
		t.Fatalf("read after delete = %v, want NotFound", st)
	}
	// Delete again: gone.
	if st, _ := sess.Delete(key(1)); st != NotFound {
		t.Fatalf("double delete = %v, want NotFound", st)
	}
}

func TestDeleteMissing(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	if st, _ := sess.Delete(key(1)); st != NotFound {
		t.Fatalf("Delete missing = %v, want NotFound", st)
	}
}

func TestRMWAfterDeleteReinserts(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	sess.RMW(key(1), u64(10), nil)
	sess.Delete(key(1))
	sess.RMW(key(1), u64(3), nil)
	got, st := readU64(t, sess, key(1))
	if st != OK || got != 3 {
		t.Fatalf("counter after delete+rmw = (%d, %v), want (3, OK)", got, st)
	}
}

func TestManyKeysInMemory(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 64})
	sess := s.StartSession()
	defer sess.Close()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if st, err := sess.RMW(key(i), u64(i), nil); err != nil || st != OK {
			t.Fatalf("RMW(%d) = (%v, %v)", i, st, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != i {
			t.Fatalf("Read(%d) = (%d, %v)", i, got, st)
		}
	}
}

func TestLargerThanMemorySpillAndReadBack(t *testing.T) {
	// 8 x 4KB buffer (~32 KB) but ~60 KB of records: older records spill
	// to the device and reads go async.
	s, dev := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	const n = 1500
	for i := uint64(0); i < n; i++ {
		if st, err := sess.RMW(key(i), u64(i+1), nil); err != nil || st != OK {
			t.Fatalf("RMW(%d) = (%v, %v)", i, st, err)
		}
	}
	if s.Log().HeadAddress() == 0 {
		t.Fatal("log never evicted; test is not exercising the spill path")
	}
	var pendingReads int
	for i := uint64(0); i < n; i++ {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, i)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case OK:
			if got := binary.LittleEndian.Uint64(out); got != i+1 {
				t.Fatalf("Read(%d) = %d, want %d", i, got, i+1)
			}
		case Pending:
			pendingReads++
			results := sess.CompletePending(true)
			for _, r := range results {
				if r.Status != OK {
					t.Fatalf("pending read of key %x: %v (err %v)", r.Key, r.Status, r.Err)
				}
				wantKey := r.Ctx.(uint64)
				if got := binary.LittleEndian.Uint64(r.Output); got != wantKey+1 {
					t.Fatalf("pending Read(%d) = %d, want %d", wantKey, got, wantKey+1)
				}
			}
		default:
			t.Fatalf("Read(%d) = %v", i, st)
		}
	}
	if pendingReads == 0 {
		t.Fatal("no reads went to storage; spill path untested")
	}
	if dev.Stats().Reads == 0 {
		t.Fatal("device saw no reads")
	}
}

func TestRMWAgainstEvictedRecordCopyUpdates(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	// Insert key 0 first, then push it to disk with other traffic.
	sess.RMW(key(0), u64(100), nil)
	for i := uint64(1); i < 1500; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	// Now RMW key 0 again: its record should be on storage.
	st, err := sess.RMW(key(0), u64(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st == Pending {
		results := sess.CompletePending(true)
		for _, r := range results {
			if r.Status != OK {
				t.Fatalf("pending RMW: %v (%v)", r.Status, r.Err)
			}
		}
	}
	got, rst := readU64(t, sess, key(0))
	if rst != OK || got != 111 {
		t.Fatalf("counter = (%d, %v), want (111, OK)", got, rst)
	}
}

func TestConcurrentRMWSumsExactly(t *testing.T) {
	// The headline correctness property of in-place updates: concurrent
	// fetch-and-add RMWs on shared keys lose no updates.
	s, _ := openTestStore(t, Config{BufferPages: 32, IndexBuckets: 128})
	const (
		workers = 8
		perW    = 2000
		keys    = 16
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.Close()
			for i := 0; i < perW; i++ {
				k := key(uint64(i % keys))
				st, err := sess.RMW(k, u64(1), nil)
				if err != nil {
					t.Errorf("RMW: %v", err)
					return
				}
				if st == Pending {
					sess.CompletePending(true)
				}
			}
		}(w)
	}
	wg.Wait()

	sess := s.StartSession()
	defer sess.Close()
	var total uint64
	for i := uint64(0); i < keys; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK {
			t.Fatalf("Read(%d) = %v", i, st)
		}
		total += got
	}
	if want := uint64(workers * perW); total != want {
		t.Fatalf("sum of counters = %d, want %d (lost updates!)", total, want)
	}
}

func TestConcurrentUpsertReadNoTornValues(t *testing.T) {
	// Writers alternate two 64-byte patterns; readers must always see
	// word-consistent data (each 8-byte word from one of the patterns).
	s, _ := openTestStore(t, Config{Ops: BlobOps{}, BufferPages: 16})
	patA := make([]byte, 64)
	patB := make([]byte, 64)
	for i := range patA {
		patA[i] = 0xAA
		patB[i] = 0xBB
	}
	k := key(9)
	{
		sess := s.StartSession()
		sess.Upsert(k, patA)
		sess.Close()
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.Close()
			pat := patA
			if w == 1 {
				pat = patB
			}
			for i := 0; i < 3000; i++ {
				sess.Upsert(k, pat)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		sess := s.StartSession()
		defer sess.Close()
		out := make([]byte, 64)
		for i := 0; i < 3000; i++ {
			st, err := sess.Read(k, nil, out, nil)
			if err != nil || st != OK {
				t.Errorf("Read = (%v, %v)", st, err)
				return
			}
			for off := 0; off < 64; off += 8 {
				w := binary.LittleEndian.Uint64(out[off:])
				if w != 0xAAAAAAAAAAAAAAAA && w != 0xBBBBBBBBBBBBBBBB {
					t.Errorf("torn word %#x at offset %d", w, off)
					return
				}
			}
		}
	}()
	wg.Wait()
}

func TestAppendOnlyMode(t *testing.T) {
	s, _ := openTestStore(t, Config{Mode: hlog.ModeAppendOnly, BufferPages: 16})
	sess := s.StartSession()
	defer sess.Close()
	for i := 0; i < 100; i++ {
		st, err := sess.RMW(key(1), u64(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			sess.CompletePending(true)
		}
	}
	got, st := readU64(t, sess, key(1))
	if st != OK || got != 100 {
		t.Fatalf("counter = (%d, %v), want (100, OK)", got, st)
	}
	// Append-only means no (or almost no) in-place updates.
	if ip := s.Stats().InPlace; ip > 0 {
		t.Fatalf("append-only store performed %d in-place updates", ip)
	}
	if s.Stats().Appends < 50 {
		t.Fatalf("append-only store performed too few appends: %+v", s.Stats())
	}
}

func TestInMemoryMode(t *testing.T) {
	dev := device.NewNull()
	s, err := Open(Config{Ops: SumOps{}, Mode: hlog.ModeInMemory, PageBits: 12,
		IndexBuckets: 256, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.Close()
	for i := uint64(0); i < 5000; i++ {
		if st, err := sess.RMW(key(i%100), u64(1), nil); err != nil || st != OK {
			t.Fatalf("RMW = (%v, %v)", st, err)
		}
	}
	got, st := readU64(t, sess, key(0))
	if st != OK || got != 50 {
		t.Fatalf("counter = (%d, %v), want (50, OK)", got, st)
	}
	// Everything mutable: updates after the first insert are in place.
	stats := s.Stats()
	if stats.InPlace < 4000 {
		t.Fatalf("in-memory mode in-place count = %d, want ~4900", stats.InPlace)
	}
}

func TestVariableLengthKeysAndValues(t *testing.T) {
	s, _ := openTestStore(t, Config{Ops: BlobOps{}, BufferPages: 16})
	sess := s.StartSession()
	defer sess.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d-%s", i, string(make([]byte, i%40))))
		v := []byte(fmt.Sprintf("value-%d-%s", i, string(make([]byte, (i*7)%100))))
		if st, err := sess.Upsert(k, v); err != nil || st != OK {
			t.Fatalf("Upsert var = (%v, %v)", st, err)
		}
		out := make([]byte, len(v))
		st, err := sess.Read(k, nil, out, nil)
		if err != nil || st != OK {
			t.Fatalf("Read var = (%v, %v)", st, err)
		}
		if string(out) != string(v) {
			t.Fatalf("value mismatch for %q", k)
		}
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	if _, err := sess.Upsert(nil, u64(1)); err == nil {
		t.Fatal("empty key upsert should fail")
	}
	if _, err := sess.Read([]byte{}, nil, make([]byte, 8), nil); err == nil {
		t.Fatal("empty key read should fail")
	}
}

func TestSessionClosedRejectsOps(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	sess.Close()
	if _, err := sess.Upsert(key(1), u64(1)); err != ErrSessionClosed {
		t.Fatalf("err = %v, want ErrSessionClosed", err)
	}
}

func TestStatsProgression(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	for i := 0; i < 100; i++ {
		sess.RMW(key(uint64(i)), u64(1), nil)
	}
	st := s.Stats()
	if st.Operations != 100 {
		t.Fatalf("Operations = %d, want 100", st.Operations)
	}
	if st.Appends == 0 {
		t.Fatal("no appends counted")
	}
}

func TestPendingResultCarriesContext(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	// Spill key 0 to storage.
	sess.RMW(key(0), u64(7), nil)
	for i := uint64(1); i < 1500; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	sess.CompletePending(true)

	type myCtx struct{ tag string }
	out := make([]byte, 8)
	st, err := sess.Read(key(0), nil, out, &myCtx{tag: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if st != Pending {
		t.Skip("record still resident")
	}
	results := sess.CompletePending(true)
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	r := results[0]
	if r.Kind != "read" || r.Status != OK {
		t.Fatalf("result = %+v", r)
	}
	if c, ok := r.Ctx.(*myCtx); !ok || c.tag != "hello" {
		t.Fatalf("context not preserved: %+v", r.Ctx)
	}
	if got := binary.LittleEndian.Uint64(r.Output); got != 7 {
		t.Fatalf("output = %d, want 7", got)
	}
}

func TestCompletePendingNonBlocking(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	defer sess.Close()
	sess.RMW(key(0), u64(1), nil)
	for i := uint64(1); i < 1500; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	sess.CompletePending(true)
	st, _ := sess.Read(key(0), nil, make([]byte, 8), nil)
	if st != Pending {
		t.Skip("record still resident")
	}
	// Non-blocking drain returns immediately; eventually (after waiting)
	// the result arrives.
	_ = sess.CompletePending(false)
	results := sess.CompletePending(true)
	total := len(results)
	if total != 1 {
		// The non-blocking call may have caught it already; then the
		// blocking call returns none. Accept either split, but exactly
		// one result overall is required... recheck by reading again.
		if total != 0 {
			t.Fatalf("unexpected result count %d", total)
		}
	}
}

func TestRefreshIntervalHonored(t *testing.T) {
	s, _ := openTestStore(t, Config{RefreshInterval: 16, BufferPages: 64})
	sess := s.StartSession()
	defer sess.Close()
	e0 := s.Epoch().Current()
	// Drive enough page rolls to bump the epoch several times; the
	// session's automatic refreshes must keep the safe epoch moving.
	for i := uint64(0); i < 3000; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	if s.Epoch().Current() == e0 {
		t.Skip("no epoch bumps; nothing to verify")
	}
	if s.Epoch().Safe() == 0 {
		t.Fatal("safe epoch never advanced despite periodic refreshes")
	}
}
