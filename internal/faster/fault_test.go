package faster

import (
	"errors"
	"testing"

	"repro/internal/device"
	"repro/internal/retry"
)

// openFaultyStore builds a store over a fault-injecting device with read
// retries disabled, so every injected read fault surfaces to the caller
// (the default policy would heal sparse deterministic faults silently;
// retry behavior has its own tests).
func openFaultyStore(t *testing.T) (*Store, *device.Faulty) {
	t.Helper()
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: faulty,
		ReadRetry: retry.Policy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	return s, faulty
}

// spill fills the store until records evict to the device.
func spill(t *testing.T, s *Store, sess *Session, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		if st, err := sess.RMW(key(i), u64(i+1), nil); err != nil {
			t.Fatal(err)
		} else if st == Pending {
			sess.CompletePending(true)
		}
	}
	if s.Log().HeadAddress() == 0 {
		t.Fatal("store did not spill; fault test has nothing to exercise")
	}
}

func TestInjectedReadFaultsSurfaceAsErrors(t *testing.T) {
	s, faulty := openFaultyStore(t)
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	faulty.FailEveryNthRead(3)
	defer faulty.FailEveryNthRead(0)

	var okCount, errCount int
	for i := uint64(0); i < 1500; i += 7 {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
				if r.Status == Err && !errors.Is(r.Err, device.ErrInjected) {
					t.Fatalf("unexpected error kind: %v", r.Err)
				}
			}
		}
		switch st {
		case OK:
			okCount++
		case Err:
			errCount++
		default:
			t.Fatalf("Read = %v", st)
		}
	}
	if errCount == 0 {
		t.Fatal("no injected faults surfaced; injection not exercised")
	}
	if okCount == 0 {
		t.Fatal("every read failed; fault rate miscalibrated")
	}
	injected, _ := faulty.InjectedFaults()
	if injected == 0 {
		t.Fatal("device recorded no injected read faults")
	}
}

func TestStoreRecoversAfterTransientReadFaults(t *testing.T) {
	s, faulty := openFaultyStore(t)
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	// Inject heavily, issue reads (some fail), then heal the device and
	// verify every key reads back correctly — no state was corrupted.
	faulty.FailEveryNthRead(2)
	for i := uint64(0); i < 300; i++ {
		out := make([]byte, 8)
		if st, _ := sess.Read(key(i), nil, out, nil); st == Pending {
			sess.CompletePending(true)
		}
	}
	faulty.FailEveryNthRead(0)

	for i := uint64(0); i < 1500; i += 13 {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("after healing: key %d = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
}

func TestRMWFaultDoesNotLoseOtherUpdates(t *testing.T) {
	s, faulty := openFaultyStore(t)
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	faulty.FailEveryNthRead(4)
	var applied uint64
	for i := uint64(0); i < 200; i++ {
		st, err := sess.RMW(key(i), u64(1000), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
			}
		}
		if st == OK {
			applied++
		}
	}
	faulty.FailEveryNthRead(0)
	if applied == 0 {
		t.Fatal("no RMW applied under faults")
	}
	// Every key still reads as either its original value or the updated
	// one — never garbage.
	for i := uint64(0); i < 200; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK {
			t.Fatalf("key %d unreadable after faults: %v", i, st)
		}
		if got != i+1 && got != i+1+1000 {
			t.Fatalf("key %d = %d, want %d or %d (corruption)", i, got, i+1, i+1+1001)
		}
	}
}

func TestFlushFaultsRetryAndEvictionStaysSafe(t *testing.T) {
	// Failed flushes never advance the durability watermark, so eviction
	// can never pass an unflushed page; the log retries failed flushes
	// with backoff. With every other write failing, a spilling workload
	// must still complete with all data intact.
	s, faulty := openFaultyStore(t)
	sess := s.StartSession()
	defer sess.Close()
	faulty.FailEveryNthWrite(2)
	const n = 1500
	for i := uint64(0); i < n; i++ {
		if st, err := sess.RMW(key(i), u64(i+1), nil); err != nil {
			t.Fatal(err)
		} else if st == Pending {
			for _, r := range sess.CompletePending(true) {
				if r.Status != OK {
					t.Fatalf("pending op failed under write faults: %v (%v)", r.Status, r.Err)
				}
			}
		}
	}
	faulty.FailEveryNthWrite(0)
	if s.Log().HeadAddress() == 0 {
		t.Fatal("log never evicted; flush retries apparently never succeeded")
	}
	if _, injected := faulty.InjectedFaults(); injected == 0 {
		t.Fatal("no write faults were injected")
	}
	for i := uint64(0); i < n; i += 11 {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("key %d = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
}
