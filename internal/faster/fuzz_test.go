package faster

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzVarLenFraming drives the VarLenOps length-framing helpers with
// arbitrary payloads and arbitrary raw buffers: encode/decode must
// round-trip, decoding must tolerate the oversized output buffers the
// read path hands it, and no input may panic the decoder or make it
// return out-of-bounds slices.
func FuzzVarLenFraming(f *testing.F) {
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("hello"), []byte{8, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte("trailing"))
	f.Add(bytes.Repeat([]byte{0xff}, 64), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload, raw []byte) {
		// Encode→decode round-trips.
		framed := VarLenEncode(payload)
		got, ok := VarLenDecode(framed)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip failed: ok=%v got=%q want=%q", ok, got, payload)
		}

		// Read output buffers are sized for the largest value, so the
		// decoder must also accept a frame with arbitrary trailing bytes
		// and still return exactly the framed payload.
		wide := append(append([]byte(nil), framed...), raw...)
		got, ok = VarLenDecode(wide)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("widened decode failed: ok=%v got=%q want=%q", ok, got, payload)
		}

		// Counter decoding agrees with the framing: exactly an 8-byte
		// payload is a counter.
		c, ok := VarLenCounter(framed)
		if ok != (len(payload) == 8) {
			t.Fatalf("VarLenCounter ok=%v for %d-byte payload", ok, len(payload))
		}
		if ok && c != int64(binary.LittleEndian.Uint64(payload)) {
			t.Fatalf("VarLenCounter = %d, want %d", c, int64(binary.LittleEndian.Uint64(payload)))
		}

		// Arbitrary bytes (torn frames, hostile headers) must decode
		// cleanly or fail cleanly — never panic, never escape the buffer.
		if p, ok := VarLenDecode(raw); ok {
			if len(p) > len(raw)-varLenHeader {
				t.Fatalf("decoded %d bytes from a %d-byte buffer", len(p), len(raw))
			}
			if n := binary.LittleEndian.Uint64(raw); uint64(len(p)) != n {
				t.Fatalf("payload length %d != header %d", len(p), n)
			}
		}
		VarLenCounter(raw)
	})
}
