package faster

import (
	"errors"
	"fmt"

	"repro/internal/device"
)

// Health is the store's fault-domain state machine:
//
//	Healthy ──► Degraded ──► ReadOnly ──► Failed
//
// Transitions are monotone (a store never heals back automatically;
// recovery is a restart via Recover) and are driven by classified I/O
// failures:
//
//   - Healthy:  no faults observed.
//   - Degraded: transient faults are being retried (flush retries,
//     pending-read retries). All operations still succeed; latency may
//     suffer.
//   - ReadOnly: the write path is gone — a page flush exhausted its retry
//     budget or failed permanently, poisoning the log tail. Reads keep
//     serving the resident region and already-flushed pages; Upsert, RMW
//     and Delete fail fast with ErrReadOnly instead of hanging on a dead
//     device.
//   - Failed:   the read path is gone too — record reads hit permanent
//     device failures after the write path was already lost. Resident
//     (in-memory) reads still work; anything needing the device errors.
type Health int32

const (
	Healthy Health = iota
	Degraded
	ReadOnly
	Failed
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case ReadOnly:
		return "read-only"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// ErrReadOnly is returned by write operations once the store has degraded
// to read-only (the log tail is poisoned). The underlying cause is
// available from HealthCause.
var ErrReadOnly = errors.New("faster: store is read-only (write path lost)")

// ErrStoreFailed is returned by write operations once the store has failed
// entirely (write and read paths lost).
var ErrStoreFailed = errors.New("faster: store failed (device lost)")

// healthCause records the first error behind a ReadOnly/Failed transition.
type healthCause struct{ err error }

// Health returns the store's current fault-domain state.
func (s *Store) Health() Health { return Health(s.health.Load()) }

// HealthCause returns the first error that forced the store out of the
// writable states, or nil while Healthy/Degraded.
func (s *Store) HealthCause() error {
	if c := s.healthCause.Load(); c != nil {
		return c.err
	}
	return nil
}

// raiseHealth moves the state machine monotonically up to at least h,
// recording cause on the first entry into ReadOnly or worse and counting
// the transition.
func (s *Store) raiseHealth(h Health, cause error) {
	for {
		cur := s.health.Load()
		if int32(h) <= cur {
			return
		}
		if s.health.CompareAndSwap(cur, int32(h)) {
			if h >= ReadOnly && cause != nil {
				s.healthCause.CompareAndSwap(nil, &healthCause{err: cause})
			}
			s.mx.healthTransitions.Inc()
			return
		}
	}
}

// checkWritable gates the write path on the health state.
func (s *Store) checkWritable() error {
	switch s.Health() {
	case ReadOnly:
		if cause := s.HealthCause(); cause != nil {
			return fmt.Errorf("%w: %w", ErrReadOnly, cause)
		}
		return ErrReadOnly
	case Failed:
		if cause := s.HealthCause(); cause != nil {
			return fmt.Errorf("%w: %w", ErrStoreFailed, cause)
		}
		return ErrStoreFailed
	default:
		return nil
	}
}

// noteReadFailure escalates the state machine for a pending read that
// failed for good. A single failed read does not condemn the store — the
// error may be scoped to one address — but a device-level permanent
// failure after the write path is already gone means nothing on storage
// is reachable: Failed.
func (s *Store) noteReadFailure(err error) {
	if err == nil {
		return
	}
	if s.Health() >= ReadOnly && errors.Is(err, device.ErrPermanent) {
		s.raiseHealth(Failed, err)
	}
}
