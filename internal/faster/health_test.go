package faster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/retry"
)

// openHardenedStore builds a store over a fault-injecting device with the
// given retry policies (zero values select the defaults).
func openHardenedStore(t *testing.T, readP, writeP retry.Policy) (*Store, *device.Faulty) {
	t.Helper()
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 4, MutableFraction: 0.5,
		IndexBuckets: 1 << 10, Device: faulty,
		ReadRetry: readP, WriteRetry: writeP,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close() // may error on a deliberately broken device
		mem.Close()
	})
	return s, faulty
}

// degradeToReadOnly breaks the device and drives fresh-key inserts until
// the write-path loss is classified, failing the test if the store hangs
// instead of degrading (the acceptance bar: classified degradation within
// the retry budget, no livelock).
func degradeToReadOnly(t *testing.T, s *Store, sess *Session, faulty *device.Faulty) {
	t.Helper()
	faulty.BreakPermanently()
	deadline := time.Now().Add(10 * time.Second)
	for i := uint64(1 << 20); s.Health() < ReadOnly; i++ {
		if time.Now().After(deadline) {
			t.Fatal("store never transitioned to read-only after write-path loss")
		}
		sess.Upsert(key(i), u64(i)) // fresh keys: every one allocates
	}
}

func TestWritePathLossFlipsStoreReadOnly(t *testing.T) {
	s, faulty := openHardenedStore(t, retry.Policy{},
		retry.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond})
	sess := s.StartSession()
	defer sess.Close()

	// Resident data while the device still works.
	for i := uint64(0); i < 50; i++ {
		if st, err := sess.Upsert(key(i), u64(i+1)); st != OK {
			t.Fatalf("setup upsert: %v (%v)", st, err)
		}
	}

	degradeToReadOnly(t, s, sess, faulty)

	if cause := s.HealthCause(); cause == nil || !errors.Is(cause, device.ErrInjected) {
		t.Fatalf("HealthCause = %v, want the injected device error", cause)
	}

	// Every write op fails fast with the classified sentinel.
	if _, err := sess.Upsert(key(1), u64(9)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Upsert on read-only store: %v, want ErrReadOnly", err)
	}
	if _, err := sess.RMW(key(1), u64(9), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RMW on read-only store: %v, want ErrReadOnly", err)
	}
	if _, err := sess.Delete(key(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete on read-only store: %v, want ErrReadOnly", err)
	}
	if _, err := s.Checkpoint(t.TempDir()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Checkpoint on read-only store: %v, want ErrReadOnly", err)
	}

	// The resident mutable region still serves reads.
	okReads := 0
	for i := uint64(0); i < 50; i++ {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
			}
		}
		if st == OK {
			okReads++
		}
	}
	if okReads == 0 {
		t.Fatal("read-only store served no resident reads")
	}

	// No busy-loop against the dead device: the retry counter is frozen.
	m1 := s.Log().Metrics()
	time.Sleep(50 * time.Millisecond)
	m2 := s.Log().Metrics()
	if m2.FlushRetries != m1.FlushRetries {
		t.Fatalf("flush retries still growing on a poisoned store: %d -> %d",
			m1.FlushRetries, m2.FlushRetries)
	}

	sm := s.Metrics()
	if sm.Health < ReadOnly || sm.HealthTransitions == 0 {
		t.Fatalf("metrics: health=%v transitions=%d", sm.Health, sm.HealthTransitions)
	}
	if v := sm.Series()["faster.health"]; v < 2 {
		t.Fatalf("faster.health series = %v, want >= 2", v)
	}
}

func TestReadPathLossEscalatesToFailed(t *testing.T) {
	s, faulty := openHardenedStore(t, retry.Policy{},
		retry.Policy{MaxAttempts: 2, BaseDelay: 100 * time.Microsecond})
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	degradeToReadOnly(t, s, sess, faulty)

	// An on-disk read now hits the dead device: the pending op must
	// complete (not hang) with a classified, exhausted error.
	out := make([]byte, 8)
	st, err := sess.Read(key(0), nil, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != Pending {
		t.Fatalf("Read(0) = %v, want Pending (key should be on disk)", st)
	}
	results, terr := sess.CompletePendingTimeout(5 * time.Second)
	if terr != nil {
		t.Fatalf("pending read did not complete on a dead device: %v", terr)
	}
	if len(results) != 1 || results[0].Status != Err {
		t.Fatalf("results = %+v, want one Err", results)
	}
	if !errors.Is(results[0].Err, device.ErrInjected) || !retry.IsExhausted(results[0].Err) {
		t.Fatalf("pending error = %v, want exhausted injected", results[0].Err)
	}

	// Write path already gone + permanent read loss: Failed.
	if h := s.Health(); h != Failed {
		t.Fatalf("health after read-path loss = %v, want failed", h)
	}
	if _, err := sess.Upsert(key(1), u64(1)); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("Upsert on failed store: %v, want ErrStoreFailed", err)
	}
}

func TestPendingReadRetriesHealTransientFaults(t *testing.T) {
	s, faulty := openHardenedStore(t, retry.Policy{}, retry.Policy{})
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	faulty.FailEveryNthRead(2)
	for i := uint64(0); i < 200; i += 7 {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				if r.Status != OK {
					t.Fatalf("read of key %d failed despite retry budget: %v", i, r.Err)
				}
			}
		}
	}
	faulty.FailEveryNthRead(0)

	if s.Metrics().PendingRetries == 0 {
		t.Fatal("no pending-read retries recorded; faults were never retried")
	}
	if h := s.Health(); h != Degraded {
		t.Fatalf("health = %v, want degraded (retried but never lost a path)", h)
	}
}

func TestCompletePendingTimeoutBoundsTheWait(t *testing.T) {
	s, faulty := openHardenedStore(t, retry.Policy{}, retry.Policy{})
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	faulty.InjectLatency(50*time.Millisecond, 0)
	out := make([]byte, 8)
	st, err := sess.Read(key(0), nil, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != Pending {
		t.Fatalf("Read(0) = %v, want Pending (key should be on disk)", st)
	}
	results, terr := sess.CompletePendingTimeout(5 * time.Millisecond)
	if !errors.Is(terr, ErrPendingTimeout) {
		t.Fatalf("CompletePendingTimeout = %v, want ErrPendingTimeout", terr)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results before the 50ms read could finish", len(results))
	}

	// The op is still pending, not lost: an unbounded drain completes it.
	faulty.InjectLatency(0, 0)
	final := sess.CompletePending(true)
	if len(final) != 1 || final[0].Status != OK {
		t.Fatalf("after timeout, drain = %+v, want one OK", final)
	}
}

func TestRebuildIndexSurvivesReadFaults(t *testing.T) {
	s, faulty := openHardenedStore(t, retry.Policy{}, retry.Policy{})
	sess := s.StartSession()
	spill(t, s, sess, 1500)
	sess.Close()

	// Every 3rd device read fails; the scan's bounded retry must heal each
	// one (the default budget of 4 attempts beats a period of 3).
	faulty.FailEveryNthRead(3)
	if err := s.RebuildIndex(); err != nil {
		t.Fatalf("RebuildIndex under read faults: %v", err)
	}
	faulty.FailEveryNthRead(0)
	if r, _ := faulty.InjectedFaults(); r == 0 {
		t.Fatal("no read faults injected; rebuild exercised nothing")
	}

	rs := s.StartSession()
	defer rs.Close()
	for i := uint64(0); i < 1500; i += 97 {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("rebuilt-under-fault index: key %d = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
}
