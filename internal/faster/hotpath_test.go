package faster

import (
	"encoding/binary"
	"sync/atomic"
	"testing"

	"repro/internal/device"
	"repro/internal/hlog"
)

// Hot-path allocation and scaling coverage: the uint64 fast path must
// stay at 0 allocs/op (TestHotPathZeroAlloc is the regression gate run
// by scripts/check.sh), and the benchmarks measure single-op vs batched
// throughput across -cpu 1,4,16.

const hotKeys = 1 << 10

func openHotStore(tb testing.TB) *Store {
	tb.Helper()
	s, err := Open(Config{
		Mode:         hlog.ModeInMemory,
		PageBits:     20,
		IndexBuckets: 1 << 12,
		Ops:          SumOps{},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	preload := s.StartSession()
	key := make([]byte, 8)
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	for k := uint64(1); k <= hotKeys; k++ {
		binary.LittleEndian.PutUint64(key, k)
		if st, err := preload.Upsert(key, one); st != OK {
			tb.Fatalf("preload upsert: %v %v", st, err)
		}
	}
	preload.Close()
	return s
}

// TestHotPathZeroAlloc is the allocation-regression gate: steady-state
// Read, in-place Upsert, in-place RMW and their batched forms on the
// uint64 fast path must not touch the heap.
func TestHotPathZeroAlloc(t *testing.T) {
	s := openHotStore(t)
	sess := s.StartSession()
	defer sess.Close()

	key := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, 7)
	out := make([]byte, 8)
	val := make([]byte, 8)
	binary.LittleEndian.PutUint64(val, 42)

	// Warm every path once so one-time work (first append, scratch
	// growth) happens outside the measurement.
	if st, err := sess.Upsert(key, val); st != OK {
		t.Fatalf("warm upsert: %v %v", st, err)
	}
	if st, err := sess.RMW(key, val, nil); st != OK {
		t.Fatalf("warm rmw: %v %v", st, err)
	}
	if st, err := sess.Read(key, nil, out, nil); st != OK {
		t.Fatalf("warm read: %v %v", st, err)
	}

	check := func(name string, f func()) {
		t.Helper()
		if got := testing.AllocsPerRun(200, f); got != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", name, got)
		}
	}
	check("Read", func() { sess.Read(key, nil, out, nil) })
	check("Upsert", func() { sess.Upsert(key, val) })
	check("RMW", func() { sess.RMW(key, val, nil) })

	// Serial-stamped ops ride the same fast path: the full exactly-once
	// bracket (admission check, op, commit with reply capture) must not
	// touch the heap either once the reply buffer has reached capacity.
	if _, err := sess.Bind("hot-path"); err != nil {
		t.Fatalf("bind: %v", err)
	}
	var serial uint64
	stamped := func(f func()) func() {
		return func() {
			serial++
			if v, _, err := sess.SerialCheck(serial); v != SerialApply || err != nil {
				t.Fatalf("serial %d: %v %v", serial, v, err)
			}
			f()
			sess.SerialCommit(serial, out)
		}
	}
	warmStamped := stamped(func() { sess.Upsert(key, val) })
	warmStamped()
	check("SerialUpsert", stamped(func() { sess.Upsert(key, val) }))
	check("SerialRMW", stamped(func() { sess.RMW(key, val, nil) }))

	// Batched forms reuse the session's batch scratch after one warmup.
	ops := make([]BatchOp, 16)
	fill := func() {
		for i := range ops {
			kind := BatchRead
			if i%2 == 1 {
				kind = BatchUpsert
			}
			ops[i] = BatchOp{Kind: kind, Key: key, Value: val, Output: out}
		}
	}
	fill()
	if err := sess.ExecBatch(ops); err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	check("ExecBatch", func() {
		fill()
		if err := sess.ExecBatch(ops); err != nil {
			t.Fatal(err)
		}
	})
}

// TestExecBatchMixed drives every batch kind, duplicate keys, and the
// shared-reservation append path through one batch and checks the
// results against single-op semantics.
func TestExecBatchMixed(t *testing.T) {
	s := openHotStore(t)
	sess := s.StartSession()
	defer sess.Close()

	k := func(n uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, n)
		return b
	}
	v := func(n uint64) []byte { return k(n) }

	out1 := make([]byte, 8)
	out2 := make([]byte, 8)
	ops := []BatchOp{
		// A fresh-key upsert run, including a duplicate (last write wins).
		{Kind: BatchUpsert, Key: k(5001), Value: v(10)},
		{Kind: BatchUpsert, Key: k(5002), Value: v(20)},
		{Kind: BatchUpsert, Key: k(5001), Value: v(30)},
		{Kind: BatchUpsert, Key: k(5003), Value: v(40)},
		// Reads of a preloaded key and a batch-written key.
		{Kind: BatchRead, Key: k(7), Output: out1},
		{Kind: BatchRead, Key: k(5001), Output: out2},
		// RMW and delete.
		{Kind: BatchRMW, Key: k(5002), Value: v(5)},
		{Kind: BatchDelete, Key: k(5003)},
		// Errors surface per-op.
		{Kind: BatchUpsert, Key: nil, Value: v(1)},
	}
	if err := sess.ExecBatch(ops); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Status{OK, OK, OK, OK, OK, OK, OK, OK, Err} {
		if ops[i].Status != want {
			t.Errorf("op %d: status %v (err %v), want %v", i, ops[i].Status, ops[i].Err, want)
		}
	}
	if got := binary.LittleEndian.Uint64(out1); got != 1 {
		t.Errorf("read preloaded key: got %d, want 1", got)
	}
	if got := binary.LittleEndian.Uint64(out2); got != 30 {
		t.Errorf("duplicate upsert: got %d, want 30 (last write)", got)
	}

	// Verify the follow-up state with single ops.
	out := make([]byte, 8)
	if st, _ := sess.Read(k(5002), nil, out, nil); st != OK || binary.LittleEndian.Uint64(out) != 25 {
		t.Errorf("rmw result: %v %d, want OK 25", st, binary.LittleEndian.Uint64(out))
	}
	if st, _ := sess.Read(k(5003), nil, out, nil); st != NotFound {
		t.Errorf("deleted key: %v, want NotFound", st)
	}
}

// TestTypedBatches covers ReadBatch/UpsertBatch including the
// statuses-slice and nil-statuses forms.
func TestTypedBatches(t *testing.T) {
	s := openHotStore(t)
	sess := s.StartSession()
	defer sess.Close()

	const n = 32
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	outs := make([][]byte, n)
	for i := range keys {
		keys[i] = make([]byte, 8)
		binary.LittleEndian.PutUint64(keys[i], uint64(9000+i))
		vals[i] = make([]byte, 8)
		binary.LittleEndian.PutUint64(vals[i], uint64(i+1))
		outs[i] = make([]byte, 8)
	}
	statuses := make([]Status, n)
	if err := sess.UpsertBatch(keys, vals, statuses); err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st != OK {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	if err := sess.ReadBatch(keys, outs, statuses); err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if statuses[i] != OK || binary.LittleEndian.Uint64(outs[i]) != uint64(i+1) {
			t.Fatalf("read %d: %v value %d", i, statuses[i], binary.LittleEndian.Uint64(outs[i]))
		}
	}
	// Absent keys report NotFound; with nil statuses that is not an error.
	missing := [][]byte{[]byte("nope-key")}
	mout := [][]byte{make([]byte, 8)}
	if err := sess.ReadBatch(missing, mout, nil); err != nil {
		t.Fatalf("ReadBatch nil statuses: %v", err)
	}
	if err := sess.ReadBatch(keys, outs[:1], nil); err != ErrBatchShape {
		t.Fatalf("shape mismatch: %v, want ErrBatchShape", err)
	}
}

func openHotHybrid(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Config{
		Mode:         hlog.ModeHybrid,
		PageBits:     12,
		BufferPages:  8,
		Device:       device.NewMem(device.MemConfig{}),
		IndexBuckets: 1 << 9,
		Ops:          SumOps{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestExecBatchReadOnlyCopy shifts the read-only offset between
// batches, so every round's upserts land on read-only records and the
// batch path must publish fresh tail records instead of updating in
// place.
func TestExecBatchReadOnlyCopy(t *testing.T) {
	s := openHotHybrid(t)
	sess := s.StartSession()
	defer sess.Close()

	key := make([]byte, 8)
	val := make([]byte, 8)
	ops := make([]BatchOp, 8)
	for round := 0; round < 16; round++ {
		for i := range ops {
			binary.LittleEndian.PutUint64(key, uint64(i+1))
			binary.LittleEndian.PutUint64(val, uint64(round))
			ops[i] = BatchOp{Kind: BatchUpsert,
				Key:   append([]byte(nil), key...),
				Value: append([]byte(nil), val...)}
		}
		if err := sess.ExecBatch(ops); err != nil {
			t.Fatal(err)
		}
		for i := range ops {
			if ops[i].Status != OK {
				t.Fatalf("round %d op %d: %v %v", round, i, ops[i].Status, ops[i].Err)
			}
		}
		s.Log().ShiftReadOnlyToTail()
	}
	// Every round after the first lands on read-only records: all 8 ops
	// of all 16 rounds must have appended (none updated in place).
	if st := s.Stats(); st.Appends < 16*8 || st.InPlace != 0 {
		t.Fatalf("batch did not take the append path (appends=%d inPlace=%d)", st.Appends, st.InPlace)
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(key, 3)
	if st, _ := sess.Read(key, nil, out, nil); st != OK || binary.LittleEndian.Uint64(out) != 15 {
		t.Fatalf("final read: %v %d, want OK 15", st, binary.LittleEndian.Uint64(out))
	}
}

// ---------------------------------------------------------------------------
// Benchmarks (run with -cpu 1,4,16 for the scaling picture)
// ---------------------------------------------------------------------------

// benchKeys sizes the benchmark working set (~32 MB of log records plus
// a 16 MB index) to exceed the cache hierarchy, so the benchmarks
// measure the memory system the way a real uniform workload does.
const benchKeys = 1 << 20

func openBenchStore(tb testing.TB) *Store {
	tb.Helper()
	s, err := Open(Config{
		Mode:         hlog.ModeInMemory,
		PageBits:     22,
		IndexBuckets: 1 << 18,
		Ops:          SumOps{},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	preload := s.StartSession()
	const chunk = 256
	keys := make([][]byte, chunk)
	vals := make([][]byte, chunk)
	backing := make([]byte, 8*chunk)
	one := make([]byte, 8)
	binary.LittleEndian.PutUint64(one, 1)
	for k := uint64(0); k < benchKeys; k += chunk {
		for j := 0; j < chunk; j++ {
			kb := backing[j*8 : j*8+8]
			binary.LittleEndian.PutUint64(kb, k+uint64(j)+1)
			keys[j], vals[j] = kb, one
		}
		if err := preload.UpsertBatch(keys, vals, nil); err != nil {
			tb.Fatal(err)
		}
	}
	preload.Close()
	return s
}

// benchKey scatters i across the keyspace (golden-ratio multiply) so
// successive operations touch unrelated cache lines.
func benchKey(buf []byte, i uint64) {
	binary.LittleEndian.PutUint64(buf, (i*0x9E3779B97F4A7C15)&(benchKeys-1)+1)
}

func BenchmarkReadU64(b *testing.B) {
	s := openBenchStore(b)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		key := make([]byte, 8)
		out := make([]byte, 8)
		i := seq.Add(1) * 977
		for pb.Next() {
			benchKey(key, i)
			i++
			if st, err := sess.Read(key, nil, out, nil); st != OK {
				b.Fatal(st, err)
			}
		}
	})
}

func BenchmarkUpsertU64(b *testing.B) {
	s := openBenchStore(b)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		key := make([]byte, 8)
		val := make([]byte, 8)
		binary.LittleEndian.PutUint64(val, 1)
		i := seq.Add(1) * 977
		for pb.Next() {
			benchKey(key, i)
			i++
			if st, err := sess.Upsert(key, val); st != OK {
				b.Fatal(st, err)
			}
		}
	})
}

func BenchmarkRMWU64(b *testing.B) {
	s := openBenchStore(b)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		key := make([]byte, 8)
		delta := make([]byte, 8)
		binary.LittleEndian.PutUint64(delta, 1)
		i := seq.Add(1) * 977
		for pb.Next() {
			benchKey(key, i)
			i++
			if st, err := sess.RMW(key, delta, nil); st != OK {
				b.Fatal(st, err)
			}
		}
	})
}

// BenchmarkBatchReadU64 is BenchmarkReadU64 issued through ExecBatch in
// windows of 64; the ratio of the two at -cpu 16 is the batch-speedup
// acceptance number.
func BenchmarkBatchReadU64(b *testing.B) {
	s := openBenchStore(b)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		const batch = 64
		keys := make([]byte, 8*batch)
		outs := make([]byte, 8*batch)
		ops := make([]BatchOp, batch)
		i := seq.Add(1) * 977
		for pb.Next() {
			// One pb.Next() per operation: assemble a window of 64, then
			// execute it when full.
			slot := int(i % batch)
			benchKey(keys[slot*8:slot*8+8], i)
			ops[slot] = BatchOp{Kind: BatchRead,
				Key:    keys[slot*8 : slot*8+8],
				Output: outs[slot*8 : slot*8+8]}
			i++
			if slot == batch-1 {
				if err := sess.ExecBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkBatchUpsertU64(b *testing.B) {
	s := openBenchStore(b)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess := s.StartSession()
		defer sess.Close()
		const batch = 64
		keys := make([]byte, 8*batch)
		val := make([]byte, 8)
		binary.LittleEndian.PutUint64(val, 1)
		ops := make([]BatchOp, batch)
		i := seq.Add(1) * 977
		for pb.Next() {
			slot := int(i % batch)
			benchKey(keys[slot*8:slot*8+8], i)
			ops[slot] = BatchOp{Kind: BatchUpsert,
				Key:   keys[slot*8 : slot*8+8],
				Value: val}
			i++
			if slot == batch-1 {
				if err := sess.ExecBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
