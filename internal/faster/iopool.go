package faster

import (
	"errors"
	"sync"
	"time"
)

// The io-worker pool completes resident-only misses out of band: a
// session goroutine that gets WouldBlock from a Read/RMW hands the
// operation to SubmitRead/SubmitRMW and is free immediately — the miss is
// admitted into a bounded queue and driven to completion by a small pool
// of workers sized to the device's useful parallelism (Config.IOWorkers).
// Each worker owns a private Session and runs the same continuation
// machinery CompletePending does, so the full slow path (chain descents,
// truncation races, verified RMW publishes, fuzzy deferrals) works
// unchanged; only the goroutine driving it differs.
//
// Degradation is explicit and bounded in both directions:
//
//   - A full admission queue sheds at submit time with ErrIOQueueFull —
//     the device is already saturated, so queueing more work only grows
//     tail latency.
//   - A per-request deadline guarantees the done callback fires by the
//     deadline even when the device never answers: the worker sheds the
//     request with ErrOpDeadline and keeps tracking the orphaned store
//     completion so it can be dropped when (if) it lands.
//
// Neither shed touches the health ladder: deadline and admission sheds
// are back-pressure, not device failures.

// ErrIOQueueFull is returned by SubmitRead/SubmitRMW when the io-worker
// admission queue (Config.IOQueueDepth) is full. The operation was not
// started; the caller sheds it explicitly (the RESP front-end replies
// -OVERLOADED).
var ErrIOQueueFull = errors.New("faster: io-worker queue full")

// ErrStoreClosed is returned for submissions racing (or following) store
// shutdown, and delivered to queued requests the shutdown drained.
var ErrStoreClosed = errors.New("faster: store closed")

var errNilDone = errors.New("faster: Submit requires a done callback")

// ioRequest is one operation handed to the pool. key and input are
// request-owned copies (the submitter may reuse its buffers as soon as
// Submit returns); the read output buffer is worker-allocated so a
// deadline-shed request can never race a late device completion into a
// caller's memory.
type ioRequest struct {
	kind        opKind // opRead or opRMW
	key         []byte
	input       []byte
	outLen      int // read output buffer length
	deadlineNs  int64
	ctx         any
	done        func(Result)
	submittedNs int64
	pickedNs    int64
	delivered   bool // worker-local: done already fired (completion or shed)
}

func (r *ioRequest) kindString() string {
	if r.kind == opRMW {
		return "rmw"
	}
	return "read"
}

type ioPool struct {
	s    *Store
	reqs chan *ioRequest
	stop chan struct{}
	wg   sync.WaitGroup

	// mu orders submits against shutdown: shutdown takes the write side,
	// so once closed is observed no request can slip into reqs behind the
	// final drain.
	mu     sync.RWMutex
	closed bool
}

// startIOPool backs the ioOnce lazy start: stores that never Submit run
// zero extra goroutines.
func (s *Store) startIOPool() {
	if s.closed.Load() {
		return // racing Close: leave iop nil, Submit reports ErrStoreClosed
	}
	p := &ioPool{
		s:    s,
		reqs: make(chan *ioRequest, s.cfg.IOQueueDepth),
		stop: make(chan struct{}),
	}
	p.wg.Add(s.cfg.IOWorkers)
	for i := 0; i < s.cfg.IOWorkers; i++ {
		go p.worker()
	}
	s.iop = p
}

// SubmitRead hands a read to the io-worker pool. The result — including a
// worker-owned output buffer of outLen bytes whose ownership transfers to
// the callback — is delivered exactly once via done, from a worker
// goroutine, no later than deadline (the zero time means no deadline).
// A deadline shed completes with Status Err and an error wrapping
// context.DeadlineExceeded; whether the underlying fetch still finishes
// is unobservable and irrelevant for reads. key and input are copied.
func (s *Store) SubmitRead(key, input []byte, outLen int, deadline time.Time, ctx any, done func(Result)) error {
	return s.submitIO(opRead, key, input, outLen, deadline, ctx, done)
}

// SubmitRMW hands a read-modify-write to the io-worker pool; see
// SubmitRead for the delivery contract. A deadline-shed RMW may or may
// not apply — the update can still publish after the shed fires — which
// is the same indeterminacy a crashed connection always had.
func (s *Store) SubmitRMW(key, input []byte, deadline time.Time, ctx any, done func(Result)) error {
	return s.submitIO(opRMW, key, input, 0, deadline, ctx, done)
}

func (s *Store) submitIO(kind opKind, key, input []byte, outLen int, deadline time.Time, ctx any, done func(Result)) error {
	if done == nil {
		return errNilDone
	}
	if len(key) == 0 {
		return errKeyEmpty
	}
	if s.closed.Load() {
		return ErrStoreClosed
	}
	s.ioOnce.Do(s.startIOPool)
	if s.iop == nil {
		return ErrStoreClosed
	}
	r := &ioRequest{
		kind:        kind,
		key:         append([]byte(nil), key...),
		outLen:      outLen,
		ctx:         ctx,
		done:        done,
		submittedNs: time.Now().UnixNano(),
	}
	if input != nil {
		r.input = append([]byte(nil), input...)
	}
	if !deadline.IsZero() {
		r.deadlineNs = deadline.UnixNano()
	}
	return s.iop.submit(r)
}

func (p *ioPool) submit(r *ioRequest) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrStoreClosed
	}
	select {
	case p.reqs <- r:
		p.s.mx.ioSubmitted.Inc()
		p.s.mx.ioQueueDepth.Inc()
		return nil
	default:
		p.s.mx.ioShedQueueFull.Inc()
		return ErrIOQueueFull
	}
}

// shutdown stops the workers and fails everything still queued. Called
// from Store.Close before the epoch drain, so worker sessions release
// their slots first.
func (p *ioPool) shutdown() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	// The workers each drained the queue on their way out, but all of
	// them may have exited before the last submit landed.
	for {
		select {
		case r := <-p.reqs:
			p.s.mx.ioQueueDepth.Dec()
			p.fail(r, ErrStoreClosed)
		default:
			return
		}
	}
}

func (p *ioPool) fail(r *ioRequest, err error) {
	if r.delivered {
		return
	}
	r.delivered = true
	r.done(Result{Kind: r.kindString(), Key: r.key, Input: r.input,
		Status: Err, Err: err, Ctx: r.ctx})
}

// worker is one pool goroutine: admit requests, issue them on a private
// session, drain the session's completions back to the submitters, and
// shed anything that outlives its deadline. The loop blocks only on the
// admission queue — never on device I/O — so a latency spike on cold
// misses leaves admission (and every other worker) live.
func (p *ioPool) worker() {
	defer p.wg.Done()
	sess := p.s.StartSession()
	var live []*ioRequest
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		if len(live) == 0 {
			// Idle: block until work or shutdown. Parked, so an idle
			// worker pins no epoch — otherwise it would stall flushes,
			// compactions and checkpoints exactly like a wedged session.
			sess.Park()
			select {
			case r := <-p.reqs:
				sess.Unpark()
				live = p.pickup(sess, r, live)
			case <-p.stop:
				sess.Unpark()
				p.finish(sess, live)
				return
			}
		} else {
			// Busy: admit everything already queued without blocking.
			admitting := true
			for admitting {
				select {
				case r := <-p.reqs:
					live = p.pickup(sess, r, live)
				case <-p.stop:
					p.finish(sess, live)
					return
				default:
					admitting = false
				}
			}
		}

		progressed := false
		live, progressed = p.reap(sess, live)
		live = p.shedExpired(live)
		if len(live) == 0 || progressed {
			continue
		}
		// Nothing moved: run epoch maintenance (fuzzy deferrals resolve
		// when the safe read-only offset republishes) and wait briefly,
		// still admitting new work and shutdown promptly.
		sess.Refresh()
		p.s.em.Drain()
		timer.Reset(100 * time.Microsecond)
		select {
		case r := <-p.reqs:
			if !timer.Stop() {
				<-timer.C
			}
			live = p.pickup(sess, r, live)
		case <-p.stop:
			if !timer.Stop() {
				<-timer.C
			}
			p.finish(sess, live)
			return
		case <-timer.C:
		}
	}
}

// pickup issues a freshly admitted request on the worker session. A
// request that resolves synchronously (the record became resident, or the
// store rejects the op) is delivered immediately; one that goes Pending
// joins the live set until its completion is reaped.
func (p *ioPool) pickup(sess *Session, r *ioRequest, live []*ioRequest) []*ioRequest {
	p.s.mx.ioQueueDepth.Dec()
	r.pickedNs = time.Now().UnixNano()
	p.s.mx.ioQueueWait.Observe(time.Duration(r.pickedNs - r.submittedNs))
	if r.deadlineNs > 0 && r.pickedNs >= r.deadlineNs {
		// Dead on arrival: it waited out its whole budget in the queue.
		p.s.mx.ioShedTimeout.Inc()
		p.fail(r, ErrOpDeadline)
		return live
	}
	sess.opDeadlineNs = r.deadlineNs
	var st Status
	var err error
	var out []byte
	switch r.kind {
	case opRMW:
		st, err = sess.RMW(r.key, r.input, r)
	default:
		out = make([]byte, r.outLen)
		st, err = sess.Read(r.key, r.input, out, r)
	}
	sess.opDeadlineNs = 0
	if st == Pending {
		p.s.mx.ioInflight.Inc()
		return append(live, r)
	}
	r.delivered = true
	p.s.mx.ioDelivered.Inc()
	p.s.mx.ioService.Observe(time.Duration(time.Now().UnixNano() - r.pickedNs))
	r.done(Result{Kind: r.kindString(), Key: r.key, Input: r.input,
		Output: out, Status: st, Err: err, Ctx: r.ctx})
	return live
}

// reap drains the worker session's completions and delivers them to their
// submitters. Completions of already-shed requests are dropped (their
// done fired at the deadline); Result.Input is copied back into the
// request-owned buffer so the session can recycle its op immediately.
func (p *ioPool) reap(sess *Session, live []*ioRequest) ([]*ioRequest, bool) {
	results := sess.CompletePending(false)
	if len(results) == 0 {
		return live, false
	}
	for i := range results {
		res := &results[i]
		r, ok := res.Ctx.(*ioRequest)
		if !ok {
			continue
		}
		for j, lr := range live {
			if lr == r {
				live[j] = live[len(live)-1]
				live[len(live)-1] = nil
				live = live[:len(live)-1]
				break
			}
		}
		p.s.mx.ioInflight.Dec()
		if r.delivered {
			continue // shed at its deadline; the late completion is dropped
		}
		r.delivered = true
		p.s.mx.ioDelivered.Inc()
		p.s.mx.ioService.Observe(time.Duration(time.Now().UnixNano() - r.pickedNs))
		if res.Input != nil && r.input != nil {
			// The session-owned input copy (which RMW verdict channels
			// write into) is recycled with the op; hand the caller the
			// request-owned buffer instead.
			res.Input = append(r.input[:0], res.Input...)
		}
		res.Ctx = r.ctx // the request was the session-level ctx; unwrap
		r.done(*res)
	}
	return live, true
}

// shedExpired delivers a deadline shed for every live request past its
// deadline. The request stays in the live set so its eventual store
// completion is still reaped (and dropped) — the submitter is unblocked
// by the deadline no matter what the device does.
func (p *ioPool) shedExpired(live []*ioRequest) []*ioRequest {
	now := time.Now().UnixNano()
	for _, r := range live {
		if r.delivered || r.deadlineNs == 0 || now < r.deadlineNs {
			continue
		}
		r.delivered = true
		p.s.mx.ioShedTimeout.Inc()
		r.done(Result{Kind: r.kindString(), Key: r.key, Input: r.input,
			Status: Err, Err: ErrOpDeadline, Ctx: r.ctx})
	}
	return live
}

// finish is the worker's shutdown path: fail its share of the queue,
// drain outstanding I/O under a bounded wait, and fail whatever is left.
func (p *ioPool) finish(sess *Session, live []*ioRequest) {
	draining := true
	for draining {
		select {
		case r := <-p.reqs:
			p.s.mx.ioQueueDepth.Dec()
			p.fail(r, ErrStoreClosed)
		default:
			draining = false
		}
	}
	results, err := sess.CompletePendingTimeout(2 * time.Second)
	for i := range results {
		res := &results[i]
		r, ok := res.Ctx.(*ioRequest)
		if !ok {
			continue
		}
		p.s.mx.ioInflight.Dec()
		if r.delivered {
			continue
		}
		r.delivered = true
		p.s.mx.ioDelivered.Inc()
		if res.Input != nil && r.input != nil {
			res.Input = append(r.input[:0], res.Input...)
		}
		res.Ctx = r.ctx
		r.done(*res)
	}
	for _, r := range live {
		p.fail(r, ErrStoreClosed)
	}
	if err == nil {
		sess.Close()
		return
	}
	// The device is wedged past the drain budget: park the session so it
	// pins no epoch and abandon it — the store is closing anyway, and
	// blocking shutdown on a dead device is the stall this pool exists to
	// prevent.
	sess.Park()
}
