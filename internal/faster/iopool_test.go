package faster

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/testutil"
)

// openSpillStore builds a small-buffer store over a fault-injecting
// device and spills it, returning the index of a key that reads cold.
func openSpillStore(t *testing.T) (*Store, *device.Faulty, uint64) {
	t.Helper()
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)
	cold := uint64(0)
	found := false
	out := make([]byte, 8)
	for i := uint64(0); i < 1500 && !found; i++ {
		st, err := sess.Read(key(i), nil, out, nil)
		if st == Pending {
			sess.CompletePending(true)
			cold, found = i, true
		} else if st != OK || err != nil {
			t.Fatalf("probe %d: %v %v", i, st, err)
		}
	}
	if !found {
		t.Fatal("no key reads cold; shrink the buffer")
	}
	return s, faulty, cold
}

// submitResult is a one-shot done callback that counts deliveries, so
// the exactly-once contract is checked everywhere it is used.
type submitResult struct {
	ch    chan Result
	fires atomic.Int64
}

func newSubmitResult() *submitResult {
	return &submitResult{ch: make(chan Result, 1)}
}

func (r *submitResult) done(res Result) {
	r.fires.Add(1)
	r.ch <- res
}

func (r *submitResult) wait(t *testing.T, timeout time.Duration) Result {
	t.Helper()
	select {
	case res := <-r.ch:
		return res
	case <-time.After(timeout):
		t.Fatal("io-pool result not delivered")
		return Result{}
	}
}

func TestIOPoolCompletesColdReadAndRMW(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _, cold := openSpillStore(t)

	// Cold read: completed out of band, output in a pool-owned buffer.
	r := newSubmitResult()
	if err := s.SubmitRead(key(cold), nil, 8, time.Now().Add(5*time.Second), "ctx", r.done); err != nil {
		t.Fatal(err)
	}
	res := r.wait(t, 5*time.Second)
	if res.Status != OK || !bytes.Equal(res.Output, u64(cold+1)) {
		t.Fatalf("cold read = %v %v %x, want OK %x", res.Status, res.Err, res.Output, u64(cold+1))
	}
	if res.Ctx != "ctx" {
		t.Fatalf("ctx = %v, want passthrough", res.Ctx)
	}

	// Cold RMW, then read the merged sum back.
	r2 := newSubmitResult()
	if err := s.SubmitRMW(key(cold), u64(41), time.Now().Add(5*time.Second), nil, r2.done); err != nil {
		t.Fatal(err)
	}
	if res := r2.wait(t, 5*time.Second); res.Status != OK {
		t.Fatalf("cold rmw = %v %v", res.Status, res.Err)
	}
	r3 := newSubmitResult()
	if err := s.SubmitRead(key(cold), nil, 8, time.Time{}, nil, r3.done); err != nil {
		t.Fatal(err)
	}
	if res := r3.wait(t, 5*time.Second); res.Status != OK || !bytes.Equal(res.Output, u64(cold+42)) {
		t.Fatalf("read-after-rmw = %v %x, want OK %x", res.Status, res.Output, u64(cold+42))
	}

	// A hot (resident) key resolves synchronously on the worker, and a
	// missing key reports NotFound — neither is an error.
	r4 := newSubmitResult()
	if err := s.SubmitRead(key(1499), nil, 8, time.Time{}, nil, r4.done); err != nil {
		t.Fatal(err)
	}
	if res := r4.wait(t, 5*time.Second); res.Status != OK {
		t.Fatalf("hot read = %v %v", res.Status, res.Err)
	}
	r5 := newSubmitResult()
	if err := s.SubmitRead([]byte("never-written"), nil, 8, time.Time{}, nil, r5.done); err != nil {
		t.Fatal(err)
	}
	if res := r5.wait(t, 5*time.Second); res.Status != NotFound {
		t.Fatalf("missing read = %v, want NotFound", res.Status)
	}

	m := s.Metrics()
	if m.IOSubmitted < 5 || m.IODelivered < 5 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestIOPoolSubmitValidation(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _, _ := openSpillStore(t)
	if err := s.SubmitRead(key(1), nil, 8, time.Time{}, nil, nil); err == nil {
		t.Fatal("nil done accepted")
	}
	if err := s.SubmitRead(nil, nil, 8, time.Time{}, nil, func(Result) {}); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestIOPoolWouldBlock pins the session-side contract: a resident-only
// session refuses to issue storage I/O, returning WouldBlock for cold
// reads and RMWs while resident operations are untouched.
func TestIOPoolWouldBlock(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, _, cold := openSpillStore(t)
	sess := s.StartSession()
	defer sess.Close()
	sess.SetResidentOnly(true)

	out := make([]byte, 8)
	if st, err := sess.Read(key(cold), nil, out, nil); st != WouldBlock || err != nil {
		t.Fatalf("resident-only cold read = %v %v, want WouldBlock", st, err)
	}
	if st, err := sess.RMW(key(cold), u64(1), nil); st != WouldBlock || err != nil {
		t.Fatalf("resident-only cold rmw = %v %v, want WouldBlock", st, err)
	}
	if st, err := sess.Read(key(1499), nil, out, nil); st != OK || err != nil {
		t.Fatalf("resident-only hot read = %v %v, want OK", st, err)
	}
	if st, err := sess.Upsert(key(7777), u64(1)); st != OK || err != nil {
		t.Fatalf("resident-only upsert = %v %v, want OK", st, err)
	}

	// Lifting the restriction restores the Pending slow path.
	sess.SetResidentOnly(false)
	if st, _ := sess.Read(key(cold), nil, out, nil); st == WouldBlock {
		t.Fatal("cold read still WouldBlock after reset")
	}
	sess.CompletePending(true)
}

// TestIOPoolDeadlineShed proves the delivery deadline holds even when
// the device never answers in time: the done callback fires with
// ErrOpDeadline by the deadline, fires exactly once (the eventual device
// completion is dropped), and the health ladder stays untripped — a
// deadline shed is back-pressure, not a device failure.
func TestIOPoolDeadlineShed(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, faulty, cold := openSpillStore(t)

	faulty.InjectLatency(1*time.Second, 0)
	defer faulty.InjectLatency(0, 0)

	r := newSubmitResult()
	begin := time.Now()
	if err := s.SubmitRead(key(cold), nil, 8, begin.Add(50*time.Millisecond), nil, r.done); err != nil {
		t.Fatal(err)
	}
	res := r.wait(t, 3*time.Second)
	if res.Status != Err || !errors.Is(res.Err, ErrOpDeadline) {
		t.Fatalf("shed = %v %v, want ErrOpDeadline", res.Status, res.Err)
	}
	if waited := time.Since(begin); waited > 800*time.Millisecond {
		t.Fatalf("shed took %v; the deadline did not unblock the submitter", waited)
	}

	// The orphaned device completion lands ~1s later and must be dropped.
	time.Sleep(1200 * time.Millisecond)
	if n := r.fires.Load(); n != 1 {
		t.Fatalf("done fired %d times, want exactly once", n)
	}
	if h := s.Health(); h != Healthy {
		t.Fatalf("health = %v after deadline shed, want Healthy", h)
	}
	if m := s.Metrics(); m.IOShedTimeout == 0 {
		t.Fatalf("shed not counted: %+v", m)
	}
}

// TestIOPoolQueueFullSheds fills the bounded admission queue (worker
// wedged inside a device call via a blocking hook) and checks overflow
// sheds explicitly with ErrIOQueueFull, again without touching health.
func TestIOPoolQueueFullSheds(t *testing.T) {
	testutil.CheckGoroutines(t)
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: faulty,
		IOWorkers: 1, IOQueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	sess := s.StartSession()
	spill(t, s, sess, 1500)
	cold := uint64(0)
	out := make([]byte, 8)
	for i := uint64(0); i < 1500; i++ {
		if st, _ := sess.Read(key(i), nil, out, nil); st == Pending {
			sess.CompletePending(true)
			cold = i
			break
		}
	}
	sess.Close()

	release := make(chan struct{})
	faulty.SetHook(func(op device.Op, _ uint64, _ int) error {
		if op == device.OpRead {
			<-release
		}
		return nil
	})
	defer faulty.SetHook(nil)

	// First submit wedges the only worker inside the device; the second
	// occupies the queue slot; the third must shed at admission.
	r1, r2 := newSubmitResult(), newSubmitResult()
	if err := s.SubmitRead(key(cold), nil, 8, time.Time{}, nil, r1.done); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second,
		func() bool { return s.Metrics().IOQueueDepth == 0 },
		"worker to pick up the first request")
	if err := s.SubmitRead(key(cold), nil, 8, time.Time{}, nil, r2.done); err != nil {
		t.Fatal(err)
	}
	err = s.SubmitRead(key(cold), nil, 8, time.Time{}, nil, func(Result) { t.Error("shed op delivered") })
	if !errors.Is(err, ErrIOQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrIOQueueFull", err)
	}

	close(release)
	if res := r1.wait(t, 5*time.Second); res.Status != OK {
		t.Fatalf("first = %v %v", res.Status, res.Err)
	}
	if res := r2.wait(t, 5*time.Second); res.Status != OK {
		t.Fatalf("second = %v %v", res.Status, res.Err)
	}
	if h := s.Health(); h != Healthy {
		t.Fatalf("health = %v after queue-full shed, want Healthy", h)
	}
	if m := s.Metrics(); m.IOShedQueueFull == 0 {
		t.Fatalf("queue-full shed not counted: %+v", m)
	}
}

// TestIOPoolShutdownDrainsInflight closes the store while reads are in
// flight on a slow device: every submitted done must still fire exactly
// once (a real result or an explicit ErrStoreClosed — no silent drops),
// later submits must fail fast, and no worker goroutine may leak (the
// CheckGoroutines cleanup runs after Close).
func TestIOPoolShutdownDrainsInflight(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, faulty, cold := openSpillStore(t)

	faulty.InjectLatency(100*time.Millisecond, 0)
	defer faulty.InjectLatency(0, 0)

	const n = 16
	var fires atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		if err := s.SubmitRead(key(cold), nil, 8, time.Now().Add(5*time.Second), nil, func(res Result) {
			if res.Status != OK && !errors.Is(res.Err, ErrStoreClosed) {
				t.Errorf("shutdown delivery = %v %v", res.Status, res.Err)
			}
			fires.Add(1)
			wg.Done()
		}); err != nil {
			wg.Done()
			fires.Add(1) // submit refused counts as resolved
		}
	}
	s.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d completions after shutdown", fires.Load(), n)
	}
	if fires.Load() != n {
		t.Fatalf("fires = %d, want %d", fires.Load(), n)
	}
	if err := s.SubmitRead(key(cold), nil, 8, time.Time{}, nil, func(Result) {}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("post-close submit = %v, want ErrStoreClosed", err)
	}
}

// TestIOPoolChaosSoak drives seeded concurrent submitters against a
// device running a latency-spike chaos schedule, then closes the store
// mid-flight. Every done must fire exactly once across the drain.
func TestIOPoolChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 42, 777} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			s, faulty, cold := openSpillStore(t)

			// Square-wave spikes: 20ms of +30ms latency every 40ms.
			faulty.SpikeLatency(30*time.Millisecond, 40*time.Millisecond, 20*time.Millisecond)
			defer faulty.SpikeLatency(0, 0, 0)

			var submitted, fired atomic.Int64
			var wg sync.WaitGroup
			stopSubmit := make(chan struct{})
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*101 + g))
					for {
						select {
						case <-stopSubmit:
							return
						default:
						}
						k := key(cold + uint64(rng.Intn(64)))
						deadline := time.Now().Add(time.Duration(20+rng.Intn(200)) * time.Millisecond)
						var err error
						cb := func(Result) { fired.Add(1) }
						if rng.Intn(2) == 0 {
							err = s.SubmitRead(k, nil, 8, deadline, nil, cb)
						} else {
							err = s.SubmitRMW(k, u64(1), deadline, nil, cb)
						}
						if err == nil {
							submitted.Add(1)
						}
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					}
				}(int64(g))
			}
			time.Sleep(300 * time.Millisecond)
			close(stopSubmit)
			wg.Wait()
			s.Close() // mid-flight: some ops are still live in the pool

			testutil.WaitUntil(t, 10*time.Second,
				func() bool { return fired.Load() == submitted.Load() },
				"every submitted op to deliver exactly once (%d/%d)", fired.Load(), submitted.Load())
		})
	}
}
