package faster_test

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/linearize"
)

// TestHistoryLinearizable is the in-tree smoke for the linearize harness:
// every `go test ./internal/faster` run checks one small concurrent
// schedule against a hybrid store. The full scenario matrix (read-only
// copies, fuzzy deferrals, faulty devices, resize, checkpoint/recover)
// lives in internal/linearize and runs via `make linearize`.
func TestHistoryLinearizable(t *testing.T) {
	dev := device.NewMem(device.MemConfig{})
	s, err := faster.Open(faster.Config{
		Ops:          faster.SumOps{},
		Mode:         hlog.ModeHybrid,
		PageBits:     12,
		BufferPages:  8,
		IndexBuckets: 1 << 9,
		Device:       dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	history, _ := linearize.RunWorkload(s, linearize.Workload{
		Clients: 4, Ops: 60, Keys: 4, Seed: 7,
		Interleave: func(client, n int) {
			if client == 0 && n%8 == 0 {
				s.Log().ShiftReadOnlyToTail()
			}
		},
	})
	r := linearize.CheckKV(history, 10*time.Second)
	if r.Outcome != linearize.Ok {
		t.Fatalf("history is not linearizable (outcome %v):\n%s",
			r.Outcome, linearize.Format(linearize.KVModel(), r.Counterexample))
	}
}
