package faster

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"

	"repro/internal/device"
	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/index"
	"repro/internal/metrics"
)

// StoreMetrics is a point-in-time snapshot of every instrumented layer of
// the store. It is the typed view; Series flattens it into named scalar
// series for the expvar endpoint and text reports.
type StoreMetrics struct {
	// Store-level operation counters.
	Reads     uint64
	Upserts   uint64
	RMWs      uint64
	Deletes   uint64
	RCUCopies uint64 // updates that copied the old value to the tail
	FailedCAS uint64 // lost index compare-and-swaps (retried)
	InPlace   uint64 // updates applied in place
	Appends   uint64 // records appended
	FuzzyRMWs uint64 // RMWs deferred in the fuzzy region

	PendingDepth   int64                     // I/Os outstanding right now
	PendingIssued  uint64                    // I/Os issued in total
	PendingRetries uint64                    // pending-read attempts retried
	PendingLatency metrics.HistogramSnapshot // issue -> completion drain

	// io-worker pool (iopool.go): out-of-band completion of resident-only
	// misses. Sheds are split by reason — a timeout shed is caller
	// impatience, a queue-full shed is admission back-pressure — so queue
	// pressure is observable before it becomes an outage.
	IOSubmitted     uint64                    // operations accepted by Submit*
	IODelivered     uint64                    // results delivered from completions
	IOShedTimeout   uint64                    // sheds: per-op deadline expired
	IOShedQueueFull uint64                    // sheds: admission queue full
	IOQueueDepth    int64                     // submissions waiting for a worker
	IOInflight      int64                     // issued by workers, not yet resolved
	IOQueueWait     metrics.HistogramSnapshot // submit -> worker pickup
	IOService       metrics.HistogramSnapshot // pickup -> delivery

	// Read cache (readcache.go) and cold-read coalescing (coalesce.go).
	// IOCoalescedReads counts pending reads resolved from another read's
	// block fetch instead of their own device call.
	ReadCache        ReadCacheMetrics
	IOCoalescedReads uint64

	// Compaction activity (compact.go). CompactedBytes over ReclaimedBytes
	// is the compaction write amplification.
	Compactions      uint64
	CompactedRecords uint64
	CompactedBytes   uint64
	ReclaimedBytes   uint64

	// Exactly-once session activity (sessiontable.go).
	SessionEntries uint64 // GUIDs tracked in the session table
	SessionBinds   uint64 // attach/resume operations
	SerialReplays  uint64 // duplicate serials answered from the saved reply
	SerialFenced   uint64 // stale/gap/superseded serials rejected

	// Health is the fault-domain state machine (health.go);
	// HealthTransitions counts its upward steps.
	Health            Health
	HealthTransitions uint64

	Log   hlog.Metrics
	Index index.Metrics
	Epoch epoch.Metrics

	// Device is present when the configured device exposes metrics (all
	// built-in devices do); DeviceKnown reports whether it is meaningful.
	Device      device.Metrics
	DeviceKnown bool
}

// Metrics returns a snapshot of all store instrumentation.
func (s *Store) Metrics() StoreMetrics {
	t := s.sumStats()
	m := StoreMetrics{
		Reads:     t.reads,
		Upserts:   t.upserts,
		RMWs:      t.rmws,
		Deletes:   t.deletes,
		RCUCopies: t.rcuCopies,
		FailedCAS: t.failedCAS,
		InPlace:   t.inPlace,
		Appends:   t.appends,
		FuzzyRMWs: t.fuzzyRMWs,

		PendingDepth:   s.mx.pendingDepth.Load(),
		PendingIssued:  t.pendingIOs,
		PendingRetries: s.mx.pendingRetries.Load(),
		PendingLatency: s.mx.pendingLatency.Snapshot(),

		IOSubmitted:     s.mx.ioSubmitted.Load(),
		IODelivered:     s.mx.ioDelivered.Load(),
		IOShedTimeout:   s.mx.ioShedTimeout.Load(),
		IOShedQueueFull: s.mx.ioShedQueueFull.Load(),
		IOQueueDepth:    s.mx.ioQueueDepth.Load(),
		IOInflight:      s.mx.ioInflight.Load(),
		IOQueueWait:     s.mx.ioQueueWait.Snapshot(),
		IOService:       s.mx.ioService.Snapshot(),

		ReadCache:        s.rc.metrics(),
		IOCoalescedReads: s.mx.ioCoalesced.Load(),

		Compactions:      s.mx.compactions.Load(),
		CompactedRecords: s.mx.compactedRecords.Load(),
		CompactedBytes:   s.mx.compactedBytes.Load(),
		ReclaimedBytes:   s.mx.reclaimedBytes.Load(),

		SessionEntries: func() uint64 {
			s.sessions.mu.Lock()
			n := uint64(len(s.sessions.entries))
			s.sessions.mu.Unlock()
			return n
		}(),
		SessionBinds:  s.mx.sessionBinds.Load(),
		SerialReplays: s.mx.serialReplays.Load(),
		SerialFenced:  s.mx.serialFenced.Load(),

		Health:            s.Health(),
		HealthTransitions: s.mx.healthTransitions.Load(),

		Log:   s.log.Metrics(),
		Index: s.idx.Metrics(),
		Epoch: s.em.Metrics(),
	}
	if src, ok := s.cfg.Device.(device.MetricsSource); ok {
		m.Device = src.Metrics()
		m.DeviceKnown = true
	}
	return m
}

// Series flattens the snapshot into named scalar series. Names are stable
// dotted paths (faster.*, hlog.*, index.*, epoch.*, device.*); latency
// histograms expand into .count/.mean_ns/.p50_ns/.p99_ns/.max_ns.
func (m StoreMetrics) Series() metrics.Series {
	s := metrics.Series{
		"faster.reads":           float64(m.Reads),
		"faster.upserts":         float64(m.Upserts),
		"faster.rmws":            float64(m.RMWs),
		"faster.deletes":         float64(m.Deletes),
		"faster.rcu_copies":      float64(m.RCUCopies),
		"faster.failed_cas":      float64(m.FailedCAS),
		"faster.in_place":        float64(m.InPlace),
		"faster.appends":         float64(m.Appends),
		"faster.fuzzy_rmws":      float64(m.FuzzyRMWs),
		"faster.pending_depth":   float64(m.PendingDepth),
		"faster.pending_issued":  float64(m.PendingIssued),
		"faster.pending_retries": float64(m.PendingRetries),
		// 0 healthy, 1 degraded, 2 read-only, 3 failed.
		"faster.health":             float64(m.Health),
		"faster.health_transitions": float64(m.HealthTransitions),

		"faster.compactions":       float64(m.Compactions),
		"faster.compacted_records": float64(m.CompactedRecords),
		"faster.compacted_bytes":   float64(m.CompactedBytes),
		"faster.reclaimed_bytes":   float64(m.ReclaimedBytes),

		"faster.session_entries": float64(m.SessionEntries),
		"faster.session_binds":   float64(m.SessionBinds),
		"faster.serial_replays":  float64(m.SerialReplays),
		"faster.serial_fenced":   float64(m.SerialFenced),
	}
	if m.ReclaimedBytes > 0 {
		s["faster.compaction_write_amp"] = float64(m.CompactedBytes) / float64(m.ReclaimedBytes)
	} else {
		s["faster.compaction_write_amp"] = 0
	}
	s.AddHistogram("faster.pending_latency", m.PendingLatency)

	s["readcache.hits"] = float64(m.ReadCache.Hits)
	s["readcache.misses"] = float64(m.ReadCache.Misses)
	s["readcache.fills"] = float64(m.ReadCache.Fills)
	s["readcache.evictions"] = float64(m.ReadCache.Evictions)
	s["readcache.invalidations"] = float64(m.ReadCache.Invalidations)
	s["readcache.bytes"] = float64(m.ReadCache.Bytes)
	s["io.coalesced_reads"] = float64(m.IOCoalescedReads)

	s["faster.io_submitted"] = float64(m.IOSubmitted)
	s["faster.io_delivered"] = float64(m.IODelivered)
	s["faster.io_shed_timeout"] = float64(m.IOShedTimeout)
	s["faster.io_shed_queue_full"] = float64(m.IOShedQueueFull)
	s["faster.io_queue_depth"] = float64(m.IOQueueDepth)
	s["faster.io_inflight"] = float64(m.IOInflight)
	s.AddHistogram("faster.io_queue_wait", m.IOQueueWait)
	s.AddHistogram("faster.io_service", m.IOService)

	s["hlog.tail_address"] = float64(m.Log.TailAddress)
	s["hlog.head_address"] = float64(m.Log.HeadAddress)
	s["hlog.read_only_address"] = float64(m.Log.ReadOnlyAddress)
	s["hlog.safe_read_only_address"] = float64(m.Log.SafeReadOnlyAddress)
	s["hlog.begin_address"] = float64(m.Log.BeginAddress)
	s["hlog.flushed_until"] = float64(m.Log.FlushedUntil)
	s["hlog.mutable_bytes"] = float64(m.Log.MutableBytes)
	s["hlog.fuzzy_bytes"] = float64(m.Log.FuzzyBytes)
	s["hlog.read_only_bytes"] = float64(m.Log.ReadOnlyBytes)
	s["hlog.stable_bytes"] = float64(m.Log.StableBytes)
	s["hlog.flushes_issued"] = float64(m.Log.FlushesIssued)
	s["hlog.flush_retries"] = float64(m.Log.FlushRetries)
	s["hlog.flush_failures"] = float64(m.Log.FlushFailures)
	if m.Log.Poisoned {
		s["hlog.poisoned"] = 1
	} else {
		s["hlog.poisoned"] = 0
	}
	s["hlog.retry_timers"] = float64(m.Log.RetryTimers)
	s["hlog.flushed_bytes"] = float64(m.Log.FlushedBytes)
	s["hlog.evicted_pages"] = float64(m.Log.EvictedPages)
	s["hlog.ro_shifts"] = float64(m.Log.ROShifts)
	s["hlog.head_shifts"] = float64(m.Log.HeadShifts)
	s["hlog.begin_shifts"] = float64(m.Log.BeginShifts)
	s["hlog.truncations"] = float64(m.Log.Truncations)
	s["hlog.truncated_bytes"] = float64(m.Log.TruncatedBytes)
	s["hlog.truncated_until"] = float64(m.Log.TruncatedUntil)
	s.AddHistogram("hlog.flush_latency", m.Log.FlushLatency)
	s.AddHistogram("hlog.frame_wait", m.Log.FrameWait)
	s.AddHistogram("hlog.tail_contention", m.Log.TailContention)
	s.AddHistogram("hlog.flush_wait", m.Log.FlushWait)

	s["index.buckets"] = float64(m.Index.Buckets)
	s["index.entries"] = float64(m.Index.Entries)
	s["index.overflow_buckets"] = float64(m.Index.OverflowBuckets)
	s["index.max_chain"] = float64(m.Index.MaxChain)
	s["index.tentative_conflicts"] = float64(m.Index.TentativeConflicts)
	s["index.insert_retries"] = float64(m.Index.InsertRetries)
	s["index.resizes"] = float64(m.Index.Resizes)
	if m.Index.ResizeActive {
		s["index.resize_active"] = 1
	} else {
		s["index.resize_active"] = 0
	}
	s["index.resize_chunks_done"] = float64(m.Index.ResizeChunksDone)
	s["index.resize_chunks_total"] = float64(m.Index.ResizeChunksTotal)
	for i, c := range m.Index.ChainLengths {
		name := fmt.Sprintf("index.chain_len_%d", i+1)
		if i == len(m.Index.ChainLengths)-1 {
			name = fmt.Sprintf("index.chain_len_%d_plus", i+1)
		}
		s[name] = float64(c)
	}

	s["epoch.current"] = float64(m.Epoch.CurrentEpoch)
	s["epoch.safe"] = float64(m.Epoch.SafeEpoch)
	s["epoch.drain_list_depth"] = float64(m.Epoch.DrainListDepth)
	s["epoch.registered"] = float64(m.Epoch.Registered)
	s["epoch.bumps"] = float64(m.Epoch.Bumps)
	s["epoch.actions_run"] = float64(m.Epoch.ActionsRun)
	s.AddHistogram("epoch.bump_to_safe", m.Epoch.BumpToSafe)

	if m.DeviceKnown {
		s["device.reads"] = float64(m.Device.Reads)
		s["device.writes"] = float64(m.Device.Writes)
		s["device.bytes_read"] = float64(m.Device.BytesRead)
		s["device.bytes_written"] = float64(m.Device.BytesWritten)
		s["device.injected_read_faults"] = float64(m.Device.InjectedReadFaults)
		s["device.injected_write_faults"] = float64(m.Device.InjectedWriteFaults)
		s.AddHistogram("device.read_latency", m.Device.ReadLatency)
		s.AddHistogram("device.write_latency", m.Device.WriteLatency)
	}
	return s
}

// WriteReport renders the full metrics snapshot as sorted "name value"
// lines (the bench/CLI report format).
func (s *Store) WriteReport(w io.Writer) error {
	_, err := io.WriteString(w, s.Metrics().Series().Format())
	return err
}

// PublishExpvar registers the store's metrics under name in the process's
// expvar registry (served on /debug/vars by any expvar-aware mux). The
// snapshot is taken lazily on every scrape. Expvar panics on duplicate
// names, so publishing the same name twice returns an error instead.
func (s *Store) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("faster: expvar name %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return s.Metrics().Series() }))
	return nil
}

// MetricsHandler returns an http.Handler that serves the flattened metric
// series as a JSON object, for wiring into any mux without expvar.
func (s *Store) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Metrics().Series())
	})
}
