package faster

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/hlog"
)

// TestMetricsUnderMixedWorkload drives a YCSB-style mixed workload (reads,
// upserts, RMWs, deletes over a zipf-ish hot set) on a small hybrid store
// that spills to storage, then asserts the snapshot spans every layer with
// moving counters.
func TestMetricsUnderMixedWorkload(t *testing.T) {
	s, _ := openTestStore(t, Config{PageBits: 10, BufferPages: 4, RefreshInterval: 16})

	const (
		workers = 4
		keys    = 512
		opsPer  = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			sess := s.StartSession()
			defer sess.Close()
			out := make([]byte, 8)
			for i := 0; i < opsPer; i++ {
				k := key(uint64(rng.Intn(keys)))
				switch r := rng.Intn(100); {
				case r < 40:
					if st, err := sess.Read(k, nil, out, nil); err != nil {
						t.Errorf("Read: %v", err)
					} else if st == Pending {
						sess.CompletePending(true)
					}
				case r < 70:
					if _, err := sess.Upsert(k, u64(uint64(i))); err != nil {
						t.Errorf("Upsert: %v", err)
					}
				case r < 95:
					if st, err := sess.RMW(k, u64(1), nil); err != nil {
						t.Errorf("RMW: %v", err)
					} else if st == Pending {
						sess.CompletePending(true)
					}
				default:
					if _, err := sess.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
					}
				}
			}
			sess.CompletePending(true)
		}(int64(w) + 1)
	}
	wg.Wait()

	m := s.Metrics()
	series := m.Series()

	if len(series) < 15 {
		t.Fatalf("Series() has %d entries, want >= 15", len(series))
	}
	// The snapshot must span all five layers.
	for _, prefix := range []string{"faster.", "hlog.", "index.", "epoch.", "device."} {
		found := false
		for name := range series {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series with prefix %q", prefix)
		}
	}

	// Counters that a mixed workload with log spill must have moved.
	moved := []string{
		"faster.reads", "faster.upserts", "faster.rmws", "faster.deletes",
		"faster.in_place", "faster.appends",
		"hlog.tail_address", "hlog.flushes_issued", "hlog.flushed_bytes",
		"hlog.evicted_pages", "hlog.ro_shifts", "hlog.head_shifts",
		"index.entries", "index.buckets",
		"epoch.current", "epoch.bumps", "epoch.actions_run",
		"device.writes", "device.bytes_written",
	}
	for _, name := range moved {
		if v, ok := series[name]; !ok {
			t.Errorf("series %q missing", name)
		} else if v <= 0 {
			t.Errorf("series %q = %v, want > 0", name, v)
		}
	}
	// With a 4-page buffer the workload must have gone to storage, so the
	// pending path and the device read path must both have fired.
	if series["faster.pending_issued"] == 0 {
		t.Errorf("faster.pending_issued = 0, want > 0 (workload should spill to storage)")
	}
	if series["faster.pending_latency.count"] == 0 {
		t.Errorf("faster.pending_latency.count = 0, want > 0")
	}
	if series["device.reads"] == 0 {
		t.Errorf("device.reads = 0, want > 0")
	}
	if series["faster.pending_depth"] != 0 {
		t.Errorf("faster.pending_depth = %v after quiescence, want 0", series["faster.pending_depth"])
	}

	// Typed snapshot consistency with the flat series.
	if got := series["faster.reads"]; got != float64(m.Reads) {
		t.Errorf("series faster.reads = %v, typed snapshot = %d", got, m.Reads)
	}
	if m.Log.MutableBytes+m.Log.FuzzyBytes+m.Log.ReadOnlyBytes+m.Log.StableBytes == 0 {
		t.Error("all hlog region sizes are zero")
	}
	if !m.DeviceKnown {
		t.Error("DeviceKnown = false for a Mem device")
	}

	// The text report renders one line per series.
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(series) {
		t.Errorf("report has %d lines, series has %d entries", n, len(series))
	}

	// The HTTP handler serves the same series as JSON.
	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics handler status %d", rec.Code)
	}
	var decoded map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics handler JSON: %v", err)
	}
	if len(decoded) < 15 {
		t.Errorf("JSON endpoint has %d series, want >= 15", len(decoded))
	}

	// Expvar publication: first registration succeeds, duplicate errors.
	if err := s.PublishExpvar("faster-test-store"); err != nil {
		t.Fatalf("PublishExpvar: %v", err)
	}
	if err := s.PublishExpvar("faster-test-store"); err == nil {
		t.Error("duplicate PublishExpvar should error")
	}
}

// TestMetricsRCUCopies checks the RCU counter moves when updates land in
// the read-only region (append-only mode forces every update to copy).
func TestMetricsRCUCopies(t *testing.T) {
	s, _ := openTestStore(t, Config{Mode: hlog.ModeAppendOnly})
	sess := s.StartSession()
	defer sess.Close()

	k := key(7)
	if _, err := sess.Upsert(k, u64(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if st, err := sess.RMW(k, u64(1), nil); err != nil {
			t.Fatal(err)
		} else if st == Pending {
			sess.CompletePending(true)
		}
	}
	if got := s.Metrics().RCUCopies; got == 0 {
		t.Errorf("RCUCopies = 0 after append-only RMWs, want > 0")
	}
}
