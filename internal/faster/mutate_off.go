//go:build !mutate

package faster

// Mutation switches for the linearizability gate (see
// internal/faster/mutation_gate_test.go). Normal builds compile with
// mutationsEnabled == false, so every mutated branch is dead code the
// compiler removes; the seeded-bug variants exist only under -tags mutate.
const mutationsEnabled = false

func mutTornWrite() bool        { return false }
func mutDoubleRMW() bool        { return false }
func mutSkipSerialFsync() bool  { return false }
func mutDroppedReenqueue() bool { return false }
func mutRouteStale() bool       { return false }
func mutSkipShardFsync() bool   { return false }
func mutCacheInval() bool       { return false }

// tornAddU64 and tornSessionPayload are never reachable when
// mutationsEnabled is false; the stubs keep the !mutate build compiling.
func tornAddU64(p *uint64, delta uint64) { _ = p; _ = delta }

func tornSessionPayload(payload []byte) []byte { return payload }

func tearShardMeta(path string) { _ = path }
