//go:build mutate

package faster

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Seeded-bug variants for the linearizability mutation gate. Building
// with -tags mutate compiles these switches in; the gate then enables one
// mutation at a time and asserts the checker flags the resulting history
// as non-linearizable. If a seeded bug ever checks green, the harness has
// lost its teeth.
const mutationsEnabled = true

var (
	mutTorn       atomic.Bool
	mutDouble     atomic.Bool
	mutSerialSync atomic.Bool
	mutDropReenq  atomic.Bool
	mutStaleRing  atomic.Bool
	mutShardSync  atomic.Bool
	mutCacheInv   atomic.Bool
)

func mutTornWrite() bool        { return mutTorn.Load() }
func mutDoubleRMW() bool        { return mutDouble.Load() }
func mutSkipSerialFsync() bool  { return mutSerialSync.Load() }
func mutDroppedReenqueue() bool { return mutDropReenq.Load() }
func mutRouteStale() bool       { return mutStaleRing.Load() }
func mutSkipShardFsync() bool   { return mutShardSync.Load() }
func mutCacheInval() bool       { return mutCacheInv.Load() }

// EnableMutation turns on one seeded bug by name: "torn-write" (SumOps
// in-place adds become a non-atomic two-half write), "double-rmw"
// (SumOps copy-updates apply the input twice) or "skip-serial-fsync"
// (the checkpoint's session table is written without fsync — modeled as
// losing its tail entry — and recovery trusts whatever survived instead
// of verifying the meta's length and CRC) or "dropped-reenqueue" (a
// fuzzy-region RMW deferral is acknowledged OK without ever being
// re-executed — the classic lost-continuation bug in an async I/O path)
// or "route-stale-map" (a sharded router consults a retained pre-rehash
// ring for a fraction of lookups, landing keys on the wrong shard) or
// "skip-shard-fsync" (a sharded manifest commits over one shard whose
// generation meta was never fsynced — modeled as a torn meta — and
// recovery falls back per shard instead of per ensemble, mixing
// checkpoint generations) or "skip-cache-invalidate" (a write that finds
// the index entry pointing at a read-cache copy links its new record
// BEHIND the cached copy instead of republishing the entry, so readers
// keep being served the stale cached value — the canonical
// forgot-to-invalidate cache bug).
func EnableMutation(name string) {
	switch name {
	case "torn-write":
		mutTorn.Store(true)
	case "double-rmw":
		mutDouble.Store(true)
	case "skip-serial-fsync":
		mutSerialSync.Store(true)
	case "dropped-reenqueue":
		mutDropReenq.Store(true)
	case "route-stale-map":
		mutStaleRing.Store(true)
	case "skip-shard-fsync":
		mutShardSync.Store(true)
	case "skip-cache-invalidate":
		mutCacheInv.Store(true)
	default:
		panic(fmt.Sprintf("faster: unknown mutation %q", name))
	}
}

// DisableMutations turns every seeded bug off.
func DisableMutations() {
	mutTorn.Store(false)
	mutDouble.Store(false)
	mutSerialSync.Store(false)
	mutDropReenq.Store(false)
	mutStaleRing.Store(false)
	mutShardSync.Store(false)
	mutCacheInv.Store(false)
}

// tornSessionPayload drops the serialized session table's final entry,
// modeling an un-fsynced tail lost to a crash: the count header still
// promises the full set, so a verifying reader rejects the file while
// the mutated (trusting) reader silently loads the shorter prefix.
func tornSessionPayload(payload []byte) []byte {
	// Walk the entries to find the offset of the last one.
	if len(payload) < 16 {
		return payload
	}
	count := int(uint64FromLE(payload[8:]))
	if count == 0 {
		return payload
	}
	off := 16
	last := off
	for i := 0; i < count && off+4 <= len(payload); i++ {
		last = off
		glen := int(uint32FromLE(payload[off:]))
		off += 4 + glen + 8 + 8
		if off+4 > len(payload) {
			return payload
		}
		rlen := int(uint32FromLE(payload[off:]))
		off += 4 + rlen
	}
	return payload[:last]
}

func uint64FromLE(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func uint32FromLE(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// tearShardMeta models one shard's un-fsynced generation meta being torn
// by the crash the fsync would have survived: the file loses its CRC
// trailer, so a verifying reader rejects the generation while the naive
// per-shard fallback silently recovers that shard from an older one.
func tearShardMeta(path string) {
	fi, err := os.Stat(path)
	if err != nil || fi.Size() <= 8 {
		return
	}
	os.Truncate(path, fi.Size()-8)
}

// tornAddU64 is the torn-write variant of atomic.AddUint64: it loads the
// counter, then publishes the sum as two independent 32-bit halves with a
// scheduling point in between. Concurrent adders lose updates (the load
// and the stores no longer form one atomic RMW) and concurrent readers
// can observe a half-written value. The halves are stored with 32-bit
// atomics so the race detector stays quiet — the bug is torn/lost
// *values*, which only a history checker can see.
func tornAddU64(p *uint64, delta uint64) {
	sum := atomic.LoadUint64(p) + delta
	lo := (*uint32)(unsafe.Pointer(p))
	hi := (*uint32)(unsafe.Pointer(uintptr(unsafe.Pointer(p)) + 4))
	atomic.StoreUint32(lo, uint32(sum))
	runtime.Gosched() // widen the torn window
	atomic.StoreUint32(hi, uint32(sum>>32))
}
