//go:build mutate

package faster

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Seeded-bug variants for the linearizability mutation gate. Building
// with -tags mutate compiles these switches in; the gate then enables one
// mutation at a time and asserts the checker flags the resulting history
// as non-linearizable. If a seeded bug ever checks green, the harness has
// lost its teeth.
const mutationsEnabled = true

var (
	mutTorn   atomic.Bool
	mutDouble atomic.Bool
)

func mutTornWrite() bool { return mutTorn.Load() }
func mutDoubleRMW() bool { return mutDouble.Load() }

// EnableMutation turns on one seeded bug by name: "torn-write" (SumOps
// in-place adds become a non-atomic two-half write) or "double-rmw"
// (SumOps copy-updates apply the input twice).
func EnableMutation(name string) {
	switch name {
	case "torn-write":
		mutTorn.Store(true)
	case "double-rmw":
		mutDouble.Store(true)
	default:
		panic(fmt.Sprintf("faster: unknown mutation %q", name))
	}
}

// DisableMutations turns every seeded bug off.
func DisableMutations() {
	mutTorn.Store(false)
	mutDouble.Store(false)
}

// tornAddU64 is the torn-write variant of atomic.AddUint64: it loads the
// counter, then publishes the sum as two independent 32-bit halves with a
// scheduling point in between. Concurrent adders lose updates (the load
// and the stores no longer form one atomic RMW) and concurrent readers
// can observe a half-written value. The halves are stored with 32-bit
// atomics so the race detector stays quiet — the bug is torn/lost
// *values*, which only a history checker can see.
func tornAddU64(p *uint64, delta uint64) {
	sum := atomic.LoadUint64(p) + delta
	lo := (*uint32)(unsafe.Pointer(p))
	hi := (*uint32)(unsafe.Pointer(uintptr(unsafe.Pointer(p)) + 4))
	atomic.StoreUint32(lo, uint32(sum))
	runtime.Gosched() // widen the torn window
	atomic.StoreUint32(hi, uint32(sum>>32))
}
