//go:build mutate

package faster_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/linearize"
)

// The mutation gate proves the linearizability harness has teeth: each
// test enables one seeded bug (compiled in under -tags mutate), replays
// seeded schedules until the checker returns Illegal, and prints the
// minimized counterexample. A gate test that times out means the harness
// can no longer see that class of bug — which is a harness regression,
// not a store regression.
//
// Run via `make mutation-gate` (without -race: the seeded bugs are
// deliberate concurrency faults, and the interesting signal is the torn
// or lost *values* in the history, not the memory-model violation).

// detectMutation replays seeds until the checker flags a history, or the
// budget expires.
func detectMutation(t *testing.T, budget time.Duration, run func(seed int64) ([]linearize.Op, *faster.Store)) {
	t.Helper()
	start := time.Now()
	for seed := int64(1); ; seed++ {
		if time.Since(start) > budget {
			t.Fatalf("seeded bug NOT detected within %v (%d schedules) — the harness lost its teeth", budget, seed-1)
		}
		h, s := run(seed)
		r := linearize.CheckKV(h, 10*time.Second)
		s.Close()
		if r.Outcome == linearize.Illegal {
			t.Logf("seeded bug detected on schedule %d (%d states explored)\nminimized counterexample:\n%s",
				seed, r.States, linearize.Format(linearize.KVModel(), r.Counterexample))
			return
		}
	}
}

func openGateStore(t *testing.T, cfg faster.Config) *faster.Store {
	t.Helper()
	cfg.Ops = faster.SumOps{}
	if cfg.IndexBuckets == 0 {
		cfg.IndexBuckets = 1 << 9
	}
	s, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMutationGateBaseline checks that the mutate-tagged build with every
// mutation switched off still produces linearizable histories — guarding
// against a switch that leaks into the clean path.
func TestMutationGateBaseline(t *testing.T) {
	faster.DisableMutations()
	hlog.DisableMutations()
	for _, seed := range []int64{1, 2} {
		s := openGateStore(t, faster.Config{Mode: hlog.ModeInMemory, PageBits: 12})
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 6, Ops: 60, Keys: 3, Seed: seed, RMWPct: 60, ReadPct: 30, UpsertPct: 8, DeletePct: 2,
		})
		r := linearize.CheckKV(h, 10*time.Second)
		s.Close()
		if r.Outcome != linearize.Ok {
			t.Fatalf("baseline (mutations off) not linearizable (outcome %v):\n%s",
				r.Outcome, linearize.Format(linearize.KVModel(), r.Counterexample))
		}
	}
	// The sharded scenarios' exact configurations must be green with the
	// bugs off: the mutate build retains the stale ring and the naive
	// manifest reader as dead code, and neither may leak into routing or
	// recovery while its switch is down.
	for _, seed := range []int64{1, 2} {
		ss, err := faster.OpenSharded(faster.ShardedConfig{
			Shards: 4,
			Base: faster.Config{
				Mode:         hlog.ModeInMemory,
				PageBits:     12,
				IndexBuckets: 1 << 9,
				Ops:          faster.SumOps{},
			},
			NewDevice: func(int) device.Device { return device.NewNull() },
		})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := linearize.RunWorkloadTarget(linearize.ShardedTarget{ShardedStore: ss}, linearize.Workload{
			Clients: 4, Ops: 80, Keys: 16, Seed: seed,
			ReadPct: 40, UpsertPct: 25, RMWPct: 25, DeletePct: 10,
		})
		r := linearize.CheckKV(h, 10*time.Second)
		ss.Close()
		if r.Outcome != linearize.Ok {
			t.Fatalf("sharded baseline (mutations off) not linearizable (outcome %v):\n%s",
				r.Outcome, linearize.Format(linearize.KVModel(), r.Counterexample))
		}

		devs := make([]device.Device, 4)
		for i := range devs {
			devs[i] = device.NewMem(device.MemConfig{})
		}
		cfg := faster.ShardedConfig{
			Shards: 4,
			Base: faster.Config{
				Mode:         hlog.ModeHybrid,
				PageBits:     12,
				BufferPages:  8,
				IndexBuckets: 1 << 9,
				Ops:          faster.SumOps{},
			},
			NewDevice: func(i int) device.Device { return devs[i] },
		}
		eh, err := linearize.RunExactlyOnceSharded(cfg, t.TempDir(), linearize.EOShardedWorkload{
			Sessions: 3, Serials: 16, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		er := linearize.Check(linearize.EOShardedModel(), eh, 10*time.Second)
		for _, d := range devs {
			d.Close()
		}
		if er.Outcome != linearize.Ok {
			t.Fatalf("sharded exactly-once baseline (mutations off) not linearizable (outcome %v):\n%s",
				er.Outcome, linearize.Format(linearize.EOShardedModel(), er.Counterexample))
		}
	}

	// The skip-epoch-bump scenario's exact configuration — pausing value
	// ops, constant read-only shifts — must be green with the bug off,
	// or the gate's red signal means nothing.
	for _, seed := range []int64{1, 2, 3} {
		s, err := faster.Open(faster.Config{
			Ops:          pausingSumOps{},
			Mode:         hlog.ModeHybrid,
			PageBits:     12,
			BufferPages:  8,
			IndexBuckets: 1 << 9,
			Device:       device.NewMem(device.MemConfig{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 6, Ops: 60, Keys: 2, Seed: seed,
			ReadPct: 25, UpsertPct: 15, RMWPct: 60, DeletePct: 0,
			Interleave: func(client, n int) {
				if n%2 == 0 {
					s.Log().ShiftReadOnlyToTail()
				}
			},
		})
		// Legal histories from this scenario are expensive to verify
		// (dense concurrency on two keys), so give the checker room.
		r := linearize.CheckKV(h, 60*time.Second)
		s.Close()
		if r.Outcome != linearize.Ok {
			t.Fatalf("baseline (pausing ops, mutations off) not linearizable (outcome %v):\n%s",
				r.Outcome, linearize.Format(linearize.KVModel(), r.Counterexample))
		}
	}

	// The skip-cache-invalidate scenario's exact configuration — cold
	// reads filling a read cache while writers land on cached keys — must
	// be green with the bug off, or the gate's red signal means nothing.
	for _, seed := range []int64{1, 2} {
		s := openGateStore(t, faster.Config{
			Mode:            hlog.ModeHybrid,
			PageBits:        9,
			BufferPages:     4,
			MutableFraction: 0.5,
			Device:          device.NewMem(device.MemConfig{}),
			ReadCacheBytes:  4 << 10,
		})
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 4, Ops: 300, Keys: 64, Seed: seed,
			ReadPct: 50, UpsertPct: 25, RMWPct: 25, DeletePct: 0,
			PendingBatch: 6,
		})
		r := linearize.CheckKV(h, 10*time.Second)
		s.Close()
		if r.Outcome != linearize.Ok {
			t.Fatalf("baseline (read cache, mutations off) not linearizable (outcome %v):\n%s",
				r.Outcome, linearize.Format(linearize.KVModel(), r.Counterexample))
		}
	}
}

// TestMutationGateTornWrite seeds a torn 64-bit counter write into
// SumOps.InPlaceUpdater: the fetch-and-add becomes load + two half-word
// stores. Concurrent RMWs lose updates and readers observe half-written
// values; deltas above 1<<32 make every torn observation wildly wrong.
func TestMutationGateTornWrite(t *testing.T) {
	faster.EnableMutation("torn-write")
	defer faster.DisableMutations()
	detectMutation(t, 60*time.Second, func(seed int64) ([]linearize.Op, *faster.Store) {
		s := openGateStore(t, faster.Config{Mode: hlog.ModeInMemory, PageBits: 12})
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 6, Ops: 40, Keys: 2, Seed: seed,
			ReadPct: 30, RMWPct: 70, UpsertPct: 0, DeletePct: 0,
			RMWMax: 1 << 40,
		})
		return h, s
	})
}

// TestMutationGateDoubleRMW seeds a double-applied update into
// SumOps.CopyUpdater (old + 2*input). Append-only mode routes every RMW
// of an existing key through the copy path, so a single client's
// rmw-then-read already refutes linearizability.
func TestMutationGateDoubleRMW(t *testing.T) {
	faster.EnableMutation("double-rmw")
	defer faster.DisableMutations()
	detectMutation(t, 60*time.Second, func(seed int64) ([]linearize.Op, *faster.Store) {
		s := openGateStore(t, faster.Config{
			Mode:        hlog.ModeAppendOnly,
			PageBits:    12,
			BufferPages: 8,
			Device:      device.NewMem(device.MemConfig{}),
		})
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 2, Ops: 40, Keys: 2, Seed: seed,
			ReadPct: 35, UpsertPct: 15, RMWPct: 50, DeletePct: 0,
		})
		return h, s
	})
}

// TestMutationGateDroppedReenqueue seeds the lost-continuation bug in
// the pending-op machinery: a fuzzy-region RMW deferral is acknowledged
// OK without ever being re-executed. The async workload routes RMWs
// through the io-worker pool, whose private sessions drain deferrals via
// the same CompletePending retries loop — so an acknowledged-but-lost
// update surfaces as a read that misses a delta the history confirms.
func TestMutationGateDroppedReenqueue(t *testing.T) {
	faster.EnableMutation("dropped-reenqueue")
	defer faster.DisableMutations()
	detectMutation(t, 120*time.Second, func(seed int64) ([]linearize.Op, *faster.Store) {
		s, err := faster.Open(faster.Config{
			Ops:             faster.SumOps{},
			Mode:            hlog.ModeHybrid,
			PageBits:        9,
			BufferPages:     4,
			MutableFraction: 0.5,
			IndexBuckets:    1 << 9,
			Device:          device.NewMem(device.MemConfig{}),
			IOWorkers:       3,
		})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			Clients: 4, Ops: 80, Keys: 3, Seed: seed,
			ReadPct: 30, UpsertPct: 10, RMWPct: 60, DeletePct: 0,
			AsyncIO: true, AsyncDeadline: 5 * time.Second, PendingBatch: 6,
			// Shift constantly so RMWs keep landing in the fuzzy region
			// and deferring — the path the seeded bug drops.
			Interleave: func(client, n int) {
				if n%2 == 0 {
					s.Log().ShiftReadOnlyToTail()
				}
			},
		})
		return h, s
	})
}

// pausingSumOps is SumOps with a scheduling point inside the in-place
// updater, modelling the arbitrary-duration user code the ValueOps
// contract permits. The yield sits exactly in the window the epoch bump
// protects: between an operation's read-only-offset check and its
// in-place write. The shadowed Merge drops the MergeOps interface so the
// store takes the plain copy-update path rather than CRDT deltas.
type pausingSumOps struct{ faster.SumOps }

func (pausingSumOps) Merge() {}

func (p pausingSumOps) InPlaceUpdater(key, value, input []byte) bool {
	runtime.Gosched()
	return p.SumOps.InPlaceUpdater(key, value, input)
}

func (p pausingSumOps) ConcurrentWriter(key, dst, src []byte) bool {
	runtime.Gosched()
	return p.SumOps.ConcurrentWriter(key, dst, src)
}

// TestMutationGateSkipEpochBump seeds the classic epoch-protection bug:
// read-only shifts publish the safe read-only offset immediately instead
// of waiting (via epoch bump) for every session to observe the shift.
// A session paused between its read-only-offset check and its in-place
// write can then update a record that a faster session is concurrently
// copy-updating past (the fuzzy region the bump exists to create is
// gone), losing the acknowledged update.
func TestMutationGateSkipEpochBump(t *testing.T) {
	hlog.EnableMutation("skip-epoch-bump")
	defer hlog.DisableMutations()
	detectMutation(t, 120*time.Second, func(seed int64) ([]linearize.Op, *faster.Store) {
		s, err := faster.Open(faster.Config{
			Ops:          pausingSumOps{},
			Mode:         hlog.ModeHybrid,
			PageBits:     12,
			BufferPages:  8,
			IndexBuckets: 1 << 9,
			Device:       device.NewMem(device.MemConfig{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			// 6*60/2 keys ≈ 180 ops per partition, safely inside the
			// checker's 256-op partition limit.
			Clients: 6, Ops: 60, Keys: 2, Seed: seed,
			ReadPct: 25, UpsertPct: 15, RMWPct: 60, DeletePct: 0,
			// Shift constantly so updates keep straddling the
			// read-only boundary while other sessions are mid-operation.
			Interleave: func(client, n int) {
				if n%2 == 0 {
					s.Log().ShiftReadOnlyToTail()
				}
			},
		})
		return h, s
	})
}

// TestMutationGateSkipSerialFsync seeds the serial-table durability bug:
// the checkpoint skips the session table's fsync and the persisted
// payload loses its final entry (the torn tail an unsynced rename can
// leave behind), while recovery trusts whatever tail survived instead of
// failing the CRC and falling back a generation. The torn-off session's
// committed frontier silently reverts, the retrying client resubmits
// serials the store already acknowledged and applied, and the
// duplicate-delivery history double-applies — which the dedup-aware
// exactly-once model refutes.
func TestMutationGateSkipSerialFsync(t *testing.T) {
	faster.EnableMutation("skip-serial-fsync")
	defer faster.DisableMutations()
	start := time.Now()
	budget := 60 * time.Second
	for seed := int64(1); ; seed++ {
		if time.Since(start) > budget {
			t.Fatalf("seeded bug NOT detected within %v (%d schedules) — the harness lost its teeth", budget, seed-1)
		}
		cfg := faster.Config{
			Mode:         hlog.ModeHybrid,
			PageBits:     12,
			BufferPages:  8,
			IndexBuckets: 1 << 9,
			Device:       device.NewMem(device.MemConfig{}),
			Ops:          faster.SumOps{},
		}
		h, err := linearize.RunExactlyOnce(cfg, t.TempDir(), linearize.EOWorkload{
			Sessions: 3, Serials: 12, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := linearize.Check(linearize.EOModel(), h, 10*time.Second)
		if r.Outcome == linearize.Illegal {
			t.Logf("seeded bug detected on schedule %d (%d states explored)\nminimized counterexample:\n%s",
				seed, r.States, linearize.Format(linearize.EOModel(), r.Counterexample))
			return
		}
	}
}

// TestMutationGateRouteStaleMap seeds the route-after-rehash bug: every
// fourth routing decision consults a retained pre-rehash ring, so a
// fraction of the key space intermittently lands on the wrong shard. A
// write routed astray is invisible to correctly-routed reads (and a
// stale replica resurrects overwritten values), which the KV checker
// refutes as a lost or time-travelling update.
func TestMutationGateRouteStaleMap(t *testing.T) {
	faster.EnableMutation("route-stale-map")
	defer faster.DisableMutations()
	start := time.Now()
	budget := 60 * time.Second
	for seed := int64(1); ; seed++ {
		if time.Since(start) > budget {
			t.Fatalf("seeded bug NOT detected within %v (%d schedules) — the harness lost its teeth", budget, seed-1)
		}
		ss, err := faster.OpenSharded(faster.ShardedConfig{
			Shards: 4,
			Base: faster.Config{
				Mode:         hlog.ModeInMemory,
				PageBits:     12,
				IndexBuckets: 1 << 9,
				Ops:          faster.SumOps{},
			},
			NewDevice: func(int) device.Device { return device.NewNull() },
		})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := linearize.RunWorkloadTarget(linearize.ShardedTarget{ShardedStore: ss}, linearize.Workload{
			Clients: 4, Ops: 80, Keys: 16, Seed: seed,
			ReadPct: 40, UpsertPct: 25, RMWPct: 25, DeletePct: 10,
		})
		r := linearize.CheckKV(h, 10*time.Second)
		ss.Close()
		if r.Outcome == linearize.Illegal {
			t.Logf("seeded bug detected on schedule %d (%d states explored)\nminimized counterexample:\n%s",
				seed, r.States, linearize.Format(linearize.KVModel(), r.Counterexample))
			return
		}
	}
}

// TestMutationGateSkipShardFsync seeds the sharded manifest durability
// bug: one shard's generation meta is committed without fsync (modeled
// as a torn meta file) yet the manifest still advances, and recovery
// falls back per shard instead of per ensemble — the torn shard
// silently reloads an older generation while its siblings serve the new
// one. The connection frontier (max acked over shards) then overstates
// what the torn shard holds, the retrying client never resubmits the
// serials that shard lost, and their deltas vanish — which the sharded
// dedup-aware counter model refutes.
func TestMutationGateSkipShardFsync(t *testing.T) {
	faster.EnableMutation("skip-shard-fsync")
	defer faster.DisableMutations()
	start := time.Now()
	budget := 60 * time.Second
	for seed := int64(1); ; seed++ {
		if time.Since(start) > budget {
			t.Fatalf("seeded bug NOT detected within %v (%d schedules) — the harness lost its teeth", budget, seed-1)
		}
		devs := make([]device.Device, 4)
		for i := range devs {
			devs[i] = device.NewMem(device.MemConfig{})
		}
		cfg := faster.ShardedConfig{
			Shards: 4,
			Base: faster.Config{
				Mode:         hlog.ModeHybrid,
				PageBits:     12,
				BufferPages:  8,
				IndexBuckets: 1 << 9,
				Ops:          faster.SumOps{},
			},
			NewDevice: func(i int) device.Device { return devs[i] },
		}
		h, err := linearize.RunExactlyOnceSharded(cfg, t.TempDir(), linearize.EOShardedWorkload{
			Sessions: 3, Serials: 16, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := linearize.Check(linearize.EOShardedModel(), h, 10*time.Second)
		for _, d := range devs {
			d.Close()
		}
		if r.Outcome == linearize.Illegal {
			t.Logf("seeded bug detected on schedule %d (%d states explored)\nminimized counterexample:\n%s",
				seed, r.States, linearize.Format(linearize.EOShardedModel(), r.Counterexample))
			return
		}
	}
}

// TestMutationGateSkipCacheInvalidate seeds the read-cache staleness bug:
// a write whose CAS expectation is a cache-tagged entry links the fresh
// hlog record BEHIND the cached copy (redirecting the cached record's
// prev) instead of republishing the index entry over it. The entry keeps
// pointing at the cache, so every subsequent read of the key is served
// the pre-write cached value — an acknowledged update that readers never
// observe, which the KV checker refutes as a lost update.
func TestMutationGateSkipCacheInvalidate(t *testing.T) {
	faster.EnableMutation("skip-cache-invalidate")
	defer faster.DisableMutations()
	detectMutation(t, 120*time.Second, func(seed int64) ([]linearize.Op, *faster.Store) {
		s := openGateStore(t, faster.Config{
			Mode:            hlog.ModeHybrid,
			PageBits:        9, // 512-byte pages over a 2 KB buffer: reads go cold fast
			BufferPages:     4,
			MutableFraction: 0.5,
			Device:          device.NewMem(device.MemConfig{}),
			ReadCacheBytes:  4 << 10,
		})
		h, _ := linearize.RunWorkload(s, linearize.Workload{
			// 64 keys overflow the buffer, so reads keep filling the cache
			// and the write-heavy mix keeps hitting cached entries.
			Clients: 4, Ops: 300, Keys: 64, Seed: seed,
			ReadPct: 50, UpsertPct: 25, RMWPct: 25, DeletePct: 0,
			PendingBatch: 6,
		})
		return h, s
	})
}
