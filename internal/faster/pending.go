package faster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/hlog"
	"repro/internal/retry"
)

// Operations go pending for two reasons (§5.3, §6.3): the record they need
// lives on storage (Read, RMW), or an RMW hit the fuzzy region and must be
// retried after the safe read-only offset catches up. Each pending
// operation carries a context that resumes it; completions are queued per
// session and drained by CompletePending, exactly as in §2.5.

// opKind identifies how a pending operation resumes.
type opKind int

const (
	opRead      opKind = iota // storage read, deliver value
	opReadMerge               // CRDT reconcile continuing down the chain
	opRMW                     // storage read, then copy-update at the tail
	opRMWRetry                // fuzzy-region deferral, re-execute
	opRMWVerify               // verify no newer version in an evicted span
	opCompact                 // compaction span check (compact.go)
)

func (k opKind) String() string {
	switch k {
	case opRead:
		return "read"
	case opReadMerge:
		return "read-merge"
	case opRMW:
		return "rmw"
	case opRMWRetry:
		return "rmw-retry"
	case opRMWVerify:
		return "rmw-verify"
	case opCompact:
		return "compact"
	default:
		return "unknown"
	}
}

// PendingOp is the continuation context of an asynchronous operation.
type PendingOp struct {
	kind   opKind
	key    []byte // owned copy
	input  []byte // owned copy
	output []byte // caller-provided output buffer (reads)
	ctx    any

	addr      hlog.Address // record currently being fetched
	entryAddr hlog.Address // chain head observed when the RMW issued
	acc       []byte       // CRDT merge accumulator
	buf       []byte       // completed read buffer
	err       error

	// RMW span verification (see publishFetched): the fetched old
	// record's buffer, the span floor, and the chain head to republish
	// against once the span is verified clean.
	fetchedBuf []byte
	verifyStop hlog.Address
	verifyCur  hlog.Address

	// compactVal is the value a compaction descent (opCompact) will copy
	// forward if its span proves clean. Owned by the Compact driver, which
	// drains all pending ops before returning.
	compactVal []byte

	issuedNs   int64 // set by issueIO; feeds the pending-latency histogram
	deadlineNs int64 // completion deadline (0 = none), stamped from SetOpDeadline

	// noCoalesce forces the individual two-phase read path: set when a
	// coalesced block read could not serve this op (coalesce.go).
	noCoalesce bool

	hdr [recHeaderBytes]byte // header-probe buffer (avoids a per-I/O alloc)

	trace []string // debug instrumentation (debugTraceOps)
}

// debugTrace appends a step to the op's debug trace.
func (op *PendingOp) debugTrace(format string, args ...any) {
	if debugTraceOps {
		op.trace = append(op.trace, fmt.Sprintf(format, args...))
		if len(op.trace) > 24 {
			op.trace = op.trace[len(op.trace)-24:]
		}
	}
}

// Result reports the completion of a pending operation.
type Result struct {
	// Kind is "read", "read-merge", "rmw", "rmw-retry" or "compact".
	Kind string
	// Key is the operation's key (the session's owned copy).
	Key []byte
	// Input is the session's owned copy of the operation's input. RMW
	// updaters that feed status back through the input (the counter
	// overflow flag) write into this copy on the pending path, so callers
	// must inspect it here, not their original buffer. Valid until the
	// session reuses the op; copy to retain.
	Input []byte
	// Output is the caller's output buffer, now filled (reads).
	Output []byte
	// Status is the final status: OK, NotFound or Err.
	Status Status
	// ValueLen is the record's value length for completed reads.
	ValueLen int
	// Err is non-nil when Status is Err.
	Err error
	// Ctx is the caller's context value from the original call.
	Ctx any
}

// completionQueue is a mutex-guarded queue filled by device callbacks
// (arbitrary goroutines) and drained by the session goroutine.
type completionQueue struct {
	mu  sync.Mutex
	ops []*PendingOp
}

func (q *completionQueue) push(op *PendingOp) {
	if debugPush != nil {
		debugPush(op)
	}
	q.mu.Lock()
	q.ops = append(q.ops, op)
	q.mu.Unlock()
}

func (q *completionQueue) drain() []*PendingOp {
	q.mu.Lock()
	ops := q.ops
	q.ops = nil
	q.mu.Unlock()
	return ops
}

// newPendingOp builds a continuation with owned copies of key and input,
// recycling a struct from the session's free list when one is available.
// The key copy is always fresh: its ownership transfers to the Result
// when the op completes (callers may hold Result.Key indefinitely).
func (sess *Session) newPendingOp(kind opKind, key, input, output []byte, ctx any) *PendingOp {
	var op *PendingOp
	if n := len(sess.opFree); n > 0 {
		op = sess.opFree[n-1]
		sess.opFree[n-1] = nil
		sess.opFree = sess.opFree[:n-1]
		in := op.input[:0]
		*op = PendingOp{input: in}
	} else {
		op = &PendingOp{}
	}
	op.kind, op.output, op.ctx = kind, output, ctx
	op.deadlineNs = sess.opDeadlineNs
	op.key = append([]byte(nil), key...)
	if input != nil {
		op.input = append(op.input[:0], input...)
	} else {
		op.input = nil
	}
	return op
}

// recycleOp returns a finished op to the session free list. The caller
// must have built the op's Result already: the key buffer stays with the
// Result, the accumulator and fetch buffers return to the scratch pools.
func (sess *Session) recycleOp(op *PendingOp) {
	sess.releaseAcc(op.acc)
	if op.buf != nil {
		sess.putIOBuf(op.buf)
	}
	in := op.input[:0]
	*op = PendingOp{input: in}
	if len(sess.opFree) < 32 {
		sess.opFree = append(sess.opFree, op)
	}
}

// getIOBuf returns a fetch buffer of length n from the session pool.
func (sess *Session) getIOBuf(n int) []byte {
	if m := len(sess.ioBufs); m > 0 {
		buf := sess.ioBufs[m-1]
		sess.ioBufs[m-1] = nil
		sess.ioBufs = sess.ioBufs[:m-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n)
}

func (sess *Session) putIOBuf(buf []byte) {
	if len(sess.ioBufs) < 16 {
		sess.ioBufs = append(sess.ioBufs, buf[:0])
	}
}

// ioDone pairs an issueIO: the op's current I/O round has been consumed
// by the session goroutine (the op may re-issue immediately).
func (sess *Session) ioDone() {
	sess.inFlight--
	sess.s.mx.pendingDepth.Dec()
}

// ErrOpDeadline marks a pending operation that shed because its per-op
// completion deadline (Session.SetOpDeadline / Submit deadline) expired
// while the record fetch was outstanding. It wraps
// context.DeadlineExceeded, and deliberately bypasses both the retry
// budget and the health ladder: a deadline is caller impatience, not
// device degradation.
var ErrOpDeadline = fmt.Errorf("faster: pending operation deadline expired: %w", context.DeadlineExceeded)

// readRetrying reads buf at addr, retrying transient failures under the
// store's read policy with jittered backoff. done receives nil on success
// or the final error wrapped as a retry.ExhaustedError (errors.Is on the
// device cause still works). deadlineNs, when nonzero, bounds the whole
// retry chain: an expired deadline fails fast with ErrOpDeadline instead
// of scheduling another backoff (and never raises health). The retry
// chain is serial — one outstanding read at a time — so failures needs no
// synchronization beyond the happens-before edges of timer creation.
func (s *Store) readRetrying(addr hlog.Address, buf []byte, deadlineNs int64, done func(error)) {
	if deadlineNs > 0 && time.Now().UnixNano() >= deadlineNs {
		done(ErrOpDeadline)
		return
	}
	var attempt func(error)
	failures := 0
	issue := func() { s.log.ReadAsync(addr, buf, attempt) }
	attempt = func(err error) {
		if err == nil {
			done(nil)
			return
		}
		if addr < s.log.BeginAddress() {
			// The fetch raced a truncation: the record is provably dead
			// (it sat below a begin address some caller advanced past).
			// Deliver the raw error without burning retry budget or
			// touching the health ladder — the continuation resolves it
			// as NotFound, not as device degradation.
			done(err)
			return
		}
		failures++
		if !s.cfg.ReadRetry.Budget(s.classify, err, failures) {
			done(retry.Exhausted(s.classify, err, failures))
			return
		}
		delay := s.cfg.ReadRetry.Delay(failures)
		if deadlineNs > 0 && time.Now().Add(delay).UnixNano() >= deadlineNs {
			// The backoff would sleep past the deadline: shed now. No
			// Degraded escalation — the device fault already consumed
			// retry budget, and a deadline shed is explicit back-pressure,
			// not a new health signal.
			done(ErrOpDeadline)
			return
		}
		s.mx.pendingRetries.Inc()
		s.raiseHealth(Degraded, err)
		time.AfterFunc(delay, issue)
	}
	issue()
}

// issueIO starts the asynchronous fetch of the record at op.addr: first
// the 16-byte header (for the record's size), then the full record. The
// final callback parks the op on the session's completion queue; no store
// state is touched from the I/O callback goroutine beyond the health
// escalation for permanent device loss.
func (sess *Session) issueIO(op *PendingOp) {
	op.debugTrace("issue@%#x kind=%v", op.addr, op.kind)
	if debugIssue != nil {
		debugIssue(op)
	}
	sess.inFlight++
	sess.s.mx.pendingDepth.Inc()
	sess.stat.pendingIOs.Add(1)
	op.issuedNs = time.Now().UnixNano()
	s := sess.s
	// Cold-read coalescing: share one block-sized device call with other
	// pending reads on the same block (coalesce.go). Falls through to the
	// individual two-phase read when the block is not wholly readable.
	if s.co != nil && !op.noCoalesce && s.co.tryJoin(sess, op) {
		return
	}
	hdr := op.hdr[:]
	// The record buffer is allocated on the issuing (session) goroutine —
	// the device callback below runs elsewhere and must not touch the
	// session's buffer pool.
	buf := sess.getIOBuf(0)
	s.readRetrying(op.addr, hdr, op.deadlineNs, func(err error) {
		if err != nil {
			op.err = err
			// A read below a moving begin address is a truncation race,
			// not a device failure, and a deadline shed is explicit
			// back-pressure; only genuine losses feed the health
			// escalation.
			if op.addr >= s.log.BeginAddress() && !errors.Is(err, ErrOpDeadline) {
				s.noteReadFailure(err)
			}
			sess.completed.push(op)
			return
		}
		size := probeSize(hdr)
		if size == 0 || size > 1<<24 {
			op.err = errCorruptRecord
			sess.completed.push(op)
			return
		}
		if cap(buf) >= int(size) {
			buf = buf[:size]
		} else {
			buf = make([]byte, size)
		}
		s.readRetrying(op.addr, buf, op.deadlineNs, func(err error) {
			if err != nil {
				op.err = err
				if op.addr >= s.log.BeginAddress() && !errors.Is(err, ErrOpDeadline) {
					s.noteReadFailure(err)
				}
			} else {
				op.buf = buf
			}
			sess.completed.push(op)
		})
	})
}

// ErrPendingTimeout is returned by CompletePendingTimeout when outstanding
// operations did not finish within the deadline. The operations remain
// pending and a later CompletePending call can still drain them.
var ErrPendingTimeout = errors.New("faster: pending operations did not complete within the deadline")

// CompletePending processes the session's completed asynchronous I/Os and
// fuzzy-region retries, returning one Result per finished user operation.
// With wait set it blocks (refreshing the epoch) until every outstanding
// operation has finished.
func (sess *Session) CompletePending(wait bool) []Result {
	results, _ := sess.completePending(wait, time.Time{})
	return results
}

// CompletePendingTimeout is CompletePending(true) with a deadline: it
// returns ErrPendingTimeout (plus the results drained so far) if
// outstanding operations are still unfinished when d elapses. This is the
// bound that keeps a caller from hanging when the device degrades faster
// than the health machine can classify it.
func (sess *Session) CompletePendingTimeout(d time.Duration) ([]Result, error) {
	return sess.completePending(true, time.Now().Add(d))
}

func (sess *Session) completePending(wait bool, deadline time.Time) ([]Result, error) {
	var results []Result
	spins := 0
	for {
		progressed := false

		// Fuzzy deferrals: retry once the safe read-only offset has been
		// republished (any epoch refresh may have advanced it).
		if n := len(sess.retries); n > 0 {
			retries := sess.retries
			sess.retries = nil
			for _, op := range retries {
				if mutationsEnabled && mutDroppedReenqueue() {
					// Seeded bug: the deferral is acknowledged OK without
					// ever re-executing — an applied-but-lost RMW.
					progressed = true
					results = append(results, Result{
						Kind: op.kind.String(), Key: op.key, Input: op.input,
						Status: OK, Ctx: op.ctx,
					})
					sess.recycleOp(op)
					continue
				}
				// Re-execution happens under the op's own deadline: a
				// worker session interleaves many callers' ops, so the
				// session-level stamp is restored afterwards.
				saved := sess.opDeadlineNs
				sess.opDeadlineNs = op.deadlineNs
				st, err := sess.rmwInternal(op.key, op.input, op.ctx, hashKey(op.key))
				sess.opDeadlineNs = saved
				if st == Pending {
					// Re-queued (still fuzzy, or now on storage) as a
					// fresh op; this one is done with.
					sess.recycleOp(op)
					continue
				}
				progressed = true
				results = append(results, Result{
					Kind: op.kind.String(), Key: op.key, Input: op.input,
					Status: st, Err: err, Ctx: op.ctx,
				})
				sess.recycleOp(op)
			}
		}

		for _, op := range sess.completed.drain() {
			progressed = true
			sess.s.mx.pendingLatency.Observe(time.Duration(time.Now().UnixNano() - op.issuedNs))
			if res, done := sess.continueOp(op); done {
				sess.ioDone()
				results = append(results, res)
				sess.recycleOp(op)
			}
		}

		if !wait {
			return results, nil
		}
		if sess.inFlight == 0 && len(sess.retries) == 0 {
			return results, nil
		}
		if progressed {
			spins = 0
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return results, fmt.Errorf("%w (%d in flight, %d deferred)",
				ErrPendingTimeout, sess.inFlight, len(sess.retries))
		}
		// Let flush/eviction trigger actions run so the fuzzy region
		// shrinks and device callbacks land — and yield the processor so
		// the device workers actually get to run (critical on small
		// GOMAXPROCS: a tight spin here starves the I/O goroutines).
		sess.g.Refresh()
		sess.s.em.Drain()
		if debugSpin != nil {
			debugSpin(sess)
		}
		spins++
		if spins > 64 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// continueOp resumes a pending operation whose I/O completed. done is
// false when the op re-issued another I/O (following the chain).
func (sess *Session) continueOp(op *PendingOp) (Result, bool) {
	s := sess.s
	fail := func(st Status, err error) (Result, bool) {
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Output: op.output, Status: st, Err: err, Ctx: op.ctx}, true
	}
	if op.err == errCoalesceRetry {
		// The coalesced block read could not serve this op (leader shed on
		// its own deadline, or the record straddles the block boundary):
		// re-issue it individually.
		op.err = nil
		op.noCoalesce = true
		sess.ioDone()
		sess.issueIO(op)
		return Result{}, false
	}
	if op.err != nil {
		if op.addr < s.log.BeginAddress() {
			return sess.resumeTruncated(op)
		}
		return fail(Err, op.err)
	}
	rec, ok := parseRecord(op.buf)
	if !ok {
		if op.addr < s.log.BeginAddress() {
			// A truncated range can read back as zeros rather than an
			// error (file devices only move a watermark); same race.
			return sess.resumeTruncated(op)
		}
		return fail(Err, errCorruptRecord)
	}

	op.debugTrace("complete@%#x key=%x inv=%v prev=%#x", op.addr, rec.key, rec.invalid(), rec.prev())
	if rec.invalid() || !bytes.Equal(rec.key, op.key) {
		// Not our record: follow the chain further down.
		return sess.followChain(op, rec.prev())
	}

	switch op.kind {
	case opRead:
		if rec.tombstone() {
			return fail(NotFound, nil)
		}
		if rec.delta() && s.merge != nil {
			// The newest on-disk record is a delta: switch to a merge
			// fold from here down.
			op.kind = opReadMerge
			op.acc = sess.acquireAcc(len(op.output))
			return sess.mergeAndDescend(op, rec)
		}
		s.ops.SingleReader(op.key, rec.value, op.input, op.output)
		if s.rc != nil && !isCacheAddr(op.entryAddr) {
			// Cold read completed: copy the record into the read cache so
			// repeat reads of it skip the device. entryAddr is the chain
			// head the read probed; the fill CASes the index entry from it
			// to the cached copy, and silently does nothing if a writer (or
			// a competing fill) moved the entry meanwhile.
			s.rc.fill(sess.g, hashKey(op.key), op.key, rec.value, op.entryAddr)
		}
		res, done := fail(OK, nil)
		res.ValueLen = len(rec.value)
		return res, done

	case opReadMerge:
		if rec.tombstone() {
			copy(op.output, op.acc)
			return fail(OK, nil)
		}
		return sess.mergeAndDescend(op, rec)

	case opRMW:
		return sess.completeRMWAfterFetch(op, rec)

	case opRMWVerify:
		// The span record matched our key (checked above): a newer
		// version exists, so the fetched value is stale.
		return sess.reissueRMW(op)

	case opCompact:
		// A version of the key exists above the cut (even a tombstone
		// supersedes the scanned copy): the candidate is stale, skip it.
		return fail(NotFound, nil)
	}
	return fail(Err, errCorruptRecord)
}

// resumeTruncated re-executes an operation whose storage fetch was
// overtaken by a begin-address truncation. The address it was reading is
// provably reclaimed, so the failure carries no information about the
// key; the op restarts from the index, where post-truncation state
// (including any compaction copy rolled forward to the tail) is visible.
func (sess *Session) resumeTruncated(op *PendingOp) (Result, bool) {
	op.debugTrace("resume-truncated@%#x", op.addr)
	op.err = nil
	switch op.kind {
	case opRead, opReadMerge:
		// A partial CRDT fold below the truncation point is worthless;
		// restart the read from scratch.
		sess.releaseAcc(op.acc)
		op.acc = nil
		saved := sess.opDeadlineNs
		sess.opDeadlineNs = op.deadlineNs
		st, err := sess.readInternal(op.key, op.input, op.output, op.ctx, hashKey(op.key))
		sess.opDeadlineNs = saved
		if st == Pending {
			sess.ioDone()
			return Result{}, false
		}
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Output: op.output, Status: st, Err: err, Ctx: op.ctx}, true
	case opCompact:
		// The span being verified was truncated out from under the
		// descent; re-verify against the current index state.
		return sess.republishCompact(op)
	default: // opRMW, opRMWRetry, opRMWVerify
		return sess.reissueRMW(op)
	}
}

// followChain either issues the next fetch or finishes the op when the
// chain is exhausted.
func (sess *Session) followChain(op *PendingOp, next hlog.Address) (Result, bool) {
	s := sess.s
	if op.kind == opRMWVerify && next <= op.verifyStop {
		// Span verified clean on storage: republish against the head we
		// observed when the verification started.
		return sess.republishVerified(op)
	}
	if op.kind == opCompact && next <= op.verifyStop {
		// The descent passed below the compaction cut without meeting the
		// key: nothing above the cut supersedes the scanned copy. (This
		// also covers a chain that ended or dropped below begin — both
		// are below the cut.)
		return sess.republishCompact(op)
	}
	if next != hlog.InvalidAddress && next < s.log.BeginAddress() {
		// The chain descends below the begin address: a truncation (or a
		// compaction) advanced begin mid-descent. If the index entry has
		// moved since the op issued, a copy-forward may have rolled the
		// key's live version to the tail — restart from the index. If the
		// entry is unchanged (or gone), no copy rescued this key, so the
		// truncated tail of the chain is dead and the descent is over.
		if _, cur, ok := s.idx.FindEntry(hashKey(op.key)); ok && cur != op.entryAddr {
			return sess.resumeTruncated(op)
		}
		return sess.chainExhausted(op)
	}
	if next == hlog.InvalidAddress {
		return sess.chainExhausted(op)
	}
	if s.log.InMemory(next) {
		if debugPath != nil {
			debugPath("follow-inmemory")
		}
		// Chains point strictly downward, so a fetched record's
		// predecessor cannot re-enter memory; begin-address truncation
		// is the only way this could mislead, handled above.
		return sess.chainExhausted(op)
	}
	if debugPath != nil {
		debugPath("follow-chain")
	}
	op.addr = next
	if op.buf != nil && (op.fetchedBuf == nil || &op.buf[0] != &op.fetchedBuf[0]) {
		sess.putIOBuf(op.buf)
	}
	op.buf = nil
	sess.ioDone()
	sess.issueIO(op)
	return Result{}, false
}

// republishVerified retries a publish whose candidate span proved free of
// newer versions of the op's key.
func (sess *Session) republishVerified(op *PendingOp) (Result, bool) {
	finish := func(st Status, err error) (Result, bool) {
		return Result{Kind: "rmw", Key: op.key, Input: op.input,
			Status: st, Err: err, Ctx: op.ctx}, true
	}
	rec, ok := parseRecord(op.fetchedBuf)
	if !ok {
		return finish(Err, errCorruptRecord)
	}
	op.kind = opRMW
	st, err := sess.publishFetched(hashKey(op.key), op, rec, op.verifyCur)
	switch st {
	case statusDone:
		return finish(OK, err)
	case statusPendingIO:
		sess.ioDone()
		return Result{}, false
	default:
		return sess.reissueRMW(op)
	}
}

// chainExhausted finishes an op whose key turned out not to exist.
func (sess *Session) chainExhausted(op *PendingOp) (Result, bool) {
	if op.kind == opRMWVerify {
		// The whole chain below the span floor ended: span clean.
		return sess.republishVerified(op)
	}
	switch op.kind {
	case opCompact:
		// Defensive: the verifyStop check in followChain normally catches
		// the end of a compaction span; treat a fall-through as the span
		// proving clean.
		return sess.republishCompact(op)
	case opRead:
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Output: op.output, Status: NotFound, Ctx: op.ctx}, true
	case opReadMerge:
		copy(op.output, op.acc)
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Output: op.output, Status: OK, Ctx: op.ctx}, true
	case opRMW:
		// Key absent below the fetch point: CREATE_RECORD with the
		// initial value (Alg 4), through the same verified-publish path
		// as fetched values — the chain head may have moved during the
		// descent, and only a new version of THIS key should force a
		// restart. A synthesized tombstone stands in for the (absent)
		// old record, making the publish take the initial-value branch.
		h := hashKey(op.key)
		tomb := make([]byte, recordSize(len(op.key), 0))
		writeRecord(tomb, 0, flagTombstone, op.key, 0)
		op.fetchedBuf = tomb
		rec, _ := parseRecord(tomb)
		st, err := sess.publishFetched(h, op, rec, op.entryAddr)
		switch st {
		case statusDone:
			return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
				Status: OK, Err: err, Ctx: op.ctx}, true
		case statusPendingIO:
			sess.ioDone() // the verify fetch re-incremented
			return Result{}, false
		default:
			return sess.reissueRMW(op)
		}
	}
	return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
		Status: Err, Err: errCorruptRecord, Ctx: op.ctx}, true
}

// mergeAndDescend folds rec into the accumulator and continues down the
// chain until the base (non-delta) record.
func (sess *Session) mergeAndDescend(op *PendingOp, rec record) (Result, bool) {
	s := sess.s
	s.merge.Merge(op.key, rec.value, op.acc)
	if !rec.delta() {
		copy(op.output, op.acc)
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Output: op.output, Status: OK, Ctx: op.ctx}, true
	}
	return sess.followChain(op, rec.prev())
}

// completeRMWAfterFetch finishes an RMW whose old value arrived from
// storage. There is deliberately no "chain head moved, refetch" check
// here: the publish path verifies any records appended above the
// fetch-time head (in memory, or via an on-disk span check) and restarts
// only when a newer version of the op's key actually exists — a naive
// refetch rule live-locks against a tag-colliding hot key whose appends
// always outpace this op's two-I/O descent.
func (sess *Session) completeRMWAfterFetch(op *PendingOp, rec record) (Result, bool) {
	finish := func(st Status, err error) (Result, bool) {
		return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
			Status: st, Err: err, Ctx: op.ctx}, true
	}
	h := hashKey(op.key)
	chainHead := op.entryAddr
	// Publish the update computed from the fetched value. The old value
	// lives in op.buf (session-owned memory). Publishing must tolerate
	// the chain head moving under us: when a tag-colliding hot key keeps
	// appending, a naive retry-by-refetch loop starves (each retry costs
	// two I/Os while the hot sibling appends from memory). Instead,
	// verify in memory that no newer version of OUR key appeared and
	// re-CAS against the new head.
	op.fetchedBuf = op.buf
	st, err := sess.publishFetched(h, op, rec, chainHead)
	switch st {
	case statusDone:
		return finish(OK, err)
	case statusPendingIO:
		sess.ioDone() // the verify fetch re-incremented
		return Result{}, false
	default:
		return sess.reissueRMW(op)
	}
}

// publishFetched appends the RMW result for a value fetched from storage,
// CASing the index entry. On a lost CAS it checks, purely in memory,
// whether the span of records added above the fetch point contains a
// newer version of the op's key: if not, the fetched value is still
// current and the publish retries against the new chain head; if it does
// (or the span is unverifiable because it was already evicted), the
// caller must re-execute the RMW.
func (sess *Session) publishFetched(h uint64, op *PendingOp, old record, chainHead hlog.Address) (internalStatus, error) {
	s := sess.s
	haveOld := !old.tombstone()
	for {
		// chainHead is the raw index-entry address (it may point into the
		// read cache); the CAS expects it verbatim, while the appended
		// record's prev must be the underlying hlog chain head.
		expect := chainHead
		prev, crec, cached, stale := s.splitProbe(chainHead)
		if stale {
			_, cur := s.idx.FindOrCreateEntry(h)
			chainHead = cur
			continue
		}
		if cached && !crec.invalid() && bytes.Equal(crec.key, op.key) {
			// The entry points at a cached copy of OUR key, which is by
			// construction its newest version. The re-executed RMW takes
			// the cached fast path (no device read), so this cannot
			// live-lock.
			return statusRetry, nil
		}
		var valueLen int
		if haveOld {
			valueLen = s.ops.CopyValueLen(op.key, old.value, op.input)
		} else {
			valueLen = s.ops.InitialValueLen(op.key, op.input)
		}
		_, st, err := sess.appendRecord(h, op.key, expect, prev, hlog.InvalidAddress, 0, valueLen, func(dst record) {
			if haveOld {
				s.ops.CopyUpdater(op.key, old.value, dst.value, op.input)
			} else {
				s.ops.InitialUpdater(op.key, dst.value, op.input)
			}
		})
		if err != nil {
			return statusDone, err
		}
		if st == statusDone {
			return statusDone, nil
		}
		// Lost the CAS: inspect the records newer than our observed
		// head. All of them were appended after the fetch, so they are
		// at the tail unless already evicted.
		_, cur := s.idx.FindOrCreateEntry(h)
		ncur, ccrec, ncached, nstale := s.splitProbe(cur)
		if nstale {
			chainHead = cur
			continue
		}
		if ncached && !ccrec.invalid() && bytes.Equal(ccrec.key, op.key) {
			return statusRetry, nil // a newer cached version of our key
		}
		floor := maxAddr(s.log.HeadAddress(), prev+1)
		laddr, _, found := s.traceBack(op.key, ncur, floor)
		if found {
			return statusRetry, nil // a newer version of our key exists
		}
		if laddr != hlog.InvalidAddress && laddr > prev {
			// Part of the span was evicted before we could check it in
			// memory. Verify the evicted part on storage: this keeps
			// per-attempt work proportional to the span (the appends
			// that landed during one publish attempt), where a full
			// re-descent from the tail can outlive the eviction window
			// and live-lock against a tag-colliding hot key.
			op.kind = opRMWVerify
			op.verifyStop = prev
			op.verifyCur = cur
			op.addr = laddr
			sess.issueIO(op)
			return statusPendingIO, nil
		}
		chainHead = cur
	}
}

// reissueRMW re-executes a lost-CAS RMW via the normal path.
func (sess *Session) reissueRMW(op *PendingOp) (Result, bool) {
	op.debugTrace("reissue")
	saved := sess.opDeadlineNs
	sess.opDeadlineNs = op.deadlineNs
	st, err := sess.rmwInternal(op.key, op.input, op.ctx, hashKey(op.key))
	sess.opDeadlineNs = saved
	if st == Pending {
		sess.ioDone()
		return Result{}, false
	}
	return Result{Kind: op.kind.String(), Key: op.key, Input: op.input,
		Status: st, Err: err, Ctx: op.ctx}, true
}
