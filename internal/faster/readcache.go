package faster

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/metrics"
)

// Read cache (F2 / Deuteronomy 2.0 style): a second, small in-memory
// circular log sitting between the hash index and the main HybridLog.
// When a cold read completes from storage, the record is copied into the
// cache and the index entry is CASed from the hlog chain head to the
// cached copy, so repeated reads of the same cold record stop paying a
// device round-trip. The cache is purely an index-level redirection:
//
//   - Cache addresses are tagged with bit 47 (cacheAddrBit). The hlog
//     never reaches 2^47 bytes, so tagged addresses are disjoint from log
//     addresses while still fitting the index's 48-bit address field.
//   - A cached record's prev field holds the hlog address the entry
//     carried before the fill (the chain head). Invalidation is therefore
//     the ordinary RCU discipline: an upsert/RMW/delete appends at the
//     tail and CASes the entry from the tagged address to the new record,
//     which simply drops the cached copy out of the chain. Readers that
//     miss the cached key (hash collisions) continue at prev.
//   - Cache addresses live ONLY in index entries. No hlog record ever has
//     a tagged prev (hlog records are persisted; the cache is volatile),
//     and checkpoints/recovery strip tagged addresses (checkpoint.go).
//
// Eviction is page-at-a-time in FIFO order with a second chance: reads
// that hit a cached record set flagCacheRef in its header; eviction
// restores every live entry to its underlying hlog address first, then
// re-admits referenced records at the cache tail (the CLOCK-approximation
// that internal/cachesim measured best for zipfian reads). The page's
// memory is reclaimed epoch-safely: readers dereference cached records
// under epoch protection, so the frame is zeroed and reused only after
// every thread has refreshed past the eviction bump. Fills fail fast when
// the freed frame has not drained yet — the cache is an optimization, and
// a read that cannot fill is just a normal cold read.

// cacheAddrBit tags index-entry addresses that point into the read cache
// instead of the HybridLog. It is inside the index's AddressMask (bit 47
// of 48) and above any reachable hlog address.
const cacheAddrBit = hlog.Address(1) << 47

// isCacheAddr reports whether an index-entry address points into the
// read cache.
func isCacheAddr(a hlog.Address) bool { return a&cacheAddrBit != 0 }

// readCache is the latch-free record read cache. Reads are lock-free
// (atomic head check + record decode under epoch protection); fills and
// evictions serialize on mu, which is fine because a fill already paid a
// device read and eviction is page-granular.
type readCache struct {
	s        *Store
	pageSize uint64
	nFrames  uint64
	frames   [][]uint64 // frame memory, word-addressed for atomic headers
	bytesv   [][]byte   // byte views aliasing frames
	ready    []atomic.Bool

	// head is the oldest live virtual offset (page-aligned); offsets below
	// it are evicted. Grows monotonically; frame = (off/pageSize)%nFrames.
	head atomic.Uint64

	mu   sync.Mutex
	tail uint64 // next virtual offset to allocate (under mu)

	// Re-admission staging for second-chance eviction (under mu). The
	// evicted frame's bytes become invalid at reuse, so referenced records
	// are copied out before the frame is recycled.
	scratch []byte
	readmit []readmitRec

	mx struct {
		hits          metrics.Counter
		misses        metrics.Counter
		fills         metrics.Counter
		evictions     metrics.Counter
		invalidations metrics.Counter
		bytes         metrics.Gauge // live cached bytes (tail - head)
	}
}

// readmitRec is a second-chance candidate copied off an evicting page.
type readmitRec struct {
	hash       uint64
	prev       hlog.Address // restored underlying address (CAS expectation)
	key, value []byte       // subslices of scratch
}

// newReadCache sizes a cache of roughly capBytes. Pages shrink from 64 KB
// until at least 4 frames fit (FIFO over fewer frames evicts too much of
// the working set at once), with floors of 512-byte pages and 2 frames.
func newReadCache(s *Store, capBytes uint64) *readCache {
	pageBits := uint(16)
	for pageBits > 9 && capBytes>>pageBits < 4 {
		pageBits--
	}
	nFrames := capBytes >> pageBits
	if nFrames < 2 {
		nFrames = 2
	}
	rc := &readCache{
		s:        s,
		pageSize: 1 << pageBits,
		nFrames:  nFrames,
		frames:   make([][]uint64, nFrames),
		bytesv:   make([][]byte, nFrames),
		ready:    make([]atomic.Bool, nFrames),
	}
	for i := range rc.frames {
		words := make([]uint64, rc.pageSize/8)
		rc.frames[i] = words
		rc.bytesv[i] = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), rc.pageSize)
		rc.ready[i].Store(true)
	}
	return rc
}

func (rc *readCache) frameFor(off uint64) uint64 { return (off / rc.pageSize) % rc.nFrames }

func (rc *readCache) headerPtr(off uint64) *uint64 {
	return &rc.frames[rc.frameFor(off)][(off%rc.pageSize)/8]
}

// recordAt decodes the cached record behind the tagged address a. ok is
// false when the record was evicted between the index probe and this
// dereference (rare; the caller re-probes). The caller must hold epoch
// protection taken before the probe and must not refresh it before the
// last use of the returned record: frame memory is only reclaimed after
// an epoch bump drains, so an unrefreshed guard pins the bytes.
func (rc *readCache) recordAt(a hlog.Address) (record, bool) {
	off := a &^ cacheAddrBit
	if off < rc.head.Load() {
		return record{}, false
	}
	b := rc.bytesv[rc.frameFor(off)][off%rc.pageSize:]
	rec, ok := parseRecordHeader(b, atomic.LoadUint64(rc.headerPtr(off)))
	if !ok || rec.invalid() {
		return record{}, false
	}
	return rec, true
}

// noteHit counts a successful cached read and marks the record referenced
// (its second chance at the next eviction).
func (rc *readCache) noteHit(a hlog.Address) {
	rc.mx.hits.Inc()
	off := a &^ cacheAddrBit
	if off < rc.head.Load() {
		return
	}
	p := rc.headerPtr(off)
	for {
		old := atomic.LoadUint64(p)
		if old&(flagCacheRef|flagInvalid) != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|flagCacheRef) {
			return
		}
	}
}

// setInvalid marks the cached record at virtual offset off dead (lost
// publish CAS); eviction skips it without an index lookup.
func (rc *readCache) setInvalid(off uint64) {
	p := rc.headerPtr(off)
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old|flagInvalid) {
			return
		}
	}
}

// fill copies a record fetched from storage into the cache and republishes
// the index entry for hash h from expect (the untagged chain head the read
// observed) to the cached copy. Failure at any step just leaves the cache
// cold — the read already completed from the fetched buffer. g is the
// filling session's epoch guard; eviction refreshes it to let the freed
// frame drain.
func (rc *readCache) fill(g *epoch.Guard, h uint64, key, value []byte, expect hlog.Address) {
	size := uint64(recordSize(len(key), len(value)))
	if size > rc.pageSize {
		return
	}
	rc.mu.Lock()
	off, ok := rc.allocLocked(g, size, true)
	if !ok {
		rc.mu.Unlock()
		return
	}
	b := rc.bytesv[rc.frameFor(off)][off%rc.pageSize:]
	rec := writeRecord(b[:size], expect, 0, key, len(value))
	copy(rec.value, value)
	// Publish while still holding mu: eviction also runs under mu, so the
	// fresh record cannot be evicted between the write and the index CAS
	// (publishing a tagged address already below head would wedge the
	// entry on a dead cache offset). The entry must still hold the
	// untagged chain head the read started from; any interleaved write,
	// delete, compaction republish or competing fill moves the entry and
	// the CAS fails — the cached copy becomes garbage and eviction skips
	// it.
	e, cur, found := rc.s.idx.FindEntry(h)
	if !found || cur != expect || !e.CompareAndSwapAddress(expect, cacheAddrBit|off) {
		rc.setInvalid(off)
	} else {
		rc.mx.fills.Inc()
	}
	rc.mx.bytes.Set(int64(rc.tail - rc.head.Load()))
	rc.mu.Unlock()
}

// allocLocked claims size bytes at the tail, evicting the oldest page if
// the cache is full (mayEvict). Records never span pages; crossing into a
// page whose frame has not finished its epoch drain fails the allocation
// (fail fast — the caller's fill is merely skipped).
func (rc *readCache) allocLocked(g *epoch.Guard, size uint64, mayEvict bool) (uint64, bool) {
	for {
		off := rc.tail
		if rem := rc.pageSize - off%rc.pageSize; size > rem {
			// Pad to the page end; the bytes stay zero (keyLen 0 ends the
			// eviction walk, same convention as the hlog).
			rc.tail += rem
			continue
		}
		if off+size > rc.head.Load()+rc.nFrames*rc.pageSize {
			if !mayEvict || !rc.evictLocked(g) {
				return 0, false
			}
			continue
		}
		if off%rc.pageSize == 0 {
			f := rc.frameFor(off)
			if !rc.ready[f].Load() {
				rc.s.em.Drain() // one non-blocking pass
				if !rc.ready[f].Load() {
					return 0, false
				}
			}
		}
		rc.tail = off + size
		return off, true
	}
}

// evictLocked evicts the page at head: restore every live entry from its
// cached address back to the underlying hlog address, advance head, and
// schedule the frame's zero-and-reuse for after the current epoch drains.
// Records whose reference bit was set (and whose restore succeeded) are
// re-admitted at the tail with the bit cleared — the second chance.
func (rc *readCache) evictLocked(g *epoch.Guard) bool {
	h := rc.head.Load()
	if h >= rc.tail {
		return false
	}
	f := rc.frameFor(h)
	end := h + rc.pageSize
	rc.readmit = rc.readmit[:0]
	rc.scratch = rc.scratch[:0]
	// Re-admission budget: at most half a page, so one eviction always
	// frees net space and re-admission can never cascade into another
	// eviction.
	budget := int(rc.pageSize / 2)
	for off := h; off < end && off < rc.tail; {
		hdr := atomic.LoadUint64(rc.headerPtr(off))
		rec, ok := parseRecordHeader(rc.bytesv[f][off%rc.pageSize:], hdr)
		if !ok {
			break // zero keyLen: page padding, rest of the page is empty
		}
		if !rec.invalid() {
			c := cacheAddrBit | off
			hk := hashKey(rec.key)
			if e, cur, found := rc.s.idx.FindEntry(hk); found && cur == c &&
				e.CompareAndSwapAddress(c, rec.prev()) {
				rc.mx.evictions.Inc()
				if hdr&flagCacheRef != 0 && len(rc.scratch)+len(rec.key)+len(rec.value) <= budget {
					n := len(rc.scratch)
					rc.scratch = append(rc.scratch, rec.key...)
					rc.scratch = append(rc.scratch, rec.value...)
					rc.readmit = append(rc.readmit, readmitRec{
						hash: hk,
						prev: rec.prev(),
						key:  rc.scratch[n : n+len(rec.key)],
						value: rc.scratch[n+len(rec.key) : n+
							len(rec.key)+len(rec.value)],
					})
				}
			}
			// A failed CAS means a writer already redirected the entry (the
			// cached copy was invalidated by RCU) — nothing to restore.
		}
		off += uint64(rec.size)
	}
	ready := &rc.ready[f]
	ready.Store(false)
	rc.head.Store(end)
	frame := rc.frames[f]
	rc.s.em.BumpWith(func() {
		clear(frame)
		ready.Store(true)
	})
	// Our own guard predates the bump and would block the drain forever;
	// refresh it, then run one drain pass so the single-session case
	// reclaims immediately.
	g.Refresh()
	rc.s.em.Drain()

	// Second chances: re-insert referenced records at the tail. Purely
	// best-effort — a full tail or a moved entry just drops the record.
	for i := range rc.readmit {
		r := &rc.readmit[i]
		size := uint64(recordSize(len(r.key), len(r.value)))
		off, ok := rc.allocLocked(g, size, false)
		if !ok {
			break
		}
		b := rc.bytesv[rc.frameFor(off)][off%rc.pageSize:]
		rec := writeRecord(b[:size], r.prev, 0, r.key, len(r.value))
		copy(rec.value, r.value)
		e, cur, found := rc.s.idx.FindEntry(r.hash)
		if !found || cur != r.prev || !e.CompareAndSwapAddress(r.prev, cacheAddrBit|off) {
			rc.setInvalid(off)
		} else {
			rc.mx.fills.Inc()
		}
	}
	return true
}

// redirectPrev CASes the cached record's underlying chain pointer from
// oldPrev to newPrev, preserving the flag bits. Only the
// skip-cache-invalidate mutation seed uses this (mutate_on.go): it links
// a freshly appended hlog record BEHIND the cached copy instead of
// republishing the index entry, so readers keep being served the stale
// cached value — the exact bug class the linearize checker must catch.
func (rc *readCache) redirectPrev(a hlog.Address, oldPrev, newPrev hlog.Address) bool {
	off := a &^ cacheAddrBit
	if off < rc.head.Load() {
		return false
	}
	p := rc.headerPtr(off)
	old := atomic.LoadUint64(p)
	if old&prevMask != uint64(oldPrev) || old&flagInvalid != 0 {
		return false
	}
	return atomic.CompareAndSwapUint64(p, old, old&^prevMask|uint64(newPrev)&prevMask)
}

// splitProbe resolves a freshly probed index-entry address. Untagged
// addresses pass through. For a cache-tagged address it dereferences the
// cached record: chain is the underlying hlog chain head (what the entry
// held before the fill), crec the cached record itself. stale means the
// cached record was evicted between the probe and the deref — the caller
// must re-probe the index. The caller holds epoch protection across
// probe, splitProbe and every use of crec, with no guard refresh between
// (in particular: resolve BEFORE any Allocate, which can refresh).
func (s *Store) splitProbe(raw hlog.Address) (chain hlog.Address, crec record, cached, stale bool) {
	if !isCacheAddr(raw) {
		return raw, record{}, false, false
	}
	rec, ok := s.rc.recordAt(raw)
	if !ok {
		return hlog.InvalidAddress, record{}, false, true
	}
	return rec.prev(), rec, true, false
}

// noteCacheInvalidation counts an index entry moving off a cached copy
// (writer RCU or deletion).
func (s *Store) noteCacheInvalidation() {
	if s.rc != nil {
		s.rc.mx.invalidations.Inc()
	}
}

// ReadCacheMetrics is a point-in-time snapshot of read-cache activity.
type ReadCacheMetrics struct {
	Hits          uint64
	Misses        uint64
	Fills         uint64
	Evictions     uint64
	Invalidations uint64
	Bytes         int64 // live cached bytes right now
}

func (rc *readCache) metrics() ReadCacheMetrics {
	if rc == nil {
		return ReadCacheMetrics{}
	}
	return ReadCacheMetrics{
		Hits:          rc.mx.hits.Load(),
		Misses:        rc.mx.misses.Load(),
		Fills:         rc.mx.fills.Load(),
		Evictions:     rc.mx.evictions.Load(),
		Invalidations: rc.mx.invalidations.Load(),
		Bytes:         rc.mx.bytes.Load(),
	}
}
