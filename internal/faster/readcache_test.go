package faster

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/device"
	"repro/internal/ycsb"
)

// openCacheStore builds a small-buffer hybrid store with a read cache of
// cacheBytes and spills n keys to the device (key i holds u64(i+1)).
func openCacheStore(t *testing.T, cacheBytes uint64, n uint64) (*Store, *Session) {
	t.Helper()
	mem := device.NewMem(device.MemConfig{})
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: mem,
		ReadCacheBytes: cacheBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	sess := s.StartSession()
	t.Cleanup(func() { sess.Close() })
	spill(t, s, sess, n)
	return s, sess
}

// rcRead reads key k, draining the pending completion on a cold miss.
func rcRead(t *testing.T, sess *Session, k uint64) (uint64, Status) {
	t.Helper()
	out := make([]byte, 8)
	st, err := sess.Read(key(k), nil, out, nil)
	if err != nil {
		t.Fatalf("read of key %d: %v", k, err)
	}
	if st == Pending {
		results := sess.CompletePending(true)
		if len(results) != 1 {
			t.Fatalf("read of key %d: drained %d results, want 1", k, len(results))
		}
		if results[0].Err != nil {
			t.Fatalf("read of key %d: %v", k, results[0].Err)
		}
		st = results[0].Status
		if results[0].Output != nil {
			copy(out, results[0].Output)
		}
	}
	return binary.LittleEndian.Uint64(out), st
}

// TestReadCacheFillAndHit: a cold read fills the cache, and the next read
// of the same key is served from memory without going pending.
func TestReadCacheFillAndHit(t *testing.T) {
	s, sess := openCacheStore(t, 64<<10, 1500)
	// Key 0 was written first, so it is far below the head address.
	if v, st := rcRead(t, sess, 0); st != OK || v != 1 {
		t.Fatalf("cold read = (%d, %v), want (1, OK)", v, st)
	}
	m := s.Metrics().ReadCache
	if m.Misses == 0 || m.Fills == 0 {
		t.Fatalf("cold read did not fill the cache: %+v", m)
	}
	// The second read must be a cache hit: OK synchronously, not Pending.
	out := make([]byte, 8)
	st, err := sess.Read(key(0), nil, out, nil)
	if err != nil || st != OK {
		t.Fatalf("cached read = %v %v, want synchronous OK", st, err)
	}
	if got := binary.LittleEndian.Uint64(out); got != 1 {
		t.Fatalf("cached read = %d, want 1", got)
	}
	if m2 := s.Metrics().ReadCache; m2.Hits == 0 {
		t.Fatalf("cached read did not count a hit: %+v", m2)
	}
}

// TestReadCacheInvalidation: upserts, RMWs and deletes of a cached key
// must republish the index entry off the cached copy — readers see the
// new value immediately, never the stale cached one.
func TestReadCacheInvalidation(t *testing.T) {
	s, sess := openCacheStore(t, 64<<10, 1500)

	warm := func(k, want uint64) {
		t.Helper()
		if v, st := rcRead(t, sess, k); st != OK || v != want {
			t.Fatalf("warming read of key %d = (%d, %v), want (%d, OK)", k, v, st, want)
		}
		if v, st := rcRead(t, sess, k); st != OK || v != want {
			t.Fatalf("cached read of key %d = (%d, %v), want (%d, OK)", k, v, st, want)
		}
	}

	// Upsert over a cached key.
	warm(1, 2)
	if st, err := sess.Upsert(key(1), u64(999)); st != OK || err != nil {
		t.Fatalf("upsert over cached key = %v %v", st, err)
	}
	if v, st := rcRead(t, sess, 1); st != OK || v != 999 {
		t.Fatalf("read after upsert = (%d, %v), want (999, OK)", v, st)
	}

	// RMW over a cached key (device-read-free fast path: the cached copy
	// is by construction the newest version).
	warm(2, 3)
	if st, err := sess.RMW(key(2), u64(10), nil); err != nil {
		t.Fatalf("rmw over cached key: %v", err)
	} else if st == Pending {
		sess.CompletePending(true)
	}
	if v, st := rcRead(t, sess, 2); st != OK || v != 13 {
		t.Fatalf("read after rmw = (%d, %v), want (13, OK)", v, st)
	}

	// Delete of a cached key.
	warm(3, 4)
	if st, err := sess.Delete(key(3)); st != OK || err != nil {
		t.Fatalf("delete of cached key = %v %v", st, err)
	}
	if _, st := rcRead(t, sess, 3); st != NotFound {
		t.Fatalf("read after delete = %v, want NotFound", st)
	}

	if m := s.Metrics().ReadCache; m.Invalidations == 0 {
		t.Fatalf("writers over cached keys counted no invalidations: %+v", m)
	}
}

// TestReadCacheEviction: a cache much smaller than the cold working set
// must evict (restoring the underlying addresses) while every read keeps
// returning the correct value, and the live-bytes gauge stays bounded.
func TestReadCacheEviction(t *testing.T) {
	s, sess := openCacheStore(t, 2<<10, 1500)
	for k := uint64(0); k < 200; k++ {
		if v, st := rcRead(t, sess, k); st != OK || v != k+1 {
			t.Fatalf("read of key %d = (%d, %v), want (%d, OK)", k, v, st, k+1)
		}
	}
	m := s.Metrics().ReadCache
	if m.Evictions == 0 {
		t.Fatalf("200 fills through a 2KB cache never evicted: %+v", m)
	}
	if m.Bytes < 0 || m.Bytes > 2<<10 {
		t.Fatalf("live cached bytes %d outside budget [0, 2048]", m.Bytes)
	}
	// Evicted keys must still read correctly (back through the device).
	for k := uint64(0); k < 200; k += 17 {
		if v, st := rcRead(t, sess, k); st != OK || v != k+1 {
			t.Fatalf("re-read of key %d = (%d, %v), want (%d, OK)", k, v, st, k+1)
		}
	}
}

// TestIOCoalescedReads: concurrent cold reads whose records share one
// hlog block must complete through a single device call; the follower
// joins count on io.coalesced_reads.
func TestIOCoalescedReads(t *testing.T) {
	mem := device.NewMem(device.MemConfig{ReadLatency: 2 * time.Millisecond})
	s, err := Open(Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	sess := s.StartSession()
	defer sess.Close()
	spill(t, s, sess, 1500)

	// Keys 200..215 were appended back-to-back (32-byte records), so they
	// share one 4 KB block far below the head address. Issue all sixteen
	// reads before draining: the first becomes the block leader, and the
	// rest attach to its in-flight device read.
	outs := make([][]byte, 16)
	pending := 0
	for i := range outs {
		outs[i] = make([]byte, 8)
		st, err := sess.Read(key(uint64(200+i)), nil, outs[i], nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			pending++
		} else if st == OK {
			if got := binary.LittleEndian.Uint64(outs[i]); got != uint64(200+i+1) {
				t.Fatalf("resident read of key %d = %d", 200+i, got)
			}
		}
	}
	if pending < 2 {
		t.Fatalf("only %d reads went pending; nothing to coalesce (shrink the buffer)", pending)
	}
	results := sess.CompletePending(true)
	if len(results) != pending {
		t.Fatalf("drained %d results, want %d", len(results), pending)
	}
	for _, r := range results {
		if r.Status != OK || r.Err != nil {
			t.Fatalf("coalesced read = %v %v", r.Status, r.Err)
		}
	}
	for i := range outs {
		if got := binary.LittleEndian.Uint64(outs[i]); got != uint64(200+i+1) {
			t.Fatalf("key %d = %d, want %d", 200+i, got, 200+i+1)
		}
	}
	if m := s.Metrics(); m.IOCoalescedReads == 0 {
		t.Fatalf("16 same-block pending reads coalesced nothing: %+v", m)
	}
}

// TestReadCacheSimCLOCKPrediction validates internal/cachesim against the
// real read cache: a scrambled zipf(0.99) trace replayed through the real
// store must land within tolerance of the simulator's CLOCK miss-ratio
// prediction at the same record capacity (EXPERIMENTS.md records the
// measured pairs).
func TestReadCacheSimCLOCKPrediction(t *testing.T) {
	const (
		keys     = 8192
		accesses = 60000
		recBytes = 32 // recordSize(8, 8)
	)
	for _, frac := range []uint64{8, 16} {
		frac := frac
		t.Run(fmt.Sprintf("resident=1_%d", frac), func(t *testing.T) {
			cacheBytes := uint64(keys / frac * recBytes)

			// One shared trace: the comparison is only meaningful when the
			// simulator and the store replay identical access sequences.
			g := ycsb.NewZipfian(keys, ycsb.DefaultTheta, 42)
			trace := make([]uint64, accesses)
			for i := range trace {
				trace[i] = g.Next()
			}

			c := cachesim.NewCLOCK(int(cacheBytes / recBytes))
			simMisses := 0
			for _, k := range trace {
				if !c.Access(k) {
					simMisses++
				}
			}
			simRatio := float64(simMisses) / float64(accesses)

			mem := device.NewMem(device.MemConfig{})
			s, err := Open(Config{
				Ops: SumOps{}, PageBits: 12, BufferPages: 4,
				IndexBuckets: 1 << 13, Device: mem,
				ReadCacheBytes: cacheBytes,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				s.Close()
				mem.Close()
			}()
			sess := s.StartSession()
			defer sess.Close()
			for i := uint64(0); i < keys; i++ {
				if st, err := sess.Upsert(key(i), u64(i+1)); st != OK || err != nil {
					t.Fatalf("load key %d: %v %v", i, st, err)
				}
			}
			for _, k := range trace {
				if v, st := rcRead(t, sess, k); st != OK || v != k+1 {
					t.Fatalf("trace read of key %d = (%d, %v)", k, v, st)
				}
			}
			m := s.Metrics().ReadCache
			if m.Hits+m.Misses == 0 {
				t.Fatal("trace never reached the read cache (no cold reads)")
			}
			realRatio := float64(m.Misses) / float64(m.Hits+m.Misses)
			diff := realRatio - simRatio
			if diff < 0 {
				diff = -diff
			}
			t.Logf("resident 1/%d: sim CLOCK miss ratio %.4f, real %.4f (hits=%d misses=%d fills=%d evictions=%d)",
				frac, simRatio, realRatio, m.Hits, m.Misses, m.Fills, m.Evictions)
			if diff > 0.08 {
				t.Errorf("real miss ratio %.4f deviates from CLOCK prediction %.4f by %.4f (> 0.08)",
					realRatio, simRatio, diff)
			}
		})
	}
}
