package faster

import (
	"encoding/binary"
	"errors"
	"sync/atomic"

	"repro/internal/hlog"
)

// Record layout (8-byte aligned, never spans a page):
//
//	word 0  header: previous address (bits 0..47) and flag bits
//	word 1  keyLen (uint32) | valueLen (uint32)
//	        key bytes, padded to 8
//	        value bytes, padded to 8
//
// The header word is the unit of atomic manipulation: linking a record
// into a chain, marking it invalid after a lost index CAS, and tombstoning
// all happen with 64-bit atomics on this word (Fig 2 of the paper; the
// extra flag bits are the invalid/tombstone bits of §4 plus the delta bit
// used for CRDT updates in the fuzzy region and the overwrite bit of
// Appendix C).

const (
	recHeaderBytes = 16

	flagInvalid   uint64 = 1 << 48
	flagTombstone uint64 = 1 << 49
	flagDelta     uint64 = 1 << 50
	flagOverwrite uint64 = 1 << 51
	flagSealed    uint64 = 1 << 52
	// flagCacheRef is the second-chance reference bit of read-cache
	// records (readcache.go). It is only ever set on records living in
	// the cache's own circular log, never on hlog records, so durable
	// log images are unaffected.
	flagCacheRef uint64 = 1 << 53

	prevMask uint64 = 1<<48 - 1
)

// pad8 rounds n up to a multiple of 8.
func pad8(n int) int { return (n + 7) &^ 7 }

// errCorruptRecord reports an undecodable record image read from storage.
var errCorruptRecord = errors.New("faster: corrupt record")

// probeSize computes the full record size from a header prefix fetched
// from storage. It returns 0 for padding or a corrupt prefix.
func probeSize(hdr []byte) uint32 {
	if len(hdr) < recHeaderBytes {
		return 0
	}
	keyLen := int(binary.LittleEndian.Uint32(hdr[8:]))
	valueLen := int(binary.LittleEndian.Uint32(hdr[12:]))
	if keyLen == 0 {
		return 0
	}
	return recordSize(keyLen, valueLen)
}

// recordSize returns the allocation size for a record.
func recordSize(keyLen, valueLen int) uint32 {
	return uint32(recHeaderBytes + pad8(keyLen) + pad8(valueLen))
}

// record is a decoded view over a record's bytes (in a page frame or a
// read buffer). The slices alias the underlying memory.
type record struct {
	header uint64
	key    []byte
	value  []byte
	size   uint32 // total allocated size
}

func (r *record) prev() hlog.Address { return r.header & prevMask }
func (r *record) invalid() bool      { return r.header&flagInvalid != 0 }
func (r *record) tombstone() bool    { return r.header&flagTombstone != 0 }
func (r *record) delta() bool        { return r.header&flagDelta != 0 }
func (r *record) sealed() bool       { return r.header&flagSealed != 0 }

// parseRecord decodes the record at the start of b. It returns false if b
// is too short or holds a zero header-and-length prefix (page padding).
// b must be private memory (an I/O buffer): for records in live log
// memory the header word is concurrently CASed (tombstone/seal/invalid
// bits) and must be loaded atomically — use parseRecordHeader with the
// atomically loaded header instead.
func parseRecord(b []byte) (record, bool) {
	if len(b) < recHeaderBytes {
		return record{}, false
	}
	return parseRecordHeader(b, binary.LittleEndian.Uint64(b))
}

// parseRecordHeader decodes the record at the start of b using an
// already-loaded header word. Lengths, key bytes and the value layout are
// immutable once a record is reachable, so plain reads of them are safe
// even in live log memory.
func parseRecordHeader(b []byte, header uint64) (record, bool) {
	if len(b) < recHeaderBytes {
		return record{}, false
	}
	keyLen := int(binary.LittleEndian.Uint32(b[8:]))
	valueLen := int(binary.LittleEndian.Uint32(b[12:]))
	if keyLen == 0 {
		// Records always carry a key; a zero keyLen marks end-of-page
		// padding or an unwritten region.
		return record{}, false
	}
	size := recordSize(keyLen, valueLen)
	if int(size) > len(b) {
		return record{}, false
	}
	keyStart := recHeaderBytes
	valStart := keyStart + pad8(keyLen)
	return record{
		header: header,
		key:    b[keyStart : keyStart+keyLen],
		value:  b[valStart : valStart+valueLen],
		size:   size,
	}, true
}

// writeRecord lays out a fresh record into b (the just-allocated log
// slice). The record is not yet reachable, so plain stores are safe; the
// index CAS that publishes it provides the release barrier.
func writeRecord(b []byte, prev hlog.Address, flags uint64, key []byte, valueLen int) record {
	binary.LittleEndian.PutUint64(b, prev&prevMask|flags)
	binary.LittleEndian.PutUint32(b[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(b[12:], uint32(valueLen))
	keyStart := recHeaderBytes
	copy(b[keyStart:], key)
	// Zero key padding so log images are deterministic.
	for i := keyStart + len(key); i < keyStart+pad8(len(key)); i++ {
		b[i] = 0
	}
	valStart := keyStart + pad8(len(key))
	return record{
		header: prev&prevMask | flags,
		key:    b[keyStart : keyStart+len(key)],
		value:  b[valStart : valStart+valueLen],
		size:   recordSize(len(key), valueLen),
	}
}

// headerPtr returns the atomically addressable header word of the record
// at addr, which must be in memory.
func (s *Store) headerPtr(addr hlog.Address) *uint64 { return s.log.Uint64Ptr(addr) }

// setInvalid marks the in-memory record at addr invalid (lost index CAS).
func (s *Store) setInvalid(addr hlog.Address) {
	p := s.headerPtr(addr)
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old|flagInvalid) {
			return
		}
	}
}

// seal marks the mutable record at addr sealed: an updater declined to
// modify it in place (the new value does not fit), so every subsequent
// update must copy to the tail. This is the record-freezing technique of
// variable-length FASTER; without it a lagging in-place writer could race
// with the copy-update that supersedes the record.
func (s *Store) seal(addr hlog.Address) {
	p := s.headerPtr(addr)
	for {
		old := atomic.LoadUint64(p)
		if old&flagSealed != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|flagSealed) {
			return
		}
	}
}

// setOverwritten sets the overwrite hint bit (Appendix C) on the
// in-memory record at addr, recording that a newer version exists.
// Deviation from Appendix C (which permits setting the bit in the
// read-only region "until it gets flushed to disk"): we only set it in
// the mutable region, because a header write concurrent with the page's
// flush would make the durable image nondeterministic.
func (s *Store) setOverwritten(addr hlog.Address) {
	if addr < s.log.ReadOnlyAddress() {
		return
	}
	p := s.headerPtr(addr)
	for {
		old := atomic.LoadUint64(p)
		if old&flagOverwrite != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(p, old, old|flagOverwrite) {
			return
		}
	}
}

// recordAt decodes the in-memory record at addr. The caller must hold
// epoch protection and have checked addr >= head. The header word is
// loaded atomically: concurrent operations CAS flag bits into it, and a
// plain read would race (the linearize harness caught exactly this).
func (s *Store) recordAt(addr hlog.Address) (record, bool) {
	b := s.log.Slice(addr)
	if len(b) < recHeaderBytes {
		return record{}, false
	}
	return parseRecordHeader(b, atomic.LoadUint64(s.headerPtr(addr)))
}
