package faster

import (
	"bytes"
	"testing"
)

// The record header packs the previous address into bits 0..47 with the
// invalid/tombstone/delta/overwrite/sealed flags directly above. These
// tests pin the packing at the top of the 48-bit address space: a prev
// address must never leak into the flag field and vice versa.

func TestRecordPrevPackingAtBoundary(t *testing.T) {
	k := []byte("boundary-key")
	const valueLen = 24
	size := recordSize(len(k), valueLen)
	prev := uint64(1)<<48 - uint64(size) // highest address a same-size predecessor could occupy

	buf := make([]byte, size)
	rec := writeRecord(buf, prev, 0, k, valueLen)
	if rec.prev() != prev {
		t.Fatalf("prev round-trip = %#x, want %#x", rec.prev(), prev)
	}
	if rec.invalid() || rec.tombstone() || rec.delta() || rec.sealed() {
		t.Fatalf("boundary prev set flag bits: header=%#x", rec.header)
	}

	parsed, ok := parseRecord(buf)
	if !ok {
		t.Fatal("parseRecord failed")
	}
	if parsed.prev() != prev {
		t.Fatalf("parsed prev = %#x, want %#x", parsed.prev(), prev)
	}
	if !bytes.Equal(parsed.key, k) {
		t.Fatalf("parsed key = %q, want %q", parsed.key, k)
	}
	if parsed.invalid() || parsed.tombstone() {
		t.Fatalf("parsed flags corrupted: header=%#x", parsed.header)
	}
}

func TestRecordPrevStrayHighBitsMasked(t *testing.T) {
	k := []byte("k")
	buf := make([]byte, recordSize(len(k), 8))

	// A prev value with garbage above bit 47 — exactly where flagInvalid
	// and flagTombstone live — must be masked by writeRecord, or a stale
	// high bit would make a freshly written record invisible (invalid) or
	// deleted (tombstone).
	stray := uint64(0x1234) | flagInvalid | flagTombstone | 1<<60
	rec := writeRecord(buf, stray, 0, k, 8)
	if rec.prev() != 0x1234 {
		t.Fatalf("prev = %#x, want 0x1234", rec.prev())
	}
	if rec.invalid() {
		t.Fatal("stray bit 48 leaked into flagInvalid")
	}
	if rec.tombstone() {
		t.Fatal("stray bit 49 leaked into flagTombstone")
	}

	// Flags requested explicitly must coexist with a boundary prev.
	rec2 := writeRecord(buf, uint64(1)<<48-64, flagTombstone, k, 8)
	if !rec2.tombstone() {
		t.Fatal("explicit tombstone flag lost")
	}
	if rec2.prev() != uint64(1)<<48-64 {
		t.Fatalf("prev = %#x, want %#x", rec2.prev(), uint64(1)<<48-64)
	}
}
