package faster

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/hlog"
)

func TestScanSeesAllLiveRecords(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	const n = 800
	for i := uint64(0); i < n; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()

	// Scan the whole log; the newest version of every key must appear.
	newest := map[uint64]uint64{}
	err := s.Scan(ScanOptions{}, func(r ScanRecord) bool {
		k := binary.LittleEndian.Uint64(r.Key)
		if !r.Tombstone {
			newest[k] = binary.LittleEndian.Uint64(r.Value)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(newest) != n {
		t.Fatalf("scan found %d keys, want %d", len(newest), n)
	}
	for k, v := range newest {
		if v != k+1 {
			t.Fatalf("scan: key %d = %d, want %d", k, v, k+1)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	for i := uint64(0); i < 100; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	sess.Close()
	count := 0
	s.Scan(ScanOptions{}, func(ScanRecord) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("scan yielded %d records after early stop, want 10", count)
	}
}

func TestScanSkipsInvalidByDefault(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	sess.RMW(key(1), u64(1), nil)
	sess.Close()
	// Forge an invalid record by direct manipulation: append then mark.
	g := s.em.Acquire()
	addr, err := s.log.Allocate(recordSize(8, 8), g)
	if err != nil {
		t.Fatal(err)
	}
	writeRecord(s.log.Slice(addr)[:recordSize(8, 8)], 0, 0, key(2), 8)
	s.setInvalid(addr)
	g.Release()

	var keys []uint64
	s.Scan(ScanOptions{}, func(r ScanRecord) bool {
		keys = append(keys, binary.LittleEndian.Uint64(r.Key))
		return true
	})
	if len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("scan keys = %v, want [1]", keys)
	}
	var withInvalid int
	s.Scan(ScanOptions{IncludeInvalid: true}, func(r ScanRecord) bool {
		withInvalid++
		return true
	})
	if withInvalid != 2 {
		t.Fatalf("scan with invalid = %d records, want 2", withInvalid)
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dev := device.NewMem(device.MemConfig{})
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	const n = 500
	for i := uint64(0); i < n; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()

	info, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.T2 < info.T1 {
		t.Fatalf("checkpoint bracket inverted: %+v", info)
	}

	// Post-checkpoint updates must NOT survive recovery (they are past
	// t2 and unflushed): monotonicity per §6.5.
	sess2 := s.StartSession()
	sess2.RMW(key(0), u64(1000), nil)
	sess2.Close()
	s.Close()

	// Recover using the same device (its contents are the durable log).
	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.StartSession()
	defer rs.Close()
	for i := uint64(0); i < n; i++ {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("recovered key %d = (%d, %v), want (%d, OK)", i, got, st, i+1)
		}
	}
}

func TestRecoveredStoreAcceptsNewWrites(t *testing.T) {
	dir := t.TempDir()
	dev := device.NewMem(device.MemConfig{})
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 256, Device: dev}
	s, _ := Open(cfg)
	sess := s.StartSession()
	for i := uint64(0); i < 300; i++ {
		sess.RMW(key(i), u64(1), nil)
	}
	sess.CompletePending(true)
	sess.Close()
	if _, err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.StartSession()
	defer rs.Close()
	// Updates on recovered data.
	for i := uint64(0); i < 300; i++ {
		st, err := rs.RMW(key(i), u64(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			rs.CompletePending(true)
		}
	}
	got, st := readU64(t, rs, key(5))
	if st != OK || got != 2 {
		t.Fatalf("key 5 after recovery+RMW = (%d, %v), want (2, OK)", got, st)
	}
	// Brand-new keys too.
	rs.RMW(key(9999), u64(7), nil)
	got, st = readU64(t, rs, key(9999))
	if st != OK || got != 7 {
		t.Fatalf("new key after recovery = (%d, %v)", got, st)
	}
}

func TestRebuildIndexMatchesLiveIndex(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 16})
	sess := s.StartSession()
	rng := rand.New(rand.NewSource(1))
	live := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0, 1:
			st, _ := sess.RMW(key(k), u64(1), nil)
			if st == Pending {
				sess.CompletePending(true)
			}
			live[k]++
		case 2:
			st, _ := sess.Delete(key(k))
			if st == OK || st == NotFound {
				delete(live, k)
			}
		}
	}
	sess.CompletePending(true)
	sess.Close()

	if err := s.RebuildIndex(); err != nil {
		t.Fatal(err)
	}
	rs := s.StartSession()
	defer rs.Close()
	for k, want := range live {
		got, st := readU64(t, rs, key(k))
		if st != OK || got != want {
			t.Fatalf("rebuilt index: key %d = (%d, %v), want (%d, OK)", k, got, st, want)
		}
	}
	for k := uint64(0); k < 200; k++ {
		if _, ok := live[k]; ok {
			continue
		}
		if _, st := readU64(t, rs, key(k)); st != NotFound {
			t.Fatalf("rebuilt index: deleted key %d = %v, want NotFound", k, st)
		}
	}
}

func TestTruncateUntilDropsOldData(t *testing.T) {
	s, _ := openTestStore(t, Config{BufferPages: 8})
	sess := s.StartSession()
	for i := uint64(0); i < 1500; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)

	head := s.Log().HeadAddress()
	if head == 0 {
		t.Skip("log did not spill")
	}
	// TruncateUntil waits for an epoch drain before freeing the device
	// range; the session must not pin the epoch while it runs.
	sess.Park()
	if err := s.TruncateUntil(head / 2); err != nil {
		t.Fatal(err)
	}
	sess.Unpark()
	// Keys whose only record is below the truncation point read NotFound;
	// keys above still resolve. Count both behaviours.
	var found, missing int
	for i := uint64(0); i < 1500; i++ {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st = r.Status
				_ = r
			}
		}
		switch st {
		case OK:
			found++
		case NotFound:
			missing++
		default:
			t.Fatalf("Read(%d) = %v", i, st)
		}
	}
	if missing == 0 {
		t.Fatal("truncation dropped nothing")
	}
	if found == 0 {
		t.Fatal("truncation dropped everything")
	}
	sess.Close()
}

func TestCRDTDeltasInFuzzyRegion(t *testing.T) {
	// With CRDT enabled, RMWs never go pending in the fuzzy region; they
	// append delta records that reads reconcile.
	s, _ := openTestStore(t, Config{CRDT: true, BufferPages: 8, MutableFraction: 0.25})
	sess := s.StartSession()
	defer sess.Close()
	const keys = 50
	const rounds = 40
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < keys; i++ {
			st, err := sess.RMW(key(i), u64(1), nil)
			if err != nil {
				t.Fatal(err)
			}
			if st == Pending {
				// CRDT mode may still go pending for on-disk records.
				sess.CompletePending(true)
			}
		}
	}
	for i := uint64(0); i < keys; i++ {
		got, st := readU64(t, sess, key(i))
		if st != OK || got != rounds {
			t.Fatalf("CRDT counter %d = (%d, %v), want (%d, OK)", i, got, st, rounds)
		}
	}
	if s.Stats().FuzzyRMWs != 0 {
		t.Fatalf("CRDT store deferred %d fuzzy RMWs; deltas should have handled them", s.Stats().FuzzyRMWs)
	}
}

func TestGrowIndexUnderLoad(t *testing.T) {
	s, _ := openTestStore(t, Config{IndexBuckets: 64, BufferPages: 32})
	sess := s.StartSession()
	for i := uint64(0); i < 1000; i++ {
		sess.RMW(key(i), u64(i+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()

	before := s.Index().Size()
	if err := s.GrowIndex(); err != nil {
		t.Fatal(err)
	}
	if s.Index().Size() != before*2 {
		t.Fatalf("index size %d after grow, want %d", s.Index().Size(), before*2)
	}
	rs := s.StartSession()
	defer rs.Close()
	for i := uint64(0); i < 1000; i++ {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i+1 {
			t.Fatalf("after grow: key %d = (%d, %v)", i, got, st)
		}
	}
}

// modelStep drives the store and a map model identically.
type modelStep struct {
	Op  uint8
	Key uint8
	Val uint16
}

// TestQuickStoreMatchesModel checks Read/Upsert/RMW/Delete against a
// simple map oracle for arbitrary operation sequences, across all three
// allocator modes.
func TestQuickStoreMatchesModel(t *testing.T) {
	run := func(steps []modelStep, cfg Config) bool {
		s, _ := openTestStore(t, cfg)
		sess := s.StartSession()
		defer sess.Close()
		model := map[uint64]uint64{}
		for _, st := range steps {
			k := uint64(st.Key % 32)
			switch st.Op % 4 {
			case 0: // upsert (blind set via BlobOps semantics of SumOps writer)
				v := uint64(st.Val)
				if rc, err := sess.Upsert(key(k), u64(v)); err != nil || rc != OK {
					return false
				}
				model[k] = v
			case 1: // rmw add
				rc, err := sess.RMW(key(k), u64(uint64(st.Val)), nil)
				if err != nil {
					return false
				}
				if rc == Pending {
					for _, r := range sess.CompletePending(true) {
						if r.Status != OK {
							return false
						}
					}
				}
				model[k] += uint64(st.Val)
			case 2: // delete
				if _, err := sess.Delete(key(k)); err != nil {
					return false
				}
				delete(model, k)
			case 3: // read
				out := make([]byte, 8)
				rc, err := sess.Read(key(k), nil, out, nil)
				if err != nil {
					return false
				}
				if rc == Pending {
					res := sess.CompletePending(true)
					if len(res) != 1 {
						return false
					}
					rc = res[0].Status
				}
				want, ok := model[k]
				if ok != (rc == OK) {
					return false
				}
				if ok && binary.LittleEndian.Uint64(out) != want {
					return false
				}
			}
		}
		// Final verification of every key.
		for k, want := range model {
			got, rc := readU64(t, sess, key(k))
			if rc != OK || got != want {
				return false
			}
		}
		return true
	}
	cfgs := map[string]Config{
		"hybrid-small-buffer": {BufferPages: 4, PageBits: 12},
		"hybrid-crdt":         {BufferPages: 4, PageBits: 12, CRDT: true},
		"append-only":         {BufferPages: 8, PageBits: 12, Mode: hlog.ModeAppendOnly},
	}
	for name, cfg := range cfgs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			f := func(steps []modelStep) bool { return run(steps, cfg) }
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCheckpointRecoverWithFileDevice(t *testing.T) {
	// End-to-end durability: the log lives in a real file; the store is
	// closed, a fresh device reopens the same file, and recovery restores
	// all checkpointed state.
	dir := t.TempDir()
	logPath := dir + "/faster.log"
	dev, err := device.OpenFile(logPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 256, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	for i := uint64(0); i < 400; i++ {
		sess.RMW(key(i), u64(i*2+1), nil)
	}
	sess.CompletePending(true)
	sess.Close()
	if _, err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	s.Close()
	dev.Close()

	dev2, err := device.OpenFile(logPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Device = dev2
	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r.Close()
		dev2.Close()
	}()
	rs := r.StartSession()
	defer rs.Close()
	for i := uint64(0); i < 400; i += 17 {
		got, st := readU64(t, rs, key(i))
		if st != OK || got != i*2+1 {
			t.Fatalf("file-device recovery: key %d = (%d, %v), want (%d, OK)", i, got, st, i*2+1)
		}
	}
}
