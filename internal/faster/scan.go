package faster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hlog"
)

// Log scanning (Appendix F): the HybridLog is record-oriented and
// approximately time-ordered, so it doubles as a change feed for
// analytics. Scan walks a logical-address window in order, decoding
// records from memory frames when resident and from the device otherwise.
//
// Scan reads whole pages from the device, so it is also the replay engine
// used by recovery (checkpoint.go).

// ScanRecord is one record yielded by Scan.
type ScanRecord struct {
	// Address is the record's logical address.
	Address hlog.Address
	// Key and Value alias a transient buffer; copy them to retain.
	Key, Value []byte
	// Tombstone marks a delete marker record.
	Tombstone bool
	// Delta marks a CRDT partial-update record.
	Delta bool
	// Invalid marks a record that lost its index insert race; analytics
	// normally skip these, so Scan only yields them when includeInvalid
	// is set on the call.
	Invalid bool
	// Previous is the address of the prior version in this record's
	// hash chain.
	Previous hlog.Address
}

// ScanOptions controls Scan.
type ScanOptions struct {
	// From and To bound the scan window [From, To); zero values default
	// to the begin address and tail address respectively.
	From, To hlog.Address
	// IncludeInvalid also yields records that lost their publish race.
	IncludeInvalid bool
}

// Scan invokes fn for every record in the window, in log order. Returning
// false from fn stops the scan early. Scan is safe to run concurrently
// with operations, but the window above the safe read-only offset is read
// without synchronisation against in-place updates; analytics scans
// normally stop at SafeReadOnlyAddress (pass To: 0 on a quiesced store, or
// To: s.Log().SafeReadOnlyAddress() on a live one).
func (s *Store) Scan(opts ScanOptions, fn func(r ScanRecord) bool) error {
	from, to := opts.From, opts.To
	if from == 0 {
		from = s.log.BeginAddress()
	}
	if to == 0 {
		to = s.log.TailAddress()
	}
	if from >= to {
		return nil
	}
	pageSize := s.log.PageSize()
	pageBuf := make([]byte, pageSize)

	// Epoch protection keeps resident pages from being evicted under the
	// scan; refreshing at page granularity bounds how long we pin them.
	g := s.em.Acquire()
	defer g.Release()

	addr := from
	for addr < to {
		g.Refresh()
		pageStart := addr &^ (pageSize - 1)
		pageEnd := pageStart + pageSize
		var page []byte
		if s.log.InMemory(pageStart) {
			page = s.log.Slice(pageStart)[:pageSize]
		} else {
			// Fetch the flushed page (or its prefix, if the window ends
			// inside it) from the device.
			end := pageEnd
			if to < end {
				end = to
			}
			buf := pageBuf[:end-pageStart]
			// Page reads retry transient device faults under the read
			// policy; this is what lets Recover and RebuildIndex survive a
			// flaky device instead of aborting on the first hiccup.
			err := s.cfg.ReadRetry.Do(s.classify, func() error {
				errCh := make(chan error, 1)
				s.log.ReadAsync(pageStart, buf, func(err error) { errCh <- err })
				return <-errCh
			})
			if err != nil {
				return fmt.Errorf("faster: scan read page at %#x: %w", pageStart, err)
			}
			page = buf
		}
		inMemory := s.log.InMemory(pageStart)
		// Walk records within the page.
		for addr < to && addr < pageEnd {
			off := addr - pageStart
			if uint64(len(page)) <= off {
				break
			}
			// Resident pages are live memory whose header words may be
			// concurrently CASed; load them atomically. Fetched pages
			// are private buffers.
			var rec record
			var ok bool
			if inMemory && uint64(len(page)) >= off+recHeaderBytes {
				rec, ok = parseRecordHeader(page[off:], atomic.LoadUint64(s.log.Uint64Ptr(addr)))
			} else {
				rec, ok = parseRecord(page[off:])
			}
			if !ok {
				// A record that cannot be decoded marks end-of-page padding
				// (a straddling allocation wastes the rest of the page, which
				// stays zero). Every abandoned slot is laid out as a full
				// invalid record precisely so this break never skips live
				// data; the assert guards that invariant for the stable
				// region, where all records are fully written.
				if debugAssert() {
					limit := pageEnd
					if to < limit {
						limit = to
					}
					if sro := s.log.SafeReadOnlyAddress(); sro < limit {
						limit = sro
					}
					for a := addr; a < limit; a++ {
						if page[a-pageStart] != 0 {
							panic(fmt.Sprintf("hlog scan: nonzero byte at %#x after undecodable record at %#x (page %#x): live data would be skipped",
								a, addr, pageStart))
						}
					}
				}
				break // padding: rest of page is empty
			}
			if !rec.invalid() || opts.IncludeInvalid {
				cont := fn(ScanRecord{
					Address:   addr,
					Key:       rec.key,
					Value:     rec.value,
					Tombstone: rec.tombstone(),
					Delta:     rec.delta(),
					Invalid:   rec.invalid(),
					Previous:  rec.prev(),
				})
				if !cont {
					return nil
				}
			}
			addr += uint64(rec.size)
		}
		addr = pageEnd
	}
	return nil
}

// Compaction (copy-forward GC over the stable region) lives in
// compact.go; it reuses Scan as its discovery pass.
