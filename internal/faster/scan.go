package faster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hlog"
)

// Log scanning (Appendix F): the HybridLog is record-oriented and
// approximately time-ordered, so it doubles as a change feed for
// analytics. Scan walks a logical-address window in order, decoding
// records from memory frames when resident and from the device otherwise.
//
// Scan reads whole pages from the device, so it is also the replay engine
// used by recovery (checkpoint.go).

// ScanRecord is one record yielded by Scan.
type ScanRecord struct {
	// Address is the record's logical address.
	Address hlog.Address
	// Key and Value alias a transient buffer; copy them to retain.
	Key, Value []byte
	// Tombstone marks a delete marker record.
	Tombstone bool
	// Delta marks a CRDT partial-update record.
	Delta bool
	// Invalid marks a record that lost its index insert race; analytics
	// normally skip these, so Scan only yields them when includeInvalid
	// is set on the call.
	Invalid bool
	// Previous is the address of the prior version in this record's
	// hash chain.
	Previous hlog.Address
}

// ScanOptions controls Scan.
type ScanOptions struct {
	// From and To bound the scan window [From, To); zero values default
	// to the begin address and tail address respectively.
	From, To hlog.Address
	// IncludeInvalid also yields records that lost their publish race.
	IncludeInvalid bool
}

// Scan invokes fn for every record in the window, in log order. Returning
// false from fn stops the scan early. Scan is safe to run concurrently
// with operations, but the window above the safe read-only offset is read
// without synchronisation against in-place updates; analytics scans
// normally stop at SafeReadOnlyAddress (pass To: 0 on a quiesced store, or
// To: s.Log().SafeReadOnlyAddress() on a live one).
func (s *Store) Scan(opts ScanOptions, fn func(r ScanRecord) bool) error {
	from, to := opts.From, opts.To
	if from == 0 {
		from = s.log.BeginAddress()
	}
	if to == 0 {
		to = s.log.TailAddress()
	}
	if from >= to {
		return nil
	}
	pageSize := s.log.PageSize()
	pageBuf := make([]byte, pageSize)

	// Epoch protection keeps resident pages from being evicted under the
	// scan; refreshing at page granularity bounds how long we pin them.
	g := s.em.Acquire()
	defer g.Release()

	addr := from
	for addr < to {
		g.Refresh()
		pageStart := addr &^ (pageSize - 1)
		pageEnd := pageStart + pageSize
		var page []byte
		if s.log.InMemory(pageStart) {
			page = s.log.Slice(pageStart)[:pageSize]
		} else {
			// Fetch the flushed page (or its prefix, if the window ends
			// inside it) from the device.
			end := pageEnd
			if to < end {
				end = to
			}
			buf := pageBuf[:end-pageStart]
			// Page reads retry transient device faults under the read
			// policy; this is what lets Recover and RebuildIndex survive a
			// flaky device instead of aborting on the first hiccup.
			err := s.cfg.ReadRetry.Do(s.classify, func() error {
				errCh := make(chan error, 1)
				s.log.ReadAsync(pageStart, buf, func(err error) { errCh <- err })
				return <-errCh
			})
			if err != nil {
				return fmt.Errorf("faster: scan read page at %#x: %w", pageStart, err)
			}
			page = buf
		}
		inMemory := s.log.InMemory(pageStart)
		// Walk records within the page.
		for addr < to && addr < pageEnd {
			off := addr - pageStart
			if uint64(len(page)) <= off {
				break
			}
			// Resident pages are live memory whose header words may be
			// concurrently CASed; load them atomically. Fetched pages
			// are private buffers.
			var rec record
			var ok bool
			if inMemory && uint64(len(page)) >= off+recHeaderBytes {
				rec, ok = parseRecordHeader(page[off:], atomic.LoadUint64(s.log.Uint64Ptr(addr)))
			} else {
				rec, ok = parseRecord(page[off:])
			}
			if !ok {
				break // padding: rest of page is empty
			}
			if !rec.invalid() || opts.IncludeInvalid {
				cont := fn(ScanRecord{
					Address:   addr,
					Key:       rec.key,
					Value:     rec.value,
					Tombstone: rec.tombstone(),
					Delta:     rec.delta(),
					Invalid:   rec.invalid(),
					Previous:  rec.prev(),
				})
				if !cont {
					return nil
				}
			}
			addr += uint64(rec.size)
		}
		addr = pageEnd
	}
	return nil
}

// Compact rolls the log prefix [BeginAddress, until) forward to the tail
// (the "Roll To Tail" garbage collection of Appendix C): every key whose
// newest version lives below the cut-off is re-appended at the tail, then
// the prefix is truncated. The caller supplies a session and must ensure
// no concurrent writers run during compaction (like the paper's GC, this
// is an administrative operation).
//
// Compaction runs in two phases so the log scan's epoch guard is released
// before any store operation runs (a session operation inside the scan
// could otherwise deadlock a page roll on the scanner's stale epoch):
// first collect the candidate keys, then roll each one forward.
//
// It returns the number of records copied forward and the number of bytes
// reclaimed.
func (s *Store) Compact(until hlog.Address, sess *Session) (copied int, reclaimed uint64, err error) {
	begin := s.log.BeginAddress()
	if until <= begin {
		return 0, 0, nil
	}
	if until > s.log.SafeReadOnlyAddress() {
		return 0, 0, fmt.Errorf("faster: compact until %#x beyond safe read-only %#x", until, s.log.SafeReadOnlyAddress())
	}

	// Phase 1: collect keys whose newest version sits below the cut.
	seen := map[string]bool{}
	var candidates [][]byte
	err = s.Scan(ScanOptions{From: begin, To: until}, func(r ScanRecord) bool {
		if r.Tombstone {
			return true // deletes below the cut die with the prefix
		}
		if seen[string(r.Key)] {
			return true
		}
		_, chainHead, ok := s.idx.FindEntry(hashKey(r.Key))
		if !ok || chainHead >= until {
			// Key deleted, or its newest version is already above the
			// cut (the index entry always points at the newest record).
			return true
		}
		seen[string(r.Key)] = true
		candidates = append(candidates, append([]byte(nil), r.Key...))
		return true
	})
	if err != nil {
		return 0, 0, err
	}

	// Phase 2: roll each candidate's current value to the tail.
	out := make([]byte, maxCompactValue)
	for _, key := range candidates {
		st, rerr := sess.Read(key, nil, out, nil)
		if rerr != nil {
			return copied, 0, rerr
		}
		vlen := -1
		if st == Pending {
			for _, res := range sess.CompletePending(true) {
				st = res.Status
				vlen = res.ValueLen
			}
		} else if st == OK {
			// Synchronous reads hit an in-memory record; its decoded
			// length is authoritative.
			vlen = s.newestValueLen(key)
		}
		if st != OK {
			continue // deleted meanwhile; nothing to preserve
		}
		if vlen < 0 || vlen > len(out) {
			vlen = len(out)
		}
		if st2, _ := sess.Upsert(key, out[:vlen]); st2 == OK {
			copied++
		}
	}
	if terr := s.TruncateUntil(until); terr != nil {
		return copied, 0, terr
	}
	return copied, until - begin, nil
}

// maxCompactValue bounds the value buffer used when rolling records
// forward.
const maxCompactValue = 1 << 16

// newestValueLen returns the value length of the newest in-memory record
// for key, or -1 when it is not resident.
func (s *Store) newestValueLen(key []byte) int {
	_, addr, ok := s.idx.FindEntry(hashKey(key))
	if !ok || !s.log.InMemory(addr) {
		return -1
	}
	laddr, rec, found := s.traceBack(key, addr, s.log.HeadAddress())
	if !found {
		return -1
	}
	_ = laddr
	return len(rec.value)
}
