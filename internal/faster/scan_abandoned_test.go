package faster

import (
	"encoding/binary"
	"testing"
)

// TestScanSkipsAbandonedSlot pins the abandoned-allocation layout that
// log scans depend on. When appendRecord allocates a slot and then must
// abandon it (its copy source was evicted while Allocate waited), the
// slot is never published — but it still occupies log space mid-page.
// abandonSlot must lay it out as a full, sized invalid record: a scan
// that cannot size a record treats the rest of the page as padding, so
// an unsized slot would silently hide every record after it from
// compaction's fold, checkpoint replay, and RebuildIndex — losing those
// keys' newest versions once the log is truncated.
func TestScanSkipsAbandonedSlot(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()

	for i := uint64(0); i < 4; i++ {
		if st, err := sess.Upsert(key(i), u64(i)); st != OK || err != nil {
			t.Fatalf("upsert %d: %v %v", i, st, err)
		}
	}

	// Abandon a slot exactly as appendRecord's evicted-source path does.
	k := key(99)
	const valueLen = 8
	size := recordSize(len(k), valueLen)
	addr, err := s.log.Allocate(size, sess.g)
	if err != nil {
		t.Fatal(err)
	}
	s.abandonSlot(addr, k, valueLen)

	// Records after the abandoned slot, in the same page — the ones an
	// unsized slot would hide.
	pageSize := s.log.PageSize()
	for i := uint64(4); i < 8; i++ {
		if st, err := sess.Upsert(key(i), u64(i+100)); st != OK || err != nil {
			t.Fatalf("upsert %d: %v %v", i, st, err)
		}
	}
	if tail := s.log.TailAddress(); tail&^(pageSize-1) != addr&^(pageSize-1) {
		t.Fatalf("test layout broken: tail %#x left the abandoned slot's page %#x", tail, addr)
	}

	scanKeys := func() (map[uint64]bool, bool) {
		seen := make(map[uint64]bool)
		sawAbandoned := false
		err := s.Scan(ScanOptions{IncludeInvalid: true}, func(r ScanRecord) bool {
			if r.Address == addr {
				if !r.Invalid {
					t.Fatalf("abandoned slot at %#x scanned as valid", addr)
				}
				sawAbandoned = true
				return true
			}
			if !r.Invalid && !r.Tombstone {
				seen[binary.LittleEndian.Uint64(r.Key)] = true
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen, sawAbandoned
	}

	// Resident-page scan.
	seen, sawAbandoned := scanKeys()
	for i := uint64(0); i < 8; i++ {
		if !seen[i] {
			t.Fatalf("in-memory scan lost key %d (abandoned slot at %#x hid the rest of its page)", i, addr)
		}
	}
	if !sawAbandoned {
		t.Fatalf("in-memory scan never walked the abandoned slot at %#x", addr)
	}

	// Push the slot's page out of the buffer so the scan takes the
	// device-read path (the one compaction and recovery replay use).
	bufferBytes := s.log.PageSize() * uint64(s.cfg.BufferPages)
	for i := uint64(0); s.log.HeadAddress() <= addr; i++ {
		if _, err := sess.Upsert(key(10000+i), u64(i)); err != nil {
			t.Fatal(err)
		}
		if i > 4*bufferBytes { // each record is ≥16 bytes; this can't happen
			t.Fatalf("head never passed %#x", addr)
		}
	}
	if s.log.InMemory(addr) {
		t.Fatalf("page holding %#x still resident", addr)
	}
	sess.CompletePending(true)

	seen, sawAbandoned = scanKeys()
	for i := uint64(0); i < 8; i++ {
		if !seen[i] {
			t.Fatalf("device scan lost key %d (abandoned slot at %#x hid the rest of its page)", i, addr)
		}
	}
	if !sawAbandoned {
		t.Fatalf("device scan never walked the abandoned slot at %#x", addr)
	}
}
