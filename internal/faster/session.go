package faster

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/index"
)

// Session is a registered FASTER thread (§2.5). Exactly one goroutine may
// drive a session; a session owns an epoch-table slot, refreshes it
// automatically every RefreshInterval operations, and carries the pending
// queue for operations that went asynchronous.
type Session struct {
	s        *Store
	g        *epoch.Guard
	stat     *sessionStats // private counter block (see faster.go)
	opsSince int

	completed completionQueue // async I/O completions land here
	retries   []*PendingOp    // fuzzy-region deferrals (§6.3)
	inFlight  int             // issued I/Os not yet returned to the user

	// Per-session counters (aggregated into store stats lazily would
	// cost atomics; these feed the Fig 12b/13 fuzzy-rate measurements).
	fuzzyOps  uint64
	totalOps  uint64
	spinDebug uint64 // test instrumentation

	// Pooled scratch for the slow paths. The session is single-goroutine,
	// so plain free lists suffice: accScratch is the CRDT read
	// accumulator (ownership follows the op while it is pending), opFree
	// recycles continuation structs, ioBufs recycles fetch buffers.
	accScratch []byte
	opFree     []*PendingOp
	ioBufs     [][]byte

	// Batch scratch (batch.go), reused across ExecBatch calls.
	batchHash  []uint64
	batchPlan  []batchAppend
	batchDefer []int
	batchOps   []BatchOp
	batchEntry []index.Entry
	batchAddr  []hlog.Address

	// token is the session's durable exactly-once binding (sessiontable.go);
	// nil until Bind. Serial-stamped mutating ops run through
	// SerialCheck/SerialCommit against it.
	token *SessionToken

	// residentOnly makes storage misses (and fuzzy-region deferrals)
	// return WouldBlock instead of going Pending on this session, so the
	// goroutine driving it never waits on device I/O — the caller reroutes
	// the miss to the io-worker pool (SubmitRead/SubmitRMW).
	residentOnly bool
	// opDeadlineNs stamps new pending ops with a completion deadline
	// (SetOpDeadline); 0 means none. The deadline propagates through the
	// pending read-retry chain down to device calls: once it expires the
	// op sheds with ErrOpDeadline instead of burning retry budget or
	// tripping the health ladder.
	opDeadlineNs int64

	closed bool
}

// SetResidentOnly toggles resident-only mode: with it set, Read/RMW (and
// their batch forms) return WouldBlock on a storage miss or fuzzy-region
// hit instead of issuing asynchronous work on this session. Operations
// already pending are unaffected.
func (sess *Session) SetResidentOnly(on bool) { sess.residentOnly = on }

// SetOpDeadline sets the completion deadline stamped onto operations
// issued after this call; the zero time clears it. An op whose deadline
// expires while it waits on storage completes with Status Err and an
// error wrapping context.DeadlineExceeded (see ErrOpDeadline), without
// feeding the health ladder.
func (sess *Session) SetOpDeadline(t time.Time) {
	if t.IsZero() {
		sess.opDeadlineNs = 0
		return
	}
	sess.opDeadlineNs = t.UnixNano()
}

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("faster: session closed")

// errKeyEmpty rejects zero-length keys (a zero key length marks padding
// in the log format).
var errKeyEmpty = errors.New("faster: empty key")

// StartSession registers a new session (the paper's Acquire).
func (s *Store) StartSession() *Session {
	return &Session{s: s, g: s.em.Acquire(), stat: s.acquireSessionStats()}
}

// Close deregisters the session (the paper's Release). Pending operations
// are completed first.
func (sess *Session) Close() error {
	if sess.closed {
		return nil
	}
	sess.CompletePending(true)
	sess.Unbind()
	sess.closed = true
	sess.g.Release()
	sess.s.releaseSessionStats(sess.stat)
	return nil
}

// Refresh publishes the session into the current epoch immediately.
func (sess *Session) Refresh() { sess.g.Refresh() }

// Park marks the session idle: its epoch-table slot stays reserved, but
// it stops pinning the safe epoch, so log flushes, evictions and
// safe-read-only advancement keep making progress while the session
// waits in a pool. The caller must have drained all pending operations
// first and must call Unpark before issuing the next operation — a
// parked session holds no epoch protection.
func (sess *Session) Park() { sess.g.Park() }

// Unpark rejoins the current epoch after a Park.
func (sess *Session) Unpark() { sess.g.Unpark() }

// FuzzyOps returns (fuzzy, total) operation counts for this session.
func (sess *Session) FuzzyOps() (fuzzy, total uint64) {
	return sess.fuzzyOps, sess.totalOps
}

// opStart performs the per-operation bookkeeping: periodic refresh (§2.5)
// and counters.
func (sess *Session) opStart() {
	sess.totalOps++
	sess.stat.operations.Add(1)
	sess.opsSince++
	if sess.opsSince >= sess.s.cfg.RefreshInterval {
		sess.opsSince = 0
		sess.g.Refresh()
	}
}

// acquireAcc returns a zeroed accumulator of length n, reusing the
// session's scratch buffer when it is large enough. Ownership moves to
// the caller; recycleOp (or an inline release) hands it back.
func (sess *Session) acquireAcc(n int) []byte {
	buf := sess.accScratch
	sess.accScratch = nil
	if cap(buf) < n {
		return make([]byte, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// releaseAcc returns an accumulator to the session scratch slot.
func (sess *Session) releaseAcc(buf []byte) {
	if buf != nil && cap(buf) > cap(sess.accScratch) {
		sess.accScratch = buf
	}
}

// traceBack walks the in-memory record chain from addr down to (but not
// below) floor, looking for key. If found it returns the record's address
// and decoded view. Otherwise found is false and the returned address is
// the first address below floor (the on-disk continuation), or
// hlog.InvalidAddress if the chain ended.
func (s *Store) traceBack(key []byte, addr, floor hlog.Address) (hlog.Address, record, bool) {
	begin := s.log.BeginAddress()
	for addr != hlog.InvalidAddress && addr >= floor && addr >= begin {
		rec, ok := s.recordAt(addr)
		if !ok {
			return hlog.InvalidAddress, record{}, false
		}
		if !rec.invalid() && bytes.Equal(rec.key, key) {
			return addr, rec, true
		}
		addr = rec.prev()
	}
	if addr < begin {
		addr = hlog.InvalidAddress
	}
	return addr, record{}, false
}

// ---------------------------------------------------------------------------
// Read (Algorithm 2)
// ---------------------------------------------------------------------------

// Read looks up key and, if the record is in memory, invokes the reader
// function with output. On a storage miss it returns Pending and the
// result is delivered by CompletePending with ctx attached.
func (sess *Session) Read(key, input, output []byte, ctx any) (Status, error) {
	if sess.closed {
		return Err, ErrSessionClosed
	}
	if len(key) == 0 {
		return Err, errKeyEmpty
	}
	sess.opStart()
	sess.stat.reads.Add(1)
	return sess.readInternal(key, input, output, ctx, hashKey(key))
}

// readInternal is Read with the per-op bookkeeping hoisted out, so
// ExecBatch can pre-hash a whole batch and amortize the counters.
func (sess *Session) readInternal(key, input, output []byte, ctx any, h uint64) (Status, error) {
	entry, addr, ok := sess.s.idx.FindEntry(h)
	if !ok {
		return NotFound, nil
	}
	return sess.readAt(key, input, output, ctx, entry, addr)
}

// readAt finishes a read whose index probe already happened. ExecBatch
// probes a whole run of reads back-to-back (the probes are independent
// loads, so their cache misses overlap) and then completes each one here.
func (sess *Session) readAt(key, input, output []byte, ctx any, entry index.Entry, addr hlog.Address) (Status, error) {
	s := sess.s
	raw := addr
	if isCacheAddr(raw) {
		// The entry points into the read cache. A key match serves the
		// read from memory with zero I/O; a collision (the entry's chain
		// carries several keys) continues on the underlying hlog chain
		// the cached record's prev preserves.
		crec, ok := s.rc.recordAt(raw)
		if !ok {
			// Evicted between the probe and the deref (rare): re-probe.
			return sess.readInternal(key, input, output, ctx, hashKey(key))
		}
		if !crec.invalid() && !crec.tombstone() && !crec.delta() && bytes.Equal(crec.key, key) {
			s.rc.noteHit(raw)
			s.ops.ConcurrentReader(key, crec.value, input, output)
			return OK, nil
		}
		addr = crec.prev()
		if addr == hlog.InvalidAddress {
			return NotFound, nil
		}
	}
	if addr < s.log.BeginAddress() {
		if isCacheAddr(raw) {
			// The underlying chain is truncated but the entry still serves
			// another key from the cache: nothing to GC, and the sought
			// key is provably dead (a live version would have been copied
			// forward and the entry republished off the cache).
			return NotFound, nil
		}
		// Dangling entry below the truncation point: lazy GC (App. C).
		entry.CompareAndDelete(addr)
		return NotFound, nil
	}
	head := s.log.HeadAddress()
	laddr, rec, found := s.traceBack(key, addr, head)
	if found {
		if rec.tombstone() {
			return NotFound, nil
		}
		if rec.delta() {
			return sess.readReconcile(key, input, output, ctx, raw, laddr, rec)
		}
		if laddr < s.log.SafeReadOnlyAddress() {
			s.ops.SingleReader(key, rec.value, input, output)
		} else {
			s.ops.ConcurrentReader(key, rec.value, input, output)
		}
		return OK, nil
	}
	if laddr == hlog.InvalidAddress {
		return NotFound, nil
	}
	if sess.residentOnly {
		return WouldBlock, nil
	}
	// The chain continues on storage: go asynchronous. entryAddr records
	// the (raw) chain head observed here: if a truncation overtakes the
	// descent, the continuation compares it against the current index
	// entry to tell "key rescued by copy-forward" from "key provably
	// dead"; a completed cold read also fills the read cache against it.
	if s.rc != nil {
		s.rc.mx.misses.Inc()
	}
	op := sess.newPendingOp(opRead, key, input, output, ctx)
	op.addr = laddr
	op.entryAddr = raw
	sess.issueIO(op)
	return Pending, nil
}

// readReconcile handles a CRDT read whose newest record is a delta: it
// folds delta values down the chain until the base record (§6.3). If the
// chain descends to storage the fold continues asynchronously. chainHead
// is the index entry the probe observed (see readAt's entryAddr note).
func (sess *Session) readReconcile(key, input, output []byte, ctx any, chainHead, addr hlog.Address, rec record) (Status, error) {
	s := sess.s
	acc := sess.acquireAcc(len(output))
	head := s.log.HeadAddress()
	begin := s.log.BeginAddress()
	for {
		s.merge.Merge(key, rec.value, acc)
		if !rec.delta() {
			copy(output, acc)
			sess.releaseAcc(acc)
			return OK, nil
		}
		addr = rec.prev()
		// Find the next chain record matching the key.
		var found bool
		addr, rec, found = s.traceBack(key, addr, head)
		if found {
			if rec.tombstone() {
				copy(output, acc)
				sess.releaseAcc(acc)
				return OK, nil
			}
			continue
		}
		if addr == hlog.InvalidAddress || addr < begin {
			copy(output, acc)
			sess.releaseAcc(acc)
			return OK, nil
		}
		// Continue the fold on storage.
		if sess.residentOnly {
			sess.releaseAcc(acc)
			return WouldBlock, nil
		}
		op := sess.newPendingOp(opReadMerge, key, input, output, ctx)
		op.addr = addr
		op.entryAddr = chainHead
		op.acc = acc
		sess.issueIO(op)
		return Pending, nil
	}
}

// ---------------------------------------------------------------------------
// Upsert (Algorithm 3)
// ---------------------------------------------------------------------------

// Upsert blindly replaces the value for key (inserting if absent).
func (sess *Session) Upsert(key, value []byte) (Status, error) {
	if sess.closed {
		return Err, ErrSessionClosed
	}
	if len(key) == 0 {
		return Err, errKeyEmpty
	}
	sess.opStart()
	sess.stat.upserts.Add(1)
	if err := sess.s.checkWritable(); err != nil {
		return Err, err
	}
	return sess.upsertInternal(key, value, hashKey(key))
}

// upsertInternal is Upsert past the bookkeeping and writability gate;
// ExecBatch re-enters it when a planned batch append loses its CAS.
func (sess *Session) upsertInternal(key, value []byte, h uint64) (Status, error) {
	s := sess.s
	for {
		entry, raw := s.idx.FindOrCreateEntry(h)
		chainHead, _, cached, stale := s.splitProbe(raw)
		if stale {
			continue
		}
		if !cached && chainHead != 0 && chainHead < s.log.BeginAddress() {
			entry.CompareAndDelete(raw)
			continue
		}
		// In-place only in the mutable region (Table 1): trace no lower
		// than the read-only offset.
		ro := s.log.ReadOnlyAddress()
		laddr, rec, found := s.traceBack(key, chainHead, maxAddr(ro, s.log.HeadAddress()))
		// In-place only when the entry does not point into the read cache:
		// updating behind a cached copy would leave readers on the stale
		// cached value. (A cached entry with the key also in the mutable
		// region cannot actually happen — the write that put it there would
		// have republished the entry — but the append path is the safe one.)
		if found && !cached && !rec.tombstone() && !rec.delta() && !rec.sealed() {
			if debugAssert() && laddr < s.log.SafeReadOnlyAddress() {
				panic("in-place upsert below safeRO")
			}
			if s.ops.ConcurrentWriter(key, rec.value, value) {
				sess.stat.inPlace.Add(1)
				return OK, nil
			}
			// The writer declined (value must grow): seal the record so
			// no later in-place write races with the RCU that follows.
			s.seal(laddr)
		}
		// Otherwise append a new record at the tail (RCU / insert). The
		// CAS expects the raw probed entry (which may be a cached copy —
		// publishing over it is exactly how writes invalidate the cache),
		// while the persisted prev is always the hlog chain head.
		_, st, err := sess.appendRecord(h, key, raw, chainHead, hlog.InvalidAddress, 0, len(value), func(dst record) {
			s.ops.SingleWriter(key, dst.value, value)
		})
		if err != nil {
			return Err, err
		}
		if st == statusRetry {
			continue
		}
		if found {
			sess.stat.rcuCopies.Add(1)
			s.setOverwritten(laddr)
		}
		return OK, nil
	}
}

// ---------------------------------------------------------------------------
// RMW (Algorithm 4)
// ---------------------------------------------------------------------------

// RMW atomically updates key's value from its current value and input,
// using the InitialUpdater / InPlaceUpdater / CopyUpdater functions. On a
// storage miss or a fuzzy-region hit it returns Pending.
func (sess *Session) RMW(key, input []byte, ctx any) (Status, error) {
	if sess.closed {
		return Err, ErrSessionClosed
	}
	if len(key) == 0 {
		return Err, errKeyEmpty
	}
	sess.opStart()
	sess.stat.rmws.Add(1)
	return sess.rmwInternal(key, input, ctx, hashKey(key))
}

// rmwInternal is the retryable core of RMW; CompletePending re-enters it
// for fuzzy deferrals. The writability gate sits here rather than in RMW
// so fuzzy deferrals stop re-queueing once the store is read-only: with a
// poisoned tail the safe read-only offset can never advance, and an
// ungated deferral would retry forever.
func (sess *Session) rmwInternal(key, input []byte, ctx any, h uint64) (Status, error) {
	s := sess.s
	if err := s.checkWritable(); err != nil {
		return Err, err
	}

	for {
		entry, raw := s.idx.FindOrCreateEntry(h)
		chainHead, crec, cached, stale := s.splitProbe(raw)
		if stale {
			continue
		}
		if !cached && chainHead != 0 && chainHead < s.log.BeginAddress() {
			entry.CompareAndDelete(raw)
			continue
		}
		if cached && !crec.invalid() && bytes.Equal(crec.key, key) {
			// The cached copy is the key's newest version (any newer write
			// would have republished the entry off the cache): copy-update
			// from it directly, skipping the device read entirely.
			st, err := sess.rmwCreate(h, key, input, raw, chainHead, raw, crec, true)
			if err != nil {
				return Err, err
			}
			if st == statusRetry {
				continue
			}
			return OK, nil
		}
		head := s.log.HeadAddress()
		laddr, rec, found := s.traceBack(key, chainHead, head)

		switch {
		case found && rec.tombstone():
			// Key was deleted: re-insert with the initial value.
			st, err := sess.rmwCreate(h, key, input, raw, chainHead, hlog.InvalidAddress, record{}, false)
			if err != nil {
				return Err, err
			}
			if st == statusRetry {
				continue
			}
			return OK, nil

		case found && rec.delta() && s.merge != nil:
			// A CRDT delta chain is pending reconciliation; appending
			// another delta keeps RMW latch-free (§6.3).
			st, err := sess.rmwAppendDelta(h, key, input, raw, chainHead)
			if err != nil {
				return Err, err
			}
			if st == statusRetry {
				continue
			}
			return OK, nil

		case found:
			ro := s.log.ReadOnlyAddress()
			sro := s.log.SafeReadOnlyAddress()
			switch {
			case laddr >= ro && !rec.sealed():
				// Mutable region: update in place (Table 2).
				if debugAssert() {
					if fi := s.log.FlushIssuedAddress(); laddr < fi {
						panic(fmt.Sprintf("in-place RMW at %#x below flush-issued %#x (ro=%#x sro=%#x)",
							laddr, fi, ro, sro))
					}
				}
				if s.ops.InPlaceUpdater(key, rec.value, input) {
					sess.stat.inPlace.Add(1)
					return OK, nil
				}
				// The updater declined (value must grow): seal the
				// record and copy-update from it.
				s.seal(laddr)
				st, err := sess.rmwCreate(h, key, input, raw, chainHead, laddr, rec, true)
				if err != nil {
					return Err, err
				}
				if st == statusRetry {
					continue
				}
				s.setOverwritten(laddr)
				return OK, nil

			case laddr >= ro: // sealed: must copy-update
				st, err := sess.rmwCreate(h, key, input, raw, chainHead, laddr, rec, true)
				if err != nil {
					return Err, err
				}
				if st == statusRetry {
					continue
				}
				return OK, nil
			case laddr >= sro:
				// Fuzzy region (§6.2-6.3).
				if s.merge != nil {
					st, err := sess.rmwAppendDelta(h, key, input, raw, chainHead)
					if err != nil {
						return Err, err
					}
					if st == statusRetry {
						continue
					}
					return OK, nil
				}
				if sess.residentOnly {
					return WouldBlock, nil
				}
				sess.fuzzyOps++
				sess.stat.fuzzyRMWs.Add(1)
				op := sess.newPendingOp(opRMWRetry, key, input, nil, ctx)
				sess.retries = append(sess.retries, op)
				return Pending, nil
			default:
				// Safe read-only region: copy-update to the tail.
				st, err := sess.rmwCreate(h, key, input, raw, chainHead, laddr, rec, true)
				if err != nil {
					return Err, err
				}
				if st == statusRetry {
					continue
				}
				s.setOverwritten(laddr)
				return OK, nil
			}

		case laddr == hlog.InvalidAddress:
			// Key absent: insert the initial value.
			st, err := sess.rmwCreate(h, key, input, raw, chainHead, hlog.InvalidAddress, record{}, false)
			if err != nil {
				return Err, err
			}
			if st == statusRetry {
				continue
			}
			return OK, nil

		default:
			// The chain continues on storage: fetch asynchronously.
			if sess.residentOnly {
				return WouldBlock, nil
			}
			op := sess.newPendingOp(opRMW, key, input, nil, ctx)
			op.addr = laddr
			op.entryAddr = raw
			sess.issueIO(op)
			return Pending, nil
		}
	}
}

type internalStatus int

const (
	statusDone internalStatus = iota
	statusRetry
	statusPendingIO
)

// appendRecord allocates and publishes a record at the tail: write the
// record, fill the value via fill, CAS the index entry from expect.
// Returns statusRetry (with the record invalidated) on a lost CAS.
//
// expect is the raw probed entry value — possibly a cache-tagged address
// — and is only the CAS expectation; prev is the hlog chain head written
// into the new record's header. They differ exactly when the probed entry
// pointed at a cached copy: the CAS over the tagged address is how writes
// invalidate the read cache (RCU), while the persisted prev keeps the
// durable chain free of volatile cache addresses — no hlog record ever
// carries a tagged prev.
//
// Allocate may refresh the session's epoch while waiting for buffer
// maintenance, which can let the log (or the read cache) evict pages.
// srcAddr, if nonzero, is an address whose record fill reads from
// (copy-updates); if its memory is reclaimed while Allocate waits the
// whole operation must be retried from the index.
func (sess *Session) appendRecord(h uint64, key []byte, expect, prev, srcAddr hlog.Address, flags uint64, valueLen int, fill func(dst record)) (hlog.Address, internalStatus, error) {
	s := sess.s
	if debugAssert() && isCacheAddr(prev) {
		panic("appendRecord: cache-tagged prev")
	}
	size := recordSize(len(key), valueLen)
	newAddr, err := s.log.Allocate(size, sess.g)
	if err != nil {
		return 0, statusDone, fmt.Errorf("faster: allocate record: %w", err)
	}
	if srcAddr != hlog.InvalidAddress && s.sourceEvicted(srcAddr) {
		// The copy source was evicted while Allocate waited: abandon the
		// slot and retry from the index.
		s.abandonSlot(newAddr, key, valueLen)
		return 0, statusRetry, nil
	}
	dst := writeRecord(s.log.Slice(newAddr)[:size], prev, flags, key, valueLen)
	fill(dst)
	e, cur := s.idx.FindOrCreateEntry(h)
	if mutationsEnabled && mutCacheInval() && isCacheAddr(expect) && cur == expect &&
		s.rc.redirectPrev(expect, prev, newAddr) {
		// Seeded bug (skip-cache-invalidate): the new record is linked
		// into the chain BEHIND the cached copy instead of republishing
		// the entry over it — readers of the cached key keep being served
		// the stale cached value after this write acknowledges.
		sess.stat.appends.Add(1)
		return newAddr, statusDone, nil
	}
	if cur != expect || !e.CompareAndSwapAddress(expect, newAddr) {
		s.setInvalid(newAddr)
		sess.stat.failedCAS.Add(1)
		return 0, statusRetry, nil
	}
	if isCacheAddr(expect) {
		s.noteCacheInvalidation()
	}
	sess.stat.appends.Add(1)
	return newAddr, statusDone, nil
}

// sourceEvicted reports whether the memory behind a copy-update source
// address may have been reclaimed: hlog addresses below the head, cache
// addresses below the cache's eviction head.
func (s *Store) sourceEvicted(srcAddr hlog.Address) bool {
	if isCacheAddr(srcAddr) {
		return srcAddr&^cacheAddrBit < s.rc.head.Load()
	}
	return srcAddr < s.log.HeadAddress()
}

// abandonSlot lays a freshly allocated, never-published slot out as a
// full invalid record. A bare invalid flag is not enough: on an
// otherwise-zero slot the key length stays 0, which log scans
// (compaction's fold, checkpoint replay, RebuildIndex) read as
// end-of-page padding — silently dropping every record after it in the
// page, and with it any key whose newest version sat there. Writing the
// full sized layout keeps the slot skippable but walkable. The slot is
// unreachable (never published to the index) and the caller holds its
// epoch, so the read-only offset cannot pass it mid-write; plain stores
// suffice.
func (s *Store) abandonSlot(addr hlog.Address, key []byte, valueLen int) {
	size := recordSize(len(key), valueLen)
	writeRecord(s.log.Slice(addr)[:size], 0, flagInvalid, key, valueLen)
}

// rmwCreate appends the updated record for an RMW: either the initial
// value (absent/tombstoned key) or a copy-update of old. expect is the
// raw probed entry (the CAS expectation), prev the hlog chain head.
func (sess *Session) rmwCreate(h uint64, key, input []byte, expect, prev, srcAddr hlog.Address, old record, haveOld bool) (internalStatus, error) {
	s := sess.s
	var valueLen int
	if haveOld {
		valueLen = s.ops.CopyValueLen(key, old.value, input)
	} else {
		valueLen = s.ops.InitialValueLen(key, input)
	}
	_, st, err := sess.appendRecord(h, key, expect, prev, srcAddr, 0, valueLen, func(dst record) {
		if haveOld {
			s.ops.CopyUpdater(key, old.value, dst.value, input)
		} else {
			s.ops.InitialUpdater(key, dst.value, input)
		}
	})
	if haveOld && st == statusDone && err == nil {
		sess.stat.rcuCopies.Add(1)
	}
	return st, err
}

// rmwAppendDelta appends a CRDT delta record: the update applied to an
// empty initial value, flagged so reads reconcile the chain (§6.3).
func (sess *Session) rmwAppendDelta(h uint64, key, input []byte, expect, prev hlog.Address) (internalStatus, error) {
	s := sess.s
	valueLen := s.ops.InitialValueLen(key, input)
	_, st, err := sess.appendRecord(h, key, expect, prev, hlog.InvalidAddress, flagDelta, valueLen, func(dst record) {
		s.ops.InitialUpdater(key, dst.value, input)
	})
	if st == statusDone && err == nil {
		sess.stat.deltaRecords.Add(1)
	}
	return st, err
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

// Delete removes key from the store. In the mutable region the record is
// tombstoned in place; otherwise a tombstone record is appended (§5.3).
// A singleton in-memory chain releases its index entry directly (§4).
func (sess *Session) Delete(key []byte) (Status, error) {
	if sess.closed {
		return Err, ErrSessionClosed
	}
	if len(key) == 0 {
		return Err, errKeyEmpty
	}
	sess.opStart()
	sess.stat.deletes.Add(1)
	if err := sess.s.checkWritable(); err != nil {
		return Err, err
	}
	return sess.deleteInternal(key, hashKey(key))
}

// deleteInternal is Delete past the bookkeeping and writability gate.
func (sess *Session) deleteInternal(key []byte, h uint64) (Status, error) {
	s := sess.s
	for {
		entry, raw, ok := s.idx.FindEntry(h)
		if !ok {
			return NotFound, nil
		}
		chainHead, crec, cached, stale := s.splitProbe(raw)
		if stale {
			continue
		}
		cachedKey := cached && !crec.invalid() && bytes.Equal(crec.key, key)
		if !cached && chainHead < s.log.BeginAddress() {
			entry.CompareAndDelete(raw)
			return NotFound, nil
		}
		head := s.log.HeadAddress()
		laddr, rec, found := s.traceBack(key, chainHead, head)
		if found && rec.tombstone() {
			return NotFound, nil
		}
		if found && !rec.delta() && laddr >= s.log.ReadOnlyAddress() {
			if laddr == chainHead && rec.prev() == hlog.InvalidAddress {
				// Singleton chain wholly in memory: free the index slot
				// so it can be reused (§4). The record becomes garbage
				// (and so does any cached copy — unreachable, skipped at
				// eviction since the entry no longer points to it).
				if entry.CompareAndDelete(raw) {
					if cached {
						s.noteCacheInvalidation()
					}
					s.setInvalid(laddr)
					return OK, nil
				}
				continue
			}
			// Tombstone in place.
			p := s.headerPtr(laddr)
			for {
				oldH := atomic.LoadUint64(p)
				if oldH&flagTombstone != 0 {
					return NotFound, nil
				}
				if atomic.CompareAndSwapUint64(p, oldH, oldH|flagTombstone) {
					if cachedKey {
						// The entry still points at a cached copy of this
						// key: drop it back to the (now tombstoned) hlog
						// chain so readers see the delete. A failed CAS
						// means a newer write already moved the entry.
						if entry.CompareAndSwapAddress(raw, chainHead) {
							s.noteCacheInvalidation()
						}
					}
					return OK, nil
				}
			}
		}
		if !found && laddr == hlog.InvalidAddress {
			if cachedKey && !crec.tombstone() {
				// The underlying chain was truncated away but the cached
				// copy still serves this key: the delete must supersede
				// it with a tombstone, not report NotFound, or concurrent
				// cached reads would contradict the acknowledged delete.
				_, st, err := sess.appendRecord(h, key, raw, hlog.InvalidAddress, hlog.InvalidAddress, flagTombstone, 0, func(record) {})
				if err != nil {
					return Err, err
				}
				if st == statusRetry {
					continue
				}
				return OK, nil
			}
			return NotFound, nil
		}
		// Record is read-only, on disk, or a delta chain: append a
		// tombstone record.
		_, st, err := sess.appendRecord(h, key, raw, chainHead, hlog.InvalidAddress, flagTombstone, 0, func(record) {})
		if err != nil {
			return Err, err
		}
		if st == statusRetry {
			continue
		}
		return OK, nil
	}
}

func maxAddr(a, b hlog.Address) hlog.Address {
	if a > b {
		return a
	}
	return b
}
