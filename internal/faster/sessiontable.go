package faster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Exactly-once sessions: the CPR commit model of §4 grown to durable
// client state. A client names itself with a GUID and stamps every
// mutating operation with a monotone serial number. The store keeps one
// entry per GUID — the highest serial whose operation completed (the
// acked frontier) and the rendered reply of that newest operation — and
// persists the whole table crash-atomically with each checkpoint. After
// recovery a reconnecting client re-attaches by GUID and learns exactly
// which of its operations survived the prefix cut: everything at or
// below the recovered frontier is applied (exactly once), everything
// above it is gone and safe to re-submit.
//
// Dedup and fencing follow from the frontier:
//
//   - serial == frontier+1: fresh — execute, then commit;
//   - serial == frontier:   duplicate of the newest committed operation —
//     replay the saved reply, never re-execute;
//   - serial <  frontier:   stale — fenced with an explicit error (the
//     reply for it is long gone, so replay is impossible and silent
//     re-execution would double-apply);
//   - serial >  frontier+1: a gap — the client skipped a serial, fenced.
//
// The correctness hinge is the cut: a checkpoint must record, per
// session, a frontier F such that the records of every operation ≤ F lie
// below t2 (durable) and the records of every operation > F lie at or
// above t2 (discarded by recovery). Sampling the frontier at any single
// instant is not enough — an operation can publish its record below t2
// and commit its serial after the sample, double-applying on retry. The
// table therefore keeps a cut lock (cutMu): every stamped operation runs
// inside a read-locked window spanning [admission, commit], and the
// checkpoint write-locks it around [table snapshot, t2 capture]. While
// the write lock is held no stamped window is open, so every admitted
// serial has committed (its record is below the current tail ≤ t2) and
// any window opened after release publishes at addresses ≥ t2. The stall
// is bounded by the snapshot plus one read-only shift — no flush waits
// happen under the lock.
//
// Single ownership per GUID is enforced by fencing tokens: BindSession
// bumps the entry's owner, and stamped calls from a superseded token
// report SerialFenced without executing. Bind waits for the previous
// owner's in-flight stamped window to close first, so a fenced zombie
// connection can never have applied an operation the new owner's
// frontier does not cover.

// SerialVerdict classifies a submitted session serial against the
// session's acked frontier. Only SerialApply permits execution.
type SerialVerdict int

const (
	// SerialApply admits a fresh serial (frontier+1): execute the
	// operation, then commit it with the rendered reply.
	SerialApply SerialVerdict = iota
	// SerialReplay marks a duplicate of the newest committed serial: the
	// saved reply must be returned verbatim and the operation must NOT be
	// re-executed.
	SerialReplay
	// SerialStale fences a serial below the frontier (and not the newest):
	// its reply is no longer retained and re-execution would double-apply.
	SerialStale
	// SerialGap fences a serial that skips ahead of frontier+1.
	SerialGap
	// SerialFenced rejects a token superseded by a newer BindSession for
	// the same GUID.
	SerialFenced
)

func (v SerialVerdict) String() string {
	switch v {
	case SerialApply:
		return "APPLY"
	case SerialReplay:
		return "REPLAY"
	case SerialStale:
		return "STALE"
	case SerialGap:
		return "GAP"
	case SerialFenced:
		return "FENCED"
	default:
		return fmt.Sprintf("SerialVerdict(%d)", int(v))
	}
}

// ErrNotBound is returned by serial operations on a session with no
// bound GUID.
var ErrNotBound = errors.New("faster: session not bound to a durable GUID")

// maxGUIDLen bounds client-chosen GUIDs.
const maxGUIDLen = 128

// validateGUID enforces RESP- and file-format-safe GUIDs: printable
// ASCII, no spaces, bounded length.
func validateGUID(guid string) error {
	if len(guid) == 0 || len(guid) > maxGUIDLen {
		return fmt.Errorf("faster: session GUID length %d (want 1..%d)", len(guid), maxGUIDLen)
	}
	for i := 0; i < len(guid); i++ {
		if c := guid[i]; c <= ' ' || c > '~' {
			return fmt.Errorf("faster: session GUID contains byte %#x (printable ASCII only)", c)
		}
	}
	return nil
}

// sessionEntry is one GUID's durable state. mu guards every field;
// issued/acked/lastReply are additionally written only by the current
// owner token (single goroutine), so the owner may read them unlocked.
type sessionEntry struct {
	guid string
	mu   sync.Mutex

	owner   uint64 // fencing token of the newest BindSession
	issued  uint64 // highest serial admitted for execution
	acked   uint64 // highest serial whose operation completed (the frontier)
	durable uint64 // highest frontier covered by a committed checkpoint

	lastReply   []byte // rendered reply of serial == acked, for replay
	updatedUnix int64  // wall-clock of the newest commit (operator "age")
}

// sessionTable is the store-wide GUID → entry registry plus the
// checkpoint cut lock.
type sessionTable struct {
	// cutMu is the serial/checkpoint cut: stamped windows hold it shared,
	// Checkpoint holds it exclusive across [snapshot, t2 capture].
	cutMu sync.RWMutex

	// sparse relaxes serial admission from strictly-successive to
	// strictly-ascending. A sharded store routes each stamped operation
	// to its key's shard, so one shard's table observes an ascending
	// subsequence of a connection's serial stream — jumps are normal, and
	// gap detection moves up to the facade, which sees the whole stream.
	sparse bool

	mu      sync.Mutex
	entries map[string]*sessionEntry
}

func newSessionTable() *sessionTable {
	return &sessionTable{entries: make(map[string]*sessionEntry)}
}

// SessionToken is the capability a bound client holds for stamping
// serials. Exactly one goroutine may drive a token, mirroring Session.
type SessionToken struct {
	s        *Store
	e        *sessionEntry
	owner    uint64
	inWindow bool
}

// BindSession attaches to (or creates) the durable exactly-once entry
// for guid and fences any previous owner. It returns the capability
// token, the session's acked frontier, and a copy of the frontier
// operation's saved reply (nil when the session is new). The caller now
// owns the serial stream: frontier+1 is the next fresh serial.
//
// Bind waits for a previous owner's in-flight stamped window to close
// (bounded by one operation), so the returned frontier covers every
// operation any prior owner applied.
func (s *Store) BindSession(guid string) (*SessionToken, uint64, []byte, error) {
	if err := validateGUID(guid); err != nil {
		return nil, 0, nil, err
	}
	t := s.sessions
	t.mu.Lock()
	e := t.entries[guid]
	if e == nil {
		e = &sessionEntry{guid: guid, updatedUnix: time.Now().Unix()}
		t.entries[guid] = e
	}
	t.mu.Unlock()

	for spin := 0; ; spin++ {
		e.mu.Lock()
		if e.issued == e.acked {
			e.owner++
			tok := &SessionToken{s: s, e: e, owner: e.owner}
			frontier := e.acked
			var reply []byte
			if len(e.lastReply) > 0 {
				reply = append([]byte(nil), e.lastReply...)
			}
			e.mu.Unlock()
			s.mx.sessionBinds.Inc()
			return tok, frontier, reply, nil
		}
		// The previous owner is mid-operation; taking over now would
		// leave its applied-but-uncommitted serial outside the frontier.
		e.mu.Unlock()
		if spin < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// GUID returns the bound session GUID.
func (tok *SessionToken) GUID() string { return tok.e.guid }

// WindowEnter opens a stamped window: Check/Commit calls must happen
// inside one. The window holds the store's checkpoint cut shared-locked,
// so it must be kept tight — admission, execution (including pending-I/O
// completion), commit — and must not span client round-trips.
func (tok *SessionToken) WindowEnter() {
	if tok.inWindow {
		panic("faster: nested SessionToken window")
	}
	tok.s.sessions.cutMu.RLock()
	tok.inWindow = true
}

// WindowExit closes the window. Serials admitted but never committed
// (failed operations) are rolled back so the client can retry them.
func (tok *SessionToken) WindowExit() {
	if !tok.inWindow {
		panic("faster: WindowExit outside a window")
	}
	e := tok.e
	// Unlocked read is safe: only the owner (this goroutine) writes
	// issued/acked; concurrent snapshots read them under mu.
	if e.issued != e.acked {
		e.mu.Lock()
		if e.owner == tok.owner && e.issued != e.acked {
			e.issued = e.acked
		}
		e.mu.Unlock()
	}
	tok.inWindow = false
	tok.s.sessions.cutMu.RUnlock()
}

// Check classifies serial. On SerialApply the serial is admitted: the
// caller must execute the operation and Commit it (or exit the window to
// roll the admission back). On SerialReplay the returned bytes are a
// copy of the saved reply.
func (tok *SessionToken) Check(serial uint64) (SerialVerdict, []byte) {
	if !tok.inWindow {
		panic("faster: SessionToken.Check outside a window")
	}
	e := tok.e
	e.mu.Lock()
	if e.owner != tok.owner {
		e.mu.Unlock()
		tok.s.mx.serialFenced.Inc()
		return SerialFenced, nil
	}
	sparse := tok.s.sessions.sparse
	switch {
	case serial == e.issued+1 || (sparse && serial > e.issued):
		e.issued = serial
		e.mu.Unlock()
		return SerialApply, nil
	case serial == e.acked && serial > 0 && e.issued == e.acked:
		reply := append([]byte(nil), e.lastReply...)
		e.mu.Unlock()
		tok.s.mx.serialReplays.Inc()
		return SerialReplay, reply
	case serial <= e.issued:
		e.mu.Unlock()
		tok.s.mx.serialFenced.Inc()
		return SerialStale, nil
	default:
		e.mu.Unlock()
		tok.s.mx.serialFenced.Inc()
		return SerialGap, nil
	}
}

// Commit marks serial's operation complete and saves its rendered reply
// for replay. Serials commit in admission order; committing out of order
// or without admission panics (a protocol bug, not a runtime condition).
// Returns false if the token was fenced mid-window (cannot happen while
// Bind honors the in-flight wait; kept as a hard failure signal).
func (tok *SessionToken) Commit(serial uint64, reply []byte) bool {
	if !tok.inWindow {
		panic("faster: SessionToken.Commit outside a window")
	}
	e := tok.e
	e.mu.Lock()
	if e.owner != tok.owner {
		e.mu.Unlock()
		return false
	}
	ordered := serial == e.acked+1
	if tok.s.sessions.sparse {
		ordered = serial > e.acked
	}
	if !ordered || serial > e.issued {
		e.mu.Unlock()
		panic(fmt.Sprintf("faster: commit of serial %d with acked %d issued %d", serial, e.acked, e.issued))
	}
	e.acked = serial
	e.lastReply = append(e.lastReply[:0], reply...)
	e.updatedUnix = time.Now().Unix()
	e.mu.Unlock()
	return true
}

// Release closes any open window. The entry itself is durable state and
// outlives the token.
func (tok *SessionToken) Release() {
	if tok.inWindow {
		tok.WindowExit()
	}
}

// ---------------------------------------------------------------------------
// Session convenience layer: a faster.Session bound to a GUID stamps its
// mutating operations through these helpers.
// ---------------------------------------------------------------------------

// Bind attaches the session to the durable exactly-once entry for guid
// and returns the acked frontier (see Store.BindSession). Any previous
// binding of this session is released.
func (sess *Session) Bind(guid string) (uint64, error) {
	tok, frontier, _, err := sess.s.BindSession(guid)
	if err != nil {
		return 0, err
	}
	if sess.token != nil {
		sess.token.Release()
	}
	sess.token = tok
	return frontier, nil
}

// Token exposes the session's bound capability (nil when unbound).
func (sess *Session) Token() *SessionToken { return sess.token }

// Unbind releases the session's durable binding.
func (sess *Session) Unbind() {
	if sess.token != nil {
		sess.token.Release()
		sess.token = nil
	}
}

// SerialCheck classifies serial for the bound GUID and, on SerialApply,
// opens the stamped window the following operation runs in. The caller
// must then execute the operation and call SerialCommit (success) or
// SerialAbort (failure). Non-apply verdicts leave no window open.
func (sess *Session) SerialCheck(serial uint64) (SerialVerdict, []byte, error) {
	if sess.token == nil {
		return SerialFenced, nil, ErrNotBound
	}
	if !sess.token.inWindow {
		sess.token.WindowEnter()
	}
	v, reply := sess.token.Check(serial)
	if v != SerialApply {
		sess.token.WindowExit()
	}
	return v, reply, nil
}

// SerialCommit commits an admitted serial with its rendered reply and
// closes the stamped window.
func (sess *Session) SerialCommit(serial uint64, reply []byte) {
	sess.token.Commit(serial, reply)
	if sess.token.inWindow {
		sess.token.WindowExit()
	}
}

// SerialAbort rolls back an admitted serial whose operation failed
// before applying, closing the stamped window; the client may retry the
// same serial.
func (sess *Session) SerialAbort() {
	if sess.token != nil && sess.token.inWindow {
		sess.token.WindowExit()
	}
}

// ---------------------------------------------------------------------------
// Snapshot, persistence and recovery
// ---------------------------------------------------------------------------

// SessionState is one GUID's externally visible exactly-once state.
type SessionState struct {
	GUID string
	// Acked is the frontier: every serial ≤ Acked applied exactly once.
	Acked uint64
	// Durable is the highest frontier covered by a committed checkpoint;
	// serials in (Durable, Acked] would be lost by a crash right now.
	Durable uint64
	// LastReply is the saved reply of serial == Acked.
	LastReply []byte
	// UpdatedUnix is the wall-clock second of the newest commit.
	UpdatedUnix int64
}

// SessionStates snapshots the session table, sorted by GUID.
func (s *Store) SessionStates() []SessionState {
	t := s.sessions
	t.mu.Lock()
	entries := make([]*sessionEntry, 0, len(t.entries))
	for _, e := range t.entries {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	out := make([]SessionState, 0, len(entries))
	for _, e := range entries {
		e.mu.Lock()
		out = append(out, SessionState{
			GUID:        e.guid,
			Acked:       e.acked,
			Durable:     e.durable,
			LastReply:   append([]byte(nil), e.lastReply...),
			UpdatedUnix: e.updatedUnix,
		})
		e.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GUID < out[j].GUID })
	return out
}

// sessMagic heads the serialized session table.
const sessMagic uint64 = 0xFA57E2C05E550001

// sessSnap is one entry's state captured under the cut lock, kept so the
// checkpoint can raise durable frontiers after its meta commits.
type sessSnap struct {
	e     *sessionEntry
	acked uint64
}

// serialize captures the table under the caller-held cut write lock and
// renders it to the on-disk format. With the write lock held no stamped
// window is open, so every entry's issued == acked and the captured
// frontiers are exactly the serials whose records lie below the t2 the
// caller captures next. Entries are sorted by GUID for deterministic
// bytes.
func (t *sessionTable) serialize() ([]byte, []sessSnap) {
	t.mu.Lock()
	entries := make([]*sessionEntry, 0, len(t.entries))
	for _, e := range t.entries {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].guid < entries[j].guid })

	snaps := make([]sessSnap, 0, len(entries))
	var buf []byte
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	putU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	putU64(sessMagic)
	putU64(uint64(len(entries)))
	for _, e := range entries {
		e.mu.Lock()
		if debugAssert() && e.issued != e.acked {
			e.mu.Unlock()
			panic("faster: session window open under checkpoint cut lock")
		}
		putU32(uint32(len(e.guid)))
		buf = append(buf, e.guid...)
		putU64(e.acked)
		putU64(uint64(e.updatedUnix))
		putU32(uint32(len(e.lastReply)))
		buf = append(buf, e.lastReply...)
		snaps = append(snaps, sessSnap{e: e, acked: e.acked})
		e.mu.Unlock()
	}
	return buf, snaps
}

// markDurable raises entries' durable frontiers to the snapshot a
// now-committed checkpoint persisted.
func (t *sessionTable) markDurable(snaps []sessSnap) {
	for _, sn := range snaps {
		sn.e.mu.Lock()
		if sn.e.durable < sn.acked {
			sn.e.durable = sn.acked
		}
		sn.e.mu.Unlock()
	}
}

// sessCRC is the integrity check the checkpoint meta records alongside
// the payload length.
func sessCRC(payload []byte) uint32 { return crc32.ChecksumIEEE(payload) }

// parseSessionTable decodes a serialized session table. Truncated or
// corrupt payloads fail (the caller falls back to the previous
// checkpoint generation) — except under the skip-serial-fsync mutation,
// which models the naive implementation that trusts whatever tail
// survived: parsing stops at the tear and the lost entries silently
// revert to serial 0.
func parseSessionTable(payload []byte) ([]SessionState, error) {
	rd := payload
	take := func(n int) ([]byte, bool) {
		if len(rd) < n {
			return nil, false
		}
		b := rd[:n]
		rd = rd[n:]
		return b, true
	}
	hdr, ok := take(16)
	if !ok {
		return nil, errors.New("faster: session table truncated header")
	}
	if binary.LittleEndian.Uint64(hdr) != sessMagic {
		return nil, errors.New("faster: session table bad magic")
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	out := make([]SessionState, 0, count)
	for i := uint64(0); i < count; i++ {
		var st SessionState
		ok := false
		if b, have := take(4); have {
			if g, have := take(int(binary.LittleEndian.Uint32(b))); have {
				st.GUID = string(g)
				if b, have := take(8); have {
					st.Acked = binary.LittleEndian.Uint64(b)
					if b, have := take(8); have {
						st.UpdatedUnix = int64(binary.LittleEndian.Uint64(b))
						if b, have := take(4); have {
							if r, have := take(int(binary.LittleEndian.Uint32(b))); have {
								st.LastReply = append([]byte(nil), r...)
								ok = true
							}
						}
					}
				}
			}
		}
		if !ok {
			if mutationsEnabled && mutSkipSerialFsync() {
				return out, nil // torn tail: surviving prefix only
			}
			return nil, fmt.Errorf("faster: session table truncated at entry %d/%d", i, count)
		}
		out = append(out, st)
	}
	if len(rd) != 0 {
		return nil, errors.New("faster: session table trailing bytes")
	}
	return out, nil
}

// load installs a recovered session table: the checkpointed frontier is
// both acked and durable (recovery made it so).
func (t *sessionTable) load(states []SessionState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range states {
		t.entries[st.GUID] = &sessionEntry{
			guid:        st.GUID,
			issued:      st.Acked,
			acked:       st.Acked,
			durable:     st.Acked,
			lastReply:   append([]byte(nil), st.LastReply...),
			updatedUnix: st.UpdatedUnix,
		}
	}
}
