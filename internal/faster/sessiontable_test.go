package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/device"
)

// submitSerial drives one serial-stamped RMW add through the full
// protocol: check, execute (draining pending I/O), read back, commit the
// rendered reply. It returns the verdict and the reply bytes (the
// counter value after the op, or the saved reply on replay).
func submitSerial(t testing.TB, sess *Session, k []byte, serial, delta uint64) (SerialVerdict, []byte) {
	t.Helper()
	v, reply, err := sess.SerialCheck(serial)
	if err != nil {
		t.Fatalf("SerialCheck(%d): %v", serial, err)
	}
	if v != SerialApply {
		return v, reply
	}
	st, err := sess.RMW(k, u64(delta), nil)
	if err != nil {
		sess.SerialAbort()
		t.Fatalf("RMW serial %d: %v", serial, err)
	}
	if st == Pending {
		for _, r := range sess.CompletePending(true) {
			if r.Kind == "rmw" && r.Status != OK {
				sess.SerialAbort()
				t.Fatalf("pending RMW serial %d: %v %v", serial, r.Status, r.Err)
			}
		}
		st = OK
	}
	if st != OK {
		sess.SerialAbort()
		t.Fatalf("RMW serial %d: %v", serial, st)
	}
	out := make([]byte, 8)
	if rst, _ := sess.Read(k, nil, out, nil); rst == Pending {
		sess.CompletePending(true)
	}
	sess.SerialCommit(serial, out)
	return SerialApply, out
}

func TestSerialLifecycle(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()

	if _, _, err := sess.SerialCheck(1); err != ErrNotBound {
		t.Fatalf("unbound SerialCheck err = %v, want ErrNotBound", err)
	}
	frontier, err := sess.Bind("client-a")
	if err != nil || frontier != 0 {
		t.Fatalf("Bind = (%d, %v), want (0, nil)", frontier, err)
	}

	k := key(77)
	for serial := uint64(1); serial <= 5; serial++ {
		if v, _ := submitSerial(t, sess, k, serial, 10); v != SerialApply {
			t.Fatalf("serial %d: verdict %v, want APPLY", serial, v)
		}
	}
	if got, st := readU64(t, sess, k); st != OK || got != 50 {
		t.Fatalf("after 5 adds: (%d, %v), want (50, OK)", got, st)
	}

	// Duplicate of the newest serial: replayed, not re-executed.
	v, reply := submitSerial(t, sess, k, 5, 10)
	if v != SerialReplay || binary.LittleEndian.Uint64(reply) != 50 {
		t.Fatalf("duplicate serial 5: (%v, %x), want (REPLAY, 50)", v, reply)
	}
	if got, _ := readU64(t, sess, k); got != 50 {
		t.Fatalf("replay re-executed: counter %d, want 50", got)
	}
	// Older serials are fenced; skipping ahead is fenced.
	if v, _ := submitSerial(t, sess, k, 3, 10); v != SerialStale {
		t.Fatalf("serial 3: verdict %v, want STALE", v)
	}
	if v, _ := submitSerial(t, sess, k, 9, 10); v != SerialGap {
		t.Fatalf("serial 9: verdict %v, want GAP", v)
	}
	if got, _ := readU64(t, sess, k); got != 50 {
		t.Fatalf("fenced serials mutated state: counter %d, want 50", got)
	}

	// A failed (aborted) serial can be retried.
	if v, _, _ := sess.SerialCheck(6); v != SerialApply {
		t.Fatal("serial 6 not admitted")
	}
	sess.SerialAbort()
	if v, _ := submitSerial(t, sess, k, 6, 1); v != SerialApply {
		t.Fatalf("retry of aborted serial 6: verdict %v, want APPLY", v)
	}
	if got, _ := readU64(t, sess, k); got != 51 {
		t.Fatalf("counter %d, want 51", got)
	}

	states := s.SessionStates()
	if len(states) != 1 || states[0].GUID != "client-a" || states[0].Acked != 6 || states[0].Durable != 0 {
		t.Fatalf("SessionStates = %+v", states)
	}
}

func TestBindFencesPreviousOwner(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	old := s.StartSession()
	defer old.Close()
	if _, err := old.Bind("shared"); err != nil {
		t.Fatal(err)
	}
	submitSerial(t, old, key(1), 1, 5)

	// A reconnecting client takes over the GUID; it sees the frontier the
	// old owner committed, and the old owner's next stamped op is fenced.
	fresh := s.StartSession()
	defer fresh.Close()
	frontier, err := fresh.Bind("shared")
	if err != nil || frontier != 1 {
		t.Fatalf("takeover Bind = (%d, %v), want (1, nil)", frontier, err)
	}
	if v, _, _ := old.SerialCheck(2); v != SerialFenced {
		t.Fatalf("old owner serial 2: verdict %v, want FENCED", v)
	}
	if v, _ := submitSerial(t, fresh, key(1), 2, 5); v != SerialApply {
		t.Fatalf("new owner serial 2: verdict %v, want APPLY", v)
	}
	if got, _ := readU64(t, fresh, key(1)); got != 10 {
		t.Fatalf("counter %d, want 10", got)
	}
}

func TestGUIDValidation(t *testing.T) {
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	for _, bad := range []string{"", "has space", "ctrl\x01byte", string(make([]byte, maxGUIDLen+1))} {
		if _, err := sess.Bind(bad); err == nil {
			t.Errorf("Bind(%q) accepted", bad)
		}
	}
	if _, err := sess.Bind("ok-guid_1.2:3"); err != nil {
		t.Errorf("Bind rejected valid guid: %v", err)
	}
}

// TestSessionTableCheckpointRecover is the tentpole round trip: serials
// committed before the checkpoint survive recovery as the session's
// frontier (with the saved reply replayable), serials after it are
// rolled back with the log prefix, and retries land exactly once.
func TestSessionTableCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	dev := device.NewMem(device.MemConfig{})
	cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets: 1 << 10, Device: dev}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	if _, err := sess.Bind("client-r"); err != nil {
		t.Fatal(err)
	}
	k := key(42)
	for serial := uint64(1); serial <= 8; serial++ {
		submitSerial(t, sess, k, serial, serial)
	}
	sess.Park()
	if _, err := s.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	sess.Unpark()
	// Post-checkpoint serials: applied now, lost by the crash.
	for serial := uint64(9); serial <= 12; serial++ {
		submitSerial(t, sess, k, serial, serial)
	}
	if st := s.SessionStates(); st[0].Acked != 12 || st[0].Durable != 8 {
		t.Fatalf("pre-crash state = %+v, want acked 12 durable 8", st[0])
	}
	sess.Close()
	s.Close()

	r, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := r.StartSession()
	defer rs.Close()
	frontier, err := rs.Bind("client-r")
	if err != nil || frontier != 8 {
		t.Fatalf("recovered Bind = (%d, %v), want (8, nil)", frontier, err)
	}
	// The recovered store holds exactly serials 1..8: 1+2+..+8 = 36.
	if got, st := readU64(t, rs, k); st != OK || got != 36 {
		t.Fatalf("recovered counter = (%d, %v), want (36, OK)", got, st)
	}
	// Duplicate of the frontier serial replays the saved reply (the
	// counter as of serial 8) without re-executing.
	v, reply := submitSerial(t, rs, k, 8, 8)
	if v != SerialReplay || binary.LittleEndian.Uint64(reply) != 36 {
		t.Fatalf("frontier replay = (%v, %x), want (REPLAY, 36)", v, reply)
	}
	// Serials below the recovered commit point are fenced explicitly.
	if v, _ := submitSerial(t, rs, k, 5, 5); v != SerialStale {
		t.Fatalf("stale serial verdict %v, want STALE", v)
	}
	// The client re-submits the lost suffix; each op applies exactly once.
	for serial := uint64(9); serial <= 12; serial++ {
		if v, _ := submitSerial(t, rs, k, serial, serial); v != SerialApply {
			t.Fatalf("retry serial %d: verdict %v", serial, v)
		}
	}
	if got, _ := readU64(t, rs, k); got != 78 { // 1+..+12
		t.Fatalf("final counter %d, want 78", got)
	}
	if st := r.SessionStates(); st[0].Acked != 12 || st[0].Durable != 8 {
		t.Fatalf("post-retry state = %+v", st[0])
	}
}

// TestSerialTableCrashMatrix reconstructs every crash state the
// checkpoint commit sequence can leave behind — in particular a kill
// between the session-table rename and the meta rename — and verifies
// recovery never double-applies a retried operation.
func TestSerialTableCrashMatrix(t *testing.T) {
	type crashPoint struct {
		name string
		// mangle turns a directory holding two committed generations into
		// the crash state under test.
		mangle func(t *testing.T, dir string, gen2T1 uint64)
	}
	points := []crashPoint{
		{"between-sessions-and-meta", func(t *testing.T, dir string, gen2T1 uint64) {
			// The gen2 session table and index are in place but the meta
			// rename never happened: meta.ckpt is still gen1.
			prev := filepath.Join(dir, "meta.prev")
			cur := filepath.Join(dir, "meta.ckpt")
			if err := os.Remove(cur); err != nil {
				t.Fatal(err)
			}
			if err := os.Rename(prev, cur); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-session-table", func(t *testing.T, dir string, gen2T1 uint64) {
			// gen2 committed but its session table lost a tail page: the
			// meta's CRC check must reject it and fall back to gen1.
			p := filepath.Join(dir, sessionsFileName(gen2T1))
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw[:len(raw)-1], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing-session-table", func(t *testing.T, dir string, gen2T1 uint64) {
			if err := os.Remove(filepath.Join(dir, sessionsFileName(gen2T1))); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, pt := range points {
		t.Run(pt.name, func(t *testing.T) {
			dir := t.TempDir()
			dev := device.NewMem(device.MemConfig{})
			cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
				IndexBuckets: 1 << 10, Device: dev}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess := s.StartSession()
			if _, err := sess.Bind("client-m"); err != nil {
				t.Fatal(err)
			}
			k := key(7)
			for serial := uint64(1); serial <= 4; serial++ {
				submitSerial(t, sess, k, serial, 1)
			}
			sess.Park()
			if _, err := s.Checkpoint(dir); err != nil { // gen1: frontier 4
				t.Fatal(err)
			}
			sess.Unpark()
			for serial := uint64(5); serial <= 9; serial++ {
				submitSerial(t, sess, k, serial, 1)
			}
			sess.Park()
			info2, err := s.Checkpoint(dir) // gen2: frontier 9
			if err != nil {
				t.Fatal(err)
			}
			sess.Unpark()
			sess.Close()
			s.Close()

			pt.mangle(t, dir, info2.T1)

			r, err := Recover(cfg, dir)
			if err != nil {
				t.Fatalf("recovery after %s: %v", pt.name, err)
			}
			defer r.Close()
			rs := r.StartSession()
			defer rs.Close()
			frontier, err := rs.Bind("client-m")
			if err != nil {
				t.Fatal(err)
			}
			// Every crash state recovers gen1 (frontier 4, counter 4): the
			// log cut and the session frontier moved back together.
			if frontier != 4 {
				t.Fatalf("recovered frontier %d, want 4", frontier)
			}
			if got, st := readU64(t, rs, k); st != OK || got != 4 {
				t.Fatalf("recovered counter = (%d, %v), want (4, OK)", got, st)
			}
			// The client retries everything unacked beyond the frontier;
			// the final count proves nothing double-applied.
			for serial := frontier + 1; serial <= 9; serial++ {
				if v, _ := submitSerial(t, rs, k, serial, 1); v != SerialApply {
					t.Fatalf("retry serial %d: verdict %v", serial, v)
				}
			}
			if got, _ := readU64(t, rs, k); got != 9 {
				t.Fatalf("final counter %d, want 9 (exactly once)", got)
			}
		})
	}
}

// exactlyOnceSeeds returns how many seeded schedules the torture runs:
// FASTER_EXACTLYONCE_SEEDS (the CI gate sets 100), else a quick default.
func exactlyOnceSeeds(t *testing.T) int {
	if v := os.Getenv("FASTER_EXACTLYONCE_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FASTER_EXACTLYONCE_SEEDS %q", v)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// TestExactlyOnceCrashRetryTorture runs seeded crash/retry schedules: a
// client stamps serial RMW adds while the schedule interleaves duplicate
// deliveries, lost acks, checkpoints and whole-store crash/recover
// cycles with protocol-driven retry. The final counter must equal the
// sum of every delta applied exactly once, on every schedule.
func TestExactlyOnceCrashRetryTorture(t *testing.T) {
	seeds := exactlyOnceSeeds(t)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
			dir := t.TempDir()
			dev := device.NewMem(device.MemConfig{})
			cfg := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
				IndexBuckets: 1 << 9, Device: dev}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess := s.StartSession()
			if _, err := sess.Bind("torture-client"); err != nil {
				t.Fatal(err)
			}
			k := key(1)

			const totalOps = 60
			var want uint64
			deltas := make([]uint64, totalOps+1)
			for i := 1; i <= totalOps; i++ {
				deltas[i] = uint64(rng.Intn(9) + 1)
				want += deltas[i]
			}
			var (
				clientAcked uint64 // highest serial whose ack the client saw
				checkpoints int
			)
			replies := make(map[uint64]uint64) // serial -> acked counter value

			submit := func(serial uint64) {
				v, reply := submitSerial(t, sess, k, serial, deltas[serial])
				switch v {
				case SerialApply, SerialReplay:
					got := binary.LittleEndian.Uint64(reply)
					if wantReply, seen := replies[serial]; seen && got != wantReply {
						t.Fatalf("serial %d reply %d, previously acked %d", serial, got, wantReply)
					}
					replies[serial] = got
					if rng.Intn(8) == 0 && v == SerialApply {
						return // ack lost in flight: client will retry this serial
					}
					if serial > clientAcked {
						clientAcked = serial
					}
				default:
					t.Fatalf("serial %d: verdict %v", serial, v)
				}
			}

			for clientAcked < totalOps {
				next := clientAcked + 1
				submit(next)
				if rng.Intn(10) == 0 {
					// Duplicate delivery of an already-submitted serial.
					submit(next)
				}
				if rng.Intn(12) == 0 {
					sess.Park()
					if _, err := s.Checkpoint(dir); err != nil {
						t.Fatal(err)
					}
					sess.Unpark()
					checkpoints++
				}
				if checkpoints > 0 && rng.Intn(15) == 0 {
					// Crash: everything above the newest checkpoint's cut is
					// gone; the client re-attaches and resumes its stream
					// from the recovered frontier.
					sess.Close()
					s.Close()
					s, err = Recover(cfg, dir)
					if err != nil {
						t.Fatal(err)
					}
					sess = s.StartSession()
					frontier, err := sess.Bind("torture-client")
					if err != nil {
						t.Fatal(err)
					}
					if frontier > clientAcked {
						// Server acked ops whose acks the client lost; all of
						// them are covered by the recovered frontier.
						clientAcked = frontier
					} else {
						clientAcked = frontier
					}
					// Replies above the cut are forgotten along with the ops.
					for serial := range replies {
						if serial > frontier {
							delete(replies, serial)
						}
					}
				}
			}
			if got, st := readU64(t, sess, k); st != OK || got != want {
				t.Fatalf("final counter = (%d, %v), want (%d, OK): ops double- or never-applied", got, st, want)
			}
			sess.Close()
			s.Close()
		})
	}
}

// TestSessionTableSerializeRoundTrip pins the on-disk format: serialize,
// parse, compare — including reply payloads and empty tables.
func TestSessionTableSerializeRoundTrip(t *testing.T) {
	tbl := newSessionTable()
	tbl.load([]SessionState{
		{GUID: "a", Acked: 3, LastReply: []byte("x"), UpdatedUnix: 100},
		{GUID: "bb", Acked: 9, LastReply: nil, UpdatedUnix: 200},
	})
	payload, snaps := tbl.serialize()
	if len(snaps) != 2 {
		t.Fatalf("%d snaps", len(snaps))
	}
	states, err := parseSessionTable(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || states[0].GUID != "a" || states[0].Acked != 3 ||
		!bytes.Equal(states[0].LastReply, []byte("x")) || states[0].UpdatedUnix != 100 ||
		states[1].GUID != "bb" || states[1].Acked != 9 {
		t.Fatalf("round trip = %+v", states)
	}
	// Corruption is detected.
	if _, err := parseSessionTable(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload parsed")
	}
	payload[0] ^= 0xff
	if _, err := parseSessionTable(payload); err == nil {
		t.Fatal("bad magic parsed")
	}
	// Empty tables serialize to the bare header.
	empty, _ := newSessionTable().serialize()
	if len(empty) != sessHeaderLen {
		t.Fatalf("empty table payload %d bytes, want %d", len(empty), sessHeaderLen)
	}
}

// TestReadCheckpointSessions exercises the offline session-table reader
// behind `faster-cli sessions`: it must print the committed generation
// without a log device and fall back to meta.prev when the current
// generation's table is torn.
func TestReadCheckpointSessions(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, Config{})
	sess := s.StartSession()
	defer sess.Close()
	if _, err := sess.Bind("offline-a"); err != nil {
		t.Fatal(err)
	}
	for serial := uint64(1); serial <= 3; serial++ {
		submitSerial(t, sess, key(1), serial, 10)
	}
	sess.Park()
	info1, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess.Unpark()
	submitSerial(t, sess, key(1), 4, 10)
	sess.Park()
	info2, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess.Unpark()

	states, err := ReadCheckpointSessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].GUID != "offline-a" || states[0].Acked != 4 {
		t.Fatalf("offline dump = %+v, want offline-a at serial 4", states)
	}

	// Tear the newest generation's table: the reader must fall back to
	// the previous generation, like Recover does.
	if info1.T1 == info2.T1 {
		t.Fatalf("checkpoints share t1=%#x; cannot tear one generation", info1.T1)
	}
	name := filepath.Join(dir, sessionsFileName(info2.T1))
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	states, err = ReadCheckpointSessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].Acked != 3 {
		t.Fatalf("fallback dump = %+v, want offline-a at serial 3", states)
	}
}
