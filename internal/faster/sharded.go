package faster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"strings"

	"repro/internal/device"
	"repro/internal/hlog"
	"repro/internal/metrics"
	"repro/internal/xhash"
)

// Sharding: N fully independent stores — each with its own hash index,
// HybridLog, epoch domain, io-worker pool and checkpoint generation —
// behind one facade that routes every key by consistent hashing. Because
// the shards share nothing, per-shard flushes, compactions, epoch drains
// and checkpoints never serialize against each other; a poisoned device
// degrades one shard's health ladder while its siblings keep serving.
//
// Two pieces need genuine cross-shard coordination:
//
//   - Exactly-once serials. A connection's serial stream scatters over
//     shards with its keys, so each shard's session table observes an
//     ascending *subsequence* (sessionTable.sparse); gap detection moves
//     up to the RESP front-end, which sees the whole stream. The
//     connection frontier is the maximum acked serial over shards —
//     sound only because the sharded checkpoint cuts every shard at one
//     global serial barrier (see Checkpoint below).
//
//   - Checkpoints. Each generation is a directory of per-shard
//     checkpoints committed atomically by a top-level manifest. The
//     serial cuts of all shards are taken while holding every shard's
//     cut lock (in ascending shard order, the same order stamped windows
//     acquire them), so no serial can commit on one shard between two
//     shards' cuts: for any connection, the set of serials covered by
//     the generation is a prefix of its stream, and max-over-shards of
//     the recovered acked frontiers is exactly the newest serial of that
//     prefix. Recovery is all-or-nothing per generation: if any shard of
//     the manifest's generation fails to load, the whole ensemble falls
//     back to the previous manifest — never mixing generations, which
//     would tear the barrier invariant.

// ShardedConfig describes a sharded store.
type ShardedConfig struct {
	// Shards is the number of independent shards (default 1).
	Shards int
	// Base is the per-shard configuration. Base.Device is used only when
	// NewDevice is nil and Shards == 1; otherwise NewDevice supplies one
	// device per shard (shards must never share a device).
	Base Config
	// NewDevice returns shard i's device. Required for persistent modes
	// with Shards > 1.
	NewDevice func(shard int) device.Device
}

// ringVnodes is the number of virtual nodes each shard contributes to
// the consistent-hash ring. 64 keeps the per-shard key imbalance within
// a few percent while the ring stays small enough to search in L1.
const ringVnodes = 64

// shardRing is an immutable consistent-hash ring: sorted vnode points,
// each owning the arc that ends at it.
type shardRing struct {
	points []uint64
	owners []int
}

func buildRing(shards, vnodes int) *shardRing {
	type pt struct {
		h     uint64
		shard int
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{h: xhash.Uint64(uint64(s)<<20 | uint64(v)<<1 | 1), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	r := &shardRing{points: make([]uint64, len(pts)), owners: make([]int, len(pts))}
	for i, p := range pts {
		r.points[i] = p.h
		r.owners[i] = p.shard
	}
	return r
}

// shardOf returns the shard owning hash h: the first ring point at or
// after h, wrapping at the top.
func (r *shardRing) shardOf(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.owners[lo]
}

// ShardedStore is the N-shard facade. All methods are safe for
// concurrent use; sessions (StartSession) carry the usual one-goroutine
// contract.
type ShardedStore struct {
	shards []*Store
	ring   atomic.Pointer[shardRing]
	// stale is the pre-rehash ring the route-stale-map mutation consults
	// (mutate builds only; nil otherwise). Modeling note: doubling the
	// vnode count is the "rehash" — the stale ring maps a fraction of the
	// key space to different shards.
	stale     *shardRing
	routeTick atomic.Uint64
	ckptSeq   atomic.Uint64
}

// OpenSharded opens cfg.Shards independent stores and the routing ring.
func OpenSharded(cfg ShardedConfig) (*ShardedStore, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	ss := &ShardedStore{shards: make([]*Store, 0, n)}
	for i := 0; i < n; i++ {
		c := cfg.Base
		// ReadCacheBytes is a total budget for the ensemble; each shard
		// gets an equal slice so -shards N doesn't multiply memory use.
		c.ReadCacheBytes = cfg.Base.ReadCacheBytes / uint64(n)
		if cfg.NewDevice != nil {
			c.Device = cfg.NewDevice(i)
		} else if i > 0 {
			ss.closeShards()
			return nil, errors.New("faster: ShardedConfig.NewDevice required for Shards > 1")
		}
		s, err := Open(c)
		if err != nil {
			ss.closeShards()
			return nil, fmt.Errorf("faster: open shard %d: %w", i, err)
		}
		s.sessions.sparse = n > 1
		ss.shards = append(ss.shards, s)
	}
	ss.initRing()
	return ss, nil
}

// NewShardedFromStores wraps already-open stores (all must share a
// compatible configuration). Ownership transfers: Close closes them.
func NewShardedFromStores(stores []*Store) (*ShardedStore, error) {
	if len(stores) == 0 {
		return nil, errors.New("faster: no stores")
	}
	ss := &ShardedStore{shards: stores}
	for _, s := range stores {
		s.sessions.sparse = len(stores) > 1
	}
	ss.initRing()
	return ss, nil
}

func (ss *ShardedStore) initRing() {
	ss.ring.Store(buildRing(len(ss.shards), ringVnodes))
	if mutationsEnabled && len(ss.shards) > 1 {
		ss.stale = buildRing(len(ss.shards), ringVnodes/2)
	}
}

func (ss *ShardedStore) closeShards() {
	for _, s := range ss.shards {
		s.Close()
	}
}

// NumShards returns the shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Shard exposes shard i for per-shard operations (compaction, metrics,
// direct sessions in tests).
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// ShardFor returns the shard index owning key.
func (ss *ShardedStore) ShardFor(key []byte) int { return ss.shardFor(hashKey(key)) }

func (ss *ShardedStore) shardFor(h uint64) int {
	if len(ss.shards) == 1 {
		return 0
	}
	r := ss.ring.Load()
	if mutationsEnabled && mutRouteStale() && ss.stale != nil {
		// The seeded route-after-rehash bug: every fourth routing decision
		// consults the retained pre-rehash ring.
		if ss.routeTick.Add(1)%4 == 0 {
			r = ss.stale
		}
	}
	return r.shardOf(h)
}

// MaxSessions is the number of concurrent sharded sessions the store
// supports — each one holds a session on every shard.
func (ss *ShardedStore) MaxSessions() int {
	m := ss.shards[0].MaxSessions()
	for _, s := range ss.shards[1:] {
		if n := s.MaxSessions(); n < m {
			m = n
		}
	}
	return m
}

// Health reports the worst shard's health: the ensemble can serve a key
// space only as well as its sickest shard. Per-key decisions should use
// HealthFor / ShardHealth instead, which is what lets one poisoned
// shard degrade alone.
func (ss *ShardedStore) Health() Health {
	worst := Healthy
	for _, s := range ss.shards {
		if h := s.Health(); h > worst {
			worst = h
		}
	}
	return worst
}

// HealthCause returns the cause recorded by the worst shard.
func (ss *ShardedStore) HealthCause() error {
	worst, cause := Healthy, error(nil)
	for _, s := range ss.shards {
		if h := s.Health(); h > worst || (h == worst && cause == nil) {
			worst, cause = h, s.HealthCause()
		}
	}
	return cause
}

// ShardHealth reports shard i's health.
func (ss *ShardedStore) ShardHealth(i int) Health { return ss.shards[i].Health() }

// HealthFor reports the health of the shard owning key.
func (ss *ShardedStore) HealthFor(key []byte) Health {
	return ss.shards[ss.ShardFor(key)].Health()
}

// SubmitRead routes an asynchronous read to its key's shard io-pool.
func (ss *ShardedStore) SubmitRead(key, input []byte, outLen int, deadline time.Time, ctx any, done func(Result)) error {
	return ss.shards[ss.ShardFor(key)].SubmitRead(key, input, outLen, deadline, ctx, done)
}

// SubmitRMW routes an asynchronous RMW to its key's shard io-pool.
func (ss *ShardedStore) SubmitRMW(key, input []byte, deadline time.Time, ctx any, done func(Result)) error {
	return ss.shards[ss.ShardFor(key)].SubmitRMW(key, input, deadline, ctx, done)
}

// CompactAll compacts every shard up to its own safe read-only address,
// summing the per-shard stats. Shards compact independently; a failure
// on one shard does not stop the others (first error is returned).
func (ss *ShardedStore) CompactAll() (CompactStats, error) {
	var total CompactStats
	var firstErr error
	for _, s := range ss.shards {
		st, err := s.Compact(s.Log().SafeReadOnlyAddress())
		total.Copied += st.Copied
		total.CopiedBytes += st.CopiedBytes
		total.Skipped += st.Skipped
		total.ReclaimedBytes += st.ReclaimedBytes
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// Close closes every shard, returning the first error.
func (ss *ShardedStore) Close() error {
	var firstErr error
	for _, s := range ss.shards {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Sharded sessions
// ---------------------------------------------------------------------------

// ShardedSession mirrors Session over the facade: one underlying
// session per shard, with every operation routed to its key's shard.
// Exactly one goroutine may drive it at a time.
type ShardedSession struct {
	ss   *ShardedStore
	subs []*Session
	stok *ShardedToken
	// curTok is the token holding the open stamped window during the
	// SerialCheckKey/SerialCommitKey convenience protocol.
	curTok *SessionToken
	// batch scratch, reused across ExecBatch calls
	groups  [][]BatchOp
	origIdx [][]int
}

// Epoch discipline: every sub-session stays PARKED except while it is
// actively executing an operation. A sharded session routes each op to
// one shard, so at any instant its other sub-sessions are idle — were
// they left unparked they would pin stale epochs on their shards, and
// two clients blocked inside different shards' flush waits would stall
// each other's drains forever (a cross-shard distributed deadlock:
// A waits on shard 0 pinning shard 1, B waits on shard 1 pinning
// shard 0). Parking makes an idle sub-session invisible to its shard's
// epoch domain; the active one follows the flat store's own discipline.

// StartSession opens a session on every shard. Each sub-session starts
// parked; routed operations unpark exactly one for their duration.
func (ss *ShardedStore) StartSession() *ShardedSession {
	subs := make([]*Session, len(ss.shards))
	for i, s := range ss.shards {
		subs[i] = s.StartSession()
		subs[i].Park()
	}
	return &ShardedSession{ss: ss, subs: subs,
		groups: make([][]BatchOp, len(ss.shards)), origIdx: make([][]int, len(ss.shards))}
}

// Close closes every per-shard session. Each sub is unparked first:
// Close drains its pending operations, which needs epoch protection.
func (sess *ShardedSession) Close() error {
	sess.Unbind()
	var firstErr error
	for _, sub := range sess.subs {
		sub.Unpark()
		if err := sub.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SetResidentOnly applies to every shard session.
func (sess *ShardedSession) SetResidentOnly(on bool) {
	for _, sub := range sess.subs {
		sub.SetResidentOnly(on)
	}
}

// SetOpDeadline applies to every shard session.
func (sess *ShardedSession) SetOpDeadline(t time.Time) {
	for _, sub := range sess.subs {
		sub.SetOpDeadline(t)
	}
}

// Refresh is a no-op: idle sub-sessions are parked (pinning nothing),
// and the active one refreshes itself on the flat store's cadence.
func (sess *ShardedSession) Refresh() {}

// Park is a no-op for the same reason; it exists so callers can treat
// sharded and flat sessions uniformly around blocking waits.
func (sess *ShardedSession) Park() {}

// Unpark mirrors Park.
func (sess *ShardedSession) Unpark() {}

// Sub exposes the shard-i session (tests, per-shard drains).
func (sess *ShardedSession) Sub(i int) *Session { return sess.subs[i] }

// SubFor returns the session of the shard owning key.
func (sess *ShardedSession) SubFor(key []byte) *Session {
	return sess.subs[sess.ss.ShardFor(key)]
}

// Read routes to the key's shard.
func (sess *ShardedSession) Read(key, input, output []byte, ctx any) (Status, error) {
	sub := sess.SubFor(key)
	sub.Unpark()
	st, err := sub.Read(key, input, output, ctx)
	sub.Park()
	return st, err
}

// Upsert routes to the key's shard.
func (sess *ShardedSession) Upsert(key, value []byte) (Status, error) {
	sub := sess.SubFor(key)
	sub.Unpark()
	st, err := sub.Upsert(key, value)
	sub.Park()
	return st, err
}

// RMW routes to the key's shard.
func (sess *ShardedSession) RMW(key, input []byte, ctx any) (Status, error) {
	sub := sess.SubFor(key)
	sub.Unpark()
	st, err := sub.RMW(key, input, ctx)
	sub.Park()
	return st, err
}

// Delete routes to the key's shard.
func (sess *ShardedSession) Delete(key []byte) (Status, error) {
	sub := sess.SubFor(key)
	sub.Unpark()
	st, err := sub.Delete(key)
	sub.Park()
	return st, err
}

// CompletePending drains completions from every shard session. With
// wait set it spins across all shards until none holds an outstanding
// operation, never blocking inside any single shard's wait: a blocked
// sub-session cannot drain its siblings' completions, and parking keeps
// the idle shards from stalling the flushes the pending operations
// need.
func (sess *ShardedSession) CompletePending(wait bool) []Result {
	out, _ := sess.completePendingAll(wait, time.Time{})
	return out
}

// CompletePendingTimeout drains every shard within one shared deadline.
func (sess *ShardedSession) CompletePendingTimeout(d time.Duration) ([]Result, error) {
	return sess.completePendingAll(true, time.Now().Add(d))
}

func (sess *ShardedSession) completePendingAll(wait bool, deadline time.Time) ([]Result, error) {
	var out []Result
	spins := 0
	for {
		progressed := false
		busy := 0
		for _, sub := range sess.subs {
			sub.Unpark()
			res := sub.CompletePending(false)
			busyHere := sub.inFlight > 0 || len(sub.retries) > 0
			sub.Park()
			if len(res) > 0 {
				progressed = true
				out = append(out, res...)
			}
			if busyHere {
				busy++
			}
		}
		if !wait || busy == 0 {
			return out, nil
		}
		if progressed {
			spins = 0
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return out, fmt.Errorf("%w (%d shards busy)", ErrPendingTimeout, busy)
		}
		// Let flush/eviction trigger actions run and yield so device
		// workers get the processor (critical on small GOMAXPROCS).
		for _, sub := range sess.subs {
			sub.s.em.Drain()
		}
		spins++
		if spins > 64 {
			time.Sleep(5 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// ExecBatch splits the window by shard and executes the per-shard
// sub-batches as a concurrent fan-out, rejoining per-slot statuses in
// place. Slot order within a shard is preserved; outputs land in the
// caller's buffers exactly as with Session.ExecBatch. Slots that go
// Pending complete through CompletePending as usual.
func (sess *ShardedSession) ExecBatch(ops []BatchOp) error {
	if len(sess.subs) == 1 {
		sub := sess.subs[0]
		sub.Unpark()
		err := sub.ExecBatch(ops)
		sub.Park()
		return err
	}
	groups, origIdx := sess.groups, sess.origIdx
	for i := range groups {
		groups[i] = groups[i][:0]
		origIdx[i] = origIdx[i][:0]
	}
	used := 0
	last := -1
	for i := range ops {
		sh := sess.ss.ShardFor(ops[i].Key)
		if len(groups[sh]) == 0 {
			used++
		}
		last = sh
		groups[sh] = append(groups[sh], ops[i])
		origIdx[sh] = append(origIdx[sh], i)
	}
	if used == 1 {
		// Single-shard window: run in place on this goroutine.
		sub := sess.subs[last]
		sub.Unpark()
		err := sub.ExecBatch(groups[last])
		sub.Park()
		for j, oi := range origIdx[last] {
			ops[oi].Status = groups[last][j].Status
			ops[oi].Err = groups[last][j].Err
			ops[oi].Output = groups[last][j].Output
		}
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sess.subs))
	for sh := range groups {
		if len(groups[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			sub := sess.subs[sh]
			sub.Unpark()
			errs[sh] = sub.ExecBatch(groups[sh])
			sub.Park()
		}(sh)
	}
	wg.Wait()
	var firstErr error
	for sh := range groups {
		if errs[sh] != nil && firstErr == nil {
			firstErr = errs[sh]
		}
		for j, oi := range origIdx[sh] {
			ops[oi].Status = groups[sh][j].Status
			ops[oi].Err = groups[sh][j].Err
			ops[oi].Output = groups[sh][j].Output
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Sharded exactly-once serials
// ---------------------------------------------------------------------------

// ShardedToken is one bound GUID's capability across every shard: the
// serial stream shards with its keys, so each stamped operation runs
// under the key's shard token. Frontier is the maximum recovered acked
// serial over shards — the newest serial of the globally-committed
// prefix (see the barrier argument at the top of the file).
type ShardedToken struct {
	ss   *ShardedStore
	toks []*SessionToken
}

// BindSession binds guid on every shard and fences all previous owners.
// The returned frontier is the connection's resume point: every serial
// at or below it applied exactly once, everything above is safe to
// re-submit. The reply is the saved reply of the frontier serial.
func (ss *ShardedStore) BindSession(guid string) (*ShardedToken, uint64, []byte, error) {
	st := &ShardedToken{ss: ss, toks: make([]*SessionToken, len(ss.shards))}
	var frontier uint64
	var reply []byte
	for i, s := range ss.shards {
		tok, acked, rep, err := s.BindSession(guid)
		if err != nil {
			for _, t := range st.toks[:i] {
				t.Release()
			}
			return nil, 0, nil, err
		}
		st.toks[i] = tok
		if acked >= frontier {
			if acked > frontier || rep != nil {
				reply = rep
			}
			frontier = acked
		}
	}
	return st, frontier, reply, nil
}

// For returns the shard token owning key.
func (st *ShardedToken) For(key []byte) *SessionToken {
	return st.toks[st.ss.ShardFor(key)]
}

// Tok returns shard i's token.
func (st *ShardedToken) Tok(i int) *SessionToken { return st.toks[i] }

// Release closes any open windows on every shard token.
func (st *ShardedToken) Release() {
	for _, t := range st.toks {
		t.Release()
	}
}

// Bind attaches the sharded session to guid on every shard, returning
// the connection frontier (max acked over shards).
func (sess *ShardedSession) Bind(guid string) (uint64, error) {
	tok, frontier, _, err := sess.ss.BindSession(guid)
	if err != nil {
		return 0, err
	}
	if sess.stok != nil {
		sess.stok.Release()
	}
	sess.stok = tok
	sess.curTok = nil
	return frontier, nil
}

// Token exposes the bound sharded capability (nil when unbound).
func (sess *ShardedSession) Token() *ShardedToken { return sess.stok }

// Unbind releases the durable binding.
func (sess *ShardedSession) Unbind() {
	if sess.stok != nil {
		sess.stok.Release()
		sess.stok = nil
		sess.curTok = nil
	}
}

// SerialCheckKey classifies serial under the token of key's shard and,
// on SerialApply, leaves that shard's stamped window open; the caller
// must execute the operation on the same key and then call
// SerialCommitKey or SerialAbort. Note the sparse admission rule:
// serials ascend per shard but need not be dense — gap detection is the
// caller's job, because only the caller sees the whole stream.
func (sess *ShardedSession) SerialCheckKey(key []byte, serial uint64) (SerialVerdict, []byte, error) {
	if sess.stok == nil {
		return SerialFenced, nil, ErrNotBound
	}
	tok := sess.stok.For(key)
	if !tok.inWindow {
		tok.WindowEnter()
	}
	v, reply := tok.Check(serial)
	if v != SerialApply {
		tok.WindowExit()
		return v, reply, nil
	}
	sess.curTok = tok
	return v, reply, nil
}

// SerialCommitKey commits an admitted serial on the open shard window.
func (sess *ShardedSession) SerialCommitKey(serial uint64, reply []byte) {
	tok := sess.curTok
	tok.Commit(serial, reply)
	if tok.inWindow {
		tok.WindowExit()
	}
	sess.curTok = nil
}

// SerialAbort rolls back an admitted serial whose operation failed,
// closing the open shard window; the client may retry the serial.
func (sess *ShardedSession) SerialAbort() {
	if sess.curTok != nil && sess.curTok.inWindow {
		sess.curTok.WindowExit()
	}
	sess.curTok = nil
}

// ---------------------------------------------------------------------------
// Sharded checkpoint: per-shard generations under one manifest
// ---------------------------------------------------------------------------

const manifestMagic uint64 = 0xFA57E2C05A4DED01

// ShardedCheckpointInfo describes a committed sharded checkpoint.
type ShardedCheckpointInfo struct {
	// Seq is the generation sequence number the manifest committed.
	Seq uint64
	// Shards holds each shard's checkpoint bracket.
	Shards []CheckpointInfo
}

type manifest struct {
	seq uint64
	t1s []hlog.Address
}

func genDirName(seq uint64) string { return fmt.Sprintf("gen-%06d", seq) }
func shardDirName(i int) string    { return fmt.Sprintf("shard-%03d", i) }
func shardGenDir(dir string, seq uint64, i int) string {
	return filepath.Join(dir, genDirName(seq), shardDirName(i))
}

// Checkpoint writes one consistent generation: every shard checkpoints
// into dir/gen-<seq>/shard-<i>/, all serial cuts are taken under a
// single global barrier (every shard's cut lock held at once, acquired
// in ascending shard order), and the generation commits atomically by
// the manifest rename. A crash anywhere before that rename leaves the
// previous manifest in force — a consistent, if older, ensemble.
//
// With one shard the store delegates to the flat single-store layout,
// so -shards 1 deployments stay bit-compatible with unsharded ones.
func (ss *ShardedStore) Checkpoint(dir string) (ShardedCheckpointInfo, error) {
	n := len(ss.shards)
	if n == 1 {
		info, err := ss.shards[0].Checkpoint(dir)
		if err != nil {
			return ShardedCheckpointInfo{}, err
		}
		return ShardedCheckpointInfo{Shards: []CheckpointInfo{info}}, nil
	}
	seq := ss.ckptSeq.Add(1)
	genDir := filepath.Join(dir, genDirName(seq))
	// A failed earlier attempt may have left a partial generation with
	// this sequence; recovery never reads uncommitted generations, so
	// clearing it is safe.
	if err := os.RemoveAll(genDir); err != nil {
		return ShardedCheckpointInfo{}, err
	}

	// Phase 1 — parallel per-shard prepare (index images). No locks.
	preps := make([]ckptPrep, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preps[i], errs[i] = ss.shards[i].checkpointPrepare(shardGenDir(dir, seq, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return ShardedCheckpointInfo{}, fmt.Errorf("faster: shard %d checkpoint prepare: %w", i, err)
		}
	}

	// Phase 2 — the global serial barrier: acquire every shard's cut
	// lock in ascending order (stamped windows acquire in the same
	// order, so no hold-and-wait cycle exists), cut all shards, release.
	// While all locks are held no stamped window is open anywhere, so
	// the set of committed serials is a per-connection prefix and every
	// cut covers exactly that prefix's records on its shard.
	payloads := make([][]byte, n)
	snaps := make([][]sessSnap, n)
	t2s := make([]hlog.Address, n)
	for i := 0; i < n; i++ {
		ss.shards[i].sessions.cutMu.Lock()
	}
	for i := 0; i < n; i++ {
		payloads[i], snaps[i], t2s[i] = ss.shards[i].checkpointCut()
	}
	for i := n - 1; i >= 0; i-- {
		ss.shards[i].sessions.cutMu.Unlock()
	}

	// Phase 3 — parallel per-shard finish (flush waits, meta commits).
	infos := make([]CheckpointInfo, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = ss.shards[i].checkpointFinish(preps[i], payloads[i], snaps[i], t2s[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return ShardedCheckpointInfo{}, fmt.Errorf("faster: shard %d checkpoint: %w", i, err)
		}
	}

	if mutationsEnabled && mutSkipShardFsync() {
		// The seeded bug: one shard's generation meta was never fsynced
		// and the crash the manifest survived tore it. Tear the
		// highest-index shard that checkpointed session frontiers (the
		// shard whose regression the exactly-once checker can see).
		victim := n - 1
		for i := n - 1; i >= 0; i-- {
			if len(payloads[i]) > sessHeaderLen {
				victim = i
				break
			}
		}
		tearShardMeta(filepath.Join(shardGenDir(dir, seq, victim), "meta.ckpt"))
	}

	// Phase 4 — manifest commit: tmp + fsync, rotate manifest.ckpt →
	// manifest.prev, rename, dir fsync. The rename is the single commit
	// point for the whole generation.
	man := manifest{seq: seq, t1s: make([]hlog.Address, n)}
	for i, info := range infos {
		man.t1s[i] = info.T1
	}
	manTmp := filepath.Join(dir, "manifest.ckpt.tmp")
	if err := writeManifest(manTmp, man); err != nil {
		return ShardedCheckpointInfo{}, err
	}
	manPath := filepath.Join(dir, "manifest.ckpt")
	if _, err := os.Stat(manPath); err == nil {
		if err := os.Rename(manPath, filepath.Join(dir, "manifest.prev")); err != nil {
			return ShardedCheckpointInfo{}, err
		}
	} else if !os.IsNotExist(err) {
		return ShardedCheckpointInfo{}, err
	}
	if err := os.Rename(manTmp, manPath); err != nil {
		return ShardedCheckpointInfo{}, err
	}
	if err := syncDir(dir); err != nil {
		return ShardedCheckpointInfo{}, err
	}
	gcGenerations(dir)
	return ShardedCheckpointInfo{Seq: seq, Shards: infos}, nil
}

func writeManifest(path string, man manifest) error {
	var buf []byte
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	put(manifestMagic)
	put(man.seq)
	put(uint64(len(man.t1s)))
	for _, t1 := range man.t1s {
		put(uint64(t1))
	}
	put(uint64(crc32.ChecksumIEEE(buf)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readManifest(path string) (manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	if len(raw) < 32 || len(raw)%8 != 0 {
		return manifest{}, errors.New("faster: bad manifest size")
	}
	body := raw[:len(raw)-8]
	if binary.LittleEndian.Uint64(raw[len(raw)-8:]) != uint64(crc32.ChecksumIEEE(body)) {
		return manifest{}, errors.New("faster: manifest crc mismatch")
	}
	if binary.LittleEndian.Uint64(raw) != manifestMagic {
		return manifest{}, errors.New("faster: manifest bad magic")
	}
	man := manifest{seq: binary.LittleEndian.Uint64(raw[8:])}
	count := binary.LittleEndian.Uint64(raw[16:])
	if uint64(len(raw)) != 32+8*count {
		return manifest{}, errors.New("faster: manifest shard count mismatch")
	}
	man.t1s = make([]hlog.Address, count)
	for i := range man.t1s {
		man.t1s[i] = hlog.Address(binary.LittleEndian.Uint64(raw[24+8*i:]))
	}
	return man, nil
}

// gcGenerations removes generation directories no manifest references —
// best-effort, after a committed checkpoint.
func gcGenerations(dir string) {
	keep := map[string]bool{}
	for _, m := range []string{"manifest.ckpt", "manifest.prev"} {
		if man, err := readManifest(filepath.Join(dir, m)); err == nil {
			keep[genDirName(man.seq)] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() && len(name) > 4 && name[:4] == "gen-" && !keep[name] {
			os.RemoveAll(filepath.Join(dir, name))
		}
	}
}

// recoverWithInfo is Recover exposing the recovered generation's
// bracket, so a sharded recovery can verify each shard landed on the
// generation its manifest names.
func recoverWithInfo(cfg Config, dir string) (*Store, CheckpointInfo, error) {
	info, idx, sess, err := loadCheckpoint(dir)
	if err != nil {
		return nil, CheckpointInfo{}, err
	}
	s, err := recoverFrom(cfg, info, idx, sess)
	return s, info, err
}

// RecoverSharded reopens a sharded store from its manifest. Recovery is
// all-or-nothing per generation: the manifest's generation loads only
// if every shard recovers and matches its recorded T1; otherwise the
// whole ensemble falls back to the previous manifest. Under the
// skip-shard-fsync mutation the naive per-shard fallback runs instead —
// each shard independently falls back (prev generation, then empty),
// silently mixing generations.
func RecoverSharded(cfg ShardedConfig, dir string) (*ShardedStore, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	if n == 1 {
		c := cfg.Base
		if cfg.NewDevice != nil {
			c.Device = cfg.NewDevice(0)
		}
		s, err := Recover(c, dir)
		if err != nil {
			return nil, err
		}
		return NewShardedFromStores([]*Store{s})
	}

	shardCfg := func(i int) Config {
		c := cfg.Base
		c.ReadCacheBytes = cfg.Base.ReadCacheBytes / uint64(n)
		if cfg.NewDevice != nil {
			c.Device = cfg.NewDevice(i)
		}
		return c
	}

	if mutationsEnabled && mutSkipShardFsync() {
		return recoverShardedNaive(cfg, dir, shardCfg)
	}

	man, manErr := readManifest(filepath.Join(dir, "manifest.ckpt"))
	var lastErr error
	if manErr == nil {
		if ss, err := recoverGeneration(cfg, dir, man, shardCfg); err == nil {
			return ss, nil
		} else {
			lastErr = err
		}
	} else {
		lastErr = manErr
	}
	if pman, perr := readManifest(filepath.Join(dir, "manifest.prev")); perr == nil {
		if ss, err := recoverGeneration(cfg, dir, pman, shardCfg); err == nil {
			return ss, nil
		} else if lastErr == nil {
			lastErr = err
		}
	}
	return nil, fmt.Errorf("faster: sharded recovery: %w", lastErr)
}

// recoverGeneration loads every shard of one manifest generation,
// verifying each shard recovered the T1 the manifest recorded.
func recoverGeneration(cfg ShardedConfig, dir string, man manifest, shardCfg func(int) Config) (*ShardedStore, error) {
	n := cfg.Shards
	if int(len(man.t1s)) != n {
		return nil, fmt.Errorf("faster: manifest has %d shards, config %d", len(man.t1s), n)
	}
	stores := make([]*Store, 0, n)
	closeAll := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		s, info, err := recoverWithInfo(shardCfg(i), shardGenDir(dir, man.seq, i))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("faster: shard %d of generation %d: %w", i, man.seq, err)
		}
		if info.T1 != man.t1s[i] {
			s.Close()
			closeAll()
			return nil, fmt.Errorf("faster: shard %d recovered T1 %#x, manifest records %#x", i, info.T1, man.t1s[i])
		}
		stores = append(stores, s)
	}
	ss, err := NewShardedFromStores(stores)
	if err != nil {
		closeAll()
		return nil, err
	}
	ss.ckptSeq.Store(man.seq)
	return ss, nil
}

// recoverShardedNaive is the seeded skip-shard-fsync reader: each shard
// independently tries the current generation, then the previous, then
// comes up empty — mixing generations across shards, which silently
// reverts one shard's acked frontiers and data while the connection
// frontier (max over shards) stays high. The exactly-once checker
// refutes the resulting double-applies and lost updates.
func recoverShardedNaive(cfg ShardedConfig, dir string, shardCfg func(int) Config) (*ShardedStore, error) {
	n := cfg.Shards
	man, err := readManifest(filepath.Join(dir, "manifest.ckpt"))
	if err != nil {
		return nil, err
	}
	pman, havePrev := manifest{}, false
	if m, err := readManifest(filepath.Join(dir, "manifest.prev")); err == nil {
		pman, havePrev = m, true
	}
	stores := make([]*Store, 0, n)
	var maxSeq uint64
	for i := 0; i < n; i++ {
		s, _, err := recoverWithInfo(shardCfg(i), shardGenDir(dir, man.seq, i))
		if err == nil {
			if man.seq > maxSeq {
				maxSeq = man.seq
			}
			stores = append(stores, s)
			continue
		}
		if havePrev {
			if s, _, err := recoverWithInfo(shardCfg(i), shardGenDir(dir, pman.seq, i)); err == nil {
				if pman.seq > maxSeq {
					maxSeq = pman.seq
				}
				stores = append(stores, s)
				continue
			}
		}
		s, err = Open(shardCfg(i))
		if err != nil {
			for _, st := range stores {
				st.Close()
			}
			return nil, err
		}
		stores = append(stores, s)
	}
	ss, err := NewShardedFromStores(stores)
	if err != nil {
		for _, st := range stores {
			st.Close()
		}
		return nil, err
	}
	ss.ckptSeq.Store(maxSeq)
	return ss, nil
}

// ReadShardedCheckpointSessions aggregates the committed exactly-once
// session state of a sharded checkpoint directory: per GUID, the
// connection frontier (max acked over shards) of the manifest's
// generation — the offline view `faster-cli sessions` prints. Falls
// back to the flat single-store layout when no manifest exists.
func ReadShardedCheckpointSessions(dir string) ([]SessionState, error) {
	man, err := readManifest(filepath.Join(dir, "manifest.ckpt"))
	if err != nil {
		if m, perr := readManifest(filepath.Join(dir, "manifest.prev")); perr == nil {
			man = m
		} else {
			return ReadCheckpointSessions(dir)
		}
	}
	byGUID := map[string]SessionState{}
	for i := range man.t1s {
		states, err := ReadCheckpointSessions(shardGenDir(dir, man.seq, i))
		if err != nil {
			return nil, fmt.Errorf("faster: shard %d sessions: %w", i, err)
		}
		for _, st := range states {
			cur, ok := byGUID[st.GUID]
			if !ok || st.Acked > cur.Acked {
				byGUID[st.GUID] = st
			}
		}
	}
	out := make([]SessionState, 0, len(byGUID))
	for _, st := range byGUID {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GUID < out[j].GUID })
	return out, nil
}

// ---------------------------------------------------------------------------
// Sharded metrics
// ---------------------------------------------------------------------------

// ShardedMetrics is a snapshot of every shard's instrumentation.
type ShardedMetrics struct {
	Shards []StoreMetrics
}

// Metrics snapshots every shard.
func (ss *ShardedStore) Metrics() ShardedMetrics {
	m := ShardedMetrics{Shards: make([]StoreMetrics, len(ss.shards))}
	for i, s := range ss.shards {
		m.Shards[i] = s.Metrics()
	}
	return m
}

// Series flattens the ensemble: counters and gauges sum across shards
// under their usual names, latency series (*_ns) are reported per shard
// only (a sum of quantiles means nothing), health takes the worst
// shard, and every shard's full series rides under a shard<i>. prefix.
func (m ShardedMetrics) Series() metrics.Series {
	if len(m.Shards) == 1 {
		return m.Shards[0].Series()
	}
	agg := metrics.Series{}
	for i, sm := range m.Shards {
		s := sm.Series()
		agg.Merge(fmt.Sprintf("shard%d", i), s)
		for k, v := range s {
			if strings.HasSuffix(k, "_ns") {
				continue
			}
			if k == "faster.health" {
				if v > agg[k] {
					agg[k] = v
				}
				continue
			}
			agg[k] += v
		}
	}
	return agg
}
