package faster

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/device"
	"repro/internal/hlog"
	"repro/internal/testutil"
)

// openTestSharded opens an n-shard store over fresh Mem devices; the
// devices are returned so recovery tests can reopen the same contents.
func openTestSharded(t testing.TB, n int, base Config) (*ShardedStore, []*device.Mem) {
	t.Helper()
	devs := make([]*device.Mem, n)
	for i := range devs {
		devs[i] = device.NewMem(device.MemConfig{})
	}
	t.Cleanup(func() {
		for _, d := range devs {
			d.Close()
		}
	})
	ss, err := OpenSharded(shardedTestConfig(n, base, devs))
	if err != nil {
		t.Fatal(err)
	}
	return ss, devs
}

func shardedTestConfig(n int, base Config, devs []*device.Mem) ShardedConfig {
	if base.Ops == nil {
		base.Ops = SumOps{}
	}
	if base.PageBits == 0 {
		base.PageBits = 12
	}
	if base.BufferPages == 0 {
		base.BufferPages = 8
	}
	if base.IndexBuckets == 0 {
		base.IndexBuckets = 1 << 9
	}
	return ShardedConfig{
		Shards:    n,
		Base:      base,
		NewDevice: func(i int) device.Device { return devs[i] },
	}
}

func TestShardedRoutingDeterministic(t *testing.T) {
	testutil.CheckGoroutines(t)
	ss, _ := openTestSharded(t, 4, Config{})
	defer ss.Close()

	seen := make(map[int]int)
	for i := uint64(0); i < 4096; i++ {
		k := key(i)
		sh := ss.ShardFor(k)
		if sh < 0 || sh >= 4 {
			t.Fatalf("key %d routed to shard %d", i, sh)
		}
		if again := ss.ShardFor(k); again != sh {
			t.Fatalf("key %d routed to %d then %d", i, sh, again)
		}
		seen[sh]++
	}
	for sh := 0; sh < 4; sh++ {
		if seen[sh] == 0 {
			t.Fatalf("shard %d owns no keys out of 4096: %v", sh, seen)
		}
	}
	// The ring is a pure function of the shard count: a second store
	// must route identically, or recovery would scatter keys.
	ss2, _ := openTestSharded(t, 4, Config{})
	defer ss2.Close()
	for i := uint64(0); i < 256; i++ {
		if a, b := ss.ShardFor(key(i)), ss2.ShardFor(key(i)); a != b {
			t.Fatalf("key %d routes to %d in one store, %d in another", i, a, b)
		}
	}
}

func TestShardedBasicOpsAndBatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	ss, _ := openTestSharded(t, 4, Config{})
	defer ss.Close()

	sess := ss.StartSession()
	defer sess.Close()

	const n = 400
	for i := uint64(1); i <= n; i++ {
		if st, err := sess.Upsert(key(i), u64(i*10)); st != OK || err != nil {
			t.Fatalf("upsert %d: %v %v", i, st, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		out := make([]byte, 8)
		st, err := sess.Read(key(i), nil, out, nil)
		if st == Pending {
			for _, res := range sess.CompletePending(true) {
				st = res.Status
				if res.Output != nil {
					copy(out, res.Output)
				}
			}
		}
		if st != OK || err != nil {
			t.Fatalf("read %d: %v %v", i, st, err)
		}
		if got := leU64(out); got != i*10 {
			t.Fatalf("read %d = %d, want %d", i, got, i*10)
		}
	}

	// Mixed multi-shard batch window: RMW every key, read half, delete a
	// few — statuses and outputs must rejoin in the caller's slots.
	ops := make([]BatchOp, 0, 64)
	outs := make(map[int][]byte)
	for i := uint64(1); i <= 32; i++ {
		ops = append(ops, BatchOp{Kind: BatchRMW, Key: key(i), Value: u64(1)})
		if i%2 == 0 {
			out := make([]byte, 8)
			outs[len(ops)] = out
			ops = append(ops, BatchOp{Kind: BatchRead, Key: key(i), Output: out})
		}
	}
	if err := sess.ExecBatch(ops); err != nil {
		t.Fatal(err)
	}
	sess.CompletePending(true)
	for idx, out := range outs {
		op := ops[idx]
		if op.Status == OK {
			i := leU64(op.Key)
			if got := leU64(out); got != i*10+1 {
				t.Fatalf("batch read key %d = %d, want %d", i, got, i*10+1)
			}
		}
	}
	if st, _ := sess.Delete(key(7)); st != OK {
		t.Fatalf("delete: %v", st)
	}
	if st, _ := sess.Read(key(7), nil, make([]byte, 8), nil); st != NotFound {
		t.Fatalf("read after delete: %v", st)
	}
}

func TestShardedSparseSerialVerdicts(t *testing.T) {
	testutil.CheckGoroutines(t)
	ss, _ := openTestSharded(t, 4, Config{})
	defer ss.Close()

	sess := ss.StartSession()
	defer sess.Close()
	if _, err := sess.Bind("sparse-client"); err != nil {
		t.Fatal(err)
	}

	// Pick two keys on different shards so the serial stream visibly
	// scatters.
	k1, k2 := key(1), key(1)
	for i := uint64(2); ; i++ {
		if ss.ShardFor(key(i)) != ss.ShardFor(k1) {
			k2 = key(i)
			break
		}
	}

	apply := func(k []byte, serial uint64) {
		t.Helper()
		v, _, err := sess.SerialCheckKey(k, serial)
		if err != nil || v != SerialApply {
			t.Fatalf("serial %d: verdict %v err %v, want APPLY", serial, v, err)
		}
		if st, _ := sess.RMW(k, u64(1), nil); st != OK {
			t.Fatalf("serial %d rmw: %v", serial, st)
		}
		sess.SerialCommitKey(serial, []byte("ok"))
	}
	// Serials 1,2 on shard(k1); 3 on shard(k2); 4 back on shard(k1):
	// each shard sees an ascending subsequence with jumps.
	apply(k1, 1)
	apply(k1, 2)
	apply(k2, 3)
	apply(k1, 4)

	// Duplicate of the newest serial on each shard replays.
	if v, reply, _ := sess.SerialCheckKey(k1, 4); v != SerialReplay || string(reply) != "ok" {
		t.Fatalf("dup of newest on shard(k1): %v %q", v, reply)
	}
	if v, _, _ := sess.SerialCheckKey(k2, 3); v != SerialReplay {
		t.Fatalf("dup of newest on shard(k2): %v", v)
	}
	// Older serials are stale, never re-applied.
	if v, _, _ := sess.SerialCheckKey(k1, 2); v != SerialStale {
		t.Fatalf("old serial: %v", v)
	}
	// A jump forward on a shard is admissible (sparse mode): serial 9
	// lands on shard(k2) even though that shard last saw 3.
	apply(k2, 9)

	// Frontier reported on rebind is the max acked over shards.
	sess2 := ss.StartSession()
	defer sess2.Close()
	frontier, err := sess2.Bind("sparse-client")
	if err != nil {
		t.Fatal(err)
	}
	if frontier != 9 {
		t.Fatalf("rebound frontier %d, want 9", frontier)
	}
}

// shardedSeedData drives stamped serials and plain upserts through a
// sharded session: serial i RMWs key (i%5)+1 with delta i.
func shardedSeedData(t testing.TB, ss *ShardedStore, guid string, from, to uint64) {
	t.Helper()
	sess := ss.StartSession()
	defer sess.Close()
	if _, err := sess.Bind(guid); err != nil {
		t.Fatal(err)
	}
	for serial := from; serial <= to; serial++ {
		k := key(serial%5 + 1)
		v, _, err := sess.SerialCheckKey(k, serial)
		if err != nil {
			t.Fatal(err)
		}
		if v != SerialApply {
			t.Fatalf("serial %d: verdict %v", serial, v)
		}
		if st, _ := sess.RMW(k, u64(serial), nil); st != OK {
			t.Fatalf("serial %d rmw status", serial)
		}
		sess.SerialCommitKey(serial, []byte(fmt.Sprintf("r%d", serial)))
	}
}

// shardedSums returns the expected per-key counter sums for serials
// [1, to] under shardedSeedData's layout.
func shardedSums(to uint64) map[uint64]uint64 {
	sums := map[uint64]uint64{}
	for serial := uint64(1); serial <= to; serial++ {
		sums[serial%5+1] += serial
	}
	return sums
}

func verifyShardedSums(t testing.TB, ss *ShardedStore, want map[uint64]uint64) {
	t.Helper()
	sess := ss.StartSession()
	defer sess.Close()
	for k, v := range want {
		out := make([]byte, 8)
		st, err := sess.Read(key(k), nil, out, nil)
		if st == Pending {
			for _, res := range sess.CompletePending(true) {
				st = res.Status
				if res.Output != nil {
					copy(out, res.Output)
				}
			}
		}
		if st != OK || err != nil {
			t.Fatalf("read key %d: %v %v", k, st, err)
		}
		if got := leU64(out); got != v {
			t.Fatalf("key %d = %d, want %d", k, got, v)
		}
	}
}

func TestShardedCheckpointRecoverRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	ss, devs := openTestSharded(t, 4, Config{})

	shardedSeedData(t, ss, "rt-client", 1, 20)
	if _, err := ss.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	shardedSeedData(t, ss, "rt-client", 21, 40)
	info, err := ss.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 2 || len(info.Shards) != 4 {
		t.Fatalf("checkpoint info %+v", info)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := RecoverSharded(shardedTestConfig(4, Config{}, devs), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.ckptSeq.Load() != 2 {
		t.Fatalf("recovered seq %d, want 2", r.ckptSeq.Load())
	}
	verifyShardedSums(t, r, shardedSums(40))

	sess := r.StartSession()
	defer sess.Close()
	frontier, err := sess.Bind("rt-client")
	if err != nil {
		t.Fatal(err)
	}
	if frontier != 40 {
		t.Fatalf("recovered frontier %d, want 40", frontier)
	}

	// The offline sessions view agrees with the live rebind.
	states, err := ReadShardedCheckpointSessions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].GUID != "rt-client" || states[0].Acked != 40 {
		t.Fatalf("offline sessions view: %+v", states)
	}
}

func TestShardedManifestFallbackConsistentPrefix(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	ss, devs := openTestSharded(t, 4, Config{})

	shardedSeedData(t, ss, "fb-client", 1, 20)
	if _, err := ss.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	shardedSeedData(t, ss, "fb-client", 21, 40)
	if _, err := ss.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	ss.Close()

	// Tear one shard's generation-2 meta, modeling a crash that beat the
	// shard's fsync: the whole ensemble must fall back to generation 1 —
	// a consistent prefix — never mix gen-2 shards with a gen-1 shard.
	metaPath := filepath.Join(shardGenDir(dir, 2, 1), "meta.ckpt")
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, raw[:len(raw)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	// The per-shard meta.prev fallback inside the gen dir must not save
	// gen 2 either (each gen dir holds exactly one generation).
	if _, err := os.Stat(filepath.Join(shardGenDir(dir, 2, 1), "meta.prev")); err == nil {
		t.Fatal("gen dir unexpectedly holds a meta.prev")
	}

	r, err := RecoverSharded(shardedTestConfig(4, Config{}, devs), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	verifyShardedSums(t, r, shardedSums(20))
	sess := r.StartSession()
	defer sess.Close()
	frontier, err := sess.Bind("fb-client")
	if err != nil {
		t.Fatal(err)
	}
	if frontier != 20 {
		t.Fatalf("fallback frontier %d, want 20 (generation 1)", frontier)
	}
}

func TestShardedPerShardHealthIsolation(t *testing.T) {
	testutil.CheckGoroutines(t)
	ss, _ := openTestSharded(t, 4, Config{})
	defer ss.Close()

	bad := errors.New("injected shard fault")
	ss.Shard(2).raiseHealth(ReadOnly, bad)

	if h := ss.ShardHealth(2); h != ReadOnly {
		t.Fatalf("shard 2 health %v", h)
	}
	for i := 0; i < 4; i++ {
		if i != 2 && ss.ShardHealth(i) != Healthy {
			t.Fatalf("sibling shard %d degraded to %v", i, ss.ShardHealth(i))
		}
	}
	if ss.Health() != ReadOnly {
		t.Fatalf("aggregate health %v, want worst shard's", ss.Health())
	}
	if !errors.Is(ss.HealthCause(), bad) {
		t.Fatalf("aggregate cause %v", ss.HealthCause())
	}

	// Writes to the poisoned shard fail; the siblings keep serving both
	// reads and writes.
	sess := ss.StartSession()
	defer sess.Close()
	served, rejected := 0, 0
	for i := uint64(1); i <= 64; i++ {
		st, err := sess.Upsert(key(i), u64(i))
		if ss.ShardFor(key(i)) == 2 {
			if st != Err || !errors.Is(err, ErrReadOnly) {
				t.Fatalf("write to poisoned shard: %v %v", st, err)
			}
			rejected++
		} else {
			if st != OK || err != nil {
				t.Fatalf("write to healthy shard %d: %v %v", ss.ShardFor(key(i)), st, err)
			}
			served++
		}
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("test keys never straddled the poisoned shard (served %d rejected %d)", served, rejected)
	}
}

func TestShardedSingleShardCheckpointLayoutCompat(t *testing.T) {
	testutil.CheckGoroutines(t)
	dir := t.TempDir()
	ss, devs := openTestSharded(t, 1, Config{})

	sess := ss.StartSession()
	for i := uint64(1); i <= 50; i++ {
		sess.Upsert(key(i), u64(i))
	}
	sess.Close()
	if _, err := ss.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	ss.Close()

	// One shard uses the flat layout: plain Recover must read it.
	if _, err := os.Stat(filepath.Join(dir, "meta.ckpt")); err != nil {
		t.Fatalf("single-shard checkpoint did not use the flat layout: %v", err)
	}
	cfg := shardedTestConfig(1, Config{}, devs).Base
	cfg.Device = devs[0]
	s, err := Recover(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rsess := s.StartSession()
	defer rsess.Close()
	if got, st := readU64(t, rsess, key(7)); st != OK || got != 7 {
		t.Fatalf("recovered key 7 = %d (%v)", got, st)
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

var _ = hlog.Address(0)
var _ = bytes.Equal
