package faster

import (
	"encoding/binary"
	"fmt"
	"maps"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// Crash/torn-write torture harness.
//
// Each case runs a seeded workload of Upserts, RMWs, Deletes and verified
// Reads against a Faulty-wrapped Mem device with a crash point armed at a
// byte budget (CrashAfterBytes): the write crossing the budget is torn at
// the boundary and the device dies permanently, exactly like a power cut
// mid-sector-train. Half the cases additionally sprinkle seeded transient
// read/write faults with torn-write prefixes, so the bounded-retry paths
// run under the same scrutiny.
//
// The workload checkpoints periodically and clones its shadow map at every
// checkpoint that COMMITS. Whatever happens afterwards — crash mid-append,
// mid-flush, mid-checkpoint, or no crash at all — recovery from the
// surviving media must reproduce the last committed snapshot exactly:
//
//   - every key in the snapshot reads back with its snapshot value
//     (no acknowledged-then-committed operation is lost),
//   - every key absent from the snapshot reads NotFound
//     (nothing past t2 is resurrected, deletes stay deleted — §6.5),
//   - the recovered tail sits at the committed t2 rounded up to a page,
//   - and no pending operation may hang on the dead device: every drain
//     runs under a deadline (the graceful-degradation guarantee).

// tortureTotalPoints returns how many crash points the matrix spreads
// across its seeds: FASTER_TORTURE_POINTS when set (the `make torture`
// knob), else 100 — the acceptance bar — or a trimmed 16 under -short.
func tortureTotalPoints(t *testing.T) int {
	if v := os.Getenv("FASTER_TORTURE_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FASTER_TORTURE_POINTS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 16
	}
	return 100
}

func TestCrashRecoveryTorture(t *testing.T) {
	// Every store, session and device in the matrix must be fully torn
	// down by the end: a drain that strands a flush-retry timer or a
	// device callback goroutine is as much a failure as lost data.
	testutil.CheckGoroutines(t)
	seeds := []int64{0x5EED0001, 0x5EED0002, 0x5EED0003, 0x5EED0004}
	perSeed := (tortureTotalPoints(t) + len(seeds) - 1) / len(seeds)

	// Crash budgets sweep the whole log lifetime: from before the first
	// checkpoint can commit (~8 KB of appends) to past the workload's
	// total write volume (so some cases never crash and verify the plain
	// close/recover path on the same harness).
	const minBudget, maxBudget = 4 << 10, 96 << 10

	var crashed, committed atomic.Int64
	t.Run("matrix", func(t *testing.T) {
		for _, seed := range seeds {
			for p := 0; p < perSeed; p++ {
				budget := int64(minBudget + p*(maxBudget-minBudget)/perSeed)
				noisy := p%2 == 1 // odd points add transient fault noise
				name := fmt.Sprintf("seed=%x/crash@%dK/noisy=%v", seed, budget>>10, noisy)
				seed, budget := seed, budget
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runTortureCase(t, seed, budget, noisy, &crashed, &committed)
				})
			}
		}
	})

	// The matrix is only a torture test if it actually tortured: some
	// cases must have died at their crash point, and some must have had a
	// committed checkpoint to recover.
	if crashed.Load() == 0 {
		t.Error("no torture case reached its crash point; budgets are too large")
	}
	if committed.Load() == 0 {
		t.Error("no torture case committed a checkpoint; budgets are too small")
	}
}

func runTortureCase(t *testing.T, seed, crashBudget int64, noisy bool, crashed, committed *atomic.Int64) {
	const (
		tortureOps  = 3000
		tortureKeys = 160
		ckptEvery   = 500
	)

	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	dir := t.TempDir()
	cfg := Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		IndexBuckets: 1 << 10, Device: faulty,
		ReadRetry:  retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
		WriteRetry: retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()

	faulty.CrashAfterBytes(crashBudget)
	if noisy {
		faulty.TornWrites(true)
		faulty.SeedFaults(uint64(seed), 0.01, 0.01)
	}

	// mustDrain completes the single outstanding pending op. A hang here
	// is itself an invariant violation: faults must surface as classified
	// completions, never as a stall.
	mustDrain := func() Result {
		results, derr := sess.CompletePendingTimeout(10 * time.Second)
		if derr != nil {
			t.Fatalf("pending op hung instead of completing with an error: %v", derr)
		}
		if len(results) != 1 {
			t.Fatalf("drained %d results, want 1", len(results))
		}
		return results[0]
	}

	rng := rand.New(rand.NewSource(seed))
	model := map[uint64]uint64{}   // acked state, updated only on OK
	var snapshot map[uint64]uint64 // model at the last committed checkpoint
	var lastInfo CheckpointInfo
	haveCkpt := false
	dead := false

	for i := 0; i < tortureOps && !dead; i++ {
		k := uint64(rng.Intn(tortureKeys))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // blind upsert
			v := rng.Uint64() >> 1
			if st, _ := sess.Upsert(key(k), u64(v)); st == OK {
				model[k] = v
			} else {
				dead = true
			}
		case 4, 5, 6: // read-modify-write: add
			delta := uint64(rng.Intn(1000))
			st, _ := sess.RMW(key(k), u64(delta), nil)
			if st == Pending {
				st = mustDrain().Status
			}
			if st == OK {
				model[k] += delta
			} else {
				dead = true
			}
		case 7: // delete
			switch st, _ := sess.Delete(key(k)); st {
			case OK, NotFound:
				delete(model, k)
			default:
				dead = true
			}
		default: // read, checked against the live model
			out := make([]byte, 8)
			st, rerr := sess.Read(key(k), nil, out, nil)
			if rerr != nil {
				dead = true
				break
			}
			if st == Pending {
				st = mustDrain().Status
			}
			want, ok := model[k]
			switch {
			case st == Err:
				dead = true // device fault surfaced; state is untouched
			case ok && st == NotFound:
				t.Fatalf("op %d: acked key %d lost while the store was live", i, k)
			case !ok && st == OK:
				t.Fatalf("op %d: deleted key %d resurrected while the store was live", i, k)
			case ok && binary.LittleEndian.Uint64(out) != want:
				t.Fatalf("op %d: key %d = %d, want %d", i, k, binary.LittleEndian.Uint64(out), want)
			}
		}

		if !dead && (i+1)%ckptEvery == 0 {
			// An idle session pins the epoch and the checkpoint's safe-RO
			// shift would wait on it forever, so drop the session around
			// the checkpoint (its pendings are already drained).
			sess.Close()
			info, cerr := s.Checkpoint(dir)
			sess = s.StartSession()
			if cerr != nil {
				dead = true // crash landed inside the checkpoint
				continue
			}
			snapshot = maps.Clone(model)
			lastInfo = info
			haveCkpt = true
		}
	}

	// Tear the store down. After a crash the device is permanently dead,
	// so the drain and close may report errors — but they must return.
	if _, derr := sess.CompletePendingTimeout(10 * time.Second); derr != nil {
		t.Fatalf("post-workload drain hung: %v", derr)
	}
	sess.Close()
	s.Close()
	if dead {
		crashed.Add(1)
	}

	// Recover from the surviving media: a fresh handle on the same Mem,
	// as after a reboot.
	rcfg := cfg
	rcfg.Device = mem
	if !haveCkpt {
		// Crash before any commit: there is nothing to recover, and
		// recovery must say so rather than conjure a store.
		if r, rerr := Recover(rcfg, dir); rerr == nil {
			r.Close()
			t.Fatal("Recover succeeded with no committed checkpoint")
		}
		return
	}
	committed.Add(1)

	r, err := Recover(rcfg, dir)
	if err != nil {
		t.Fatalf("recovery after crash@%d: %v", crashBudget, err)
	}
	defer r.Close()
	if got := r.Log().TailAddress(); got != pageUp(lastInfo.T2) {
		t.Fatalf("recovered tail = %#x, want committed t2 rounded up %#x", got, pageUp(lastInfo.T2))
	}

	rs := r.StartSession()
	defer rs.Close()
	for k := uint64(0); k < tortureKeys; k++ {
		out := make([]byte, 8)
		st, rerr := rs.Read(key(k), nil, out, nil)
		if rerr != nil {
			t.Fatalf("recovered read of key %d: %v", k, rerr)
		}
		if st == Pending {
			results, derr := rs.CompletePendingTimeout(10 * time.Second)
			if derr != nil || len(results) != 1 {
				t.Fatalf("recovered read of key %d stalled: %v (%d results)", k, derr, len(results))
			}
			if results[0].Err != nil {
				t.Fatalf("recovered read of key %d: %v", k, results[0].Err)
			}
			st = results[0].Status
		}
		want, ok := snapshot[k]
		switch {
		case ok && st != OK:
			t.Errorf("committed key %d lost after recovery: status %v, want value %d", k, st, want)
		case ok && binary.LittleEndian.Uint64(out) != want:
			t.Errorf("committed key %d = %d after recovery, want %d", k, binary.LittleEndian.Uint64(out), want)
		case !ok && st != NotFound:
			t.Errorf("key %d resurrected past t2: status %v, want NotFound", k, st)
		}
	}
}
