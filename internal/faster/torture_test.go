package faster

import (
	"encoding/binary"
	"fmt"
	"maps"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// Crash/torn-write torture harness.
//
// Each case runs a seeded workload of Upserts, RMWs, Deletes and verified
// Reads against a Faulty-wrapped Mem device with a crash point armed at a
// byte budget (CrashAfterBytes): the write crossing the budget is torn at
// the boundary and the device dies permanently, exactly like a power cut
// mid-sector-train. Half the cases additionally sprinkle seeded transient
// read/write faults with torn-write prefixes, so the bounded-retry paths
// run under the same scrutiny.
//
// The workload checkpoints periodically and clones its shadow map at every
// checkpoint that COMMITS. Whatever happens afterwards — crash mid-append,
// mid-flush, mid-checkpoint, or no crash at all — recovery from the
// surviving media must reproduce the last committed snapshot exactly:
//
//   - every key in the snapshot reads back with its snapshot value
//     (no acknowledged-then-committed operation is lost),
//   - every key absent from the snapshot reads NotFound
//     (nothing past t2 is resurrected, deletes stay deleted — §6.5),
//   - the recovered tail sits at the committed t2 rounded up to a page,
//   - and no pending operation may hang on the dead device: every drain
//     runs under a deadline (the graceful-degradation guarantee).

// tortureTotalPoints returns how many crash points the matrix spreads
// across its seeds: FASTER_TORTURE_POINTS when set (the `make torture`
// knob), else 100 — the acceptance bar — or a trimmed 16 under -short.
func tortureTotalPoints(t *testing.T) int {
	if v := os.Getenv("FASTER_TORTURE_POINTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FASTER_TORTURE_POINTS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 16
	}
	return 100
}

func TestCrashRecoveryTorture(t *testing.T) {
	// Every store, session and device in the matrix must be fully torn
	// down by the end: a drain that strands a flush-retry timer or a
	// device callback goroutine is as much a failure as lost data.
	testutil.CheckGoroutines(t)
	seeds := []int64{0x5EED0001, 0x5EED0002, 0x5EED0003, 0x5EED0004}
	perSeed := (tortureTotalPoints(t) + len(seeds) - 1) / len(seeds)

	// Crash budgets sweep the whole log lifetime: from before the first
	// checkpoint can commit (~8 KB of appends) to past the workload's
	// total write volume (so some cases never crash and verify the plain
	// close/recover path on the same harness).
	const minBudget, maxBudget = 4 << 10, 96 << 10

	var crashed, committed atomic.Int64
	t.Run("matrix", func(t *testing.T) {
		for _, seed := range seeds {
			for p := 0; p < perSeed; p++ {
				budget := int64(minBudget + p*(maxBudget-minBudget)/perSeed)
				noisy := p%2 == 1 // odd points add transient fault noise
				name := fmt.Sprintf("seed=%x/crash@%dK/noisy=%v", seed, budget>>10, noisy)
				seed, budget := seed, budget
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runTortureCase(t, seed, budget, noisy, &crashed, &committed)
				})
			}
		}
	})

	// The matrix is only a torture test if it actually tortured: some
	// cases must have died at their crash point, and some must have had a
	// committed checkpoint to recover.
	if crashed.Load() == 0 {
		t.Error("no torture case reached its crash point; budgets are too large")
	}
	if committed.Load() == 0 {
		t.Error("no torture case committed a checkpoint; budgets are too small")
	}
}

func runTortureCase(t *testing.T, seed, crashBudget int64, noisy bool, crashed, committed *atomic.Int64) {
	const (
		tortureOps  = 3000
		tortureKeys = 160
		ckptEvery   = 500
	)

	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	dir := t.TempDir()
	cfg := Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		IndexBuckets: 1 << 10, Device: faulty,
		// The read cache stays warm across every checkpoint in the matrix:
		// checkpoints must map cache-tagged index entries back to their
		// underlying addresses, and recovery must never trust a cache
		// address from a persisted image (the cache is volatile).
		ReadCacheBytes: 8 << 10,
		ReadRetry:      retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
		WriteRetry:     retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()

	faulty.CrashAfterBytes(crashBudget)
	if noisy {
		faulty.TornWrites(true)
		faulty.SeedFaults(uint64(seed), 0.01, 0.01)
	}

	// mustDrain completes the single outstanding pending op. A hang here
	// is itself an invariant violation: faults must surface as classified
	// completions, never as a stall.
	mustDrain := func() Result {
		results, derr := sess.CompletePendingTimeout(10 * time.Second)
		if derr != nil {
			t.Fatalf("pending op hung instead of completing with an error: %v", derr)
		}
		if len(results) != 1 {
			t.Fatalf("drained %d results, want 1", len(results))
		}
		return results[0]
	}

	rng := rand.New(rand.NewSource(seed))
	model := map[uint64]uint64{}   // acked state, updated only on OK
	var snapshot map[uint64]uint64 // model at the last committed checkpoint
	var lastInfo CheckpointInfo
	haveCkpt := false
	dead := false

	for i := 0; i < tortureOps && !dead; i++ {
		k := uint64(rng.Intn(tortureKeys))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // blind upsert
			v := rng.Uint64() >> 1
			if st, _ := sess.Upsert(key(k), u64(v)); st == OK {
				model[k] = v
			} else {
				dead = true
			}
		case 4, 5, 6: // read-modify-write: add
			delta := uint64(rng.Intn(1000))
			st, _ := sess.RMW(key(k), u64(delta), nil)
			if st == Pending {
				st = mustDrain().Status
			}
			if st == OK {
				model[k] += delta
			} else {
				dead = true
			}
		case 7: // delete
			switch st, _ := sess.Delete(key(k)); st {
			case OK, NotFound:
				delete(model, k)
			default:
				dead = true
			}
		default: // read, checked against the live model
			out := make([]byte, 8)
			st, rerr := sess.Read(key(k), nil, out, nil)
			if rerr != nil {
				dead = true
				break
			}
			if st == Pending {
				st = mustDrain().Status
			}
			want, ok := model[k]
			switch {
			case st == Err:
				dead = true // device fault surfaced; state is untouched
			case ok && st == NotFound:
				t.Fatalf("op %d: acked key %d lost while the store was live", i, k)
			case !ok && st == OK:
				t.Fatalf("op %d: deleted key %d resurrected while the store was live", i, k)
			case ok && binary.LittleEndian.Uint64(out) != want:
				t.Fatalf("op %d: key %d = %d, want %d", i, k, binary.LittleEndian.Uint64(out), want)
			}
		}

		if !dead && (i+1)%ckptEvery == 0 {
			// An idle session pins the epoch and the checkpoint's safe-RO
			// shift would wait on it forever, so drop the session around
			// the checkpoint (its pendings are already drained).
			sess.Close()
			info, cerr := s.Checkpoint(dir)
			sess = s.StartSession()
			if cerr != nil {
				dead = true // crash landed inside the checkpoint
				continue
			}
			snapshot = maps.Clone(model)
			lastInfo = info
			haveCkpt = true
		}
	}

	// Tear the store down. After a crash the device is permanently dead,
	// so the drain and close may report errors — but they must return.
	if _, derr := sess.CompletePendingTimeout(10 * time.Second); derr != nil {
		t.Fatalf("post-workload drain hung: %v", derr)
	}
	sess.Close()
	s.Close()
	if dead {
		crashed.Add(1)
	}

	// Recover from the surviving media: a fresh handle on the same Mem,
	// as after a reboot.
	rcfg := cfg
	rcfg.Device = mem
	if !haveCkpt {
		// Crash before any commit: there is nothing to recover, and
		// recovery must say so rather than conjure a store.
		if r, rerr := Recover(rcfg, dir); rerr == nil {
			r.Close()
			t.Fatal("Recover succeeded with no committed checkpoint")
		}
		return
	}
	committed.Add(1)

	r, err := Recover(rcfg, dir)
	if err != nil {
		t.Fatalf("recovery after crash@%d: %v", crashBudget, err)
	}
	defer r.Close()
	if got := r.Log().TailAddress(); got != pageUp(lastInfo.T2) {
		t.Fatalf("recovered tail = %#x, want committed t2 rounded up %#x", got, pageUp(lastInfo.T2))
	}

	rs := r.StartSession()
	defer rs.Close()
	for k := uint64(0); k < tortureKeys; k++ {
		out := make([]byte, 8)
		st, rerr := rs.Read(key(k), nil, out, nil)
		if rerr != nil {
			t.Fatalf("recovered read of key %d: %v", k, rerr)
		}
		if st == Pending {
			results, derr := rs.CompletePendingTimeout(10 * time.Second)
			if derr != nil || len(results) != 1 {
				t.Fatalf("recovered read of key %d stalled: %v (%d results)", k, derr, len(results))
			}
			if results[0].Err != nil {
				t.Fatalf("recovered read of key %d: %v", k, results[0].Err)
			}
			st = results[0].Status
		}
		want, ok := snapshot[k]
		switch {
		case ok && st != OK:
			t.Errorf("committed key %d lost after recovery: status %v, want value %d", k, st, want)
		case ok && binary.LittleEndian.Uint64(out) != want:
			t.Errorf("committed key %d = %d after recovery, want %d", k, binary.LittleEndian.Uint64(out), want)
		case !ok && st != NotFound:
			t.Errorf("key %d resurrected past t2: status %v, want NotFound", k, st)
		}
	}
}

// TestShardedCrashTorture is the per-shard crash matrix: a stamped
// client scatters its serial stream over a 4-shard store (per-key
// counters, seeded duplicate re-deliveries), sharded checkpoints commit
// generations mid-stream, and then one seeded victim shard's device is
// armed to die on its next write — which lands inside the next
// checkpoint's flush, killing that shard mid-checkpoint. The manifest
// must not advance over the dead shard's generation, the siblings must
// keep serving while the victim alone fails, and recovery over the
// surviving media must restore the last committed generation's
// consistent cut on every shard: the re-bound connection frontier is
// exactly the serial cut of that generation, and resubmitting
// everything above it yields every delta applied exactly once.
func TestShardedCrashTorture(t *testing.T) {
	testutil.CheckGoroutines(t)
	seeds := exactlyOnceSeeds(t)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runShardedCrashCase(t, int64(seed)*7919+17)
		})
	}
}

func runShardedCrashCase(t *testing.T, seed int64) {
	const (
		shards    = 4
		totalOps  = 60
		keySpace  = 16
		killAfter = totalOps / 2
	)
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	mems := make([]*device.Mem, shards)
	faulties := make([]*device.Faulty, shards)
	for i := range mems {
		mems[i] = device.NewMem(device.MemConfig{})
		faulties[i] = device.NewFaulty(mems[i])
	}
	defer func() {
		for _, m := range mems {
			m.Close()
		}
	}()
	base := Config{Ops: SumOps{}, PageBits: 12, BufferPages: 8,
		IndexBuckets:   1 << 9,
		ReadCacheBytes: 8 << 10,
		ReadRetry:      retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
		WriteRetry:     retry.Policy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond}}
	cfg := ShardedConfig{Shards: shards, Base: base,
		NewDevice: func(i int) device.Device { return faulties[i] }}
	ss, err := OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Fixed schedule: serial i targets keys[i] with deltas[i], so the
	// post-crash retry resends byte-identical operations and the final
	// per-key sums are computable up front.
	keys := make([]uint64, totalOps+1)
	deltas := make([]uint64, totalOps+1)
	want := map[uint64]uint64{}
	for i := 1; i <= totalOps; i++ {
		keys[i] = uint64(rng.Intn(keySpace) + 1)
		deltas[i] = uint64(rng.Intn(9) + 1)
		want[keys[i]] += deltas[i]
	}
	// The victim must own at least one scheduled key, or no write ever
	// reaches its device and there is nothing to kill mid-checkpoint.
	owners := map[int]bool{}
	for i := 1; i <= totalOps; i++ {
		owners[ss.ShardFor(key(keys[i]))] = true
	}
	victims := make([]int, 0, shards)
	for i := 0; i < shards; i++ {
		if owners[i] {
			victims = append(victims, i)
		}
	}
	victim := victims[int(seed)%len(victims)]

	sess := ss.StartSession()
	if _, err := sess.Bind("torture-client"); err != nil {
		t.Fatal(err)
	}

	drain := func() Result {
		results, derr := sess.CompletePendingTimeout(10 * time.Second)
		if derr != nil {
			t.Fatalf("pending op hung instead of completing: %v", derr)
		}
		if len(results) != 1 {
			t.Fatalf("drained %d results, want 1", len(results))
		}
		return results[0]
	}
	submit := func(serial uint64) {
		k := key(keys[serial])
		v, _, err := sess.SerialCheckKey(k, serial)
		if err != nil {
			t.Fatalf("serial %d: %v", serial, err)
		}
		if v != SerialApply {
			// Sparse per-shard tables: a re-delivered serial is Replay
			// while it is the newest on its shard, Stale once a later
			// serial has landed there.
			if v != SerialReplay && v != SerialStale {
				t.Fatalf("serial %d: verdict %v", serial, v)
			}
			return
		}
		st, rerr := sess.RMW(k, u64(deltas[serial]), nil)
		if st == Pending {
			res := drain()
			st, rerr = res.Status, res.Err
		}
		if st != OK {
			t.Fatalf("serial %d: rmw failed: %v %v", serial, st, rerr)
		}
		sess.SerialCommitKey(serial, []byte("ACK"))
	}

	var (
		clientAcked   uint64
		checkpoints   int
		lastCkptAcked uint64
		victimTouched bool
	)
	for clientAcked < totalOps {
		next := clientAcked + 1
		submit(next)
		clientAcked = next
		if ss.ShardFor(key(keys[next])) == victim {
			victimTouched = true
		}
		if rng.Intn(10) == 0 {
			submit(next) // duplicate re-delivery
		}
		if clientAcked >= killAfter && checkpoints > 0 && victimTouched {
			break // go kill the victim mid-checkpoint
		}
		if rng.Intn(8) == 0 {
			if _, err := ss.Checkpoint(dir); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			checkpoints++
			lastCkptAcked = clientAcked
			victimTouched = false
		}
	}
	if clientAcked >= totalOps {
		t.Fatalf("schedule never reached its kill point (checkpoints=%d)", checkpoints)
	}

	// Arm the victim: its very next device write tears and the device
	// dies — and the next write is the checkpoint's flush of the
	// victim's unflushed tail, so the shard dies mid-checkpoint.
	faulties[victim].CrashAfterBytes(1)
	if _, err := ss.Checkpoint(dir); err == nil {
		t.Fatal("checkpoint committed its manifest over a dead shard")
	}

	// Siblings keep serving: one probe key per healthy shard must accept
	// a write and read it back; the victim's probe must fail alone.
	probes := make(map[int]uint64)
	for j := uint64(10000); len(probes) < shards && j < 12000; j++ {
		sh := ss.ShardFor(key(j))
		if _, ok := probes[sh]; !ok {
			probes[sh] = j
		}
	}
	for sh, pk := range probes {
		st, perr := sess.Upsert(key(pk), u64(pk))
		if sh == victim {
			if st == OK {
				// The write may be acknowledged in memory; durability is
				// gone but in-memory serving can legitimately continue
				// until the health ladder trips. Either outcome is fine
				// for the victim — the siblings are the assertion.
				continue
			}
			continue
		}
		if st != OK {
			t.Fatalf("healthy shard %d stopped serving after sibling death: %v %v", sh, st, perr)
		}
		got, gst := readShardedU64(t, sess, pk)
		if gst != OK || got != pk {
			t.Fatalf("healthy shard %d read = (%d, %v), want (%d, OK)", sh, got, gst, pk)
		}
	}

	if _, derr := sess.CompletePendingTimeout(10 * time.Second); derr != nil {
		t.Fatalf("post-kill drain hung: %v", derr)
	}
	sess.Close()
	ss.Close()

	// Recover from the surviving media: fresh handles on the same Mems.
	rcfg := cfg
	rcfg.NewDevice = func(i int) device.Device { return mems[i] }
	r, err := RecoverSharded(rcfg, dir)
	if err != nil {
		t.Fatalf("sharded recovery after mid-checkpoint kill: %v", err)
	}
	defer r.Close()

	rs := r.StartSession()
	defer rs.Close()
	frontier, err := rs.Bind("torture-client")
	if err != nil {
		t.Fatal(err)
	}
	// The dead shard's generation never committed, so recovery must land
	// on the last manifest that did — whose serial cut is exactly the
	// client's acked frontier at that checkpoint, on every shard.
	if frontier != lastCkptAcked {
		t.Fatalf("recovered frontier %d, want last committed cut %d (checkpoints=%d)",
			frontier, lastCkptAcked, checkpoints)
	}
	for serial := frontier + 1; serial <= totalOps; serial++ {
		submit2 := func() {
			k := key(keys[serial])
			v, _, err := rs.SerialCheckKey(k, serial)
			if err != nil {
				t.Fatalf("retry serial %d: %v", serial, err)
			}
			if v != SerialApply {
				t.Fatalf("retry serial %d: verdict %v, want Apply above frontier", serial, v)
			}
			st, rerr := rs.RMW(k, u64(deltas[serial]), nil)
			if st == Pending {
				results, derr := rs.CompletePendingTimeout(10 * time.Second)
				if derr != nil || len(results) != 1 {
					t.Fatalf("retry serial %d stalled: %v", serial, derr)
				}
				st, rerr = results[0].Status, results[0].Err
			}
			if st != OK {
				t.Fatalf("retry serial %d: %v %v", serial, st, rerr)
			}
			rs.SerialCommitKey(serial, []byte("ACK"))
		}
		submit2()
	}
	rs.Unbind()
	for k2 := uint64(1); k2 <= keySpace; k2++ {
		wantV, ok := want[k2]
		got, st := readShardedU64(t, rs, k2)
		switch {
		case ok && (st != OK || got != wantV):
			t.Errorf("key %d = (%d, %v) after recovery+retry, want (%d, OK)", k2, got, st, wantV)
		case !ok && st != NotFound:
			t.Errorf("key %d = (%d, %v) after recovery+retry, want NotFound", k2, got, st)
		}
	}
}

// readShardedU64 reads key k through a sharded session, draining a
// pending completion if the read chases storage.
func readShardedU64(t *testing.T, sess *ShardedSession, k uint64) (uint64, Status) {
	t.Helper()
	out := make([]byte, 8)
	st, err := sess.Read(key(k), nil, out, nil)
	if st == Pending {
		results, derr := sess.CompletePendingTimeout(10 * time.Second)
		if derr != nil || len(results) != 1 {
			t.Fatalf("read of key %d stalled: %v (%d results)", k, derr, len(results))
		}
		st, err = results[0].Status, results[0].Err
		if results[0].Output != nil {
			copy(out, results[0].Output)
		}
	}
	if err != nil && st != Err {
		t.Fatalf("read of key %d: %v %v", k, st, err)
	}
	return binary.LittleEndian.Uint64(out), st
}

// TestCrashRecoveryWarmReadCache crashes a store whose read cache is
// deliberately hot at checkpoint time: cold keys are read twice (fill +
// hit) so their index entries point into the cache when the fuzzy index
// scan runs, some cached keys are then overwritten (invalidation), and
// the device dies on its next write. Recovery from the surviving media
// must serve every committed key correctly — a checkpoint that persisted
// a cache-tagged address, or a recovery that trusted one, would read
// garbage or lose the key's chain.
func TestCrashRecoveryWarmReadCache(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 1500
	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	dir := t.TempDir()
	cfg := Config{
		Ops: SumOps{}, PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		IndexBuckets: 1 << 10, Device: faulty,
		ReadCacheBytes: 16 << 10,
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	spill(t, s, sess, n) // key i holds u64(i+1)

	// Warm the cache: read a band of cold keys twice. The second read must
	// be a hit, proving the index entries are cache-tagged right now.
	for pass := 0; pass < 2; pass++ {
		for k := uint64(0); k < 120; k++ {
			if v, st := rcRead(t, sess, k); st != OK || v != k+1 {
				t.Fatalf("warming read of key %d = (%d, %v)", k, v, st)
			}
		}
	}
	m := s.Metrics().ReadCache
	if m.Fills == 0 || m.Hits == 0 {
		t.Fatalf("cache not warm before checkpoint: %+v", m)
	}

	// Overwrite a few cached keys so the workload also covers entries that
	// moved OFF the cache between fills and the checkpoint.
	for k := uint64(0); k < 120; k += 10 {
		if st, err := sess.Upsert(key(k), u64(k+1000)); st != OK || err != nil {
			t.Fatalf("upsert of cached key %d: %v %v", k, st, err)
		}
	}

	// Checkpoint with the cache warm: the index image must carry the
	// underlying hlog addresses, never the tagged ones.
	sess.Close()
	info, err := s.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess = s.StartSession()

	// Keep serving off the warm cache, then crash the device.
	for k := uint64(0); k < 120; k++ {
		want := k + 1
		if k%10 == 0 {
			want = k + 1000
		}
		if v, st := rcRead(t, sess, k); st != OK || v != want {
			t.Fatalf("post-checkpoint read of key %d = (%d, %v), want %d", k, v, st, want)
		}
	}
	faulty.CrashAfterBytes(1)
	sess.Upsert(key(5000), u64(1)) // may or may not ack; the device is now dead
	if _, derr := sess.CompletePendingTimeout(10 * time.Second); derr != nil {
		t.Fatalf("post-crash drain hung: %v", derr)
	}
	sess.Close()
	s.Close()

	// Recover on the surviving media and verify the committed snapshot:
	// every key readable, overwrites durable, nothing served from a stale
	// or dangling cache address.
	rcfg := cfg
	rcfg.Device = mem
	r, err := Recover(rcfg, dir)
	if err != nil {
		t.Fatalf("recovery with warm-cache checkpoint: %v", err)
	}
	defer r.Close()
	if got := r.Log().TailAddress(); got != pageUp(info.T2) {
		t.Fatalf("recovered tail = %#x, want %#x", got, pageUp(info.T2))
	}
	rs := r.StartSession()
	defer rs.Close()
	for k := uint64(0); k < n; k++ {
		want := k + 1
		if k < 120 && k%10 == 0 {
			want = k + 1000
		}
		if v, st := rcRead(t, rs, k); st != OK || v != want {
			t.Fatalf("recovered read of key %d = (%d, %v), want %d", k, v, st, want)
		}
	}
	// The recovered store's own cache must work too: re-read a cold band
	// and require fresh fills and hits.
	for pass := 0; pass < 2; pass++ {
		for k := uint64(0); k < 60; k++ {
			want := k + 1
			if k%10 == 0 {
				want = k + 1000
			}
			if v, st := rcRead(t, rs, k); st != OK || v != want {
				t.Fatalf("recovered warm read of key %d = (%d, %v)", k, v, st)
			}
		}
	}
	if rm := r.Metrics().ReadCache; rm.Fills == 0 || rm.Hits == 0 {
		t.Fatalf("recovered store's read cache inert: %+v", rm)
	}
}
