package faster

import (
	"encoding/binary"
	"sync/atomic"
	"unsafe"
)

// ValueOps supplies the user-defined read and update logic of Appendix E.
// The paper integrates these via dynamic code generation; here they are an
// interface the compiler can devirtualise, with the same contracts:
//
//   - Single* variants run with exclusive access to the value (a freshly
//     allocated record, or an immutable record in the read-only region).
//   - Concurrent* variants may race with other readers and writers of the
//     same record; the implementation is responsible for record-level
//     concurrency (atomics, a record lock, or app-level partitioning).
//
// Values are byte slices aliasing log memory. Value slices are always
// 8-byte aligned (records are 8-aligned and key regions padded), so 8-byte
// values can be manipulated with sync/atomic via AtomicU64.
type ValueOps interface {
	// SingleReader copies or computes output from an immutable value.
	SingleReader(key, value, input, output []byte)
	// ConcurrentReader is SingleReader under possible concurrent updates.
	ConcurrentReader(key, value, input, output []byte)

	// SingleWriter stores src into a freshly allocated value (upsert).
	SingleWriter(key, dst, src []byte)
	// ConcurrentWriter stores src into a live mutable value (upsert).
	// Returning false declines the in-place write (e.g. the new value
	// does not fit), and the store falls back to a read-copy-update
	// append — mirroring the bool-returning updaters of the reference
	// implementation.
	ConcurrentWriter(key, dst, src []byte) bool

	// InitialUpdater populates the value for an RMW of an absent key.
	InitialUpdater(key, value, input []byte)
	// InPlaceUpdater applies an RMW to a live mutable value. Returning
	// false declines (value must grow), forcing a copy-update.
	InPlaceUpdater(key, value, input []byte) bool
	// CopyUpdater writes the updated value into a new location based on
	// the existing (immutable) value and the input.
	CopyUpdater(key, oldValue, newValue, input []byte)

	// InitialValueLen returns the value size to allocate for an RMW
	// insert with the given input.
	InitialValueLen(key, input []byte) int
	// CopyValueLen returns the value size to allocate when copy-updating
	// oldValue with input.
	CopyValueLen(key, oldValue, input []byte) int
}

// MergeOps marks a ValueOps implementation as a CRDT (§2.2, §6.3): RMW
// updates can be computed as independent partial values ("deltas") that a
// read later merges into the final value. FASTER exploits this in the
// fuzzy region, appending delta records instead of deferring the update.
type MergeOps interface {
	ValueOps
	// Merge folds a delta value into acc (an output buffer previously
	// filled by a Reader call).
	Merge(key, delta, acc []byte)
}

// AtomicU64 views an 8-byte, 8-aligned value slice as an atomically
// addressable word. It panics on misaligned or short slices: value slices
// handed to ValueOps by this package always satisfy the contract.
func AtomicU64(value []byte) *uint64 {
	if len(value) < 8 {
		panic("faster: value shorter than 8 bytes")
	}
	p := unsafe.Pointer(&value[0])
	if uintptr(p)%8 != 0 {
		panic("faster: misaligned value")
	}
	return (*uint64)(p)
}

// ---------------------------------------------------------------------------
// Built-in operation sets. These play the role of the paper's generated
// code for the two workloads the evaluation uses: 8-byte values updated by
// a running sum (the count store / YCSB RMW variant), and opaque
// fixed-size blobs replaced blindly (YCSB upserts).
// ---------------------------------------------------------------------------

// SumOps implements the paper's running count-store example: values are
// uint64 counters, RMW adds the 8-byte input, reads copy the counter out.
// In-place updates use fetch-and-add, so it is safe under full
// concurrency, and it is a CRDT (partial sums merge by addition).
type SumOps struct{}

var _ MergeOps = SumOps{}

// SingleReader implements ValueOps.
func (SumOps) SingleReader(_, value, _, output []byte) { copy(output, value[:8]) }

// ConcurrentReader implements ValueOps using an atomic load.
func (SumOps) ConcurrentReader(_, value, _, output []byte) {
	binary.LittleEndian.PutUint64(output, atomic.LoadUint64(AtomicU64(value)))
}

// SingleWriter implements ValueOps.
func (SumOps) SingleWriter(_, dst, src []byte) { copy(dst, src[:8]) }

// ConcurrentWriter implements ValueOps using an atomic store.
func (SumOps) ConcurrentWriter(_, dst, src []byte) bool {
	atomic.StoreUint64(AtomicU64(dst), binary.LittleEndian.Uint64(src))
	return true
}

// InitialUpdater starts the counter at the input (sum over empty is input).
func (SumOps) InitialUpdater(_, value, input []byte) {
	binary.LittleEndian.PutUint64(value, binary.LittleEndian.Uint64(input))
}

// InPlaceUpdater adds input with fetch-and-add.
func (SumOps) InPlaceUpdater(_, value, input []byte) bool {
	if mutationsEnabled && mutTornWrite() {
		tornAddU64(AtomicU64(value), binary.LittleEndian.Uint64(input))
		return true
	}
	atomic.AddUint64(AtomicU64(value), binary.LittleEndian.Uint64(input))
	return true
}

// CopyUpdater writes old+input into the new value.
func (SumOps) CopyUpdater(_, oldValue, newValue, input []byte) {
	old := binary.LittleEndian.Uint64(oldValue)
	in := binary.LittleEndian.Uint64(input)
	if mutationsEnabled && mutDoubleRMW() {
		in += in // seeded bug: the update applied twice
	}
	binary.LittleEndian.PutUint64(newValue, old+in)
}

// InitialValueLen implements ValueOps.
func (SumOps) InitialValueLen(_, _ []byte) int { return 8 }

// CopyValueLen implements ValueOps.
func (SumOps) CopyValueLen(_, _, _ []byte) int { return 8 }

// Merge implements MergeOps: partial sums add. The delta may be a live
// mutable record, so it is loaded atomically.
func (SumOps) Merge(_, delta, acc []byte) {
	sum := binary.LittleEndian.Uint64(acc) + atomic.LoadUint64(AtomicU64(delta))
	binary.LittleEndian.PutUint64(acc, sum)
}

// BlobOps treats values as opaque fixed-or-variable byte blobs: upserts
// replace the whole value, RMW overwrites it with the input (a blind RMW,
// used by YCSB variants), reads copy it out. Concurrent variants copy
// 8-byte words atomically so readers never observe torn words, though a
// reader may observe a mix of two complete writes — acceptable for the
// benchmark workloads, per the paper's record-level concurrency contract.
type BlobOps struct{}

var _ ValueOps = BlobOps{}

func copyWordsAtomic(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		atomic.StoreUint64(AtomicU64(dst[i:]), binary.LittleEndian.Uint64(src[i:]))
	}
	if i < n {
		// Partial tail word. Record values are padded to 8 bytes, so
		// the containing word is addressable through the slice capacity;
		// write it atomically to stay race-free with concurrent readers
		// and writers of the same record.
		if cap(dst) >= i+8 {
			w := dst[i : i+8 : i+8]
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], atomic.LoadUint64(AtomicU64(w)))
			copy(tmp[:n-i], src[i:n])
			atomic.StoreUint64(AtomicU64(w), binary.LittleEndian.Uint64(tmp[:]))
			return
		}
		copy(dst[i:n], src[i:n]) // caller-owned buffer without padding
	}
}

func readWordsAtomic(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], atomic.LoadUint64(AtomicU64(src[i:])))
	}
	if i < n {
		if cap(src) >= i+8 {
			w := src[i : i+8 : i+8]
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], atomic.LoadUint64(AtomicU64(w)))
			copy(dst[i:n], tmp[:n-i])
			return
		}
		copy(dst[i:n], src[i:n])
	}
}

// SingleReader implements ValueOps.
func (BlobOps) SingleReader(_, value, _, output []byte) { copy(output, value) }

// ConcurrentReader implements ValueOps.
func (BlobOps) ConcurrentReader(_, value, _, output []byte) { readWordsAtomic(output, value) }

// SingleWriter implements ValueOps.
func (BlobOps) SingleWriter(_, dst, src []byte) { copy(dst, src) }

// ConcurrentWriter implements ValueOps; it declines when src does not
// fit so the store re-appends instead.
func (BlobOps) ConcurrentWriter(_, dst, src []byte) bool {
	if len(src) > len(dst) {
		return false
	}
	copyWordsAtomic(dst, src)
	return true
}

// InitialUpdater implements ValueOps (blind RMW: value := input).
func (BlobOps) InitialUpdater(_, value, input []byte) { copy(value, input) }

// InPlaceUpdater implements ValueOps; it declines when input does not fit.
func (BlobOps) InPlaceUpdater(_, value, input []byte) bool {
	if len(input) > len(value) {
		return false
	}
	copyWordsAtomic(value, input)
	return true
}

// CopyUpdater implements ValueOps.
func (BlobOps) CopyUpdater(_, _, newValue, input []byte) { copy(newValue, input) }

// InitialValueLen implements ValueOps.
func (BlobOps) InitialValueLen(_, input []byte) int { return len(input) }

// CopyValueLen implements ValueOps.
func (BlobOps) CopyValueLen(_, oldValue, input []byte) int {
	if len(input) > len(oldValue) {
		return len(input)
	}
	return len(oldValue)
}

// AppendOps implements a variable-length "append to value" RMW: each RMW
// concatenates input onto the value (capped at MaxValueLen), reads copy
// the value out, upserts replace it. Values grow, so in-place updates
// decline whenever the new bytes do not fit in the record's allocation,
// exercising the sealed-record copy-update path. Appends are associative,
// so AppendOps is a CRDT: deltas merge by concatenation (order between
// concurrent appenders is arbitrary, as CRDT semantics require).
type AppendOps struct {
	// MaxValueLen caps value growth (default 1024).
	MaxValueLen int
}

var _ MergeOps = AppendOps{}

func (a AppendOps) max() int {
	if a.MaxValueLen == 0 {
		return 1024
	}
	return a.MaxValueLen
}

func (a AppendOps) clamp(n int) int {
	if m := a.max(); n > m {
		return m
	}
	return n
}

// SingleReader implements ValueOps.
func (AppendOps) SingleReader(_, value, _, output []byte) { copy(output, value) }

// ConcurrentReader implements ValueOps. Appended bytes never change once
// written (the length only grows via sealed copies), so a plain copy of
// the immutable prefix is safe.
func (AppendOps) ConcurrentReader(_, value, _, output []byte) { copy(output, value) }

// SingleWriter implements ValueOps.
func (AppendOps) SingleWriter(_, dst, src []byte) { copy(dst, src) }

// ConcurrentWriter implements ValueOps; replacing a value with a shorter
// or equal one happens in place, longer declines.
func (AppendOps) ConcurrentWriter(_, dst, src []byte) bool {
	if len(src) > len(dst) {
		return false
	}
	copyWordsAtomic(dst, src)
	return true
}

// InitialUpdater implements ValueOps: the first append.
func (a AppendOps) InitialUpdater(_, value, input []byte) { copy(value, input) }

// InPlaceUpdater implements ValueOps; appends always grow the value, so
// in-place updates always decline and every RMW copies. (A production
// variant would reserve slack capacity; declining keeps the example
// exercising the seal path.)
func (AppendOps) InPlaceUpdater(_, _, _ []byte) bool { return false }

// CopyUpdater implements ValueOps: newValue = oldValue ++ input.
func (a AppendOps) CopyUpdater(_, oldValue, newValue, input []byte) {
	n := copy(newValue, oldValue)
	copy(newValue[n:], input)
}

// InitialValueLen implements ValueOps.
func (a AppendOps) InitialValueLen(_, input []byte) int { return a.clamp(len(input)) }

// CopyValueLen implements ValueOps.
func (a AppendOps) CopyValueLen(_, oldValue, input []byte) int {
	return a.clamp(len(oldValue) + len(input))
}

// Merge implements MergeOps: delta values concatenate onto acc, tracking
// the fill with the accumulated non-zero prefix length. The accumulator
// is zero-initialised by the reconcile machinery, so the fill boundary is
// the first zero run of 8 bytes — adequate for text-like payloads; binary
// payloads should use a framed encoding on top.
func (a AppendOps) Merge(_, delta, acc []byte) {
	fill := len(acc)
	for fill > 0 && acc[fill-1] == 0 {
		fill--
	}
	copy(acc[fill:], delta)
}
