package faster

import (
	"encoding/binary"
	"sync/atomic"
)

// VarLenOps is the operation set behind the network front-end
// (internal/server): variable-length opaque values with an
// INCRBY-flavoured RMW.
//
// Record allocations are sized by the caller, so a variable-length value
// carries its own length: every stored value is framed as
//
//	[8-byte LE payload length][payload bytes]
//
// The 8-byte header keeps the payload 8-aligned (value slices are always
// 8-aligned), which lets the counter fast path use sync/atomic. Callers
// frame with VarLenEncode before Upsert and decode reads with
// VarLenDecode.
//
// RMW treats the value as a signed 64-bit counter and the first 8 input
// bytes (LE) as a delta:
//
//   - absent key: the counter is created holding the delta;
//   - 8-byte payload: the delta is added, in place when possible
//     (full concurrency) or via copy-update when the record is sealed or
//     read-only;
//   - any other payload length: the value is not a counter; the RMW
//     resets it to a counter holding the delta. Redis would error here —
//     ValueOps has no error channel, so the front-end pre-checks the
//     type and rejects non-counter INCRBY before issuing the RMW (a
//     concurrent SET can still race the check; the reset keeps that race
//     well-defined).
//
// A 9th input byte, when present, is an overflow status channel: every
// updater invocation writes it (1 when the addition would wrap int64 —
// the counter is then left unchanged — 0 otherwise), so callers that
// need Redis's "increment or decrement would overflow" semantics pass a
// 9-byte input and inspect input[8] afterwards (Result.Input on the
// pending path). An 8-byte input keeps the historical wrapping
// behaviour. The flag is rewritten on every attempt, so a lost-CAS
// retry cannot leak a stale verdict.
//
// In-place upserts accept any new framed value that fits the existing
// allocation (header included), so shrinking values update in place and
// growing values fall back to RCU, exactly the Table 1 regime. As with
// BlobOps, concurrent access is torn only at 8-byte-word granularity; a
// reader may observe a mix of two complete writes, never a torn word.
type VarLenOps struct{}

var _ ValueOps = VarLenOps{}

// varLenHeader is the frame header size.
const varLenHeader = 8

// VarLenEncode frames payload for storage: [8-byte LE length][payload].
func VarLenEncode(payload []byte) []byte {
	buf := make([]byte, varLenHeader+len(payload))
	binary.LittleEndian.PutUint64(buf, uint64(len(payload)))
	copy(buf[varLenHeader:], payload)
	return buf
}

// VarLenAppend appends the framed form of payload to dst and returns
// the extended slice — VarLenEncode for callers that pool the backing
// storage.
func VarLenAppend(dst, payload []byte) []byte {
	var hdr [varLenHeader]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// VarLenDecode extracts the payload from a framed value previously read
// into buf (which may be longer than the frame: read output buffers are
// sized for the largest value). ok is false if the buffer is too short
// or the header is inconsistent — a truncated read of an oversized
// value.
func VarLenDecode(buf []byte) (payload []byte, ok bool) {
	if len(buf) < varLenHeader {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(buf)
	if n > uint64(len(buf)-varLenHeader) {
		return nil, false
	}
	return buf[varLenHeader : varLenHeader+n], true
}

// VarLenCounter decodes a framed counter value. ok is false when the
// value is not an 8-byte counter payload.
func VarLenCounter(buf []byte) (int64, bool) {
	p, ok := VarLenDecode(buf)
	if !ok || len(p) != 8 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(p)), true
}

// frameLen reads the frame header of a live record value atomically (an
// in-place upsert may be rewriting it concurrently).
func frameLen(value []byte) uint64 {
	return atomic.LoadUint64(AtomicU64(value))
}

// SingleReader implements ValueOps: exclusive copy of the frame.
func (VarLenOps) SingleReader(_, value, _, output []byte) { copy(output, value) }

// ConcurrentReader implements ValueOps: wordwise-atomic copy.
func (VarLenOps) ConcurrentReader(_, value, _, output []byte) { readWordsAtomic(output, value) }

// SingleWriter implements ValueOps: src is already framed.
func (VarLenOps) SingleWriter(_, dst, src []byte) { copy(dst, src) }

// ConcurrentWriter implements ValueOps: in-place when the framed src fits
// the existing allocation, declining (RCU) otherwise.
func (VarLenOps) ConcurrentWriter(_, dst, src []byte) bool {
	if len(src) > len(dst) {
		return false
	}
	copyWordsAtomic(dst, src)
	return true
}

// addOverflows reports whether old+delta wraps the int64 range.
func addOverflows(old, delta int64) bool {
	if delta > 0 {
		return old > maxInt64-delta
	}
	return old < minInt64-delta
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

// setOverflowFlag writes the overflow verdict into the 9th input byte
// when the caller provided one.
func setOverflowFlag(input []byte, overflowed bool) {
	if len(input) >= 9 {
		if overflowed {
			input[8] = 1
		} else {
			input[8] = 0
		}
	}
}

// InitialUpdater implements ValueOps: an RMW insert creates a counter
// holding the delta (a single delta cannot overflow).
func (VarLenOps) InitialUpdater(_, value, input []byte) {
	binary.LittleEndian.PutUint64(value, 8)
	copy(value[varLenHeader:], input[:8])
	setOverflowFlag(input, false)
}

// InPlaceUpdater implements ValueOps: overflow-checked add on a counter
// payload; non-counter payloads decline to the sealed copy-update path.
// With a 9-byte input an overflowing add leaves the counter unchanged
// and reports through the flag; an 8-byte input wraps.
func (VarLenOps) InPlaceUpdater(_, value, input []byte) bool {
	if len(value) < varLenHeader+8 || frameLen(value) != 8 {
		return false
	}
	delta := int64(binary.LittleEndian.Uint64(input))
	p := AtomicU64(value[varLenHeader:])
	if len(input) < 9 {
		atomic.AddUint64(p, uint64(delta))
		return true
	}
	for {
		cur := atomic.LoadUint64(p)
		if addOverflows(int64(cur), delta) {
			setOverflowFlag(input, true)
			return true // handled: counter intact, verdict delivered
		}
		if atomic.CompareAndSwapUint64(p, cur, cur+uint64(delta)) {
			setOverflowFlag(input, false)
			return true
		}
	}
}

// CopyUpdater implements ValueOps: counter += delta, or reset to the
// delta when the old value was not a counter. An overflowing add copies
// the counter unchanged and reports through the flag (9-byte input) or
// wraps (8-byte input).
func (VarLenOps) CopyUpdater(_, oldValue, newValue, input []byte) {
	delta := int64(binary.LittleEndian.Uint64(input))
	binary.LittleEndian.PutUint64(newValue, 8)
	p, ok := VarLenDecode(oldValue)
	if !ok || len(p) != 8 {
		// Non-counter value: reset to a counter holding the delta.
		binary.LittleEndian.PutUint64(newValue[varLenHeader:], uint64(delta))
		setOverflowFlag(input, false)
		return
	}
	old := int64(binary.LittleEndian.Uint64(p))
	if len(input) >= 9 && addOverflows(old, delta) {
		binary.LittleEndian.PutUint64(newValue[varLenHeader:], uint64(old))
		setOverflowFlag(input, true)
		return
	}
	binary.LittleEndian.PutUint64(newValue[varLenHeader:], uint64(old)+uint64(delta))
	setOverflowFlag(input, false)
}

// InitialValueLen implements ValueOps: header + 8-byte counter.
func (VarLenOps) InitialValueLen(_, _ []byte) int { return varLenHeader + 8 }

// CopyValueLen implements ValueOps: the updated value is always a counter.
func (VarLenOps) CopyValueLen(_, _, _ []byte) int { return varLenHeader + 8 }
