package faster

import (
	"encoding/binary"
	"sync/atomic"
)

// VarLenOps is the operation set behind the network front-end
// (internal/server): variable-length opaque values with an
// INCRBY-flavoured RMW.
//
// Record allocations are sized by the caller, so a variable-length value
// carries its own length: every stored value is framed as
//
//	[8-byte LE payload length][payload bytes]
//
// The 8-byte header keeps the payload 8-aligned (value slices are always
// 8-aligned), which lets the counter fast path use sync/atomic. Callers
// frame with VarLenEncode before Upsert and decode reads with
// VarLenDecode.
//
// RMW treats the value as a signed 64-bit counter and the 8-byte LE
// input as a delta:
//
//   - absent key: the counter is created holding the delta;
//   - 8-byte payload: the delta is added, in place when possible
//     (fetch-and-add, full concurrency) or via copy-update when the
//     record is sealed or read-only;
//   - any other payload length: the value is not a counter; the RMW
//     resets it to a counter holding the delta. Redis would error here —
//     ValueOps has no error channel, so the front-end pre-checks the
//     type and rejects non-counter INCRBY before issuing the RMW (a
//     concurrent SET can still race the check; the reset keeps that race
//     well-defined).
//
// In-place upserts accept any new framed value that fits the existing
// allocation (header included), so shrinking values update in place and
// growing values fall back to RCU, exactly the Table 1 regime. As with
// BlobOps, concurrent access is torn only at 8-byte-word granularity; a
// reader may observe a mix of two complete writes, never a torn word.
type VarLenOps struct{}

var _ ValueOps = VarLenOps{}

// varLenHeader is the frame header size.
const varLenHeader = 8

// VarLenEncode frames payload for storage: [8-byte LE length][payload].
func VarLenEncode(payload []byte) []byte {
	buf := make([]byte, varLenHeader+len(payload))
	binary.LittleEndian.PutUint64(buf, uint64(len(payload)))
	copy(buf[varLenHeader:], payload)
	return buf
}

// VarLenAppend appends the framed form of payload to dst and returns
// the extended slice — VarLenEncode for callers that pool the backing
// storage.
func VarLenAppend(dst, payload []byte) []byte {
	var hdr [varLenHeader]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// VarLenDecode extracts the payload from a framed value previously read
// into buf (which may be longer than the frame: read output buffers are
// sized for the largest value). ok is false if the buffer is too short
// or the header is inconsistent — a truncated read of an oversized
// value.
func VarLenDecode(buf []byte) (payload []byte, ok bool) {
	if len(buf) < varLenHeader {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(buf)
	if n > uint64(len(buf)-varLenHeader) {
		return nil, false
	}
	return buf[varLenHeader : varLenHeader+n], true
}

// VarLenCounter decodes a framed counter value. ok is false when the
// value is not an 8-byte counter payload.
func VarLenCounter(buf []byte) (int64, bool) {
	p, ok := VarLenDecode(buf)
	if !ok || len(p) != 8 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(p)), true
}

// frameLen reads the frame header of a live record value atomically (an
// in-place upsert may be rewriting it concurrently).
func frameLen(value []byte) uint64 {
	return atomic.LoadUint64(AtomicU64(value))
}

// SingleReader implements ValueOps: exclusive copy of the frame.
func (VarLenOps) SingleReader(_, value, _, output []byte) { copy(output, value) }

// ConcurrentReader implements ValueOps: wordwise-atomic copy.
func (VarLenOps) ConcurrentReader(_, value, _, output []byte) { readWordsAtomic(output, value) }

// SingleWriter implements ValueOps: src is already framed.
func (VarLenOps) SingleWriter(_, dst, src []byte) { copy(dst, src) }

// ConcurrentWriter implements ValueOps: in-place when the framed src fits
// the existing allocation, declining (RCU) otherwise.
func (VarLenOps) ConcurrentWriter(_, dst, src []byte) bool {
	if len(src) > len(dst) {
		return false
	}
	copyWordsAtomic(dst, src)
	return true
}

// InitialUpdater implements ValueOps: an RMW insert creates a counter
// holding the delta.
func (VarLenOps) InitialUpdater(_, value, input []byte) {
	binary.LittleEndian.PutUint64(value, 8)
	copy(value[varLenHeader:], input[:8])
}

// InPlaceUpdater implements ValueOps: fetch-and-add on a counter payload;
// non-counter payloads decline to the sealed copy-update path.
func (VarLenOps) InPlaceUpdater(_, value, input []byte) bool {
	if len(value) < varLenHeader+8 || frameLen(value) != 8 {
		return false
	}
	atomic.AddUint64(AtomicU64(value[varLenHeader:]), binary.LittleEndian.Uint64(input))
	return true
}

// CopyUpdater implements ValueOps: counter += delta, or reset to the
// delta when the old value was not a counter.
func (VarLenOps) CopyUpdater(_, oldValue, newValue, input []byte) {
	delta := binary.LittleEndian.Uint64(input)
	var old uint64
	if p, ok := VarLenDecode(oldValue); ok && len(p) == 8 {
		old = binary.LittleEndian.Uint64(p)
	}
	binary.LittleEndian.PutUint64(newValue, 8)
	binary.LittleEndian.PutUint64(newValue[varLenHeader:], old+delta)
}

// InitialValueLen implements ValueOps: header + 8-byte counter.
func (VarLenOps) InitialValueLen(_, _ []byte) int { return varLenHeader + 8 }

// CopyValueLen implements ValueOps: the updated value is always a counter.
func (VarLenOps) CopyValueLen(_, _, _ []byte) int { return varLenHeader + 8 }
