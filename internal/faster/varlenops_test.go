package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
)

func varLenStore(t *testing.T) *Store {
	t.Helper()
	dev := device.NewMem(device.MemConfig{})
	s, err := Open(Config{
		Ops: VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 14, BufferPages: 16, MutableFraction: 0.75,
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); dev.Close() })
	return s
}

func delta(d int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(d))
	return b
}

func TestVarLenEncodeDecode(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte("hello world"), bytes.Repeat([]byte{7}, 100)} {
		buf := VarLenEncode(payload)
		// Decode from an oversized buffer, as reads do.
		big := make([]byte, len(buf)+32)
		copy(big, buf)
		got, ok := VarLenDecode(big)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("decode(%q) = %q, %v", payload, got, ok)
		}
	}
	// Truncated / inconsistent frames must fail closed.
	if _, ok := VarLenDecode([]byte{1, 2, 3}); ok {
		t.Fatal("short buffer decoded")
	}
	if _, ok := VarLenDecode(VarLenEncode(make([]byte, 64))[:32]); ok {
		t.Fatal("truncated frame decoded")
	}
}

func TestVarLenUpsertReadDelete(t *testing.T) {
	s := varLenStore(t)
	sess := s.StartSession()
	defer sess.Close()
	out := make([]byte, varLenHeader+256)

	for i, val := range []string{"short", "a considerably longer value", ""} {
		key := []byte(fmt.Sprintf("k%d", i))
		if st, err := sess.Upsert(key, VarLenEncode([]byte(val))); st != OK || err != nil {
			t.Fatalf("upsert: %v %v", st, err)
		}
		st, err := sess.Read(key, nil, out, nil)
		if st != OK || err != nil {
			t.Fatalf("read: %v %v", st, err)
		}
		got, ok := VarLenDecode(out)
		if !ok || string(got) != val {
			t.Fatalf("read %q = %q (%v)", key, got, ok)
		}
	}

	// Overwrite with a shorter value (in place) and a longer one (RCU).
	key := []byte("k0")
	for _, val := range []string{"s", "much much much longer than before, forcing an RCU append"} {
		if st, err := sess.Upsert(key, VarLenEncode([]byte(val))); st != OK || err != nil {
			t.Fatalf("overwrite: %v %v", st, err)
		}
		if st, _ := sess.Read(key, nil, out, nil); st != OK {
			t.Fatalf("read after overwrite: %v", st)
		}
		if got, ok := VarLenDecode(out); !ok || string(got) != val {
			t.Fatalf("overwrite read = %q (%v)", got, ok)
		}
	}

	if st, err := sess.Delete(key); st != OK || err != nil {
		t.Fatalf("delete: %v %v", st, err)
	}
	if st, _ := sess.Read(key, nil, out, nil); st != NotFound {
		t.Fatalf("read after delete = %v, want NotFound", st)
	}
}

func TestVarLenCounterRMW(t *testing.T) {
	s := varLenStore(t)
	sess := s.StartSession()
	defer sess.Close()
	key := []byte("ctr")
	out := make([]byte, varLenHeader+8)

	// Insert via RMW, then accumulate.
	for i, d := range []int64{5, 10, -3} {
		if st, err := sess.RMW(key, delta(d), nil); st != OK || err != nil {
			t.Fatalf("rmw %d: %v %v", i, st, err)
		}
	}
	if st, _ := sess.Read(key, nil, out, nil); st != OK {
		t.Fatal("read counter")
	}
	if n, ok := VarLenCounter(out); !ok || n != 12 {
		t.Fatalf("counter = %d (%v), want 12", n, ok)
	}

	// RMW over a non-counter value resets it to the delta.
	if st, _ := sess.Upsert(key, VarLenEncode([]byte("not a number"))); st != OK {
		t.Fatal("upsert blob")
	}
	if n, ok := VarLenCounter(VarLenEncode([]byte("not a number"))); ok {
		t.Fatalf("non-counter decoded as %d", n)
	}
	if st, err := sess.RMW(key, delta(7), nil); st != OK || err != nil {
		t.Fatalf("rmw over blob: %v %v", st, err)
	}
	if st, _ := sess.Read(key, nil, out, nil); st != OK {
		t.Fatal("read reset counter")
	}
	if n, ok := VarLenCounter(out); !ok || n != 7 {
		t.Fatalf("reset counter = %d (%v), want 7", n, ok)
	}
}

func TestVarLenConcurrentCounters(t *testing.T) {
	s := varLenStore(t)
	const (
		workers = 8
		perW    = 2000
		keys    = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.Close()
			for i := 0; i < perW; i++ {
				key := []byte(fmt.Sprintf("c%d", i%keys))
				if st, err := sess.RMW(key, delta(1), nil); st == Pending {
					sess.CompletePending(true)
				} else if st != OK || err != nil {
					panic(fmt.Sprintf("rmw: %v %v", st, err))
				}
			}
		}(w)
	}
	wg.Wait()
	sess := s.StartSession()
	defer sess.Close()
	out := make([]byte, varLenHeader+8)
	var total int64
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("c%d", i))
		st, err := sess.Read(key, nil, out, nil)
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st, err = r.Status, r.Err
			}
		}
		if st != OK || err != nil {
			t.Fatalf("read %q: %v %v", key, st, err)
		}
		n, ok := VarLenCounter(out)
		if !ok {
			t.Fatalf("key %q is not a counter", key)
		}
		total += n
	}
	if total != workers*perW {
		t.Fatalf("total = %d, want %d", total, workers*perW)
	}
}
