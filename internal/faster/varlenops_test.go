package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
)

func varLenStore(t *testing.T) *Store {
	t.Helper()
	dev := device.NewMem(device.MemConfig{})
	s, err := Open(Config{
		Ops: VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 14, BufferPages: 16, MutableFraction: 0.75,
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); dev.Close() })
	return s
}

func delta(d int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(d))
	return b
}

func TestVarLenEncodeDecode(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), []byte("hello world"), bytes.Repeat([]byte{7}, 100)} {
		buf := VarLenEncode(payload)
		// Decode from an oversized buffer, as reads do.
		big := make([]byte, len(buf)+32)
		copy(big, buf)
		got, ok := VarLenDecode(big)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("decode(%q) = %q, %v", payload, got, ok)
		}
	}
	// Truncated / inconsistent frames must fail closed.
	if _, ok := VarLenDecode([]byte{1, 2, 3}); ok {
		t.Fatal("short buffer decoded")
	}
	if _, ok := VarLenDecode(VarLenEncode(make([]byte, 64))[:32]); ok {
		t.Fatal("truncated frame decoded")
	}
}

func TestVarLenUpsertReadDelete(t *testing.T) {
	s := varLenStore(t)
	sess := s.StartSession()
	defer sess.Close()
	out := make([]byte, varLenHeader+256)

	for i, val := range []string{"short", "a considerably longer value", ""} {
		key := []byte(fmt.Sprintf("k%d", i))
		if st, err := sess.Upsert(key, VarLenEncode([]byte(val))); st != OK || err != nil {
			t.Fatalf("upsert: %v %v", st, err)
		}
		st, err := sess.Read(key, nil, out, nil)
		if st != OK || err != nil {
			t.Fatalf("read: %v %v", st, err)
		}
		got, ok := VarLenDecode(out)
		if !ok || string(got) != val {
			t.Fatalf("read %q = %q (%v)", key, got, ok)
		}
	}

	// Overwrite with a shorter value (in place) and a longer one (RCU).
	key := []byte("k0")
	for _, val := range []string{"s", "much much much longer than before, forcing an RCU append"} {
		if st, err := sess.Upsert(key, VarLenEncode([]byte(val))); st != OK || err != nil {
			t.Fatalf("overwrite: %v %v", st, err)
		}
		if st, _ := sess.Read(key, nil, out, nil); st != OK {
			t.Fatalf("read after overwrite: %v", st)
		}
		if got, ok := VarLenDecode(out); !ok || string(got) != val {
			t.Fatalf("overwrite read = %q (%v)", got, ok)
		}
	}

	if st, err := sess.Delete(key); st != OK || err != nil {
		t.Fatalf("delete: %v %v", st, err)
	}
	if st, _ := sess.Read(key, nil, out, nil); st != NotFound {
		t.Fatalf("read after delete = %v, want NotFound", st)
	}
}

func TestVarLenCounterRMW(t *testing.T) {
	s := varLenStore(t)
	sess := s.StartSession()
	defer sess.Close()
	key := []byte("ctr")
	out := make([]byte, varLenHeader+8)

	// Insert via RMW, then accumulate.
	for i, d := range []int64{5, 10, -3} {
		if st, err := sess.RMW(key, delta(d), nil); st != OK || err != nil {
			t.Fatalf("rmw %d: %v %v", i, st, err)
		}
	}
	if st, _ := sess.Read(key, nil, out, nil); st != OK {
		t.Fatal("read counter")
	}
	if n, ok := VarLenCounter(out); !ok || n != 12 {
		t.Fatalf("counter = %d (%v), want 12", n, ok)
	}

	// RMW over a non-counter value resets it to the delta.
	if st, _ := sess.Upsert(key, VarLenEncode([]byte("not a number"))); st != OK {
		t.Fatal("upsert blob")
	}
	if n, ok := VarLenCounter(VarLenEncode([]byte("not a number"))); ok {
		t.Fatalf("non-counter decoded as %d", n)
	}
	if st, err := sess.RMW(key, delta(7), nil); st != OK || err != nil {
		t.Fatalf("rmw over blob: %v %v", st, err)
	}
	if st, _ := sess.Read(key, nil, out, nil); st != OK {
		t.Fatal("read reset counter")
	}
	if n, ok := VarLenCounter(out); !ok || n != 7 {
		t.Fatalf("reset counter = %d (%v), want 7", n, ok)
	}
}

// delta9 frames a delta with the 9th overflow-status byte appended,
// pre-poisoned so a test catches paths that fail to write the verdict.
func delta9(d int64) []byte {
	b := make([]byte, 9)
	binary.LittleEndian.PutUint64(b, uint64(d))
	b[8] = 0xAA
	return b
}

func TestVarLenCounterOverflow(t *testing.T) {
	s := varLenStore(t)
	sess := s.StartSession()
	defer sess.Close()
	out := make([]byte, varLenHeader+8)
	readCounter := func(key []byte) int64 {
		t.Helper()
		if st, err := sess.Read(key, nil, out, nil); st != OK || err != nil {
			t.Fatalf("read %q: %v %v", key, st, err)
		}
		n, ok := VarLenCounter(out)
		if !ok {
			t.Fatalf("key %q is not a counter", key)
		}
		return n
	}

	// Insert through the 9-byte path: a single delta cannot overflow and
	// the poisoned flag must come back cleared.
	key := []byte("ovf")
	in := delta9(maxInt64 - 1)
	if st, err := sess.RMW(key, in, nil); st != OK || err != nil {
		t.Fatalf("initial rmw: %v %v", st, err)
	}
	if in[8] != 0 {
		t.Fatalf("initial rmw left flag %d, want 0", in[8])
	}

	// +1 still fits; +2 would wrap: the counter must hold and the flag
	// must report.
	in = delta9(1)
	if st, err := sess.RMW(key, in, nil); st != OK || err != nil || in[8] != 0 {
		t.Fatalf("+1 at MaxInt64-1: %v %v flag=%d", st, err, in[8])
	}
	in = delta9(2)
	if st, err := sess.RMW(key, in, nil); st != OK || err != nil {
		t.Fatalf("overflowing rmw: %v %v", st, err)
	}
	if in[8] != 1 {
		t.Fatalf("overflowing rmw flag = %d, want 1", in[8])
	}
	if got := readCounter(key); got != maxInt64 {
		t.Fatalf("counter after rejected overflow = %d, want MaxInt64", got)
	}

	// The sealed/read-only copy-update path must enforce the same bound.
	s.Log().ShiftReadOnlyToTail()
	sess.Refresh()
	in = delta9(1)
	if st, err := sess.RMW(key, in, nil); st != OK || err != nil {
		t.Fatalf("copy-update overflow rmw: %v %v", st, err)
	}
	if in[8] != 1 {
		t.Fatalf("copy-update overflow flag = %d, want 1", in[8])
	}
	if got := readCounter(key); got != maxInt64 {
		t.Fatalf("counter after copy-update overflow = %d, want MaxInt64", got)
	}
	// A fitting decrement clears the flag and moves the counter again.
	in = delta9(-10)
	if st, err := sess.RMW(key, in, nil); st != OK || err != nil || in[8] != 0 {
		t.Fatalf("decrement after overflow: %v %v flag=%d", st, err, in[8])
	}
	if got := readCounter(key); got != maxInt64-10 {
		t.Fatalf("counter after decrement = %d, want MaxInt64-10", got)
	}

	// Negative direction: MinInt64 - 1 must be rejected identically.
	nkey := []byte("ovf-neg")
	if st, err := sess.RMW(nkey, delta9(minInt64), nil); st != OK || err != nil {
		t.Fatalf("seed MinInt64: %v %v", st, err)
	}
	in = delta9(-1)
	if st, err := sess.RMW(nkey, in, nil); st != OK || err != nil {
		t.Fatalf("underflow rmw: %v %v", st, err)
	}
	if in[8] != 1 {
		t.Fatalf("underflow flag = %d, want 1", in[8])
	}
	if got := readCounter(nkey); got != minInt64 {
		t.Fatalf("counter after rejected underflow = %d, want MinInt64", got)
	}

	// Legacy 8-byte inputs keep the historical wrapping behaviour.
	wkey := []byte("wrap")
	if st, err := sess.RMW(wkey, delta(maxInt64), nil); st != OK || err != nil {
		t.Fatalf("seed wrap key: %v %v", st, err)
	}
	if st, err := sess.RMW(wkey, delta(1), nil); st != OK || err != nil {
		t.Fatalf("wrapping rmw: %v %v", st, err)
	}
	if got := readCounter(wkey); got != minInt64 {
		t.Fatalf("8-byte input did not wrap: %d, want MinInt64", got)
	}

	// A 9-byte RMW over a non-counter value resets it (never "overflows").
	bkey := []byte("blob")
	if st, _ := sess.Upsert(bkey, VarLenEncode([]byte("not a number"))); st != OK {
		t.Fatal("upsert blob")
	}
	s.Log().ShiftReadOnlyToTail() // force the copy-update reset path
	sess.Refresh()
	in = delta9(41)
	if st, err := sess.RMW(bkey, in, nil); st != OK || err != nil || in[8] != 0 {
		t.Fatalf("reset rmw: %v %v flag=%d", st, err, in[8])
	}
	if got := readCounter(bkey); got != 41 {
		t.Fatalf("reset counter = %d, want 41", got)
	}
}

func TestVarLenConcurrentCounters(t *testing.T) {
	s := varLenStore(t)
	const (
		workers = 8
		perW    = 2000
		keys    = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.Close()
			for i := 0; i < perW; i++ {
				key := []byte(fmt.Sprintf("c%d", i%keys))
				if st, err := sess.RMW(key, delta(1), nil); st == Pending {
					sess.CompletePending(true)
				} else if st != OK || err != nil {
					panic(fmt.Sprintf("rmw: %v %v", st, err))
				}
			}
		}(w)
	}
	wg.Wait()
	sess := s.StartSession()
	defer sess.Close()
	out := make([]byte, varLenHeader+8)
	var total int64
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("c%d", i))
		st, err := sess.Read(key, nil, out, nil)
		if st == Pending {
			for _, r := range sess.CompletePending(true) {
				st, err = r.Status, r.Err
			}
		}
		if st != OK || err != nil {
			t.Fatalf("read %q: %v %v", key, st, err)
		}
		n, ok := VarLenCounter(out)
		if !ok {
			t.Fatalf("key %q is not a counter", key)
		}
		total += n
	}
	if total != workers*perW {
		t.Fatalf("total = %d, want %d", total, workers*perW)
	}
}
