package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/testutil"
)

// TestWrapConvoyRegression drives many concurrent writers through a
// small wrapping buffer (4 KiB pages, so a page turns every ~128
// records) and requires steady progress.
//
// Regression: each page turn is gated on two epoch trigger round-trips
// (flush the read-only span, then close the evicted frame), and each
// round-trip completes only after every concurrent allocator has
// published a fresh epoch. Allocate's tail-wedge spin used to refresh
// its guard only every 64 spins and busy-Gosched in between, so with
// more writers than cores the spinners starved the page opener of CPU
// while pinning old epochs: throughput collapsed ~1000x (a few page
// turns per second) once writer count exceeded GOMAXPROCS' ability to
// schedule everyone promptly. The spin now refreshes on every
// iteration and backs off to sleeps, keeping page turnover at device
// speed regardless of writer count.
func TestWrapConvoyRegression(t *testing.T) {
	for _, g := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("writers=%d", g), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			dev := device.NewMem(device.MemConfig{Workers: 8})
			defer dev.Close()
			s, err := Open(Config{
				Ops: SumOps{}, IndexBuckets: 1 << 15,
				PageBits: 12, BufferPages: 128,
				Device: dev, MaxSessions: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			const perG = 60000
			var wg sync.WaitGroup
			done := make(chan struct{})
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess := s.StartSession()
					defer sess.Close()
					key := make([]byte, 8)
					val := make([]byte, 8)
					binary.LittleEndian.PutUint64(val, 1)
					for i := 0; i < perG; i++ {
						binary.LittleEndian.PutUint64(key, uint64(w*perG+i)|1)
						if st, err := sess.Upsert(key, val); st != OK {
							t.Error(st, err)
							return
						}
					}
				}(w)
			}
			go func() { wg.Wait(); close(done) }()
			// Each subtest finishes in well under a second when page
			// turnover is healthy; 60s is pure safety margin for slow
			// or race-instrumented hosts. The convoy bug blew through
			// any timeout (estimated minutes at 16 writers).
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				lg := s.Log()
				em := s.Metrics().Epoch
				t.Fatalf("writers stalled: tail=%#x head=%#x ro=%#x safeRO=%#x flushed=%#x epoch{cur=%d safe=%d pending=%d registered=%d} locals=%v",
					lg.TailAddress(), lg.HeadAddress(), lg.ReadOnlyAddress(), lg.SafeReadOnlyAddress(),
					lg.FlushedUntilAddress(),
					em.CurrentEpoch, em.SafeEpoch, em.DrainListDepth, em.Registered,
					s.Epoch().LocalEpochs())
			}
		})
	}
}
