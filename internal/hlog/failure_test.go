package hlog

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/epoch"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// faultyLog builds a hybrid log over a Faulty(Mem) device with a small,
// fast retry policy.
func faultyLog(t *testing.T, policy retry.Policy) (*Log, *epoch.Manager, *device.Faulty, *writeFailureRecorder) {
	t.Helper()
	em := epoch.New(64)
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	rec := &writeFailureRecorder{}
	l, err := New(Config{
		PageBits:        12,
		BufferPages:     4,
		MutableFraction: 0.5,
		Mode:            ModeHybrid,
		Device:          faulty,
		Epoch:           em,
		Retry:           policy,
		OnFlushRetry:    func(int, error) { rec.retries.Add(1) },
		OnWriteFailure:  func(err error) { rec.record(err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); mem.Close() })
	return l, em, faulty, rec
}

type writeFailureRecorder struct {
	retries atomic.Int64
	calls   atomic.Int64
	err     atomic.Pointer[error]
}

func (r *writeFailureRecorder) record(err error) {
	r.calls.Add(1)
	r.err.Store(&err)
}

// fillPages allocates and fills n pages' worth of records, driving
// read-only shifts and flushes.
func fillPages(t *testing.T, l *Log, em *epoch.Manager, n int) {
	t.Helper()
	g := em.Acquire()
	defer g.Release()
	perPage := int(l.PageSize()) / 64
	for i := 0; i < n*perPage; i++ {
		if _, err := l.Allocate(64, g); err != nil {
			return // poisoned mid-fill is fine for these tests
		}
		g.Refresh()
		em.Drain()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	testutil.WaitUntil(t, 5*time.Second, cond, "%s", what)
}

func TestPermanentWriteFailurePoisonsWithoutRetrying(t *testing.T) {
	l, em, faulty, rec := faultyLog(t, retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond})
	faulty.BreakPermanently()
	fillPages(t, l, em, 3)

	waitFor(t, "poison", l.Poisoned)
	if err := l.WriteFailure(); !errors.Is(err, ErrPoisoned) || !errors.Is(err, device.ErrInjected) {
		t.Fatalf("WriteFailure = %v, want ErrPoisoned wrapping the device cause", err)
	}
	// Permanent classification must short-circuit the backoff ladder: the
	// budget allows 8 attempts but none of them should have been retries.
	if n := rec.retries.Load(); n != 0 {
		t.Fatalf("permanent failure was retried %d times", n)
	}
	if rec.calls.Load() == 0 {
		t.Fatal("OnWriteFailure never fired")
	}

	// Allocation fails fast instead of hanging on an unevictable frame.
	g := em.Acquire()
	defer g.Release()
	done := make(chan error, 1)
	go func() {
		for {
			if _, err := l.Allocate(64, g); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoisoned) {
			t.Fatalf("Allocate after poison = %v, want ErrPoisoned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Allocate hung on a poisoned log")
	}

	// WaitUntilFlushed surfaces the poison instead of spinning forever.
	if err := l.WaitUntilFlushed(l.TailAddress()); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("WaitUntilFlushed = %v, want ErrPoisoned", err)
	}
}

func TestTransientFailuresExhaustBudgetThenPoison(t *testing.T) {
	const budget = 3
	l, em, faulty, rec := faultyLog(t, retry.Policy{MaxAttempts: budget, BaseDelay: 100 * time.Microsecond})
	faulty.FailEveryNthWrite(1) // every write fails, transiently
	fillPages(t, l, em, 3)

	waitFor(t, "poison after budget", l.Poisoned)
	var ex *retry.ExhaustedError
	if err := l.WriteFailure(); !errors.As(err, &ex) {
		t.Fatalf("WriteFailure = %v, want ExhaustedError", err)
	} else if ex.Attempts != budget {
		t.Fatalf("gave up after %d attempts, want %d", ex.Attempts, budget)
	}
	if rec.retries.Load() == 0 {
		t.Fatal("transient failures were never retried")
	}

	// The acceptance bar: no busy-loop — once poisoned, the retry counter
	// stops growing.
	m1 := l.Metrics()
	time.Sleep(50 * time.Millisecond)
	m2 := l.Metrics()
	if m2.FlushRetries != m1.FlushRetries {
		t.Fatalf("flush retries still growing after poison: %d -> %d", m1.FlushRetries, m2.FlushRetries)
	}
	if !m2.Poisoned || m2.FlushFailures == 0 {
		t.Fatalf("metrics: poisoned=%v failures=%d", m2.Poisoned, m2.FlushFailures)
	}
}

func TestTransientFaultsHealWithinBudget(t *testing.T) {
	l, em, faulty, _ := faultyLog(t, retry.Policy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, Multiplier: 2})
	faulty.FailEveryNthWrite(2) // every other write fails; the retry lands on success
	fillPages(t, l, em, 6)

	waitFor(t, "flush progress under faults", func() bool { return l.FlushedUntilAddress() > 0 })
	if l.Poisoned() {
		t.Fatalf("alternating transient faults poisoned the log: %v", l.WriteFailure())
	}
	if _, w := faulty.InjectedFaults(); w == 0 {
		t.Fatal("no write faults injected; test exercised nothing")
	}
}

func TestCloseCancelsOutstandingRetryTimers(t *testing.T) {
	em := epoch.New(64)
	mem := device.NewMem(device.MemConfig{})
	faulty := device.NewFaulty(mem)
	l, err := New(Config{
		PageBits: 12, BufferPages: 4, MutableFraction: 0.5,
		Mode: ModeHybrid, Device: faulty, Epoch: em,
		// Long backoff: timers are guaranteed still pending at Close.
		Retry: retry.Policy{MaxAttempts: 1000, BaseDelay: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	faulty.FailEveryNthWrite(1)
	fillPages(t, l, em, 3)
	waitFor(t, "a pending retry timer", func() bool { return l.retryTimerCount() > 0 })

	retriesBefore := l.Metrics().FlushRetries
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := l.retryTimerCount(); n != 0 {
		t.Fatalf("%d retry timers survived Close", n)
	}
	// Nothing may fire after Close: the pre-hardening code leaked a
	// 1ms AfterFunc chain that kept re-arming against the closed log.
	time.Sleep(20 * time.Millisecond)
	if got := l.Metrics().FlushRetries; got != retriesBefore {
		t.Fatalf("flush retries advanced after Close: %d -> %d", retriesBefore, got)
	}
	if l.retryTimerCount() != 0 {
		t.Fatal("retry timer re-armed after Close")
	}
}
