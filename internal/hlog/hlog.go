// Package hlog implements the HybridLog record allocator from Sections 5
// and 6 of the FASTER paper (SIGMOD 2018), together with its two
// degenerate configurations: the pure in-memory allocator of Section 4 and
// the append-only log allocator of Section 5.
//
// The log defines a 48-bit global logical address space spanning main
// memory and secondary storage. The in-memory tail portion lives in a
// bounded circular buffer of page frames. Four monotone address markers
// partition the space (Fig 5 and Fig 7 of the paper):
//
//	begin ≤ head ≤ safeReadOnly ≤ readOnly ≤ tail
//
//	[begin, head)         stable region, on the device only
//	[head, safeReadOnly)  read-only region, in memory, immutable
//	[safeReadOnly, readOnly) fuzzy region (§6.2–6.3)
//	[readOnly, tail)      mutable region, updated in place
//
// Page frames are allocated as []uint64 arenas so that every 8-byte word
// can be manipulated with sync/atomic; records never span pages and are
// 8-byte aligned. Flushing and eviction are coordinated latch-free with
// epoch trigger actions, exactly as in Algorithm 1 of the paper.
package hlog

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/device"
	"repro/internal/epoch"
	"repro/internal/metrics"
	"repro/internal/retry"
)

// Address is a 48-bit logical address into the log.
type Address = uint64

// InvalidAddress is the zero address; no record is ever allocated there.
const InvalidAddress Address = 0

// FirstValidAddress is where allocation starts: the first 64 bytes of the
// address space are reserved so that 0 can mean "empty" in index entries.
const FirstValidAddress Address = 64

// Mode selects which of the paper's three allocators this log behaves as.
type Mode int

const (
	// ModeHybrid is the HybridLog of Section 6: an in-place-updatable
	// mutable region, a read-only region, and a stable region on storage.
	ModeHybrid Mode = iota
	// ModeAppendOnly is the log-structured allocator of Section 5: the
	// read-only offset tracks the tail, so every update is a read-copy-
	// update append.
	ModeAppendOnly
	// ModeInMemory is the allocator of Section 4: frames grow without
	// bound, nothing is ever flushed or evicted, and the entire log is
	// mutable.
	ModeInMemory
)

func (m Mode) String() string {
	switch m {
	case ModeHybrid:
		return "hybrid"
	case ModeAppendOnly:
		return "append-only"
	case ModeInMemory:
		return "in-memory"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config configures a Log.
type Config struct {
	// PageBits is F: pages are 1<<F bytes. Must be in [9, 30].
	PageBits uint
	// BufferPages is the number of in-memory page frames (power of two).
	// Ignored by ModeInMemory.
	BufferPages int
	// MutableFraction is the fraction of the in-memory buffer kept as the
	// in-place-updatable (mutable) region; the paper recommends 0.9
	// (§6.4). Forced to 0 for ModeAppendOnly and 1 for ModeInMemory.
	MutableFraction float64
	// Mode selects the allocator behaviour.
	Mode Mode
	// Device receives flushed pages and serves record reads. ModeInMemory
	// may leave it nil (a Null device is substituted).
	Device device.Device
	// Epoch is the shared epoch manager. Required.
	Epoch *epoch.Manager
	// MaxInMemoryPages bounds the growable frame table for ModeInMemory
	// (default 1<<20 pages).
	MaxInMemoryPages int

	// Retry bounds the flush-write retry loop. The zero value selects
	// retry.DefaultWrite(). Transient flush failures are retried with
	// backoff up to the attempt budget; a Permanent classification or an
	// exhausted budget poisons the log tail (see ErrPoisoned).
	Retry retry.Policy
	// Classify maps device errors to retry classes; defaults to the
	// device's own taxonomy (device.ClassifierFor).
	Classify retry.Classifier
	// OnFlushRetry, if set, is observed on every retried flush write
	// (attempt is the number of failures so far). Called from I/O
	// callback goroutines; must not block.
	OnFlushRetry func(attempt int, err error)
	// OnWriteFailure, if set, is called exactly once when the flush path
	// gives up and poisons the log tail. Called from an I/O callback
	// goroutine; must not block.
	OnWriteFailure func(err error)
}

// frame flush status values.
const (
	frameClosed uint32 = iota // frame free for (re)use
	frameOpen                 // frame holds a live page
)

// frame is one slot of the circular buffer.
type frame struct {
	words []uint64 // page content; fixed after init
	bytes []byte   // unsafe byte view of words

	status atomic.Uint32 // frameClosed / frameOpen
}

func newFrame(pageSize int) *frame {
	f := &frame{words: make([]uint64, pageSize/8)}
	f.bytes = unsafe.Slice((*byte)(unsafe.Pointer(&f.words[0])), pageSize)
	return f
}

func (f *frame) zero() { clear(f.words) }

// cacheLineBytes is the assumed cache line size, matching the epoch
// package; the padding in Log isolates the allocator's write-hot tail
// word from the per-operation marker loads.
const cacheLineBytes = 64

// Log is the HybridLog allocator.
type Log struct {
	cfg       Config
	pageBits  uint
	pageSize  uint64
	frameMask uint64
	roLag     uint64 // bytes between readOnly target and tail page start
	headLag   uint64 // bytes of buffer capacity

	em  *epoch.Manager
	dev device.Device

	// Packed tail word: high 32 bits page number, low 32 bits offset
	// within the page. See Allocate. Every allocation writes this word,
	// so it gets a cache line to itself: the fields before it are
	// read-only after Open, and the marker words after it are loaded on
	// every operation — sharing a line would put the allocator's store
	// traffic on the read hot path of every session.
	_        [cacheLineBytes - 8]byte
	tailWord atomic.Uint64
	_        [cacheLineBytes - 8]byte

	head       atomic.Uint64 // lowest address resident in memory
	readOnly   atomic.Uint64 // mutable/read-only boundary target
	safeRO     atomic.Uint64 // read-only boundary seen by all threads
	begin      atomic.Uint64 // log truncation point (GC, Appendix C)
	flushIssue atomic.Uint64 // flushes issued up to this address
	flushed    watermark     // contiguous flush completion watermark

	frames    []*frame                // circular buffer (hybrid/append-only)
	memFrames []atomic.Pointer[frame] // growable table (in-memory mode)

	classify retry.Classifier

	// failure is set once when the flush path exhausts its retry budget
	// (or hits a Permanent error): the log tail is poisoned. Allocation
	// and flush waits fail fast instead of hanging; already-flushed data
	// and the resident region stay readable.
	failure atomic.Pointer[logFailure]

	// Outstanding flush-retry timers, cancelled on Close so a dead device
	// cannot keep firing retries into a closed log.
	retryMu     sync.Mutex
	retryTimers map[*time.Timer]struct{}

	// Truncation state. truncSafe is the highest begin value that has been
	// published under an epoch bump + drain: every thread has observed
	// begin at that level, so no new read below it can be issued. truncMu
	// serializes device truncates and truncDone is the monotone device
	// watermark, so two concurrent truncations can never reach the device
	// out of order (a truncate-to-100 landing after a truncate-to-200
	// would resurrect the freed range).
	truncMu   sync.Mutex
	truncSafe atomic.Uint64
	truncDone atomic.Uint64

	mx struct {
		flushesIssued  metrics.Counter   // page-granular flush writes issued
		flushRetries   metrics.Counter   // failed flush writes re-issued
		flushFailures  metrics.Counter   // flush spans abandoned (poisoned)
		flushedBytes   metrics.Counter   // bytes durably flushed
		flushLatency   metrics.Histogram // write issue -> durable callback
		evictedPages   metrics.Counter   // frames closed by head advances
		roShifts       metrics.Counter   // read-only offset advances (§6.2)
		headShifts     metrics.Counter   // head offset advances (eviction)
		beginShifts    metrics.Counter   // begin address advances (GC)
		truncations    metrics.Counter   // device truncates applied
		truncatedBytes metrics.Counter   // bytes freed on the device
		frameWait      metrics.Histogram // openPage waits for an evictable frame
		tailContention metrics.Histogram // Allocate spins behind a page-opener
		flushWait      metrics.Histogram // WaitUntilFlushed stall time
	}

	closed atomic.Bool
}

// logFailure records the first unrecoverable flush error.
type logFailure struct{ err error }

// debugTrap reports whether internal invariant traps are enabled (the
// process-wide FASTER_DEBUG_ASSERT switch shared with the faster layer).
func debugTrap() bool { return metrics.DebugAsserts() }

// Errors returned by the log.
var (
	ErrRecordTooLarge = errors.New("hlog: record larger than page")
	ErrClosed         = errors.New("hlog: closed")
	ErrAddressEvicted = errors.New("hlog: address below head (evicted)")
	// ErrPoisoned marks the log tail as unwritable: a page flush exhausted
	// its retry budget (or failed permanently), so no further allocation
	// can ever become durable. Reads of resident and already-flushed
	// addresses remain valid. errors returned by Allocate and
	// WaitUntilFlushed after poisoning wrap ErrPoisoned and the device
	// cause.
	ErrPoisoned = errors.New("hlog: log tail poisoned by write failure")
)

// New creates a Log from cfg.
func New(cfg Config) (*Log, error) {
	if cfg.PageBits < 9 || cfg.PageBits > 30 {
		return nil, fmt.Errorf("hlog: PageBits %d out of range [9,30]", cfg.PageBits)
	}
	if cfg.Epoch == nil {
		return nil, errors.New("hlog: Epoch manager required")
	}
	switch cfg.Mode {
	case ModeAppendOnly:
		cfg.MutableFraction = 0
	case ModeInMemory:
		cfg.MutableFraction = 1
		if cfg.Device == nil {
			cfg.Device = device.NewNull()
		}
		if cfg.MaxInMemoryPages == 0 {
			cfg.MaxInMemoryPages = 1 << 20
		}
	case ModeHybrid:
		if cfg.MutableFraction < 0 || cfg.MutableFraction > 1 {
			return nil, fmt.Errorf("hlog: MutableFraction %v out of range", cfg.MutableFraction)
		}
		if cfg.Device == nil {
			return nil, errors.New("hlog: Device required for hybrid mode")
		}
	default:
		return nil, fmt.Errorf("hlog: unknown mode %v", cfg.Mode)
	}
	if cfg.Mode != ModeInMemory {
		if cfg.BufferPages < 2 || bits.OnesCount(uint(cfg.BufferPages)) != 1 {
			return nil, fmt.Errorf("hlog: BufferPages %d must be a power of two >= 2", cfg.BufferPages)
		}
	}

	if cfg.Retry == (retry.Policy{}) {
		cfg.Retry = retry.DefaultWrite()
	}
	if cfg.Classify == nil {
		cfg.Classify = device.ClassifierFor(cfg.Device)
	}

	l := &Log{
		cfg:         cfg,
		pageBits:    cfg.PageBits,
		pageSize:    1 << cfg.PageBits,
		em:          cfg.Epoch,
		dev:         cfg.Device,
		classify:    cfg.Classify,
		retryTimers: make(map[*time.Timer]struct{}),
	}
	l.flushed.init()

	if cfg.Mode == ModeInMemory {
		l.memFrames = make([]atomic.Pointer[frame], cfg.MaxInMemoryPages)
		l.memFrames[0].Store(newFrame(int(l.pageSize)))
	} else {
		l.frameMask = uint64(cfg.BufferPages - 1)
		l.frames = make([]*frame, cfg.BufferPages)
		for i := range l.frames {
			l.frames[i] = newFrame(int(l.pageSize))
		}
		l.frames[0].status.Store(frameOpen)
		l.headLag = uint64(cfg.BufferPages) << cfg.PageBits
		// Mutable region size in whole pages; the remainder of the
		// buffer is the read-only (second chance) region.
		mutPages := uint64(float64(cfg.BufferPages) * cfg.MutableFraction)
		// At least one page of the buffer must be able to become
		// read-only, or nothing ever flushes and eviction deadlocks
		// once the buffer wraps.
		if cfg.Mode == ModeHybrid && mutPages >= uint64(cfg.BufferPages) {
			mutPages = uint64(cfg.BufferPages) - 1
		}
		l.roLag = mutPages << cfg.PageBits
	}

	l.tailWord.Store(FirstValidAddress) // page 0, offset 64
	l.begin.Store(FirstValidAddress)
	return l, nil
}

// PageSize returns the page size in bytes.
func (l *Log) PageSize() uint64 { return l.pageSize }

// Mode returns the allocator mode.
func (l *Log) Mode() Mode { return l.cfg.Mode }

// packed tail helpers.
func unpack(w uint64) (page, off uint64) { return w >> 32, w & 0xffffffff }

// TailAddress returns the next address that will be allocated.
func (l *Log) TailAddress() Address {
	page, off := unpack(l.tailWord.Load())
	if off > l.pageSize {
		off = l.pageSize
	}
	// Addition, not OR: a mid-roll clamp makes off == pageSize, whose
	// bit overlaps the page number's lowest bit.
	return page<<l.pageBits + off
}

// HeadAddress returns the lowest logical address resident in memory.
func (l *Log) HeadAddress() Address { return l.head.Load() }

// ReadOnlyAddress returns the mutable-region boundary (§6.1). In
// append-only mode it is the tail itself: no record is ever mutable, so
// every update is a read-copy-update append (§5.3). The internal offset
// that drives flushing still advances at page granularity.
func (l *Log) ReadOnlyAddress() Address {
	if l.cfg.Mode == ModeAppendOnly {
		return l.TailAddress()
	}
	return l.readOnly.Load()
}

// SafeReadOnlyAddress returns the boundary seen by all threads (§6.2).
// In append-only mode records are immutable from birth, so there is no
// fuzzy region and the safe boundary equals the tail.
func (l *Log) SafeReadOnlyAddress() Address {
	if l.cfg.Mode == ModeAppendOnly {
		return l.TailAddress()
	}
	return l.safeRO.Load()
}

// BeginAddress returns the truncation point of the log.
func (l *Log) BeginAddress() Address { return l.begin.Load() }

// FlushedUntilAddress returns the address below which every byte is durable.
func (l *Log) FlushedUntilAddress() Address { return l.flushed.level() }

// FlushIssuedAddress returns the address below which flush I/O has been
// issued (diagnostics).
func (l *Log) FlushIssuedAddress() Address { return l.flushIssue.Load() }

// WriteFailure returns the error that poisoned the log tail (wrapping
// ErrPoisoned and the device cause), or nil while the log is healthy.
func (l *Log) WriteFailure() error {
	if f := l.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// Poisoned reports whether the log tail is poisoned (see ErrPoisoned).
func (l *Log) Poisoned() bool { return l.failure.Load() != nil }

// poison records the first unrecoverable flush error and notifies the
// owner exactly once. Later flush give-ups are counted but keep the first
// cause.
func (l *Log) poison(err error) {
	l.mx.flushFailures.Inc()
	wrapped := fmt.Errorf("%w: %w", ErrPoisoned, err)
	if !l.failure.CompareAndSwap(nil, &logFailure{err: wrapped}) {
		return
	}
	if l.cfg.OnWriteFailure != nil {
		l.cfg.OnWriteFailure(wrapped)
	}
}

// pageOf returns the page number containing addr.
func (l *Log) pageOf(addr Address) uint64 { return addr >> l.pageBits }

// frameFor returns the frame that holds page, or nil (in-memory mode, page
// not yet allocated).
func (l *Log) frameFor(page uint64) *frame {
	if l.cfg.Mode == ModeInMemory {
		return l.memFrames[page].Load()
	}
	return l.frames[page&l.frameMask]
}

// Slice returns the in-memory bytes at addr, up to the end of its page.
// The caller must have established addr >= HeadAddress under epoch
// protection; this is the latch-free fast path, so no check is performed.
func (l *Log) Slice(addr Address) []byte {
	f := l.frameFor(l.pageOf(addr))
	return f.bytes[addr&(l.pageSize-1):]
}

// Uint64Ptr returns a pointer to the 8-byte-aligned word at addr, suitable
// for sync/atomic operations. addr must be 8-byte aligned and in memory.
func (l *Log) Uint64Ptr(addr Address) *uint64 {
	f := l.frameFor(l.pageOf(addr))
	return &f.words[(addr&(l.pageSize-1))>>3]
}

// Allocate reserves size bytes at the tail and returns the logical address.
// size must be a positive multiple of 8 and no larger than a page. The
// guard g is the caller's epoch guard; Allocate may Refresh it while
// waiting for buffer maintenance (so callers must treat Allocate as an
// epoch boundary, as FASTER threads do). This is Algorithm 1 of the paper.
func (l *Log) Allocate(size uint32, g *epoch.Guard) (Address, error) {
	if size == 0 || size%8 != 0 {
		return InvalidAddress, fmt.Errorf("hlog: invalid allocation size %d", size)
	}
	if uint64(size) > l.pageSize-FirstValidAddress {
		return InvalidAddress, ErrRecordTooLarge
	}
	for {
		if l.closed.Load() {
			return InvalidAddress, ErrClosed
		}
		if err := l.WriteFailure(); err != nil {
			// Poisoned tail: new records could never become durable, and
			// eviction could never reclaim their frames. Fail fast so the
			// store can degrade to read-only instead of hanging here.
			return InvalidAddress, err
		}
		w := l.tailWord.Add(uint64(size))
		page, off := unpack(w)
		start := off - uint64(size)
		if off <= l.pageSize {
			// Common case: the allocation fits on the current page
			// (including an exact fit at the page end).
			return page<<l.pageBits | start, nil
		}
		if start <= l.pageSize {
			// This thread crossed the boundary: it performs buffer
			// maintenance and opens the next page (Alg 1 lines 5-16).
			//
			// Deviation from Alg 1's exact-fit special case: a crosser
			// here never retains an address on the old page (an exact
			// fit returned above, and a straddler's space is wasted),
			// so openPage is free to refresh the caller's epoch while
			// it waits — a thread holding an old-page address across a
			// refresh could otherwise race with the page's flush.
			if err := l.openPage(page+1, g); err != nil {
				// The frame never became evictable (log closed or
				// poisoned mid-wait). The tail word stays wedged past
				// the page end on purpose: concurrent allocators spin
				// on it, observe the closed/poisoned state below, and
				// fail fast too. Reusing the frame here would overwrite
				// an unflushed page that resident readers still need.
				return InvalidAddress, err
			}
			// Any straddling space [start, pageSize) on the old page
			// stays zero, which record scans recognise as padding.
			// Allocate this request at the new page start.
			if debugTrap() {
				if cur := l.tailWord.Load(); (page+1)<<32|uint64(size) < cur {
					panic(fmt.Sprintf("tail store backward: cur=(%d,%#x) new=(%d,%#x)",
						cur>>32, cur&0xffffffff, page+1, size))
				}
			}
			l.tailWord.Store((page+1)<<32 | uint64(size))
			return (page + 1) << l.pageBits, nil
		}
		// Another thread is opening the new page: spin until the tail
		// word becomes valid again, then retry (Alg 1 lines 17-19).
		//
		// The wait must refresh eagerly and back off to sleeps, not busy
		// Gosched: the opener is blocked behind two epoch round-trips
		// (flush the read-only span, then close the evicted frames), and
		// each round-trip completes only after every waiter here has
		// published a fresh epoch. Waiters that spin hot with rare
		// refreshes starve the opener of CPU and stretch every
		// page turn into a scheduler convoy — with enough writers the
		// whole store collapses to a few page turns per second.
		waitStart := time.Now()
		for spins := 0; ; spins++ {
			_, off := unpack(l.tailWord.Load())
			if off <= l.pageSize {
				break
			}
			if g != nil {
				g.Refresh()
			}
			if spins > 64 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			if l.closed.Load() {
				return InvalidAddress, ErrClosed
			}
			if err := l.WriteFailure(); err != nil {
				return InvalidAddress, err
			}
		}
		l.mx.tailContention.Observe(time.Since(waitStart))
	}
}

// openPage prepares the frame for newPage: advances the read-only and head
// offsets if they lag (Alg 1 buffer_maintenance), waits until the target
// frame is evictable, and claims it.
func (l *Log) openPage(newPage uint64, g *epoch.Guard) error {
	if l.cfg.Mode == ModeInMemory {
		if newPage >= uint64(len(l.memFrames)) {
			panic("hlog: in-memory log exceeded MaxInMemoryPages")
		}
		l.memFrames[newPage].Store(newFrame(int(l.pageSize)))
		return nil
	}

	// Advance the read-only offset to maintain its lag from the tail.
	l.maybeShiftReadOnly(newPage)

	// The frame for newPage can be claimed once its previous occupant
	// (page newPage-bufferPages) has been closed. For the first pass
	// around the buffer the frame has never been used and is Closed.
	f := l.frames[newPage&l.frameMask]
	var desiredHead uint64
	if newPage+1 >= uint64(len(l.frames)) {
		desiredHead = (newPage + 1 - uint64(len(l.frames))) << l.pageBits
	}
	if f.status.Load() != frameClosed {
		waitStart := time.Now()
		for spins := 0; f.status.Load() != frameClosed; spins++ {
			l.maybeShiftHead(desiredHead)
			if g != nil {
				g.Refresh()
			}
			l.em.Drain()
			if spins > 1024 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			if l.closed.Load() {
				return ErrClosed
			}
			if err := l.WriteFailure(); err != nil {
				// The occupant page can never flush, so this frame can
				// never be evicted: the wait would spin forever. Leave
				// the frame untouched (resident readers still need it).
				return err
			}
		}
		l.mx.frameWait.Observe(time.Since(waitStart))
	}
	f.zero()
	f.status.Store(frameOpen)
	return nil
}

// maybeShiftReadOnly raises the read-only offset so it trails the new tail
// page by roLag bytes, and registers the epoch trigger that publishes the
// safe read-only offset and flushes the newly read-only pages (§6.2).
func (l *Log) maybeShiftReadOnly(tailPage uint64) {
	tailStart := tailPage << l.pageBits
	if tailStart <= l.roLag {
		return
	}
	desired := tailStart - l.roLag
	for {
		cur := l.readOnly.Load()
		if desired <= cur {
			return
		}
		if l.readOnly.CompareAndSwap(cur, desired) {
			l.mx.roShifts.Inc()
			if mutationsEnabled && mutSkipEpochBump() {
				l.onSafeReadOnly(desired) // seeded bug: no epoch wait
			} else {
				l.em.BumpWith(func() { l.onSafeReadOnly(desired) })
			}
			return
		}
	}
}

// ShiftReadOnlyToTail moves the read-only offset all the way to the
// current tail (used by checkpointing, §6.5) and returns the tail address.
func (l *Log) ShiftReadOnlyToTail() Address {
	tail := l.TailAddress()
	if l.cfg.Mode == ModeInMemory {
		return tail
	}
	for {
		cur := l.readOnly.Load()
		if tail <= cur {
			return tail
		}
		if l.readOnly.CompareAndSwap(cur, tail) {
			l.mx.roShifts.Inc()
			if mutationsEnabled && mutSkipEpochBump() {
				l.onSafeReadOnly(tail) // seeded bug: no epoch wait
			} else {
				l.em.BumpWith(func() { l.onSafeReadOnly(tail) })
			}
			return tail
		}
	}
}

// onSafeReadOnly runs as an epoch trigger action once every thread has seen
// a read-only offset of at least ro. It raises the safe read-only offset
// and issues flushes for the span that just became immutable.
func (l *Log) onSafeReadOnly(ro uint64) {
	if debugTrap() && ro > l.readOnly.Load() {
		panic(fmt.Sprintf("hlog: onSafeReadOnly(%#x) beyond readOnly=%#x", ro, l.readOnly.Load()))
	}
	for {
		cur := l.safeRO.Load()
		if ro <= cur {
			break
		}
		if l.safeRO.CompareAndSwap(cur, ro) {
			break
		}
	}
	// Claim the flush span [issued, ro) exactly once.
	for {
		issued := l.flushIssue.Load()
		if ro <= issued {
			return
		}
		if l.flushIssue.CompareAndSwap(issued, ro) {
			l.issueFlush(issued, ro)
			return
		}
	}
}

// issueFlush writes [from, to) to the device, splitting at page boundaries.
//
// A failed flush would lose data; the paper assumes reliable storage.
// Completion is recorded only on success — eviction can never pass an
// unflushed page — and failures are handled by classification: transient
// errors retry with bounded exponential backoff and jitter so the
// durability watermark is not wedged by one flaky write, while a
// Permanent classification (or an exhausted attempt budget) poisons the
// log tail so the store can degrade to read-only instead of retrying a
// dead device every millisecond forever.
func (l *Log) issueFlush(from, to uint64) {
	if l.closed.Load() || l.Poisoned() {
		return
	}
	for from < to {
		page := l.pageOf(from)
		pageEnd := (page + 1) << l.pageBits
		end := min(pageEnd, to)
		f := l.frames[page&l.frameMask]
		off := from & (l.pageSize - 1)
		buf := f.bytes[off : end-(page<<l.pageBits)]
		start, stop := from, end
		var attempt device.Callback
		issued := time.Now()
		failures := 0 // touched by one callback at a time (serial retries)
		write := func() { l.dev.WriteAsync(buf, start, attempt) }
		attempt = func(err error) {
			if err == nil {
				l.mx.flushLatency.Observe(time.Since(issued))
				l.mx.flushedBytes.Add(stop - start)
				l.flushed.complete(start, stop)
				return
			}
			if l.closed.Load() || l.Poisoned() {
				return
			}
			failures++
			if l.classify.Classify(err) == retry.Permanent || failures >= l.cfg.Retry.Attempts() {
				l.poison(fmt.Errorf("flush of [%#x,%#x): %w",
					start, stop, retry.Exhausted(l.classify, err, failures)))
				return
			}
			l.mx.flushRetries.Inc()
			if l.cfg.OnFlushRetry != nil {
				l.cfg.OnFlushRetry(failures, err)
			}
			l.scheduleRetry(l.cfg.Retry.Delay(failures), write)
		}
		l.mx.flushesIssued.Inc()
		write()
		from = end
	}
}

// scheduleRetry re-issues a failed flush write after delay. The timer is
// tracked so Close can cancel it: without the registry a permanently
// failing device would keep firing retries into a closed log (the
// pre-hardening AfterFunc leak).
func (l *Log) scheduleRetry(delay time.Duration, write func()) {
	l.retryMu.Lock()
	defer l.retryMu.Unlock()
	if l.closed.Load() {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(delay, func() {
		l.retryMu.Lock()
		delete(l.retryTimers, t)
		closed := l.closed.Load()
		l.retryMu.Unlock()
		if closed || l.Poisoned() {
			return
		}
		write()
	})
	l.retryTimers[t] = struct{}{}
}

// retryTimerCount reports outstanding flush-retry timers (tests).
func (l *Log) retryTimerCount() int {
	l.retryMu.Lock()
	defer l.retryMu.Unlock()
	return len(l.retryTimers)
}

// maybeShiftHead raises the head offset toward desired, limited by the
// flush watermark (pages must be durable before eviction), and registers
// the epoch trigger that closes the evicted frames (§5.2).
func (l *Log) maybeShiftHead(desired uint64) {
	if desired == 0 {
		return
	}
	if fu := l.flushed.level(); desired > fu {
		desired = fu &^ (l.pageSize - 1) // only whole flushed pages evict
	}
	for {
		cur := l.head.Load()
		if desired <= cur {
			return
		}
		if l.head.CompareAndSwap(cur, desired) {
			l.mx.headShifts.Inc()
			oldHead, newHead := cur, desired
			l.em.BumpWith(func() { l.closeFrames(oldHead, newHead) })
			return
		}
	}
}

// closeFrames marks the frames holding pages [oldHead, newHead) as closed,
// making them reusable. Runs as an epoch trigger: by then no thread can be
// accessing those addresses.
func (l *Log) closeFrames(oldHead, newHead uint64) {
	for p := oldHead >> l.pageBits; p < newHead>>l.pageBits; p++ {
		l.frames[p&l.frameMask].status.Store(frameClosed)
		l.mx.evictedPages.Inc()
	}
}

// ReadAsync reads len(buf) bytes at addr from the device (the stable
// region). The caller is responsible for ensuring addr+len(buf) is below
// the flush watermark or handling the resulting error.
func (l *Log) ReadAsync(addr Address, buf []byte, cb device.Callback) {
	l.dev.ReadAsync(buf, addr, cb)
}

// WaitUntilFlushed blocks until the flush watermark reaches addr. It
// drains epoch actions while waiting so that single-threaded callers make
// progress; callers holding a guard must have refreshed past the bump that
// initiated the flush.
func (l *Log) WaitUntilFlushed(addr Address) error {
	if l.flushed.level() >= addr {
		return nil
	}
	waitStart := time.Now()
	defer func() { l.mx.flushWait.Observe(time.Since(waitStart)) }()
	for spins := 0; l.flushed.level() < addr; spins++ {
		if l.closed.Load() {
			return ErrClosed
		}
		if err := l.WriteFailure(); err != nil {
			// The watermark can never reach addr: the flush path gave up.
			return err
		}
		l.em.Drain()
		if spins > 128 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	return nil
}

// ShiftBeginAddress advances the begin address to addr (monotone,
// expiration-based GC, Appendix C) and, when it advanced, waits under an
// epoch bump + drain until every thread has observed the new begin. Only
// after that wait is it safe to free the device range below addr: threads
// check begin before issuing stable-region reads, so post-drain no new
// read below addr can start. (Reads already in flight when begin moved
// may still race a device truncate; the faster layer resolves those as
// NotFound — the record is provably dead.)
//
// g, if non-nil, is the caller's epoch guard and is refreshed while
// waiting so the caller does not stall its own drain; a caller holding an
// active guard that it cannot refresh here must Park it first or the
// wait deadlocks. Returns whether this call advanced begin.
func (l *Log) ShiftBeginAddress(addr Address, g *epoch.Guard) (bool, error) {
	advanced := false
	for {
		cur := l.begin.Load()
		if addr <= cur {
			break
		}
		if l.begin.CompareAndSwap(cur, addr) {
			advanced = true
			l.mx.beginShifts.Inc()
			break
		}
	}
	if !advanced || l.cfg.Mode == ModeInMemory {
		// A racing caller that advanced past addr performs its own drain;
		// ApplyDeviceTruncation clamps to the epoch-safe watermark, so
		// skipping the wait here cannot free the range early. In-memory
		// logs have no device range to protect.
		return advanced, nil
	}
	done := make(chan struct{})
	l.em.BumpWith(func() { close(done) })
	for spins := 0; ; spins++ {
		select {
		case <-done:
			for {
				cur := l.truncSafe.Load()
				if addr <= cur || l.truncSafe.CompareAndSwap(cur, addr) {
					return true, nil
				}
			}
		default:
		}
		if l.closed.Load() {
			return true, ErrClosed
		}
		if g != nil {
			g.Refresh()
		}
		l.em.Drain()
		if spins > 128 {
			time.Sleep(20 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
}

// ApplyDeviceTruncation frees device storage below min(limit, the
// epoch-safe begin published by ShiftBeginAddress). Truncates are
// serialized under a mutex against a monotone watermark, so concurrent
// callers can never apply device truncates out of order. Callers use
// limit to hold back reclamation the durable metadata does not yet cover
// (recovery must never need truncated addresses).
func (l *Log) ApplyDeviceTruncation(limit Address) error {
	target := l.truncSafe.Load()
	if limit < target {
		target = limit
	}
	l.truncMu.Lock()
	defer l.truncMu.Unlock()
	if target <= l.truncDone.Load() {
		return nil
	}
	if err := l.dev.Truncate(target); err != nil {
		return err
	}
	l.mx.truncations.Inc()
	l.mx.truncatedBytes.Add(target - l.truncDone.Load())
	l.truncDone.Store(target)
	return nil
}

// TruncatedUntil returns the device truncation watermark: storage below
// this address has been freed.
func (l *Log) TruncatedUntil() Address { return l.truncDone.Load() }

// TruncateUntil discards the log prefix below addr (expiration-based GC,
// Appendix C): it advances begin under an epoch bump + drain and then
// frees the device range. Addresses below the new begin address become
// invalid. The calling goroutine must not hold an active (unparked)
// epoch guard or session, or the drain cannot complete.
func (l *Log) TruncateUntil(addr Address) error {
	if _, err := l.ShiftBeginAddress(addr, nil); err != nil {
		return err
	}
	return l.ApplyDeviceTruncation(addr)
}

// InMemory reports whether addr is at or above the head offset (resident).
func (l *Log) InMemory(addr Address) bool { return addr >= l.head.Load() }

// RecoverTo positions a freshly created log so that all addresses in
// [begin, tail) live on the device and allocation resumes at the start of
// the page containing tail (recovery, §6.5). The remainder of the tail
// page is sacrificed: recovering mid-page would mix pre- and post-crash
// records in one flush unit. Must be called before any allocation.
func (l *Log) RecoverTo(begin, tail Address) error {
	if l.cfg.Mode == ModeInMemory {
		return errors.New("hlog: cannot recover an in-memory log")
	}
	if l.TailAddress() != FirstValidAddress {
		return errors.New("hlog: RecoverTo on a used log")
	}
	page := l.pageOf(tail)
	if tail&(l.pageSize-1) != 0 {
		page++ // resume on a fresh page
	}
	resume := page << l.pageBits
	l.tailWord.Store(page << 32) // offset 0 on the resume page
	l.head.Store(resume)
	l.readOnly.Store(resume)
	l.safeRO.Store(resume)
	l.flushIssue.Store(resume)
	l.flushed.complete(0, resume)
	l.begin.Store(begin)
	// A fresh log has no readers: the recovered begin is epoch-safe by
	// construction, and the device holds nothing below it.
	l.truncSafe.Store(begin)
	l.truncDone.Store(begin)
	for _, f := range l.frames {
		f.status.Store(frameClosed) // including the initially open frame 0
	}
	f := l.frames[page&l.frameMask]
	f.zero()
	f.status.Store(frameOpen)
	return nil
}

// Capacity returns the in-memory capacity in bytes (0 for ModeInMemory,
// which is unbounded).
func (l *Log) Capacity() uint64 {
	if l.cfg.Mode == ModeInMemory {
		return 0
	}
	return uint64(len(l.frames)) << l.pageBits
}

// Close flushes nothing and releases the log. In-flight device I/O is
// allowed to finish; subsequent allocations fail. Outstanding flush-retry
// timers are cancelled so nothing fires into the closed log.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	l.retryMu.Lock()
	for t := range l.retryTimers {
		t.Stop()
	}
	clear(l.retryTimers)
	l.retryMu.Unlock()
	return l.dev.Sync()
}
