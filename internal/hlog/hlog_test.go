package hlog

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/epoch"
)

// testLog builds a log with small pages for fast wrap-around.
func testLog(t *testing.T, mode Mode, bufferPages int, mutable float64) (*Log, *epoch.Manager, *device.Mem) {
	t.Helper()
	em := epoch.New(64)
	dev := device.NewMem(device.MemConfig{})
	l, err := New(Config{
		PageBits:        12, // 4 KB pages
		BufferPages:     bufferPages,
		MutableFraction: mutable,
		Mode:            mode,
		Device:          dev,
		Epoch:           em,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); dev.Close() })
	return l, em, dev
}

func TestNewValidation(t *testing.T) {
	em := epoch.New(4)
	cases := []Config{
		{PageBits: 4, BufferPages: 4, Mode: ModeHybrid, Device: device.NewNull(), Epoch: em},
		{PageBits: 12, BufferPages: 3, Mode: ModeHybrid, Device: device.NewNull(), Epoch: em},
		{PageBits: 12, BufferPages: 4, Mode: ModeHybrid, Device: nil, Epoch: em},
		{PageBits: 12, BufferPages: 4, Mode: ModeHybrid, Device: device.NewNull(), Epoch: nil},
		{PageBits: 12, BufferPages: 4, Mode: ModeHybrid, MutableFraction: 2, Device: device.NewNull(), Epoch: em},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for config %+v", i, cfg)
		}
	}
}

func TestAllocateSequential(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()

	a1, err := l.Allocate(64, g)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != FirstValidAddress {
		t.Fatalf("first allocation at %#x, want %#x", a1, FirstValidAddress)
	}
	a2, err := l.Allocate(32, g)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1+64 {
		t.Fatalf("second allocation at %#x, want %#x", a2, a1+64)
	}
	if tail := l.TailAddress(); tail != a2+32 {
		t.Fatalf("tail = %#x, want %#x", tail, a2+32)
	}
}

func TestAllocateRejectsBadSizes(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	if _, err := l.Allocate(0, g); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := l.Allocate(12, g); err == nil {
		t.Error("non-multiple-of-8 size should fail")
	}
	if _, err := l.Allocate(uint32(l.PageSize()), g); err != ErrRecordTooLarge {
		t.Errorf("page-sized allocation error = %v, want ErrRecordTooLarge", err)
	}
}

func TestAllocateCrossesPageBoundary(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	pageSize := l.PageSize()

	// Fill most of page 0, then allocate something that cannot fit.
	var last Address
	allocated := FirstValidAddress
	for allocated+512 <= pageSize {
		a, err := l.Allocate(512, g)
		if err != nil {
			t.Fatal(err)
		}
		last = a
		allocated += 512
	}
	a, err := l.Allocate(512, g)
	if err != nil {
		t.Fatal(err)
	}
	if a>>12 != 1 || a&(pageSize-1) != 0 {
		t.Fatalf("boundary-crossing allocation at %#x, want start of page 1", a)
	}
	if last>>12 != 0 {
		t.Fatalf("last fitting allocation escaped page 0: %#x", last)
	}
}

func TestWriteReadBackInMemoryRegion(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	a, err := l.Allocate(24, g)
	if err != nil {
		t.Fatal(err)
	}
	copy(l.Slice(a), "hello hybrid log data!!!") // 24 bytes
	got := l.Slice(a)[:24]
	if string(got) != "hello hybrid log data!!!" {
		t.Fatalf("read back %q", got)
	}
}

func TestUint64PtrAligned(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	a, _ := l.Allocate(16, g)
	p := l.Uint64Ptr(a)
	*p = 0xdeadbeefcafef00d
	if got := binary.LittleEndian.Uint64(l.Slice(a)); got != 0xdeadbeefcafef00d {
		t.Fatalf("word readback = %#x", got)
	}
}

func TestReadOnlyShiftsWithTail(t *testing.T) {
	// 8 pages, 50% mutable => roLag = 4 pages. After allocating into page
	// 6, readOnly should be at page 3 start (7<<12 - 4<<12 after opening
	// page 6... verify monotone growth and lag).
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	for i := 0; i < 6*8; i++ { // 6 pages of 8 x 512B
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
	}
	g.Refresh()
	em.Drain()
	ro := l.ReadOnlyAddress()
	tailPage := l.TailAddress() >> 12
	wantRO := (tailPage << 12) - 4<<12
	if ro != wantRO {
		t.Fatalf("readOnly = %#x, want %#x (tail page %d)", ro, wantRO, tailPage)
	}
	if srо := l.SafeReadOnlyAddress(); srо != ro {
		t.Fatalf("safeRO = %#x, want %#x after refresh+drain", srо, ro)
	}
}

func TestSafeReadOnlyLagsUntilRefresh(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	lag := em.Acquire() // a second, lagging thread pins the epoch

	for i := 0; i < 6*8; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
	}
	g.Refresh()
	em.Drain()
	if l.ReadOnlyAddress() == 0 {
		t.Fatal("readOnly did not advance")
	}
	if l.SafeReadOnlyAddress() != 0 {
		t.Fatalf("safeRO advanced to %#x while a thread lagged", l.SafeReadOnlyAddress())
	}
	lag.Refresh()
	em.Drain()
	if l.SafeReadOnlyAddress() != l.ReadOnlyAddress() {
		t.Fatalf("safeRO = %#x, want %#x after lagging thread refreshed",
			l.SafeReadOnlyAddress(), l.ReadOnlyAddress())
	}
	lag.Release()
}

func TestFlushHappensForReadOnlyPages(t *testing.T) {
	l, em, dev := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	// Write a recognizable pattern into each record.
	for i := 0; i < 6*8; i++ {
		a, err := l.Allocate(512, g)
		if err != nil {
			t.Fatal(err)
		}
		buf := l.Slice(a)[:512]
		for j := range buf {
			buf[j] = byte(i)
		}
		g.Refresh()
	}
	em.Drain()
	ro := l.SafeReadOnlyAddress()
	if ro == 0 {
		t.Fatal("no pages became read-only")
	}
	if err := l.WaitUntilFlushed(ro); err != nil {
		t.Fatal(err)
	}
	// Every flushed record must be readable from the device.
	got := make([]byte, 512)
	done := make(chan error, 1)
	dev.ReadAsync(got, uint64(FirstValidAddress), func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0}, 512)) {
		t.Fatalf("record 0 content mismatch from device")
	}
}

func TestBufferWrapEvictsAndRecycles(t *testing.T) {
	// Allocate far more than the buffer holds; head must advance and
	// frames recycle without corruption.
	l, em, _ := testLog(t, ModeHybrid, 4, 0.5)
	g := em.Acquire()
	defer g.Release()
	const records = 4 * 8 * 5 // 5 buffers' worth
	addrs := make([]Address, 0, records)
	for i := 0; i < records; i++ {
		a, err := l.Allocate(512, g)
		if err != nil {
			t.Fatal(err)
		}
		buf := l.Slice(a)[:512]
		binary.LittleEndian.PutUint64(buf, uint64(i))
		addrs = append(addrs, a)
		g.Refresh()
	}
	if l.HeadAddress() == 0 {
		t.Fatal("head never advanced despite buffer wrap")
	}
	// In-memory records readable via Slice; evicted ones via the device.
	for i, a := range addrs {
		var buf [8]byte
		if l.InMemory(a) {
			copy(buf[:], l.Slice(a))
		} else {
			if err := l.WaitUntilFlushed(a + 512); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			l.ReadAsync(a, buf[:], func(err error) { done <- err })
			if err := <-done; err != nil {
				t.Fatalf("record %d at %#x: %v", i, a, err)
			}
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != uint64(i) {
			t.Fatalf("record %d at %#x: got %d", i, a, got)
		}
	}
}

func TestAppendOnlyModeReadOnlyTracksTail(t *testing.T) {
	l, em, _ := testLog(t, ModeAppendOnly, 8, 0.9)
	g := em.Acquire()
	defer g.Release()
	for i := 0; i < 3*8; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
		g.Refresh()
	}
	em.Drain()
	// In append-only mode no record is ever mutable: the read-only
	// boundary reports the tail itself (§5.3).
	if ro := l.ReadOnlyAddress(); ro != l.TailAddress() {
		t.Fatalf("append-only readOnly = %#x, want tail %#x", ro, l.TailAddress())
	}
	// The internal flush driver still advances at page granularity.
	tailPageStart := (l.TailAddress() >> 12) << 12
	if sro := l.safeRO.Load(); sro != tailPageStart {
		t.Fatalf("append-only internal safeRO = %#x, want tail page start %#x", sro, tailPageStart)
	}
}

func TestInMemoryModeGrowsWithoutDevice(t *testing.T) {
	em := epoch.New(8)
	l, err := New(Config{PageBits: 12, Mode: ModeInMemory, Epoch: em, MaxInMemoryPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := em.Acquire()
	defer g.Release()
	for i := 0; i < 20*8; i++ { // 20 pages, far beyond any fixed buffer
		a, err := l.Allocate(512, g)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(l.Slice(a), uint64(i))
	}
	if l.HeadAddress() != 0 {
		t.Fatal("in-memory mode must never evict")
	}
	if l.ReadOnlyAddress() != 0 {
		t.Fatal("in-memory mode must never become read-only")
	}
}

func TestShiftReadOnlyToTail(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.9)
	g := em.Acquire()
	for i := 0; i < 10; i++ {
		if _, err := l.Allocate(256, g); err != nil {
			t.Fatal(err)
		}
	}
	tail := l.ShiftReadOnlyToTail()
	g.Refresh()
	em.Drain()
	g.Release()
	if l.SafeReadOnlyAddress() != tail {
		t.Fatalf("safeRO = %#x, want tail %#x", l.SafeReadOnlyAddress(), tail)
	}
	if err := l.WaitUntilFlushed(tail); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateUntil(t *testing.T) {
	l, em, dev := testLog(t, ModeHybrid, 4, 0.5)
	g := em.Acquire()
	defer g.Release()
	for i := 0; i < 4*8*3; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
		g.Refresh()
	}
	cut := l.HeadAddress() / 2
	if cut == 0 {
		t.Skip("head did not advance enough")
	}
	// TruncateUntil drains an epoch bump; the caller must not hold an
	// active guard or the drain never completes.
	g.Park()
	if err := l.TruncateUntil(cut); err != nil {
		t.Fatal(err)
	}
	g.Unpark()
	if l.BeginAddress() != cut {
		t.Fatalf("begin = %#x, want %#x", l.BeginAddress(), cut)
	}
	// Reads below the cut must fail at the device.
	buf := make([]byte, 8)
	done := make(chan error, 1)
	dev.ReadAsync(buf, 0, func(err error) { done <- err })
	if err := <-done; err == nil {
		t.Fatal("read below truncation point should fail")
	}
}

func TestConcurrentAllocators(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	const (
		workers       = 8
		perWorker     = 400
		recordSize    = 128
		payloadOffset = 8
	)
	var wg sync.WaitGroup
	addrCh := make(chan Address, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := em.Acquire()
			defer g.Release()
			for i := 0; i < perWorker; i++ {
				a, err := l.Allocate(recordSize, g)
				if err != nil {
					t.Error(err)
					return
				}
				buf := l.Slice(a)[:recordSize]
				binary.LittleEndian.PutUint64(buf, uint64(id)<<32|uint64(i))
				binary.LittleEndian.PutUint64(buf[payloadOffset:], a)
				addrCh <- a
				if i%16 == 0 {
					g.Refresh()
				}
			}
		}(w)
	}
	wg.Wait()
	close(addrCh)
	em.Drain()

	// No two allocations may overlap, and in-memory ones must still hold
	// their self-describing address.
	seen := map[Address]bool{}
	for a := range addrCh {
		if seen[a] {
			t.Fatalf("address %#x allocated twice", a)
		}
		seen[a] = true
		if a%8 != 0 {
			t.Fatalf("address %#x not 8-byte aligned", a)
		}
		if l.InMemory(a) {
			if got := binary.LittleEndian.Uint64(l.Slice(a)[payloadOffset:]); got != a {
				t.Fatalf("record at %#x corrupted: self-address %#x", a, got)
			}
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("allocated %d records, want %d", len(seen), workers*perWorker)
	}
}

func TestMarkerOrderingInvariant(t *testing.T) {
	// begin <= head <= safeRO <= readOnly <= tail at every step.
	l, em, _ := testLog(t, ModeHybrid, 4, 0.5)
	g := em.Acquire()
	defer g.Release()
	check := func() {
		b, h, s, r, ta := l.BeginAddress(), l.HeadAddress(), l.SafeReadOnlyAddress(), l.ReadOnlyAddress(), l.TailAddress()
		if !(h <= s && s <= r && r <= ta) {
			t.Fatalf("marker invariant violated: head=%#x safeRO=%#x ro=%#x tail=%#x", h, s, r, ta)
		}
		_ = b
	}
	for i := 0; i < 4*8*4; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
		g.Refresh()
		check()
	}
}

func TestAllocateAfterCloseFails(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	l.Close()
	if _, err := l.Allocate(64, g); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestWatermarkContiguity(t *testing.T) {
	var w watermark
	w.init()
	w.complete(100, 200) // out of order
	if w.level() != 0 {
		t.Fatalf("level = %d, want 0", w.level())
	}
	w.complete(0, 50)
	if w.level() != 50 {
		t.Fatalf("level = %d, want 50", w.level())
	}
	w.complete(50, 100)
	if w.level() != 200 {
		t.Fatalf("level = %d, want 200", w.level())
	}
}

// Property: completing any permutation of contiguous chunks yields a level
// equal to the total.
func TestQuickWatermarkPermutations(t *testing.T) {
	f := func(sizes []uint8, order []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		type rng struct{ s, e uint64 }
		var rngs []rng
		var pos uint64
		for _, sz := range sizes {
			n := uint64(sz)%64 + 1
			rngs = append(rngs, rng{pos, pos + n})
			pos += n
		}
		// Apply a permutation derived from order.
		perm := make([]int, len(rngs))
		for i := range perm {
			perm[i] = i
		}
		for i, o := range order {
			j := int(o) % len(perm)
			perm[i%len(perm)], perm[j] = perm[j], perm[i%len(perm)]
		}
		var w watermark
		w.init()
		for _, idx := range perm {
			w.complete(rngs[idx].s, rngs[idx].e)
		}
		return w.level() == pos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random record sizes, consecutive single-threaded
// allocations never overlap and never cross a page boundary.
func TestQuickAllocationsNonOverlapping(t *testing.T) {
	f := func(rawSizes []uint16) bool {
		em := epoch.New(8)
		dev := device.NewMem(device.MemConfig{})
		defer dev.Close()
		l, err := New(Config{PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
			Mode: ModeHybrid, Device: dev, Epoch: em})
		if err != nil {
			return false
		}
		defer l.Close()
		g := em.Acquire()
		defer g.Release()
		if len(rawSizes) > 200 {
			rawSizes = rawSizes[:200]
		}
		type alloc struct {
			a    Address
			size uint64
		}
		var prev *alloc
		for _, rs := range rawSizes {
			size := (uint32(rs)%512 + 8) &^ 7
			a, err := l.Allocate(size, g)
			if err != nil {
				return false
			}
			if a%8 != 0 {
				return false
			}
			if a>>12 != (a+uint64(size)-1)>>12 {
				return false // crossed a page
			}
			if prev != nil && a < prev.a+prev.size && prev.a < a+uint64(size) {
				return false // overlap
			}
			prev = &alloc{a, uint64(size)}
			g.Refresh()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTailAddressDuringPageRoll(t *testing.T) {
	// Regression: while a page roll is in flight the tail word holds an
	// offset beyond the page size; the clamped offset must be ADDED to
	// the page base, not OR'd (off == pageSize collides with the page
	// number's lowest bit for odd pages, reporting a tail one full page
	// too low — which in append-only mode corrupted the read-only
	// boundary and let "in-place" updates race with flushes).
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	// Fill page 0 exactly and start page 1.
	for i := 0; i < 8; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
	}
	for l.TailAddress()>>12 != 1 {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a mid-roll tail word on an odd page: page 1, offset
	// beyond the 4 KB page.
	l.tailWord.Store(1<<32 | (l.pageSize + 24))
	if got, want := l.TailAddress(), uint64(2)<<12; got != want {
		t.Fatalf("mid-roll TailAddress = %#x, want %#x", got, want)
	}
	l.tailWord.Store(2<<32 | (l.pageSize + 24)) // even page: also next page start
	if got, want := l.TailAddress(), uint64(3)<<12; got != want {
		t.Fatalf("mid-roll TailAddress = %#x, want %#x", got, want)
	}
}

func TestRecoverToPositionsMarkers(t *testing.T) {
	em := epoch.New(8)
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	l, err := New(Config{PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		Mode: ModeHybrid, Device: dev, Epoch: em})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Pretend a previous incarnation flushed everything below 0x2345.
	if err := l.RecoverTo(FirstValidAddress, 0x2345); err != nil {
		t.Fatal(err)
	}
	// Allocation resumes at the start of the page after 0x2345.
	resume := uint64(0x3000)
	if l.TailAddress() != resume {
		t.Fatalf("tail = %#x, want %#x", l.TailAddress(), resume)
	}
	if l.HeadAddress() != resume || l.SafeReadOnlyAddress() != resume {
		t.Fatalf("head=%#x safeRO=%#x, want both %#x",
			l.HeadAddress(), l.SafeReadOnlyAddress(), resume)
	}
	if l.FlushedUntilAddress() != resume {
		t.Fatalf("flushed = %#x, want %#x", l.FlushedUntilAddress(), resume)
	}
	// The log is usable: allocate and wrap several buffers' worth.
	g := em.Acquire()
	defer g.Release()
	for i := 0; i < 8*8*3; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
		g.Refresh()
	}
}

func TestRecoverToRejectsUsedLog(t *testing.T) {
	l, em, _ := testLog(t, ModeHybrid, 8, 0.5)
	g := em.Acquire()
	defer g.Release()
	l.Allocate(64, g)
	if err := l.RecoverTo(FirstValidAddress, 0x1000); err == nil {
		t.Fatal("RecoverTo on a used log should fail")
	}
}

func TestRecoverToRejectsInMemory(t *testing.T) {
	em := epoch.New(4)
	l, err := New(Config{PageBits: 12, Mode: ModeInMemory, Epoch: em, MaxInMemoryPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.RecoverTo(FirstValidAddress, 0x1000); err == nil {
		t.Fatal("RecoverTo on an in-memory log should fail")
	}
}
