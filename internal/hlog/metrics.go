package hlog

import "repro/internal/metrics"

// Metrics is a point-in-time snapshot of the log's counters, marker
// addresses, and derived region sizes. Region sizes follow the partition
// begin ≤ head ≤ safeReadOnly ≤ readOnly ≤ tail (Fig 7 of the paper);
// because the markers are sampled independently a transient inversion is
// possible, so the subtractions saturate at zero.
type Metrics struct {
	// Marker addresses.
	BeginAddress        uint64
	HeadAddress         uint64
	SafeReadOnlyAddress uint64
	ReadOnlyAddress     uint64
	TailAddress         uint64
	FlushedUntil        uint64

	// Per-region byte sizes.
	MutableBytes  uint64 // [readOnly, tail): updated in place
	FuzzyBytes    uint64 // [safeReadOnly, readOnly): §6.2-6.3
	ReadOnlyBytes uint64 // [head, safeReadOnly): in memory, immutable
	StableBytes   uint64 // [begin, head): on the device only

	// Flush and eviction activity.
	FlushesIssued uint64
	FlushRetries  uint64
	FlushFailures uint64 // flush spans abandoned after the retry budget
	FlushedBytes  uint64
	FlushLatency  metrics.HistogramSnapshot
	EvictedPages  uint64
	ROShifts      uint64
	HeadShifts    uint64

	// Truncation activity (GC / compaction).
	BeginShifts    uint64 // begin address advances
	Truncations    uint64 // device truncates applied
	TruncatedBytes uint64 // bytes freed on the device
	TruncatedUntil uint64 // device truncation watermark

	// Poisoned reports an unwritable log tail (see ErrPoisoned); Retry
	// timers still pending are counted in RetryTimers.
	Poisoned    bool
	RetryTimers int

	// Stall time distributions.
	FrameWait      metrics.HistogramSnapshot // openPage blocked on eviction
	TailContention metrics.HistogramSnapshot // Allocate spun behind a page-opener
	FlushWait      metrics.HistogramSnapshot // WaitUntilFlushed stalls
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Metrics returns a snapshot of the log's instrumentation.
func (l *Log) Metrics() Metrics {
	begin := l.BeginAddress()
	head := l.HeadAddress()
	safeRO := l.SafeReadOnlyAddress()
	ro := l.ReadOnlyAddress()
	tail := l.TailAddress()
	return Metrics{
		BeginAddress:        begin,
		HeadAddress:         head,
		SafeReadOnlyAddress: safeRO,
		ReadOnlyAddress:     ro,
		TailAddress:         tail,
		FlushedUntil:        l.FlushedUntilAddress(),

		MutableBytes:  satSub(tail, ro),
		FuzzyBytes:    satSub(ro, safeRO),
		ReadOnlyBytes: satSub(safeRO, head),
		StableBytes:   satSub(head, begin),

		FlushesIssued: l.mx.flushesIssued.Load(),
		FlushRetries:  l.mx.flushRetries.Load(),
		FlushFailures: l.mx.flushFailures.Load(),
		FlushedBytes:  l.mx.flushedBytes.Load(),
		FlushLatency:  l.mx.flushLatency.Snapshot(),
		EvictedPages:  l.mx.evictedPages.Load(),
		ROShifts:      l.mx.roShifts.Load(),
		HeadShifts:    l.mx.headShifts.Load(),

		BeginShifts:    l.mx.beginShifts.Load(),
		Truncations:    l.mx.truncations.Load(),
		TruncatedBytes: l.mx.truncatedBytes.Load(),
		TruncatedUntil: l.TruncatedUntil(),

		Poisoned:    l.Poisoned(),
		RetryTimers: l.retryTimerCount(),

		FrameWait:      l.mx.frameWait.Snapshot(),
		TailContention: l.mx.tailContention.Snapshot(),
		FlushWait:      l.mx.flushWait.Snapshot(),
	}
}
