//go:build !mutate

package hlog

// Mutation switch for the linearizability gate (see
// internal/faster/mutation_gate_test.go). Normal builds compile with
// mutationsEnabled == false, so the mutated branch is dead code; the
// seeded-bug variant exists only under -tags mutate.
const mutationsEnabled = false

func mutSkipEpochBump() bool { return false }
