//go:build mutate

package hlog

import (
	"fmt"
	"sync/atomic"
)

// Seeded-bug variant for the linearizability mutation gate: skipping the
// epoch bump that gates the safe read-only shift. See
// internal/faster/mutation_gate_test.go.
const mutationsEnabled = true

var mutSkipBump atomic.Bool

func mutSkipEpochBump() bool { return mutSkipBump.Load() }

// EnableMutation turns on one seeded bug by name: "skip-epoch-bump"
// (read-only shifts publish the safe read-only offset immediately instead
// of waiting for every session to observe the shift, so lagging in-place
// updaters race copy-updates and flushes).
func EnableMutation(name string) {
	switch name {
	case "skip-epoch-bump":
		mutSkipBump.Store(true)
	default:
		panic(fmt.Sprintf("hlog: unknown mutation %q", name))
	}
}

// DisableMutations turns every seeded bug off.
func DisableMutations() { mutSkipBump.Store(false) }
