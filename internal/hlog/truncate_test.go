package hlog

import (
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/epoch"
)

// truncLog builds a hybrid log over a Faulty(Mem) device so tests can
// observe the exact device operations truncation issues.
func truncLog(t *testing.T, bufferPages int) (*Log, *epoch.Manager, *device.Faulty) {
	t.Helper()
	em := epoch.New(64)
	mem := device.NewMem(device.MemConfig{})
	dev := device.NewFaulty(mem)
	l, err := New(Config{
		PageBits:        12,
		BufferPages:     bufferPages,
		MutableFraction: 0.5,
		Mode:            ModeHybrid,
		Device:          dev,
		Epoch:           em,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); mem.Close() })
	return l, em, dev
}

// fillLog allocates until the head has advanced past FirstValidAddress,
// guaranteeing a non-empty stable region to truncate.
func fillLog(t *testing.T, l *Log, g *epoch.Guard) {
	t.Helper()
	for i := 0; i < 4*8*8; i++ {
		if _, err := l.Allocate(512, g); err != nil {
			t.Fatal(err)
		}
		g.Refresh()
		if l.HeadAddress() > 4*l.PageSize() {
			return
		}
	}
	if l.HeadAddress() <= FirstValidAddress {
		t.Skip("head did not advance enough")
	}
}

// TestTruncateOrderingUnderConcurrency is the regression test for the
// out-of-order device-truncate race: concurrent TruncateUntil callers
// could CAS begin monotonically but invoke dev.Truncate in the wrong
// order, so a truncate-to-low landing after a truncate-to-high
// resurrected the freed range. Device truncates must arrive strictly
// increasing regardless of the callers' schedule.
func TestTruncateOrderingUnderConcurrency(t *testing.T) {
	l, em, dev := truncLog(t, 8)
	g := em.Acquire()
	fillLog(t, l, g)
	g.Release()

	var mu sync.Mutex
	var offsets []uint64
	dev.SetHook(func(op device.Op, offset uint64, length int) error {
		if op == device.OpTruncate {
			mu.Lock()
			offsets = append(offsets, offset)
			// Stall low truncates so high ones queue up behind the
			// serialization, which is exactly where the old code let
			// them overtake.
			if offset < l.HeadAddress()/2 {
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
			}
			mu.Unlock()
		}
		return nil
	})

	head := l.HeadAddress()
	cuts := []Address{head / 8, head / 2, head / 4, head * 3 / 4, head / 3}
	var wg sync.WaitGroup
	for _, cut := range cuts {
		if cut == 0 {
			continue
		}
		wg.Add(1)
		go func(cut Address) {
			defer wg.Done()
			if err := l.TruncateUntil(cut); err != nil {
				t.Errorf("TruncateUntil(%#x): %v", cut, err)
			}
		}(cut)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(offsets) == 0 {
		t.Fatal("no device truncates observed")
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Fatalf("device truncates out of order: %#x after %#x (all: %#x)",
				offsets[i], offsets[i-1], offsets)
		}
	}
	want := head * 3 / 4
	if got := l.BeginAddress(); got != want {
		t.Fatalf("begin = %#x, want %#x", got, want)
	}
	if got := l.TruncatedUntil(); got != want {
		t.Fatalf("device watermark = %#x, want %#x", got, want)
	}
}

// TestTruncateWaitsForEpochDrain verifies the epoch-safety half of the
// fix: begin may move immediately, but the device truncate must not be
// applied while a straggler guard could still be reading the old range.
func TestTruncateWaitsForEpochDrain(t *testing.T) {
	l, em, _ := truncLog(t, 8)
	g := em.Acquire()
	fillLog(t, l, g)

	// g is now a straggler: active and never refreshed past the bump the
	// truncation is about to publish.
	cut := l.HeadAddress() / 2
	done := make(chan error, 1)
	go func() { done <- l.TruncateUntil(cut) }()

	// begin advances promptly (new reads are fenced off)…
	deadline := time.Now().Add(2 * time.Second)
	for l.BeginAddress() != cut {
		if time.Now().After(deadline) {
			t.Fatal("begin never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	// …but the device must stay untouched while the straggler is live.
	time.Sleep(20 * time.Millisecond)
	if got := l.TruncatedUntil(); got != 0 {
		t.Fatalf("device truncated to %#x while a guard was still active", got)
	}

	g.Park()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := l.TruncatedUntil(); got != cut {
		t.Fatalf("device watermark = %#x, want %#x", got, cut)
	}
	g.Unpark()
	g.Release()
}

// TestApplyDeviceTruncationClamps verifies the deferred-truncation path
// used when a checkpoint's durable Begin lags the in-memory one: the
// device truncate is clamped to the caller's limit and catches up later.
func TestApplyDeviceTruncationClamps(t *testing.T) {
	l, em, _ := truncLog(t, 8)
	g := em.Acquire()
	fillLog(t, l, g)
	g.Park()

	cut := l.HeadAddress() / 2
	limit := cut / 2
	if advanced, err := l.ShiftBeginAddress(cut, nil); err != nil || !advanced {
		t.Fatalf("ShiftBeginAddress = (%v, %v)", advanced, err)
	}
	if err := l.ApplyDeviceTruncation(limit); err != nil {
		t.Fatal(err)
	}
	if got := l.TruncatedUntil(); got != limit {
		t.Fatalf("device watermark = %#x, want clamped %#x", got, limit)
	}
	// Re-applying a lower limit must be a no-op, not a regression.
	if err := l.ApplyDeviceTruncation(limit / 2); err != nil {
		t.Fatal(err)
	}
	if got := l.TruncatedUntil(); got != limit {
		t.Fatalf("device watermark regressed to %#x", l.TruncatedUntil())
	}
	// Raising the limit catches the device up to the epoch-safe begin.
	if err := l.ApplyDeviceTruncation(l.TailAddress()); err != nil {
		t.Fatal(err)
	}
	if got := l.TruncatedUntil(); got != cut {
		t.Fatalf("device watermark = %#x, want %#x", got, cut)
	}
	g.Unpark()
	g.Release()
}
