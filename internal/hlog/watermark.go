package hlog

import (
	"sync"
	"sync/atomic"
)

// watermark tracks the contiguous completion level of a stream of byte
// ranges that are issued in order but may complete out of order (page
// flushes serviced by a pool of device workers). level() is the address
// below which every issued range has completed.
//
// Completions may also arrive more than once or overlap: a flush that
// fails with a transient device error is retried, and the retry span can
// duplicate or straddle ranges that other workers have completed in the
// meantime. complete() therefore merges arbitrary overlapping, duplicate
// and out-of-order ranges; only genuinely missing bytes hold the level
// back.
type watermark struct {
	mu      sync.Mutex
	pending map[uint64]uint64 // start -> end of completed, disjoint ranges above lvl
	lvl     atomic.Uint64
}

func (w *watermark) init() { w.pending = make(map[uint64]uint64) }

// level returns the contiguous completion watermark.
func (w *watermark) level() uint64 { return w.lvl.Load() }

// complete records that [start, end) has finished and advances the level
// across any ranges that are now contiguous.
func (w *watermark) complete(start, end uint64) {
	if end <= start {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	lvl := w.lvl.Load()
	if end <= lvl {
		return // entirely below the level already: duplicate completion
	}
	if start < lvl {
		start = lvl // the part below the level is already accounted for
	}
	// Absorb every pending range that overlaps or abuts [start, end).
	// Growing the interval can create new overlaps (and map iteration
	// order is unspecified), so repeat until a full pass absorbs nothing.
	for merged := true; merged; {
		merged = false
		for s, e := range w.pending {
			if s <= end && start <= e {
				delete(w.pending, s)
				if s < start {
					start = s
				}
				if e > end {
					end = e
				}
				merged = true
			}
		}
	}
	w.pending[start] = end
	// Pending ranges are disjoint, non-adjacent and start at or above the
	// level, so the level advances by consuming exact-start matches.
	for {
		next, ok := w.pending[lvl]
		if !ok {
			break
		}
		delete(w.pending, lvl)
		lvl = next
	}
	w.lvl.Store(lvl)
}
