package hlog

import (
	"sync"
	"sync/atomic"
)

// watermark tracks the contiguous completion level of a stream of byte
// ranges that are issued in order but may complete out of order (page
// flushes serviced by a pool of device workers). level() is the address
// below which every issued range has completed.
type watermark struct {
	mu      sync.Mutex
	pending map[uint64]uint64 // start -> end of completed, non-contiguous ranges
	lvl     atomic.Uint64
}

func (w *watermark) init() { w.pending = make(map[uint64]uint64) }

// level returns the contiguous completion watermark.
func (w *watermark) level() uint64 { return w.lvl.Load() }

// complete records that [start, end) has finished and advances the level
// across any ranges that are now contiguous.
func (w *watermark) complete(start, end uint64) {
	if end <= start {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.pending[start]; !ok || end > prev {
		w.pending[start] = end
	}
	lvl := w.lvl.Load()
	for {
		next, ok := w.pending[lvl]
		if !ok {
			break
		}
		delete(w.pending, lvl)
		lvl = next
	}
	w.lvl.Store(lvl)
}
