package hlog

import (
	"math/rand"
	"sync"
	"testing"
)

func newTestWatermark() *watermark {
	w := &watermark{}
	w.init()
	return w
}

func TestWatermarkInOrder(t *testing.T) {
	w := newTestWatermark()
	w.complete(0, 10)
	w.complete(10, 30)
	if got := w.level(); got != 30 {
		t.Fatalf("level = %d, want 30", got)
	}
}

func TestWatermarkOutOfOrder(t *testing.T) {
	w := newTestWatermark()
	w.complete(20, 30)
	if got := w.level(); got != 0 {
		t.Fatalf("level = %d, want 0 before gap fills", got)
	}
	w.complete(0, 10)
	if got := w.level(); got != 10 {
		t.Fatalf("level = %d, want 10", got)
	}
	w.complete(10, 20)
	if got := w.level(); got != 30 {
		t.Fatalf("level = %d, want 30", got)
	}
}

// TestWatermarkOverlapStraddlesLevel is the device-retry scenario that
// wedged the old exact-adjacency implementation: a retried flush span
// straddles the already-advanced level, so its start never matches the
// level exactly and the bytes beyond it were lost forever.
func TestWatermarkOverlapStraddlesLevel(t *testing.T) {
	w := newTestWatermark()
	w.complete(0, 100)
	if got := w.level(); got != 100 {
		t.Fatalf("level = %d, want 100", got)
	}
	w.complete(50, 150) // retry overlapping the completed prefix
	if got := w.level(); got != 150 {
		t.Fatalf("level = %d, want 150 (overlapping completion wedged the watermark)", got)
	}
}

func TestWatermarkDuplicateAndOverlapPending(t *testing.T) {
	w := newTestWatermark()
	w.complete(100, 200)
	w.complete(100, 200) // exact duplicate while still pending
	w.complete(150, 300) // overlap extending a pending range
	w.complete(250, 260) // subset of pending
	if got := w.level(); got != 0 {
		t.Fatalf("level = %d, want 0 (gap [0,100) outstanding)", got)
	}
	w.complete(0, 100)
	if got := w.level(); got != 300 {
		t.Fatalf("level = %d, want 300", got)
	}
	w.complete(0, 300) // full-span duplicate after the fact
	if got := w.level(); got != 300 {
		t.Fatalf("level = %d after duplicate, want 300", got)
	}
	if len(w.pending) != 0 {
		t.Fatalf("pending map leaked %d entries: %v", len(w.pending), w.pending)
	}
}

func TestWatermarkBridgingRange(t *testing.T) {
	w := newTestWatermark()
	w.complete(0, 10)
	w.complete(40, 50)
	w.complete(5, 45) // one completion bridging level and a pending island
	if got := w.level(); got != 50 {
		t.Fatalf("level = %d, want 50", got)
	}
}

// TestWatermarkPropertyRandom issues every page of a span as completions
// in random order, with random duplicates and random overlapping retry
// spans interleaved, concurrently from several workers. Whatever the
// schedule, once all pages are in the level must equal the span end and
// no pending state may leak.
func TestWatermarkPropertyRandom(t *testing.T) {
	const (
		pages    = 256
		pageSize = 64
		span     = pages * pageSize
	)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		w := newTestWatermark()

		type rng2 struct{ start, end uint64 }
		var ranges []rng2
		// Every page exactly once (shuffled) — the genuine completions.
		perm := rng.Perm(pages)
		for _, p := range perm {
			ranges = append(ranges, rng2{uint64(p) * pageSize, uint64(p+1) * pageSize})
		}
		// Plus random duplicate/overlapping retry spans.
		for i := 0; i < pages/2; i++ {
			s := rng.Uint64() % span
			e := s + 1 + rng.Uint64()%(4*pageSize)
			if e > span {
				e = span
			}
			ranges = append(ranges, rng2{s, e})
		}
		rng.Shuffle(len(ranges), func(i, j int) { ranges[i], ranges[j] = ranges[j], ranges[i] })

		workers := 4
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				for i := k; i < len(ranges); i += workers {
					w.complete(ranges[i].start, ranges[i].end)
				}
			}(k)
		}
		wg.Wait()
		if got := w.level(); got != span {
			t.Fatalf("trial %d: level = %d, want %d", trial, got, span)
		}
		if len(w.pending) != 0 {
			t.Fatalf("trial %d: pending leaked: %v", trial, w.pending)
		}
	}
}
