package index

import (
	"sync/atomic"
	"testing"
)

// The index packs a 48-bit address below a tag/flag field; any address bit
// above bit 47 that survives into an entry word corrupts the tag. These
// tests pin the boundary behaviour at the top of the address space.

const boundaryRecSize = 64 // a typical record allocation

// boundaryAddr is the highest address a record of boundaryRecSize can
// occupy without overflowing the 48-bit space.
const boundaryAddr = uint64(1)<<AddressBits - boundaryRecSize

func TestEntryAddressBoundary(t *testing.T) {
	idx, err := New(Config{InitialBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	hash := uint64(0xdeadbeefcafe1234)

	e, addr := idx.FindOrCreateEntry(hash)
	if addr != 0 {
		t.Fatalf("fresh entry address = %#x, want 0", addr)
	}
	if !e.CompareAndSwapAddress(0, boundaryAddr) {
		t.Fatal("CAS to boundary address failed")
	}

	_, got, ok := idx.FindEntry(hash)
	if !ok {
		t.Fatal("entry vanished after boundary CAS")
	}
	if got != boundaryAddr {
		t.Fatalf("address round-trip = %#x, want %#x", got, boundaryAddr)
	}
	// The tag/meta field must be exactly what the insert wrote.
	if w := e.Load(); w&^AddressMask != e.meta {
		t.Fatalf("entry meta corrupted: word=%#x meta=%#x", w, e.meta)
	}
}

func TestEntryCASMasksStrayHighBits(t *testing.T) {
	idx, err := New(Config{InitialBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	hash := uint64(0x123456789abcdef0)
	e, _ := idx.FindOrCreateEntry(hash)

	// A caller bug that leaks bits above bit 47 must not reach the slot.
	stray := boundaryAddr | 1<<50 | 1<<63
	if !e.CompareAndSwapAddress(0, stray) {
		t.Fatal("CAS failed")
	}
	if got := e.Address(); got != boundaryAddr {
		t.Fatalf("address = %#x, want %#x (stray bits must be masked)", got, boundaryAddr)
	}
	if w := e.Load(); w&tentativeBit != 0 {
		t.Fatalf("stray bit 63 leaked into the tentative bit: word=%#x", w)
	}
	if w := e.Load(); w&^AddressMask != e.meta {
		t.Fatalf("tag field corrupted: word=%#x meta=%#x", w, e.meta)
	}
}

func TestUpdateAddressesMasksStrayHighBits(t *testing.T) {
	idx, err := New(Config{InitialBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	hashes := []uint64{0x1111, 0x2222 << 32, 0x3333 << 48}
	for _, h := range hashes {
		e, _ := idx.FindOrCreateEntry(h)
		if !e.CompareAndSwapAddress(0, 100) {
			t.Fatalf("seed CAS failed for %#x", h)
		}
	}

	// A GC callback that returns an address with garbage above bit 47
	// (e.g. arithmetic that wrapped) must not corrupt tags.
	idx.UpdateAddresses(func(addr uint64) uint64 {
		return boundaryAddr | 1<<52 | 1<<62
	})

	seen := 0
	idx.ForEachEntry(func(addr uint64) {
		seen++
		if addr != boundaryAddr {
			t.Errorf("entry address = %#x, want %#x", addr, boundaryAddr)
		}
	})
	if seen != len(hashes) {
		t.Fatalf("ForEachEntry visited %d entries, want %d", seen, len(hashes))
	}
	for _, h := range hashes {
		if _, got, ok := idx.FindEntry(h); !ok || got != boundaryAddr {
			t.Errorf("FindEntry(%#x) = (%#x, %v), want (%#x, true) — tag corrupted?", h, got, ok, boundaryAddr)
		}
	}
}

func TestEntryLiveAtBoundary(t *testing.T) {
	// A raw word whose address field is all ones must still parse as a
	// live entry and mask back cleanly.
	w := occupiedBit | (uint64(0x2a) << tagShift) | AddressMask
	var slot uint64
	atomic.StoreUint64(&slot, w)
	if !entryLive(w) {
		t.Fatal("boundary word not live")
	}
	if EntryAddress(w) != AddressMask {
		t.Fatalf("EntryAddress = %#x, want %#x", EntryAddress(w), AddressMask)
	}
}
