package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync/atomic"
)

// Fuzzy checkpointing (§3.3, §6.5): because every index mutation is a
// 64-bit CAS, a checkpoint thread can read the table word-by-word without
// any read locks. The resulting image is fuzzy — it interleaves with
// concurrent updates — and is repaired during recovery by replaying the
// HybridLog records between the checkpoint's bracket addresses (handled by
// the store layer).
//
// Format (little endian):
//
//	magic   uint64
//	tagBits uint64
//	size    uint64  (main buckets)
//	count   uint64  (number of entry records that follow)
//	count × { offset uint64, entryWord uint64 }
//	crc32   uint64  (IEEE, over everything before it)

const checkpointMagic uint64 = 0xFA57E81D000C0DE5

// errCorrupt is wrapped into corrupt-checkpoint errors.
var errCorrupt = errors.New("index: corrupt checkpoint")

// WriteCheckpoint serializes a fuzzy snapshot of the index to w. It may
// run concurrently with index mutations; entries captured mid-insert
// (tentative) are skipped. Resizing must not be in progress.
func (idx *Index) WriteCheckpoint(w io.Writer) error {
	return idx.WriteCheckpointMapped(w, func(addr uint64) (uint64, bool) { return addr, true })
}

// WriteCheckpointMapped is WriteCheckpoint with every live entry's address
// rewritten through mapAddr before serialization. The store uses it to
// keep volatile addresses (read-cache redirections) out of durable index
// images: mapAddr returns the address to persist, or ok=false to omit the
// entry entirely. mapAddr runs inside the fuzzy scan and must not mutate
// the index.
func (idx *Index) WriteCheckpointMapped(w io.Writer, mapAddr func(addr uint64) (uint64, bool)) error {
	if phase, _ := unpackStatus(idx.status.Load()); phase != phaseStable {
		return errors.New("index: cannot checkpoint during resize")
	}
	t := idx.activeTable()

	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	writeU64 := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}

	for _, v := range []uint64{checkpointMagic, uint64(idx.tagBits), t.size} {
		if err := writeU64(v); err != nil {
			return err
		}
	}

	// Two passes would race worse with writers; instead buffer entries.
	type rec struct{ off, word uint64 }
	var recs []rec
	for off := range t.buckets {
		b := &t.buckets[off]
		for {
			for j := 0; j < entriesPerBucket; j++ {
				w := atomic.LoadUint64(&b[j])
				if entryLive(w) {
					addr, ok := mapAddr(w & AddressMask)
					if !ok {
						continue
					}
					recs = append(recs, rec{uint64(off), w&^AddressMask | addr&AddressMask})
				}
			}
			ov := atomic.LoadUint64(&b[7])
			if ov == 0 {
				break
			}
			b = t.overflowBucket(ov)
		}
	}
	if err := writeU64(uint64(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		if err := writeU64(r.off); err != nil {
			return err
		}
		if err := writeU64(r.word); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], uint64(crc.Sum32()))
	_, err := w.Write(tail[:])
	return err
}

// ReadCheckpoint reconstructs an index from a checkpoint image.
func ReadCheckpoint(r io.Reader) (*Index, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)
	// CRC is fed explicitly per word (not via TeeReader) because bufio
	// read-ahead would otherwise mix the trailer into the digest.
	readU64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		crc.Write(buf[:])
		return binary.LittleEndian.Uint64(buf[:]), nil
	}

	magic, err := readU64()
	if err != nil {
		return nil, err
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", errCorrupt, magic)
	}
	tagBits, err := readU64()
	if err != nil {
		return nil, err
	}
	size, err := readU64()
	if err != nil {
		return nil, err
	}
	count, err := readU64()
	if err != nil {
		return nil, err
	}

	idx, err := New(Config{InitialBuckets: size, TagBits: uint(tagBits)})
	if err != nil {
		return nil, err
	}
	t := idx.activeTable()
	if t.size != size {
		return nil, fmt.Errorf("%w: size %d not a power of two", errCorrupt, size)
	}
	for i := uint64(0); i < count; i++ {
		off, err := readU64()
		if err != nil {
			return nil, err
		}
		word, err := readU64()
		if err != nil {
			return nil, err
		}
		if off >= size {
			return nil, fmt.Errorf("%w: offset %d out of range", errCorrupt, off)
		}
		idx.insertMigrated(t, off, word)
	}
	wantCRC := uint64(crc.Sum32())
	var tail [8]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(tail[:]); got != wantCRC {
		return nil, fmt.Errorf("%w: crc mismatch", errCorrupt)
	}
	return idx, nil
}
