// Package index implements the FASTER hash index of Section 3: a
// concurrent, latch-free, resizable hash table from key hashes to 48-bit
// record addresses. The index stores no keys; collisions beyond its
// (offset, tag) resolution are handled by the record linked lists of the
// store layered above it.
//
// # Layout
//
// The index is an array of 2^k cache-line-sized buckets. A bucket holds
// seven 8-byte entries plus one overflow-bucket pointer (Fig 2 of the
// paper). Each entry packs, from the top bit down:
//
//	bit 63     tentative bit (two-phase insert, §3.2)
//	bit 62     occupied bit (distinguishes a claimed entry whose tag and
//	           address are both zero from an empty slot)
//	bits 48..61 tag (up to 14 bits; the paper uses 15 by omitting the
//	           occupied bit — §7.2.2 shows small tags cost little)
//	bits 0..47 record address
//
// The tag is drawn from the top bits of the hash and the bucket offset
// from the bottom bits, so they stay independent of the table size and
// survive resizing.
//
// All entry manipulation is by 64-bit compare-and-swap; the index is never
// locked. Inserting a new tag uses the paper's two-phase tentative-bit
// algorithm to preserve the invariant that each (offset, tag) pair has at
// most one non-tentative entry.
package index

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

const (
	// entriesPerBucket is the number of hash entries per 64-byte bucket;
	// the eighth word is the overflow pointer.
	entriesPerBucket = 7

	tentativeBit uint64 = 1 << 63
	occupiedBit  uint64 = 1 << 62

	// AddressBits is the width of record addresses stored in entries.
	AddressBits = 48
	// AddressMask extracts the address from an entry.
	AddressMask uint64 = 1<<AddressBits - 1

	tagShift = AddressBits
	// MaxTagBits is the widest supported tag.
	MaxTagBits = 14
)

// bucket is one cache line: seven entries and an overflow pointer. The
// overflow word holds 1+index into the overflow arena (0 = none).
type bucket [8]uint64

// A bucket must stay exactly one 64-byte cache line: neighboring
// buckets sharing a line would false-share their CAS traffic. Both
// arrays are unsatisfiable if the size drifts.
var (
	_ [64 - len(bucket{})*8]byte
	_ [len(bucket{})*8 - 64]byte
)

// table is one version of the hash table (resizing keeps two).
type table struct {
	size    uint64 // number of main buckets, power of two
	buckets []bucket

	// Overflow buckets are allocated from a chunked arena so bucket
	// pointers stay stable while the arena grows.
	ovMu     sync.Mutex
	ovChunks [][]bucket
	ovNext   atomic.Uint64
	ovFree   atomic.Uint64 // head of free list (1+index), 0 if empty
}

const ovChunkSize = 1024

func newTable(size uint64) *table {
	return &table{size: size, buckets: make([]bucket, size)}
}

// overflowBucket returns the overflow bucket for handle h (h = 1+index).
func (t *table) overflowBucket(h uint64) *bucket {
	i := h - 1
	return &t.ovChunks[i/ovChunkSize][i%ovChunkSize]
}

// allocOverflow returns a handle to a zeroed overflow bucket.
func (t *table) allocOverflow() uint64 {
	// Pop from the free list first. Freed buckets are only pushed while
	// zeroed, and handles are never reused concurrently with a pop
	// because pushes happen under the index invariants (bucket
	// unreachable), so the simple CAS loop suffices.
	for {
		h := t.ovFree.Load()
		if h == 0 {
			break
		}
		b := t.overflowBucket(h)
		next := atomic.LoadUint64(&b[7])
		if t.ovFree.CompareAndSwap(h, next) {
			atomic.StoreUint64(&b[7], 0)
			return h
		}
	}
	t.ovMu.Lock()
	defer t.ovMu.Unlock()
	n := t.ovNext.Load()
	if int(n/ovChunkSize) == len(t.ovChunks) {
		t.ovChunks = append(t.ovChunks, make([]bucket, ovChunkSize))
	}
	t.ovNext.Store(n + 1)
	return n + 1
}

// Config configures an Index.
type Config struct {
	// InitialBuckets is the starting number of main buckets (rounded up
	// to a power of two). The paper sizes this at #keys/2.
	InitialBuckets uint64
	// TagBits is the tag width in bits, 0..14. Default 14.
	TagBits uint
	// MaxResizeChunks caps the number of migration chunks (default 256).
	MaxResizeChunks int
}

// Index is the FASTER hash index.
type Index struct {
	tagBits  uint
	tagMask  uint64 // tag field mask, already shifted into position
	tagCount uint64 // number of distinct tags

	// status packs the resize phase and active version; see resize.go.
	status atomic.Uint32

	tables [2]*table // [version] — during resize both are live

	resize resizeState

	mx struct {
		tentativeConflicts metrics.Counter // two-phase insert backoffs (§3.2)
		insertRetries      metrics.Counter // lost slot claims / chain extensions
		resizes            metrics.Counter // completed Grow cycles
	}
}

// New creates an index with the given configuration.
func New(cfg Config) (*Index, error) {
	if cfg.InitialBuckets == 0 {
		cfg.InitialBuckets = 1024
	}
	size := uint64(1) << bits.Len64(cfg.InitialBuckets-1)
	tagBits := cfg.TagBits
	if tagBits == 0 {
		tagBits = MaxTagBits
	}
	if tagBits > MaxTagBits {
		return nil, fmt.Errorf("index: TagBits %d > max %d", tagBits, MaxTagBits)
	}
	idx := &Index{
		tagBits:  tagBits,
		tagMask:  (1<<tagBits - 1) << tagShift,
		tagCount: 1 << tagBits,
	}
	idx.tables[0] = newTable(size)
	idx.resize.maxChunks = cfg.MaxResizeChunks
	if idx.resize.maxChunks == 0 {
		idx.resize.maxChunks = 256
	}
	idx.status.Store(packStatus(phaseStable, 0))
	return idx, nil
}

// NewForKeys sizes the index at keys/2 buckets, the paper's default.
func NewForKeys(keys uint64) (*Index, error) {
	n := keys / 2
	if n < 64 {
		n = 64
	}
	return New(Config{InitialBuckets: n})
}

// TagBits returns the configured tag width. TagZero reports whether tags
// are disabled entirely (TagBits 0 is expressed as tagMask 0 internally
// only via NewWithZeroTag; see ablation helpers).
func (idx *Index) TagBits() uint { return idx.tagBits }

// Size returns the number of main buckets of the active table.
func (idx *Index) Size() uint64 { return idx.activeTable().size }

func (idx *Index) activeTable() *table {
	_, v := unpackStatus(idx.status.Load())
	return idx.tables[v]
}

// tagOf extracts the (shifted) tag field for hash.
func (idx *Index) tagOf(hash uint64) uint64 {
	return (hash >> (64 - idx.tagBits) << tagShift) & idx.tagMask
}

// offsetOf extracts the bucket offset for hash in table t.
func offsetOf(t *table, hash uint64) uint64 { return hash & (t.size - 1) }

// EntryAddress extracts the record address from an entry value.
func EntryAddress(e uint64) uint64 { return e & AddressMask }

// entryLive reports whether e is a visible (non-tentative, occupied) entry.
func entryLive(e uint64) bool {
	return e != 0 && e&tentativeBit == 0 && e&occupiedBit != 0
}

// ErrNotFound is returned by Delete when no entry matches.
var ErrNotFound = errors.New("index: entry not found")

// Entry is a stable reference to one hash-bucket slot. The store reads the
// address, traverses records, and later CASes a new address into the slot.
type Entry struct {
	slot *uint64
	// meta holds the occupied|tag bits that every new value must carry.
	meta uint64
}

// Address returns the current record address in the slot.
func (e Entry) Address() uint64 { return EntryAddress(atomic.LoadUint64(e.slot)) }

// Load returns the raw current entry word.
func (e Entry) Load() uint64 { return atomic.LoadUint64(e.slot) }

// CompareAndSwapAddress installs newAddr if the slot still carries oldAddr
// with this entry's tag. It fails if the entry was deleted, retagged or
// poisoned by a resize.
func (e Entry) CompareAndSwapAddress(oldAddr, newAddr uint64) bool {
	oldWord := e.meta | (oldAddr & AddressMask)
	newWord := e.meta | (newAddr & AddressMask)
	return atomic.CompareAndSwapUint64(e.slot, oldWord, newWord)
}

// CompareAndDelete zeroes the slot if it still carries oldAddr, freeing it
// for future inserts (§3.2 "Finding and Deleting an Entry").
func (e Entry) CompareAndDelete(oldAddr uint64) bool {
	oldWord := e.meta | (oldAddr & AddressMask)
	return atomic.CompareAndSwapUint64(e.slot, oldWord, 0)
}

// Prefetch touches the bucket cache line for each hash, back-to-back.
// The loads carry no dependencies on one another, so on a table larger
// than cache their misses overlap in the memory system; the FindEntry
// calls that follow hit warm lines. It is purely a performance hint:
// during a resize a touch may land in the table about to be retired,
// which costs nothing but the load.
func (idx *Index) Prefetch(hashes []uint64) {
	t := idx.activeTable()
	for _, h := range hashes {
		_ = atomic.LoadUint64(&t.buckets[offsetOf(t, h)][0])
	}
}

// FindEntry locates the live entry for hash, returning it and its current
// address. ok is false if no entry exists. The chunk pin taken by beginOp
// is held across the scan so a concurrent resize cannot poison the chain
// mid-traversal.
func (idx *Index) FindEntry(hash uint64) (e Entry, addr uint64, ok bool) {
	t, pinned := idx.beginOp(hash)
	defer idx.endOp(pinned)
	tag := idx.tagOf(hash)
	b := &t.buckets[offsetOf(t, hash)]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			w := atomic.LoadUint64(&b[i])
			if entryLive(w) && w&idx.tagMask == tag {
				return Entry{slot: &b[i], meta: occupiedBit | tag}, w & AddressMask, true
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			return Entry{}, 0, false
		}
		b = t.overflowBucket(ov)
	}
}

// FindOrCreateEntry locates the live entry for hash or inserts one with
// address 0 using the two-phase tentative algorithm of §3.2. The returned
// address is 0 for a fresh entry.
func (idx *Index) FindOrCreateEntry(hash uint64) (Entry, uint64) {
	for {
		t, pinned := idx.beginOp(hash)
		e, addr, ok := idx.findOrCreateOnce(t, hash)
		idx.endOp(pinned)
		if ok {
			return e, addr
		}
	}
}

// findOrCreateOnce attempts one pass of the two-phase insert on table t.
// ok is false when the operation must be retried (lost race, duplicate
// backoff, chain extension, or resize poisoning).
func (idx *Index) findOrCreateOnce(t *table, hash uint64) (Entry, uint64, bool) {
	tag := idx.tagOf(hash)
	meta := occupiedBit | tag
	first := &t.buckets[offsetOf(t, hash)]

	// Pass 1: look for an existing live entry; remember the first empty
	// slot in chain order (the insert target).
	var free *uint64
	b := first
	for {
		for i := 0; i < entriesPerBucket; i++ {
			w := atomic.LoadUint64(&b[i])
			if entryLive(w) && w&idx.tagMask == tag {
				return Entry{slot: &b[i], meta: meta}, w & AddressMask, true
			}
			if w == 0 && free == nil {
				free = &b[i]
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			break
		}
		b = t.overflowBucket(ov)
	}
	if free == nil {
		// Chain full: extend it with a fresh overflow bucket. The CAS
		// may lose to a concurrent extender; retry either way.
		idx.mx.insertRetries.Inc()
		h := t.allocOverflow()
		if !atomic.CompareAndSwapUint64(&b[7], 0, h) {
			t.freeOverflow(h)
		}
		return Entry{}, 0, false
	}
	// Phase 1: claim the slot tentatively. Entries with the tentative bit
	// set are invisible to concurrent reads and updates.
	tentative := tentativeBit | meta
	if !atomic.CompareAndSwapUint64(free, 0, tentative) {
		idx.mx.insertRetries.Inc()
		return Entry{}, 0, false
	}
	// Phase 2: rescan the whole chain for another entry (tentative or
	// live) with our tag; if found, back off and retry (Fig 3b).
	dup := false
	b = first
scan:
	for {
		for i := 0; i < entriesPerBucket; i++ {
			w := atomic.LoadUint64(&b[i])
			if &b[i] != free && w&occupiedBit != 0 && w&idx.tagMask == tag {
				dup = true
				break scan
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			break
		}
		b = t.overflowBucket(ov)
	}
	if dup {
		idx.mx.tentativeConflicts.Inc()
		atomic.StoreUint64(free, 0)
		return Entry{}, 0, false
	}
	// Finalize: clear the tentative bit.
	if !atomic.CompareAndSwapUint64(free, tentative, meta) {
		// Poisoned by a concurrent resize migration; the retry routes
		// to the new table.
		return Entry{}, 0, false
	}
	return Entry{slot: free, meta: meta}, 0, true
}

// freeOverflow pushes an unused overflow bucket back on the free list.
// The bucket must be unreachable and zero except possibly its link word.
func (t *table) freeOverflow(h uint64) {
	b := t.overflowBucket(h)
	for {
		head := t.ovFree.Load()
		atomic.StoreUint64(&b[7], head)
		if t.ovFree.CompareAndSwap(head, h) {
			return
		}
	}
}

// Delete removes the live entry for hash regardless of its address.
// Record-level deletes normally go through Entry.CompareAndDelete; this
// form supports administrative removal.
func (idx *Index) Delete(hash uint64) error {
	for {
		e, addr, ok := idx.FindEntry(hash)
		if !ok {
			return ErrNotFound
		}
		if e.CompareAndDelete(addr) {
			return nil
		}
	}
}

// ForEachEntry invokes fn for every live entry in the active table. Used
// by recovery, GC sweeps and tests; runs concurrently with mutations and
// sees a fuzzy snapshot.
func (idx *Index) ForEachEntry(fn func(addr uint64)) {
	t := idx.activeTable()
	for i := range t.buckets {
		b := &t.buckets[i]
		for {
			for j := 0; j < entriesPerBucket; j++ {
				w := atomic.LoadUint64(&b[j])
				if entryLive(w) {
					fn(w & AddressMask)
				}
			}
			ov := atomic.LoadUint64(&b[7])
			if ov == 0 {
				break
			}
			b = t.overflowBucket(ov)
		}
	}
}

// UpdateAddresses rewrites every live entry's address through fn (used by
// log-truncation GC to drop dangling addresses: fn returning 0 deletes the
// entry). Not concurrent-safe with writers; callers quiesce first.
func (idx *Index) UpdateAddresses(fn func(addr uint64) uint64) {
	t := idx.activeTable()
	for i := range t.buckets {
		b := &t.buckets[i]
		for {
			for j := 0; j < entriesPerBucket; j++ {
				w := atomic.LoadUint64(&b[j])
				if entryLive(w) {
					// Mask the callback's result: an address with stray
					// bits above bit 47 would leak into the tag/flag
					// field and corrupt the entry.
					newAddr := fn(w&AddressMask) & AddressMask
					if newAddr == 0 {
						atomic.StoreUint64(&b[j], 0)
					} else if newAddr != w&AddressMask {
						atomic.StoreUint64(&b[j], w&^AddressMask|newAddr)
					}
				}
			}
			ov := atomic.LoadUint64(&b[7])
			if ov == 0 {
				break
			}
			b = t.overflowBucket(ov)
		}
	}
}

// Count returns the number of live entries (O(table size); for tests and
// stats).
func (idx *Index) Count() uint64 {
	var n uint64
	idx.ForEachEntry(func(uint64) { n++ })
	return n
}

// ChainHistogramBuckets is the size of the Metrics chain-length
// distribution; the last cell aggregates all longer chains.
const ChainHistogramBuckets = 8

// Metrics is a snapshot of the index instrumentation: structural shape
// (bucket count, live entries, overflow-chain length distribution),
// latch-free contention counters (tentative-bit conflicts, lost insert
// CASes), and resize progress (Appendix B).
type Metrics struct {
	Buckets uint64 // main buckets in the active table
	Entries uint64 // live entries (fuzzy under concurrent mutation)
	TagBits uint

	// ChainLengths[i] counts main buckets whose bucket chain (main +
	// overflow) is i+1 buckets long; the last cell aggregates longer
	// chains. MaxChain is the longest chain seen.
	ChainLengths    [ChainHistogramBuckets]uint64
	MaxChain        int
	OverflowBuckets uint64 // overflow buckets carved from the arena

	TentativeConflicts uint64
	InsertRetries      uint64

	Resizes           uint64 // completed Grow cycles
	ResizeActive      bool
	ResizeChunksDone  int
	ResizeChunksTotal int
}

// Metrics scans the active table (O(buckets), like Count) and returns a
// snapshot. Safe to run concurrently with mutations; the structural
// numbers are a fuzzy snapshot.
func (idx *Index) Metrics() Metrics {
	t := idx.activeTable()
	m := Metrics{
		Buckets:            t.size,
		TagBits:            idx.tagBits,
		OverflowBuckets:    t.ovNext.Load(),
		TentativeConflicts: idx.mx.tentativeConflicts.Load(),
		InsertRetries:      idx.mx.insertRetries.Load(),
		Resizes:            idx.mx.resizes.Load(),
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		chain := 1
		for {
			for j := 0; j < entriesPerBucket; j++ {
				if entryLive(atomic.LoadUint64(&b[j])) {
					m.Entries++
				}
			}
			ov := atomic.LoadUint64(&b[7])
			if ov == 0 {
				break
			}
			chain++
			b = t.overflowBucket(ov)
		}
		cell := chain - 1
		if cell >= ChainHistogramBuckets {
			cell = ChainHistogramBuckets - 1
		}
		m.ChainLengths[cell]++
		if chain > m.MaxChain {
			m.MaxChain = chain
		}
	}
	if phase, _ := unpackStatus(idx.status.Load()); phase != phaseStable {
		r := &idx.resize
		m.ResizeActive = true
		m.ResizeChunksTotal = r.numChunks
		for c := range r.migrated {
			if r.migrated[c].Load() == 2 {
				m.ResizeChunksDone++
			}
		}
	}
	return m
}
