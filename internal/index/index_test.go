package index

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
	"repro/internal/xhash"
)

func newTestIndex(t *testing.T, buckets uint64) *Index {
	t.Helper()
	idx, err := New(Config{InitialBuckets: buckets})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestFindOnEmptyIndex(t *testing.T) {
	idx := newTestIndex(t, 64)
	if _, _, ok := idx.FindEntry(xhash.Uint64(42)); ok {
		t.Fatal("found entry in empty index")
	}
	if got := idx.Count(); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestCreateThenFind(t *testing.T) {
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(7)
	e, addr := idx.FindOrCreateEntry(h)
	if addr != 0 {
		t.Fatalf("fresh entry address = %#x, want 0", addr)
	}
	if !e.CompareAndSwapAddress(0, 0x1234) {
		t.Fatal("CAS into fresh entry failed")
	}
	e2, addr2, ok := idx.FindEntry(h)
	if !ok || addr2 != 0x1234 {
		t.Fatalf("FindEntry = (%v, %#x), want (true, 0x1234)", ok, addr2)
	}
	if e2.Address() != 0x1234 {
		t.Fatalf("Address() = %#x", e2.Address())
	}
}

func TestFindOrCreateIdempotent(t *testing.T) {
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(99)
	e1, _ := idx.FindOrCreateEntry(h)
	e1.CompareAndSwapAddress(0, 555)
	_, addr := idx.FindOrCreateEntry(h)
	if addr != 555 {
		t.Fatalf("second FindOrCreate returned addr %d, want 555", addr)
	}
	if got := idx.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestCompareAndSwapAddressFailsOnStale(t *testing.T) {
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(1)
	e, _ := idx.FindOrCreateEntry(h)
	if !e.CompareAndSwapAddress(0, 100) {
		t.Fatal("initial CAS failed")
	}
	if e.CompareAndSwapAddress(0, 200) {
		t.Fatal("stale CAS succeeded")
	}
	if !e.CompareAndSwapAddress(100, 200) {
		t.Fatal("fresh CAS failed")
	}
}

func TestDeleteEntry(t *testing.T) {
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(5)
	e, _ := idx.FindOrCreateEntry(h)
	e.CompareAndSwapAddress(0, 77)
	if !e.CompareAndDelete(77) {
		t.Fatal("CompareAndDelete failed")
	}
	if _, _, ok := idx.FindEntry(h); ok {
		t.Fatal("entry still visible after delete")
	}
	// Slot is reusable.
	_, addr := idx.FindOrCreateEntry(h)
	if addr != 0 {
		t.Fatalf("recreated entry addr = %d, want 0", addr)
	}
}

func TestAdministrativeDelete(t *testing.T) {
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(123)
	if err := idx.Delete(h); err != ErrNotFound {
		t.Fatalf("Delete on missing = %v, want ErrNotFound", err)
	}
	e, _ := idx.FindOrCreateEntry(h)
	e.CompareAndSwapAddress(0, 1)
	if err := idx.Delete(h); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 0 {
		t.Fatal("entry survived Delete")
	}
}

func TestOverflowChains(t *testing.T) {
	// A 64-bucket index loaded with 4096 distinct keys must spill into
	// overflow buckets and still resolve every key.
	idx := newTestIndex(t, 64)
	const n = 4096
	for i := uint64(0); i < n; i++ {
		h := xhash.Uint64(i)
		e, addr := idx.FindOrCreateEntry(h)
		if addr == 0 {
			e.CompareAndSwapAddress(0, i+1)
		}
	}
	// Distinct keys may collide on (offset, tag); count entries found.
	found := 0
	for i := uint64(0); i < n; i++ {
		if _, addr, ok := idx.FindEntry(xhash.Uint64(i)); ok && addr != 0 {
			found++
		}
	}
	if found != n {
		t.Fatalf("resolved %d/%d keys", found, n)
	}
}

func TestTagsIncreaseResolution(t *testing.T) {
	// With 14 tag bits, two keys landing in the same bucket almost
	// always get distinct entries. Verify entries outnumber buckets for
	// a small table.
	idx := newTestIndex(t, 8)
	for i := uint64(0); i < 100; i++ {
		e, addr := idx.FindOrCreateEntry(xhash.Uint64(i))
		if addr == 0 {
			e.CompareAndSwapAddress(0, i+1)
		}
	}
	if c := idx.Count(); c < 90 {
		t.Fatalf("Count = %d, want close to 100 (tag collisions should be rare)", c)
	}
}

func TestZeroAddressEntryDistinctFromEmpty(t *testing.T) {
	// A claimed entry whose tag and address are both zero must not be
	// confused with an empty slot (the occupied bit). Find a hash with
	// tag 0: top 14 bits zero.
	idx := newTestIndex(t, 64)
	var h uint64 = 0x0003ffffffffffff & (1<<49 - 1) // top 14 bits zero
	if idx.tagOf(h) != 0 {
		t.Fatalf("test setup: tag = %#x, want 0", idx.tagOf(h))
	}
	e, addr := idx.FindOrCreateEntry(h)
	if addr != 0 {
		t.Fatal("fresh entry should have addr 0")
	}
	// The entry exists with address 0 and must be findable.
	_, addr2, ok := idx.FindEntry(h)
	if !ok || addr2 != 0 {
		t.Fatalf("FindEntry = (%v, %d), want (true, 0)", ok, addr2)
	}
	// A second FindOrCreate must not create a duplicate.
	idx.FindOrCreateEntry(h)
	if c := idx.Count(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
	_ = e
}

func TestConcurrentInsertUniqueness(t *testing.T) {
	// The core §3.2 invariant: concurrent FindOrCreate for the same hash
	// must converge on a single entry.
	idx := newTestIndex(t, 8)
	const workers = 16
	h := xhash.Uint64(42)
	var wg sync.WaitGroup
	slots := make([]*uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, _ := idx.FindOrCreateEntry(h)
			slots[w] = e.slot
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if slots[w] != slots[0] {
			t.Fatalf("worker %d got a different slot: duplicate entries", w)
		}
	}
	if c := idx.Count(); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
}

func TestConcurrentInsertDeleteSameTagInvariant(t *testing.T) {
	// Reproduces the Fig 3a scenario: deletes concurrent with inserts of
	// the same tag must never yield two live entries for one tag.
	idx := newTestIndex(t, 2)
	h := xhash.Uint64(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, addr := idx.FindOrCreateEntry(h)
				if addr == 0 {
					e.CompareAndSwapAddress(0, uint64(rng.Intn(1000)+1))
				} else if rng.Intn(2) == 0 {
					e.CompareAndDelete(addr)
				}
			}
		}(int64(w))
	}
	// Check the invariant repeatedly while the chaos runs.
	for i := 0; i < 2000; i++ {
		if c := countTag(idx, h); c > 1 {
			close(stop)
			wg.Wait()
			t.Fatalf("invariant violated: %d live entries for one tag", c)
		}
	}
	close(stop)
	wg.Wait()
	if c := countTag(idx, h); c > 1 {
		t.Fatalf("invariant violated after quiesce: %d entries", c)
	}
}

// countTag counts live entries for the (offset, tag) of hash.
func countTag(idx *Index, hash uint64) int {
	t := idx.activeTable()
	tag := idx.tagOf(hash)
	n := 0
	b := &t.buckets[offsetOf(t, hash)]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			w := atomic.LoadUint64(&b[i])
			if entryLive(w) && w&idx.tagMask == tag {
				n++
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			return n
		}
		b = t.overflowBucket(ov)
	}
}

func TestGrowPreservesEntries(t *testing.T) {
	em := epoch.New(8)
	idx := newTestIndex(t, 64)
	const n = 2000
	want := map[uint64]uint64{}
	for i := uint64(0); i < n; i++ {
		h := xhash.Uint64(i)
		e, addr := idx.FindOrCreateEntry(h)
		if addr == 0 {
			e.CompareAndSwapAddress(0, i+1)
			want[h] = i + 1
		}
	}
	oldSize := idx.Size()
	if err := idx.Grow(em); err != nil {
		t.Fatal(err)
	}
	if idx.Size() != oldSize*2 {
		t.Fatalf("Size = %d, want %d", idx.Size(), oldSize*2)
	}
	for h, addr := range want {
		_, got, ok := idx.FindEntry(h)
		if !ok || got != addr {
			t.Fatalf("after grow: FindEntry(%#x) = (%v, %d), want (true, %d)", h, ok, got, addr)
		}
	}
}

func TestGrowConcurrentWithMutations(t *testing.T) {
	em := epoch.New(32)
	idx := newTestIndex(t, 64)
	const workers = 8
	var wg sync.WaitGroup
	var inserted [workers][]uint64
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := em.Acquire()
			defer g.Release()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(w)<<32 | i
				h := xhash.Uint64(key)
				e, addr := idx.FindOrCreateEntry(h)
				if addr == 0 && e.CompareAndSwapAddress(0, key+1) {
					inserted[w] = append(inserted[w], key)
				}
				g.Refresh()
			}
		}(w)
	}
	for i := 0; i < 2; i++ {
		if err := idx.Grow(em); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Every successfully inserted key must still resolve.
	for w := 0; w < workers; w++ {
		for _, key := range inserted[w] {
			_, addr, ok := idx.FindEntry(xhash.Uint64(key))
			if !ok {
				t.Fatalf("key %#x lost after concurrent grow", key)
			}
			_ = addr // address may have been overwritten by a tag collision
		}
	}
}

func TestShrinkUnsupported(t *testing.T) {
	idx := newTestIndex(t, 64)
	if err := idx.Shrink(epoch.New(2)); err != ErrUnsupported {
		t.Fatalf("Shrink = %v, want ErrUnsupported", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	idx := newTestIndex(t, 128)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		h := xhash.Uint64(i)
		e, addr := idx.FindOrCreateEntry(h)
		if addr == 0 {
			e.CompareAndSwapAddress(0, i*8+64)
			want[h] = i*8 + 64
		}
	}
	var buf bytes.Buffer
	if err := idx.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Size() != idx.Size() {
		t.Fatalf("restored size %d != %d", restored.Size(), idx.Size())
	}
	for h, addr := range want {
		_, got, ok := restored.FindEntry(h)
		if !ok || got != addr {
			t.Fatalf("restored FindEntry(%#x) = (%v, %d), want (true, %d)", h, ok, got, addr)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	idx := newTestIndex(t, 64)
	e, _ := idx.FindOrCreateEntry(xhash.Uint64(1))
	e.CompareAndSwapAddress(0, 64)
	var buf bytes.Buffer
	if err := idx.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	img[len(img)/2] ^= 0xff
	if _, err := ReadCheckpoint(bytes.NewReader(img)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestUpdateAddresses(t *testing.T) {
	idx := newTestIndex(t, 64)
	for i := uint64(0); i < 100; i++ {
		e, addr := idx.FindOrCreateEntry(xhash.Uint64(i))
		if addr == 0 {
			e.CompareAndSwapAddress(0, i+1)
		}
	}
	before := idx.Count()
	// Drop all entries with even addresses, shift odd ones up.
	idx.UpdateAddresses(func(addr uint64) uint64 {
		if addr%2 == 0 {
			return 0
		}
		return addr + 1000
	})
	var n uint64
	idx.ForEachEntry(func(addr uint64) {
		if addr <= 1000 {
			t.Fatalf("unshifted address %d survived", addr)
		}
		n++
	})
	if n >= before {
		t.Fatalf("no entries dropped: %d -> %d", before, n)
	}
}

func TestTagBitsConfig(t *testing.T) {
	for _, tb := range []uint{1, 4, 14} {
		idx, err := New(Config{InitialBuckets: 64, TagBits: tb})
		if err != nil {
			t.Fatal(err)
		}
		if idx.TagBits() != tb {
			t.Fatalf("TagBits = %d, want %d", idx.TagBits(), tb)
		}
		// Insert and find with narrow tags still works.
		for i := uint64(0); i < 200; i++ {
			h := xhash.Uint64(i)
			e, addr := idx.FindOrCreateEntry(h)
			if addr == 0 {
				e.CompareAndSwapAddress(0, i+1)
			}
		}
		for i := uint64(0); i < 200; i++ {
			if _, _, ok := idx.FindEntry(xhash.Uint64(i)); !ok {
				t.Fatalf("tagBits=%d: key %d not found", tb, i)
			}
		}
	}
	if _, err := New(Config{TagBits: 15}); err == nil {
		t.Fatal("TagBits 15 should be rejected")
	}
}

// Property: inserting any set of distinct keys then reading them back
// resolves every key, and Count never exceeds the number of keys.
func TestQuickInsertFindAll(t *testing.T) {
	f := func(keys []uint64) bool {
		idx, err := New(Config{InitialBuckets: 16})
		if err != nil {
			return false
		}
		seen := map[uint64]bool{}
		for _, k := range keys {
			seen[k] = true
			e, addr := idx.FindOrCreateEntry(xhash.Uint64(k))
			if addr == 0 {
				e.CompareAndSwapAddress(0, 1)
			}
		}
		for k := range seen {
			if _, _, ok := idx.FindEntry(xhash.Uint64(k)); !ok {
				return false
			}
		}
		return idx.Count() <= uint64(len(seen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: delete makes keys unfindable unless another key shares the
// (offset, tag) pair.
func TestQuickDeleteHidesKeys(t *testing.T) {
	f := func(keys []uint64) bool {
		idx, _ := New(Config{InitialBuckets: 64})
		uniq := map[uint64]bool{}
		for _, k := range keys {
			uniq[k] = true
			e, addr := idx.FindOrCreateEntry(xhash.Uint64(k))
			if addr == 0 {
				e.CompareAndSwapAddress(0, 1)
			}
		}
		for k := range uniq {
			_ = idx.Delete(xhash.Uint64(k))
		}
		return idx.Count() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindEntryHit(b *testing.B) {
	idx, _ := New(Config{InitialBuckets: 1 << 16})
	for i := uint64(0); i < 1<<16; i++ {
		e, addr := idx.FindOrCreateEntry(xhash.Uint64(i))
		if addr == 0 {
			e.CompareAndSwapAddress(0, i+1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.FindEntry(xhash.Uint64(uint64(i) & (1<<16 - 1)))
	}
}

func BenchmarkFindOrCreate(b *testing.B) {
	idx, _ := New(Config{InitialBuckets: 1 << 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.FindOrCreateEntry(xhash.Uint64(uint64(i)))
	}
}

func TestCheckpointWithOverflowChains(t *testing.T) {
	// Force deep overflow chains, checkpoint, restore, verify.
	idx := newTestIndex(t, 8)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 3000; i++ {
		h := xhash.Uint64(i)
		e, addr := idx.FindOrCreateEntry(h)
		if addr == 0 && e.CompareAndSwapAddress(0, i+100) {
			want[h] = i + 100
		}
	}
	var buf bytes.Buffer
	if err := idx.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for h, addr := range want {
		_, got, ok := restored.FindEntry(h)
		if !ok || got != addr {
			t.Fatalf("overflow restore: FindEntry(%#x) = (%v, %d), want (true, %d)", h, ok, got, addr)
		}
	}
	if restored.Count() != idx.Count() {
		t.Fatalf("restored count %d != %d", restored.Count(), idx.Count())
	}
}

func TestGrowTwice(t *testing.T) {
	em := epoch.New(8)
	idx := newTestIndex(t, 64)
	want := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		h := xhash.Uint64(i)
		e, addr := idx.FindOrCreateEntry(h)
		if addr == 0 && e.CompareAndSwapAddress(0, i+1) {
			want[h] = i + 1
		}
	}
	size0 := idx.Size()
	if err := idx.Grow(em); err != nil {
		t.Fatal(err)
	}
	if err := idx.Grow(em); err != nil {
		t.Fatal(err)
	}
	if idx.Size() != size0*4 {
		t.Fatalf("size after two grows = %d, want %d", idx.Size(), size0*4)
	}
	for h, addr := range want {
		_, got, ok := idx.FindEntry(h)
		if !ok || got != addr {
			t.Fatalf("after double grow: FindEntry(%#x) = (%v, %d), want (true, %d)", h, ok, got, addr)
		}
	}
}

func TestStaleEntryCASFailsAfterGrow(t *testing.T) {
	// An Entry held across a resize must be poisoned: its CAS fails and
	// the caller re-routes to the new table.
	em := epoch.New(8)
	idx := newTestIndex(t, 64)
	h := xhash.Uint64(1)
	e, _ := idx.FindOrCreateEntry(h)
	if !e.CompareAndSwapAddress(0, 100) {
		t.Fatal("initial CAS failed")
	}
	if err := idx.Grow(em); err != nil {
		t.Fatal(err)
	}
	if e.CompareAndSwapAddress(100, 200) {
		t.Fatal("stale entry CAS succeeded after grow; lost-update hazard")
	}
	// The new table still resolves the key with the old address.
	_, addr, ok := idx.FindEntry(h)
	if !ok || addr != 100 {
		t.Fatalf("post-grow FindEntry = (%v, %d), want (true, 100)", ok, addr)
	}
}
