package index

import (
	"errors"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
)

// Resizing (Appendix B of the paper) proceeds through three phases packed,
// together with the active version and a generation counter, into a single
// atomic status word:
//
//	stable    normal operation on the active table
//	prepare   a new table exists; threads pin their chunk around each
//	          index operation so migration cannot start under them
//	resizing  threads cooperatively migrate chunks; operations route to
//	          the new table once their chunk is done
//
// The epoch framework provides the prepare->resizing transition: the phase
// only becomes resizing after every thread has observed prepare, which it
// does at its next refresh.
//
// Safety against stale entry references: when a migrator copies an entry
// out of the old table it CASes the old slot to a poison word (tentative,
// unoccupied). Any Entry.CompareAndSwapAddress held from before the resize
// then fails, and the caller retries its operation, which routes to the
// new table.
//
// A split points both child buckets at the same record chain. The index
// stores no keys, and part of a chain may live on disk, so the child that
// "really" owns each record cannot be determined synchronously (the paper
// makes the same choice). Chains self-clean as records are copied forward.
// Merging (shrink) requires the meta-record mechanism sketched in the
// paper's appendix and is not implemented; Shrink returns ErrUnsupported.

const (
	phaseStable uint32 = iota
	phasePrepare
	phaseResizing
)

// poisonWord marks a migrated slot: tentative and not occupied, so it is
// invisible to readers and unmatchable by any legitimate CAS.
const poisonWord = tentativeBit

func packStatus(phase uint32, version uint32) uint32 {
	return phase | version<<2
}

// packStatusGen includes the resize generation in the upper bits.
func packStatusGen(phase, version, gen uint32) uint32 {
	return phase | version<<2 | gen<<3
}

func unpackStatus(s uint32) (phase uint32, version uint32) {
	return s & 3, s >> 2 & 1
}

func statusGen(s uint32) uint32 { return s >> 3 }

// ErrUnsupported is returned by Shrink.
var ErrUnsupported = errors.New("index: shrink requires meta-records and is not implemented")

// resizeState holds the coordination data for an in-flight resize.
type resizeState struct {
	mu        sync.Mutex // serializes Grow calls
	maxChunks int

	// The fields below are rewritten under mu before the status word
	// advertises prepare; readers load status first (acquire) so they
	// observe a consistent snapshot.
	old, new   *table
	numChunks  int
	chunkShift uint
	pins       []atomic.Int32
	migrated   []atomic.Uint32 // 0 pending, 1 claimed, 2 done
}

// chunkOf maps a hash to its migration chunk in the old table.
func (r *resizeState) chunkOf(hash uint64) int {
	return int((hash & (r.old.size - 1)) >> r.chunkShift)
}

// beginOp routes an index operation to the right table for hash,
// respecting the resize phase. It returns the table whose buckets the
// operation may touch and the chunk it pinned (-1 if none). The caller
// must call endOp with the same pin.
func (idx *Index) beginOp(hash uint64) (t *table, pinned int) {
	for {
		st := idx.status.Load()
		phase, v := unpackStatus(st)
		switch phase {
		case phaseStable:
			return idx.tables[v], -1
		case phasePrepare:
			r := &idx.resize
			chunk := r.chunkOf(hash)
			if r.pins[chunk].Add(1) > 0 {
				// Guard against a full resize cycle having slipped by
				// between the status load and the pin (generation check).
				if idx.status.Load() == st {
					return r.old, chunk
				}
				r.pins[chunk].Add(-1)
				continue
			}
			// The migrator claimed this chunk already; undo and spin
			// until the phase catches up.
			r.pins[chunk].Add(-1)
			runtime.Gosched()
		case phaseResizing:
			r := &idx.resize
			idx.ensureChunkDone(r.chunkOf(hash))
			if statusGen(idx.status.Load()) != statusGen(st) {
				continue // a whole resize cycle slipped past us
			}
			return r.new, -1
		}
	}
}

// endOp releases the chunk pin taken by beginOp.
func (idx *Index) endOp(pinned int) {
	if pinned >= 0 {
		idx.resize.pins[pinned].Add(-1)
	}
}

// ensureChunkDone cooperatively migrates chunk or waits for its migrator.
func (idx *Index) ensureChunkDone(chunk int) {
	r := &idx.resize
	for r.migrated[chunk].Load() != 2 {
		if r.pins[chunk].CompareAndSwap(0, math.MinInt32) {
			r.migrated[chunk].Store(1)
			idx.migrateChunk(chunk)
			r.migrated[chunk].Store(2)
			return
		}
		runtime.Gosched()
	}
}

// migrateChunk copies every live entry of the chunk's old-table buckets
// into both child buckets of the new table, poisoning old slots as it
// goes. The migrator has exclusive ownership of the chunk (pins are
// negative) and of the child buckets.
func (idx *Index) migrateChunk(chunk int) {
	r := &idx.resize
	lo := uint64(chunk) << r.chunkShift
	hi := lo + r.old.size/uint64(r.numChunks)
	for off := lo; off < hi; off++ {
		b := &r.old.buckets[off]
		for {
			for i := 0; i < entriesPerBucket; i++ {
				for {
					w := atomic.LoadUint64(&b[i])
					if w == 0 || w == poisonWord {
						break
					}
					if entryLive(w) {
						idx.insertMigrated(r.new, off, w)
						idx.insertMigrated(r.new, off+r.old.size, w)
					}
					if atomic.CompareAndSwapUint64(&b[i], w, poisonWord) {
						break
					}
					// Lost a race with a late CAS; undo the copies and
					// redo with the fresh value.
					idx.removeMigrated(r.new, off, w)
					idx.removeMigrated(r.new, off+r.old.size, w)
				}
			}
			ov := atomic.LoadUint64(&b[7])
			if ov == 0 {
				break
			}
			b = r.old.overflowBucket(ov)
		}
	}
}

// insertMigrated places entry w into the new-table bucket at off. The
// migrator owns the destination, so plain stores (atomic for publication)
// suffice.
func (idx *Index) insertMigrated(t *table, off uint64, w uint64) {
	b := &t.buckets[off]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if atomic.LoadUint64(&b[i]) == 0 {
				atomic.StoreUint64(&b[i], w)
				return
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			ov = t.allocOverflow()
			atomic.StoreUint64(&b[7], ov)
		}
		b = t.overflowBucket(ov)
	}
}

// removeMigrated undoes insertMigrated after a lost CAS race.
func (idx *Index) removeMigrated(t *table, off uint64, w uint64) {
	b := &t.buckets[off]
	for {
		for i := 0; i < entriesPerBucket; i++ {
			if atomic.LoadUint64(&b[i]) == w {
				atomic.StoreUint64(&b[i], 0)
				return
			}
		}
		ov := atomic.LoadUint64(&b[7])
		if ov == 0 {
			return
		}
		b = t.overflowBucket(ov)
	}
}

// Grow doubles the index on the fly. It drives the three-phase state
// machine of Appendix B, using em to guarantee that migration starts only
// after every thread has observed the prepare phase. The caller must not
// hold an epoch guard (other sessions keep refreshing as usual and help
// migrate chunks they touch).
func (idx *Index) Grow(em *epoch.Manager) error {
	r := &idx.resize
	r.mu.Lock()
	defer r.mu.Unlock()

	st := idx.status.Load()
	phase, v := unpackStatus(st)
	if phase != phaseStable {
		return errors.New("index: resize already in progress")
	}
	gen := statusGen(st) + 1

	old := idx.tables[v]
	nt := newTable(old.size * 2)
	idx.tables[1-v] = nt

	numChunks := r.maxChunks
	if uint64(numChunks) > old.size {
		numChunks = int(old.size)
	}
	// Round down to a power of two so chunk boundaries divide evenly.
	numChunks = 1 << (bits.Len(uint(numChunks)) - 1)
	r.old, r.new = old, nt
	r.numChunks = numChunks
	r.chunkShift = uint(bits.TrailingZeros64(old.size / uint64(numChunks)))
	r.pins = make([]atomic.Int32, numChunks)
	r.migrated = make([]atomic.Uint32, numChunks)

	idx.status.Store(packStatusGen(phasePrepare, v, gen))
	em.BumpWith(func() {
		idx.status.Store(packStatusGen(phaseResizing, v, gen))
	})
	for {
		p, _ := unpackStatus(idx.status.Load())
		if p == phaseResizing {
			break
		}
		em.Drain()
		runtime.Gosched()
	}
	for c := 0; c < numChunks; c++ {
		idx.ensureChunkDone(c)
	}
	idx.status.Store(packStatusGen(phaseStable, 1-v, gen))
	idx.tables[v] = nil
	idx.mx.resizes.Inc()
	return nil
}

// Shrink is unimplemented; see the package comment above.
func (idx *Index) Shrink(*epoch.Manager) error { return ErrUnsupported }
