// Package linearize is a stdlib-only linearizability checker and a
// history-recording harness for the FASTER store.
//
// The checker implements the Wing–Gong algorithm with Lowe's
// just-in-time linearization refinements ("Testing for linearizability",
// CCPE 2017): a depth-first search over the choices of which pending
// operation takes effect next, pruned by a memoization cache keyed on
// (set of linearized operations, model state). Histories are first split
// into independent sub-histories by the model's partition function (for a
// key-value store: per key), which is what keeps checking tractable —
// the search is exponential in the width of a single partition, not of
// the whole run.
//
// Histories may contain incomplete operations (an invoke with no
// response, e.g. an operation in flight at a crash): the checker allows
// them to take effect at any point after their invoke, or never.
package linearize

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Incomplete marks an operation that never received a response. It may
// linearize anywhere after its call, or not at all.
const Incomplete = int64(math.MaxInt64)

// Op is one recorded operation: an invoke/response event pair bracketing
// the window in which the operation took effect.
type Op struct {
	// ClientID identifies the session that issued the operation.
	ClientID int
	// Call and Return are logical timestamps from a shared monotone
	// clock. Return is Incomplete for operations that never completed.
	Call, Return int64
	// Input and Output are interpreted by the Model.
	Input, Output any
}

// Model is a sequential specification. State values must be treated as
// immutable: Step returns a fresh successor rather than mutating.
type Model struct {
	// Name labels the model in reports.
	Name string
	// Init returns the initial state of one partition.
	Init func() any
	// Step decides whether applying input to state can produce output,
	// and returns the successor state. It must not mutate state.
	Step func(state, input, output any) (ok bool, next any)
	// Key returns a deterministic memoization key for state. Two states
	// with the same key must be interchangeable.
	Key func(state any) string
	// Partition splits a history into independent sub-histories checked
	// in isolation. Nil means the history is one partition.
	Partition func(ops []Op) [][]Op
	// Describe renders an operation for counterexample reports.
	Describe func(input, output any) string
}

func (m *Model) describe(input, output any) string {
	if m.Describe != nil {
		return m.Describe(input, output)
	}
	return fmt.Sprintf("%v -> %v", input, output)
}

// Outcome classifies a check result.
type Outcome int

const (
	// Ok: the history is linearizable.
	Ok Outcome = iota
	// Illegal: the history is NOT linearizable; Result carries a
	// counterexample.
	Illegal
	// Unknown: the search exceeded its deadline before deciding.
	Unknown
)

func (o Outcome) String() string {
	switch o {
	case Ok:
		return "ok"
	case Illegal:
		return "illegal"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result reports a Check.
type Result struct {
	Outcome Outcome
	// Partition is the index of the first partition that failed (or
	// timed out). -1 when Outcome is Ok.
	Partition int
	// Counterexample is the failing partition's history, minimized: no
	// single operation can be removed and keep it non-linearizable
	// (within the minimizer's time budget).
	Counterexample []Op
	// LongestPrefix is the largest number of operations the search
	// managed to linearize in the failing partition before getting
	// stuck, with Witness the corresponding order (reports only).
	LongestPrefix int
	Witness       []Op
	// States counts distinct (linearized-set, state) pairs explored.
	States int
}

// Check decides whether history is linearizable with respect to model,
// spending at most timeout per partition (0 means no limit). On failure
// the counterexample is minimized with the same per-attempt budget.
func Check(model Model, history []Op, timeout time.Duration) Result {
	parts := [][]Op{history}
	if model.Partition != nil {
		parts = model.Partition(history)
	}
	total := Result{Outcome: Ok, Partition: -1}
	for i, part := range parts {
		r := checkPartition(model, part, timeout)
		total.States += r.States
		if r.Outcome == Ok {
			continue
		}
		total.Outcome = r.Outcome
		total.Partition = i
		total.LongestPrefix = r.LongestPrefix
		total.Witness = r.Witness
		if r.Outcome == Illegal {
			total.Counterexample = Minimize(model, part, timeout)
		}
		return total
	}
	return total
}

// entry is one operation in the search's working set.
type entry struct {
	op  Op
	idx int // bit position in the linearized-set mask
}

// frame is one level of the DFS stack: the candidate list at that level
// and which candidate was taken.
type frame struct {
	cands []int  // entry indices that were linearizable candidates
	next  int    // next candidate to try
	state any    // model state before this level's choice
	key   string // memo key of state
}

// checkPartition runs the WGL search on one partition.
func checkPartition(model Model, ops []Op, timeout time.Duration) Result {
	n := len(ops)
	if n == 0 {
		return Result{Outcome: Ok, Partition: -1}
	}
	if n > 256 {
		// The linearized-set mask is 4 words; keep partitions small by
		// construction (more keys, fewer ops per key) rather than
		// scaling the mask.
		panic(fmt.Sprintf("linearize: partition of %d ops exceeds the 256-op limit; use more partitions", n))
	}
	entries := make([]entry, n)
	for i, op := range ops {
		entries[i] = entry{op: op, idx: i}
	}
	// Deterministic order: by call time (the recorder's clock never
	// ties, but break ties stably anyway).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].op.Call < entries[j].op.Call })

	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}

	var linearized opSet
	completeLeft := 0 // complete ops not yet linearized
	for _, e := range entries {
		if e.op.Return != Incomplete {
			completeLeft++
		}
	}

	state := model.Init()
	cache := map[string]struct{}{}
	var stack []frame
	best := 0
	var bestOrder []Op
	var order []Op

	// candidates returns the entries that may linearize next: not yet
	// linearized, and invoked before every un-linearized operation's
	// response (an op that responded before another was invoked must
	// linearize first).
	candidates := func() []int {
		minReturn := int64(math.MaxInt64)
		for i := range entries {
			if !linearized.has(entries[i].idx) && entries[i].op.Return < minReturn {
				minReturn = entries[i].op.Return
			}
		}
		var cands []int
		for i := range entries {
			if !linearized.has(entries[i].idx) && entries[i].op.Call <= minReturn {
				cands = append(cands, i)
			}
		}
		return cands
	}

	states := 0
	checkDeadline := 0
	stack = append(stack, frame{cands: candidates(), state: state, key: model.Key(state)})
	for {
		if completeLeft == 0 {
			return Result{Outcome: Ok, Partition: -1, States: states}
		}
		checkDeadline++
		if timeout > 0 && checkDeadline%1024 == 0 && time.Now().After(deadline) {
			return Result{Outcome: Unknown, LongestPrefix: best, Witness: bestOrder, States: states}
		}
		top := &stack[len(stack)-1]
		advanced := false
		for top.next < len(top.cands) {
			ei := top.cands[top.next]
			top.next++
			e := &entries[ei]
			ok, next := model.Step(top.state, e.op.Input, e.op.Output)
			if !ok {
				continue
			}
			linearized.set(e.idx)
			memo := linearized.key() + model.Key(next)
			if _, seen := cache[memo]; seen {
				linearized.clear(e.idx)
				continue
			}
			cache[memo] = struct{}{}
			states++
			// Take the step.
			if e.op.Return != Incomplete {
				completeLeft--
			}
			order = append(order, e.op)
			if lin := linearized.count(); lin > best {
				best = lin
				bestOrder = append(bestOrder[:0], order...)
			}
			stack = append(stack, frame{cands: candidates(), state: next, key: model.Key(next)})
			advanced = true
			break
		}
		if advanced {
			continue
		}
		// Dead end at this level: backtrack.
		if len(stack) == 1 {
			return Result{Outcome: Illegal, LongestPrefix: best, Witness: bestOrder, States: states}
		}
		stack = stack[:len(stack)-1]
		parent := &stack[len(stack)-1]
		// Undo the choice the parent made to get here: it is the
		// candidate just before parent.next.
		undone := entries[parent.cands[parent.next-1]]
		linearized.clear(undone.idx)
		if undone.op.Return != Incomplete {
			completeLeft++
		}
		order = order[:len(order)-1]
	}
}

// opSet is a 256-bit set of operation indices.
type opSet [4]uint64

func (s *opSet) set(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }
func (s *opSet) clear(i int)    { s[i>>6] &^= 1 << (uint(i) & 63) }
func (s *opSet) has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

func (s *opSet) count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (s *opSet) key() string {
	var b [33]byte
	for i, w := range s {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * j))
		}
	}
	b[32] = '|'
	return string(b[:])
}

// Minimize greedily shrinks a non-linearizable history: it repeatedly
// removes any single operation whose removal keeps the history
// non-linearizable, until the history is 1-minimal or the time budget
// (3x timeout, min 2s) runs out. The result is always a genuine
// counterexample: every removal is re-verified.
func Minimize(model Model, ops []Op, timeout time.Duration) []Op {
	budget := 3 * timeout
	if budget < 2*time.Second {
		budget = 2 * time.Second
	}
	deadline := time.Now().Add(budget)
	cur := append([]Op(nil), ops...)
	for {
		shrunk := false
		for i := 0; i < len(cur); i++ {
			if time.Now().After(deadline) {
				return cur
			}
			trial := make([]Op, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			if r := checkPartition(model, trial, timeout); r.Outcome == Illegal {
				cur = trial
				shrunk = true
				i--
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// Format renders a history as one line per operation, sorted by call
// time, for counterexample reports.
func Format(model Model, ops []Op) string {
	sorted := append([]Op(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })
	var b strings.Builder
	for _, op := range sorted {
		ret := "never"
		if op.Return != Incomplete {
			ret = fmt.Sprintf("%d", op.Return)
		}
		fmt.Fprintf(&b, "  [client %d] %-36s @ [%d, %s]\n",
			op.ClientID, model.describe(op.Input, op.Output), op.Call, ret)
	}
	return b.String()
}
