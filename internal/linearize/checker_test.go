package linearize

import (
	"testing"
	"time"
)

// op builds a complete KV op.
func op(client int, call, ret int64, in KVInput, out KVOutput) Op {
	return Op{ClientID: client, Call: call, Return: ret, Input: in, Output: out}
}

func read(k, v uint64) (KVInput, KVOutput) {
	return KVInput{Kind: KVRead, Key: k}, KVOutput{Found: true, Val: v}
}

func readMiss(k uint64) (KVInput, KVOutput) {
	return KVInput{Kind: KVRead, Key: k}, KVOutput{}
}

func upsert(k, v uint64) (KVInput, KVOutput) {
	return KVInput{Kind: KVUpsert, Key: k, Arg: v}, KVOutput{Found: true}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	ui, uo := upsert(1, 10)
	ri, ro := read(1, 10)
	h := []Op{
		op(0, 1, 2, ui, uo),
		op(0, 3, 4, ri, ro),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Ok {
		t.Fatalf("sequential history = %v", r.Outcome)
	}
}

func TestStaleReadIsIllegal(t *testing.T) {
	// upsert(10) completes, then upsert(20) completes, then a read that
	// starts after both returns 10: not linearizable.
	u1i, u1o := upsert(1, 10)
	u2i, u2o := upsert(1, 20)
	ri, ro := read(1, 10)
	h := []Op{
		op(0, 1, 2, u1i, u1o),
		op(0, 3, 4, u2i, u2o),
		op(1, 5, 6, ri, ro),
	}
	r := CheckKV(h, time.Second)
	if r.Outcome != Illegal {
		t.Fatalf("stale read = %v, want Illegal", r.Outcome)
	}
	if len(r.Counterexample) == 0 || len(r.Counterexample) > 3 {
		t.Fatalf("counterexample size = %d", len(r.Counterexample))
	}
	t.Logf("minimized:\n%s", Format(KVModel(), r.Counterexample))
}

func TestConcurrentReadMayseeEitherValue(t *testing.T) {
	// A read overlapping an upsert may see the old or the new value.
	u1i, u1o := upsert(1, 10)
	u2i, u2o := upsert(1, 20)
	for _, val := range []uint64{10, 20} {
		ri, ro := read(1, val)
		h := []Op{
			op(0, 1, 2, u1i, u1o),
			op(0, 4, 7, u2i, u2o),
			op(1, 3, 6, ri, ro),
		}
		if r := CheckKV(h, time.Second); r.Outcome != Ok {
			t.Fatalf("concurrent read of %d = %v, want Ok", val, r.Outcome)
		}
	}
	// But not a value never written.
	ri, ro := read(1, 15)
	h := []Op{
		op(0, 1, 2, u1i, u1o),
		op(0, 4, 7, u2i, u2o),
		op(1, 3, 6, ri, ro),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Illegal {
		t.Fatalf("phantom value read = %v, want Illegal", r.Outcome)
	}
}

func TestRMWCountsExactlyOnce(t *testing.T) {
	// Two concurrent rmw(+1) from an absent key, then a read. Sum must
	// be 2; 1 (lost update) and 3 (double apply) are illegal.
	r1 := KVInput{Kind: KVRMW, Key: 1, Arg: 1}
	for want, outcome := range map[uint64]Outcome{1: Illegal, 2: Ok, 3: Illegal} {
		ri, ro := read(1, want)
		h := []Op{
			op(0, 1, 4, r1, KVOutput{}),
			op(1, 2, 5, r1, KVOutput{}),
			op(2, 6, 7, ri, ro),
		}
		if r := CheckKV(h, time.Second); r.Outcome != outcome {
			t.Fatalf("sum %d = %v, want %v", want, r.Outcome, outcome)
		}
	}
}

func TestDeleteObservationsConstrain(t *testing.T) {
	// delete -> NOT_FOUND completing entirely after an upsert completed
	// (and nothing else touching the key) is illegal.
	ui, uo := upsert(1, 10)
	di := KVInput{Kind: KVDelete, Key: 1}
	h := []Op{
		op(0, 1, 2, ui, uo),
		op(1, 3, 4, di, KVOutput{Found: false}),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Illegal {
		t.Fatalf("phantom NOT_FOUND delete = %v, want Illegal", r.Outcome)
	}
	// delete -> OK then read -> NOT_FOUND is the legal counterpart.
	ri, ro := readMiss(1)
	h = []Op{
		op(0, 1, 2, ui, uo),
		op(1, 3, 4, di, KVOutput{Found: true}),
		op(1, 5, 6, ri, ro),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Ok {
		t.Fatalf("delete/read-miss = %v, want Ok", r.Outcome)
	}
}

func TestIncompleteOpsMayApplyOrNot(t *testing.T) {
	// An upsert with no response: a later read may see it or miss it.
	ui, _ := upsert(1, 10)
	for _, h := range [][]Op{
		{
			{ClientID: 0, Call: 1, Return: Incomplete, Input: ui},
			op(1, 2, 3, KVInput{Kind: KVRead, Key: 1}, KVOutput{Found: true, Val: 10}),
		},
		{
			{ClientID: 0, Call: 1, Return: Incomplete, Input: ui},
			op(1, 2, 3, KVInput{Kind: KVRead, Key: 1}, KVOutput{}),
		},
	} {
		if r := CheckKV(h, time.Second); r.Outcome != Ok {
			t.Fatalf("incomplete upsert variant = %v, want Ok", r.Outcome)
		}
	}
	// But it cannot un-apply: seen by one read, missed by a later one.
	h := []Op{
		{ClientID: 0, Call: 1, Return: Incomplete, Input: ui},
		op(1, 2, 3, KVInput{Kind: KVRead, Key: 1}, KVOutput{Found: true, Val: 10}),
		op(1, 4, 5, KVInput{Kind: KVRead, Key: 1}, KVOutput{}),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Illegal {
		t.Fatalf("un-applied incomplete upsert = %v, want Illegal", r.Outcome)
	}
}

func TestRealTimeOrderAcrossClients(t *testing.T) {
	// Client 0's upsert(20) returned before client 1's read invoked;
	// the read must not see the earlier value even though a third
	// client's upsert(10) is still open (incomplete ops can linearize
	// late, but a read after upsert(20) seeing 10 requires the open
	// upsert(10) to linearize between them — which IS legal. Pin it
	// with a second read: 10 then 20 again would need upsert(20) twice.)
	u20i, u20o := upsert(1, 20)
	u10i := KVInput{Kind: KVUpsert, Key: 1, Arg: 10}
	h := []Op{
		op(0, 1, 2, u20i, u20o),
		{ClientID: 2, Call: 1, Return: Incomplete, Input: u10i},
		op(1, 3, 4, KVInput{Kind: KVRead, Key: 1}, KVOutput{Found: true, Val: 10}),
		op(1, 5, 6, KVInput{Kind: KVRead, Key: 1}, KVOutput{Found: true, Val: 20}),
	}
	if r := CheckKV(h, time.Second); r.Outcome != Illegal {
		t.Fatalf("resurrected value = %v, want Illegal", r.Outcome)
	}
}

func TestPartitionIndependence(t *testing.T) {
	// A violation on key 2 is found even with clean traffic on key 1.
	u1i, u1o := upsert(1, 1)
	u2i, u2o := upsert(2, 5)
	ri, ro := read(2, 99)
	h := []Op{
		op(0, 1, 2, u1i, u1o),
		op(0, 3, 4, u2i, u2o),
		op(1, 5, 6, ri, ro),
	}
	r := CheckKV(h, time.Second)
	if r.Outcome != Illegal {
		t.Fatalf("cross-key violation = %v", r.Outcome)
	}
	for _, op := range r.Counterexample {
		if op.Input.(KVInput).Key != 2 {
			t.Fatalf("counterexample leaked another key: %+v", op)
		}
	}
}

func TestMinimizeShrinksToCore(t *testing.T) {
	// 20 irrelevant upsert/read pairs plus a 3-op violation: the
	// minimized counterexample must not contain the noise.
	var h []Op
	ts := int64(1)
	next := func() int64 { ts++; return ts }
	for i := 0; i < 20; i++ {
		ui, uo := upsert(1, uint64(i))
		c := next()
		h = append(h, op(0, c, next(), ui, uo))
		ri, ro := read(1, uint64(i))
		c = next()
		h = append(h, op(0, c, next(), ri, ro))
	}
	u1i, u1o := upsert(1, 100)
	c := next()
	h = append(h, op(0, c, next(), u1i, u1o))
	ri, ro := read(1, 7) // stale: 7 was overwritten long ago
	c = next()
	h = append(h, op(1, c, next(), ri, ro))

	r := CheckKV(h, time.Second)
	if r.Outcome != Illegal {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if len(r.Counterexample) > 4 {
		t.Fatalf("minimized to %d ops, want <= 4:\n%s",
			len(r.Counterexample), Format(KVModel(), r.Counterexample))
	}
}

func TestCheckerScalesToWideConcurrency(t *testing.T) {
	// 8 clients x 16 rmw(+1) each, fully overlapping windows, one final
	// read of the exact sum: legal, and must finish fast thanks to the
	// memoized state cache.
	var h []Op
	in := KVInput{Kind: KVRMW, Key: 1, Arg: 1}
	for c := 0; c < 8; c++ {
		for i := 0; i < 16; i++ {
			h = append(h, op(c, int64(2*i+1), int64(2*i+1000), in, KVOutput{}))
		}
	}
	ri, ro := read(1, 8*16)
	h = append(h, op(9, 5000, 5001, ri, ro))
	start := time.Now()
	r := CheckKV(h, 10*time.Second)
	if r.Outcome != Ok {
		t.Fatalf("wide rmw history = %v", r.Outcome)
	}
	t.Logf("checked %d ops, %d states, in %v", len(h), r.States, time.Since(start))
}

func TestRecorderProducesWellFormedHistory(t *testing.T) {
	rec := NewRecorder()
	c0, c1 := rec.Client(0), rec.Client(1)
	in, out := upsert(1, 1)
	id := c0.Begin(in)
	c0.End(id, out)
	id2 := c1.Begin(KVInput{Kind: KVRead, Key: 1})
	c1.End(id2, KVOutput{Found: true, Val: 1})
	open := c0.Begin(KVInput{Kind: KVRMW, Key: 1, Arg: 1}) // never ends
	_ = open
	dropped := c1.Begin(KVInput{Kind: KVRead, Key: 1})
	c1.Drop(dropped)

	h := rec.History()
	if len(h) != 3 {
		t.Fatalf("history has %d ops, want 3 (dropped op filtered)", len(h))
	}
	seen := map[int64]bool{}
	incomplete := 0
	for _, op := range h {
		if op.Call <= 0 || (op.Return != Incomplete && op.Return <= op.Call) {
			t.Fatalf("bad timestamps: %+v", op)
		}
		if seen[op.Call] {
			t.Fatalf("duplicate timestamp %d", op.Call)
		}
		seen[op.Call] = true
		if op.Return == Incomplete {
			incomplete++
		}
	}
	if incomplete != 1 {
		t.Fatalf("incomplete ops = %d, want 1", incomplete)
	}
	if r := CheckKV(h, time.Second); r.Outcome != Ok {
		t.Fatalf("recorded history = %v", r.Outcome)
	}
}
