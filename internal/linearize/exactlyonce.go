package linearize

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/faster"
)

// Exactly-once model and driver: duplicate-delivery workloads over the
// store's durable session serials. The sequential specification extends
// the counter register with one committed-serial frontier per session;
// a stamped RMW applies iff its serial is the frontier's successor and
// is a no-op otherwise, so a history in which a retried serial adds its
// delta twice — or in which a recovered store forgets an acknowledged
// serial — has no linearization and the checker flags it.

// EOMaxSessions bounds the stamped sessions a run may use; the model
// state embeds a fixed-size frontier array so it stays comparable and
// cheap to fingerprint.
const EOMaxSessions = 4

// EOInput is the invocation half of an exactly-once operation. Session
// is the 1-based stamped session for KVRMW; reads are unstamped
// (Session 0) and observe the shared counter.
type EOInput struct {
	Kind    KVKind
	Key     uint64
	Arg     uint64
	Session int
	Serial  uint64
	// Dup marks a deliberate duplicate re-delivery of Serial. The model
	// does not care (dedup is the specification under test), but the
	// driver uses it to keep the crash window checkable: an *unacked*
	// duplicate is provably effect-free — any linearization applying it
	// could apply the original instead, whose invoke is earlier — so it
	// can be dropped from the history without changing legality.
	Dup bool
}

// EOOutput is the response half. Verdict is meaningful only for stamped
// operations: SerialApply acknowledges a first delivery, SerialReplay
// and SerialStale acknowledge duplicates without re-applying.
type EOOutput struct {
	Found   bool
	Val     uint64
	Verdict faster.SerialVerdict
}

// eoState is the sequential state: the counter register plus each
// session's committed-serial frontier.
type eoState struct {
	exists    bool
	val       uint64
	frontiers [EOMaxSessions]uint64
}

// EOModel returns the dedup-aware counter specification.
func EOModel() Model {
	return Model{
		Name: "exactly-once-counter",
		Init: func() any { return eoState{} },
		Step: func(state, input, output any) (bool, any) {
			st := state.(eoState)
			in := input.(EOInput)
			out, observed := output.(EOOutput)
			switch in.Kind {
			case KVRead:
				if !observed {
					return true, st
				}
				if out.Found != st.exists {
					return false, st
				}
				if st.exists && out.Val != st.val {
					return false, st
				}
				return true, st
			case KVRMW:
				if in.Session == 0 {
					// Unstamped RMW: the plain counter transition.
					ns := st
					ns.exists = true
					if st.exists {
						ns.val = st.val + in.Arg
					} else {
						ns.val = in.Arg
					}
					return true, ns
				}
				si := in.Session - 1
				if si < 0 || si >= EOMaxSessions {
					return false, st
				}
				next := st.frontiers[si] + 1
				dup := in.Serial < next
				if observed {
					switch out.Verdict {
					case faster.SerialApply:
						if dup {
							// An acknowledged first delivery of a serial
							// already at or below the frontier is a
							// double-apply.
							return false, st
						}
					case faster.SerialReplay, faster.SerialStale:
						if !dup {
							return false, st
						}
					default:
						return false, st
					}
				}
				if dup {
					return true, st // duplicate delivery: no effect
				}
				if in.Serial > next {
					// A session submits serials in order and the store
					// admits only the frontier's successor, so a gap can
					// never take effect here.
					return false, st
				}
				ns := st
				ns.exists = true
				if st.exists {
					ns.val = st.val + in.Arg
				} else {
					ns.val = in.Arg
				}
				ns.frontiers[si] = in.Serial
				return true, ns
			default:
				return false, st
			}
		},
		Key: func(state any) string {
			st := state.(eoState)
			if !st.exists {
				return fmt.Sprintf("-/%v", st.frontiers)
			}
			return fmt.Sprintf("%d/%v", st.val, st.frontiers)
		},
		// Frontier state is per session but spans keys, so the history is
		// one partition; drivers keep it small by construction.
		Partition: nil,
		Describe: func(input, output any) string {
			in := input.(EOInput)
			out, complete := output.(EOOutput)
			if in.Kind == KVRead {
				res := "?"
				if complete {
					if out.Found {
						res = fmt.Sprintf("OK(%d)", out.Val)
					} else {
						res = "NOT_FOUND"
					}
				}
				return fmt.Sprintf("read(k%d) -> %s", in.Key, res)
			}
			res := "?"
			if complete {
				switch out.Verdict {
				case faster.SerialApply:
					res = "APPLY"
				case faster.SerialReplay:
					res = "REPLAY"
				case faster.SerialStale:
					res = "STALE"
				default:
					res = fmt.Sprintf("verdict(%d)", out.Verdict)
				}
			}
			return fmt.Sprintf("s%d#%d rmw(k%d, +%d) -> %s", in.Session, in.Serial, in.Key, in.Arg, res)
		},
	}
}

// EOWorkload describes one duplicate-delivery crash/retry run.
type EOWorkload struct {
	// Sessions is the number of concurrent stamped sessions (default 3,
	// at most EOMaxSessions).
	Sessions int
	// Serials is how many serials each session commits before the crash
	// (default 12).
	Serials int
	// Key is the shared counter every stamped RMW targets (default 1).
	Key uint64
	// Seed makes the schedule and deltas reproducible.
	Seed int64
}

// RunExactlyOnce drives w against a fresh store opened from cfg:
// Sessions concurrent stamped clients each commit Serials serials
// against one shared counter with seeded duplicate re-deliveries and
// interleaved unstamped reads, a checkpoint to dir fires mid-run, the
// store crashes (Close) and recovers, each client re-binds its GUID and
// resubmits every serial above the recovered frontier — the retry rule
// an exactly-once client follows — and a final read observes the
// counter. The returned history has the checkpoint window crash-marked
// and is ready for Check against EOModel().
func RunExactlyOnce(cfg faster.Config, dir string, w EOWorkload) ([]Op, error) {
	if w.Sessions == 0 {
		w.Sessions = 3
	}
	if w.Sessions > EOMaxSessions {
		return nil, fmt.Errorf("linearize: %d sessions exceeds EOMaxSessions=%d", w.Sessions, EOMaxSessions)
	}
	if w.Serials == 0 {
		w.Serials = 12
	}
	if w.Key == 0 {
		w.Key = 1
	}
	// Deltas are fixed per (session, serial) up front so the post-crash
	// retry resends byte-identical operations, as a real client would.
	deltas := make([][]uint64, w.Sessions+1)
	drng := rand.New(rand.NewSource(w.Seed ^ 0x5eed))
	for i := 1; i <= w.Sessions; i++ {
		deltas[i] = make([]uint64, w.Serials+1)
		for s := 1; s <= w.Serials; s++ {
			deltas[i][s] = drng.Uint64()%9 + 1
		}
	}

	s, err := faster.Open(cfg)
	if err != nil {
		return nil, err
	}
	rec := NewRecorder()
	key := u64le(w.Key)

	// The chaos goroutine checkpoints once the clock shows roughly half
	// the committed serials' events; if the workload outruns it the
	// checkpoint still commits after the last op, which only means there
	// is nothing left to resubmit.
	var ckptStart, ckptEnd int64
	ckptDone := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		target := int64(w.Sessions * w.Serials)
		for rec.Peek() < target {
			select {
			case <-stop:
				goto checkpoint
			default:
				runtime.Gosched()
			}
		}
	checkpoint:
		ckptStart = rec.Now()
		_, err := s.Checkpoint(dir)
		ckptEnd = rec.Now()
		ckptDone <- err
	}()

	errs := make(chan error, w.Sessions)
	var clients sync.WaitGroup
	for i := 1; i <= w.Sessions; i++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(w.Seed*1_000_003 + int64(id)))
			log := rec.Client(id)
			sess := s.StartSession()
			defer sess.Close()
			if _, err := sess.Bind(fmt.Sprintf("eo-%d", id)); err != nil {
				errs <- err
				return
			}
			for serial := uint64(1); serial <= uint64(w.Serials); serial++ {
				if err := submitEOSerial(sess, log, key, w.Key, id, serial, deltas[id][serial]); err != nil {
					errs <- err
					return
				}
				if rng.Intn(3) == 0 {
					// Duplicate re-delivery of the serial just acked.
					if err := submitEODup(sess, log, key, w.Key, id, serial, deltas[id][serial]); err != nil {
						errs <- err
						return
					}
				}
				if rng.Intn(4) == 0 {
					if err := observeEORead(sess, log, key, w.Key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	clients.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		s.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	select {
	case err := <-errs:
		s.Close()
		return nil, err
	default:
	}

	// Crash: every acknowledgement at or after the checkpoint began may
	// or may not sit below the recovered cut. Crash-marked duplicates
	// and reads are dropped as effect-free, and anything invoked after
	// the checkpoint returned is discarded for certain — pruning keeps
	// the checker's memoized search space a product of per-session
	// serial prefixes instead of 2^(no-op ops). See PruneCrashWindow.
	pre := PruneCrashWindow(rec.History(), ckptStart, ckptEnd)
	s.Close()

	r, err := faster.Recover(cfg, dir)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	// Retry phase: re-bind each GUID, learn the recovered frontier, and
	// resubmit everything above it with the original deltas.
	post := rec.Client(100)
	sess := r.StartSession()
	defer sess.Close()
	for i := 1; i <= w.Sessions; i++ {
		frontier, err := sess.Bind(fmt.Sprintf("eo-%d", i))
		if err != nil {
			return nil, err
		}
		if frontier > uint64(w.Serials) {
			return nil, fmt.Errorf("recovered frontier %d for session %d exceeds %d serials issued", frontier, i, w.Serials)
		}
		for serial := frontier + 1; serial <= uint64(w.Serials); serial++ {
			if err := submitEOSerial(sess, post, key, w.Key, i, serial, deltas[i][serial]); err != nil {
				return nil, err
			}
		}
	}
	sess.Unbind()
	if err := observeEORead(sess, post, key, w.Key); err != nil {
		return nil, err
	}
	return append(pre, post.History()...), nil
}

// submitEOSerial delivers one stamped RMW through the serial protocol,
// recording the invoke before admission and the acknowledgement only
// once the serial is committed (or classified as a duplicate).
func submitEOSerial(sess *faster.Session, log *ClientLog, key []byte, k uint64, session int, serial, delta uint64) error {
	return submitEO(sess, log, key, k, session, serial, delta, false)
}

// submitEODup re-delivers an already-submitted serial, marked so the
// driver may prune it from the crash window.
func submitEODup(sess *faster.Session, log *ClientLog, key []byte, k uint64, session int, serial, delta uint64) error {
	return submitEO(sess, log, key, k, session, serial, delta, true)
}

func submitEO(sess *faster.Session, log *ClientLog, key []byte, k uint64, session int, serial, delta uint64, dup bool) error {
	id := log.Begin(EOInput{Kind: KVRMW, Key: k, Arg: delta, Session: session, Serial: serial, Dup: dup})
	v, _, err := sess.SerialCheck(serial)
	if err != nil {
		return err
	}
	if v != faster.SerialApply {
		if v != faster.SerialReplay && v != faster.SerialStale {
			return fmt.Errorf("session %d serial %d: unexpected verdict %v", session, serial, v)
		}
		log.End(id, EOOutput{Verdict: v})
		return nil
	}
	st, rerr := sess.RMW(key, u64le(delta), nil)
	if st == faster.Pending {
		for _, res := range sess.CompletePending(true) {
			st, rerr = res.Status, res.Err
		}
	}
	if st != faster.OK {
		sess.SerialAbort()
		return fmt.Errorf("session %d serial %d: rmw failed: %v %v", session, serial, st, rerr)
	}
	sess.SerialCommit(serial, []byte("ACK"))
	log.End(id, EOOutput{Verdict: faster.SerialApply})
	return nil
}

// observeEORead records one unstamped read of the shared counter.
func observeEORead(sess *faster.Session, log *ClientLog, key []byte, k uint64) error {
	out := make([]byte, 8)
	id := log.Begin(EOInput{Kind: KVRead, Key: k})
	st, err := sess.Read(key, nil, out, nil)
	if st == faster.Pending {
		for _, res := range sess.CompletePending(true) {
			st, err = res.Status, res.Err
			if res.Output != nil {
				copy(out, res.Output)
			}
		}
	}
	switch st {
	case faster.OK:
		log.End(id, EOOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
		return nil
	case faster.NotFound:
		log.End(id, EOOutput{})
		return nil
	default:
		return fmt.Errorf("read: %v %v", st, err)
	}
}
