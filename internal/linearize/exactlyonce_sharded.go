package linearize

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/faster"
)

// Sharded exactly-once model and driver. A stamped session's serials
// spread across keys owned by different shards, so each shard's session
// table sees only an ascending subsequence (the sparse admission rule);
// the connection frontier is the max committed serial over shards. The
// model keeps one counter per key and one frontier per session: a
// stamped RMW applies iff its serial is the frontier's successor, so a
// recovery that mixes checkpoint generations across shards — losing one
// shard's committed serials while the reported frontier says they are
// durable — has no linearization.

// EOShardedMaxKeys bounds the key space so the model state embeds fixed
// arrays and stays cheap to fingerprint.
const EOShardedMaxKeys = 8

// eoShardedState is the sequential state: one counter register per key
// plus each session's committed-serial frontier.
type eoShardedState struct {
	exists    [EOShardedMaxKeys]bool
	vals      [EOShardedMaxKeys]uint64
	frontiers [EOMaxSessions]uint64
}

// EOShardedModel returns the dedup-aware multi-key counter
// specification. Keys are 1-based and at most EOShardedMaxKeys.
func EOShardedModel() Model {
	return Model{
		Name: "exactly-once-sharded-counters",
		Init: func() any { return eoShardedState{} },
		Step: func(state, input, output any) (bool, any) {
			st := state.(eoShardedState)
			in := input.(EOInput)
			out, observed := output.(EOOutput)
			ki := int(in.Key) - 1
			if ki < 0 || ki >= EOShardedMaxKeys {
				return false, st
			}
			switch in.Kind {
			case KVRead:
				if !observed {
					return true, st
				}
				if out.Found != st.exists[ki] {
					return false, st
				}
				if st.exists[ki] && out.Val != st.vals[ki] {
					return false, st
				}
				return true, st
			case KVRMW:
				si := in.Session - 1
				if si < 0 || si >= EOMaxSessions {
					return false, st
				}
				next := st.frontiers[si] + 1
				dup := in.Serial < next
				if observed {
					switch out.Verdict {
					case faster.SerialApply:
						if dup {
							return false, st // double-apply
						}
					case faster.SerialReplay, faster.SerialStale:
						if !dup {
							return false, st
						}
					default:
						return false, st
					}
				}
				if dup {
					return true, st // duplicate delivery: no effect
				}
				if in.Serial > next {
					// The driver submits serials densely in order, so a
					// gap can never take effect (per-shard subsequences
					// are sparse, the session's stream is not).
					return false, st
				}
				ns := st
				ns.exists[ki] = true
				if st.exists[ki] {
					ns.vals[ki] = st.vals[ki] + in.Arg
				} else {
					ns.vals[ki] = in.Arg
				}
				ns.frontiers[si] = in.Serial
				return true, ns
			default:
				return false, st
			}
		},
		Key: func(state any) string {
			st := state.(eoShardedState)
			return fmt.Sprintf("%v/%v/%v", st.exists, st.vals, st.frontiers)
		},
		// Frontiers span keys and keys span shards: one partition.
		Partition: nil,
		Describe: func(input, output any) string {
			in := input.(EOInput)
			out, complete := output.(EOOutput)
			if in.Kind == KVRead {
				res := "?"
				if complete {
					if out.Found {
						res = fmt.Sprintf("OK(%d)", out.Val)
					} else {
						res = "NOT_FOUND"
					}
				}
				return fmt.Sprintf("read(k%d) -> %s", in.Key, res)
			}
			res := "?"
			if complete {
				switch out.Verdict {
				case faster.SerialApply:
					res = "APPLY"
				case faster.SerialReplay:
					res = "REPLAY"
				case faster.SerialStale:
					res = "STALE"
				default:
					res = fmt.Sprintf("verdict(%d)", out.Verdict)
				}
			}
			return fmt.Sprintf("s%d#%d rmw(k%d, +%d) -> %s", in.Session, in.Serial, in.Key, in.Arg, res)
		},
	}
}

// EOShardedWorkload describes one sharded duplicate-delivery crash/retry
// run.
type EOShardedWorkload struct {
	// Sessions is the number of concurrent stamped sessions (default 3,
	// at most EOMaxSessions).
	Sessions int
	// Serials is how many serials each session commits before the crash
	// (default 16).
	Serials int
	// Keys is the key-space size; each serial targets a seeded key in
	// [1, Keys] (default EOShardedMaxKeys), spreading a session's
	// serials across shards.
	Keys uint64
	// Seed makes the schedule, keys and deltas reproducible.
	Seed int64
}

// RunExactlyOnceSharded drives w against a fresh sharded store opened
// from cfg: Sessions concurrent stamped clients each commit Serials
// serials against per-key counters spread over the shards, with seeded
// duplicate re-deliveries and interleaved unstamped reads. Two sharded
// checkpoints fire mid-run (so recovery has an older generation to fall
// back to), the store crashes (Close) and recovers from the manifest,
// each client re-binds its GUID, learns the connection frontier (max
// acked over shards) and resubmits every serial above it with the
// original keys and deltas — the retry rule an exactly-once client
// follows — and a final sweep reads every key. The returned history has
// the second checkpoint's window crash-marked and is ready for Check
// against EOShardedModel().
func RunExactlyOnceSharded(cfg faster.ShardedConfig, dir string, w EOShardedWorkload) ([]Op, error) {
	if w.Sessions == 0 {
		w.Sessions = 3
	}
	if w.Sessions > EOMaxSessions {
		return nil, fmt.Errorf("linearize: %d sessions exceeds EOMaxSessions=%d", w.Sessions, EOMaxSessions)
	}
	if w.Serials == 0 {
		w.Serials = 16
	}
	if w.Keys == 0 {
		w.Keys = EOShardedMaxKeys
	}
	if w.Keys > EOShardedMaxKeys {
		return nil, fmt.Errorf("linearize: %d keys exceeds EOShardedMaxKeys=%d", w.Keys, EOShardedMaxKeys)
	}
	// Keys and deltas are fixed per (session, serial) up front so the
	// post-crash retry resends byte-identical operations.
	keys := make([][]uint64, w.Sessions+1)
	deltas := make([][]uint64, w.Sessions+1)
	drng := rand.New(rand.NewSource(w.Seed ^ 0x5eed))
	for i := 1; i <= w.Sessions; i++ {
		keys[i] = make([]uint64, w.Serials+1)
		deltas[i] = make([]uint64, w.Serials+1)
		for s := 1; s <= w.Serials; s++ {
			keys[i][s] = drng.Uint64()%w.Keys + 1
			deltas[i][s] = drng.Uint64()%9 + 1
		}
	}

	ss, err := faster.OpenSharded(cfg)
	if err != nil {
		return nil, err
	}
	rec := NewRecorder()

	// The chaos goroutine commits generation 1 at roughly a third of the
	// committed serials' events and generation 2 at roughly two thirds;
	// only the second bracket is crash-marked — recovery lands on it (or
	// falls whole-ensemble back to generation 1, which the first
	// checkpoint's own completed bracket covers: everything acked before
	// gen 2 began is either in gen 2's cut or resubmitted).
	var ckptStart, ckptEnd int64
	ckptDone := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		total := int64(w.Sessions * w.Serials)
		wait := func(target int64) bool {
			for rec.Peek() < target {
				select {
				case <-stop:
					return false
				default:
					runtime.Gosched()
				}
			}
			return true
		}
		wait(total * 2 / 3)
		if _, err := ss.Checkpoint(dir); err != nil {
			ckptDone <- err
			return
		}
		wait(total * 4 / 3)
		ckptStart = rec.Now()
		_, err := ss.Checkpoint(dir)
		ckptEnd = rec.Now()
		ckptDone <- err
	}()

	errs := make(chan error, w.Sessions)
	var clients sync.WaitGroup
	for i := 1; i <= w.Sessions; i++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(w.Seed*1_000_003 + int64(id)))
			log := rec.Client(id)
			sess := ss.StartSession()
			defer sess.Close()
			if _, err := sess.Bind(fmt.Sprintf("eo-%d", id)); err != nil {
				errs <- err
				return
			}
			for serial := uint64(1); serial <= uint64(w.Serials); serial++ {
				k, d := keys[id][serial], deltas[id][serial]
				if err := submitEOSharded(sess, log, k, id, serial, d, false); err != nil {
					errs <- err
					return
				}
				if rng.Intn(3) == 0 {
					// Duplicate re-delivery of the serial just acked.
					if err := submitEOSharded(sess, log, k, id, serial, d, true); err != nil {
						errs <- err
						return
					}
				}
				if rng.Intn(4) == 0 {
					rk := rng.Uint64()%w.Keys + 1
					if err := observeEOShardedRead(sess, log, rk); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	clients.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		ss.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	select {
	case err := <-errs:
		ss.Close()
		return nil, err
	default:
	}

	pre := PruneCrashWindow(rec.History(), ckptStart, ckptEnd)
	ss.Close() // the "crash": recovery trusts only the manifest

	r, err := faster.RecoverSharded(cfg, dir)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	// Retry phase: re-bind each GUID, learn the recovered connection
	// frontier, and resubmit everything above it.
	post := rec.Client(100)
	sess := r.StartSession()
	defer sess.Close()
	for i := 1; i <= w.Sessions; i++ {
		frontier, err := sess.Bind(fmt.Sprintf("eo-%d", i))
		if err != nil {
			return nil, err
		}
		if frontier > uint64(w.Serials) {
			return nil, fmt.Errorf("recovered frontier %d for session %d exceeds %d serials issued", frontier, i, w.Serials)
		}
		for serial := frontier + 1; serial <= uint64(w.Serials); serial++ {
			if err := submitEOSharded(sess, post, keys[i][serial], i, serial, deltas[i][serial], false); err != nil {
				return nil, err
			}
		}
	}
	sess.Unbind()
	for k := uint64(1); k <= w.Keys; k++ {
		if err := observeEOShardedRead(sess, post, k); err != nil {
			return nil, err
		}
	}
	return append(pre, post.History()...), nil
}

// submitEOSharded delivers one stamped RMW through the per-key serial
// protocol: the verdict comes from the key's shard table, the commit
// closes that shard's stamped window.
func submitEOSharded(sess *faster.ShardedSession, log *ClientLog, k uint64, session int, serial, delta uint64, dup bool) error {
	key := u64le(k)
	id := log.Begin(EOInput{Kind: KVRMW, Key: k, Arg: delta, Session: session, Serial: serial, Dup: dup})
	v, _, err := sess.SerialCheckKey(key, serial)
	if err != nil {
		return err
	}
	if v != faster.SerialApply {
		if v != faster.SerialReplay && v != faster.SerialStale {
			return fmt.Errorf("session %d serial %d: unexpected verdict %v", session, serial, v)
		}
		log.End(id, EOOutput{Verdict: v})
		return nil
	}
	st, rerr := sess.RMW(key, u64le(delta), nil)
	if st == faster.Pending {
		for _, res := range sess.CompletePending(true) {
			st, rerr = res.Status, res.Err
		}
	}
	if st != faster.OK {
		sess.SerialAbort()
		return fmt.Errorf("session %d serial %d: rmw failed: %v %v", session, serial, st, rerr)
	}
	sess.SerialCommitKey(serial, []byte("ACK"))
	log.End(id, EOOutput{Verdict: faster.SerialApply})
	return nil
}

// observeEOShardedRead records one unstamped read of key k.
func observeEOShardedRead(sess *faster.ShardedSession, log *ClientLog, k uint64) error {
	key := u64le(k)
	out := make([]byte, 8)
	id := log.Begin(EOInput{Kind: KVRead, Key: k})
	st, err := sess.Read(key, nil, out, nil)
	if st == faster.Pending {
		for _, res := range sess.CompletePending(true) {
			st, err = res.Status, res.Err
			if res.Output != nil {
				copy(out, res.Output)
			}
		}
	}
	switch st {
	case faster.OK:
		log.End(id, EOOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
		return nil
	case faster.NotFound:
		log.End(id, EOOutput{})
		return nil
	default:
		return fmt.Errorf("read: %v %v", st, err)
	}
}
