package linearize

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faster"
)

// The harness drives seeded pseudo-random concurrent workloads against a
// faster.Store, recording every Read/Upsert/RMW/Delete invoke/response
// pair (including operations that go Pending and complete later via
// CompletePending) into a history the checker can verify. Values are the
// 8-byte counters of faster.SumOps.

// Target abstracts the store under test so the same workloads run
// against a plain *faster.Store or a *faster.ShardedStore. Both satisfy
// the method set directly except for session construction, whose
// concrete return types differ; the two adapters below bridge that.
type Target interface {
	NewSession() TargetSession
	SubmitRead(key, input []byte, outLen int, deadline time.Time, ctx any, done func(faster.Result)) error
	SubmitRMW(key, input []byte, deadline time.Time, ctx any, done func(faster.Result)) error
}

// TargetSession is the slice of the session API the harness drives.
type TargetSession interface {
	Read(key, input, output []byte, ctx any) (faster.Status, error)
	Upsert(key, value []byte) (faster.Status, error)
	RMW(key, input []byte, ctx any) (faster.Status, error)
	Delete(key []byte) (faster.Status, error)
	ExecBatch(ops []faster.BatchOp) error
	CompletePending(wait bool) []faster.Result
	Park()
	Unpark()
	Close() error
}

// StoreTarget adapts *faster.Store to Target.
type StoreTarget struct{ *faster.Store }

// NewSession starts a plain store session.
func (t StoreTarget) NewSession() TargetSession { return t.Store.StartSession() }

// ShardedTarget adapts *faster.ShardedStore to Target.
type ShardedTarget struct{ *faster.ShardedStore }

// NewSession starts a sharded session spanning every shard.
func (t ShardedTarget) NewSession() TargetSession { return t.ShardedStore.StartSession() }

// Workload describes one concurrent run.
type Workload struct {
	// Clients is the number of concurrent sessions (default 4).
	Clients int
	// Ops is the number of operations each client issues (default 64).
	Ops int
	// Keys is the size of the key space; keys are drawn uniformly from
	// [1, Keys] (default 4). Keep Clients*Ops/Keys comfortably under the
	// checker's 256-op partition limit.
	Keys uint64
	// Seed makes the schedule reproducible; client i derives its own rng
	// from Seed+i.
	Seed int64
	// ReadPct, UpsertPct, RMWPct and DeletePct weight the op mix; all
	// zero selects 40/25/25/10.
	ReadPct, UpsertPct, RMWPct, DeletePct int
	// RMWMax bounds the random RMW delta, drawn from [1, RMWMax]
	// (default 100). The mutation gate raises it past 1<<32 so a torn
	// 64-bit write changes both halves of the counter.
	RMWMax uint64
	// PendingBatch is how many operations may be in flight before the
	// client drains completions (default 4). Batching is what lets
	// pending I/Os and fuzzy deferrals overlap with later operations.
	PendingBatch int
	// Batch, when >1, issues each client's operations through
	// Session.ExecBatch in mixed-kind windows of this size instead of one
	// call per operation. Every slot is still recorded as an individual
	// operation whose invoke/response interval spans the whole batch
	// call — exactly the API's guarantee: a batch amortizes bookkeeping,
	// it is not a transaction.
	Batch int
	// AsyncIO routes each client's reads and RMWs through the store's
	// io-worker pool (SubmitRead/SubmitRMW) instead of its session, so
	// misses complete out of band on worker goroutines while the client
	// keeps issuing; upserts and deletes (which never touch storage)
	// stay on the client's session. Completions are recorded exactly
	// like pending-I/O completions; a deadline or admission shed leaves
	// an RMW incomplete (it may or may not apply) and drops a read (it
	// observed nothing). Incompatible with Batch > 1.
	AsyncIO bool
	// AsyncDeadline is the per-operation deadline for AsyncIO
	// submissions (zero: none).
	AsyncDeadline time.Duration
	// Chaos, if non-nil, runs on its own goroutine for the duration of
	// the workload (read-only shifts, index growth, ...). It must return
	// promptly when stop closes. The goroutine holds no session.
	Chaos func(stop <-chan struct{})
	// Quiesce, if non-nil, bounds the tail of the schedule: once the
	// channel is closed, each per-op client issues at most QuiesceTail
	// more operations and then stops early. Checkpoint/recover scenarios
	// close it as the checkpoint begins so the crash window holds a
	// bounded handful of in-flight operations however long the
	// checkpoint's epoch drain takes on a loaded machine — without it
	// the window (and the checker's incomplete-op search space) grows
	// with machine load. Ignored by batched clients (Batch > 1).
	Quiesce <-chan struct{}
	// QuiesceTail is how many operations each client may still issue
	// after Quiesce closes. Zero stops clients at their next iteration.
	QuiesceTail int
	// Interleave, if non-nil, is called by every client goroutine before
	// its n-th operation (n counts from 0). Unlike Chaos it is
	// synchronous with the schedule, so triggers it fires (read-only
	// shifts, flush kicks) interleave with operations by construction
	// rather than by racing the clock. It runs on a session goroutine:
	// it must not call anything that requires holding no session (e.g.
	// GrowIndex).
	Interleave func(client, n int)
}

func (w *Workload) defaults() {
	if w.Clients == 0 {
		w.Clients = 4
	}
	if w.Ops == 0 {
		w.Ops = 64
	}
	if w.Keys == 0 {
		w.Keys = 4
	}
	if w.ReadPct+w.UpsertPct+w.RMWPct+w.DeletePct == 0 {
		w.ReadPct, w.UpsertPct, w.RMWPct, w.DeletePct = 40, 25, 25, 10
	}
	if w.PendingBatch == 0 {
		w.PendingBatch = 4
	}
	if w.RMWMax == 0 {
		w.RMWMax = 100
	}
}

// RunWorkload executes the workload against store and returns the
// recorded history. The recorder is returned too so callers can extend
// the history on the same clock (checkpoint/recover scenarios).
func RunWorkload(store *faster.Store, w Workload) ([]Op, *Recorder) {
	return RunWorkloadTarget(StoreTarget{store}, w)
}

// RecordWorkload runs the workload, recording into rec (which may
// already hold history from an earlier phase on the same clock).
func RecordWorkload(store *faster.Store, rec *Recorder, w Workload) {
	RecordWorkloadTarget(StoreTarget{store}, rec, w)
}

// RunWorkloadTarget is RunWorkload over any Target (plain or sharded).
func RunWorkloadTarget(store Target, w Workload) ([]Op, *Recorder) {
	w.defaults()
	rec := NewRecorder()
	RecordWorkloadTarget(store, rec, w)
	return rec.History(), rec
}

// RecordWorkloadTarget is RecordWorkload over any Target.
func RecordWorkloadTarget(store Target, rec *Recorder, w Workload) {
	w.defaults()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	if w.Chaos != nil {
		chaos := w.Chaos
		wg.Add(1)
		go func() {
			defer wg.Done()
			chaos(stop)
		}()
	}
	var clients sync.WaitGroup
	for i := 0; i < w.Clients; i++ {
		clients.Add(1)
		go func(id int) {
			defer clients.Done()
			runClient(store, id, rec.Client(id), rand.New(rand.NewSource(w.Seed+int64(id))), w)
		}(i)
	}
	clients.Wait()
	close(stop)
	wg.Wait()
}

// pendingCtx travels through the store as the operation's user context
// and comes back on the Result, matching the completion to its history
// entry. out is the read's output buffer.
type pendingCtx struct {
	id  OpID
	out []byte
}

// runClient issues one session's operations, recording each into log.
func runClient(store Target, clientID int, log *ClientLog, rng *rand.Rand, w Workload) {
	if w.Batch > 1 {
		runBatchClient(store, clientID, log, rng, w)
		return
	}
	if w.AsyncIO {
		runAsyncClient(store, clientID, log, rng, w)
		return
	}
	sess := store.NewSession()
	inFlight := 0

	drain := func(wait bool) {
		for _, res := range sess.CompletePending(wait) {
			pc, ok := res.Ctx.(*pendingCtx)
			if !ok {
				continue // not one of ours (defensive)
			}
			inFlight--
			finishPending(log, pc, res)
		}
	}

	total := w.ReadPct + w.UpsertPct + w.RMWPct + w.DeletePct
	tail := -1 // -1: Quiesce not (yet) observed closed
	for n := 0; n < w.Ops; n++ {
		if w.Quiesce != nil && tail < 0 {
			select {
			case <-w.Quiesce:
				tail = w.QuiesceTail
			default:
			}
		}
		if tail == 0 {
			break
		}
		if tail > 0 {
			tail--
		}
		if w.Interleave != nil {
			w.Interleave(clientID, n)
		}
		k := uint64(rng.Int63n(int64(w.Keys))) + 1
		key := make([]byte, 8)
		binary.LittleEndian.PutUint64(key, k)
		roll := rng.Intn(total)
		switch {
		case roll < w.ReadPct:
			out := make([]byte, 8)
			id := log.Begin(KVInput{Kind: KVRead, Key: k})
			st, err := sess.Read(key, nil, out, &pendingCtx{id: id, out: out})
			switch {
			case st == faster.Pending:
				inFlight++
			case st == faster.OK:
				log.End(id, KVOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
			case st == faster.NotFound:
				log.End(id, KVOutput{})
			case err != nil || st == faster.Err:
				// The read observed nothing and changed nothing.
				log.Drop(id)
			}
		case roll < w.ReadPct+w.UpsertPct:
			v := rng.Uint64()%1000 + 1
			id := log.Begin(KVInput{Kind: KVUpsert, Key: k, Arg: v})
			st, _ := sess.Upsert(key, u64le(v))
			if st == faster.OK {
				log.End(id, KVOutput{Found: true})
			}
			// On Err the write may or may not have taken effect: leave
			// the op incomplete, which permits both.
		case roll < w.ReadPct+w.UpsertPct+w.RMWPct:
			d := rng.Uint64()%w.RMWMax + 1
			id := log.Begin(KVInput{Kind: KVRMW, Key: k, Arg: d})
			st, _ := sess.RMW(key, u64le(d), &pendingCtx{id: id})
			switch st {
			case faster.Pending:
				inFlight++
			case faster.OK:
				log.End(id, KVOutput{})
			}
		default:
			id := log.Begin(KVInput{Kind: KVDelete, Key: k})
			st, _ := sess.Delete(key)
			switch st {
			case faster.OK:
				log.End(id, KVOutput{Found: true})
			case faster.NotFound:
				log.End(id, KVOutput{})
			}
		}
		if inFlight >= w.PendingBatch {
			drain(true)
		} else if inFlight > 0 && rng.Intn(4) == 0 {
			drain(false)
		}
	}
	drain(true)
	sess.Close()
}

// asyncDone pairs an io-pool completion with its history entry; the
// done callback (a worker goroutine) only enqueues, and the client
// goroutine records — ClientLog stays single-writer.
type asyncDone struct {
	pc  *pendingCtx
	res faster.Result
}

// runAsyncClient is runClient for Workload.AsyncIO: reads and RMWs go
// through the store's io-worker pool and complete out of band; upserts
// and deletes run on the client's session as usual. The invoke/response
// interval of a pooled op spans submit to delivery, which is exactly
// the pool's linearizability surface.
func runAsyncClient(store Target, clientID int, log *ClientLog, rng *rand.Rand, w Workload) {
	sess := store.NewSession()
	resCh := make(chan asyncDone, w.Ops+1)
	inFlight := 0

	record := func(d asyncDone) {
		inFlight--
		finishPending(log, d.pc, d.res)
	}
	drain := func(wait bool) {
		if wait && inFlight > 0 {
			// Park while blocked: an unparked session pins its epoch,
			// which would stall the very flush/compact drains the pooled
			// ops are waiting on — a distributed deadlock.
			sess.Park()
			d := <-resCh
			sess.Unpark()
			record(d)
		}
		for {
			select {
			case d := <-resCh:
				record(d)
			default:
				return
			}
		}
	}
	deadline := func() time.Time {
		if w.AsyncDeadline <= 0 {
			return time.Time{}
		}
		return time.Now().Add(w.AsyncDeadline)
	}

	total := w.ReadPct + w.UpsertPct + w.RMWPct + w.DeletePct
	for n := 0; n < w.Ops; n++ {
		if w.Interleave != nil {
			w.Interleave(clientID, n)
		}
		k := uint64(rng.Int63n(int64(w.Keys))) + 1
		key := make([]byte, 8)
		binary.LittleEndian.PutUint64(key, k)
		roll := rng.Intn(total)
		switch {
		case roll < w.ReadPct:
			id := log.Begin(KVInput{Kind: KVRead, Key: k})
			pc := &pendingCtx{id: id}
			err := store.SubmitRead(key, nil, 8, deadline(), nil,
				func(res faster.Result) { resCh <- asyncDone{pc: pc, res: res} })
			if err != nil {
				log.Drop(id) // never admitted: observed nothing
			} else {
				inFlight++
			}
		case roll < w.ReadPct+w.UpsertPct:
			v := rng.Uint64()%1000 + 1
			id := log.Begin(KVInput{Kind: KVUpsert, Key: k, Arg: v})
			if st, _ := sess.Upsert(key, u64le(v)); st == faster.OK {
				log.End(id, KVOutput{Found: true})
			}
		case roll < w.ReadPct+w.UpsertPct+w.RMWPct:
			d := rng.Uint64()%w.RMWMax + 1
			id := log.Begin(KVInput{Kind: KVRMW, Key: k, Arg: d})
			pc := &pendingCtx{id: id}
			err := store.SubmitRMW(key, u64le(d), deadline(), nil,
				func(res faster.Result) { resCh <- asyncDone{pc: pc, res: res} })
			if err != nil {
				log.Drop(id) // never admitted: cannot have applied
			} else {
				inFlight++
			}
		default:
			id := log.Begin(KVInput{Kind: KVDelete, Key: k})
			switch st, _ := sess.Delete(key); st {
			case faster.OK:
				log.End(id, KVOutput{Found: true})
			case faster.NotFound:
				log.End(id, KVOutput{})
			}
		}
		if inFlight >= w.PendingBatch {
			drain(true)
		} else if inFlight > 0 && rng.Intn(4) == 0 {
			drain(false)
		}
	}
	sess.Park()
	for inFlight > 0 {
		record(<-resCh)
	}
	sess.Unpark()
	sess.Close()
}

// runBatchClient is runClient for Workload.Batch > 1: the same seeded
// op mix, issued through ExecBatch in mixed-kind windows. Each slot is
// Begin'd as the window is assembled and End'd from its per-slot
// Status after the batch call, so its history interval brackets the
// batch execution; slots that go Pending complete through the ordinary
// CompletePending drain, matched by the same pendingCtx.
func runBatchClient(store Target, clientID int, log *ClientLog, rng *rand.Rand, w Workload) {
	sess := store.NewSession()
	inFlight := 0

	drain := func(wait bool) {
		for _, res := range sess.CompletePending(wait) {
			pc, ok := res.Ctx.(*pendingCtx)
			if !ok {
				continue // not one of ours (defensive)
			}
			inFlight--
			finishPending(log, pc, res)
		}
	}

	ops := make([]faster.BatchOp, 0, w.Batch)
	kinds := make([]KVKind, 0, w.Batch)

	flush := func() {
		if len(ops) == 0 {
			return
		}
		err := sess.ExecBatch(ops)
		for i := range ops {
			op := &ops[i]
			pc := op.Ctx.(*pendingCtx)
			if err != nil {
				// Whole-batch failure: reads observed nothing; writes are
				// left incomplete (either outcome is legal).
				if kinds[i] == KVRead {
					log.Drop(pc.id)
				}
				continue
			}
			switch kinds[i] {
			case KVRead:
				switch {
				case op.Status == faster.Pending:
					inFlight++
				case op.Status == faster.OK:
					log.End(pc.id, KVOutput{Found: true, Val: binary.LittleEndian.Uint64(pc.out)})
				case op.Status == faster.NotFound:
					log.End(pc.id, KVOutput{})
				default:
					log.Drop(pc.id) // failed read: observed nothing
				}
			case KVUpsert:
				if op.Status == faster.OK {
					log.End(pc.id, KVOutput{Found: true})
				}
				// Err: the write may or may not have landed — incomplete.
			case KVRMW:
				switch op.Status {
				case faster.Pending:
					inFlight++
				case faster.OK:
					log.End(pc.id, KVOutput{})
				}
			case KVDelete:
				switch op.Status {
				case faster.OK:
					log.End(pc.id, KVOutput{Found: true})
				case faster.NotFound:
					log.End(pc.id, KVOutput{})
				}
			}
		}
		ops, kinds = ops[:0], kinds[:0]
	}

	total := w.ReadPct + w.UpsertPct + w.RMWPct + w.DeletePct
	for n := 0; n < w.Ops; n++ {
		if w.Interleave != nil {
			w.Interleave(clientID, n)
		}
		k := uint64(rng.Int63n(int64(w.Keys))) + 1
		key := make([]byte, 8)
		binary.LittleEndian.PutUint64(key, k)
		roll := rng.Intn(total)
		switch {
		case roll < w.ReadPct:
			out := make([]byte, 8)
			id := log.Begin(KVInput{Kind: KVRead, Key: k})
			ops = append(ops, faster.BatchOp{Kind: faster.BatchRead, Key: key,
				Output: out, Ctx: &pendingCtx{id: id, out: out}})
			kinds = append(kinds, KVRead)
		case roll < w.ReadPct+w.UpsertPct:
			v := rng.Uint64()%1000 + 1
			id := log.Begin(KVInput{Kind: KVUpsert, Key: k, Arg: v})
			ops = append(ops, faster.BatchOp{Kind: faster.BatchUpsert, Key: key,
				Value: u64le(v), Ctx: &pendingCtx{id: id}})
			kinds = append(kinds, KVUpsert)
		case roll < w.ReadPct+w.UpsertPct+w.RMWPct:
			d := rng.Uint64()%w.RMWMax + 1
			id := log.Begin(KVInput{Kind: KVRMW, Key: k, Arg: d})
			ops = append(ops, faster.BatchOp{Kind: faster.BatchRMW, Key: key,
				Value: u64le(d), Ctx: &pendingCtx{id: id}})
			kinds = append(kinds, KVRMW)
		default:
			id := log.Begin(KVInput{Kind: KVDelete, Key: k})
			ops = append(ops, faster.BatchOp{Kind: faster.BatchDelete, Key: key,
				Ctx: &pendingCtx{id: id}})
			kinds = append(kinds, KVDelete)
		}
		if len(ops) >= w.Batch {
			flush()
		}
		if inFlight >= w.PendingBatch {
			drain(true)
		} else if inFlight > 0 && rng.Intn(4) == 0 {
			drain(false)
		}
	}
	flush()
	drain(true)
	sess.Close()
}

// finishPending records the completion of an asynchronous operation.
func finishPending(log *ClientLog, pc *pendingCtx, res faster.Result) {
	switch res.Kind {
	case "read", "read-merge":
		switch res.Status {
		case faster.OK:
			out := res.Output
			if out == nil {
				out = pc.out
			}
			log.End(pc.id, KVOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
		case faster.NotFound:
			log.End(pc.id, KVOutput{})
		default:
			log.Drop(pc.id) // failed read: observed nothing
		}
	case "rmw", "rmw-retry", "rmw-verify":
		if res.Status == faster.OK {
			log.End(pc.id, KVOutput{})
		}
		// Err: leave incomplete (the update may have been published).
	default:
		panic(fmt.Sprintf("linearize: unexpected pending result kind %q", res.Kind))
	}
}

func u64le(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// MarkCrashWindow rewrites a pre-crash history for a checkpoint/recover
// check: every operation whose response was observed at or after
// checkpointStart (the recorder timestamp drawn just before Checkpoint
// was invoked) is re-marked Incomplete, because the checkpoint's t2 cut
// may or may not contain its effect. Operations acknowledged before the
// checkpoint began are strictly below t2 on the log and must survive.
//
// Post-recovery observations are then appended on the same recorder
// clock; checking the combined history verifies the recovered state is a
// prefix-consistent cut of some linearization, per key. (Cross-key cut
// atomicity is not asserted — per-key partitioning cannot see it — which
// matches the store's guarantee: the cut point t2 is a single log
// address, but per-key verification is what stays tractable.)
func MarkCrashWindow(history []Op, checkpointStart int64) []Op {
	out := make([]Op, len(history))
	for i, op := range history {
		if op.Return >= checkpointStart {
			op.Return = Incomplete
			op.Output = nil
		}
		out[i] = op
	}
	return out
}

// PruneCrashWindow is MarkCrashWindow for callers that also timestamped
// the checkpoint's completion. Beyond the incomplete-marking, it removes
// two classes of crash-window operations whose linearization choice is
// forced, which keeps the checker's search tractable when a slow
// machine widens the window to dozens of operations:
//
//   - crash-marked reads: their observation was erased (it may reflect
//     effects the cut discarded) and they change nothing, so every
//     linearization position is equivalent;
//   - operations *invoked* at or after checkpointEnd: the checkpoint's
//     t2 was captured before Checkpoint returned, so their effects sit
//     above the cut and recovery discards them with certainty —
//     "never linearizes" is their only consistent choice, and dropping
//     them just commits to it.
//
// Inputs of type KVInput and EOInput are understood; other input types
// are never dropped, only marked.
func PruneCrashWindow(history []Op, checkpointStart, checkpointEnd int64) []Op {
	marked := MarkCrashWindow(history, checkpointStart)
	out := marked[:0]
	for _, op := range marked {
		if op.Return == Incomplete {
			if op.Call >= checkpointEnd {
				continue
			}
			switch in := op.Input.(type) {
			case KVInput:
				if in.Kind == KVRead {
					continue
				}
			case EOInput:
				if in.Kind == KVRead || in.Dup {
					continue
				}
			}
		}
		out = append(out, op)
	}
	return out
}
