package linearize

import (
	"fmt"
	"time"
)

// The store's sequential specification, per key: a register that holds a
// uint64 (absent until created), with the four operations the harness
// drives. Values are the 8-byte counters of faster.SumOps, so Upsert
// stores, RMW adds, Read observes, Delete removes — and the NotFound /
// OK statuses of Read and Delete are observations the linearization must
// explain, not just the values.

// KVKind enumerates the store operations the model understands.
type KVKind int

const (
	KVRead KVKind = iota
	KVUpsert
	KVRMW
	KVDelete
)

func (k KVKind) String() string {
	switch k {
	case KVRead:
		return "read"
	case KVUpsert:
		return "upsert"
	case KVRMW:
		return "rmw+"
	case KVDelete:
		return "delete"
	default:
		return fmt.Sprintf("KVKind(%d)", int(k))
	}
}

// KVInput is the invocation half of a store operation.
type KVInput struct {
	Kind KVKind
	Key  uint64
	// Arg is the upsert value or the RMW addend.
	Arg uint64
}

// KVOutput is the response half. Found reports OK vs NotFound (reads and
// deletes); Val is the value a read observed.
type KVOutput struct {
	Found bool
	Val   uint64
}

// kvState is one key's sequential state.
type kvState struct {
	exists bool
	val    uint64
}

// KVModel returns the per-key counter specification.
func KVModel() Model {
	return Model{
		Name: "kv-counter",
		Init: func() any { return kvState{} },
		Step: func(state, input, output any) (bool, any) {
			st := state.(kvState)
			in := input.(KVInput)
			out, observed := output.(KVOutput)
			// A nil output is an operation whose response was never
			// observed (incomplete). It is free to linearize against any
			// state; only its state transition matters.
			switch in.Kind {
			case KVRead:
				if !observed {
					return true, st
				}
				if out.Found != st.exists {
					return false, st
				}
				if st.exists && out.Val != st.val {
					return false, st
				}
				return true, st
			case KVUpsert:
				return true, kvState{exists: true, val: in.Arg}
			case KVRMW:
				if st.exists {
					return true, kvState{exists: true, val: st.val + in.Arg}
				}
				return true, kvState{exists: true, val: in.Arg}
			case KVDelete:
				// Delete's OK is blind: when the key's hash chain
				// descends to storage the store appends a tombstone
				// without proving the key exists (a tag-colliding chain
				// suffices), so OK carries no existence information.
				// NOT_FOUND, by contrast, is only returned on proof of
				// absence and is a real observation.
				if observed && !out.Found && st.exists {
					return false, st
				}
				return true, kvState{}
			default:
				return false, st
			}
		},
		Key: func(state any) string {
			st := state.(kvState)
			if !st.exists {
				return "-"
			}
			return fmt.Sprintf("%d", st.val)
		},
		Partition: PartitionByKey,
		Describe: func(input, output any) string {
			in := input.(KVInput)
			out, complete := output.(KVOutput)
			res := "?"
			if complete {
				switch {
				case in.Kind == KVRead && out.Found:
					res = fmt.Sprintf("OK(%d)", out.Val)
				case in.Kind == KVRead || in.Kind == KVDelete:
					if out.Found {
						res = "OK"
					} else {
						res = "NOT_FOUND"
					}
				default:
					res = "OK"
				}
			}
			switch in.Kind {
			case KVUpsert:
				return fmt.Sprintf("upsert(k%d, %d) -> %s", in.Key, in.Arg, res)
			case KVRMW:
				return fmt.Sprintf("rmw(k%d, +%d) -> %s", in.Key, in.Arg, res)
			case KVRead:
				return fmt.Sprintf("read(k%d) -> %s", in.Key, res)
			default:
				return fmt.Sprintf("delete(k%d) -> %s", in.Key, res)
			}
		},
	}
}

// PartitionByKey splits a history of KVInput operations into independent
// per-key sub-histories.
func PartitionByKey(ops []Op) [][]Op {
	byKey := map[uint64][]Op{}
	var keys []uint64
	for _, op := range ops {
		k := op.Input.(KVInput).Key
		if _, seen := byKey[k]; !seen {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], op)
	}
	parts := make([][]Op, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, byKey[k])
	}
	return parts
}

// CheckKV is Check with the KV model and a counterexample-bearing error
// message, the common call in store tests.
func CheckKV(history []Op, timeout time.Duration) Result {
	return Check(KVModel(), history, timeout)
}
